package report

import (
	"encoding/csv"
	"strings"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/stats"
)

func parseCSV(t *testing.T, text string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(text)).ReadAll()
	if err != nil {
		t.Fatalf("CSV parse: %v", err)
	}
	return rows
}

func TestFigure2CSV(t *testing.T) {
	exp := fakeExperiment()
	rows := parseCSV(t, Figure2CSV(exp))
	// Header + 12 sets x 5 outcomes.
	if len(rows) != 1+12*5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0] != "workload" || rows[0][4] != "percent" {
		t.Fatalf("header %v", rows[0])
	}
	// Every data row has 5 fields and a known outcome name.
	known := make(map[string]bool)
	for _, o := range core.AllOutcomes() {
		known[o.String()] = true
	}
	for _, r := range rows[1:] {
		if len(r) != 5 || !known[r[2]] {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestFigure4CSV(t *testing.T) {
	cells := []experiments.Figure4Cell{
		{Program: "Apache", Supervision: "none", Outcome: "normal success",
			Stats: stats.Summarize([]float64{14.0, 14.4})},
		{Program: "IIS", Supervision: "none", Outcome: "failure", Stats: stats.Summary{}},
	}
	rows := parseCSV(t, Figure4CSV(cells))
	if len(rows) != 2 { // header + 1 (empty cell omitted)
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1][4] != "14.200" {
		t.Fatalf("mean cell %q", rows[1][4])
	}
}

func TestTable2CSV(t *testing.T) {
	rows2, err := experiments.Table2(fakeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, Table2CSV(rows2))
	if len(rows) != 1+len(rows2) {
		t.Fatalf("%d rows for %d inputs", len(rows), len(rows2))
	}
}

func TestRunsCSV(t *testing.T) {
	set := fakeSet("IIS", "watchd", map[core.Outcome]int{
		core.NormalSuccess: 2, core.Failure: 1,
	})
	rows := parseCSV(t, RunsCSV(set))
	if len(rows) != 4 { // header + 3 injected runs
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows[1:] {
		if len(r) != 9 {
			t.Fatalf("row width %d", len(r))
		}
	}
}
