package report

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
)

// CSV renderers produce the same series as the text renderers in a
// machine-readable form (one row per bar/point of the paper's figures),
// for downstream plotting.

// Figure2CSV renders the outcome distributions: one row per
// (workload, supervision, outcome).
func Figure2CSV(exp *core.Experiment) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write([]string{"workload", "supervision", "outcome", "count", "percent"})
	for _, set := range exp.Sets {
		d := set.Distribution()
		for _, o := range core.AllOutcomes() {
			w.Write([]string{
				set.Workload, set.Supervision, o.String(),
				strconv.Itoa(d.Counts[o.String()]),
				formatPct(d.Pct[o.String()]),
			})
		}
	}
	w.Flush()
	return sb.String()
}

// Figure4CSV renders the response-time summaries: one row per cell.
func Figure4CSV(cells []experiments.Figure4Cell) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write([]string{"program", "supervision", "outcome", "n", "mean_sec", "ci95_sec"})
	for _, c := range cells {
		if c.Stats.N == 0 {
			continue
		}
		w.Write([]string{
			c.Program, c.Supervision, c.Outcome,
			strconv.Itoa(c.Stats.N),
			fmt.Sprintf("%.3f", c.Stats.Mean),
			fmt.Sprintf("%.3f", c.Stats.CI95),
		})
	}
	w.Flush()
	return sb.String()
}

// Table2CSV renders the common-fault comparison rows.
func Table2CSV(rows []experiments.Table2Row) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write([]string{"program", "supervision", "activated", "failure_pct", "restart_pct", "retry_pct"})
	for _, r := range rows {
		w.Write([]string{
			r.Program, r.Supervision, strconv.Itoa(r.Activated),
			formatPct(r.FailurePct), formatPct(r.RestartPct), formatPct(r.RetryPct),
		})
	}
	w.Flush()
	return sb.String()
}

// RunsCSV renders every injected run of a set: the raw per-fault records
// the §4.3 workflow studies.
func RunsCSV(set *core.SetResult) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write([]string{"function", "param", "invocation", "type", "outcome",
		"crash", "restarts", "got_response", "response_sec"})
	for _, r := range set.Runs {
		if !r.Injected {
			continue
		}
		w.Write([]string{
			r.Fault.Function,
			strconv.Itoa(r.Fault.Param),
			strconv.Itoa(r.Fault.Invocation),
			r.Fault.Type.String(),
			r.Outcome.String(),
			strconv.FormatBool(r.ServerCrash),
			strconv.Itoa(r.Restarts),
			strconv.FormatBool(r.GotResponse),
			fmt.Sprintf("%.3f", r.ResponseSec),
		})
	}
	w.Flush()
	return sb.String()
}

func formatPct(v float64) string { return fmt.Sprintf("%.2f", v) }
