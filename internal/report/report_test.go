package report

import (
	"strings"
	"testing"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
	"ntdts/internal/stats"
)

// fakeSet builds a SetResult with a known outcome mix.
func fakeSet(wl, sup string, outcomes map[core.Outcome]int) *core.SetResult {
	set := &core.SetResult{Workload: wl, Supervision: sup, ActivatedFns: 10}
	i := 0
	for o, n := range outcomes {
		for j := 0; j < n; j++ {
			set.Runs = append(set.Runs, core.RunResult{
				Fault: inject.FaultSpec{
					Function: "F" + string(rune('a'+i)), Param: j, Invocation: 1,
					Type: inject.ZeroBits,
				},
				Injected: true, Activated: true, Outcome: o,
				Completed: o != core.Failure, ResponseSec: 14.2,
				GotResponse: o != core.Failure,
			})
		}
		i++
	}
	return set
}

func fakeExperiment() *core.Experiment {
	exp := &core.Experiment{}
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		for _, sup := range []string{"none", "MSCS", "watchd"} {
			exp.Sets = append(exp.Sets, fakeSet(wl, sup, map[core.Outcome]int{
				core.NormalSuccess: 6,
				core.RetrySuccess:  2,
				core.Failure:       2,
			}))
		}
	}
	return exp
}

func TestTable1Rendering(t *testing.T) {
	res := &experiments.Table1Result{Counts: experiments.PaperTable1()}
	out := Table1(res)
	for _, want := range []string{"Apache1", "IIS", "76", "13", "measured / paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Rendering(t *testing.T) {
	out := Figure2(fakeExperiment())
	for _, want := range []string{"Apache1/none", "IIS/watchd", "SQL/MSCS", "60.0%", "20.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFailureMatrixRendering(t *testing.T) {
	out := FailureMatrix(fakeExperiment())
	if !strings.Contains(out, "Apache1") || !strings.Contains(out, "20.0%") {
		t.Errorf("FailureMatrix output:\n%s", out)
	}
}

func TestFigure3Rendering(t *testing.T) {
	rows, err := experiments.Figure3(fakeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	out := Figure3(rows)
	if !strings.Contains(out, "Apache") || !strings.Contains(out, "IIS") {
		t.Errorf("Figure3 output:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	rows, err := experiments.Table2(fakeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	out := Table2(rows)
	for _, want := range []string{"Apache1+Apache2", "IIS", "activated"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Rendering(t *testing.T) {
	cells := []experiments.Figure4Cell{
		{Program: "Apache", Supervision: "none", Outcome: "normal success",
			Stats: stats.Summarize([]float64{14.2, 14.3})},
		{Program: "IIS", Supervision: "none", Outcome: "failure",
			Stats: stats.Summary{}}, // empty: must be omitted
	}
	out := Figure4(cells)
	if !strings.Contains(out, "Apache") || !strings.Contains(out, "14.25s") {
		t.Errorf("Figure4 output:\n%s", out)
	}
	if strings.Contains(out, "failure") && strings.Contains(out, "IIS      failure") {
		t.Errorf("Figure4 rendered an empty cell:\n%s", out)
	}
	if strings.Count(out, "\n") > 10 {
		t.Errorf("Figure4 rendered unexpected rows:\n%s", out)
	}
}

func TestFigure5Rendering(t *testing.T) {
	res := &experiments.Figure5Result{Sets: map[int][]*core.SetResult{
		1: {fakeSet("Apache1", "watchd", map[core.Outcome]int{core.Failure: 5, core.NormalSuccess: 5})},
		2: {fakeSet("Apache1", "watchd", map[core.Outcome]int{core.Failure: 6, core.NormalSuccess: 4})},
		3: {fakeSet("Apache1", "watchd", map[core.Outcome]int{core.NormalSuccess: 10})},
	}}
	out := Figure5(res)
	for _, want := range []string{"Watchd1", "Watchd2", "Watchd3", "50.0%", "60.0%", "0.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 output missing %q:\n%s", want, out)
		}
	}
}

func TestTopFailuresRendering(t *testing.T) {
	set := fakeSet("IIS", "none", map[core.Outcome]int{core.Failure: 4, core.NormalSuccess: 6})
	out := TopFailures(set, 2)
	if !strings.Contains(out, "4 total") {
		t.Errorf("TopFailures header:\n%s", out)
	}
	if !strings.Contains(out, "and 2 more") {
		t.Errorf("TopFailures truncation:\n%s", out)
	}
	if !strings.Contains(out, "no reply") {
		t.Errorf("TopFailures reply kind:\n%s", out)
	}
}

// TestPerClassRendering checks the generated-cohort table: one row per
// class with the measured and model columns, and the canned-set contract
// that no class data renders nothing at all.
func TestPerClassRendering(t *testing.T) {
	set := &core.SetResult{Workload: "Apache1", Supervision: "none", Runs: []core.RunResult{
		{Injected: true, Classes: []core.ClassOutcome{
			{Class: "batch", Clients: 3, Requests: 12, Succeeded: 12, Responded: 12, ResponseSecSum: 24},
			{Class: "browser", Clients: 5, Requests: 30, Succeeded: 24, Responded: 27,
				Retried: 3, Recoveries: 4, RecoverySecSum: 60, Unrecovered: 2, ResponseSecSum: 90},
		}},
	}}
	ests := avail.EstimateClasses(set, avail.DefaultAssumptions())
	out := PerClass(set, ests)
	for _, want := range []string{
		"Per-class reliability, Apache1/none",
		"model-avail",
		"batch",
		"browser",
		"0.8000", // browser availability: 24/30
		"1.0000", // batch availability
	} {
		if !strings.Contains(out, want) {
			t.Errorf("per-class table missing %q:\n%s", want, out)
		}
	}
	// Rows follow ClassStats order: batch sorts before browser.
	if strings.Index(out, "batch") > strings.Index(out, "browser") {
		t.Errorf("rows out of order:\n%s", out)
	}
	// A class absent from the estimates renders "-" in the model column.
	if out := PerClass(set, nil); !strings.Contains(out, "-") {
		t.Errorf("missing estimate not dashed:\n%s", out)
	}

	canned := fakeSet("IIS", "none", map[core.Outcome]int{core.NormalSuccess: 3})
	if got := PerClass(canned, nil); got != "" {
		t.Errorf("canned set rendered a per-class table:\n%s", got)
	}
}
