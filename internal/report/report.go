// Package report renders the experiment results as text tables — the
// rows and series the paper's tables and figures present. Each renderer
// takes the structured result of the matching internal/experiments entry
// point.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/middleware/watchd"
)

// Table1 renders the activated-function census next to the paper's values.
func Table1(r *experiments.Table1Result) string {
	paper := experiments.PaperTable1()
	var b strings.Builder
	b.WriteString("Table 1. Number of called KERNEL32.dll functions per workload\n")
	b.WriteString("(measured / paper)\n\n")
	fmt.Fprintf(&b, "%-10s %15s %15s %15s\n", "Server", "None", "MSCS", "watchd")
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		fmt.Fprintf(&b, "%-10s", wl)
		for _, s := range []string{"none", "MSCS", "watchd"} {
			fmt.Fprintf(&b, " %9d / %3d", r.Counts[wl][s], paper[wl][s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure2 renders the outcome distributions of the full campaign.
func Figure2(exp *core.Experiment) string {
	var b strings.Builder
	b.WriteString("Figure 2. Standalone/MSCS/watchd comparisons (outcome % of activated faults)\n\n")
	b.WriteString(distributionHeader())
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		for _, s := range []string{"none", "MSCS", "watchd"} {
			set, ok := exp.Find(wl, s)
			if !ok {
				continue
			}
			b.WriteString(distributionRow(wl+"/"+s, set.Distribution()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func distributionHeader() string {
	return fmt.Sprintf("%-16s %9s %8s %8s %9s %7s %8s\n",
		"workload", "activated", "normal", "restart", "rst+retry", "retry", "FAILURE")
}

func distributionRow(label string, d core.Distribution) string {
	return fmt.Sprintf("%-16s %9d %7.1f%% %7.1f%% %8.1f%% %6.1f%% %7.1f%%\n",
		label, d.Total,
		d.Pct[core.NormalSuccess.String()],
		d.Pct[core.RestartSuccess.String()],
		d.Pct[core.RestartRetrySuccess.String()],
		d.Pct[core.RetrySuccess.String()],
		d.Pct[core.Failure.String()])
}

// Figure3 renders the weighted Apache-vs-IIS comparison.
func Figure3(rows []experiments.Figure3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3. Comparison of Apache (weighted Apache1+Apache2) to IIS\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %7s %8s %8s %9s %7s %8s\n",
		"config", "program", "faults", "normal", "restart", "rst+retry", "retry", "FAILURE")
	for _, row := range rows {
		writePctRow(&b, row.Supervision, "Apache", row.ApacheN, row.ApachePct)
		writePctRow(&b, row.Supervision, "IIS", row.IISN, row.IISPct)
	}
	return b.String()
}

func writePctRow(b *strings.Builder, cfgName, program string, n int, pct map[string]float64) {
	fmt.Fprintf(b, "%-10s %-8s %7d %7.1f%% %7.1f%% %8.1f%% %6.1f%% %7.1f%%\n",
		cfgName, program, n,
		pct[core.NormalSuccess.String()],
		pct[core.RestartSuccess.String()],
		pct[core.RestartRetrySuccess.String()],
		pct[core.RetrySuccess.String()],
		pct[core.Failure.String()])
}

// Table2 renders the common-fault comparison.
func Table2(rows []experiments.Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2. Comparison of Apache to IIS counting only common faults\n\n")
	fmt.Fprintf(&b, "%-18s %-10s %9s %8s %8s %7s\n",
		"program", "config", "activated", "failure", "restart", "retry")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-10s %9d %7.1f%% %7.1f%% %6.1f%%\n",
			r.Program, r.Supervision, r.Activated, r.FailurePct, r.RestartPct, r.RetryPct)
	}
	return b.String()
}

// Figure4 renders the response-time-by-outcome summary with 95% CIs.
func Figure4(cells []experiments.Figure4Cell) string {
	var b strings.Builder
	b.WriteString("Figure 4. Average response times for Apache and IIS (seconds, ±95% CI)\n")
	b.WriteString("(failure rows cover wrong-reply failures only; no-reply failures have\n")
	b.WriteString("unbounded response time and are omitted, as in the paper)\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %-22s %5s %10s %10s\n",
		"config", "program", "outcome", "n", "mean", "±95% CI")
	for _, c := range cells {
		if c.Stats.N == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %-8s %-22s %5d %9.2fs %9.2fs\n",
			c.Supervision, c.Program, c.Outcome, c.Stats.N, c.Stats.Mean, c.Stats.CI95)
	}
	return b.String()
}

// Figure5 renders the watchd-evolution comparison.
func Figure5(r *experiments.Figure5Result) string {
	var b strings.Builder
	b.WriteString("Figure 5. Comparison of original to improved watchd\n\n")
	b.WriteString(distributionHeader())
	for _, wl := range experiments.Figure5Workloads() {
		for _, v := range []watchd.Version{watchd.V1, watchd.V2, watchd.V3} {
			set, ok := r.Find(v, wl)
			if !ok {
				continue
			}
			b.WriteString(distributionRow(wl+"/"+v.String(), set.Distribution()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FailureMatrix renders the headline failure percentages of an experiment
// as a compact matrix (workload × supervision).
func FailureMatrix(exp *core.Experiment) string {
	var b strings.Builder
	b.WriteString("Failure percentage (unity minus coverage)\n\n")
	sup := []string{"none", "MSCS", "watchd"}
	fmt.Fprintf(&b, "%-10s", "workload")
	for _, s := range sup {
		fmt.Fprintf(&b, " %8s", s)
	}
	b.WriteString("\n")
	for _, wl := range exp.Workloads() {
		fmt.Fprintf(&b, "%-10s", wl)
		for _, s := range sup {
			if set, ok := exp.Find(wl, s); ok {
				fmt.Fprintf(&b, " %7.1f%%", set.FailurePct())
			} else {
				fmt.Fprintf(&b, " %8s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TopFailures lists the most interesting failing faults of a set — the
// §4.3 debugging workflow (study the specific faults behind coverage
// holes).
func TopFailures(set *core.SetResult, limit int) string {
	var fails []core.RunResult
	for _, r := range set.Runs {
		if r.Injected && r.Outcome == core.Failure {
			fails = append(fails, r)
		}
	}
	sort.Slice(fails, func(i, j int) bool {
		return fails[i].Fault.String() < fails[j].Fault.String()
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Failure-producing faults for %s/%s (%d total)\n\n",
		set.Workload, set.Supervision, len(fails))
	for i, r := range fails {
		if i >= limit {
			fmt.Fprintf(&b, "... and %d more\n", len(fails)-limit)
			break
		}
		kind := "no reply"
		if r.GotResponse {
			kind = "wrong reply"
		}
		crash := ""
		if r.ServerCrash {
			crash = ", server crashed"
		}
		fmt.Fprintf(&b, "  %-40s (%s%s)\n", r.Fault.String(), kind, crash)
	}
	return b.String()
}

// Cluster renders the per-node view of a cluster campaign: restarts,
// failovers, eventlog volume and crash counts aggregated per node over
// every injected run, followed by the cluster-level service line — the
// fraction of injected faults the client still completed and the
// fraction it completed without ever observing a failure. Empty for
// single-host sets (no per-node data).
func Cluster(set *core.SetResult) string {
	type nodeAgg struct {
		restarts, failovers, events, crashes int
	}
	var nodes []nodeAgg
	clustered, injected, completed, clean := 0, 0, 0, 0
	for _, r := range set.Runs {
		if len(r.Nodes) == 0 {
			continue
		}
		clustered++
		if r.Injected {
			injected++
			if r.Completed {
				completed++
			}
			if r.Outcome != core.Failure {
				clean++
			}
		}
		for _, ns := range r.Nodes {
			for len(nodes) <= ns.Node {
				nodes = append(nodes, nodeAgg{})
			}
			nodes[ns.Node].restarts += ns.Restarts
			nodes[ns.Node].failovers += ns.Failovers
			nodes[ns.Node].events += ns.Events
			if ns.Crashed {
				nodes[ns.Node].crashes++
			}
		}
	}
	if clustered == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster view, %s/%s (%d-node topology, %d runs)\n\n",
		set.Workload, set.Supervision, len(nodes), clustered)
	fmt.Fprintf(&b, "%-6s %9s %10s %8s %8s\n", "node", "restarts", "failovers", "events", "crashes")
	for i, n := range nodes {
		fmt.Fprintf(&b, "%-6d %9d %10d %8d %8d\n", i, n.restarts, n.failovers, n.events, n.crashes)
	}
	if injected > 0 {
		fmt.Fprintf(&b, "\ncluster service under faults: %d/%d completed (%.1f%%), %d/%d recovered without failure (%.1f%%)\n",
			completed, injected, 100*float64(completed)/float64(injected),
			clean, injected, 100*float64(clean)/float64(injected))
	}
	return b.String()
}

// Availability renders the testing-based availability estimates (§5).
func Availability(ests []avail.Estimate) string {
	var b strings.Builder
	b.WriteString("Availability estimates from testing-based parameters (paper §5)\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %14s %8s %16s\n",
		"workload", "config", "availability", "nines", "downtime/year")
	for _, e := range ests {
		fmt.Fprintf(&b, "%-10s %-8s %14.6f %8.2f %16s\n",
			e.Workload, e.Supervision, e.Availability, e.NinesCount,
			e.AnnualDown.Round(time.Minute))
	}
	return b.String()
}

// PerClass renders the per-traffic-class reliability table for a
// generated-cohort campaign: measured availability, error rate and
// recovery time per class, with the renewal-model availability verdict
// alongside. Empty for canned-client sets (no class data).
func PerClass(set *core.SetResult, ests []avail.ClassEstimate) string {
	classes := set.ClassStats()
	if len(classes) == 0 {
		return ""
	}
	model := make(map[string]avail.ClassEstimate, len(ests))
	for _, e := range ests {
		model[e.Class] = e
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-class reliability, %s/%s (generated cohort)\n\n", set.Workload, set.Supervision)
	fmt.Fprintf(&b, "%-12s %6s %8s %6s %13s %10s %12s %12s %6s %14s\n",
		"class", "runs", "requests", "fail", "availability", "error-rate", "mean-resp", "mean-recov", "unrec", "model-avail")
	for _, c := range classes {
		failed := c.Requests - c.Succeeded
		row := fmt.Sprintf("%-12s %6d %8d %6d %13.4f %10.4f %11.2fs %11.2fs %6d",
			c.Class, c.Runs, c.Requests, failed,
			c.Availability(), c.ErrorRate(), c.MeanResponseSec(), c.MeanRecoverySec(), c.Unrecovered)
		if e, ok := model[c.Class]; ok {
			row += fmt.Sprintf(" %14.6f", e.Availability)
		} else {
			row += fmt.Sprintf(" %14s", "-")
		}
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// Transitions renders an outcome diff between two configurations — the
// §4.3 study artifact (which faults a middleware change recovered or
// broke).
func Transitions(fromLabel, toLabel string, ts []core.Transition, limit int) string {
	var b strings.Builder
	s := core.SummarizeTransitions(ts)
	fmt.Fprintf(&b, "Outcome transitions %s -> %s: %d improved, %d regressed, %d shifted\n\n",
		fromLabel, toLabel, s.Improved, s.Regressed, s.Shifted)
	for i, t := range ts {
		if i >= limit {
			fmt.Fprintf(&b, "  ... and %d more\n", len(ts)-limit)
			break
		}
		fmt.Fprintf(&b, "  %s\n", t.String())
	}
	return b.String()
}

// Quarantine renders the campaign supervisor's quarantine report: every
// run the retry budget could not save, with the evidence (panic stack or
// watchdog deadline) a developer needs to chase the harness bug. Stacks
// are truncated to their leading frames — the journal keeps them whole.
func Quarantine(entries []core.QuarantineEntry) string {
	if len(entries) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Quarantined runs: %d\n", len(entries))
	for _, e := range entries {
		fmt.Fprintf(&b, "  #%d %v [%s] %s after %d attempts: %s\n",
			e.Index, e.Fault, e.Key, e.Reason, e.Attempts, e.Message)
		if e.Stack != "" {
			lines := strings.Split(strings.TrimRight(e.Stack, "\n"), "\n")
			const keep = 8
			if len(lines) > keep {
				lines = append(lines[:keep:keep], "...")
			}
			for _, l := range lines {
				fmt.Fprintf(&b, "      %s\n", l)
			}
		}
	}
	return b.String()
}
