package report

// Rendering for the analysis layer: failure-matrix deltas and fitness
// scores, in the same fixed-width plain text the paper artifacts use.

import (
	"fmt"
	"strings"

	"ntdts/internal/analysis"
)

// Delta renders a failure-matrix delta: the aggregate tallies, the per
// function × corruption cells, the transition list and the
// success/failure flips the swap caused.
func Delta(d *analysis.Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure-matrix delta: %s -> %s\n", d.FromLabel, d.ToLabel)
	fmt.Fprintf(&b, "common injected faults: %d (%d unchanged, %d changed)\n",
		d.Common, d.Unchanged, len(d.Transitions))
	fmt.Fprintf(&b, "improved %d, regressed %d, shifted %d\n",
		d.Summary.Improved, d.Summary.Regressed, d.Summary.Shifted)
	if cells := d.Matrix(); len(cells) > 0 {
		b.WriteString("\nper function x corruption:\n")
		fmt.Fprintf(&b, "  %-30s %-6s %9s %9s %7s\n", "function", "type", "improved", "regressed", "shifted")
		for _, c := range cells {
			fmt.Fprintf(&b, "  %-30s %-6s %9d %9d %7d\n", c.Function, c.Type, c.Improved, c.Regressed, c.Shifted)
		}
	}
	if len(d.Transitions) > 0 {
		b.WriteString("\n")
		b.WriteString(Transitions(d.FromLabel, d.ToLabel, d.Transitions, 50))
	}
	if flips := d.Flips(); len(flips) > 0 {
		b.WriteString("\nanomalies (success/failure flips):\n")
		for _, a := range flips {
			fmt.Fprintf(&b, "  %-38s %s\n", a.Fault.String(), a.Detail)
		}
	}
	return b.String()
}

// Fitness renders one set's weighted fitness breakdown.
func Fitness(label string, sc analysis.Score, w analysis.Weights) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: fitness %.4f (weights avail=%g recovery=%g quarantine=%g)\n",
		label, sc.Total, w.Availability, w.Recovery, w.Quarantine)
	fmt.Fprintf(&b, "  availability    %.4f  (%d injected runs)\n", sc.Availability, sc.Injected)
	fmt.Fprintf(&b, "  mean recovery   %.2fs  (%.2fx fault-free)\n", sc.MeanRecoverySec, sc.RecoveryRel)
	fmt.Fprintf(&b, "  quarantine rate %.4f\n", sc.QuarantineRate)
	return b.String()
}

// Anomalies renders a flagged-cell list.
func Anomalies(as []analysis.Anomaly) string {
	if len(as) == 0 {
		return "no anomalies flagged\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d anomalies:\n", len(as))
	for _, a := range as {
		fmt.Fprintf(&b, "  %-16s %-38s %s\n", a.Kind, a.Fault.String(), a.Detail)
	}
	return b.String()
}
