package replay_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/middleware"
	"ntdts/internal/scenarios"
	"ntdts/internal/shard"
	"ntdts/internal/workload"
)

// TestReplayScenarioMatrixEquivalence covers the full 81-cell cluster
// scenario matrix with replay: for each of the 9 topologies, the three
// scenario pseudo-faults are journaled as a campaign under no
// middleware, then replayed to each of the matrix's 3 substrates and
// compared byte-for-byte against the from-scratch campaign. Cluster
// scenario faults are never elidable (wall-clock triggers, multi-node
// state), so this pins the re-execution path — and the oracle's refusal
// to elide — across every topology.
func TestReplayScenarioMatrixEquivalence(t *testing.T) {
	cells := scenarios.Cells()
	type topo struct {
		nodes   int
		routing string
	}
	specsByTopo := make(map[topo][]inject.FaultSpec)
	var topos []topo
	targets := make(map[string]middleware.Spec)
	var targetOrder []string
	for _, c := range cells {
		k := topo{c.Nodes, c.Routing}
		if _, ok := specsByTopo[k]; !ok {
			topos = append(topos, k)
		}
		spec := c.Spec()
		dup := false
		for _, s := range specsByTopo[k] {
			if s == spec {
				dup = true
			}
		}
		if !dup {
			specsByTopo[k] = append(specsByTopo[k], spec)
		}
		if _, ok := targets[c.Middleware.String()]; !ok {
			targets[c.Middleware.String()] = c.Middleware
			targetOrder = append(targetOrder, c.Middleware.String())
		}
	}

	covered := 0
	for _, tp := range topos {
		specs := specsByTopo[tp]
		// Journal the topology's campaign once, under no middleware.
		opts := core.DefaultRunnerOptions()
		opts.Cluster = core.ClusterConfig{Nodes: tp.nodes, Routing: tp.routing}
		runner := core.NewRunner(workload.NewIIS(workload.Standalone), opts)
		h := shard.HeaderFor(runner)
		h.FaultList = "scenarios"
		path := filepath.Join(t.TempDir(), fmt.Sprintf("n%d-%s.journal", tp.nodes, tp.routing))
		jw, err := journal.Create(path, h)
		if err != nil {
			t.Fatal(err)
		}
		sup := core.NewSupervisor(core.SupervisorOptions{})
		sup.AttachJournal(jw)
		if _, err := core.NewCampaign(runner, core.WithSpecs(specs),
			core.WithSupervision(sup), core.WithParallelism(2)).Run(context.Background()); err != nil {
			t.Fatalf("source campaign %+v: %v", tp, err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}

		for _, name := range targetOrder {
			target := targets[name]
			tOpts := core.DefaultRunnerOptions()
			tOpts.WatchdVersion = target.Version()
			tOpts.Cluster = core.ClusterConfig{Nodes: tp.nodes, Routing: tp.routing}
			want, err := core.NewCampaign(core.NewRunner(workload.NewIIS(target.Supervision), tOpts),
				core.WithSpecs(specs), core.WithParallelism(2)).Run(context.Background())
			if err != nil {
				t.Fatalf("from-scratch %+v -> %s: %v", tp, name, err)
			}
			set, oracle := replayTo(t, path, target, 2, false)
			if archiveBytes(t, set) != archiveBytes(t, want) {
				t.Fatalf("topology %+v target %s: replayed archive differs from from-scratch", tp, name)
			}
			if st := oracle.Stats(); st.Elided != 0 {
				t.Fatalf("topology %+v target %s: scenario pseudo-faults must never be elided, got %+v", tp, name, st)
			}
			covered += len(specs)
		}
	}
	if covered != len(cells) {
		t.Fatalf("covered %d cells, matrix has %d", covered, len(cells))
	}
}
