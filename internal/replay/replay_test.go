package replay_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/middleware"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/replay"
	"ntdts/internal/shard"
	"ntdts/internal/workload"
)

// testSpecs samples the win32 catalog into a fault list mixing
// activated and unactivated functions — the elision oracle must split
// them correctly.
func testSpecs(n int) []inject.FaultSpec {
	var specs []inject.FaultSpec
	i := 0
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		i++
		if i%9 != 0 {
			continue
		}
		specs = append(specs, inject.FaultSpec{Function: e.Name, Param: 0, Invocation: 1, Type: inject.ZeroBits})
		if len(specs) >= n {
			break
		}
	}
	return specs
}

// runnerFor builds the IIS runner for one substrate.
func runnerFor(t *testing.T, spec middleware.Spec) *core.Runner {
	t.Helper()
	opts := core.DefaultRunnerOptions()
	opts.WatchdVersion = spec.Version()
	return core.NewRunner(workload.NewIIS(spec.Supervision), opts)
}

// journalCampaign runs the spec list supervised+journaled under the
// given substrate and returns the journal path.
func journalCampaign(t *testing.T, specs []inject.FaultSpec, spec middleware.Spec, telem bool) string {
	t.Helper()
	runner := runnerFor(t, spec)
	if telem {
		runner = runner.Clone()
		runner.Opts.Telemetry.Enabled = true
		runner.Opts.Telemetry.TraceCap = 256
	}
	h := shard.HeaderFor(runner)
	h.FaultList = "testlist"
	path := filepath.Join(t.TempDir(), "source.journal")
	jw, err := journal.Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	sup := core.NewSupervisor(core.SupervisorOptions{})
	sup.AttachJournal(jw)
	c := core.NewCampaign(runner, core.WithSpecs(specs), core.WithSupervision(sup), core.WithParallelism(4))
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatalf("source campaign: %v", err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// fromScratch runs the spec list unsupervised under the substrate — the
// ground truth a replayed archive must match byte for byte.
func fromScratch(t *testing.T, specs []inject.FaultSpec, spec middleware.Spec) *core.SetResult {
	t.Helper()
	set, err := core.NewCampaign(runnerFor(t, spec),
		core.WithSpecs(specs), core.WithParallelism(4)).Run(context.Background())
	if err != nil {
		t.Fatalf("from-scratch campaign: %v", err)
	}
	return set
}

func archiveBytes(t *testing.T, set *core.SetResult) string {
	t.Helper()
	b, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func replayTo(t *testing.T, path string, target middleware.Spec, par int, noElide bool) (*core.SetResult, *replay.Oracle) {
	t.Helper()
	src, err := replay.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c, oracle, err := replay.Build(src, replay.Options{Target: target, Parallelism: par, NoElide: noElide})
	if err != nil {
		t.Fatal(err)
	}
	set, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("replay campaign: %v", err)
	}
	return set, oracle
}

// TestReplayCrossFamilyEquivalence is the headline property: a campaign
// journaled under no middleware, replayed to watchd-v3 with elision on,
// yields an archive byte-identical to a from-scratch watchd-v3 campaign
// at every worker-pool width — while eliding every fault the target
// workload can never activate.
func TestReplayCrossFamilyEquivalence(t *testing.T) {
	specs := testSpecs(45)
	source := middleware.Spec{Supervision: workload.Standalone}
	target, _ := middleware.Parse("watchd-v3")
	path := journalCampaign(t, specs, source, false)
	want := archiveBytes(t, fromScratch(t, specs, target))

	for _, par := range []int{1, 4, 16} {
		set, oracle := replayTo(t, path, target, par, false)
		got := archiveBytes(t, set)
		if got != want {
			t.Fatalf("parallel=%d: replayed archive differs from from-scratch target archive", par)
		}
		st := oracle.Stats()
		if st.FaultFree == 0 || st.Elided == 0 {
			t.Fatalf("parallel=%d: expected fault-free elisions, got %+v", par, st)
		}
		if st.Copied != 0 {
			t.Fatalf("parallel=%d: cross-family replay must not copy verbatim, got %+v", par, st)
		}
		if st.Executed+st.Elided != st.Total || set.Replay == nil || set.Replay.Elided != st.Elided {
			t.Fatalf("parallel=%d: inconsistent stats %+v vs %+v", par, st, set.Replay)
		}
		for i, r := range set.Runs {
			if !r.Replayed {
				t.Fatalf("run %d missing replay provenance", i)
			}
		}
	}
}

// TestReplayWatchdGenerationCopy: watchd v2 -> v3 admits verbatim copy
// for quiet runs, and the result still matches from-scratch v3 exactly.
func TestReplayWatchdGenerationCopy(t *testing.T) {
	specs := testSpecs(45)
	source, _ := middleware.Parse("watchd-v2")
	target, _ := middleware.Parse("watchd-v3")
	path := journalCampaign(t, specs, source, true)
	want := archiveBytes(t, fromScratch(t, specs, target))

	set, oracle := replayTo(t, path, target, 4, false)
	if got := archiveBytes(t, set); got != want {
		t.Fatal("replayed v2->v3 archive differs from from-scratch v3 archive")
	}
	st := oracle.Stats()
	if st.Copied == 0 {
		t.Fatalf("expected verbatim copies for quiet watchd runs, got %+v", st)
	}
}

// TestReplayNoElide: with the oracle disabled every run re-executes and
// the archive still matches.
func TestReplayNoElide(t *testing.T) {
	specs := testSpecs(18)
	source := middleware.Spec{Supervision: workload.Standalone}
	target, _ := middleware.Parse("mscs")
	path := journalCampaign(t, specs, source, false)
	want := archiveBytes(t, fromScratch(t, specs, target))

	set, oracle := replayTo(t, path, target, 4, true)
	if got := archiveBytes(t, set); got != want {
		t.Fatal("no-elide replay archive differs from from-scratch archive")
	}
	if st := oracle.Stats(); st.Elided != 0 || st.Executed != st.Total {
		t.Fatalf("no-elide must execute everything, got %+v", st)
	}
}

// TestOracleSoundnessSampled is the property test behind elision: for a
// sample of elided runs, actually re-executing them under the target
// substrate must reproduce the adopted record bit for bit.
func TestOracleSoundnessSampled(t *testing.T) {
	specs := testSpecs(45)
	source := middleware.Spec{Supervision: workload.Standalone}
	target, _ := middleware.Parse("watchd-v1")
	path := journalCampaign(t, specs, source, false)

	set, oracle := replayTo(t, path, target, 4, false)
	if oracle.Stats().Elided == 0 {
		t.Fatal("nothing elided; the property is vacuous")
	}
	runner := runnerFor(t, target)
	sampled := 0
	for i := range set.Runs {
		if !set.Runs[i].Elided || sampled >= 8 {
			continue
		}
		sampled++
		spec := set.Runs[i].Fault
		res, err := runner.Run(&spec)
		if err != nil {
			t.Fatalf("re-execute %s: %v", spec.Key(), err)
		}
		wantB, _ := json.Marshal(*res)
		gotB, _ := json.Marshal(set.Runs[i])
		if string(wantB) != string(gotB) {
			t.Fatalf("elided run %s diverges from real execution:\n elided: %s\n actual: %s",
				spec.Key(), gotB, wantB)
		}
	}
	if sampled == 0 {
		t.Fatal("no elided runs sampled")
	}
}
