package replay

import (
	"sync"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/middleware"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/workload"
)

// Oracle is the divergence oracle: per planned job it decides whether
// the recorded evidence *proves* the substrate swap cannot change the
// outcome, and elides the run when it does. Two proofs are implemented,
// both resting on the engine's determinism guarantee (identical inputs
// yield byte-identical records):
//
//  1. Fault-free synthesis. A catalog fault whose function the target's
//     own calibration run never calls can never arm; the run *is* the
//     calibration run carrying a dormant fault spec. The record is
//     synthesized from the target calibration result, so it is exact
//     under the target substrate even when the source ran under a
//     different middleware family with different virtual timings (the
//     cross-family case, where no recorded byte can be reused).
//     Restricted to single-host, node-0 specs: cluster scenario
//     pseudo-faults fire on wall triggers regardless of the win32
//     activation set.
//
//  2. Verbatim copy, watchd v2 <-> v3 only. The two generations differ
//     solely in how they react to a service death; their supervision
//     paths are virtual-time identical while the service stays up. A
//     source record whose middleware demonstrably never acted — no
//     server crash, no restarts, no retries, not quarantined, not a
//     harness hang, and quiet middleware touchpoints in the recorded
//     trace when one exists — is bit-exact under the other generation
//     and is adopted verbatim. Disqualified by any topology change.
//
// Everything else re-executes from the boot-prefix snapshot.
type Oracle struct {
	src            *Source
	source, target middleware.Spec
	clusterNodes   int
	clusterChanged bool
	noElide        bool

	mu    sync.Mutex
	stats Stats
}

// Stats extends the engine's replay counters with the per-proof
// breakdown.
type Stats struct {
	core.ReplayStats
	FaultFree int // elided by fault-free synthesis
	Copied    int // elided by verbatim copy
}

// Stats returns the elision decisions of the last Resolve.
func (o *Oracle) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// Resolve implements core.ReplaySource.
func (o *Oracle) Resolve(p *core.Prepared) ([]*core.RunResult, error) {
	resolved := make([]*core.RunResult, len(p.Jobs))
	var st Stats
	st.Total = len(p.Jobs)
	if !o.noElide {
		copyOK := o.copySound()
		for i, job := range p.Jobs {
			if r := o.faultFree(job.Spec, p); r != nil {
				resolved[i] = r
				st.FaultFree++
				continue
			}
			if copyOK {
				if sr, ok := o.src.Runs[job.Key()]; ok && quiet(sr) {
					r := *sr.Result
					resolved[i] = &r
					st.Copied++
				}
			}
		}
	}
	st.Elided = st.FaultFree + st.Copied
	st.Executed = st.Total - st.Elided
	o.mu.Lock()
	o.stats = st
	o.mu.Unlock()
	return resolved, nil
}

// faultFree returns the synthesized record when the spec provably never
// arms under the target, nil otherwise.
func (o *Oracle) faultFree(spec inject.FaultSpec, p *core.Prepared) *core.RunResult {
	if o.clusterNodes > 1 || spec.Node != 0 {
		return nil
	}
	if _, ok := win32.CatalogLookup(spec.Function); !ok {
		return nil // pseudo-faults and unknown names prove nothing
	}
	if p.Activated[spec.Function] {
		return nil
	}
	r := *p.Calib
	r.Telemetry = nil
	r.Fault = spec
	r.Activated, r.Injected, r.Skipped = false, false, false
	return &r
}

// copySound reports whether verbatim copy is admissible for this
// source/target pair at all.
func (o *Oracle) copySound() bool {
	if o.clusterChanged || o.clusterNodes > 1 {
		return false
	}
	if o.source.Supervision != workload.Watchd || o.target.Supervision != workload.Watchd {
		return false
	}
	sameReaction := func(v watchd.Version) bool { return v == watchd.V2 || v == watchd.V3 }
	return sameReaction(o.source.Version()) && sameReaction(o.target.Version())
}

// quiet reports whether the recorded run shows zero middleware
// reaction, cross-checking the trace touchpoints when one was recorded.
func quiet(sr SourceRun) bool {
	r := sr.Result
	if r.ServerCrash || r.Restarts != 0 || r.Retries != 0 || r.Quarantined {
		return false
	}
	if r.Outcome == core.HarnessHang {
		return false
	}
	if sr.HasTrace && !sr.Touch.Quiet() {
		return false
	}
	return true
}
