// Package replay re-executes a journaled campaign under an alternative
// middleware substrate — the counterfactual arm of the paper's
// cross-substrate comparison. A campaign journal records the full
// configuration (header), the frozen plan, and every run's record and
// trace; replay rebuilds the same campaign with the substrate swapped
// and hands a divergence oracle to the engine, which elides every run
// whose recorded evidence proves the swap cannot change the outcome and
// re-executes only the rest. The output archive is byte-identical to a
// from-scratch campaign under the target substrate — the equivalence
// property that makes elision trustworthy.
package replay

import (
	"encoding/json"
	"fmt"
	"strings"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/middleware"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/shard"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// Source is a loaded campaign journal: the recorded configuration, the
// journaled plan, and every completed run decoded and indexed by job
// key.
type Source struct {
	Path   string
	Header journal.Header
	// PlanKeys is the journaled job list in plan order (probe jobs keep
	// their "/probe" suffix).
	PlanKeys []string
	// Runs indexes every completed run record by job key.
	Runs map[string]SourceRun
	// Quarantined counts journaled quarantine records (those runs have
	// no trustworthy outcome to elide from).
	Quarantined int
	// Torn reports that the journal's final line was incomplete and was
	// discarded; the surviving records are still usable evidence.
	Torn bool
}

// SourceRun is one recorded run plus the middleware touchpoints of its
// recorded trace (HasTrace false when the source ran without
// telemetry — the run-record fields then carry the only evidence).
type SourceRun struct {
	Result   *core.RunResult
	Touch    telemetry.Touchpoints
	HasTrace bool
}

// Load parses a campaign journal into a replay source.
func Load(path string) (*Source, error) {
	rep, err := journal.Replay(path)
	if err != nil {
		return nil, fmt.Errorf("replay source: %w", err)
	}
	if rep.Plan == nil {
		return nil, fmt.Errorf("replay source %s: journal carries no plan record", path)
	}
	src := &Source{
		Path:        path,
		Header:      rep.Header,
		PlanKeys:    rep.Plan.Jobs,
		Runs:        make(map[string]SourceRun, len(rep.Runs)),
		Quarantined: len(rep.Quarantined),
		Torn:        rep.Torn,
	}
	for _, rec := range rep.Runs {
		res, err := core.UnmarshalRunRecord(rec.Result, nil)
		if err != nil {
			return nil, fmt.Errorf("replay source %s: run %q: %w", path, rec.Key, err)
		}
		sr := SourceRun{Result: res}
		if len(rec.Tel) != 0 {
			var snap telemetry.Snapshot
			if err := json.Unmarshal(rec.Tel, &snap); err != nil {
				return nil, fmt.Errorf("replay source %s: run %q trace: %w", path, rec.Key, err)
			}
			sr.Touch = snap.Touchpoints()
			sr.HasTrace = true
		}
		src.Runs[rec.Key] = sr
	}
	return src, nil
}

// SourceSpec returns the middleware substrate the journal was recorded
// under.
func (s *Source) SourceSpec() (middleware.Spec, error) {
	sv, err := workload.ParseSupervision(s.Header.Supervision)
	if err != nil {
		return middleware.Spec{}, fmt.Errorf("replay source %s: %w", s.Path, err)
	}
	return middleware.Spec{Supervision: sv, WatchdVersion: watchd.Version(s.Header.WatchdVersion)}, nil
}

// Options configure one replay of a source campaign.
type Options struct {
	// Target is the substrate to replay under.
	Target middleware.Spec
	// Cluster overrides the recorded topology when non-nil (a topology
	// change disqualifies verbatim-copy elision; fault-free synthesis
	// still applies on single-host targets).
	Cluster *core.ClusterConfig
	// Parallelism is the worker-pool width for re-executed runs.
	Parallelism int
	// Progress receives (done, total) over the re-executed runs.
	Progress func(done, total int)
	// NoElide disables the oracle so every run re-executes — the
	// equivalence baseline and the benchmark's rerun arm.
	NoElide bool
}

// Build constructs the target-substrate campaign with the divergence
// oracle attached. The campaign's runner is rebuilt through the same
// header codepath shard workers and dts -resume use, with only the
// substrate fields (and any cluster override) rewritten; telemetry is
// forced off because archives exclude collectors, so collection could
// only slow the re-executed runs down.
func Build(src *Source, opts Options) (*core.Campaign, *Oracle, error) {
	srcSpec, err := src.SourceSpec()
	if err != nil {
		return nil, nil, err
	}
	h := src.Header
	h.Supervision = opts.Target.Supervision.String()
	h.WatchdVersion = 0
	if opts.Target.Supervision == workload.Watchd {
		h.WatchdVersion = int(opts.Target.Version())
	}
	clusterChanged := false
	if opts.Cluster != nil {
		recorded := core.ClusterConfig{Nodes: src.Header.ClusterNodes, Routing: src.Header.ClusterRouting}
		clusterChanged = *opts.Cluster != recorded
		h.ClusterNodes, h.ClusterRouting = opts.Cluster.Nodes, opts.Cluster.Routing
	}
	h.Telemetry, h.TraceCapacity = false, 0
	runner, err := shard.RunnerFromHeader(h)
	if err != nil {
		return nil, nil, fmt.Errorf("replay target runner: %w", err)
	}
	oracle := &Oracle{
		src:            src,
		source:         srcSpec,
		target:         opts.Target,
		clusterNodes:   h.ClusterNodes,
		clusterChanged: clusterChanged,
		noElide:        opts.NoElide,
	}
	copts := []core.Option{core.WithReplay(oracle), core.WithParallelism(opts.Parallelism)}
	if opts.Progress != nil {
		copts = append(copts, core.WithProgress(opts.Progress))
	}
	// A fault-list campaign replays the journaled plan verbatim; a
	// catalog campaign regenerates its plan from the *target* activation
	// scan (the censuses can differ across substrate families), exactly
	// as a from-scratch campaign would.
	if h.FaultList != "" {
		specs, err := planSpecs(src.PlanKeys)
		if err != nil {
			return nil, nil, err
		}
		copts = append(copts, core.WithSpecs(specs))
	}
	return core.NewCampaign(runner, copts...), oracle, nil
}

// planSpecs rebuilds the fault-spec list from journaled plan keys.
func planSpecs(keys []string) ([]inject.FaultSpec, error) {
	specs := make([]inject.FaultSpec, len(keys))
	for i, k := range keys {
		s, err := inject.ParseKey(strings.TrimSuffix(k, "/probe"))
		if err != nil {
			return nil, fmt.Errorf("replay plan key %q: %w", k, err)
		}
		specs[i] = s
	}
	return specs, nil
}
