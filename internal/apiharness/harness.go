// Package apiharness is the catalog-wide conformance and fuzz harness: it
// walks every injectable entry of the KERNEL32 export catalog, replays the
// canonical probe program with each of the paper's three corruptions
// (zero / ones / flip) applied to each parameter position, and classifies
// every (function × parameter × fault) cell into the failure-mode taxonomy
// the paper's credibility rests on — error return, access violation, hang,
// silent success, abnormal exit, or not-reached.
//
// The sweep is deterministic: every cell runs on its own fresh ntsim
// kernel, so results are byte-identical across runs, seeds, and worker
// counts. The full matrix is pinned as a golden file
// (testdata/failure_matrix.golden); tier-1 tests diff live behaviour
// against that contract, which lets future refactors of ntsim and the
// win32 layer prove they did not silently change injection outcomes.
//
// Cross-cutting invariant oracles run after every cell: no panic escapes
// the dispatch boundary, the kernel drains to zero live processes and zero
// open handles, and — per sweep — the goroutine count returns to baseline
// and GetLastError is set on every deliberately failed call of the
// conformance program.
package apiharness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/telemetry"
)

// Class is the failure-mode classification of one corrupted invocation.
type Class int

const (
	// ClassUncalled: the fault never fired — the probe does not dispatch
	// the function (catalog entry without a live implementation) or the
	// parameter index lies beyond the live arity.
	ClassUncalled Class = iota + 1
	// ClassSilent: the fault fired, the probe completed normally, and the
	// corrupted call left ERROR_SUCCESS — the corruption was absorbed
	// without any observable error (the paper's "no visible effect" and
	// its silent-corruption risk).
	ClassSilent
	// ClassError: the fault fired, the probe completed, and the corrupted
	// call left a nonzero last error — the Win32 error-return discipline.
	ClassError
	// ClassCrash: the probe died with STATUS_ACCESS_VIOLATION.
	ClassCrash
	// ClassHang: the probe was still running at the virtual-time deadline
	// and had to be killed (the paper's hang class).
	ClassHang
	// ClassExit: the probe exited early with some other nonzero code.
	ClassExit
)

// String names the class the way matrix lines spell it.
func (c Class) String() string {
	switch c {
	case ClassUncalled:
		return "uncalled"
	case ClassSilent:
		return "silent"
	case ClassError:
		return "error"
	case ClassCrash:
		return "crash"
	case ClassHang:
		return "hang"
	case ClassExit:
		return "exit"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// CellResult is one cell of the failure-mode matrix.
type CellResult struct {
	Function string
	Param    int
	Fault    inject.FaultType
	Class    Class
	// Errno is the last-error value the corrupted call left behind
	// (meaningful for ClassError).
	Errno ntsim.Errno
	// Exit is the probe's exit code (meaningful for ClassCrash/ClassExit).
	Exit uint32
}

// Key identifies the cell independent of its outcome.
func (c CellResult) Key() string {
	return fmt.Sprintf("%s p%d %s", c.Function, c.Param, c.Fault)
}

// Line renders the cell as one golden-matrix line.
func (c CellResult) Line() string {
	switch c.Class {
	case ClassError:
		return fmt.Sprintf("%s -> error %s", c.Key(), c.Errno.Error())
	case ClassCrash, ClassExit:
		return fmt.Sprintf("%s -> %s 0x%X", c.Key(), c.Class, c.Exit)
	default:
		return fmt.Sprintf("%s -> %s", c.Key(), c.Class)
	}
}

// Options configure one conformance sweep.
type Options struct {
	// Seed drives the sampling choice when Sample > 0. It never changes
	// any cell's outcome: the same seed always selects the same cells, and
	// a full sweep (Sample == 0) ignores it entirely.
	Seed int64
	// Sample, when positive, runs only that many live cells (chosen by
	// Seed) instead of the full matrix — the `go test -short` mode.
	Sample int
	// Parallelism is the worker count (0 = GOMAXPROCS, 1 = sequential).
	// The matrix is byte-identical at any setting.
	Parallelism int
	// Oracles are the per-cell invariants; nil selects DefaultOracles().
	Oracles []Oracle
	// Progress, when non-nil, receives (done, total) after every executed
	// cell, serialized, with done increasing strictly by one.
	Progress func(done, total int)
	// Telemetry enables per-cell collectors (traces, counters, the
	// cell.vtime histogram), merged in cell order into
	// SweepResult.Telemetry — byte-identical at any Parallelism.
	Telemetry telemetry.Options
}

// SweepResult is the outcome of one conformance sweep.
type SweepResult struct {
	// Cells holds one entry per matrix cell in catalog order. A full
	// sweep covers every injectable (function × param × fault) triple;
	// a sampled sweep holds only the selected live cells.
	Cells []CellResult
	// Baseline is the fault-free probe dispatch transcript ("fn/arity"
	// per line), freshly recorded by this sweep. It is independent of
	// Seed and Parallelism.
	Baseline string
	// LiveFunctions counts catalog entries the probe dispatches live.
	LiveFunctions int
	// InjectableEntries counts injectable catalog entries (paper: 551).
	InjectableEntries int
	// Sampled reports whether this was a partial (Sample > 0) sweep.
	Sampled bool
	// Telemetry holds one collector per executed cell, indexed like
	// Cells (nil for cells the probe never reaches), when the sweep ran
	// with Options.Telemetry enabled.
	Telemetry *telemetry.Set
}

// Matrix renders the result as the line-oriented failure-mode matrix, one
// line per cell, with a trailing newline.
func (s *SweepResult) Matrix() string {
	var b strings.Builder
	for _, c := range s.Cells {
		b.WriteString(c.Line())
		b.WriteByte('\n')
	}
	return b.String()
}

// ClassCounts histograms the cells by class name.
func (s *SweepResult) ClassCounts() map[string]int {
	counts := make(map[string]int)
	for _, c := range s.Cells {
		counts[c.Class.String()]++
	}
	return counts
}

// dispatchObserver records the probe's dispatch trace and captures the
// last-error value observed at the first dispatch after the injector
// fired — i.e. the error state the corrupted call left behind.
type dispatchObserver struct {
	k        *ntsim.Kernel
	injector *inject.Injector

	trace    []string
	captured bool
	errno    ntsim.Errno
}

func (o *dispatchObserver) BeforeSyscall(pid ntsim.PID, image, fn string, raw []uint64) {
	if image != win32.ProbeImage {
		return
	}
	o.trace = append(o.trace, fmt.Sprintf("%s/%d", fn, len(raw)))
	if o.injector == nil || o.captured || !o.injector.Injected() {
		return
	}
	// The injector fired on an earlier dispatch (it runs after this
	// observer within each dispatch), so the process's last error is the
	// corrupted call's legacy.
	if p := o.k.Process(pid); p != nil {
		o.errno = p.LastError()
		o.captured = true
	}
}

// chain multiplexes interceptors in order; the observer must run before
// the injector so it reads pre-corruption state of the current call.
type chain []ntsim.SyscallInterceptor

func (c chain) BeforeSyscall(pid ntsim.PID, image, fn string, raw []uint64) {
	for _, i := range c {
		i.BeforeSyscall(pid, image, fn, raw)
	}
}

// runCell executes one matrix cell on a fresh kernel and applies the
// per-cell oracles. With telemetry enabled the cell gets its own
// collector (returned alongside the result) recording the probe's
// kernel trace plus the cell's virtual-time cost.
func runCell(fn string, param int, fault inject.FaultType, oracles []Oracle, topts telemetry.Options) (CellResult, *telemetry.Recorder, error) {
	cell := CellResult{Function: fn, Param: param, Fault: fault}
	spec := inject.FaultSpec{Function: fn, Param: param, Invocation: 1, Type: fault}

	k := ntsim.NewKernel()
	rec := topts.NewRecorder()
	if rec != nil {
		k.SetTelemetry(rec)
	}
	injector := inject.New(k, inject.ByImage(win32.ProbeImage), &spec)
	obs := &dispatchObserver{k: k, injector: injector}
	k.SetInterceptor(chain{obs, injector})
	win32.SetupProbe(k)
	probe, err := win32.RunProbe(k)
	if err != nil {
		return cell, rec, fmt.Errorf("cell %s: %w", cell.Key(), err)
	}

	if !obs.captured && injector.Injected() {
		// The corrupted call was the probe's last dispatch; its legacy is
		// the process's final last-error value.
		obs.errno = probe.LastError()
	}
	cell.Exit = probe.ExitCode()
	switch {
	case !injector.Injected():
		cell.Class, cell.Exit = ClassUncalled, 0
	case cell.Exit == ntsim.ExitAccessViolation:
		cell.Class = ClassCrash
	case cell.Exit == ntsim.ExitTerminated:
		cell.Class = ClassHang
	case cell.Exit != 0:
		cell.Class = ClassExit
	case obs.errno != ntsim.ErrSuccess:
		cell.Class, cell.Errno = ClassError, obs.errno
	default:
		cell.Class = ClassSilent
	}

	for _, o := range oracles {
		if err := o.Check(&RunContext{Kernel: k, Probe: probe, Cell: cell}); err != nil {
			return cell, rec, fmt.Errorf("oracle %q violated at cell %s: %w", o.Name, cell.Key(), err)
		}
	}
	if rec != nil {
		rec.Observe(telemetry.HistCellVTime, time.Duration(k.Now()))
	}
	return cell, rec, nil
}

// recordBaseline runs the probe fault-free and returns its dispatch
// transcript. Unlike win32.ProbeDispatchTrace this is never memoized:
// every sweep re-proves the baseline, so two sweeps — whatever their
// seeds — comparing equal is a live determinism check, not a tautology.
func recordBaseline(oracles []Oracle) (string, error) {
	k := ntsim.NewKernel()
	obs := &dispatchObserver{k: k}
	k.SetInterceptor(obs)
	win32.SetupProbe(k)
	probe, err := win32.RunProbe(k)
	if err != nil {
		return "", err
	}
	if code := probe.ExitCode(); code != 0 {
		return "", fmt.Errorf("fault-free probe run exited 0x%X", code)
	}
	for _, o := range oracles {
		cell := CellResult{Class: ClassUncalled} // baseline has no fault
		if err := o.Check(&RunContext{Kernel: k, Probe: probe, Cell: cell}); err != nil {
			return "", fmt.Errorf("oracle %q violated on the baseline run: %w", o.Name, err)
		}
	}
	return strings.Join(obs.trace, "\n") + "\n", nil
}

// cellJob pairs a pending cell with its position in the result slice.
type cellJob struct {
	index int
	fn    string
	param int
	fault inject.FaultType
}

// Sweep runs the conformance sweep described by opts.
func Sweep(opts Options) (*SweepResult, error) {
	oracles := opts.Oracles
	if oracles == nil {
		oracles = DefaultOracles()
	}
	goroutineBase := ntsim.GoroutineBaseline()

	baseline, err := recordBaseline(oracles)
	if err != nil {
		return nil, err
	}
	arity := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSuffix(baseline, "\n"), "\n") {
		i := strings.LastIndexByte(line, '/')
		if i < 0 {
			continue
		}
		n, err := strconv.Atoi(line[i+1:])
		if err != nil {
			return nil, fmt.Errorf("malformed baseline trace line %q", line)
		}
		if n > arity[line[:i]] {
			arity[line[:i]] = n
		}
	}

	res := &SweepResult{Baseline: baseline}

	// Lay out the full matrix in catalog order. Cells the probe cannot
	// reach are classified ClassUncalled without burning a run.
	var cells []CellResult
	var jobs []cellJob
	live := make(map[string]bool)
	for _, entry := range win32.Catalog() {
		if entry.Params == 0 {
			continue
		}
		res.InjectableEntries++
		liveArity := arity[entry.Name]
		if liveArity > 0 {
			live[entry.Name] = true
		}
		for param := 0; param < entry.Params; param++ {
			for _, fault := range inject.AllFaultTypes() {
				cell := CellResult{Function: entry.Name, Param: param, Fault: fault}
				if param < liveArity {
					jobs = append(jobs, cellJob{index: len(cells), fn: entry.Name, param: param, fault: fault})
				} else {
					cell.Class = ClassUncalled
				}
				cells = append(cells, cell)
			}
		}
	}
	res.LiveFunctions = len(live)

	if opts.Sample > 0 && opts.Sample < len(jobs) {
		// Seeded sampling: pick Sample live cells, keep catalog order.
		res.Sampled = true
		rng := rand.New(rand.NewSource(opts.Seed))
		perm := rng.Perm(len(jobs))[:opts.Sample]
		sort.Ints(perm)
		sampled := make([]cellJob, 0, opts.Sample)
		for _, j := range perm {
			job := jobs[j]
			job.index = len(sampled)
			sampled = append(sampled, job)
		}
		jobs, cells = sampled, make([]CellResult, len(sampled))
	}

	var recs []*telemetry.Recorder
	if opts.Telemetry.Enabled {
		recs = make([]*telemetry.Recorder, len(cells))
	}
	if err := executeCells(jobs, cells, recs, oracles, opts); err != nil {
		return nil, err
	}
	res.Cells = cells
	if recs != nil {
		res.Telemetry = &telemetry.Set{Runs: recs}
	}

	// Sweep-level oracle: all run kernels drained, so the goroutine count
	// must return to the pre-sweep baseline.
	if err := ntsim.AwaitGoroutineBaseline(goroutineBase, 5*time.Second); err != nil {
		return nil, fmt.Errorf("oracle %q violated after sweep: %w", "goroutine-baseline", err)
	}
	// Sweep-level oracle: the error-return discipline of the API surface.
	if err := CheckLastErrorConformance(); err != nil {
		return nil, err
	}
	return res, nil
}

// executeCells runs the job list on a bounded worker pool, writing each
// cell — and, when recs is non-nil, its telemetry collector — at its
// fixed index so the matrix and merged trace are identical at any worker
// count. On failure the lowest-indexed error wins — the one a sequential
// sweep would have reported first.
func executeCells(jobs []cellJob, cells []CellResult, recs []*telemetry.Recorder, oracles []Oracle, opts Options) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		cursor atomic.Int64
		stop   atomic.Bool

		errMu     sync.Mutex
		firstErr  error
		firstErrI int

		progressMu sync.Mutex
		done       int
	)
	cursor.Store(-1)
	fail := func(index int, err error) {
		errMu.Lock()
		if firstErr == nil || index < firstErrI {
			firstErr, firstErrI = err, index
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(cursor.Add(1))
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				cell, rec, err := runCell(job.fn, job.param, job.fault, oracles, opts.Telemetry)
				if err != nil {
					fail(i, err)
					return
				}
				cells[job.index] = cell
				if recs != nil {
					recs[job.index] = rec
				}
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(done, len(jobs))
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
