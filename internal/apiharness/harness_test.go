package apiharness

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"ntdts/internal/determinism"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

// update regenerates testdata/failure_matrix.golden from live behaviour:
//
//	go test ./internal/apiharness -run TestGoldenMatrixFull -update
var update = flag.Bool("update", false, "rewrite the golden failure-mode matrix from live behaviour")

// fullSweep memoizes one full-matrix sweep shared by every test that needs
// it; the sweep itself is the expensive part, the assertions are cheap.
var fullSweep = sync.OnceValues(func() (*SweepResult, error) {
	return Sweep(Options{Seed: 1})
})

func mustFullSweep(t *testing.T) *SweepResult {
	t.Helper()
	res, err := fullSweep()
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}
	return res
}

// TestGoldenMatrixFull pins the complete failure-mode matrix against the
// golden file — the conformance contract of the whole win32 surface.
func TestGoldenMatrixFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix sweep skipped in -short mode (sampled test still runs)")
	}
	res := mustFullSweep(t)
	if *update {
		if err := res.WriteGolden(GoldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d cells, classes %v", GoldenPath, len(res.Cells), res.ClassCounts())
		return
	}
	if err := res.CompareGolden(GoldenPath); err != nil {
		// Re-diff through the transcript helper so the failure lands as
		// the FIRST diverging cell plus its minimal repro, not a blob.
		golden := readGolden(t)
		determinism.AssertSameTranscript(t, "failure-mode matrix", res.Matrix(), golden,
			func(i int, got, want string) string {
				key := got
				if j := strings.Index(got, " -> "); j >= 0 {
					key = got[:j]
				}
				return fmt.Sprintf("go test ./internal/apiharness -run TestGoldenMatrixFull (cell %s; regenerate with -update if intended)", key)
			})
		t.Fatal(err) // length/metadata divergence the line diff did not catch
	}
}

func readGolden(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(GoldenPath)
	if err != nil {
		t.Fatalf("golden matrix unreadable (regenerate with -update): %v", err)
	}
	return string(data)
}

// TestGoldenMatrixSampled is the -short mode conformance check: a seeded
// sample of live cells, each compared against its pinned golden line.
func TestGoldenMatrixSampled(t *testing.T) {
	if *update {
		t.Skip("sampled sweep never writes the golden matrix")
	}
	res, err := Sweep(Options{Seed: 7, Sample: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled || len(res.Cells) != 40 {
		t.Fatalf("sampled sweep ran %d cells (sampled=%v), want 40", len(res.Cells), res.Sampled)
	}
	if err := res.CompareGolden(GoldenPath); err != nil {
		t.Fatal(err)
	}
}

// TestSweepDeterministicAcrossParallelism is the acceptance bar from the
// campaign engine, applied to the harness: worker count must not leak into
// the matrix.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallelism comparison needs two full sweeps")
	}
	seq, err := Sweep(Options{Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(Options{Seed: 1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	determinism.AssertSameTranscript(t, "failure-mode matrix", par.Matrix(), seq.Matrix(),
		func(i int, got, want string) string {
			return fmt.Sprintf("dts -conformance -parallel 8 (line %d)", i+1)
		})
	if par.Baseline != seq.Baseline {
		t.Fatal("baseline transcript depends on parallelism")
	}
}

// TestBaselineSeedIndependent: the seed picks the sample, never the
// behaviour — two sweeps with different seeds must record byte-identical
// fault-free baseline transcripts.
func TestBaselineSeedIndependent(t *testing.T) {
	a, err := Sweep(Options{Seed: 1, Sample: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(Options{Seed: 99, Sample: 5})
	if err != nil {
		t.Fatal(err)
	}
	determinism.AssertSameTranscript(t, "baseline dispatch transcript", b.Baseline, a.Baseline,
		func(i int, got, want string) string {
			return fmt.Sprintf("apiharness.Sweep(Options{Seed: 99}) baseline line %d", i+1)
		})
	if a.Baseline == "" || strings.Count(a.Baseline, "\n") < 50 {
		t.Fatalf("baseline transcript implausibly short: %d lines", strings.Count(a.Baseline, "\n"))
	}
}

// TestSampledSeedsDiffer guards against the sampler ignoring its seed:
// different seeds should (with these sizes, must) visit different cells.
func TestSampledSeedsDiffer(t *testing.T) {
	a, err := Sweep(Options{Seed: 1, Sample: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(Options{Seed: 2, Sample: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cells {
		if a.Cells[i].Key() != b.Cells[i].Key() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 selected identical samples; sampler ignores its seed")
	}
}

// TestSweepCoverage checks the acceptance bar: the full matrix holds every
// injectable catalog entry, and every function the probe dispatches live
// has at least one executed (non-uncalled) cell.
func TestSweepCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full sweep")
	}
	res := mustFullSweep(t)
	_, zeroParam, injectable := win32.CatalogCounts()
	if res.InjectableEntries != injectable {
		t.Fatalf("sweep saw %d injectable entries, catalog census says %d", res.InjectableEntries, injectable)
	}
	names := make(map[string]bool)
	executed := make(map[string]bool)
	for _, c := range res.Cells {
		names[c.Function] = true
		if c.Class != ClassUncalled {
			executed[c.Function] = true
		}
	}
	if len(names) != injectable {
		t.Fatalf("matrix names %d distinct functions, want all %d injectable entries", len(names), injectable)
	}
	if len(executed) != res.LiveFunctions {
		t.Fatalf("%d functions executed, but the baseline dispatches %d live injectable functions", len(executed), res.LiveFunctions)
	}
	// The probe must exercise a substantial share of the surface for the
	// matrix to mean anything; the dispatch trace currently covers ~100
	// catalog functions and may only grow (see win32.probeBody).
	if res.LiveFunctions < 80 {
		t.Fatalf("only %d live functions — probe coverage regressed", res.LiveFunctions)
	}
	// Every live cell must have run: classes partition the matrix.
	counts := res.ClassCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(res.Cells) {
		t.Fatalf("class histogram %v covers %d of %d cells", counts, total, len(res.Cells))
	}
	if counts["crash"] == 0 || counts["error"] == 0 || counts["silent"] == 0 {
		t.Fatalf("matrix lacks a paper failure class: %v", counts)
	}
	_ = zeroParam
}

// TestOracleViolationAborts proves oracle wiring: a failing per-cell
// invariant aborts the sweep and names both the oracle and the cell.
func TestOracleViolationAborts(t *testing.T) {
	boom := errors.New("books do not balance")
	oracles := append(DefaultOracles(), Oracle{
		Name: "always-fail",
		Check: func(rc *RunContext) error {
			if rc.Cell.Function == "" {
				return nil // spare the baseline run; target the cell path
			}
			return boom
		},
	})
	_, err := Sweep(Options{Seed: 1, Sample: 3, Oracles: oracles})
	if err == nil {
		t.Fatal("sweep ignored a violated oracle")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the oracle's", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, `oracle "always-fail" violated`) || !strings.Contains(msg, " p") {
		t.Fatalf("error %q does not name the oracle and cell", msg)
	}
}

// TestLastErrorConformance runs the sweep-level error-discipline oracle on
// its own (it also runs inside every Sweep).
func TestLastErrorConformance(t *testing.T) {
	if err := CheckLastErrorConformance(); err != nil {
		t.Fatal(err)
	}
}

// TestCellResultLineFormats pins the golden line grammar.
func TestCellResultLineFormats(t *testing.T) {
	cases := []struct {
		cell CellResult
		want string
	}{
		{CellResult{Function: "ReadFile", Param: 1, Fault: inject.FlipBits, Class: ClassCrash, Exit: ntsim.ExitAccessViolation},
			"ReadFile p1 flip -> crash 0xC0000005"},
		{CellResult{Function: "Sleep", Param: 0, Fault: inject.OneBits, Class: ClassHang, Exit: ntsim.ExitTerminated},
			"Sleep p0 ones -> hang"},
		{CellResult{Function: "CloseHandle", Param: 0, Fault: inject.ZeroBits, Class: ClassError, Errno: ntsim.ErrInvalidHandle},
			"CloseHandle p0 zero -> error ERROR_INVALID_HANDLE"},
		{CellResult{Function: "WriteFile", Param: 2, Fault: inject.ZeroBits, Class: ClassSilent},
			"WriteFile p2 zero -> silent"},
		{CellResult{Function: "HeapLock", Param: 0, Fault: inject.FlipBits, Class: ClassUncalled},
			"HeapLock p0 flip -> uncalled"},
	}
	for _, c := range cases {
		if got := c.cell.Line(); got != c.want {
			t.Errorf("Line() = %q, want %q", got, c.want)
		}
	}
}
