package apiharness

import (
	"fmt"
	"os"
	"strings"
)

// GoldenPath is the repo-relative location of the pinned failure-mode
// matrix, one line per (function × parameter × fault) cell. Regenerate it
// with `go test ./internal/apiharness -run TestGoldenMatrixFull -update`
// after an intentional behaviour change.
const GoldenPath = "testdata/failure_matrix.golden"

// WriteGolden persists a full sweep's matrix at path. Sampled sweeps are
// rejected: the golden file is the complete contract, never a subset.
func (s *SweepResult) WriteGolden(path string) error {
	if s.Sampled {
		return fmt.Errorf("apiharness: refusing to write golden matrix from a sampled sweep")
	}
	return os.WriteFile(path, []byte(s.Matrix()), 0o644)
}

// CompareGolden diffs the sweep against the pinned matrix at path. A full
// sweep must match byte-for-byte. A sampled sweep checks membership: every
// executed cell's line must appear verbatim in the golden file, keyed by
// the cell's (function, param, fault) identity — so a sampled short-mode
// run still catches any outcome drift in the cells it visited.
func (s *SweepResult) CompareGolden(path string) error {
	golden, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("apiharness: golden matrix unreadable (regenerate with -update): %w", err)
	}
	if !s.Sampled {
		if string(golden) != s.Matrix() {
			return fmt.Errorf("apiharness: full sweep diverges from %s (diff with AssertSameTranscript for the first line, or regenerate with -update)", path)
		}
		return nil
	}
	pinned := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSuffix(string(golden), "\n"), "\n") {
		if i := strings.Index(line, " -> "); i >= 0 {
			pinned[line[:i]] = line
		}
	}
	for _, c := range s.Cells {
		want, ok := pinned[c.Key()]
		if !ok {
			return fmt.Errorf("apiharness: cell %q missing from %s (stale golden; regenerate with -update)", c.Key(), path)
		}
		if got := c.Line(); got != want {
			return fmt.Errorf("apiharness: cell outcome drifted from %s:\n got:  %s\n want: %s", path, got, want)
		}
	}
	return nil
}
