package apiharness

import (
	"fmt"

	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

// RunContext hands one finished cell run to an oracle: the drained kernel,
// the probe process, and the cell's classification.
type RunContext struct {
	Kernel *ntsim.Kernel
	Probe  *ntsim.Process
	Cell   CellResult
}

// Oracle is a cross-cutting invariant checked after every cell run,
// whatever the injected fault did. A violation aborts the sweep: it means
// the simulation itself misbehaved, not the application under test.
type Oracle struct {
	Name  string
	Check func(*RunContext) error
}

// DefaultOracles returns the standard invariant set:
//
//   - no-panic: no panic escaped the syscall dispatch boundary into the
//     scheduler, no matter how corrupted the parameters were;
//   - drained: the kernel returned to zero live processes and zero open
//     handles (terminated processes closed their whole handle tables);
//   - probe-handles: the probe process itself holds no open handles, even
//     when the fault killed it mid-run.
//
// The goroutine-count and GetLastError invariants are sweep-level (see
// Sweep and CheckLastErrorConformance) — the former because worker
// goroutines overlap during a parallel sweep, the latter because it needs
// a dedicated program rather than a finished run.
func DefaultOracles() []Oracle {
	return []Oracle{
		{Name: "no-panic", Check: func(rc *RunContext) error {
			if panics := rc.Kernel.Panics(); len(panics) > 0 {
				return fmt.Errorf("%d panic(s) escaped dispatch, first: %s", len(panics), panics[0])
			}
			return nil
		}},
		{Name: "drained", Check: func(rc *RunContext) error {
			return rc.Kernel.CheckDrained()
		}},
		{Name: "probe-handles", Check: func(rc *RunContext) error {
			if n := rc.Probe.HandleCount(); n != 0 {
				return fmt.Errorf("probe process leaked %d handle(s)", n)
			}
			return nil
		}},
	}
}

// CheckLastErrorConformance verifies the Win32 error-return discipline the
// paper's detection methodology depends on: every failing call leaves a
// nonzero GetLastError value. It runs a dedicated program that provokes
// each documented failure mode — invalid handles, missing files, absent
// named objects — and checks the last-error value after every failure
// return. A zero last error after a failed call would make that failure
// invisible to error-code-based oracles, so this runs once per sweep.
func CheckLastErrorConformance() error {
	const image = "conf.exe"
	var failures []string
	k := ntsim.NewKernel()
	k.RegisterImage(image, func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		check := func(call string, failed bool) {
			if !failed {
				failures = append(failures, call+": expected a failure return")
				return
			}
			if a.GetLastError() == ntsim.ErrSuccess {
				failures = append(failures, call+": failed with GetLastError()==ERROR_SUCCESS")
			}
		}
		bad := win32.Handle(0xDEAD) // never allocated: handles are multiples of 4

		var n uint32
		check("ReadFile(bad handle)", !a.ReadFile(bad, make([]byte, 4), 4, &n))
		check("WriteFile(bad handle)", !a.WriteFile(bad, []byte("x"), 1, &n))
		check("GetFileSize(bad handle)", a.GetFileSize(bad, nil) == 0xFFFFFFFF)
		check("CloseHandle(bad handle)", !a.CloseHandle(bad))
		check("SetEvent(bad handle)", !a.SetEvent(bad))
		check("ReleaseMutex(bad handle)", !a.ReleaseMutex(bad))
		check("ConnectNamedPipe(bad handle)", !a.ConnectNamedPipe(bad))
		check("GetExitCodeProcess(bad handle)", !a.GetExitCodeProcess(bad, &n))
		check("TerminateProcess(bad handle)", !a.TerminateProcess(bad, 1))
		check("WaitForSingleObject(bad handle)", a.WaitForSingleObject(bad, 0) == ntsim.WaitFailed)

		check("CreateFileA(missing, OPEN_EXISTING)",
			a.CreateFileA(`C:\no-such-file`, win32.GenericRead, 0, win32.OpenExisting, 0) == win32.InvalidHandle)
		check("DeleteFileA(missing)", !a.DeleteFileA(`C:\no-such-file`))
		check("GetFileAttributesA(missing)", a.GetFileAttributesA(`C:\no-such-file`) == 0xFFFFFFFF)
		check("MoveFileA(missing)", !a.MoveFileA(`C:\no-such-file`, `C:\elsewhere`))
		check("RemoveDirectoryA(missing)", !a.RemoveDirectoryA(`C:\no-such-dir`))
		var fd win32.FindData
		check("FindFirstFileA(no match)", a.FindFirstFileA(`C:\no-such-*`, &fd) == win32.InvalidHandle)
		check("OpenEventA(absent)", a.OpenEventA(win32.GenericRead, false, "no-such-event") == 0)
		return 0
	})
	p, err := k.Spawn(image, image, 0)
	if err != nil {
		return fmt.Errorf("last-error conformance: %w", err)
	}
	k.RunFor(win32.ProbeDeadline)
	k.KillAll()
	if panics := k.Panics(); len(panics) > 0 {
		return fmt.Errorf("last-error conformance program panicked: %s", panics[0])
	}
	if code := p.ExitCode(); code != 0 {
		return fmt.Errorf("last-error conformance program exited 0x%X", code)
	}
	if len(failures) > 0 {
		return fmt.Errorf("oracle %q violated: %d call(s) broke the error-return discipline, first: %s",
			"last-error", len(failures), failures[0])
	}
	return nil
}
