// Package determinism provides assertion helpers for the repo's central
// guarantee: the same inputs yield byte-identical results across runs,
// seeds, and worker counts. The helpers fail with the FIRST divergence and
// a caller-supplied minimal reproduction line — a fault spec, a seed, a
// CLI invocation — instead of dumping whole transcripts, so a determinism
// regression lands as one actionable repro.
package determinism

import (
	"reflect"
	"strings"
)

// TB is the subset of *testing.T the helpers need; declared locally so
// non-test tooling can also drive the checks.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// AssertEqualSlices compares two runs element-wise and fails with the first
// diverging index. describe(i) renders the minimal reproduction for element
// i (e.g. the fault spec and seed that replay it); it may be nil when the
// elements' own formatting is repro enough.
func AssertEqualSlices[E any](t TB, label string, got, want []E, describe func(i int) string) {
	t.Helper()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			if describe != nil {
				t.Fatalf("%s diverges at element %d — repro: %s\n got:  %+v\n want: %+v",
					label, i, describe(i), got[i], want[i])
			}
			t.Fatalf("%s diverges at element %d:\n got:  %+v\n want: %+v",
				label, i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s diverges in length: got %d elements, want %d", label, len(got), len(want))
	}
}

// AssertSameTranscript compares two line-oriented transcripts and fails
// with the first diverging line. repro(i, got, want) renders the minimal
// reproduction for line i; it may be nil.
func AssertSameTranscript(t TB, label, got, want string, repro func(i int, got, want string) string) {
	t.Helper()
	if got == want {
		return
	}
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			if repro != nil {
				t.Fatalf("%s diverges at line %d — repro: %s\n got:  %q\n want: %q",
					label, i+1, repro(i, gl[i], wl[i]), gl[i], wl[i])
			}
			t.Fatalf("%s diverges at line %d:\n got:  %q\n want: %q", label, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s diverges in length: got %d lines, want %d", label, len(gl), len(wl))
}
