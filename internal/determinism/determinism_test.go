package determinism

import (
	"fmt"
	"strings"
	"testing"
)

// fakeTB records the first Fatalf without stopping the test.
type fakeTB struct {
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...any) {
	if !f.failed {
		f.failed = true
		f.msg = fmt.Sprintf(format, args...)
	}
}

func TestAssertEqualSlicesPasses(t *testing.T) {
	AssertEqualSlices(t, "identical", []int{1, 2, 3}, []int{1, 2, 3}, nil)
}

func TestAssertEqualSlicesReportsFirstDivergence(t *testing.T) {
	ft := &fakeTB{}
	AssertEqualSlices(ft, "runs", []int{1, 9, 9}, []int{1, 2, 3}, func(i int) string {
		return "replay element"
	})
	if !ft.failed {
		t.Fatal("divergence not reported")
	}
	if !strings.Contains(ft.msg, "repro") {
		t.Fatalf("failure message lacks the repro hook: %q", ft.msg)
	}
}

func TestAssertEqualSlicesReportsLength(t *testing.T) {
	ft := &fakeTB{}
	AssertEqualSlices(ft, "runs", []int{1, 2}, []int{1, 2, 3}, nil)
	if !ft.failed || !strings.Contains(ft.msg, "length") {
		t.Fatalf("length divergence not reported: %q", ft.msg)
	}
}

func TestAssertSameTranscriptPasses(t *testing.T) {
	AssertSameTranscript(t, "transcript", "a\nb\n", "a\nb\n", nil)
}

func TestAssertSameTranscriptReportsFirstLine(t *testing.T) {
	ft := &fakeTB{}
	repro := func(i int, got, want string) string { return "seed 7" }
	AssertSameTranscript(ft, "matrix", "a\nX\nc\n", "a\nb\nc\n", repro)
	if !ft.failed {
		t.Fatal("divergence not reported")
	}
	if !strings.Contains(ft.msg, "repro") {
		t.Fatalf("failure message lacks the repro: %q", ft.msg)
	}
}

func TestAssertSameTranscriptReportsLength(t *testing.T) {
	ft := &fakeTB{}
	AssertSameTranscript(ft, "matrix", "a\nb", "a\nb\n", nil)
	if !ft.failed || !strings.Contains(ft.msg, "length") {
		t.Fatalf("length divergence not reported: %q", ft.msg)
	}
}
