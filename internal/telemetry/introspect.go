package telemetry

// Trace introspection: read-side helpers that summarize what a recorded
// run's telemetry says about middleware activity, without restoring a
// live Recorder. The replay divergence oracle (internal/replay) reads
// Touchpoints off journaled snapshots to decide whether a substrate
// swap could have changed a run's outcome.

// Touchpoints counts the middleware-visible activity in one run's
// snapshot: the fault lifecycle plus every event the supervision layer
// reacted to (or could have). Zero-valued counters mean the trace shows
// the middleware never had to act.
type Touchpoints struct {
	FaultArmed     int64
	FaultActivated int64
	FaultInjected  int64
	Restarts       int64 // middleware-initiated service restarts
	Retries        int64 // supervisor retry attempts
	Quarantines    int64 // supervisor quarantine decisions
	ProcExits      int64
}

// Touchpoints summarizes the snapshot's middleware-visible counters.
func (s *Snapshot) Touchpoints() Touchpoints {
	c := s.Counters
	return Touchpoints{
		FaultArmed:     c[CtrFaultArmed],
		FaultActivated: c[CtrFaultActivated],
		FaultInjected:  c[CtrFaultInjected],
		Restarts:       c[CtrRunRestarts],
		Retries:        c[CtrSupRetry],
		Quarantines:    c[CtrSupQuarantine],
		ProcExits:      c[CtrExit],
	}
}

// Quiet reports whether the trace proves the middleware never acted on
// this run: no restarts, no supervisor retries, no quarantine.
func (t Touchpoints) Quiet() bool {
	return t.Restarts == 0 && t.Retries == 0 && t.Quarantines == 0
}
