package telemetry_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ntdts/internal/determinism"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
)

var update = flag.Bool("update", false, "rewrite golden files from live behaviour")

// --- Recorder unit tests -----------------------------------------------------

func TestRecorderRingWrap(t *testing.T) {
	rec := telemetry.NewRecorder(4)
	for i := 0; i < 7; i++ {
		rec.Emit(vclock.Time(i), 1, telemetry.KindPhase, "e", uint64(i), 0)
	}
	events := rec.Events()
	if len(events) != 4 {
		t.Fatalf("%d events retained, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(i + 3); e.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest must be displaced first)", i, e.A, want)
		}
	}
	if rec.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", rec.Dropped())
	}
}

func TestRecorderCountersAndHists(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	rec.Add("x", 2)
	rec.Add("x", 3)
	if got := rec.Counter("x"); got != 5 {
		t.Fatalf("counter x = %d, want 5", got)
	}
	if got := rec.Counter("never"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	rec.Observe("h", 3*time.Millisecond)
	rec.Observe("h", 40*time.Second)
	_, hists := telemetry.NewSet(rec).MergedHists()
	h := hists["h"]
	if h == nil || h.N != 2 || h.Sum != 3*time.Millisecond+40*time.Second {
		t.Fatalf("histogram %+v", h)
	}
}

func TestSpanBracketsAndObserves(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	span := telemetry.StartSpan(rec, 100, 7, "work")
	span.End(100 + vclock.Time(2*time.Second))
	events := rec.Events()
	if len(events) != 2 ||
		events[0].Kind != telemetry.KindSpanBegin ||
		events[1].Kind != telemetry.KindSpanEnd {
		t.Fatalf("span events %+v", events)
	}
	if events[1].A != uint64(2*time.Second) {
		t.Fatalf("span-end duration %d", events[1].A)
	}
	_, hists := telemetry.NewSet(rec).MergedHists()
	if h := hists["work"]; h == nil || h.N != 1 || h.Sum != 2*time.Second {
		t.Fatalf("span histogram %+v", hists["work"])
	}
}

// TestSetIndexStability: nil recorders occupy their run index, so exports
// number later runs identically whether or not earlier runs recorded.
func TestSetIndexStability(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	rec.Emit(1, 0, telemetry.KindPhase, "only", 0, 0)
	set := telemetry.NewSet(nil, nil, rec)
	var buf bytes.Buffer
	if err := set.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"run":2,`) {
		t.Fatalf("run index not preserved across nil entries: %s", buf.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	rec.Emit(5, 1, telemetry.KindSyscall, "ReadFile", 5, 0)
	rec.Emit(9, 0, telemetry.KindFaultInjected, `odd "name", with comma`, 7, 8)
	set := telemetry.NewSet(rec)
	var buf bytes.Buffer
	if err := set.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	want := rec.Events()
	for i, l := range lines {
		if l.Run != 0 || l.Event != want[i] {
			t.Fatalf("line %d: %+v != %+v", i, l.Event, want[i])
		}
	}
}

func TestCSVExport(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	rec.Emit(5, 1, telemetry.KindSyscall, "ReadFile", 5, 0)
	rec.Emit(6, 1, telemetry.KindPhase, "a,b", 0, 0)
	var buf bytes.Buffer
	if err := telemetry.NewSet(rec).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 || lines[0] != "run,at,pid,kind,name,a,b" {
		t.Fatalf("csv:\n%s", buf.String())
	}
	if lines[1] != "0,5,1,syscall,ReadFile,5,0" {
		t.Fatalf("csv row %q", lines[1])
	}
	if !strings.Contains(lines[2], `"a,b"`) {
		t.Fatalf("comma name not quoted: %q", lines[2])
	}
}

func TestMetricsTextMerges(t *testing.T) {
	a := telemetry.NewRecorder(0)
	a.Add("c", 1)
	a.Observe("h", time.Second)
	b := telemetry.NewRecorder(0)
	b.Add("c", 2)
	b.Observe("h", time.Second)
	text := telemetry.NewSet(a, b).MetricsText()
	if !strings.Contains(text, "runs 2") || !strings.Contains(text, "c                        3") {
		t.Fatalf("metrics text:\n%s", text)
	}
	if !strings.Contains(text, "n=2 sum=2s") {
		t.Fatalf("histogram line missing:\n%s", text)
	}
}

// --- Zero-allocation disabled path -------------------------------------------

// TestNopDispatchAllocs proves the disabled telemetry path allocates
// nothing: the exact call shapes the kernel hot paths use, through the
// Collector interface, must be free.
func TestNopDispatchAllocs(t *testing.T) {
	var c telemetry.Collector = telemetry.Nop{}
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Enabled() {
			t.Fatal("Nop reports enabled")
		}
		c.Emit(1, 2, telemetry.KindSyscall, "ReadFile", 3, 4)
		c.Add(telemetry.CtrSyscalls, 1)
		c.Observe(telemetry.HistRunResponse, time.Second)
	})
	if allocs != 0 {
		t.Fatalf("Nop dispatch allocates %.1f per call, want 0", allocs)
	}
}

// --- Golden probe trace ------------------------------------------------------

// probeTrace runs the fault-free win32 probe under a recorder big enough
// to retain every event and returns the JSONL export.
func probeTrace(t *testing.T) string {
	t.Helper()
	rec := telemetry.NewRecorder(1 << 16)
	k := ntsim.NewKernel()
	k.SetTelemetry(rec)
	win32.SetupProbe(k)
	if _, err := win32.RunProbe(k); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("probe trace dropped %d events; raise the test cap", rec.Dropped())
	}
	var buf bytes.Buffer
	if err := telemetry.NewSet(rec).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestProbeTraceGolden pins the probe's full telemetry trace byte-for-byte.
// Any change to what the kernel or probe emits — order, timestamps, names —
// shows up as a first-divergence diff. Regenerate with:
//
//	go test ./internal/telemetry -run TestProbeTraceGolden -update
func TestProbeTraceGolden(t *testing.T) {
	got := probeTrace(t)
	const path = "testdata/probe_trace.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	determinism.AssertSameTranscript(t, "probe telemetry trace", got, string(want),
		func(i int, _, _ string) string {
			return fmt.Sprintf("go test ./internal/telemetry -run TestProbeTraceGolden -update # line %d", i+1)
		})
}

// TestProbeTraceRepeatable: two fresh kernels produce byte-identical
// traces — the golden file never flakes.
func TestProbeTraceRepeatable(t *testing.T) {
	if a, b := probeTrace(t), probeTrace(t); a != b {
		determinism.AssertSameTranscript(t, "probe trace rerun", b, a, nil)
	}
}

// --- Trace property tests ----------------------------------------------------

// propertySpecs samples the injectable catalog across parameters and fault
// types — every third entry keeps the test fast while spanning the API
// surface.
func propertySpecs() []inject.FaultSpec {
	var specs []inject.FaultSpec
	types := inject.AllFaultTypes()
	i := 0
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		if i++; i%3 != 0 {
			continue
		}
		specs = append(specs, inject.FaultSpec{
			Function:   e.Name,
			Param:      i % e.Params,
			Invocation: 1,
			Type:       types[i%len(types)],
		})
	}
	return specs
}

// TestTraceProperties checks two structural invariants over injected probe
// runs spanning the catalog:
//
//  1. Per-process timestamps are monotone non-decreasing: virtual time
//     never runs backwards for any PID (events of one process interleave
//     with others only at scheduling boundaries).
//  2. Fault lifecycle pairing: every activation event names the armed
//     spec, arming happens exactly once and before any activation, and an
//     injection event implies a preceding activation.
func TestTraceProperties(t *testing.T) {
	specs := propertySpecs()
	if len(specs) < 50 {
		t.Fatalf("only %d property specs; catalog shrank?", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		rec := telemetry.NewRecorder(1 << 16)
		k := ntsim.NewKernel()
		k.SetTelemetry(rec)
		injector := inject.New(k, inject.ByImage(win32.ProbeImage), &spec)
		k.SetInterceptor(injector)
		win32.SetupProbe(k)
		if _, err := win32.RunProbe(k); err != nil {
			t.Fatalf("%s: %v", spec.String(), err)
		}

		last := make(map[uint32]vclock.Time)
		var armed, activated, injected int
		var armedAt, firstActivatedAt vclock.Time
		for _, e := range rec.Events() {
			if prev, ok := last[e.PID]; ok && e.At < prev {
				t.Fatalf("%s: pid %d time runs backwards: %v after %v (%+v)",
					spec.String(), e.PID, e.At, prev, e)
			}
			last[e.PID] = e.At
			switch e.Kind {
			case telemetry.KindFaultArmed:
				armed++
				armedAt = e.At
				if e.Name != spec.String() {
					t.Fatalf("armed event names %q, want %q", e.Name, spec.String())
				}
			case telemetry.KindFaultActivated:
				if activated++; activated == 1 {
					firstActivatedAt = e.At
				}
				if e.Name != spec.String() {
					t.Fatalf("activation names %q, want armed spec %q", e.Name, spec.String())
				}
			case telemetry.KindFaultInjected:
				injected++
				if e.Name != spec.String() {
					t.Fatalf("injection names %q, want armed spec %q", e.Name, spec.String())
				}
			}
		}
		if armed != 1 {
			t.Fatalf("%s: %d arming events, want exactly 1", spec.String(), armed)
		}
		if activated > 0 && firstActivatedAt < armedAt {
			t.Fatalf("%s: activation at %v precedes arming at %v",
				spec.String(), firstActivatedAt, armedAt)
		}
		if injected > activated {
			t.Fatalf("%s: %d injections but only %d activations",
				spec.String(), injected, activated)
		}
		if got := rec.Counter(telemetry.CtrFaultActivated); got != int64(activated) {
			t.Fatalf("%s: activation counter %d != %d events", spec.String(), got, activated)
		}
	}
}
