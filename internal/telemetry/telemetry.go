// Package telemetry is the deterministic observability layer of the DTS
// reproduction: virtual-time-stamped event traces, counters and latency
// histograms collected per fault-injection run and merged in run-index
// order, so the exported artifacts are byte-identical across worker
// counts and seeds — the same guarantee the campaign engine gives for
// outcome data.
//
// Every run (one ntsim.Kernel lifetime) owns its own Recorder, so
// parallel campaign workers never contend on telemetry state. Within a
// run the kernel's cooperative scheduler serializes all emission: exactly
// one simulated process executes at a time, and harness code emits only
// between scheduling quanta.
//
// The disabled path is a zero-allocation no-op: Nop implements Collector
// with empty methods taking only scalar and string arguments, so a kernel
// without telemetry pays nothing per system call (proved by
// TestNopDispatchAllocs and pinned by BenchmarkCampaignTraced).
package telemetry

import (
	"time"

	"ntdts/internal/vclock"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KindSyscall is one system-call dispatch: Name is the API function,
	// A the raw parameter count that crossed the dispatch boundary.
	KindSyscall Kind = iota + 1
	// KindSpawn is a process creation: Name is the image, A the parent PID.
	KindSpawn
	// KindExit is a process exit: Name is the image, A the exit code.
	KindExit
	// KindHandleNew is an object-manager handle creation: Name is the
	// object kind, A the handle value.
	KindHandleNew
	// KindHandleClose is a handle close: Name is the object kind, A the
	// handle value.
	KindHandleClose
	// KindFaultArmed marks the injector arming a fault specification:
	// Name is the fault spec in fault-list syntax.
	KindFaultArmed
	// KindFaultActivated marks the armed fault's target invocation being
	// reached: Name is the fault spec, A the call count at activation.
	KindFaultActivated
	// KindFaultInjected marks the corruption actually applied: Name is
	// the fault spec, A the parameter value before and B after corruption.
	KindFaultInjected
	// KindSpanBegin opens a named span (run phase, probe execution).
	KindSpanBegin
	// KindSpanEnd closes a span: A is the span duration in nanoseconds of
	// virtual time.
	KindSpanEnd
	// KindPhase is a point-in-time lifecycle marker (run phases, outcome
	// classification): Name is the phase label, A an optional argument.
	KindPhase
	// KindRunRetry marks the campaign supervisor recording abandoned
	// attempts of a run that eventually completed: Name is the fault spec,
	// A the number of retries that preceded the recorded attempt, B the
	// failure-reason code of the last abandoned attempt.
	KindRunRetry
	// KindRunQuarantine marks the supervisor giving up on a run after its
	// retry budget: Name is the fault spec, A the attempt count, B the
	// failure-reason code.
	KindRunQuarantine
)

// String names the kind the way exported trace lines spell it.
func (k Kind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindSpawn:
		return "spawn"
	case KindExit:
		return "exit"
	case KindHandleNew:
		return "handle-new"
	case KindHandleClose:
		return "handle-close"
	case KindFaultArmed:
		return "fault-armed"
	case KindFaultActivated:
		return "fault-activated"
	case KindFaultInjected:
		return "fault-injected"
	case KindSpanBegin:
		return "span-begin"
	case KindSpanEnd:
		return "span-end"
	case KindPhase:
		return "phase"
	case KindRunRetry:
		return "run-retry"
	case KindRunQuarantine:
		return "run-quarantine"
	default:
		return "unknown"
	}
}

// kindFromString inverts String for trace ingestion.
func kindFromString(s string) Kind {
	for k := KindSyscall; k <= KindRunQuarantine; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Counter and histogram names used across the stack. Centralized so the
// emitting packages and the report layer agree on spelling.
const (
	CtrSchedQuanta    = "sched.quanta"
	CtrSyscalls       = "syscall.dispatch"
	CtrHandleNew      = "handle.new"
	CtrHandleClose    = "handle.close"
	CtrSpawn          = "proc.spawn"
	CtrExit           = "proc.exit"
	CtrFaultArmed     = "fault.armed"
	CtrFaultActivated = "fault.activated"
	CtrFaultInjected  = "fault.injected"
	CtrRunCompleted   = "run.completed"
	CtrRunDeadline    = "run.deadline"
	CtrRunRestarts    = "run.restarts"
	CtrRunRetried     = "run.retried"
	CtrSupRetry       = "supervise.retry"
	CtrSupQuarantine  = "supervise.quarantined"
	CtrTraceDropped   = "trace.dropped"

	HistRunResponse = "run.response"
	HistCellVTime   = "cell.vtime"
	SpanRun         = "run"
	SpanProbe       = "probe"
)

// Event is one virtual-time-stamped trace record. At is exact (virtual
// nanoseconds since the run's epoch); PID 0 marks harness-level events
// emitted outside any simulated process.
type Event struct {
	At   vclock.Time
	PID  uint32
	Kind Kind
	Name string
	A, B uint64
}

// Collector receives telemetry. Implementations: Recorder (enabled) and
// Nop (disabled, zero-allocation). All methods take scalar and string
// arguments only, so the disabled path never boxes or allocates.
type Collector interface {
	// Enabled reports whether emission has any effect; callers may use it
	// to gate work (string formatting) that only feeds telemetry.
	Enabled() bool
	// Emit records one trace event.
	Emit(at vclock.Time, pid uint32, kind Kind, name string, a, b uint64)
	// Add increments a named counter.
	Add(counter string, delta int64)
	// Observe records a virtual-time duration in a named histogram.
	Observe(hist string, d time.Duration)
}

// Nop is the disabled collector: every method is an empty no-op. It is
// the kernel's default, and its dispatch path adds zero allocations
// (asserted by TestNopDispatchAllocs).
type Nop struct{}

// Enabled implements Collector.
func (Nop) Enabled() bool { return false }

// Emit implements Collector.
func (Nop) Emit(vclock.Time, uint32, Kind, string, uint64, uint64) {}

// Add implements Collector.
func (Nop) Add(string, int64) {}

// Observe implements Collector.
func (Nop) Observe(string, time.Duration) {}

// Options selects per-run telemetry collection. The zero value is
// disabled — runs pay nothing.
type Options struct {
	// Enabled turns collection on: each run gets its own Recorder.
	Enabled bool
	// TraceCap bounds the per-run event ring (<= 0: DefaultTraceCap).
	TraceCap int
}

// NewRecorder returns a fresh per-run Recorder, or nil when disabled.
func (o Options) NewRecorder() *Recorder {
	if !o.Enabled {
		return nil
	}
	return NewRecorder(o.TraceCap)
}

// DefaultTraceCap is the default ring-buffer capacity of a Recorder:
// enough for a whole probe run, bounded so a campaign of thousands of
// runs keeps a predictable footprint (~60 KB of events per run).
const DefaultTraceCap = 1024

// histBuckets are the histogram bucket upper bounds: power-of-two
// virtual milliseconds from 1 ms to ~131 s, plus +inf. Virtual-time
// latencies in the simulation live comfortably inside this range.
var histBuckets = func() []time.Duration {
	var b []time.Duration
	for d := time.Millisecond; d <= 1<<17*time.Millisecond; d *= 2 {
		b = append(b, d)
	}
	return b
}()

// Hist is a fixed-bucket virtual-time latency histogram.
type Hist struct {
	Counts []uint64 // len(histBuckets)+1; last bucket is +inf
	N      uint64
	Sum    time.Duration
}

func newHist() *Hist { return &Hist{Counts: make([]uint64, len(histBuckets)+1)} }

func (h *Hist) observe(d time.Duration) {
	i := 0
	for i < len(histBuckets) && d > histBuckets[i] {
		i++
	}
	h.Counts[i]++
	h.N++
	h.Sum += d
}

// merge folds other into h.
func (h *Hist) merge(other *Hist) {
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
	h.Sum += other.Sum
}

// Recorder is the enabled Collector: a bounded ring-buffer event trace
// plus counters and histograms, for exactly one run. Not safe for
// concurrent use; the run's cooperative scheduler provides the required
// serialization.
type Recorder struct {
	cap     int
	events  []Event
	start   int // ring read position once len(events) == cap
	dropped uint64

	counters map[string]int64
	hists    map[string]*Hist
}

var _ Collector = (*Recorder)(nil)

// NewRecorder returns an enabled collector whose event trace keeps at
// most cap events (the newest win; the drop count is retained). cap <= 0
// selects DefaultTraceCap.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Recorder{
		cap:      cap,
		counters: make(map[string]int64),
		hists:    make(map[string]*Hist),
	}
}

// Enabled implements Collector.
func (r *Recorder) Enabled() bool { return true }

// Emit implements Collector: the event lands in the ring buffer,
// displacing the oldest event once the buffer is full.
func (r *Recorder) Emit(at vclock.Time, pid uint32, kind Kind, name string, a, b uint64) {
	e := Event{At: at, PID: pid, Kind: kind, Name: name, A: a, B: b}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
	r.dropped++
}

// Add implements Collector.
func (r *Recorder) Add(counter string, delta int64) {
	r.counters[counter] += delta
}

// Observe implements Collector.
func (r *Recorder) Observe(hist string, d time.Duration) {
	h := r.hists[hist]
	if h == nil {
		h = newHist()
		r.hists[hist] = h
	}
	h.observe(d)
}

// Events returns the retained trace in emission order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dropped reports how many events the bounded ring displaced.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// LastTime returns the latest virtual timestamp in the retained trace
// (zero when the trace is empty). The campaign supervisor stamps its
// post-run provenance events with it, so per-PID timestamps stay monotone.
func (r *Recorder) LastTime() vclock.Time {
	var max vclock.Time
	for _, e := range r.events {
		if e.At > max {
			max = e.At
		}
	}
	return max
}

// Counter returns the value of a named counter (0 when never touched).
func (r *Recorder) Counter(name string) int64 { return r.counters[name] }

// Span is an open interval of virtual time bracketed by a begin/end event
// pair, with the duration recorded in the histogram named after the span.
type Span struct {
	c     Collector
	name  string
	pid   uint32
	begin vclock.Time
}

// StartSpan opens a span on c. On a disabled collector the span is free.
func StartSpan(c Collector, at vclock.Time, pid uint32, name string) Span {
	c.Emit(at, pid, KindSpanBegin, name, 0, 0)
	return Span{c: c, name: name, pid: pid, begin: at}
}

// End closes the span at the given virtual instant.
func (s Span) End(at vclock.Time) {
	d := at.Sub(s.begin)
	s.c.Emit(at, s.pid, KindSpanEnd, s.name, uint64(d), 0)
	s.c.Observe(s.name, d)
}
