package telemetry

import "ntdts/internal/vclock"

// Snapshot is the serializable state of one Recorder — what the results
// journal stores per completed run so a resumed campaign exports traces
// and metrics byte-identical to an uninterrupted one. A Restore of a
// Snapshot of a recorder yields a recorder whose Events(), counters and
// histograms render exactly as the original's.
type Snapshot struct {
	Cap     int             `json:"cap"`
	Dropped uint64          `json:"dropped,omitempty"`
	Events  []SnapshotEvent `json:"events,omitempty"`
	// Counters and Hists marshal with sorted keys (encoding/json), so
	// snapshot bytes are deterministic for a deterministic run.
	Counters map[string]int64 `json:"counters,omitempty"`
	Hists    map[string]*Hist `json:"hists,omitempty"`
}

// SnapshotEvent is the wire form of one trace event, mirroring the JSONL
// trace line fields (minus the run index, which the journal keys).
type SnapshotEvent struct {
	At   int64  `json:"at"`
	PID  uint32 `json:"pid"`
	Kind string `json:"kind"`
	Name string `json:"name"`
	A    uint64 `json:"a,omitempty"`
	B    uint64 `json:"b,omitempty"`
}

// Snapshot captures the recorder's full state with the event ring
// linearized into emission order.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Cap: r.cap, Dropped: r.dropped}
	for _, e := range r.Events() {
		s.Events = append(s.Events, SnapshotEvent{
			At: int64(e.At), PID: e.PID, Kind: e.Kind.String(), Name: e.Name, A: e.A, B: e.B,
		})
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]*Hist, len(r.hists))
		for k, h := range r.hists {
			c := &Hist{Counts: append([]uint64(nil), h.Counts...), N: h.N, Sum: h.Sum}
			s.Hists[k] = c
		}
	}
	return s
}

// Restore rebuilds a Recorder from a snapshot. The ring starts
// linearized (read position zero), which renders identically to the
// original ring in every export path.
func (s *Snapshot) Restore() *Recorder {
	r := NewRecorder(s.Cap)
	r.dropped = s.Dropped
	for _, e := range s.Events {
		r.events = append(r.events, Event{
			At: vclock.Time(e.At), PID: e.PID, Kind: kindFromString(e.Kind), Name: e.Name, A: e.A, B: e.B,
		})
	}
	for k, v := range s.Counters {
		r.counters[k] = v
	}
	for k, h := range s.Hists {
		r.hists[k] = &Hist{Counts: append([]uint64(nil), h.Counts...), N: h.N, Sum: h.Sum}
	}
	return r
}
