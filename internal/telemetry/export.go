package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"ntdts/internal/vclock"
)

// Set is an ordered collection of per-run recorders — one per campaign
// run, sweep cell, or probe — merged deterministically in run-index
// order. A nil entry means that run recorded nothing (e.g. a conformance
// cell the probe never reaches); its index is still occupied, so run
// numbering in exports is stable across worker counts and seeds.
type Set struct {
	Runs []*Recorder
}

// NewSet wraps recorders (nil entries allowed) in run-index order.
func NewSet(runs ...*Recorder) *Set { return &Set{Runs: runs} }

// Append adds one run's recorder (possibly nil) at the next index.
func (s *Set) Append(r *Recorder) { s.Runs = append(s.Runs, r) }

// Merge concatenates sets in argument order, preserving each set's
// run-index positions (nil placeholders included). This is the
// deterministic merge rule shared by experiment fan-out (argument order
// = canonical set order) and shard coordination (argument order =
// shard-index order): because every run owns its collector and keeps
// its position, the merged exports are byte-identical however the
// source sets were executed. Returns nil when no argument carried any
// telemetry (all nil sets), so callers can distinguish "telemetry off"
// from "empty".
func Merge(sets ...*Set) *Set {
	merged := NewSet()
	any := false
	for _, s := range sets {
		if s == nil {
			continue
		}
		any = true
		merged.Runs = append(merged.Runs, s.Runs...)
	}
	if !any {
		return nil
	}
	return merged
}

// Events reports the total number of retained trace events.
func (s *Set) Events() int {
	n := 0
	for _, r := range s.Runs {
		if r != nil {
			n += len(r.events)
		}
	}
	return n
}

// Dropped reports the total number of ring-displaced events.
func (s *Set) Dropped() uint64 {
	var n uint64
	for _, r := range s.Runs {
		if r != nil {
			n += r.dropped
		}
	}
	return n
}

// TraceLine is one ingested trace record: the run index plus the event.
type TraceLine struct {
	Run   int
	Event Event
}

// jsonEvent is the JSONL wire form of one trace line. Field order is the
// struct order, so encoding is byte-stable.
type jsonEvent struct {
	Run  int    `json:"run"`
	At   int64  `json:"at"` // virtual nanoseconds since the run epoch
	PID  uint32 `json:"pid"`
	Kind string `json:"kind"`
	Name string `json:"name"`
	A    uint64 `json:"a"`
	B    uint64 `json:"b"`
}

// WriteJSONL streams the merged trace as one JSON object per line, runs
// in index order, events in emission order — byte-identical for any
// worker count that produced the recorders.
func (s *Set) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for run, r := range s.Runs {
		if r == nil {
			continue
		}
		for _, e := range r.Events() {
			if err := writeJSONEvent(bw, run, e); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeJSONEvent(w io.Writer, run int, e Event) error {
	// Hand-rolled for speed and exact field order; Name is the only field
	// that needs quoting.
	_, err := fmt.Fprintf(w, `{"run":%d,"at":%d,"pid":%d,"kind":%q,"name":%q,"a":%d,"b":%d}`+"\n",
		run, int64(e.At), e.PID, e.Kind.String(), e.Name, e.A, e.B)
	return err
}

// WriteCSV streams the merged trace as CSV with a fixed header.
func (s *Set) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "run,at,pid,kind,name,a,b\n"); err != nil {
		return err
	}
	for run, r := range s.Runs {
		if r == nil {
			continue
		}
		for _, e := range r.Events() {
			_, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%s,%d,%d\n",
				run, int64(e.At), e.PID, e.Kind, csvEscape(e.Name), e.A, e.B)
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// csvEscape quotes a field only when it needs it (names with commas —
// fault specs never have them, but custom span labels might).
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return strconv.Quote(s)
	}
	return s
}

// ReadJSONL parses a trace previously written by WriteJSONL. Unknown
// kinds parse to Kind 0 rather than failing, so newer traces stay
// readable by older readers.
func ReadJSONL(r io.Reader) ([]TraceLine, error) {
	var out []TraceLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", lineNo, err)
		}
		out = append(out, TraceLine{
			Run: je.Run,
			Event: Event{
				At:   vclock.Time(je.At),
				PID:  je.PID,
				Kind: kindFromString(je.Kind),
				Name: je.Name,
				A:    je.A,
				B:    je.B,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergedCounters sums every run's counters. Keys are returned sorted so
// iteration is deterministic.
func (s *Set) MergedCounters() (names []string, values map[string]int64) {
	values = make(map[string]int64)
	for _, r := range s.Runs {
		if r == nil {
			continue
		}
		for name, v := range r.counters {
			values[name] += v
		}
	}
	names = make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, values
}

// MergedHists merges every run's histograms. Keys are returned sorted.
func (s *Set) MergedHists() (names []string, hists map[string]*Hist) {
	hists = make(map[string]*Hist)
	for _, r := range s.Runs {
		if r == nil {
			continue
		}
		for name, h := range r.hists {
			m := hists[name]
			if m == nil {
				m = newHist()
				hists[name] = m
			}
			m.merge(h)
		}
	}
	names = make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, hists
}

// MetricsText renders the merged metrics as a deterministic text table:
// sorted counters, then sorted histograms with their non-empty buckets.
// Two Sets produced from the same runs render byte-identically whatever
// the worker count that executed them.
func (s *Set) MetricsText() string {
	var b strings.Builder
	runs := 0
	for _, r := range s.Runs {
		if r != nil {
			runs++
		}
	}
	fmt.Fprintf(&b, "runs %d  events %d  dropped %d\n", runs, s.Events(), s.Dropped())

	names, counters := s.MergedCounters()
	if len(names) > 0 {
		b.WriteString("counters:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-24s %d\n", name, counters[name])
		}
	}
	hnames, hists := s.MergedHists()
	if len(hnames) > 0 {
		b.WriteString("histograms (virtual time):\n")
		for _, name := range hnames {
			h := hists[name]
			fmt.Fprintf(&b, "  %-24s n=%d sum=%s%s\n", name, h.N, h.Sum, bucketText(h))
		}
	}
	return b.String()
}

// bucketText renders a histogram's non-empty buckets in bound order.
func bucketText(h *Hist) string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if i < len(histBuckets) {
			fmt.Fprintf(&b, " le%s=%d", compactDur(histBuckets[i]), c)
		} else {
			fmt.Fprintf(&b, " inf=%d", c)
		}
	}
	return b.String()
}

// compactDur renders bucket bounds without trailing zero units
// (time.Duration.String renders 2s as "2s" and 1.024s as "1.024s";
// both are stable, so the default formatting suffices).
func compactDur(d time.Duration) string { return d.String() }
