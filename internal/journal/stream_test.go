package journal

import (
	"errors"
	"io"
	"strings"
	"testing"
)

const streamLines = `{"kind":"header","version":1,"workload":"IIS","supervision":"none","serverUpTimeoutNS":1,"runDeadlineNS":2}
{"kind":"run","index":0,"key":"ReadFile/0/1/zero","result":{}}
{"kind":"heartbeat","index":1}
{"kind":"done","index":1}
`

func TestStreamReadsAllKinds(t *testing.T) {
	st := NewStream(strings.NewReader(streamLines))
	kinds := []string{KindHeader, KindRun, KindHeartbeat, KindDone}
	for i, want := range kinds {
		l, err := st.Next()
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if l.Kind != want {
			t.Fatalf("line %d kind = %q, want %q", i+1, l.Kind, want)
		}
		switch want {
		case KindHeader:
			if l.Header == nil || l.Header.Workload != "IIS" {
				t.Fatalf("header not decoded: %+v", l.Header)
			}
		default:
			if l.Rec == nil {
				t.Fatalf("record not decoded for %q", want)
			}
		}
	}
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("after last line: %v, want io.EOF", err)
	}
	if st.Offset() != int64(len(streamLines)) {
		t.Fatalf("offset %d, want %d", st.Offset(), len(streamLines))
	}
	if st.LineNo() != 4 {
		t.Fatalf("line count %d, want 4", st.LineNo())
	}
}

func TestStreamTornTail(t *testing.T) {
	cases := map[string]string{
		"unterminated":      streamLines + `{"kind":"run","ind`,
		"terminated-garble": streamLines + "{\"kind\":\"run\",\"ind\n",
	}
	for name, data := range cases {
		st := NewStream(strings.NewReader(data))
		var err error
		n := 0
		for err == nil {
			_, err = st.Next()
			if err == nil {
				n++
			}
		}
		if !errors.Is(err, ErrTorn) {
			t.Errorf("%s: error %v, want ErrTorn", name, err)
		}
		if n != 4 {
			t.Errorf("%s: %d whole lines decoded, want 4", name, n)
		}
		// The offset must exclude the torn tail, so truncating to it
		// yields a record-complete prefix.
		if st.Offset() != int64(len(streamLines)) {
			t.Errorf("%s: offset %d, want %d", name, st.Offset(), len(streamLines))
		}
	}
}

func TestStreamMidStreamGarbageIsHardError(t *testing.T) {
	data := strings.Replace(streamLines, `{"kind":"heartbeat","index":1}`, "not json at all", 1)
	st := NewStream(strings.NewReader(data))
	var err error
	for err == nil {
		_, err = st.Next()
	}
	if errors.Is(err, ErrTorn) || err == io.EOF {
		t.Fatalf("mid-stream garbage classified as %v, want a hard error", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not name the corrupt line", err)
	}
}

func TestStreamUnknownKind(t *testing.T) {
	st := NewStream(strings.NewReader(`{"kind":"martian"}` + "\n\n"))
	_, err := st.Next()
	if err == nil || !strings.Contains(err.Error(), "martian") {
		t.Fatalf("unknown kind error = %v", err)
	}
}

// TestStreamLivePipe is the shard-protocol use: Next blocks on a pipe
// until the writer produces a full line, decodes it, and sees EOF only
// when the writer closes.
func TestStreamLivePipe(t *testing.T) {
	r, w := io.Pipe()
	go func() {
		for _, line := range strings.SplitAfter(streamLines, "\n") {
			if line == "" {
				continue
			}
			// Two writes per line proves Next waits for the newline.
			io.WriteString(w, line[:3])
			io.WriteString(w, line[3:])
		}
		w.Close()
	}()
	st := NewStream(r)
	n := 0
	for {
		_, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("%d lines from pipe, want 4", n)
	}
}

// TestStreamWriterDiesMidLine: a writer killed mid-record leaves an
// unterminated line; the live reader reports ErrTorn, which the shard
// coordinator maps to worker death.
func TestStreamWriterDiesMidLine(t *testing.T) {
	r, w := io.Pipe()
	go func() {
		io.WriteString(w, `{"kind":"heartbeat","index":3}`+"\n")
		io.WriteString(w, `{"kind":"run","inde`)
		w.CloseWithError(io.EOF) // reader sees plain EOF, as after process exit
	}()
	st := NewStream(r)
	if l, err := st.Next(); err != nil || l.Kind != KindHeartbeat {
		t.Fatalf("first line: %v, %v", l, err)
	}
	if _, err := st.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn pipe tail: %v, want ErrTorn", err)
	}
}
