// Package journal implements the crash-safe, resumable results store of
// the campaign supervisor: an append-only JSONL file recording the
// campaign configuration (header), the planned job list (plan), and one
// record per completed or quarantined run, plus a periodically-updated
// atomic checkpoint sidecar.
//
// Crash safety rests on two properties. First, every record is exactly
// one newline-terminated JSON line written with a single Write call, so
// a process killed mid-write leaves at most one torn line — and only at
// the tail. Replay detects the torn tail (missing newline, or invalid
// JSON on the final line) and discards it; an invalid line anywhere
// *before* the tail is corruption and a hard error. Second, the
// checkpoint sidecar (<journal>.ckpt) is replaced atomically (write
// temp, rename) every CheckpointEvery records, recording a byte offset
// known to end on a record boundary; replay cross-checks it to
// distinguish "torn tail from a crash" (ok) from "truncated below the
// last checkpoint" (corruption).
//
// The package is deliberately payload-agnostic: run results and
// telemetry snapshots travel as json.RawMessage, so journal does not
// import internal/core (core imports journal) and the replayed bytes
// are exactly the written bytes — the foundation of the byte-identical
// resume guarantee.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Version is the journal format version; Replay rejects others.
const Version = 1

// CheckpointEvery is how many records land between checkpoint updates.
// Each checkpoint costs an fsync (the data must be durable before the
// checkpoint claims it is), and a process kill — the threat the journal
// defends against — loses no page-cache writes anyway, so the cadence
// only bounds loss on a whole-OS crash. 256 records keeps the fsync tax
// under the campaign engine's 1.10x overhead budget at ~1k runs/sec.
const CheckpointEvery = 256

// Line kinds.
const (
	KindHeader     = "header"
	KindPlan       = "plan"
	KindRun        = "run"
	KindQuarantine = "quarantine"
	// KindAssign is a fleet-dispatch provenance line: which worker a
	// chunk of job indices was handed to, and what became of it
	// (assigned, redispatched, speculated, drained locally). Assign
	// lines are informational — replay collects them for dtsreport's
	// triage view but they never affect resume, and they are excluded
	// from the record count the checkpoint sidecar cross-checks.
	KindAssign = "assign"
)

// Header is the first line of every journal: the full campaign
// configuration a resume needs to rebuild an identical runner, plus the
// supervisor policy (recorded so a resume can report what it is
// continuing, and so mismatched flags are detectable).
type Header struct {
	Kind    string `json:"kind"` // "header"
	Version int    `json:"version"`

	Workload      string `json:"workload"`
	Supervision   string `json:"supervision"`
	WatchdVersion int    `json:"watchdVersion,omitempty"`

	ServerUpTimeoutNS int64 `json:"serverUpTimeoutNS"`
	RunDeadlineNS     int64 `json:"runDeadlineNS"`
	Telemetry         bool  `json:"telemetry,omitempty"`
	TraceCapacity     int   `json:"traceCapacity,omitempty"`
	FreshBoot         bool  `json:"freshBoot,omitempty"`

	// ClusterNodes and ClusterRouting describe the simulated cluster
	// topology runs execute on (0/"" = classic single host). They ride
	// the header so shard workers and resumes rebuild identical
	// clusters.
	ClusterNodes   int    `json:"clusterNodes,omitempty"`
	ClusterRouting string `json:"clusterRouting,omitempty"`

	// Cohort and WorkloadTrace describe a generated-workload client:
	// Cohort is the canonical workloadgen spec string, WorkloadTrace the
	// schedule-trace file replayed as the client. At most one is set;
	// both empty means the workload's canned client. They ride the header
	// so shard workers and resumes rebuild the identical schedule.
	Cohort        string `json:"cohort,omitempty"`
	WorkloadTrace string `json:"workloadTrace,omitempty"`

	FaultList string `json:"faultList,omitempty"` // source path, informational

	WallDeadlineNS int64 `json:"wallDeadlineNS,omitempty"`
	MaxAttempts    int   `json:"maxAttempts,omitempty"`
	MaxQuarantined int   `json:"maxQuarantined,omitempty"`
	Chaos          bool  `json:"chaos,omitempty"`
}

// Plan is the second line: the ordered job list the campaign will
// execute, identified by spec key (probe jobs carry the "/probe"
// suffix), plus an fnv64a fingerprint of the same sequence. A resume
// rebuilds its own job list and must reproduce the fingerprint exactly
// before any journaled record is trusted.
type Plan struct {
	Kind        string   `json:"kind"` // "plan"
	Jobs        []string `json:"jobs"`
	Fingerprint string   `json:"fingerprint"`

	// Shard-assignment fields, set only on the wire when a coordinator
	// hands a plan slice to a shard worker (internal/shard); journal
	// files written by the campaign supervisor never carry them, so the
	// on-disk format is unchanged.
	//
	// Shard is the assignment's shard number; Index[i] is the global
	// job-list position of Jobs[i] (re-dispatched remainders are not
	// contiguous); Parallelism sizes the worker's run pool; HeartbeatNS
	// is the liveness beacon period the coordinator expects.
	Shard       int   `json:"shard,omitempty"`
	Index       []int `json:"index,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
	HeartbeatNS int64 `json:"heartbeatNS,omitempty"`

	// ChaosKillAfter, when > 0, instructs the worker to SIGKILL itself
	// after writing that many run records — the coordinator's
	// worker-failure drill (dts -chaos + DTS_SHARD_CHAOS_KILL). Set only
	// on a shard's first dispatch, so the respawned worker survives.
	ChaosKillAfter int `json:"chaosKillAfter,omitempty"`

	// ChaosHangAfter, when > 0, wedges the worker after that many run
	// records: the run loop blocks forever while the heartbeat beacon
	// keeps ticking — the drill for the dispatcher's progress deadline
	// and speculative re-issue (dts -chaos + DTS_SHARD_CHAOS_HANG).
	ChaosHangAfter int `json:"chaosHangAfter,omitempty"`

	// ChaosSlowMS, when > 0, sleeps that many milliseconds before every
	// run — a deliberate straggler for the work-stealing benchmarks and
	// the CI fleet-chaos gate (dts -chaos + DTS_SHARD_CHAOS_SLOW).
	ChaosSlowMS int `json:"chaosSlowMS,omitempty"`
}

// Record is one run or quarantine line.
type Record struct {
	Kind     string `json:"kind"`
	Index    int    `json:"index"` // job-list position
	Key      string `json:"key"`   // FaultSpec.Key(), cross-checked on replay
	Attempts int    `json:"attempts,omitempty"`

	// Run payloads (kind "run").
	Result json.RawMessage `json:"result,omitempty"` // core.RunResult
	Tel    json.RawMessage `json:"tel,omitempty"`    // telemetry.Snapshot

	// Quarantine payloads (kind "quarantine").
	Fault   json.RawMessage `json:"fault,omitempty"` // inject.FaultSpec
	Reason  string          `json:"reason,omitempty"`
	Message string          `json:"message,omitempty"`
	Stack   string          `json:"stack,omitempty"`

	// Assign payloads (kind "assign"): the fleet dispatcher's
	// provenance trail. Worker is the slot number (-1 for the local
	// drainer), Event the chunk lifecycle step, Indices the global job
	// indices involved.
	Worker  int    `json:"worker,omitempty"`
	Event   string `json:"event,omitempty"`
	Indices []int  `json:"indices,omitempty"`
}

// Checkpoint is the atomic sidecar: a byte offset and record count known
// to end exactly on a record boundary.
type Checkpoint struct {
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// Writer appends records to a journal file. Safe for concurrent use by
// campaign workers; every line is emitted with a single Write call.
// Errors are sticky: after the first failure every call returns it.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int
	bytes   int64
	err     error
}

// Create starts a fresh journal at path, writing the header line.
func Create(path string, h Header) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal create: %w", err)
	}
	w := &Writer{f: f, path: path}
	h.Kind = KindHeader
	h.Version = Version
	if err := w.writeLine(h); err != nil {
		f.Close()
		return nil, err
	}
	// Reset the checkpoint sidecar: a stale one from a previous campaign
	// at the same path would out-claim this journal and turn an early
	// kill into a refused ("corrupt, not torn") resume.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal sync: %w", err)
	}
	if err := writeCheckpoint(path, Checkpoint{Records: 0, Bytes: w.bytes}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append reopens an existing journal for appending after a replay,
// first truncating any torn tail: validBytes is Replayed.ValidBytes,
// the prefix replay verified record-complete.
func Append(path string, validBytes int64, records int) (*Writer, error) {
	if err := os.Truncate(path, validBytes); err != nil {
		return nil, fmt.Errorf("journal truncate torn tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal append: %w", err)
	}
	return &Writer{f: f, path: path, records: records, bytes: validBytes}, nil
}

// Path returns the journal file path.
func (w *Writer) Path() string { return w.path }

// Records returns how many run/quarantine records have been written
// (header and plan lines excluded).
func (w *Writer) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// writeLine marshals v and appends it as one newline-terminated line in
// a single Write call. Caller must NOT hold w.mu.
func (w *Writer) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal marshal: %w", err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(data); err != nil {
		w.err = fmt.Errorf("journal write: %w", err)
		return w.err
	}
	w.bytes += int64(len(data))
	return nil
}

// writeRecord appends a record line and maintains the checkpoint cycle.
func (w *Writer) writeRecord(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal marshal: %w", err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(data); err != nil {
		w.err = fmt.Errorf("journal write: %w", err)
		return w.err
	}
	w.bytes += int64(len(data))
	w.records++
	if w.records%CheckpointEvery == 0 {
		// Checkpoint durability: the data must be on disk before the
		// checkpoint claims it is.
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal sync: %w", err)
			return w.err
		}
		if err := writeCheckpoint(w.path, Checkpoint{Records: w.records, Bytes: w.bytes}); err != nil {
			w.err = err
			return w.err
		}
	}
	return nil
}

// WritePlan appends the plan line.
func (w *Writer) WritePlan(jobs []string, fingerprint string) error {
	return w.writeLine(Plan{Kind: KindPlan, Jobs: jobs, Fingerprint: fingerprint})
}

// WriteRun appends one completed-run record.
func (w *Writer) WriteRun(index int, key string, attempts int, result, tel json.RawMessage) error {
	return w.writeRecord(Record{
		Kind: KindRun, Index: index, Key: key, Attempts: attempts,
		Result: result, Tel: tel,
	})
}

// WriteAssign appends one fleet-dispatch provenance line. It uses the
// plain line path, not the record path: assign lines carry no results,
// so they stay outside the record count the checkpoint sidecar
// cross-checks against replay.
func (w *Writer) WriteAssign(worker int, event string, indices []int) error {
	return w.writeLine(Record{Kind: KindAssign, Worker: worker, Event: event, Indices: indices})
}

// WriteQuarantine appends one quarantine record.
func (w *Writer) WriteQuarantine(index int, key string, fault json.RawMessage, reason, message, stack string, attempts int) error {
	return w.writeRecord(Record{
		Kind: KindQuarantine, Index: index, Key: key, Attempts: attempts,
		Fault: fault, Reason: reason, Message: message, Stack: stack,
	})
}

// Sync flushes the file and writes a final checkpoint. Called on
// graceful completion and on interrupt.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal sync: %w", err)
		return w.err
	}
	if err := writeCheckpoint(w.path, Checkpoint{Records: w.records, Bytes: w.bytes}); err != nil {
		w.err = err
		return w.err
	}
	return nil
}

// Close closes the journal file (without an implicit Sync; call Sync
// first for a durable final checkpoint).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil && w.err == nil {
		w.err = err
	}
	return err
}

// ckptPath is the checkpoint sidecar path for a journal.
func ckptPath(path string) string { return path + ".ckpt" }

// writeCheckpoint atomically replaces the checkpoint sidecar.
func writeCheckpoint(path string, c Checkpoint) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("checkpoint marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".ckpt.tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint write: w=%v s=%v c=%v", werr, serr, cerr)
	}
	if err := os.Rename(tmpName, ckptPath(path)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint rename: %w", err)
	}
	return nil
}

// readCheckpoint loads the sidecar if present; (nil, nil) when absent.
func readCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(ckptPath(path))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint read: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(bytes.TrimSpace(data), &c); err != nil {
		return nil, fmt.Errorf("checkpoint parse: %w", err)
	}
	return &c, nil
}

// RunRecord is a replayed completed run.
type RunRecord struct {
	Key      string
	Attempts int
	Result   json.RawMessage
	Tel      json.RawMessage
}

// QuarantineRecord is a replayed quarantine entry.
type QuarantineRecord struct {
	Key      string
	Attempts int
	Fault    json.RawMessage
	Reason   string
	Message  string
	Stack    string
}

// DispatchEvent is a replayed fleet-dispatch provenance line.
type DispatchEvent struct {
	Worker  int
	Event   string
	Indices []int
}

// Replayed is the parsed state of a journal: everything a resume needs.
type Replayed struct {
	Header      Header
	Plan        *Plan
	Runs        map[int]RunRecord
	Quarantined map[int]QuarantineRecord
	// Dispatch holds the fleet coordinator's chunk-assignment trail, in
	// journal order (empty for supervised in-process campaigns).
	Dispatch []DispatchEvent
	// Torn reports that the final line was incomplete or unparsable and
	// was discarded. ValidBytes is the verified record-complete prefix
	// length — pass it to Append to truncate before continuing.
	Torn       bool
	ValidBytes int64
	Records    int
}

// Replay parses a journal, discarding a torn final line (the signature
// of a killed process) and rejecting corruption anywhere else. The
// checkpoint sidecar, when present, tightens the classification: a
// journal shorter than its last checkpoint is corrupt, not torn. Replay
// is the file-shaped use of the streaming reader the shard protocol
// reads live pipes with (Stream).
func Replay(path string) (*Replayed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal read: %w", err)
	}
	defer f.Close()
	rep := &Replayed{
		Runs:        make(map[int]RunRecord),
		Quarantined: make(map[int]QuarantineRecord),
	}
	st := NewStream(f)
	for {
		line, err := st.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrTorn) {
			rep.Torn = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("journal %s: corrupt %v", path, err)
		}
		switch line.Kind {
		case KindHeader:
			if st.LineNo() != 1 {
				return nil, fmt.Errorf("journal %s: header on line %d", path, st.LineNo())
			}
			rep.Header = *line.Header
		case KindPlan:
			if rep.Plan != nil {
				return nil, fmt.Errorf("journal %s: duplicate plan on line %d", path, st.LineNo())
			}
			rep.Plan = line.Plan
		case KindRun:
			rec := line.Rec
			rep.Runs[rec.Index] = RunRecord{
				Key: rec.Key, Attempts: rec.Attempts, Result: rec.Result, Tel: rec.Tel,
			}
			rep.Records++
		case KindQuarantine:
			rec := line.Rec
			rep.Quarantined[rec.Index] = QuarantineRecord{
				Key: rec.Key, Attempts: rec.Attempts, Fault: rec.Fault,
				Reason: rec.Reason, Message: rec.Message, Stack: rec.Stack,
			}
			rep.Records++
		case KindAssign:
			rec := line.Rec
			rep.Dispatch = append(rep.Dispatch, DispatchEvent{
				Worker: rec.Worker, Event: rec.Event, Indices: rec.Indices,
			})
		default:
			// Heartbeat/done/error lines live on shard streams only; in a
			// journal file they mean someone saved a raw worker stream.
			return nil, fmt.Errorf("journal %s: stray stream record %q on line %d", path, line.Kind, st.LineNo())
		}
	}
	rep.ValidBytes = st.Offset()
	if rep.Header.Kind != KindHeader {
		return nil, fmt.Errorf("journal %s: missing header", path)
	}
	if rep.Header.Version != Version {
		return nil, fmt.Errorf("journal %s: version %d, want %d", path, rep.Header.Version, Version)
	}
	if ckpt, err := readCheckpoint(path); err == nil && ckpt != nil {
		if rep.ValidBytes < ckpt.Bytes || rep.Records < ckpt.Records {
			return nil, fmt.Errorf("journal %s: shorter than checkpoint (%d/%d bytes, %d/%d records) — corrupt, not torn",
				path, rep.ValidBytes, ckpt.Bytes, rep.Records, ckpt.Records)
		}
	}
	return rep, nil
}
