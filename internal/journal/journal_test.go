package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{Workload: "IIS", Supervision: "none", RunDeadlineNS: 1e9}
}

// writeJournal builds a journal with n run records and returns its path.
func writeJournal(t *testing.T, dir string, n int) string {
	t.Helper()
	path := filepath.Join(dir, "t.journal")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePlan([]string{"ReadFile/0/1/1", "WriteFile/0/1/2"}, "deadbeefdeadbeef"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res := json.RawMessage(`{"outcome":1}`)
		if err := w.WriteRun(i, "ReadFile/0/1/1", 1, res, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rt.journal")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePlan([]string{"a/0/1/1", "b/1/1/2/probe"}, "fp"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRun(0, "a/0/1/1", 2, json.RawMessage(`{"x":1}`), json.RawMessage(`{"cap":8}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteQuarantine(1, "b/1/1/2", json.RawMessage(`{"function":"b"}`), "panic", "boom", "stack\ntrace", 3); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 2 {
		t.Fatalf("Records() = %d, want 2", w.Records())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Error("clean journal reported torn")
	}
	if rep.Header.Workload != "IIS" || rep.Header.Version != Version {
		t.Errorf("header %+v", rep.Header)
	}
	if rep.Plan == nil || rep.Plan.Fingerprint != "fp" || len(rep.Plan.Jobs) != 2 {
		t.Errorf("plan %+v", rep.Plan)
	}
	run, ok := rep.Runs[0]
	if !ok || run.Key != "a/0/1/1" || run.Attempts != 2 || string(run.Result) != `{"x":1}` || string(run.Tel) != `{"cap":8}` {
		t.Errorf("run record %+v", run)
	}
	q, ok := rep.Quarantined[1]
	if !ok || q.Reason != "panic" || q.Message != "boom" || q.Stack != "stack\ntrace" || q.Attempts != 3 {
		t.Errorf("quarantine record %+v", q)
	}
	if rep.Records != 2 {
		t.Errorf("Records = %d, want 2", rep.Records)
	}
	fi, _ := os.Stat(path)
	if rep.ValidBytes != fi.Size() {
		t.Errorf("ValidBytes %d, file %d", rep.ValidBytes, fi.Size())
	}
}

// TestJournalTornTail: every strict prefix that cuts into the final line
// is classified torn (record discarded), not corrupt.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, 3)
	os.Remove(path + ".ckpt") // isolate tail classification from checkpoints
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastNL := strings.LastIndexByte(strings.TrimRight(string(full), "\n"), '\n')
	for _, cut := range []int{len(full) - 1, lastNL + 2, lastNL + 10} {
		tp := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(tp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(tp)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !rep.Torn {
			t.Errorf("cut %d: not classified torn", cut)
		}
		if rep.Records != 2 {
			t.Errorf("cut %d: %d records survive, want 2", cut, rep.Records)
		}
		if rep.ValidBytes != int64(lastNL)+1 {
			t.Errorf("cut %d: ValidBytes %d, want %d", cut, rep.ValidBytes, lastNL+1)
		}
	}
}

// TestJournalMidFileCorruption: an invalid line anywhere before the tail
// is a hard error, never silently skipped.
func TestJournalMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = "{garbage\n" // first run record
	cp := filepath.Join(dir, "corrupt.journal")
	if err := os.WriteFile(cp, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(cp); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption returned %v, want corrupt-line error", err)
	}
}

// TestJournalCheckpointGuard: a journal truncated below its checkpoint
// is corruption (data the checkpoint promised durable is gone), not a
// torn tail.
func TestJournalCheckpointGuard(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, CheckpointEvery+2)
	ckpt, err := os.ReadFile(path + ".ckpt")
	if err != nil {
		t.Fatalf("no checkpoint after %d records: %v", CheckpointEvery+2, err)
	}
	var c Checkpoint
	if err := json.Unmarshal(ckpt, &c); err != nil {
		t.Fatal(err)
	}
	if c.Records < CheckpointEvery {
		t.Fatalf("checkpoint records %d, want >= %d", c.Records, CheckpointEvery)
	}
	if err := os.Truncate(path, c.Bytes/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("sub-checkpoint truncation returned %v, want checkpoint error", err)
	}
}

// TestJournalAppendTruncates: Append removes the torn tail so the next
// record lands on a clean line boundary.
func TestJournalAppendTruncates(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, 2)
	os.Remove(path + ".ckpt")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || rep.Records != 1 {
		t.Fatalf("torn=%v records=%d, want torn with 1 record", rep.Torn, rep.Records)
	}
	w, err := Append(path, rep.ValidBytes, rep.Records)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRun(1, "WriteFile/0/1/2", 1, json.RawMessage(`{"outcome":5}`), nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep2, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Torn || rep2.Records != 2 {
		t.Fatalf("after append: torn=%v records=%d, want clean with 2", rep2.Torn, rep2.Records)
	}
	if string(rep2.Runs[1].Result) != `{"outcome":5}` {
		t.Errorf("appended record %s", rep2.Runs[1].Result)
	}
}

// TestJournalCreateResetsCheckpoint: reusing a journal path must reset
// the checkpoint sidecar, or the old campaign's final checkpoint
// out-claims the new journal and an early kill reads as corruption.
func TestJournalCreateResetsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, 10) // leaves a 10-record checkpoint

	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePlan([]string{"ReadFile/0/1/1"}, "fp2"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRun(0, "ReadFile/0/1/1", 1, json.RawMessage(`{"outcome":1}`), nil); err != nil {
		t.Fatal(err)
	}
	w.Close() // killed before any Sync: no new checkpoint beyond Create's

	rep, err := Replay(path)
	if err != nil {
		t.Fatalf("second campaign's journal refused: %v", err)
	}
	if rep.Records != 1 || rep.Plan.Fingerprint != "fp2" {
		t.Fatalf("replayed %d records, plan %q", rep.Records, rep.Plan.Fingerprint)
	}
}

// TestJournalVersionAndHeaderChecks: missing header and wrong version
// are rejected.
func TestJournalVersionAndHeaderChecks(t *testing.T) {
	dir := t.TempDir()
	noHeader := filepath.Join(dir, "nohdr.journal")
	if err := os.WriteFile(noHeader, []byte(`{"kind":"plan","jobs":[],"fingerprint":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(noHeader); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless journal returned %v", err)
	}
	badVer := filepath.Join(dir, "badver.journal")
	if err := os.WriteFile(badVer, []byte(`{"kind":"header","version":99}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(badVer); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version journal returned %v", err)
	}
}
