package journal

// Streaming reader for the journal line format. The shard protocol
// (internal/shard) reuses journal records as its wire format — a worker
// process streams one record per completed run back to its coordinator
// over a pipe — so the reader must work incrementally on a live stream,
// not just on a finished file. Replay is built on the same reader: a
// journal file is simply a stream that happens to be complete.
//
// Torn-tail semantics match the file replay rules: a final line that is
// unterminated, or terminated but unparsable, is the signature of a
// killed writer and surfaces as ErrTorn; an unparsable line anywhere
// before the end of the stream is corruption and a hard error.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire-only line kinds: they appear on shard protocol streams, never in
// journal files (Replay rejects them as stray).
const (
	// KindHeartbeat is a worker liveness beacon, emitted on a wall-clock
	// ticker so the coordinator can tell "long run" from "wedged worker".
	// Index carries the records written so far.
	KindHeartbeat = "heartbeat"
	// KindDone marks clean worker completion; Index carries the total
	// record count, cross-checked by the coordinator.
	KindDone = "done"
	// KindError reports a worker-side run failure: Index is the failing
	// job's global index, Message the error text. The worker exits
	// non-zero after writing it.
	KindError = "error"
)

// ErrTorn reports a stream that ended mid-record: an unterminated or
// unparsable final line. For journal files this is the signature of a
// SIGKILLed writer (discard the tail and resume); for shard streams it
// marks a worker that died mid-write (re-dispatch its remaining runs).
var ErrTorn = errors.New("journal: stream ends in a torn record")

// Line is one decoded journal line. Exactly one of Header, Plan, Rec is
// non-nil, selected by Kind.
type Line struct {
	Kind   string
	Header *Header
	Plan   *Plan
	Rec    *Record
}

// Stream reads journal-format lines incrementally. On a live pipe, Next
// blocks until a full line (or EOF) arrives.
type Stream struct {
	br     *bufio.Reader
	lineNo int
	offset int64  // bytes consumed through the last successfully decoded line
	buf    []byte // spill buffer for lines longer than the bufio window, reused across records
}

// NewStream wraps r in a journal line reader.
func NewStream(r io.Reader) *Stream {
	return &Stream{br: bufio.NewReaderSize(r, 1<<16)}
}

// Offset returns the byte offset of the verified record-complete prefix:
// everything up to and including the last line Next returned. This is
// what Replayed.ValidBytes records and Append truncates to.
func (s *Stream) Offset() int64 { return s.offset }

// LineNo returns the 1-based number of the last line read.
func (s *Stream) LineNo() int { return s.lineNo }

// Next returns the next decoded line. At a clean end of stream it
// returns io.EOF; a torn final line returns ErrTorn; garbage before the
// end of the stream is a hard error.
func (s *Stream) Next() (*Line, error) {
	raw, err := s.readLine()
	if err == io.EOF {
		if len(raw) == 0 {
			return nil, io.EOF
		}
		// Writers always terminate lines with a single Write, so an
		// unterminated final line is torn by definition.
		return nil, ErrTorn
	}
	if err != nil {
		return nil, fmt.Errorf("journal stream read: %w", err)
	}
	s.lineNo++
	line, derr := decodeLine(raw[:len(raw)-1])
	if derr != nil {
		// Corrupt or torn? A crash can tear mid-buffer, leaving a
		// terminated but unparsable last line. Peek: if nothing follows,
		// classify as torn; otherwise the corruption is mid-stream. On a
		// live pipe Peek blocks until the writer produces more bytes or
		// dies — either resolves the classification.
		if _, perr := s.br.Peek(1); perr == io.EOF {
			return nil, ErrTorn
		}
		return nil, fmt.Errorf("line %d: %w", s.lineNo, derr)
	}
	s.offset += int64(len(raw))
	return line, nil
}

// readLine returns the next line including its trailing newline (absent
// only at EOF). The slice aliases the bufio window or the stream's spill
// buffer and is valid only until the next call — Next decodes it before
// reading further, and json.Unmarshal copies what it keeps, so no
// per-record allocation survives. This keeps the shard wire path (one
// record per completed run, streamed over a pipe) allocation-flat.
func (s *Stream) readLine() ([]byte, error) {
	raw, err := s.br.ReadSlice('\n')
	if err != bufio.ErrBufferFull {
		return raw, err
	}
	s.buf = append(s.buf[:0], raw...)
	for err == bufio.ErrBufferFull {
		raw, err = s.br.ReadSlice('\n')
		s.buf = append(s.buf, raw...)
	}
	return s.buf, err
}

// decodeLine parses one newline-stripped journal line.
func decodeLine(data []byte) (*Line, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	l := &Line{Kind: probe.Kind}
	switch probe.Kind {
	case KindHeader:
		l.Header = &Header{}
		if err := json.Unmarshal(data, l.Header); err != nil {
			return nil, err
		}
	case KindPlan:
		l.Plan = &Plan{}
		if err := json.Unmarshal(data, l.Plan); err != nil {
			return nil, err
		}
	case KindRun, KindQuarantine, KindAssign, KindHeartbeat, KindDone, KindError:
		l.Rec = &Record{}
		if err := json.Unmarshal(data, l.Rec); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", probe.Kind)
	}
	return l, nil
}
