package middleware

import (
	"testing"

	"ntdts/internal/middleware/watchd"
	"ntdts/internal/workload"
)

func TestParseRoundTrip(t *testing.T) {
	for _, s := range All() {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("Parse(%q) = %+v, want %+v", s.String(), got, s)
		}
	}
}

func TestParseAliases(t *testing.T) {
	cases := map[string]Spec{
		"none":       {Supervision: workload.Standalone},
		"standalone": {Supervision: workload.Standalone},
		"NONE":       {Supervision: workload.Standalone},
		"mscs":       {Supervision: workload.MSCS},
		"watchd":     {Supervision: workload.Watchd},
		"Watchd-V2":  {Supervision: workload.Watchd, WatchdVersion: watchd.V2},
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("Parse(%q) = %+v, want %+v", in, got, want)
		}
	}
	if _, err := Parse("watchd-v9"); err == nil {
		t.Error("Parse(watchd-v9) should fail")
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse(\"\") should fail")
	}
}

func TestVersionDefault(t *testing.T) {
	if v := (Spec{Supervision: workload.Watchd}).Version(); v != watchd.V3 {
		t.Errorf("unpinned watchd version = %v, want v3", v)
	}
	if v := (Spec{Supervision: workload.Watchd, WatchdVersion: watchd.V1}).Version(); v != watchd.V1 {
		t.Errorf("pinned watchd version = %v, want v1", v)
	}
	if v := (Spec{Supervision: workload.MSCS}).Version(); v != 0 {
		t.Errorf("mscs version = %v, want 0", v)
	}
}
