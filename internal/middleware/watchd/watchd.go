// Package watchd simulates the watchd component of Bell Labs NT-SwiFT in
// the three iterations the paper develops (§4.3):
//
//   - Watchd1 starts the monitored service with startService() and only
//     later binds to its process with getServiceInfo() (a status query
//     followed by OpenProcess). A service that dies inside that window
//     leaves watchd with no handle: the service is never monitored again.
//   - Watchd2 merges the two steps, shrinking — but not closing — the
//     window, and reacts to a death instantly; reacting faster than the
//     SCM's own bookkeeping exposes it to a second race (StartService
//     reports ERROR_SERVICE_ALREADY_RUNNING for a freshly dead service the
//     SCM has not reaped yet), and its restart retries are bounded, so a
//     start blocked behind the SCM's locked database is abandoned.
//   - Watchd3 validates the process handle before trusting it, confirms
//     the service state with the SCM, and retries indefinitely.
//
// watchd detects failures by waiting on the service process handle
// (instant death detection — the reason it beats MSCS's polling), and logs
// every action to its own log file, which is where the DTS data collector
// looks for watchd-initiated restarts (§3).
package watchd

import (
	"time"

	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
)

// Version selects the watchd iteration.
type Version int

const (
	V1 Version = 1
	V2 Version = 2
	V3 Version = 3
)

// String names the version the way the paper does.
func (v Version) String() string {
	switch v {
	case V1:
		return "Watchd1"
	case V2:
		return "Watchd2"
	case V3:
		return "Watchd3"
	default:
		return "Watchd?"
	}
}

// LogPath is watchd's own log file (the DTS restart-detection source).
const LogPath = `C:\watchd.log`

// Image is the watchd process image name.
const Image = "watchd.exe"

const (
	// v1PollDelay is Watchd1's gap between startService and
	// getServiceInfo — the fatal window.
	v1PollDelay = 1 * time.Second
	// v2BindDelay is the residual window inside Watchd2's merged
	// startService (one SCM round-trip).
	v2BindDelay = 200 * time.Millisecond
	// v2ReactDelay is Watchd2's log write before it reacts to a death.
	v2ReactDelay = 300 * time.Millisecond
	// v2MaxRetries bounds Watchd2's restart attempts per incident.
	v2MaxRetries = 4
	// retryWait spaces restart attempts.
	retryWait = 2 * time.Second
)

// Start registers and spawns a watchd monitor owning the initial start of
// the named service.
func Start(k *ntsim.Kernel, mgr *scm.Manager, serviceName string, v Version) (*ntsim.Process, error) {
	k.RegisterImage(Image, func(p *ntsim.Process) uint32 {
		return monitor(p, mgr, serviceName, v)
	})
	return k.Spawn(Image, Image+" "+serviceName, 0)
}

// wlog appends a timestamped line to the watchd log through the
// injected-API surface (watchd is a real NT program; it is simply not the
// injection target).
func wlog(api *win32.API, line string) {
	line = "[" + itoa(api.GetTickCount()) + "ms] " + line
	h := api.CreateFileA(LogPath, win32.GenericRead|win32.GenericWrite, 0, win32.OpenAlways, 0)
	if h == win32.InvalidHandle {
		return
	}
	api.SetFilePointer(h, 0, win32.FileEnd)
	data := []byte(line + "\r\n")
	var n uint32
	api.WriteFile(h, data, uint32(len(data)), &n)
	api.CloseHandle(h)
}

// monitor is the watchd main loop for one service.
func monitor(p *ntsim.Process, mgr *scm.Manager, name string, v Version) uint32 {
	api := win32.New(p)
	wlog(api, v.String()+": monitoring "+name)

	// Every successful service start after the first is a restart —
	// whether it happened because the monitor saw a death or because a
	// start attempt inside startService had to be repeated.
	loggedStarts := 0
	noteStarts := func() {
		for n := mgr.StartCount(name); loggedStarts < n; loggedStarts++ {
			if loggedStarts > 0 {
				wlog(api, v.String()+": restarted "+name)
			}
		}
	}

	isRestart := false
	for {
		h, ok := startService(p, api, mgr, name, v, isRestart)
		noteStarts()
		if !ok {
			wlog(api, v.String()+": cannot obtain service info for "+name+"; monitoring disabled")
			park(p)
		}
		waitDeath(p, api, h, v)
		api.CloseHandle(h)
		wlog(api, v.String()+": detected failure of "+name)
		if v == V2 {
			p.SleepFor(v2ReactDelay)
		}
		isRestart = true
	}
}

// waitDeath blocks until the monitored process dies. Watchd1 polls the
// handle once a second (its original design); the later versions block on
// the handle for instant detection — one of the §4.3 improvements, but
// also what exposes Watchd2 to reacting faster than the SCM's bookkeeping.
func waitDeath(p *ntsim.Process, api *win32.API, h win32.Handle, v Version) {
	if v == V1 {
		for api.WaitForSingleObject(h, 0) != ntsim.WaitObject0 {
			p.SleepFor(1 * time.Second)
		}
		return
	}
	api.WaitForSingleObject(h, win32.Infinite)
}

// startService starts (or restarts) the service and binds a process
// handle, with the version-specific defects.
func startService(p *ntsim.Process, api *win32.API, mgr *scm.Manager, name string, v Version, isRestart bool) (win32.Handle, bool) {
	switch v {
	case V1:
		return startV1(p, api, mgr, name)
	case V2:
		return startV2(p, api, mgr, name, isRestart)
	default:
		return startV3(p, api, mgr, name)
	}
}

// startV1: patient start, then a slow, separate getServiceInfo.
func startV1(p *ntsim.Process, api *win32.API, mgr *scm.Manager, name string) (win32.Handle, bool) {
	for {
		err := mgr.StartService(name)
		if err == nil || err == ntsim.ErrServiceAlreadyRunning {
			break
		}
		p.SleepFor(1 * time.Second)
	}
	// getServiceInfo comes only after the poll delay — the window.
	p.SleepFor(v1PollDelay)
	_, pid, err := mgr.QueryServiceStatus(name)
	if err != nil || pid == 0 {
		return 0, false
	}
	h := api.OpenProcess(0, false, pid)
	if h == 0 {
		return 0, false // the process died inside the window
	}
	return h, true
}

// startV2: merged start+bind with a bounded retry budget and the
// SCM-bookkeeping race on restarts.
func startV2(p *ntsim.Process, api *win32.API, mgr *scm.Manager, name string, isRestart bool) (win32.Handle, bool) {
	for attempt := 0; attempt < v2MaxRetries; attempt++ {
		err := mgr.StartService(name)
		if err == nil || err == ntsim.ErrServiceAlreadyRunning {
			// ERROR_SERVICE_ALREADY_RUNNING is trusted: if the SCM
			// has not reaped a freshly dead process yet, the PID
			// below is a corpse and the bind fails — Watchd2 then
			// wrongly concludes the service cannot be monitored.
			p.SleepFor(v2BindDelay) // SCM round-trip: the residual window
			_, pid, qerr := mgr.QueryServiceStatus(name)
			if qerr != nil || pid == 0 {
				return 0, false
			}
			h := api.OpenProcess(0, false, pid)
			if h == 0 {
				return 0, false
			}
			return h, true
		}
		// ERROR_SERVICE_DATABASE_LOCKED or similar: bounded retries.
		p.SleepFor(retryWait)
	}
	return 0, false
}

// startV3: patient start, handle validation, and SCM state confirmation.
func startV3(p *ntsim.Process, api *win32.API, mgr *scm.Manager, name string) (win32.Handle, bool) {
	for {
		err := mgr.StartService(name)
		if err != nil && err != ntsim.ErrServiceAlreadyRunning {
			p.SleepFor(retryWait)
			continue
		}
		p.SleepFor(v2BindDelay)
		st, pid, qerr := mgr.QueryServiceStatus(name)
		if qerr != nil {
			return 0, false // service deleted: nothing to monitor
		}
		if pid == 0 {
			p.SleepFor(retryWait)
			continue
		}
		h := api.OpenProcess(0, false, pid)
		if h == 0 {
			// Invalid handle: the paper's fix — try the whole
			// sequence again rather than trusting a corpse.
			p.SleepFor(retryWait)
			continue
		}
		// Confirm with the SCM that the service is really coming up.
		if st != scm.Running && st != scm.StartPending {
			api.CloseHandle(h)
			p.SleepFor(retryWait)
			continue
		}
		return h, true
	}
}

// park blocks the watchd process forever (it keeps running but can no
// longer act — the observable consequence of the V1/V2 defects).
func park(p *ntsim.Process) {
	for {
		p.SleepFor(time.Hour)
	}
}

// itoa renders a uint32 without fmt (cheap inside the simulation).
func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
