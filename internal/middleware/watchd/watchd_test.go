package watchd

import (
	"strings"
	"testing"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
)

// svcSpec controls the behaviour of the toy service under monitoring.
type svcSpec struct {
	// reportAfter is when the service reports RUNNING (0 = never).
	reportAfter time.Duration
	// crashAt kills the first incarnation at this time (0 = never).
	crashAt time.Duration
}

// rig wires a kernel, SCM, a toy service and a watchd version together.
type rig struct {
	k   *ntsim.Kernel
	mgr *scm.Manager
}

func newRig(t *testing.T, spec svcSpec, hint time.Duration) *rig {
	t.Helper()
	k := ntsim.NewKernel()
	mgr := scm.New(k, eventlog.New())
	incarnation := 0
	k.RegisterImage("toy.exe", func(p *ntsim.Process) uint32 {
		api := win32.New(p)
		incarnation++
		first := incarnation == 1
		elapsed := time.Duration(0)
		advance := func(until time.Duration) {
			if until > elapsed {
				api.Sleep(uint32((until - elapsed) / time.Millisecond))
				elapsed = until
			}
		}
		if first && spec.crashAt > 0 && (spec.reportAfter == 0 || spec.crashAt <= spec.reportAfter) {
			advance(spec.crashAt)
			p.RaiseAccessViolation()
		}
		if spec.reportAfter > 0 {
			advance(spec.reportAfter)
			scm.ReportRunning(k, "toy")
		}
		if first && spec.crashAt > 0 {
			advance(spec.crashAt)
			p.RaiseAccessViolation()
		}
		for {
			api.Sleep(3_600_000)
		}
	})
	if err := mgr.CreateService(scm.Config{Name: "toy", Image: "toy.exe", WaitHint: hint}); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr}
}

func (r *rig) start(t *testing.T, v Version) {
	t.Helper()
	if _, err := Start(r.k, r.mgr, "toy", v); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) log(t *testing.T) string {
	t.Helper()
	data, _ := r.k.VFS().ReadFile(LogPath)
	return string(data)
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	r.k.RunFor(d)
	if pan := r.k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

func restarts(log string) int {
	return strings.Count(log, ": restarted toy")
}

func TestHealthyServiceIsMonitoredWithoutRestarts(t *testing.T) {
	for _, v := range []Version{V1, V2, V3} {
		r := newRig(t, svcSpec{reportAfter: 200 * time.Millisecond}, 10*time.Second)
		r.start(t, v)
		r.run(t, 30*time.Second)
		st, _, _ := r.mgr.QueryServiceStatus("toy")
		if st != scm.Running {
			t.Errorf("%v: service %v, want RUNNING", v, st)
		}
		if n := restarts(r.log(t)); n != 0 {
			t.Errorf("%v: %d spurious restarts", v, n)
		}
	}
}

func TestV1LosesHandleOnEarlyDeath(t *testing.T) {
	// Death inside Watchd1's 1-second startService->getServiceInfo
	// window while RUNNING: the SCM reaps the corpse, OpenProcess fails,
	// and the service is never monitored again (§4.3).
	r := newRig(t, svcSpec{reportAfter: 100 * time.Millisecond, crashAt: 300 * time.Millisecond}, 10*time.Second)
	r.start(t, V1)
	r.run(t, 60*time.Second)
	log := r.log(t)
	if !strings.Contains(log, "cannot obtain service info") {
		t.Fatalf("Watchd1 did not hit the handle race:\n%s", log)
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st == scm.Running {
		t.Fatal("service recovered despite the lost handle")
	}
}

func TestV2SurvivesEarlyDeathOutsideItsWindow(t *testing.T) {
	// The same fault under Watchd2: the merged start binds the handle
	// within ~200ms, the death at 300ms is detected instantly, and a
	// restart succeeds (RUNNING death -> no SCM lock).
	r := newRig(t, svcSpec{reportAfter: 100 * time.Millisecond, crashAt: 900 * time.Millisecond}, 10*time.Second)
	r.start(t, V2)
	r.run(t, 60*time.Second)
	log := r.log(t)
	if restarts(log) == 0 {
		t.Fatalf("Watchd2 did not restart the service:\n%s", log)
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("service %v after Watchd2 restart, want RUNNING", st)
	}
}

func TestV2GivesUpOnLockedDatabase(t *testing.T) {
	// Death before RUNNING holds the SCM database locked for the wait
	// hint (20s) — longer than Watchd2's bounded retry budget, so
	// Watchd2 abandons the service (§4.3: why Watchd2 did not help SQL).
	r := newRig(t, svcSpec{reportAfter: 2 * time.Second, crashAt: 500 * time.Millisecond}, 20*time.Second)
	r.start(t, V2)
	r.run(t, 60*time.Second)
	log := r.log(t)
	if !strings.Contains(log, "monitoring disabled") {
		t.Fatalf("Watchd2 should give up on the locked database:\n%s", log)
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st == scm.Running {
		t.Fatal("service running; Watchd2 was expected to abandon it")
	}
}

func TestV3RecoversLockedDatabase(t *testing.T) {
	// The same pre-RUNNING death under Watchd3: patient retries outlast
	// the wait hint and the restart eventually succeeds (§4.3's fix).
	r := newRig(t, svcSpec{reportAfter: 2 * time.Second, crashAt: 500 * time.Millisecond}, 20*time.Second)
	r.start(t, V3)
	r.run(t, 90*time.Second)
	log := r.log(t)
	if restarts(log) == 0 {
		t.Fatalf("Watchd3 did not restart the service:\n%s", log)
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("service %v, want RUNNING after Watchd3 recovery", st)
	}
}

func TestV3RecoversVeryEarlyDeath(t *testing.T) {
	// Death before even Watchd2's bind window: Watchd3's validation loop
	// retries until a clean incarnation comes up.
	r := newRig(t, svcSpec{reportAfter: 2 * time.Second, crashAt: 50 * time.Millisecond}, 5*time.Second)
	r.start(t, V3)
	r.run(t, 60*time.Second)
	if restarts(r.log(t)) == 0 {
		t.Fatalf("Watchd3 did not recover:\n%s", r.log(t))
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("service %v, want RUNNING", st)
	}
}

func TestVersionStrings(t *testing.T) {
	if V1.String() != "Watchd1" || V2.String() != "Watchd2" || V3.String() != "Watchd3" {
		t.Fatal("version names")
	}
	if Version(9).String() != "Watchd?" {
		t.Fatal("unknown version name")
	}
}

func TestWatchdLogIsTimestamped(t *testing.T) {
	r := newRig(t, svcSpec{reportAfter: 100 * time.Millisecond}, 10*time.Second)
	r.start(t, V3)
	r.run(t, 5*time.Second)
	log := r.log(t)
	if !strings.Contains(log, "ms] Watchd3: monitoring toy") {
		t.Fatalf("log missing timestamped monitoring line:\n%s", log)
	}
}

func TestV2AlreadyRunningRace(t *testing.T) {
	// The second Watchd2 defect: it reacts to a death faster than the
	// SCM's 500ms bookkeeping tick. StartService then reports
	// ERROR_SERVICE_ALREADY_RUNNING for a freshly dead service, Watchd2
	// trusts it, binds to the corpse's PID, fails, and gives up.
	// Timing: the death lands at 2.05s, Watchd2 reacts at ~2.35s (after
	// its 300ms log write), and the SCM tick only reaps at 2.5s — the
	// reaction beats the bookkeeping.
	r := newRig(t, svcSpec{reportAfter: 100 * time.Millisecond, crashAt: 2050 * time.Millisecond}, 10*time.Second)
	r.start(t, V2)
	r.run(t, 60*time.Second)
	log := r.log(t)
	if !strings.Contains(log, "monitoring disabled") {
		t.Fatalf("Watchd2 should lose the AlreadyRunning race:\n%s", log)
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st == scm.Running {
		t.Fatal("service recovered; Watchd2 was expected to abandon it")
	}
}

func TestV3WinsAlreadyRunningRace(t *testing.T) {
	// The same death timing under Watchd3: the validation loop retries
	// past the SCM tick and recovers.
	r := newRig(t, svcSpec{reportAfter: 100 * time.Millisecond, crashAt: 2050 * time.Millisecond}, 10*time.Second)
	r.start(t, V3)
	r.run(t, 60*time.Second)
	if restarts(r.log(t)) == 0 {
		t.Fatalf("Watchd3 did not recover:\n%s", r.log(t))
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("service %v, want RUNNING", st)
	}
}
