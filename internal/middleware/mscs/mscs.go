// Package mscs simulates the Microsoft Cluster Server generic service
// resource monitor — the default, unspecialized monitor the paper uses
// ("only the generic service resource monitor is used", §4.1). It brings
// the service resource online through the SCM, polls its status
// (LooksAlive/IsAlive), and restarts it on failure, logging restart actions
// to the NT event log (which is how the DTS data collector detects
// MSCS-initiated restarts).
//
// The generic monitor's default limits are its blind spots: an online
// attempt must reach RUNNING within the pending timeout, and a failure
// incident is abandoned after a bounded number of restart attempts — which
// is exactly what loses against services whose faulted starts hold the SCM
// database locked for longer (Apache's 30 s wait hint, SQL Server's 20 s).
package mscs

import (
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
)

// Source is the event-log source name MSCS logs under.
const Source = "ClusSvc"

// EventResourceRestart is logged when the monitor restarts the service.
const EventResourceRestart uint32 = 1024

// EventResourceFailed is logged when the monitor gives up on the resource.
const EventResourceFailed uint32 = 1069 // matches the real cluster event id

// EventGroupFailover is logged when the group moves to the standby.
const EventGroupFailover uint32 = 1204

// Params are the generic resource monitor's tunables (defaults mirror the
// behaviour described in §4).
type Params struct {
	// LooksAlivePoll is the steady-state status polling interval.
	LooksAlivePoll time.Duration
	// OnlineTimeout is how long an online attempt may stay pending.
	OnlineTimeout time.Duration
	// OnlinePoll is the status polling interval during online waits.
	OnlinePoll time.Duration
	// RetryWait is the pause between restart attempts in an incident.
	RetryWait time.Duration
	// MaxAttempts is the per-incident restart attempt budget.
	MaxAttempts int
	// FailoverTo, when non-empty, names a standby service the monitor
	// brings online after the primary resource fails permanently — the
	// cluster failover the paper's testbed could not exercise ("a
	// distributed design allows for testing of distributed systems,
	// especially if failover may occur", §3). The standby must already be
	// registered with the SCM.
	FailoverTo string

	// ProbePoll is the standby cluster monitor's owner-health polling
	// interval (multi-node clusters only; see StartCluster).
	ProbePoll time.Duration
	// TakeoverGrace is how long a standby must continuously observe the
	// owner unhealthy before claiming the group, scaled by the standby's
	// cyclic rank so exactly one node wins the claim deterministically.
	TakeoverGrace time.Duration
}

// DefaultParams returns the generic monitor defaults.
func DefaultParams() Params {
	return Params{
		LooksAlivePoll: 5 * time.Second,
		OnlineTimeout:  22 * time.Second,
		OnlinePoll:     1 * time.Second,
		RetryWait:      2 * time.Second,
		MaxAttempts:    2,
		ProbePoll:      2 * time.Second,
		TakeoverGrace:  5 * time.Second,
	}
}

// Image is the resource monitor's process image name.
const Image = "resrcmon.exe"

// Start registers and spawns the resource monitor for a service. It owns
// the initial online of the resource.
func Start(k *ntsim.Kernel, mgr *scm.Manager, log *eventlog.Log, serviceName string, params Params) (*ntsim.Process, error) {
	if params.MaxAttempts == 0 {
		params = DefaultParams()
	}
	k.RegisterImage(Image, func(p *ntsim.Process) uint32 {
		return monitor(p, mgr, log, serviceName, params)
	})
	return k.Spawn(Image, Image+" "+serviceName, 0)
}

// monitor is the resource monitor main loop.
func monitor(p *ntsim.Process, mgr *scm.Manager, log *eventlog.Log, name string, params Params) uint32 {
	k := p.Kernel()

	// online performs one incident: up to MaxAttempts starts, each
	// required to reach RUNNING within OnlineTimeout. It reports whether
	// the resource came online and whether any restart was performed.
	var online func(isRestart bool) bool
	online = func(isRestart bool) bool {
		for attempt := 1; attempt <= params.MaxAttempts; attempt++ {
			err := mgr.StartService(name)
			switch err {
			case nil:
				// Started: wait for RUNNING.
				if waitRunning(p, mgr, name, params) {
					if isRestart || attempt > 1 {
						log.Append(k.Now(), Source, eventlog.Warning,
							EventResourceRestart,
							"Cluster resource '"+name+"' was restarted.")
					}
					return true
				}
			case ntsim.ErrServiceAlreadyRunning:
				return true
			case ntsim.ErrServiceDatabaseLocked:
				// The SCM is holding the database for a pending
				// start; this attempt is spent.
			default:
				// Unexpected SCM failure; attempt spent.
			}
			p.SleepFor(params.RetryWait)
		}
		log.Append(k.Now(), Source, eventlog.Error, EventResourceFailed,
			"Cluster resource '"+name+"' failed.")
		// Last resort: move the group to the standby resource, the way a
		// second cluster node would take over. The failed group is
		// offlined first: the standby cannot start while the dead
		// primary still holds the SCM database in a pending state.
		if params.FailoverTo != "" && params.FailoverTo != name {
			log.Append(k.Now(), Source, eventlog.Warning, EventGroupFailover,
				"Cluster group failing over from '"+name+"' to '"+params.FailoverTo+"'.")
			waitOffline(p, mgr, name, 2*params.OnlineTimeout)
			name = params.FailoverTo
			params.FailoverTo = ""
			return online(true)
		}
		return false
	}

	if !online(false) {
		return 1 // resource failed: monitor exits, no further recovery
	}

	// Steady state: LooksAlive polling.
	for {
		p.SleepFor(params.LooksAlivePoll)
		st, _, err := mgr.QueryServiceStatus(name)
		if err != nil {
			return 1
		}
		switch st {
		case scm.Running, scm.StartPending:
			continue
		case scm.Stopped, scm.StopPending:
			if !online(true) {
				return 1
			}
		}
	}
}

// waitRunning polls the service status until RUNNING, giving up when the
// online timeout elapses or the service lands in STOPPED.
func waitRunning(p *ntsim.Process, mgr *scm.Manager, name string, params Params) bool {
	deadline := p.Kernel().Now().Add(params.OnlineTimeout)
	for {
		st, _, err := mgr.QueryServiceStatus(name)
		if err != nil {
			return false
		}
		switch st {
		case scm.Running:
			return true
		case scm.Stopped:
			return false
		}
		if !p.Kernel().Now().Before(deadline) {
			return false
		}
		p.SleepFor(params.OnlinePoll)
	}
}

// waitOffline polls until the failed resource reaches STOPPED (its pending
// wait hint expiring and unlocking the SCM database), bounded by limit.
func waitOffline(p *ntsim.Process, mgr *scm.Manager, name string, limit time.Duration) {
	deadline := p.Kernel().Now().Add(limit)
	for p.Kernel().Now().Before(deadline) {
		st, _, err := mgr.QueryServiceStatus(name)
		if err != nil || st == scm.Stopped {
			return
		}
		p.SleepFor(time.Second)
	}
}
