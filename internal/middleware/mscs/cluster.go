package mscs

import (
	"fmt"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
)

// Cluster resource monitor. On a multi-node cluster MSCS runs one
// resource monitor per node; the nodes agree on a single group owner
// (the node whose SCM actually runs the service) and move ownership when
// the owner's resource fails permanently or the owner node stops
// answering. The shared ownership record below stands in for the quorum
// database; everything observable — SCM calls, event-log records, sleeps
// — happens on the owning node's own kernel, so per-node state stays
// fully isolated and per-node eventlogs tell the failover story.

// ClusterNode is one node's view handed to StartCluster: its kernel, its
// SCM, and its NT event log. The service must already be registered with
// every node's SCM.
type ClusterNode struct {
	Kernel *ntsim.Kernel
	Mgr    *scm.Manager
	Log    *eventlog.Log
}

// group is the shared ownership record (the quorum database stand-in).
// It is only read and written at deterministic scheduler instants by the
// per-node monitor processes, which all live on one shared-clock machine.
type group struct {
	owner int
}

// StartCluster spawns one resource monitor process per node and brings
// the group online on node 0. reachable reports whether two nodes'
// heartbeat links are up, and down whether a node has crashed; both are
// sampled at scheduler instants, so takeover decisions are deterministic.
// It returns the monitor processes in node order.
func StartCluster(nodes []ClusterNode, serviceName string, params Params, reachable func(a, b int) bool, down func(i int) bool) ([]*ntsim.Process, error) {
	if params.MaxAttempts == 0 {
		params = DefaultParams()
	}
	if params.ProbePoll <= 0 {
		params.ProbePoll = DefaultParams().ProbePoll
	}
	if params.TakeoverGrace <= 0 {
		params.TakeoverGrace = DefaultParams().TakeoverGrace
	}
	g := &group{owner: 0}
	procs := make([]*ntsim.Process, len(nodes))
	for i := range nodes {
		self := i
		node := nodes[i]
		node.Kernel.RegisterImage(Image, func(p *ntsim.Process) uint32 {
			return clusterMonitor(p, self, node, len(nodes), g, serviceName, params, reachable, down)
		})
		pr, err := node.Kernel.Spawn(Image, fmt.Sprintf("%s %s node=%d", Image, serviceName, self), 0)
		if err != nil {
			return nil, err
		}
		procs[i] = pr
	}
	return procs, nil
}

// clusterMonitor is one node's resource monitor main loop: serve while
// owning the group, watch the owner while standing by.
func clusterMonitor(p *ntsim.Process, self int, node ClusterNode, n int, g *group, name string, params Params, reachable func(int, int) bool, down func(int) bool) uint32 {
	k := p.Kernel()
	everOwner := false
	for {
		if g.owner == self {
			restart := everOwner
			everOwner = true
			if serveAsOwner(p, self, node, g, name, params, restart) {
				// Usurped while still healthy (a partition separated us
				// from the majority): step down to standby duty. The
				// local service instance is left as-is; no client can
				// reach an isolated node anyway.
				continue
			}
			// Permanent local failure: hand the group to the next
			// healthy, reachable peer — the cross-node failover.
			next := -1
			for d := 1; d < n; d++ {
				cand := (self + d) % n
				if !down(cand) && reachable(self, cand) {
					next = cand
					break
				}
			}
			if next < 0 {
				return 1 // nowhere to fail over to: the group is offline
			}
			node.Log.Append(k.Now(), Source, eventlog.Warning, EventGroupFailover,
				fmt.Sprintf("Cluster group '%s' failing over from node %d to node %d.", name, self, next))
			g.owner = next
			continue
		}

		// Standby: probe the owner's health.
		p.SleepFor(params.ProbePoll)
		owner := g.owner
		if owner == self || (!down(owner) && reachable(self, owner)) {
			continue
		}
		// Owner looks dead. Wait out a grace period scaled by this
		// node's cyclic rank, so the nearest standby claims first and a
		// farther one only if the claim never lands.
		rank := (self - owner + n) % n
		deadline := k.Now().Add(time.Duration(rank) * params.TakeoverGrace)
		claim := true
		for k.Now().Before(deadline) {
			p.SleepFor(params.ProbePoll)
			if g.owner != owner || (!down(g.owner) && reachable(self, g.owner)) {
				claim = false
				break
			}
		}
		if !claim || g.owner != owner {
			continue
		}
		node.Log.Append(k.Now(), Source, eventlog.Warning, EventGroupFailover,
			fmt.Sprintf("Cluster group '%s' failing over from node %d to node %d.", name, owner, self))
		g.owner = self
	}
}

// serveAsOwner runs the owning node's resource duty: bring the service
// online on this node's SCM and poll LooksAlive. It returns true when
// ownership moved away while the resource was healthy, false when the
// resource failed permanently here (the caller hands the group over).
func serveAsOwner(p *ntsim.Process, self int, node ClusterNode, g *group, name string, params Params, isRestart bool) bool {
	k := p.Kernel()
	fail := func() {
		node.Log.Append(k.Now(), Source, eventlog.Error, EventResourceFailed,
			fmt.Sprintf("Cluster resource '%s' failed on node %d.", name, self))
	}
	if !clusterOnline(p, node, name, params, isRestart) {
		fail()
		return false
	}
	for {
		p.SleepFor(params.LooksAlivePoll)
		if g.owner != self {
			return true
		}
		st, _, err := node.Mgr.QueryServiceStatus(name)
		if err != nil {
			fail()
			return false
		}
		switch st {
		case scm.Running, scm.StartPending:
			continue
		case scm.Stopped, scm.StopPending:
			if !clusterOnline(p, node, name, params, true) {
				fail()
				return false
			}
		}
	}
}

// clusterOnline is one online incident on one node: up to MaxAttempts
// starts through that node's SCM, each required to reach RUNNING within
// OnlineTimeout, honoring the node's SCM database lock exactly like the
// single-node monitor.
func clusterOnline(p *ntsim.Process, node ClusterNode, name string, params Params, isRestart bool) bool {
	k := p.Kernel()
	for attempt := 1; attempt <= params.MaxAttempts; attempt++ {
		err := node.Mgr.StartService(name)
		switch err {
		case nil:
			if waitRunning(p, node.Mgr, name, params) {
				if isRestart || attempt > 1 {
					node.Log.Append(k.Now(), Source, eventlog.Warning,
						EventResourceRestart,
						"Cluster resource '"+name+"' was restarted.")
				}
				return true
			}
		case ntsim.ErrServiceAlreadyRunning:
			return true
		case ntsim.ErrServiceDatabaseLocked:
			// This node's SCM is holding the database for a pending
			// start; the attempt is spent.
		default:
			// Unexpected SCM failure; attempt spent.
		}
		p.SleepFor(params.RetryWait)
	}
	return false
}
