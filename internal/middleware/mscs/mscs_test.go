package mscs

import (
	"testing"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
)

type rig struct {
	k   *ntsim.Kernel
	mgr *scm.Manager
	log *eventlog.Log
}

// newRig registers a toy service: it reports RUNNING after reportAfter
// (0 = never) and the first incarnation crashes at crashAt (0 = never).
func newRig(t *testing.T, reportAfter, crashAt, hint time.Duration) *rig {
	t.Helper()
	k := ntsim.NewKernel()
	log := eventlog.New()
	mgr := scm.New(k, log)
	incarnation := 0
	k.RegisterImage("toy.exe", func(p *ntsim.Process) uint32 {
		api := win32.New(p)
		incarnation++
		first := incarnation == 1
		elapsed := time.Duration(0)
		advance := func(until time.Duration) {
			if until > elapsed {
				api.Sleep(uint32((until - elapsed) / time.Millisecond))
				elapsed = until
			}
		}
		if first && crashAt > 0 && (reportAfter == 0 || crashAt <= reportAfter) {
			advance(crashAt)
			p.RaiseAccessViolation()
		}
		if reportAfter > 0 {
			advance(reportAfter)
			scm.ReportRunning(k, "toy")
		}
		if first && crashAt > 0 {
			advance(crashAt)
			p.RaiseAccessViolation()
		}
		for {
			api.Sleep(3_600_000)
		}
	})
	if err := mgr.CreateService(scm.Config{Name: "toy", Image: "toy.exe", WaitHint: hint}); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr, log: log}
}

func (r *rig) monitor(t *testing.T) {
	t.Helper()
	if _, err := Start(r.k, r.mgr, r.log, "toy", DefaultParams()); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	r.k.RunFor(d)
	if pan := r.k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

func TestBringsResourceOnline(t *testing.T) {
	r := newRig(t, 200*time.Millisecond, 0, 10*time.Second)
	r.monitor(t)
	r.run(t, 10*time.Second)
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("state %v, want RUNNING", st)
	}
	if n := r.log.CountEvent(Source, EventResourceRestart); n != 0 {
		t.Fatalf("%d spurious restart events", n)
	}
}

func TestRestartsRunningDeath(t *testing.T) {
	// The service dies while RUNNING: the LooksAlive poll notices the
	// reaped service and the restart succeeds.
	r := newRig(t, 100*time.Millisecond, 3*time.Second, 10*time.Second)
	r.monitor(t)
	r.run(t, 30*time.Second)
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("state %v, want RUNNING after restart", st)
	}
	if n := r.log.CountEvent(Source, EventResourceRestart); n != 1 {
		t.Fatalf("%d restart events, want 1", n)
	}
}

func TestGivesUpOnLongPendingLock(t *testing.T) {
	// Death before RUNNING with a 30s wait hint: the SCM database stays
	// locked past the monitor's online patience and attempt budget, so
	// the resource fails permanently (why MSCS loses to watchd3 on
	// services with long start hints).
	r := newRig(t, 2*time.Second, 500*time.Millisecond, 30*time.Second)
	r.monitor(t)
	r.run(t, 90*time.Second)
	if n := r.log.CountEvent(Source, EventResourceFailed); n != 1 {
		t.Fatalf("%d resource-failed events, want 1", n)
	}
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st == scm.Running {
		t.Fatal("service running; the resource was expected to fail")
	}
}

func TestRecoversShortPendingLock(t *testing.T) {
	// The same pre-RUNNING death with a 4s hint (IIS's profile): the
	// lock expires within the monitor's patience and attempt 2 restarts
	// the service.
	r := newRig(t, 2*time.Second, 500*time.Millisecond, 4*time.Second)
	r.monitor(t)
	r.run(t, 60*time.Second)
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("state %v, want RUNNING", st)
	}
	if n := r.log.CountEvent(Source, EventResourceRestart); n != 1 {
		t.Fatalf("%d restart events, want 1", n)
	}
}

func TestRestartLogsGoToEventLog(t *testing.T) {
	// The DTS collector depends on restarts being visible in the NT
	// event log under the ClusSvc source (§3).
	r := newRig(t, 100*time.Millisecond, 2*time.Second, 10*time.Second)
	r.monitor(t)
	r.run(t, 30*time.Second)
	recs := r.log.BySource(Source)
	if len(recs) == 0 {
		t.Fatal("no ClusSvc event-log records")
	}
	found := false
	for _, rec := range recs {
		if rec.EventID == EventResourceRestart {
			found = true
			if rec.Severity != eventlog.Warning {
				t.Errorf("restart severity %v", rec.Severity)
			}
		}
	}
	if !found {
		t.Fatal("no restart record in the event log")
	}
}

func TestDefaultParamsApplied(t *testing.T) {
	p := DefaultParams()
	if p.MaxAttempts != 2 || p.OnlineTimeout != 22*time.Second {
		t.Fatalf("unexpected defaults %+v", p)
	}
	// Start with zero params must fall back to defaults (smoke).
	r := newRig(t, 100*time.Millisecond, 0, 10*time.Second)
	if _, err := Start(r.k, r.mgr, r.log, "toy", Params{}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 5*time.Second)
	st, _, _ := r.mgr.QueryServiceStatus("toy")
	if st != scm.Running {
		t.Fatalf("state %v", st)
	}
}

// TestFailoverToStandby exercises the cluster failover path the paper's
// single-node testbed could not: the primary's start stays blocked behind
// the SCM lock until the monitor's budget runs out, and the group then
// moves to the standby service.
func TestFailoverToStandby(t *testing.T) {
	k := ntsim.NewKernel()
	log := eventlog.New()
	mgr := scm.New(k, log)
	// Primary: crashes before reporting RUNNING, 30s wait hint — the
	// configuration MSCS abandons.
	k.RegisterImage("primary.exe", func(p *ntsim.Process) uint32 {
		win32.New(p).Sleep(300)
		p.RaiseAccessViolation()
		return 0
	})
	// Standby: healthy.
	k.RegisterImage("standby.exe", func(p *ntsim.Process) uint32 {
		api := win32.New(p)
		api.Sleep(200)
		scm.ReportRunning(k, "toy-b")
		for {
			api.Sleep(3_600_000)
		}
	})
	if err := mgr.CreateService(scm.Config{Name: "toy", Image: "primary.exe", WaitHint: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CreateService(scm.Config{Name: "toy-b", Image: "standby.exe", WaitHint: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FailoverTo = "toy-b"
	if _, err := Start(k, mgr, log, "toy", params); err != nil {
		t.Fatal(err)
	}
	k.RunFor(90 * time.Second)
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	if n := log.CountEvent(Source, EventGroupFailover); n != 1 {
		t.Fatalf("%d failover events, want 1", n)
	}
	st, _, _ := mgr.QueryServiceStatus("toy-b")
	if st != scm.Running {
		t.Fatalf("standby %v, want RUNNING", st)
	}
	// The standby online is recorded as a restart (the collector's
	// restart evidence still works across the failover).
	if n := log.CountEvent(Source, EventResourceRestart); n == 0 {
		t.Fatal("failover not visible as a restart")
	}
	// And the monitor keeps watching the standby: kill it, expect another
	// restart.
	_, pid, _ := mgr.QueryServiceStatus("toy-b")
	k.Process(pid).Terminate(ntsim.ExitAccessViolation)
	k.RunFor(30 * time.Second)
	st, _, _ = mgr.QueryServiceStatus("toy-b")
	if st != scm.Running {
		t.Fatalf("standby %v after death, want restarted RUNNING", st)
	}
}
