// Package middleware names the fault-tolerance substrates a campaign
// can run under. A Spec pairs the supervision mode (stand-alone, MSCS,
// watchd) with the watchd generation, and parses from the single
// canonical string vocabulary — none | watchd-v1 | watchd-v2 |
// watchd-v3 | mscs — shared by `dts -middleware`, replay overrides,
// config files, and the scenario matrix. Substrate selection used to
// be a pair of per-package switches (a supervision switch plus a
// separate watchd-version knob); Spec is the one place that vocabulary
// is defined.
package middleware

import (
	"fmt"
	"strings"

	"ntdts/internal/middleware/watchd"
	"ntdts/internal/workload"
)

// Spec identifies one middleware substrate. WatchdVersion is only
// meaningful when Supervision is workload.Watchd; zero means
// "unspecified" (callers apply their own default, normally v3).
type Spec struct {
	Supervision   workload.Supervision
	WatchdVersion watchd.Version
}

// Parse reads the canonical substrate vocabulary. "watchd" without a
// version suffix is accepted and leaves WatchdVersion zero so an
// independently-configured version is not clobbered.
func Parse(s string) (Spec, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "standalone":
		return Spec{Supervision: workload.Standalone}, nil
	case "mscs":
		return Spec{Supervision: workload.MSCS}, nil
	case "watchd":
		return Spec{Supervision: workload.Watchd}, nil
	case "watchd-v1":
		return Spec{Supervision: workload.Watchd, WatchdVersion: watchd.V1}, nil
	case "watchd-v2":
		return Spec{Supervision: workload.Watchd, WatchdVersion: watchd.V2}, nil
	case "watchd-v3":
		return Spec{Supervision: workload.Watchd, WatchdVersion: watchd.V3}, nil
	}
	return Spec{}, fmt.Errorf("unknown middleware %q (want none|watchd-v1|watchd-v2|watchd-v3|mscs)", s)
}

// String renders the canonical spelling Parse accepts.
func (s Spec) String() string {
	switch s.Supervision {
	case workload.MSCS:
		return "mscs"
	case workload.Watchd:
		if s.WatchdVersion == 0 {
			return "watchd"
		}
		return fmt.Sprintf("watchd-v%d", int(s.WatchdVersion))
	default:
		return "none"
	}
}

// Version resolves the watchd generation to run: the pinned version,
// or v3 when the spec names watchd without pinning one. Zero for
// non-watchd substrates.
func (s Spec) Version() watchd.Version {
	if s.Supervision != workload.Watchd {
		return 0
	}
	if s.WatchdVersion == 0 {
		return watchd.V3
	}
	return s.WatchdVersion
}

// All returns every concrete substrate, in paper order: no middleware,
// then the three watchd generations, then MSCS.
func All() []Spec {
	return []Spec{
		{Supervision: workload.Standalone},
		{Supervision: workload.Watchd, WatchdVersion: watchd.V1},
		{Supervision: workload.Watchd, WatchdVersion: watchd.V2},
		{Supervision: workload.Watchd, WatchdVersion: watchd.V3},
		{Supervision: workload.MSCS},
	}
}
