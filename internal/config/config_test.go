package config

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ntdts/internal/inject"
	"ntdts/internal/workload"
)

func TestParseMainDefaults(t *testing.T) {
	cfg, err := ParseMain(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultMain()
	if cfg != def {
		t.Fatalf("empty config = %+v, want defaults %+v", cfg, def)
	}
}

func TestParseMainFull(t *testing.T) {
	text := `
# experiment configuration
workload = Apache1
middleware = watchd
watchd_version = 2
server_up_timeout = 12s
run_deadline = 2m
fault_list = faults.lst
results = out.json
`
	cfg, err := ParseMain(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload != "Apache1" || cfg.Middleware != workload.Watchd ||
		int(cfg.WatchdVersion) != 2 || cfg.ServerUpTimeout != 12*time.Second ||
		cfg.RunDeadline != 2*time.Minute || cfg.FaultList != "faults.lst" ||
		cfg.Results != "out.json" {
		t.Fatalf("parsed %+v", cfg)
	}
	def, err := cfg.Definition()
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "Apache1" || def.Supervision != workload.Watchd {
		t.Fatalf("definition %s/%v", def.Name, def.Supervision)
	}
}

func TestParseMainErrors(t *testing.T) {
	for _, text := range []string{
		"bogus line without equals",
		"workload = Netscape",
		"middleware = tandem",
		"watchd_version = 9",
		"server_up_timeout = -3s",
		"server_up_timeout = soon",
		"run_deadline = 0s",
		"color = red",
	} {
		if _, err := ParseMain(strings.NewReader(text)); err == nil {
			t.Errorf("ParseMain(%q) unexpectedly succeeded", text)
		}
	}
}

func TestParseMainMiddlewareAliases(t *testing.T) {
	for alias, want := range map[string]workload.Supervision{
		"none": workload.Standalone, "standalone": workload.Standalone,
		"MSCS": workload.MSCS, "mscs": workload.MSCS,
		"watchd": workload.Watchd,
	} {
		cfg, err := ParseMain(strings.NewReader("middleware = " + alias))
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if cfg.Middleware != want {
			t.Errorf("alias %q = %v, want %v", alias, cfg.Middleware, want)
		}
	}
}

func TestFaultListRoundtrip(t *testing.T) {
	specs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 2, Invocation: 1, Type: inject.ZeroBits},
		{Function: "CreateFileA", Param: 0, Invocation: 1, Type: inject.OneBits},
		{Function: "WaitForSingleObject", Param: 1, Invocation: 3, Type: inject.FlipBits},
	}
	var buf bytes.Buffer
	if err := WriteFaultList(&buf, specs); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFaultList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(specs) {
		t.Fatalf("parsed %d specs, want %d", len(parsed), len(specs))
	}
	for i := range specs {
		if parsed[i] != specs[i] {
			t.Errorf("spec %d: %+v != %+v", i, parsed[i], specs[i])
		}
	}
}

func TestParseFaultListErrors(t *testing.T) {
	for _, text := range []string{
		"ReadFile 2 1",              // too few fields
		"ReadFile two 1 zero",       // bad param
		"ReadFile -1 1 zero",        // negative param
		"ReadFile 2 0 zero",         // bad invocation
		"ReadFile 2 1 scramble",     // unknown type
		"ReadFile 2 1 zero trailer", // too many fields
	} {
		if _, err := ParseFaultList(strings.NewReader(text)); err == nil {
			t.Errorf("ParseFaultList(%q) unexpectedly succeeded", text)
		}
	}
}

func TestParseFaultListCommentsAndBlanks(t *testing.T) {
	text := "# header\n\nReadFile 0 1 zero\n   \n# tail\n"
	specs, err := ParseFaultList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Function != "ReadFile" {
		t.Fatalf("specs %+v", specs)
	}
}

func TestGenerateFaultList(t *testing.T) {
	entries := []CatalogEntry{
		{Name: "Zeta", Params: 1},
		{Name: "Alpha", Params: 2},
		{Name: "NoParams", Params: 0},
	}
	specs := GenerateFaultList(entries)
	// 2 params * 3 types + 1 param * 3 types = 9.
	if len(specs) != 9 {
		t.Fatalf("generated %d specs, want 9", len(specs))
	}
	// Deterministic order: sorted by name, Alpha first.
	if specs[0].Function != "Alpha" || specs[0].Param != 0 || specs[0].Type != inject.ZeroBits {
		t.Fatalf("first spec %+v", specs[0])
	}
	if specs[8].Function != "Zeta" {
		t.Fatalf("last spec %+v", specs[8])
	}
}
