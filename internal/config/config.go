// Package config parses the DTS configuration files: the main
// configuration (test parameters such as timeout periods, the fault list
// file name, and workload parameters — §3) and the fault list file
// enumerating the faults to inject. The formats are plain text, modeled on
// the ntDTS user's manual.
package config

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"ntdts/internal/inject"
	"ntdts/internal/middleware"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/workload"
)

// Main is the parsed main configuration.
type Main struct {
	// Workload selects the target ("Apache1", "Apache2", "IIS", "SQL").
	Workload string
	// Middleware selects the fault-tolerance configuration.
	Middleware workload.Supervision
	// WatchdVersion selects the watchd iteration (1..3).
	WatchdVersion watchd.Version
	// ServerUpTimeout bounds the wait for the service to come up.
	ServerUpTimeout time.Duration
	// RunDeadline bounds each fault-injection run.
	RunDeadline time.Duration
	// FaultList names the fault list file ("" = generate from the
	// export catalog).
	FaultList string
	// Results names the output file for the run records.
	Results string
}

// DefaultMain returns the documented defaults.
func DefaultMain() Main {
	return Main{
		Workload:        "IIS",
		Middleware:      workload.Standalone,
		WatchdVersion:   watchd.V3,
		ServerUpTimeout: 10 * time.Second,
		RunDeadline:     150 * time.Second,
		Results:         "results.json",
	}
}

// ParseMain reads a main configuration file ("key = value" lines, '#'
// comments).
func ParseMain(r io.Reader) (Main, error) {
	cfg := DefaultMain()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return cfg, fmt.Errorf("config line %d: expected key = value", lineNo)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if err := cfg.set(key, val); err != nil {
			return cfg, fmt.Errorf("config line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return cfg, err
	}
	return cfg, cfg.Validate()
}

func (m *Main) set(key, val string) error {
	switch strings.ToLower(key) {
	case "workload":
		m.Workload = val
	case "middleware":
		// One vocabulary for substrate selection (middleware.Parse):
		// "watchd-v2" pins the version inline; plain "watchd" leaves an
		// independently-configured watchd_version line untouched,
		// whichever order the two keys appear in.
		spec, err := middleware.Parse(val)
		if err != nil {
			return err
		}
		m.Middleware = spec.Supervision
		if spec.WatchdVersion != 0 {
			m.WatchdVersion = spec.WatchdVersion
		}
	case "watchd_version":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > 3 {
			return fmt.Errorf("watchd_version must be 1..3, got %q", val)
		}
		m.WatchdVersion = watchd.Version(n)
	case "server_up_timeout":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad server_up_timeout %q", val)
		}
		m.ServerUpTimeout = d
	case "run_deadline":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad run_deadline %q", val)
		}
		m.RunDeadline = d
	case "fault_list":
		m.FaultList = val
	case "results":
		m.Results = val
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// Validate checks cross-field consistency.
func (m *Main) Validate() error {
	if _, err := m.Definition(); err != nil {
		return err
	}
	return nil
}

// Definition resolves the configured workload definition.
func (m *Main) Definition() (workload.Definition, error) {
	switch m.Workload {
	case "Apache1":
		return workload.NewApache1(m.Middleware), nil
	case "Apache2":
		return workload.NewApache2(m.Middleware), nil
	case "IIS":
		return workload.NewIIS(m.Middleware), nil
	case "SQL":
		return workload.NewSQL(m.Middleware), nil
	default:
		return workload.Definition{}, fmt.Errorf("unknown workload %q", m.Workload)
	}
}

// Fault list files ------------------------------------------------------------

// faultTypeNames maps the file syntax to fault types.
var faultTypeNames = map[string]inject.FaultType{
	"zero": inject.ZeroBits,
	"ones": inject.OneBits,
	"flip": inject.FlipBits,
}

// ParseFaultList reads a fault list: one fault per line,
//
//	FunctionName <param> <invocation> <zero|ones|flip>
//
// with '#' comments and blank lines ignored.
func ParseFaultList(r io.Reader) ([]inject.FaultSpec, error) {
	var specs []inject.FaultSpec
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 && len(fields) != 5 {
			return nil, fmt.Errorf("fault list line %d: want 4 or 5 fields, got %d", lineNo, len(fields))
		}
		param, err := strconv.Atoi(fields[1])
		if err != nil || param < 0 {
			return nil, fmt.Errorf("fault list line %d: bad parameter index %q", lineNo, fields[1])
		}
		inv, err := strconv.Atoi(fields[2])
		if err != nil || inv < 1 {
			return nil, fmt.Errorf("fault list line %d: bad invocation %q", lineNo, fields[2])
		}
		typ, ok := faultTypeNames[strings.ToLower(fields[3])]
		if !ok {
			return nil, fmt.Errorf("fault list line %d: unknown fault type %q", lineNo, fields[3])
		}
		node := 0
		if len(fields) == 5 {
			// Optional cluster-node address, written "node=<i>".
			val, found := strings.CutPrefix(fields[4], "node=")
			if found {
				node, err = strconv.Atoi(val)
			}
			if !found || err != nil || node < 0 {
				return nil, fmt.Errorf("fault list line %d: bad node address %q (want node=<i>)", lineNo, fields[4])
			}
		}
		specs = append(specs, inject.FaultSpec{
			Function: fields[0], Param: param, Invocation: inv, Type: typ, Node: node,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return specs, nil
}

// WriteFaultList renders a fault list in the file format.
func WriteFaultList(w io.Writer, specs []inject.FaultSpec) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# DTS fault list: function param invocation type [node=<i>]")
	for _, s := range specs {
		var err error
		if s.Node != 0 {
			_, err = fmt.Fprintf(bw, "%s %d %d %s node=%d\n", s.Function, s.Param, s.Invocation, s.Type, s.Node)
		} else {
			_, err = fmt.Fprintf(bw, "%s %d %d %s\n", s.Function, s.Param, s.Invocation, s.Type)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// GenerateFaultList builds the full fault list from a catalog: every
// parameter of every injectable function with every fault type, in
// deterministic order.
func GenerateFaultList(entries []CatalogEntry) []inject.FaultSpec {
	sorted := append([]CatalogEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var specs []inject.FaultSpec
	for _, e := range sorted {
		for p := 0; p < e.Params; p++ {
			for _, t := range inject.AllFaultTypes() {
				specs = append(specs, inject.FaultSpec{
					Function: e.Name, Param: p, Invocation: 1, Type: t,
				})
			}
		}
	}
	return specs
}

// CatalogEntry mirrors the export-catalog entry shape without importing
// the win32 package (config stays substrate-agnostic).
type CatalogEntry struct {
	Name   string
	Params int
}
