// Package scm simulates the Windows NT Service Control Manager. Its
// behaviour under partial failure is central to the paper's findings:
//
//   - While any service is in a pending state, the SCM database is locked
//     and state-change requests are denied with
//     ERROR_SERVICE_DATABASE_LOCKED (§4.2: this is why both MSCS and watchd
//     "must wait until the Start Pending state times out before initiating
//     a restart" of a service that died during startup).
//   - A service that dies while START_PENDING is not reaped until its
//     wait hint expires; the SCM keeps believing it is starting.
//   - A service that dies while RUNNING is reaped at the next SCM poll
//     tick and its record cleared, so a subsequent OpenProcess on its old
//     PID fails — the race that breaks Watchd1 (§4.3).
//
// SCM calls are ADVAPI32 territory, not KERNEL32, so they are deliberately
// NOT routed through the fault-injection dispatch path (the paper injects
// only KERNEL32).
package scm

import (
	"fmt"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/ntsim"
	"ntdts/internal/vclock"
)

// State is a service state, mirroring the SERVICE_* status values.
type State int

const (
	Stopped State = iota + 1
	StartPending
	Running
	StopPending
)

// String names the state as the SDK does.
func (s State) String() string {
	switch s {
	case Stopped:
		return "SERVICE_STOPPED"
	case StartPending:
		return "SERVICE_START_PENDING"
	case Running:
		return "SERVICE_RUNNING"
	case StopPending:
		return "SERVICE_STOP_PENDING"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config describes a registered service.
type Config struct {
	Name    string
	Image   string
	CmdLine string
	// WaitHint is how long the SCM tolerates START_PENDING before giving
	// up on the start (and unlocking its database). The paper's Apache
	// configuration had a much larger effective hint than IIS, which is
	// why faulted Apache starts blocked middleware so much longer.
	WaitHint time.Duration
}

// service is the SCM's book-keeping for one service.
type service struct {
	cfg             Config
	state           State
	proc            *ntsim.Process
	pendingDeadline vclock.Time
	startCount      int
}

// pollInterval is the SCM's internal housekeeping cadence.
const pollInterval = 500 * time.Millisecond

// kernelKey is where the Manager registers itself for discovery by
// service processes (SetServiceStatus needs to find its SCM).
const kernelKey = "scm:manager"

// Manager is the simulated SCM.
type Manager struct {
	k        *ntsim.Kernel
	log      *eventlog.Log
	services map[string]*service
	stopped  bool

	// tickFn is the housekeeping callback, bound once: rescheduling the
	// method value m.tick directly would allocate a fresh closure every
	// 500ms of virtual time, thousands per campaign.
	tickFn func()
}

// New creates an SCM on the kernel, wiring its housekeeping tick to the
// virtual clock, and registers it for in-simulation discovery.
func New(k *ntsim.Kernel, log *eventlog.Log) *Manager {
	m := &Manager{k: k, log: log, services: make(map[string]*service)}
	m.tickFn = m.tick
	k.RegisterNamed(kernelKey, m)
	k.Clock().ScheduleAfter(pollInterval, m.tickFn)
	return m
}

// FromKernel finds the SCM a service process should report to.
func FromKernel(k *ntsim.Kernel) (*Manager, bool) {
	v, ok := k.LookupNamed(kernelKey)
	if !ok {
		return nil, false
	}
	m, ok := v.(*Manager)
	return m, ok
}

// Shutdown stops the housekeeping tick (kernel can then go idle).
func (m *Manager) Shutdown() { m.stopped = true }

// tick is the SCM housekeeping pass: reap dead running services, expire
// start-pending services whose wait hint has elapsed.
func (m *Manager) tick() {
	if m.stopped {
		return
	}
	now := m.k.Now()
	for _, svc := range m.services {
		switch svc.state {
		case Running:
			if svc.proc != nil && svc.proc.Terminated() {
				m.log.Append(now, "Service Control Manager", eventlog.Error, 7031,
					fmt.Sprintf("The %s service terminated unexpectedly.", svc.cfg.Name))
				svc.state = Stopped
				svc.proc = nil // reaped: the PID is gone
			}
		case StartPending:
			if now.Before(svc.pendingDeadline) {
				// The SCM still assumes the service is starting,
				// even if the process has already died (§4.2).
				continue
			}
			if svc.proc != nil && !svc.proc.Terminated() {
				// Start hung past the hint: fail the start.
				svc.proc.Terminate(ntsim.ExitTerminated)
			}
			m.log.Append(now, "Service Control Manager", eventlog.Error, 7000,
				fmt.Sprintf("The %s service failed to start: timeout.", svc.cfg.Name))
			svc.state = Stopped
			svc.proc = nil
		}
	}
	m.k.Clock().ScheduleAfter(pollInterval, m.tickFn)
}

// locked reports whether the SCM database is locked (any service pending).
func (m *Manager) locked() bool {
	for _, svc := range m.services {
		if svc.state == StartPending || svc.state == StopPending {
			return true
		}
	}
	return false
}

// CreateService registers a service.
func (m *Manager) CreateService(cfg Config) error {
	if cfg.Name == "" || cfg.Image == "" {
		return ntsim.ErrInvalidParameter
	}
	if _, exists := m.services[cfg.Name]; exists {
		return ntsim.ErrServiceExists
	}
	if cfg.WaitHint <= 0 {
		cfg.WaitHint = 30 * time.Second
	}
	m.services[cfg.Name] = &service{cfg: cfg, state: Stopped}
	return nil
}

// StartService starts a stopped service: spawns its process and moves it to
// START_PENDING. Denied while the database is locked.
func (m *Manager) StartService(name string) error {
	svc, ok := m.services[name]
	if !ok {
		return ntsim.ErrServiceDoesNotExist
	}
	if m.locked() {
		return ntsim.ErrServiceDatabaseLocked
	}
	switch svc.state {
	case Running:
		return ntsim.ErrServiceAlreadyRunning
	case StartPending, StopPending:
		return ntsim.ErrServiceDatabaseLocked
	}
	proc, err := m.k.Spawn(svc.cfg.Image, svc.cfg.CmdLine, 0)
	if err != nil {
		return ntsim.ErrServiceNotInExe
	}
	svc.proc = proc
	svc.state = StartPending
	svc.pendingDeadline = m.k.Now().Add(svc.cfg.WaitHint)
	svc.startCount++
	return nil
}

// ControlStop asks a running service to stop. The simulation's generic
// services have no control handler, so stop is a kernel terminate.
func (m *Manager) ControlStop(name string) error {
	svc, ok := m.services[name]
	if !ok {
		return ntsim.ErrServiceDoesNotExist
	}
	if m.locked() {
		return ntsim.ErrServiceDatabaseLocked
	}
	if svc.state != Running || svc.proc == nil {
		return ntsim.ErrServiceNotActive
	}
	svc.proc.Terminate(ntsim.ExitTerminated)
	svc.state = Stopped
	svc.proc = nil
	return nil
}

// SetServiceStatus is called by the service process itself to report a
// state transition (the simulated StartServiceCtrlDispatcher path).
func (m *Manager) SetServiceStatus(name string, st State) error {
	svc, ok := m.services[name]
	if !ok {
		return ntsim.ErrServiceDoesNotExist
	}
	svc.state = st
	// Harness loops poll service status between scheduling quanta; make
	// sure the scheduler fast path yields at this exact boundary so they
	// observe the transition where the slow path would have.
	m.k.RequestAttention()
	return nil
}

// QueryServiceStatus returns the current state and the service PID (0 if
// the SCM holds no live process record).
func (m *Manager) QueryServiceStatus(name string) (State, ntsim.PID, error) {
	svc, ok := m.services[name]
	if !ok {
		return 0, 0, ntsim.ErrServiceDoesNotExist
	}
	if svc.proc == nil {
		return svc.state, 0, nil
	}
	return svc.state, svc.proc.ID, nil
}

// ServiceProcess returns the SCM's process record for the service. The
// record survives process death until the SCM reaps it; callers that need
// a waitable handle must still OpenProcess the PID (which fails for dead
// processes — the Watchd1 race).
func (m *Manager) ServiceProcess(name string) (*ntsim.Process, bool) {
	svc, ok := m.services[name]
	if !ok || svc.proc == nil {
		return nil, false
	}
	return svc.proc, true
}

// StartCount reports how many times a service was started (restart
// detection for the test suite; the DTS collector uses logs instead).
func (m *Manager) StartCount(name string) int {
	svc, ok := m.services[name]
	if !ok {
		return 0
	}
	return svc.startCount
}

// ReportRunning is the helper services call once initialization completes.
func ReportRunning(k *ntsim.Kernel, name string) {
	if m, ok := FromKernel(k); ok {
		m.SetServiceStatus(name, Running)
	}
}
