package scm

import (
	"testing"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

// newRig builds a kernel + SCM with a registered toy service whose behaviour
// is controlled per test: initDelay before reporting RUNNING, optional crash
// before or after that report, then park.
type rig struct {
	k   *ntsim.Kernel
	m   *Manager
	log *eventlog.Log
}

type svcBehavior struct {
	initDelay  time.Duration
	crashAt    time.Duration // 0 = never
	reportTime time.Duration // when SetServiceStatus(Running) happens
}

func newRig(t *testing.T, b svcBehavior, hint time.Duration) *rig {
	t.Helper()
	k := ntsim.NewKernel()
	log := eventlog.New()
	m := New(k, log)
	k.RegisterImage("svc.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		elapsed := time.Duration(0)
		step := func(until time.Duration) bool {
			if b.crashAt > 0 && b.crashAt <= until {
				a.Sleep(uint32((b.crashAt - elapsed) / time.Millisecond))
				p.RaiseAccessViolation()
			}
			a.Sleep(uint32((until - elapsed) / time.Millisecond))
			elapsed = until
			return true
		}
		if b.reportTime > 0 {
			step(b.reportTime)
			ReportRunning(k, "toy")
		}
		step(b.initDelay + time.Hour) // park "serving"
		return 0
	})
	if err := m.CreateService(Config{Name: "toy", Image: "svc.exe", WaitHint: hint}); err != nil {
		t.Fatalf("CreateService: %v", err)
	}
	return &rig{k: k, m: m, log: log}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	r.k.RunFor(d)
	if pan := r.k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

func TestServiceStartsAndReportsRunning(t *testing.T) {
	r := newRig(t, svcBehavior{reportTime: 300 * time.Millisecond}, 10*time.Second)
	if err := r.m.StartService("toy"); err != nil {
		t.Fatalf("StartService: %v", err)
	}
	st, pid, _ := r.m.QueryServiceStatus("toy")
	if st != StartPending || pid == 0 {
		t.Fatalf("initial state %v pid %d", st, pid)
	}
	r.run(t, time.Second)
	st, _, _ = r.m.QueryServiceStatus("toy")
	if st != Running {
		t.Fatalf("state %v, want RUNNING", st)
	}
}

func TestCreateServiceValidation(t *testing.T) {
	k := ntsim.NewKernel()
	m := New(k, eventlog.New())
	if err := m.CreateService(Config{}); err != ntsim.ErrInvalidParameter {
		t.Fatalf("empty config: %v", err)
	}
	if err := m.CreateService(Config{Name: "a", Image: "x.exe"}); err != nil {
		t.Fatalf("valid: %v", err)
	}
	if err := m.CreateService(Config{Name: "a", Image: "x.exe"}); err != ntsim.ErrServiceExists {
		t.Fatalf("duplicate: %v", err)
	}
	if err := m.StartService("nope"); err != ntsim.ErrServiceDoesNotExist {
		t.Fatalf("unknown service: %v", err)
	}
	m.Shutdown()
}

func TestDatabaseLockedWhilePending(t *testing.T) {
	// Service dies during START_PENDING (crash before reporting Running).
	// The SCM must keep it pending — database locked — until the wait
	// hint expires, then mark it stopped and allow a restart.
	r := newRig(t, svcBehavior{crashAt: 200 * time.Millisecond}, 5*time.Second)
	if err := r.m.StartService("toy"); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Second) // crash happened; hint (5s) not yet expired
	st, _, _ := r.m.QueryServiceStatus("toy")
	if st != StartPending {
		t.Fatalf("state %v, want START_PENDING held past death", st)
	}
	if err := r.m.StartService("toy"); err != ntsim.ErrServiceDatabaseLocked {
		t.Fatalf("restart during pending: %v, want DATABASE_LOCKED", err)
	}
	r.run(t, 6*time.Second) // past the hint
	st, pid, _ := r.m.QueryServiceStatus("toy")
	if st != Stopped || pid != 0 {
		t.Fatalf("state %v pid %d after hint, want STOPPED/0", st, pid)
	}
	if r.log.CountEvent("Service Control Manager", 7000) != 1 {
		t.Fatal("missing failed-to-start event")
	}
	if err := r.m.StartService("toy"); err != nil {
		t.Fatalf("restart after unlock: %v", err)
	}
}

func TestRunningDeathReapedPromptly(t *testing.T) {
	r := newRig(t, svcBehavior{reportTime: 100 * time.Millisecond, crashAt: 2 * time.Second}, 30*time.Second)
	if err := r.m.StartService("toy"); err != nil {
		t.Fatal(err)
	}
	r.run(t, 3*time.Second)
	st, pid, _ := r.m.QueryServiceStatus("toy")
	if st != Stopped || pid != 0 {
		t.Fatalf("state %v pid %d, want reaped STOPPED", st, pid)
	}
	if r.log.CountEvent("Service Control Manager", 7031) != 1 {
		t.Fatal("missing terminated-unexpectedly event")
	}
	// Immediately restartable: no lock.
	if err := r.m.StartService("toy"); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if r.m.StartCount("toy") != 2 {
		t.Fatalf("start count %d", r.m.StartCount("toy"))
	}
}

func TestAlreadyRunningRejected(t *testing.T) {
	r := newRig(t, svcBehavior{reportTime: 100 * time.Millisecond}, 10*time.Second)
	r.m.StartService("toy")
	r.run(t, time.Second)
	if err := r.m.StartService("toy"); err != ntsim.ErrServiceAlreadyRunning {
		t.Fatalf("double start: %v", err)
	}
}

func TestControlStop(t *testing.T) {
	r := newRig(t, svcBehavior{reportTime: 100 * time.Millisecond}, 10*time.Second)
	r.m.StartService("toy")
	r.run(t, time.Second)
	if err := r.m.ControlStop("toy"); err != nil {
		t.Fatalf("stop: %v", err)
	}
	st, _, _ := r.m.QueryServiceStatus("toy")
	if st != Stopped {
		t.Fatalf("state %v after stop", st)
	}
	r.run(t, time.Second)
	if r.k.LiveProcesses() != 0 {
		t.Fatalf("%d live processes after stop", r.k.LiveProcesses())
	}
	if err := r.m.ControlStop("toy"); err != ntsim.ErrServiceNotActive {
		t.Fatalf("stop of stopped: %v", err)
	}
}

func TestHungStartKilledAtHint(t *testing.T) {
	// Service never reports Running and never crashes: the SCM fails the
	// start at the wait hint and kills the process.
	r := newRig(t, svcBehavior{}, 2*time.Second)
	r.m.StartService("toy")
	r.run(t, 3*time.Second)
	st, _, _ := r.m.QueryServiceStatus("toy")
	if st != Stopped {
		t.Fatalf("state %v, want STOPPED after hint", st)
	}
	if r.k.LiveProcesses() != 0 {
		t.Fatal("hung starter not killed")
	}
}

func TestOpenProcessFailsAfterServiceDeath(t *testing.T) {
	// The Watchd1 race: query the PID, let the service die and be
	// reaped, then OpenProcess fails.
	r := newRig(t, svcBehavior{reportTime: 100 * time.Millisecond, crashAt: time.Second}, 30*time.Second)
	r.m.StartService("toy")
	r.run(t, 500*time.Millisecond)
	_, pid, _ := r.m.QueryServiceStatus("toy")
	if pid == 0 {
		t.Fatal("no pid while running")
	}
	var opened bool
	r.k.RegisterImage("watch.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		a.Sleep(2000) // by now the service died
		opened = a.OpenProcess(0, false, pid) != 0
		return 0
	})
	if _, err := r.k.Spawn("watch.exe", "", 0); err != nil {
		t.Fatal(err)
	}
	r.run(t, 5*time.Second)
	if opened {
		t.Fatal("OpenProcess on dead service PID succeeded")
	}
}

func TestFromKernelDiscovery(t *testing.T) {
	k := ntsim.NewKernel()
	if _, ok := FromKernel(k); ok {
		t.Fatal("found SCM before creation")
	}
	m := New(k, eventlog.New())
	got, ok := FromKernel(k)
	if !ok || got != m {
		t.Fatal("FromKernel did not find the manager")
	}
	m.Shutdown()
}

func TestShutdownStopsTicking(t *testing.T) {
	k := ntsim.NewKernel()
	m := New(k, eventlog.New())
	m.Shutdown()
	k.RunFor(5 * time.Second)
	if !k.Idle() {
		t.Fatal("SCM kept the kernel busy after Shutdown")
	}
}
