package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// campaignSpecs builds a deterministic n-fault list spanning the KERNEL32
// catalog — the same shape dts fault-list campaigns (and the CI shard
// job) run.
func campaignSpecs(n int) []inject.FaultSpec {
	types := inject.AllFaultTypes()
	var specs []inject.FaultSpec
	for i, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		specs = append(specs, inject.FaultSpec{
			Function:   e.Name,
			Param:      i % e.Params,
			Invocation: 1,
			Type:       types[i%len(types)],
		})
		if len(specs) == n {
			break
		}
	}
	return specs
}

func newRunner(tel bool) *core.Runner {
	opts := core.DefaultRunnerOptions()
	opts.Telemetry = telemetry.Options{Enabled: tel}
	return core.NewRunner(workload.NewApache1(workload.Standalone), opts)
}

// artifacts renders the three byte-compared campaign outputs: the archive
// JSON, the merged telemetry trace, and the metrics text.
func artifacts(t *testing.T, set *core.SetResult) (archive, trace []byte, metrics string) {
	t.Helper()
	archive, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if set.Telemetry != nil {
		var buf bytes.Buffer
		if err := set.Telemetry.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		trace = buf.Bytes()
		metrics = set.Telemetry.MetricsText()
	}
	return archive, trace, metrics
}

func TestPartition(t *testing.T) {
	cases := []struct {
		n, k int
		want []Range
	}{
		{0, 4, nil},
		{-1, 4, nil},
		{5, 1, []Range{{0, 5}}},
		{5, 2, []Range{{0, 3}, {3, 5}}},
		{6, 3, []Range{{0, 2}, {2, 4}, {4, 6}}},
		{7, 3, []Range{{0, 3}, {3, 5}, {5, 7}}},
		{3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}}, // k clamps to n
		{5, 0, []Range{{0, 5}}},                 // k clamps to 1
		{5, -2, []Range{{0, 5}}},
	}
	for _, c := range cases {
		got := Partition(c.n, c.k)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Partition(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	// Property check: contiguous cover, sizes differ by at most one.
	for n := 1; n < 40; n++ {
		for k := 1; k <= 10; k++ {
			rs := Partition(n, k)
			next, min, max := 0, n, 0
			for _, r := range rs {
				if r.Start != next {
					t.Fatalf("Partition(%d, %d): gap before %v", n, k, r)
				}
				next = r.End
				if r.Len() < min {
					min = r.Len()
				}
				if r.Len() > max {
					max = r.Len()
				}
			}
			if next != n || max-min > 1 || min < 1 {
				t.Fatalf("Partition(%d, %d) = %v: bad cover or balance", n, k, rs)
			}
		}
	}
}

func TestParseChaosKill(t *testing.T) {
	if s, a, err := parseChaosKill(""); err != nil || s != -1 || a != 0 {
		t.Fatalf("empty spec: %d %d %v", s, a, err)
	}
	if s, a, err := parseChaosKill("2:17"); err != nil || s != 2 || a != 17 {
		t.Fatalf("2:17: %d %d %v", s, a, err)
	}
	for _, bad := range []string{"2", ":3", "2:", "x:3", "2:x", "-1:3", "2:0"} {
		if _, _, err := parseChaosKill(bad); err == nil {
			t.Errorf("parseChaosKill(%q): no error", bad)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	r := newRunner(true)
	got, err := RunnerFromHeader(HeaderFor(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Def.Name != r.Def.Name || got.Def.Supervision != r.Def.Supervision {
		t.Fatalf("definition drifted: %s/%s -> %s/%s",
			r.Def.Name, r.Def.Supervision, got.Def.Name, got.Def.Supervision)
	}
	if got.Opts.Telemetry != r.Opts.Telemetry ||
		got.Opts.ServerUpTimeout != r.Opts.ServerUpTimeout ||
		got.Opts.RunDeadline != r.Opts.RunDeadline {
		t.Fatalf("options drifted: %+v -> %+v", r.Opts, got.Opts)
	}
}

// TestShardedMatchesUnsharded is the tentpole guarantee: a 200-spec
// campaign fanned out over 1, 2, 4 and 8 shard workers produces an
// archive, telemetry trace and metrics summary byte-identical to the
// unsharded run. CI runs this under -race.
func TestShardedMatchesUnsharded(t *testing.T) {
	specs := campaignSpecs(200)
	if len(specs) != 200 {
		t.Fatalf("built %d specs, want 200", len(specs))
	}
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(4), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, wantMetrics := artifacts(t, base)

	for _, shards := range []int{1, 2, 4, 8} {
		set, err := core.NewCampaign(newRunner(true),
			core.WithSpecs(specs),
			core.WithShards(shards),
			core.WithShardExecutor(New(Options{WorkerParallelism: 2})),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		archive, trace, metrics := artifacts(t, set)
		if !bytes.Equal(archive, wantArchive) {
			t.Errorf("shards %d: archive differs from unsharded run", shards)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("shards %d: telemetry trace differs from unsharded run", shards)
		}
		if metrics != wantMetrics {
			t.Errorf("shards %d: metrics text differs from unsharded run", shards)
		}
	}
}

// TestShardedGeneratedCampaign shards the generated catalog sweep with
// paper-faithful skip probes: probe runs keep their positions, stay
// invisible to Progress, and the merged set deep-equals the unsharded
// one. The progress contract survives sharding: serialized, strictly +1,
// ending at (total, total).
func TestShardedGeneratedCampaign(t *testing.T) {
	run := func(shards int, progress func(done, total int)) *core.SetResult {
		opts := []core.Option{
			core.WithPaperFaithfulSkips(),
			core.WithProgress(progress),
		}
		if shards > 1 {
			opts = append(opts,
				core.WithShards(shards),
				core.WithShardExecutor(New(Options{WorkerParallelism: 2})))
		}
		set, err := core.NewCampaign(newRunner(false), opts...).Run(context.Background())
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		return set
	}
	base := run(1, nil)

	var calls []int
	var total int
	set := run(3, func(done, n int) {
		calls = append(calls, done)
		total = n
	})
	if !reflect.DeepEqual(base, set) {
		t.Fatal("sharded generated campaign diverges from unsharded")
	}
	if len(calls) != total || total == 0 || total == len(base.Runs) {
		// Probes are part of Runs but not of the progress total.
		t.Fatalf("%d progress calls, total %d, %d runs (probes must not count)",
			len(calls), total, len(base.Runs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress call %d reported done=%d; counter must increase strictly by one", i, done)
		}
	}
}

// severReader passes a worker's stream through until it has delivered n
// lines, then kills the worker — the InProcess stand-in for a SIGKILL
// mid-shard.
type severReader struct {
	r     io.Reader
	kill  func()
	after int
	seen  int
	dead  bool
}

func (s *severReader) Read(p []byte) (int, error) {
	if s.dead {
		return 0, io.ErrUnexpectedEOF
	}
	n, err := s.r.Read(p)
	s.seen += bytes.Count(p[:n], []byte("\n"))
	if s.seen >= s.after && !s.dead {
		s.dead = true
		s.kill()
	}
	return n, err
}

// TestWorkerDeathRedispatch kills the first worker after three streamed
// records. The coordinator must keep the prefix, respawn the shard with
// only its remaining jobs, and still merge a result list identical to
// the unsharded run.
func TestWorkerDeathRedispatch(t *testing.T) {
	specs := campaignSpecs(60)
	base, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	inner := InProcess()
	var spawned atomic.Int32
	spawn := func() (*Conn, error) {
		conn, err := inner()
		if err != nil {
			return nil, err
		}
		if spawned.Add(1) == 1 {
			conn.Out = &severReader{r: conn.Out, kill: conn.Kill, after: 3}
		}
		return conn, nil
	}
	set, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(specs),
		core.WithShards(2),
		core.WithShardExecutor(New(Options{Spawn: spawn})),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, set) {
		t.Fatal("merged set after worker death diverges from unsharded run")
	}
	if n := spawned.Load(); n != 3 {
		t.Fatalf("%d workers spawned, want 3 (2 shards + 1 respawn)", n)
	}
}

// fakeSpawner runs a hand-written protocol peer instead of ServeWorker —
// how the tests stage worker misbehaviour the real worker never
// exhibits. serve gets a killed channel that closes when the coordinator
// kills the connection.
func fakeSpawner(serve func(in io.Reader, out io.Writer, killed <-chan struct{})) Spawner {
	return func() (*Conn, error) {
		assignR, assignW := io.Pipe()
		resultR, resultW := io.Pipe()
		killed := make(chan struct{})
		var once sync.Once
		kill := func() {
			once.Do(func() {
				close(killed)
				assignR.CloseWithError(io.ErrClosedPipe)
				resultW.CloseWithError(io.ErrUnexpectedEOF)
			})
		}
		go func() {
			serve(assignR, resultW, killed)
			resultW.Close()
		}()
		return &Conn{In: assignW, Out: resultR, Kill: kill, Wait: func() error { return nil }}, nil
	}
}

// TestWorkerErrorRecordIsFatal: an error record is a deterministic run
// failure, not a worker death — the campaign fails without respawning.
func TestWorkerErrorRecordIsFatal(t *testing.T) {
	var spawned atomic.Int32
	spawn := fakeSpawner(func(in io.Reader, out io.Writer, _ <-chan struct{}) {
		io.Copy(io.Discard, in)
		io.WriteString(out, `{"kind":"error","index":7,"message":"run exploded"}`+"\n")
	})
	counted := func() (*Conn, error) {
		spawned.Add(1)
		return spawn()
	}
	_, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(8)),
		core.WithShards(2),
		core.WithShardExecutor(New(Options{Spawn: counted})),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "run exploded") {
		t.Fatalf("error = %v, want the worker's error message", err)
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("error = %v, want the lowest shard's failure", err)
	}
	if n := spawned.Load(); n != 2 {
		t.Fatalf("%d workers spawned, want 2 (error records must not respawn)", n)
	}
}

// TestWorkerPrematureDoneIsFatal: a done record with runs still open is
// protocol corruption, not death — fail, don't respawn.
func TestWorkerPrematureDoneIsFatal(t *testing.T) {
	spawn := fakeSpawner(func(in io.Reader, out io.Writer, _ <-chan struct{}) {
		io.Copy(io.Discard, in)
		io.WriteString(out, `{"kind":"done","index":0}`+"\n")
	})
	_, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(6)),
		core.WithShards(1+1),
		core.WithShardExecutor(New(Options{Spawn: spawn})),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "runs missing") {
		t.Fatalf("error = %v, want a missing-runs protocol failure", err)
	}
}

// TestStallDetectionRespawns: a worker that accepts its assignment and
// then goes silent — no records, no heartbeats — is killed at the stall
// deadline and its whole shard re-dispatched.
func TestStallDetectionRespawns(t *testing.T) {
	specs := campaignSpecs(20)
	base, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	inner := InProcess()
	var spawned atomic.Int32
	wedged := fakeSpawner(func(in io.Reader, out io.Writer, killed <-chan struct{}) {
		io.Copy(io.Discard, in)
		<-killed
	})
	spawn := func() (*Conn, error) {
		if spawned.Add(1) == 1 {
			return wedged()
		}
		return inner()
	}
	set, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(specs),
		core.WithShards(2),
		core.WithShardExecutor(New(Options{
			Spawn:         spawn,
			StallDeadline: 50 * time.Millisecond,
			Heartbeat:     10 * time.Millisecond,
		})),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, set) {
		t.Fatal("merged set after stalled worker diverges from unsharded run")
	}
	if n := spawned.Load(); n != 3 {
		t.Fatalf("%d workers spawned, want 3 (2 shards + 1 stall respawn)", n)
	}
}

// TestRespawnBudgetExhausted: a shard whose workers keep dying fails the
// campaign once MaxRespawns replacements are used up.
func TestRespawnBudgetExhausted(t *testing.T) {
	spawn := fakeSpawner(func(in io.Reader, out io.Writer, _ <-chan struct{}) {
		io.Copy(io.Discard, in) // accept the assignment, then drop dead
	})
	_, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(10)),
		core.WithShards(2),
		core.WithShardExecutor(New(Options{Spawn: spawn, MaxRespawns: 1})),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "workers died") {
		t.Fatalf("error = %v, want a respawn-budget failure", err)
	}
	if !errors.Is(err, errWorkerDied) {
		t.Fatalf("error %v does not wrap errWorkerDied", err)
	}
}

// TestShardedCancellation: cancelling the context mid-campaign kills the
// workers and surfaces ErrInterrupted, the same contract as the
// in-process pool.
func TestShardedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(120)),
		core.WithShards(2),
		core.WithShardExecutor(New(Options{})),
		core.WithProgress(func(done, total int) {
			if done == 5 {
				cancel()
			}
		}),
	).Run(ctx)
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("error = %v, want ErrInterrupted", err)
	}
	if set != nil {
		t.Fatal("cancelled unsupervised campaign must not return a set")
	}
}

// TestShardingRejectsSupervision: the two resilience layers are mutually
// exclusive by design; the conflict must be a clear error, not a hang.
func TestShardingRejectsSupervision(t *testing.T) {
	_, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(4)),
		core.WithShards(2),
		core.WithShardExecutor(New(Options{})),
		core.WithSupervision(core.NewSupervisor(core.SupervisorOptions{MaxAttempts: 1})),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("error = %v, want the sharding/supervision conflict", err)
	}
}
