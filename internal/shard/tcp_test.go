package shard

import (
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntdts/internal/core"
)

// startWorkerServer runs a WorkerServer on a loopback port for the
// test's lifetime and returns its address.
func startWorkerServer(t *testing.T, key string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWorkerServer(key, InProcess())
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestTCPLoopbackMatchesUnsharded drives the whole fleet protocol over
// real TCP connections: four slots dialing one loopback worker server,
// artifacts byte-identical to the unsharded run.
func TestTCPLoopbackMatchesUnsharded(t *testing.T) {
	specs := campaignSpecs(80)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, wantMetrics := artifacts(t, base)

	addr := startWorkerServer(t, "fleet-test-key")
	spawner := TCPSpawner(addr, "fleet-test-key", TCPOptions{})
	f := NewFleet(FleetOptions{
		Spawners: []Spawner{spawner, spawner, spawner, spawner},
	})
	set, err := core.NewCampaign(newRunner(true),
		core.WithSpecs(specs),
		core.WithShards(4),
		core.WithShardExecutor(f),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	archive, trace, metrics := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) {
		t.Error("TCP fleet archive differs from unsharded run")
	}
	if !bytes.Equal(trace, wantTrace) {
		t.Error("TCP fleet trace differs from unsharded run")
	}
	if metrics != wantMetrics {
		t.Error("TCP fleet metrics differ from unsharded run")
	}
	if st := set.Dispatch; st == nil || st.Transport != "tcp" || st.Workers != 4 {
		t.Fatalf("dispatch stats %+v, want tcp transport at 4 workers", set.Dispatch)
	}
}

// TestTCPAuthRejected: a coordinator with the wrong key is denied at
// the handshake — the session never reaches a worker.
func TestTCPAuthRejected(t *testing.T) {
	addr := startWorkerServer(t, "right-key")
	_, err := TCPSpawner(addr, "wrong-key", TCPOptions{})()
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("spawn error = %v, want a session-refused failure", err)
	}
}

// severingProxy forwards one backend connection at a time and kills the
// first sever.n server→client lines mid-stream — the torn-TCP drill.
type severingProxy struct {
	ln      net.Listener
	backend string
	once    sync.Once
	after   int64 // sever the connection after this many backend lines (first conn only)
	severed atomic.Bool
}

func (p *severingProxy) run() {
	first := true
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.bridge(c, first)
		first = false
	}
}

func (p *severingProxy) bridge(c net.Conn, sever bool) {
	b, err := net.Dial("tcp", p.backend)
	if err != nil {
		c.Close()
		return
	}
	go io.Copy(b, c) // client → backend, never severed
	var lines int64
	buf := make([]byte, 4096)
	for {
		n, err := b.Read(buf)
		if n > 0 {
			if _, werr := c.Write(buf[:n]); werr != nil {
				break
			}
			lines += int64(bytes.Count(buf[:n], []byte("\n")))
			if sever && lines >= p.after {
				p.severed.Store(true)
				break // drop both sides mid-session
			}
		}
		if err != nil {
			break
		}
	}
	c.Close()
	b.Close()
}

// TestTCPReconnectResume cuts the first coordinator connection after a
// handful of result lines. The client must redial, replay its input
// lines, resume the output stream at the acknowledged offset, and merge
// artifacts byte-identical to the unsharded run — the worker process
// itself never restarts.
func TestTCPReconnectResume(t *testing.T) {
	specs := campaignSpecs(60)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, _ := artifacts(t, base)

	backend := startWorkerServer(t, "resume-key")
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pln.Close() })
	proxy := &severingProxy{ln: pln, backend: backend, after: 8}
	go proxy.run()

	f := NewFleet(FleetOptions{
		Spawners: []Spawner{TCPSpawner(pln.Addr().String(), "resume-key", TCPOptions{
			RedialBackoff: 10 * time.Millisecond,
		})},
	})
	set, err := core.NewCampaign(newRunner(true),
		core.WithSpecs(specs),
		core.WithShards(2), // engages the executor; slots = len(Spawners) = 1
		core.WithShardExecutor(f),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !proxy.severed.Load() {
		t.Fatal("proxy never severed the connection; the drill did not run")
	}
	archive, trace, _ := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) || !bytes.Equal(trace, wantTrace) {
		t.Error("artifacts differ from unsharded run after reconnect-resume")
	}
	if st := set.Dispatch; st.WorkerDeaths != 0 || st.Degraded {
		t.Errorf("reconnect must be invisible to the fleet: %+v", st)
	}
}

// TestTCPRedialBudgetIsWorkerDeath: when the server is gone for good,
// the session dies after its redial budget and the fleet treats it as a
// worker death — here with no respawn budget either, the campaign
// degrades to in-process completion instead of failing.
func TestTCPRedialBudgetIsWorkerDeath(t *testing.T) {
	specs := campaignSpecs(10)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, _, _ := artifacts(t, base)

	// A server that dies after accepting the first session.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWorkerServer("k", InProcess())
	go srv.Serve(ln)
	addr := ln.Addr().String()

	killSrv := sync.OnceFunc(func() { srv.Close() })
	spawner := TCPSpawner(addr, "k", TCPOptions{
		RedialAttempts: 1, RedialBackoff: 5 * time.Millisecond, ConnectTimeout: 200 * time.Millisecond,
	})
	killing := func() (*Conn, error) {
		conn, err := spawner()
		if err != nil {
			return nil, err
		}
		out := conn.Out
		conn.Out = readerFunc(func(p []byte) (int, error) {
			n, err := out.Read(p)
			if n > 0 {
				killSrv() // first bytes seen: tear the whole server down
			}
			return n, err
		})
		return conn, nil
	}
	f := NewFleet(FleetOptions{
		Spawners:          []Spawner{killing},
		MaxRespawns:       1,
		ChunkRetries:      1,
		RedispatchBackoff: 5 * time.Millisecond,
		StallDeadline:     2 * time.Second,
	})
	set, err := core.NewCampaign(newRunner(true),
		core.WithSpecs(specs),
		core.WithShards(2), // engages the executor; slots = len(Spawners) = 1
		core.WithShardExecutor(f),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("lost server must degrade, not fail: %v", err)
	}
	archive, _, _ := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) {
		t.Error("degraded completion archive differs from unsharded run")
	}
	st := set.Dispatch
	if !st.Degraded || st.WorkerDeaths < 1 || st.WorkersLost != 1 {
		t.Errorf("dispatch stats %+v, want a degraded run with the slot lost", st)
	}
}

// readerFunc adapts a closure to io.Reader.
type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }
