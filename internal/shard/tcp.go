package shard

// The TCP transport: the same Spawner seam as local pipes, stretched
// over a network. A WorkerServer (dts -worker-listen) accepts
// authenticated coordinator connections and backs each session with a
// locally spawned worker; TCPSpawner (coordinator -workers host:port)
// produces Conns that dial one session each. Both sides count lines —
// the session's input (assignment) and output (result) streams are
// journal-format JSONL, one Write per line — so a dropped connection
// resumes exactly where it tore: the client redials, proves possession
// of the shared key again, announces how many output lines it already
// holds, learns how many input lines the server consumed, and both
// sides replay their logged remainder. The worker process underneath
// never notices. A connection that cannot be re-established within the
// redial budget surfaces as a dead worker, which the fleet dispatcher
// already survives.
//
// Handshake (one JSON line each, deadline-bounded):
//
//	server → {"dts":"challenge","nonce":...}
//	client → {"dts":"hello","session":...,"mac":HMAC-SHA256(key, nonce:session),"have":outLines}
//	server → {"dts":"welcome","in":inLines}   (or {"dts":"denied","msg":...})
//
// After the handshake the streams are raw worker lines, plus two
// client control lines: {"dts":"eof"} (assignment complete — close the
// worker's stdin) and {"dts":"kill"} (destroy the session). Control
// lines are distinguishable by prefix: worker lines always start
// {"kind": — and they count toward the input line total like any other
// line, so replay offsets stay aligned.

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP transport defaults.
const (
	DefaultConnectTimeout   = 5 * time.Second
	DefaultHandshakeTimeout = 5 * time.Second
	DefaultRedialAttempts   = 3
	DefaultRedialBackoff    = 200 * time.Millisecond
	// sessionReapDelay is how long a detached server session waits for
	// a reconnect before its worker is destroyed.
	sessionReapDelay = 2 * time.Minute
)

// ctrl is a transport control line. The "dts" field is first so every
// control line starts with the {"dts": prefix worker lines never have.
type ctrl struct {
	Dts     string `json:"dts"`
	Nonce   string `json:"nonce,omitempty"`
	Session string `json:"session,omitempty"`
	MAC     string `json:"mac,omitempty"`
	Have    int    `json:"have,omitempty"`
	In      int    `json:"in,omitempty"`
	Msg     string `json:"msg,omitempty"`
}

var ctrlPrefix = []byte(`{"dts":`)

func writeCtrl(w io.Writer, c ctrl) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// readCtrl reads one line and decodes it as a control line.
func readCtrl(br *bufio.Reader) (ctrl, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return ctrl{}, err
	}
	var c ctrl
	if err := json.Unmarshal(line, &c); err != nil {
		return ctrl{}, fmt.Errorf("bad control line: %w", err)
	}
	return c, nil
}

// sessionMAC authenticates a session against the shared key.
func sessionMAC(key, nonce, session string) string {
	m := hmac.New(sha256.New, []byte(key))
	io.WriteString(m, nonce+":"+session)
	return hex.EncodeToString(m.Sum(nil))
}

func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// WorkerServer hosts worker sessions for remote coordinators — the
// body of dts -worker-listen.
type WorkerServer struct {
	key              string
	spawn            Spawner
	handshakeTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]*tcpSession
	closed   bool
}

// NewWorkerServer builds a server that authenticates coordinators with
// key (empty = unauthenticated, loopback testing only) and backs each
// session with one spawned worker.
func NewWorkerServer(key string, spawn Spawner) *WorkerServer {
	if spawn == nil {
		spawn = InProcess()
	}
	return &WorkerServer{
		key:              key,
		spawn:            spawn,
		handshakeTimeout: DefaultHandshakeTimeout,
		sessions:         make(map[string]*tcpSession),
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *WorkerServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts coordinator connections on ln until Close.
func (s *WorkerServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("worker server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handleConn(c)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *WorkerServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and destroys every session.
func (s *WorkerServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	sessions := make([]*tcpSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*tcpSession)
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.destroy()
	}
	return nil
}

// handleConn runs one coordinator connection: handshake, then bridge.
func (s *WorkerServer) handleConn(c net.Conn) {
	defer func() {
		// The bridge loop closes c on its own paths; this is the
		// handshake-failure backstop.
	}()
	c.SetDeadline(time.Now().Add(s.handshakeTimeout))
	br := bufio.NewReader(c)
	nonce := randHex(16)
	if writeCtrl(c, ctrl{Dts: "challenge", Nonce: nonce}) != nil {
		c.Close()
		return
	}
	hello, err := readCtrl(br)
	if err != nil || hello.Dts != "hello" || hello.Session == "" {
		c.Close()
		return
	}
	want := sessionMAC(s.key, nonce, hello.Session)
	if !hmac.Equal([]byte(want), []byte(hello.MAC)) {
		writeCtrl(c, ctrl{Dts: "denied", Msg: "authentication failed"})
		c.Close()
		return
	}
	sess, err := s.session(hello.Session)
	if err != nil {
		writeCtrl(c, ctrl{Dts: "denied", Msg: err.Error()})
		c.Close()
		return
	}
	gen, inCount := sess.attach(c)
	if err := writeCtrl(c, ctrl{Dts: "welcome", In: inCount}); err != nil {
		sess.detach(gen)
		c.Close()
		return
	}
	c.SetDeadline(time.Time{})
	go sess.sendLoop(c, gen, hello.Have)
	s.recvLoop(sess, c, br, gen)
}

// session finds or creates the named session.
func (s *WorkerServer) session(id string) (*tcpSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("worker server closing")
	}
	if sess, ok := s.sessions[id]; ok {
		return sess, nil
	}
	conn, err := s.spawn()
	if err != nil {
		return nil, fmt.Errorf("spawn worker: %v", err)
	}
	sess := newTCPSession(conn, func() {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
	})
	s.sessions[id] = sess
	go sess.pumpOutput()
	return sess, nil
}

// recvLoop forwards coordinator lines into the session's worker.
func (s *WorkerServer) recvLoop(sess *tcpSession, c net.Conn, br *bufio.Reader, gen int) {
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			sess.detach(gen)
			c.Close()
			return
		}
		if bytes.HasPrefix(line, ctrlPrefix) {
			var cc ctrl
			if json.Unmarshal(line, &cc) != nil {
				sess.detach(gen)
				c.Close()
				return
			}
			switch cc.Dts {
			case "eof":
				sess.consumeCtrl(func() { sess.closeIn() })
			case "kill":
				sess.destroy()
				c.Close()
				return
			default:
				sess.consumeCtrl(func() {}) // unknown control: count and ignore
			}
			continue
		}
		if err := sess.consumeLine(line); err != nil {
			// Worker stdin gone (worker died); keep streaming output —
			// the tail of a crashed worker is still evidence.
			continue
		}
	}
}

// tcpSession is one worker plus its replayable line logs.
type tcpSession struct {
	worker *Conn
	reap   func()

	mu        sync.Mutex
	cond      *sync.Cond
	inCount   int      // coordinator lines consumed (worker-bound and control)
	inClosed  bool
	out       [][]byte // every worker output line, for replay
	outDone   bool
	sent      int // high-water mark of out lines delivered to any conn
	curGen    int
	curConn   net.Conn
	destroyed bool
	reapTimer *time.Timer
}

func newTCPSession(worker *Conn, reap func()) *tcpSession {
	sess := &tcpSession{worker: worker, reap: reap}
	sess.cond = sync.NewCond(&sess.mu)
	return sess
}

// pumpOutput buffers every worker output line for delivery and replay.
func (t *tcpSession) pumpOutput() {
	br := bufio.NewReader(t.worker.Out)
	for {
		line, err := br.ReadBytes('\n')
		t.mu.Lock()
		if len(line) > 0 && line[len(line)-1] == '\n' {
			t.out = append(t.out, line)
		}
		if err != nil {
			t.outDone = true
			t.cond.Broadcast()
			t.mu.Unlock()
			return
		}
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

// attach makes c the session's live connection, superseding any prior
// one, and returns the attachment generation plus the input line count
// for the welcome line.
func (t *tcpSession) attach(c net.Conn) (gen, inCount int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.curConn != nil {
		t.curConn.Close() // unblock the stale receiver
	}
	if t.reapTimer != nil {
		t.reapTimer.Stop()
		t.reapTimer = nil
	}
	t.curGen++
	t.curConn = c
	t.cond.Broadcast()
	return t.curGen, t.inCount
}

// detach ends an attachment. The worker stays alive awaiting a
// reconnect, unless its stream is fully delivered (clean completion)
// or no coordinator returns within the reap delay.
func (t *tcpSession) detach(gen int) {
	t.mu.Lock()
	if gen != t.curGen || t.destroyed {
		t.mu.Unlock()
		return
	}
	t.curConn = nil
	done := t.outDone && t.sent >= len(t.out)
	if !done && t.reapTimer == nil {
		t.reapTimer = time.AfterFunc(sessionReapDelay, t.destroy)
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	if done {
		t.destroy()
	}
}

// sendLoop streams out lines [have:] to c while it remains the live
// attachment.
func (t *tcpSession) sendLoop(c net.Conn, gen, have int) {
	i := have
	for {
		t.mu.Lock()
		for gen == t.curGen && !t.destroyed && i >= len(t.out) && !t.outDone {
			t.cond.Wait()
		}
		if gen != t.curGen || t.destroyed {
			t.mu.Unlock()
			return
		}
		if i >= len(t.out) && t.outDone {
			t.mu.Unlock()
			return // fully delivered; the client closes when satisfied
		}
		line := t.out[i]
		t.mu.Unlock()
		if _, err := c.Write(line); err != nil {
			return // receiver handles the detach
		}
		i++
		t.mu.Lock()
		if i > t.sent {
			t.sent = i
		}
		t.mu.Unlock()
	}
}

// consumeLine counts and forwards one worker-bound line.
func (t *tcpSession) consumeLine(line []byte) error {
	t.mu.Lock()
	t.inCount++
	closed := t.inClosed
	t.mu.Unlock()
	if closed {
		return errors.New("assignment stream closed")
	}
	_, err := t.worker.In.Write(line)
	return err
}

// consumeCtrl counts one control line and applies it.
func (t *tcpSession) consumeCtrl(apply func()) {
	t.mu.Lock()
	t.inCount++
	t.mu.Unlock()
	apply()
}

func (t *tcpSession) closeIn() {
	t.mu.Lock()
	if t.inClosed {
		t.mu.Unlock()
		return
	}
	t.inClosed = true
	t.mu.Unlock()
	t.worker.In.Close()
}

// destroy kills the worker and forgets the session.
func (t *tcpSession) destroy() {
	t.mu.Lock()
	if t.destroyed {
		t.mu.Unlock()
		return
	}
	t.destroyed = true
	if t.curConn != nil {
		t.curConn.Close()
	}
	if t.reapTimer != nil {
		t.reapTimer.Stop()
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	t.worker.Kill()
	t.reap()
}

// TCPOptions tune the coordinator side of the transport.
type TCPOptions struct {
	// ConnectTimeout bounds each dial (0 = DefaultConnectTimeout).
	ConnectTimeout time.Duration
	// HandshakeTimeout bounds challenge/welcome plus replay (0 =
	// DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// RedialAttempts is the reconnect budget per session (0 =
	// DefaultRedialAttempts; < 0 disables reconnects).
	RedialAttempts int
	// RedialBackoff is the pause between redials (0 =
	// DefaultRedialBackoff).
	RedialBackoff time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.ConnectTimeout == 0 {
		o.ConnectTimeout = DefaultConnectTimeout
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if o.RedialAttempts == 0 {
		o.RedialAttempts = DefaultRedialAttempts
	}
	if o.RedialAttempts < 0 {
		o.RedialAttempts = 0
	}
	if o.RedialBackoff == 0 {
		o.RedialBackoff = DefaultRedialBackoff
	}
	return o
}

// TCPSpawner produces Conns that each run one authenticated worker
// session on a remote WorkerServer. The first dial must succeed (a
// spawn failure, to the fleet); later drops redial and resume within
// the session's budget.
func TCPSpawner(addr, key string, opts TCPOptions) Spawner {
	opts = opts.withDefaults()
	return func() (*Conn, error) {
		c := &tcpClient{
			addr: addr, key: key, session: randHex(16), opts: opts,
		}
		c.outR, c.outW = io.Pipe()
		if err := c.connectLocked(); err != nil {
			return nil, err
		}
		go c.pump()
		return &Conn{
			In:   tcpIn{c},
			Out:  c.outR,
			Kill: c.kill,
			Wait: c.wait,
		}, nil
	}
}

// tcpClient is the coordinator's resumable end of one session.
type tcpClient struct {
	addr, key, session string
	opts               TCPOptions

	outR *io.PipeReader
	outW *io.PipeWriter

	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader // reader paired with conn (holds handshake leftovers)
	gen      int
	inLines  [][]byte // every input line sent, for replay
	outCount int      // output lines received (pump only writes, handshake reads under mu)
	redials  int
	killed   bool
	dead     error

	pumpDone chan struct{}
	pumpOnce sync.Once
}

// connectLocked dials, handshakes and replays. Caller must hold mu —
// except on first use, before pump starts.
func (c *tcpClient) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.ConnectTimeout)
	if err != nil {
		return fmt.Errorf("dial %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Now().Add(c.opts.HandshakeTimeout))
	br := bufio.NewReader(conn)
	chal, err := readCtrl(br)
	if err != nil || chal.Dts != "challenge" {
		conn.Close()
		return fmt.Errorf("handshake with %s: no challenge", c.addr)
	}
	hello := ctrl{
		Dts: "hello", Session: c.session,
		MAC: sessionMAC(c.key, chal.Nonce, c.session), Have: c.outCount,
	}
	if err := writeCtrl(conn, hello); err != nil {
		conn.Close()
		return fmt.Errorf("handshake with %s: %w", c.addr, err)
	}
	welcome, err := readCtrl(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("handshake with %s: %w", c.addr, err)
	}
	if welcome.Dts != "welcome" {
		conn.Close()
		return fmt.Errorf("session refused by %s: %s", c.addr, welcome.Msg)
	}
	if welcome.In > len(c.inLines) {
		conn.Close()
		return fmt.Errorf("session with %s diverged: server consumed %d lines, sent %d", c.addr, welcome.In, len(c.inLines))
	}
	for _, line := range c.inLines[welcome.In:] {
		if _, err := conn.Write(line); err != nil {
			conn.Close()
			return fmt.Errorf("replay to %s: %w", c.addr, err)
		}
	}
	conn.SetDeadline(time.Time{})
	c.conn, c.gen = conn, c.gen+1
	// Buffered handshake bytes beyond the welcome line are worker
	// output; hand the reader to the pump via the connection wrapper.
	c.br = br
	return nil
}

// pump moves worker output lines from the network to the Out pipe,
// reconnecting on drops until the session dies for good.
func (c *tcpClient) pump() {
	c.pumpOnce.Do(func() { c.pumpDone = make(chan struct{}) })
	defer close(c.pumpDone)
	for {
		c.mu.Lock()
		conn, gen, br := c.conn, c.gen, c.br
		c.mu.Unlock()
		if conn == nil {
			c.outW.CloseWithError(io.ErrUnexpectedEOF)
			return
		}
		line, err := br.ReadBytes('\n')
		if err == nil {
			c.mu.Lock()
			c.outCount++
			c.mu.Unlock()
			if _, werr := c.outW.Write(line); werr != nil {
				return // coordinator stopped reading (killed)
			}
			continue
		}
		if !c.reconnect(gen) {
			c.mu.Lock()
			dead := c.dead
			c.mu.Unlock()
			if dead == nil {
				dead = err
			}
			c.outW.CloseWithError(dead)
			return
		}
	}
}

// reconnect replaces a broken connection generation. Returns false when
// the session is dead (killed, or redial budget exhausted).
func (c *tcpClient) reconnect(brokenGen int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed || c.dead != nil {
		return false
	}
	if c.gen != brokenGen {
		return true // already replaced
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	var lastErr error = io.ErrUnexpectedEOF
	for c.redials < c.opts.RedialAttempts {
		c.redials++
		c.mu.Unlock()
		time.Sleep(c.opts.RedialBackoff)
		c.mu.Lock()
		if c.killed {
			return false
		}
		if err := c.connectLocked(); err == nil {
			return true
		} else {
			lastErr = err
		}
	}
	c.dead = fmt.Errorf("session with %s lost after %d redials: %w", c.addr, c.redials, lastErr)
	return false
}

// send appends a line to the replay log and pushes it down the live
// connection; a push failure is deferred to the reconnect machinery.
func (c *tcpClient) send(line []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return errors.New("session killed")
	}
	if c.dead != nil {
		return c.dead
	}
	c.inLines = append(c.inLines, line)
	if c.conn != nil {
		if _, err := c.conn.Write(line); err != nil {
			// Kick the pump off its blocking read; it reconnects and
			// replays this line.
			c.conn.Close()
			c.conn = nil
		}
	}
	return nil
}

func (c *tcpClient) kill() {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return
	}
	c.killed = true
	if c.conn != nil {
		data, _ := json.Marshal(ctrl{Dts: "kill"})
		c.conn.SetWriteDeadline(time.Now().Add(time.Second))
		c.conn.Write(append(data, '\n'))
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()
	c.outW.CloseWithError(io.ErrUnexpectedEOF)
	c.outR.CloseWithError(io.ErrUnexpectedEOF)
}

func (c *tcpClient) wait() error {
	c.pumpOnce.Do(func() { c.pumpDone = make(chan struct{}) })
	<-c.pumpDone
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// tcpIn adapts the client to the Conn.In seam. Every Write is exactly
// one journal line (the wire writer's invariant), which is what makes
// the replay log line-aligned.
type tcpIn struct{ c *tcpClient }

func (w tcpIn) Write(p []byte) (int, error) {
	line := append([]byte(nil), p...)
	if err := w.c.send(line); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (w tcpIn) Close() error {
	data, _ := json.Marshal(ctrl{Dts: "eof"})
	return w.c.send(append(data, '\n'))
}
