package shard

// Per-worker health tracking for the work-stealing dispatcher. Two
// signals feed it: the observed per-run cost of each chunk a worker
// completes, and the gap between its heartbeat lines. Both are EWMAs,
// so a worker that recovers grows its chunk size back. The dispatcher
// asks for a chunk size per grab: a healthy worker gets the base size,
// a degraded one (slow runs relative to the fleet median, or heartbeats
// arriving far behind cadence) gets a fraction of it — smaller chunks
// bound how much work a sick worker can strand.

import (
	"sort"
	"sync"
	"time"
)

const (
	// ewmaAlpha weights the newest observation.
	ewmaAlpha = 0.4
	// costDegraded and costCritical are per-run cost multiples of the
	// fleet median beyond which a worker's chunks halve and quarter.
	costDegraded = 1.5
	costCritical = 3.0
	// beatDegraded is the heartbeat-gap multiple of the expected period
	// beyond which a worker's chunks halve.
	beatDegraded = 2.0
)

// healthTracker aggregates per-slot health signals.
type healthTracker struct {
	mu         sync.Mutex
	cost       []float64 // EWMA seconds per run; 0 = no data yet
	beat       []float64 // EWMA heartbeat gap in seconds; 0 = no data yet
	expectBeat float64   // expected heartbeat period in seconds
}

func newHealthTracker(slots int, heartbeat time.Duration) *healthTracker {
	return &healthTracker{
		cost:       make([]float64, slots),
		beat:       make([]float64, slots),
		expectBeat: heartbeat.Seconds(),
	}
}

func ewma(old, sample float64) float64 {
	if old == 0 {
		return sample
	}
	return (1-ewmaAlpha)*old + ewmaAlpha*sample
}

// observeChunk records a completed chunk's wall time.
func (h *healthTracker) observeChunk(slot int, elapsed time.Duration, runs int) {
	if runs <= 0 {
		return
	}
	h.mu.Lock()
	h.cost[slot] = ewma(h.cost[slot], elapsed.Seconds()/float64(runs))
	h.mu.Unlock()
}

// observeBeat records the gap since the previous heartbeat line.
func (h *healthTracker) observeBeat(slot int, gap time.Duration) {
	h.mu.Lock()
	h.beat[slot] = ewma(h.beat[slot], gap.Seconds())
	h.mu.Unlock()
}

// reset clears a slot's signals — called when its worker is respawned,
// so a fresh worker is not punished for its predecessor's decline.
func (h *healthTracker) reset(slot int) {
	h.mu.Lock()
	h.cost[slot] = 0
	h.beat[slot] = 0
	h.mu.Unlock()
}

// chunkFor scales the base chunk size by the slot's health.
func (h *healthTracker) chunkFor(slot, base int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	size := base
	if med := medianNonZero(h.cost); med > 0 && h.cost[slot] > 0 {
		switch ratio := h.cost[slot] / med; {
		case ratio >= costCritical:
			size /= 4
		case ratio >= costDegraded:
			size /= 2
		}
	}
	if h.expectBeat > 0 && h.beat[slot] > beatDegraded*h.expectBeat {
		size /= 2
	}
	if size < 1 {
		size = 1
	}
	return size
}

// medianNonZero is the median of the slots that have data.
func medianNonZero(xs []float64) float64 {
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			vals = append(vals, x)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}
