package shard

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

func newClusterRunner(nodes int, routing string) *core.Runner {
	opts := core.DefaultRunnerOptions()
	opts.Telemetry = telemetry.Options{Enabled: true}
	opts.Cluster = core.ClusterConfig{Nodes: nodes, Routing: routing}
	return core.NewRunner(workload.NewIIS(workload.MSCS), opts)
}

// TestClusterHeaderRoundTrip: the cluster topology rides the journal
// header, so shard workers and resumes rebuild the identical cluster.
func TestClusterHeaderRoundTrip(t *testing.T) {
	r := newClusterRunner(3, "least-loaded")
	got, err := RunnerFromHeader(HeaderFor(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opts.Cluster != r.Opts.Cluster {
		t.Fatalf("cluster config drifted through the header: %+v -> %+v",
			r.Opts.Cluster, got.Opts.Cluster)
	}
	// And a single-host runner's header must not invent a topology.
	single := core.NewRunner(workload.NewIIS(workload.MSCS), core.DefaultRunnerOptions())
	if h := HeaderFor(single); h.ClusterNodes != 0 || h.ClusterRouting != "" {
		t.Fatalf("single-host header grew cluster fields: %+v", h)
	}
}

// TestShardedClusterMatchesUnsharded: a 3-node cluster campaign fanned
// out over shard workers produces archive, trace and metrics
// byte-identical to the in-process run.
func TestShardedClusterMatchesUnsharded(t *testing.T) {
	specs := []inject.FaultSpec{
		{Function: core.ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits},
		{Function: core.ClusterServiceCrashFunction, Invocation: 5, Type: inject.FlipBits, Node: 1},
		{Function: core.ClusterPartitionFunction, Param: 15, Invocation: 5, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.ZeroBits, Node: 2},
		{Function: "WriteFile", Param: 1, Invocation: 1, Type: inject.OneBits},
	}
	base, err := core.NewCampaign(newClusterRunner(3, "round-robin"),
		core.WithParallelism(2), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, wantMetrics := artifacts(t, base)

	for _, shards := range []int{2, 4} {
		set, err := core.NewCampaign(newClusterRunner(3, "round-robin"),
			core.WithSpecs(specs),
			core.WithShards(shards),
			core.WithShardExecutor(New(Options{WorkerParallelism: 2})),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		archive, trace, metrics := artifacts(t, set)
		if !bytes.Equal(archive, wantArchive) {
			t.Errorf("shards %d: cluster archive differs from unsharded run", shards)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("shards %d: cluster telemetry trace differs from unsharded run", shards)
		}
		if metrics != wantMetrics {
			t.Errorf("shards %d: cluster metrics text differs from unsharded run", shards)
		}
	}
}

// TestClusterFleetMatrix is the cross-transport equivalence drill: one
// 3-node cluster campaign executed as {static shards 4, stealing fleet
// of 4, stealing fleet with one worker killed mid-stream, TCP loopback
// fleet} must produce archive, trace and metrics byte-identical to the
// in-process run. CI runs this under -race.
func TestClusterFleetMatrix(t *testing.T) {
	specs := []inject.FaultSpec{
		{Function: core.ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits},
		{Function: core.ClusterServiceCrashFunction, Invocation: 5, Type: inject.FlipBits, Node: 1},
		{Function: core.ClusterPartitionFunction, Param: 15, Invocation: 5, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.ZeroBits, Node: 2},
		{Function: "WriteFile", Param: 1, Invocation: 1, Type: inject.OneBits},
		{Function: "CreateFile", Param: 0, Invocation: 1, Type: inject.ZeroBits},
		{Function: "CloseHandle", Param: 0, Invocation: 2, Type: inject.FlipBits},
	}
	base, err := core.NewCampaign(newClusterRunner(3, "round-robin"),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, wantMetrics := artifacts(t, base)

	severing := func() Spawner {
		inner := InProcess()
		var spawned atomic.Int32
		return func() (*Conn, error) {
			conn, err := inner()
			if err != nil {
				return nil, err
			}
			if spawned.Add(1) == 1 {
				conn.Out = &severReader{r: conn.Out, kill: conn.Kill, after: 2}
			}
			return conn, nil
		}
	}
	tcpAddr := startWorkerServer(t, "cluster-matrix-key")
	tcpSpawner := TCPSpawner(tcpAddr, "cluster-matrix-key", TCPOptions{})

	shapes := []struct {
		name string
		exec core.ShardExecutor
	}{
		{"static-4", New(Options{WorkerParallelism: 2})},
		{"steal-4", NewFleet(FleetOptions{Workers: 4})},
		{"steal-4-killed", NewFleet(FleetOptions{
			Workers: 4, Spawn: severing(),
			RedispatchBackoff: 5 * time.Millisecond,
		})},
		{"tcp-loopback", NewFleet(FleetOptions{
			Spawners: []Spawner{tcpSpawner, tcpSpawner, tcpSpawner, tcpSpawner},
		})},
	}
	for _, shape := range shapes {
		set, err := core.NewCampaign(newClusterRunner(3, "round-robin"),
			core.WithSpecs(specs),
			core.WithShards(4),
			core.WithShardExecutor(shape.exec),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", shape.name, err)
		}
		archive, trace, metrics := artifacts(t, set)
		if !bytes.Equal(archive, wantArchive) {
			t.Errorf("%s: cluster archive differs from in-process run", shape.name)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("%s: cluster trace differs from in-process run", shape.name)
		}
		if metrics != wantMetrics {
			t.Errorf("%s: cluster metrics differ from in-process run", shape.name)
		}
	}
}
