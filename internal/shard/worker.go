package shard

// The worker half of the protocol: read one assignment (header + plan),
// execute the jobs on a local pool, stream each result back as a
// journal run record the moment it completes, and finish with a done
// record. The coordinator owns ordering — records carry their global
// job-list index — so the worker never buffers or sorts.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/journal"
)

// wire serializes journal-format lines onto a stream: one marshal, one
// Write per line, so a killed writer tears at most the final line —
// the same invariant the journal file format rests on.
type wire struct {
	mu sync.Mutex
	w  io.Writer
}

func (w *wire) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.w.Write(data)
	return err
}

// ServeWorker runs one shard assignment read from in, streaming results
// to out. This is the body of dts -shard-worker; InProcess runs it in a
// goroutine. The returned error is for the worker process's own exit
// status — the coordinator learns of failures from the error record (or
// the severed stream).
func ServeWorker(in io.Reader, out io.Writer) error {
	st := journal.NewStream(in)
	hl, err := st.Next()
	if err != nil {
		return fmt.Errorf("shard worker: read assignment header: %w", err)
	}
	if hl.Kind != journal.KindHeader {
		return fmt.Errorf("shard worker: assignment starts with %q, want header", hl.Kind)
	}
	pl, err := st.Next()
	if err != nil {
		return fmt.Errorf("shard worker: read assignment plan: %w", err)
	}
	if pl.Kind != journal.KindPlan {
		return fmt.Errorf("shard worker: assignment line 2 is %q, want plan", pl.Kind)
	}
	plan := pl.Plan
	if len(plan.Index) != len(plan.Jobs) {
		return fmt.Errorf("shard worker: %d jobs but %d indices", len(plan.Jobs), len(plan.Index))
	}
	runner, err := RunnerFromHeader(*hl.Header)
	if err != nil {
		return fmt.Errorf("shard worker: %w", err)
	}
	jobs := make([]core.PlanJob, len(plan.Jobs))
	for i, key := range plan.Jobs {
		if jobs[i], err = core.ParseJobKey(key); err != nil {
			return fmt.Errorf("shard worker: plan job %d: %w", i, err)
		}
	}

	w := &wire{w: out}
	var written atomic.Int64

	// Liveness beacon: the coordinator tells "long run" from "wedged
	// worker" by the gap between lines, and heartbeats bound that gap.
	stopHeartbeat := func() {}
	if plan.HeartbeatNS > 0 {
		hbStop := make(chan struct{})
		var hbDone sync.WaitGroup
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			t := time.NewTicker(time.Duration(plan.HeartbeatNS))
			defer t.Stop()
			for {
				select {
				case <-t.C:
					w.writeLine(journal.Record{Kind: journal.KindHeartbeat, Index: int(written.Load())})
				case <-hbStop:
					return
				}
			}
		}()
		var once sync.Once
		stopHeartbeat = func() {
			once.Do(func() {
				close(hbStop)
				hbDone.Wait()
			})
		}
		defer stopHeartbeat()
	}

	type runFailure struct {
		global  int
		message string
	}
	var (
		cursor  atomic.Int64
		stop    atomic.Bool
		failMu  sync.Mutex
		failure *runFailure
	)
	cursor.Store(-1)
	fail := func(global int, message string) {
		failMu.Lock()
		if failure == nil || global < failure.global {
			failure = &runFailure{global: global, message: message}
		}
		failMu.Unlock()
		stop.Store(true)
	}

	parallelism := plan.Parallelism
	if parallelism <= 0 {
		parallelism = 1
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	var wg sync.WaitGroup
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnr := runner.Clone()
			for !stop.Load() {
				i := int(cursor.Add(1))
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				global := plan.Index[i]
				spec := job.Spec
				res, err := rnr.Run(&spec)
				if err != nil {
					// Mirror the in-process pool's error spelling so a
					// sharded failure reads the same in dts output.
					if job.Probe {
						fail(global, fmt.Sprintf("skip probe %v [%s]: %v", spec, spec.Fingerprint(), err))
					} else {
						fail(global, fmt.Sprintf("run %v [%s]: %v", spec, spec.Fingerprint(), err))
					}
					return
				}
				if job.Probe {
					res.Skipped = true
				}
				resultRaw, telRaw, err := core.MarshalRunRecord(res)
				if err != nil {
					fail(global, err.Error())
					return
				}
				if err := w.writeLine(journal.Record{
					Kind: journal.KindRun, Index: global, Key: plan.Jobs[i],
					Result: resultRaw, Tel: telRaw,
				}); err != nil {
					fail(global, fmt.Sprintf("result stream: %v", err))
					return
				}
				n := written.Add(1)
				if plan.ChaosKillAfter > 0 && int(n) >= plan.ChaosKillAfter {
					chaosSelfKill()
				}
			}
		}()
	}
	wg.Wait()
	// The done (or error) record must be the stream's final line.
	stopHeartbeat()

	if failure != nil {
		w.writeLine(journal.Record{Kind: journal.KindError, Index: failure.global, Message: failure.message})
		return fmt.Errorf("shard worker: %s", failure.message)
	}
	if err := w.writeLine(journal.Record{Kind: journal.KindDone, Index: int(written.Load())}); err != nil {
		return fmt.Errorf("shard worker: done record: %w", err)
	}
	return nil
}

// chaosSelfKill terminates the worker process the hard way — no flush,
// no handler — so the coordinator's failure drill sees a real SIGKILL,
// exactly like the CI shard job's random kill. Only a plan with
// ChaosKillAfter set reaches here, and the coordinator only sets it on
// real-process spawns under -chaos.
func chaosSelfKill() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	select {} // never proceed past the kill
}
