package shard

// The worker half of the protocol: read the campaign header, then serve
// plan lines (chunks of global job indices) until the assignment stream
// ends. Each chunk's jobs execute on a local pool and every result
// streams back as a journal run record the moment it completes; a done
// record closes the session. The coordinator owns ordering — records
// carry their global job-list index — so the worker never buffers or
// sorts.
//
// The static shard coordinator sends exactly one plan and closes the
// assignment stream, so its workers behave as before: one chunk, done.
// The work-stealing fleet keeps the stream open and feeds chunk after
// chunk to the same session, which amortizes the runner build and keeps
// the worker's streamed prefix final across chunks.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/journal"
)

// wire serializes journal-format lines onto a stream: one marshal, one
// Write per line, so a killed writer tears at most the final line —
// the same invariant the journal file format rests on.
type wire struct {
	mu sync.Mutex
	w  io.Writer
}

func (w *wire) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.w.Write(data)
	return err
}

// chaosThresholds are the worker-failure drills a plan can arm. The
// counters compare against the session-total record count, and once set
// they stick for the session — the coordinator arms them on a worker's
// first plan only, so a respawned worker survives.
type chaosThresholds struct {
	killAfter int           // SIGKILL self after N records
	hangAfter int           // wedge (heartbeats keep flowing) after N records
	slow      time.Duration // sleep before every run — a deliberate straggler
}

func (c *chaosThresholds) arm(plan *journal.Plan) {
	if plan.ChaosKillAfter > 0 {
		c.killAfter = plan.ChaosKillAfter
	}
	if plan.ChaosHangAfter > 0 {
		c.hangAfter = plan.ChaosHangAfter
	}
	if plan.ChaosSlowMS > 0 {
		c.slow = time.Duration(plan.ChaosSlowMS) * time.Millisecond
	}
}

// ServeWorker runs one worker session: header, then chunks until the
// assignment stream ends. This is the body of dts -shard-worker;
// InProcess runs it in a goroutine. The returned error is for the
// worker process's own exit status — the coordinator learns of failures
// from the error record (or the severed stream).
func ServeWorker(in io.Reader, out io.Writer) error {
	st := journal.NewStream(in)
	hl, err := st.Next()
	if err != nil {
		return fmt.Errorf("shard worker: read assignment header: %w", err)
	}
	if hl.Kind != journal.KindHeader {
		return fmt.Errorf("shard worker: assignment starts with %q, want header", hl.Kind)
	}
	runner, err := RunnerFromHeader(*hl.Header)
	if err != nil {
		return fmt.Errorf("shard worker: %w", err)
	}

	w := &wire{w: out}
	var written atomic.Int64

	// Liveness beacon: the coordinator tells "long run" from "wedged
	// worker" by the gap between lines, and heartbeats bound that gap.
	// Started on the first plan (which carries the period) and kept for
	// the whole session, including the idle gaps between chunks.
	stopHeartbeat := func() {}
	heartbeatRunning := false
	startHeartbeat := func(period time.Duration) {
		if heartbeatRunning || period <= 0 {
			return
		}
		heartbeatRunning = true
		hbStop := make(chan struct{})
		var hbDone sync.WaitGroup
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if w.writeLine(journal.Record{Kind: journal.KindHeartbeat, Index: int(written.Load())}) != nil {
						return // stream severed; nobody is listening
					}
				case <-hbStop:
					return
				}
			}
		}()
		var once sync.Once
		stopHeartbeat = func() {
			once.Do(func() {
				close(hbStop)
				hbDone.Wait()
			})
		}
	}
	defer func() { stopHeartbeat() }()

	var chaos chaosThresholds
	for {
		pl, err := st.Next()
		if err == io.EOF {
			break // assignment stream closed: the session is over
		}
		if errors.Is(err, journal.ErrTorn) {
			return fmt.Errorf("shard worker: assignment stream torn mid-plan")
		}
		if err != nil {
			return fmt.Errorf("shard worker: read plan: %w", err)
		}
		if pl.Kind != journal.KindPlan {
			return fmt.Errorf("shard worker: assignment line is %q, want plan", pl.Kind)
		}
		plan := pl.Plan
		if len(plan.Index) != len(plan.Jobs) {
			return fmt.Errorf("shard worker: %d jobs but %d indices", len(plan.Jobs), len(plan.Index))
		}
		startHeartbeat(time.Duration(plan.HeartbeatNS))
		chaos.arm(plan)
		if failure := runChunk(runner, plan, w, &written, chaos); failure != nil {
			// The error record must be the stream's final line.
			stopHeartbeat()
			w.writeLine(journal.Record{Kind: journal.KindError, Index: failure.global, Message: failure.message})
			return fmt.Errorf("shard worker: %s", failure.message)
		}
	}
	// The done record must be the stream's final line.
	stopHeartbeat()
	if err := w.writeLine(journal.Record{Kind: journal.KindDone, Index: int(written.Load())}); err != nil {
		return fmt.Errorf("shard worker: done record: %w", err)
	}
	return nil
}

// runFailure describes the lowest-indexed run error of a chunk.
type runFailure struct {
	global  int
	message string
}

// runChunk executes one plan's jobs on a local pool, streaming a run
// record per completion. A non-nil return is fatal to the session.
func runChunk(runner *core.Runner, plan *journal.Plan, w *wire, written *atomic.Int64, chaos chaosThresholds) *runFailure {
	jobs := make([]core.PlanJob, len(plan.Jobs))
	for i, key := range plan.Jobs {
		var err error
		if jobs[i], err = core.ParseJobKey(key); err != nil {
			return &runFailure{global: plan.Index[i], message: fmt.Sprintf("plan job %d: %v", i, err)}
		}
	}

	var (
		cursor  atomic.Int64
		stop    atomic.Bool
		failMu  sync.Mutex
		failure *runFailure
	)
	cursor.Store(-1)
	fail := func(global int, message string) {
		failMu.Lock()
		if failure == nil || global < failure.global {
			failure = &runFailure{global: global, message: message}
		}
		failMu.Unlock()
		stop.Store(true)
	}

	parallelism := plan.Parallelism
	if parallelism <= 0 {
		parallelism = 1
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	var wg sync.WaitGroup
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnr := runner.Clone()
			for !stop.Load() {
				i := int(cursor.Add(1))
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				global := plan.Index[i]
				spec := job.Spec
				if chaos.slow > 0 {
					time.Sleep(chaos.slow)
				}
				res, err := rnr.Run(&spec)
				if err != nil {
					// Mirror the in-process pool's error spelling so a
					// sharded failure reads the same in dts output.
					if job.Probe {
						fail(global, fmt.Sprintf("skip probe %v [%s]: %v", spec, spec.Fingerprint(), err))
					} else {
						fail(global, fmt.Sprintf("run %v [%s]: %v", spec, spec.Fingerprint(), err))
					}
					return
				}
				if job.Probe {
					res.Skipped = true
				}
				resultRaw, telRaw, err := core.MarshalRunRecord(res)
				if err != nil {
					fail(global, err.Error())
					return
				}
				if err := w.writeLine(journal.Record{
					Kind: journal.KindRun, Index: global, Key: plan.Jobs[i],
					Result: resultRaw, Tel: telRaw,
				}); err != nil {
					fail(global, fmt.Sprintf("result stream: %v", err))
					return
				}
				n := int(written.Add(1))
				if chaos.killAfter > 0 && n >= chaos.killAfter {
					chaosSelfKill()
				}
				if chaos.hangAfter > 0 && n >= chaos.hangAfter {
					chaosHang()
				}
			}
		}()
	}
	wg.Wait()

	failMu.Lock()
	defer failMu.Unlock()
	return failure
}

// chaosSelfKill terminates the worker process the hard way — no flush,
// no handler — so the coordinator's failure drill sees a real SIGKILL,
// exactly like the CI shard job's random kill. Only a plan with
// ChaosKillAfter set reaches here, and the coordinator only sets it on
// real-process spawns under -chaos.
func chaosSelfKill() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	select {} // never proceed past the kill
}

// chaosHang wedges the run loop forever while the heartbeat beacon
// keeps flowing — the failure the stall deadline cannot see and the
// progress deadline exists for. The parked goroutine burns no CPU; the
// coordinator SIGKILLs (or severs) the worker once the deadline fires.
func chaosHang() {
	select {}
}
