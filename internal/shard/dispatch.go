package shard

// The work-stealing fleet coordinator. Where the static Executor
// partitions the job list into contiguous ranges up front, the Fleet
// hands out bounded chunks of global spec indices on demand: a fast
// worker comes back for more, a slow one strands at most one chunk, and
// a dead one strands nothing — its chunk's uncommitted remainder is
// re-dispatched (with exponential backoff and a per-chunk retry budget)
// to whichever worker asks next. At the tail, idle workers speculatively
// re-execute the largest still-streaming chunk; every result commits at
// its global job-list index exactly once, first writer wins, so the
// duplicate results speculation produces are discarded without a trace
// and the merged archive stays byte-identical to -parallel 1 under any
// kill schedule. When a slot exhausts its respawn budget it leaves the
// fleet; when every slot is gone the coordinator finishes the remainder
// in-process and reports the campaign degraded rather than failed.
//
// The chunk lifecycle (DESIGN.md §4j):
//
//	assigned → streaming → committed
//	                     ↘ lost → re-dispatch (backoff, budget) → local
//	         ↘ speculated (tail only, one copy per chunk)

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/journal"
)

// Fleet defaults for FleetOptions zero values.
const (
	// DefaultChunkRetries is how many re-dispatches one chunk may
	// consume before it is drained in-process.
	DefaultChunkRetries = 3
	// DefaultRedispatchBackoff is the base delay before a lost chunk
	// re-enters the dispatch queue; it doubles per attempt, capped at
	// 8x.
	DefaultRedispatchBackoff = 100 * time.Millisecond
	// DefaultProgressDeadline kills a worker that heartbeats but
	// delivers no run record for this long — the wedged-worker
	// detector the stall deadline cannot be (heartbeats reset it).
	DefaultProgressDeadline = 60 * time.Second
	// defaultMaxChunk caps the auto-sized chunk.
	defaultMaxChunk = 32
	// backoffCap bounds the exponential re-dispatch backoff.
	backoffCap = 8
)

// FleetOptions tune the work-stealing coordinator.
type FleetOptions struct {
	// Workers is the number of dispatch slots (0 = Campaign.Shards).
	Workers int
	// WorkerParallelism is each worker's run-pool width (0 = 1).
	WorkerParallelism int
	// Heartbeat is the liveness beacon period (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// StallDeadline kills a worker whose stream produced nothing — no
	// record, no heartbeat — for this long (0 = DefaultStallDeadline;
	// < 0 disables).
	StallDeadline time.Duration
	// ProgressDeadline kills a worker that produced no run record for
	// this long even though heartbeats keep arriving (0 =
	// DefaultProgressDeadline; < 0 disables).
	ProgressDeadline time.Duration
	// MaxRespawns bounds replacement workers per slot (0 =
	// DefaultMaxRespawns; < 0 means no respawns).
	MaxRespawns int
	// ChunkSize caps a healthy worker's chunk (0 = auto: roughly four
	// chunks per worker, capped at 32).
	ChunkSize int
	// ChunkRetries bounds re-dispatches per chunk before it drains
	// in-process (0 = DefaultChunkRetries).
	ChunkRetries int
	// RedispatchBackoff is the base re-dispatch delay (0 =
	// DefaultRedispatchBackoff).
	RedispatchBackoff time.Duration
	// Spawn produces workers (nil = InProcess()); ignored when Spawners
	// is set.
	Spawn Spawner
	// Spawners, when non-empty, gives each slot its own spawner — the
	// TCP transport's one-address-per-slot shape. Overrides Workers.
	Spawners []Spawner
	// Transport names the worker transport for reporting ("inprocess",
	// "exec", "tcp"; derived from Spawn/Spawners when empty).
	Transport string
	// ChaosKill ("worker:afterRecords") SIGKILLs that slot's first
	// worker after N session records — the DTS_SHARD_CHAOS_KILL drill.
	ChaosKill string
	// ChaosHang ("worker:afterRecords") wedges that slot's first worker
	// after N records, heartbeats still flowing — DTS_SHARD_CHAOS_HANG.
	ChaosHang string
	// ChaosSlow ("worker:delayMS") makes that slot's first worker sleep
	// before every run — the deliberate straggler the speculation
	// benchmarks and the CI fleet-chaos gate use; DTS_SHARD_CHAOS_SLOW.
	ChaosSlow string
	// Journal, when non-nil, receives the dispatch provenance trail
	// (assign lines) and every committed run record, making the journal
	// resumable by dts -resume. The caller writes the header.
	Journal *journal.Writer
}

// Fleet runs prepared campaigns across a work-stealing worker fleet. It
// implements core.ShardExecutor and core.DispatchReporter.
type Fleet struct {
	opts FleetOptions

	mu   sync.Mutex
	last *core.DispatchStats
}

// NewFleet builds a fleet executor with defaults filled in.
func NewFleet(opts FleetOptions) *Fleet {
	if opts.WorkerParallelism <= 0 {
		opts.WorkerParallelism = 1
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.StallDeadline == 0 {
		opts.StallDeadline = DefaultStallDeadline
	}
	if opts.ProgressDeadline == 0 {
		opts.ProgressDeadline = DefaultProgressDeadline
	}
	if opts.MaxRespawns == 0 {
		opts.MaxRespawns = DefaultMaxRespawns
	}
	if opts.ChunkRetries == 0 {
		opts.ChunkRetries = DefaultChunkRetries
	}
	if opts.RedispatchBackoff == 0 {
		opts.RedispatchBackoff = DefaultRedispatchBackoff
	}
	if opts.Transport == "" {
		switch {
		case len(opts.Spawners) > 0:
			opts.Transport = "tcp"
		case opts.Spawn != nil:
			opts.Transport = "exec"
		default:
			opts.Transport = "inprocess"
		}
	}
	if len(opts.Spawners) == 0 && opts.Spawn == nil {
		opts.Spawn = InProcess()
	}
	return &Fleet{opts: opts}
}

// DispatchStats implements core.DispatchReporter: how the last
// execution behaved.
func (f *Fleet) DispatchStats() *core.DispatchStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// spawnerFor picks the slot's spawner.
func (f *Fleet) spawnerFor(slot int) Spawner {
	if len(f.opts.Spawners) > 0 {
		return f.opts.Spawners[slot%len(f.opts.Spawners)]
	}
	return f.opts.Spawn
}

// sessionChaos is the failure drill armed on one slot's first session.
type sessionChaos struct {
	kill, hang, slowMS int
}

// errFatalReported marks a session error already recorded in the
// dispatcher's failure slot (worker error records, protocol breaches).
var errFatalReported = errors.New("fleet: fatal already reported")

// streamLine is one decoded line (or read error) off a worker stream.
type streamLine struct {
	line *journal.Line
	err  error
}

// ExecuteShards implements core.ShardExecutor: dispatch chunks on
// demand, merge streamed records at their global indices, survive
// worker loss, and degrade to in-process execution before failing.
func (f *Fleet) ExecuteShards(ctx context.Context, c *core.Campaign, p *core.Prepared) ([]core.RunResult, error) {
	jobs := p.Jobs
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := f.opts.Workers
	if len(f.opts.Spawners) > 0 {
		workers = len(f.opts.Spawners)
	}
	if workers <= 0 {
		workers = c.Shards()
	}
	if workers < 1 {
		workers = 1
	}

	chaosKillW, chaosKillAfter, err := parseChaosKill(f.opts.ChaosKill)
	if err != nil {
		return nil, err
	}
	chaosHangW, chaosHangAfter, err := parseChaosKill(f.opts.ChaosHang)
	if err != nil {
		return nil, err
	}
	chaosSlowW, chaosSlowMS, err := parseChaosKill(f.opts.ChaosSlow)
	if err != nil {
		return nil, err
	}

	header := HeaderFor(c.Runner())
	d := newDispatcher(f, c, p, workers)
	if d.jw != nil {
		d.jw.WritePlan(core.JobKeys(jobs), core.PlanFingerprint(jobs))
	}

	// Cancellation watcher: ctx cancellation releases every slot and
	// the local drainer through the dispatcher's done channel.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			d.cancel()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		chaos := sessionChaos{}
		if s == chaosKillW {
			chaos.kill = chaosKillAfter
		}
		if s == chaosHangW {
			chaos.hang = chaosHangAfter
		}
		if s == chaosSlowW {
			chaos.slowMS = chaosSlowMS
		}
		wg.Add(1)
		go func(s int, chaos sessionChaos) {
			defer wg.Done()
			f.slotLoop(ctx, s, d, header, chaos)
		}(s, chaos)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.localLoop(d)
	}()
	wg.Wait()
	close(watchDone)

	d.mu.Lock()
	stats := d.stats
	failure := d.failure
	committed := d.nCommitted
	d.mu.Unlock()
	if stats.Degraded {
		d.journalEvent(-1, "degraded", nil)
	}
	f.mu.Lock()
	f.last = &stats
	f.mu.Unlock()

	if ctx.Err() != nil {
		return nil, core.ErrInterrupted
	}
	if failure != nil {
		return nil, failure
	}
	if committed != len(jobs) {
		return nil, fmt.Errorf("fleet: %d of %d runs unaccounted for", len(jobs)-committed, len(jobs))
	}
	return d.results, nil
}

// slotLoop drives one dispatch slot through as many worker sessions as
// its respawn budget allows.
func (f *Fleet) slotLoop(ctx context.Context, slot int, d *dispatcher, header journal.Header, chaos sessionChaos) {
	budget := f.opts.MaxRespawns
	if budget < 0 {
		budget = 0
	}
	for attempt := 0; ; attempt++ {
		if d.finished() {
			return
		}
		armed := sessionChaos{}
		if attempt == 0 {
			armed = chaos // the drill kills a slot's first worker only
		} else {
			d.health.reset(slot)
		}
		err := f.session(ctx, slot, d, header, armed)
		if err == nil || errors.Is(err, errFatalReported) {
			return
		}
		if !errors.Is(err, errWorkerDied) {
			d.fail(len(d.jobs), err)
			return
		}
		d.noteDeath(slot)
		if attempt >= budget {
			d.slotExhausted(slot)
			return
		}
	}
}

// session runs one worker lifetime: spawn, send the header, then grab
// and stream chunks until the dispatcher runs dry or the worker dies.
func (f *Fleet) session(ctx context.Context, slot int, d *dispatcher, header journal.Header, chaos sessionChaos) error {
	conn, err := f.spawnerFor(slot)()
	if err != nil {
		return fmt.Errorf("fleet worker %d: spawn: %w (%w)", slot, err, errWorkerDied)
	}
	defer conn.Kill()
	w := &wire{w: conn.In}
	if err := w.writeLine(header); err != nil {
		return fmt.Errorf("fleet worker %d: send header: %w (%w)", slot, err, errWorkerDied)
	}

	// Reader goroutine: the stream is a blocking pipe, so deadline and
	// cancellation handling need Next off the main select loop. The
	// channel lives for the whole session; awaitChunk consumes from it
	// chunk after chunk so no line is ever dropped between chunks.
	lines := make(chan streamLine)
	quit := make(chan struct{})
	defer close(quit)
	st := journal.NewStream(conn.Out)
	go func() {
		for {
			l, err := st.Next()
			select {
			case lines <- streamLine{l, err}:
			case <-quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	first := true
	for {
		a := d.grab(slot)
		if a == nil {
			// Dispatcher dry: campaign complete, failed or cancelled.
			conn.In.Close()
			return nil
		}
		keys := make([]string, len(a.indices))
		for i, g := range a.indices {
			keys[i] = d.jobs[g].Key()
		}
		plan := journal.Plan{
			Kind: journal.KindPlan, Jobs: keys,
			Shard: slot, Index: append([]int(nil), a.indices...),
			Parallelism: f.opts.WorkerParallelism,
			HeartbeatNS: int64(f.opts.Heartbeat),
		}
		if first {
			plan.ChaosKillAfter = chaos.kill
			plan.ChaosHangAfter = chaos.hang
			plan.ChaosSlowMS = chaos.slowMS
			first = false
		}
		start := time.Now()
		if err := w.writeLine(&plan); err != nil {
			d.lost(a)
			return fmt.Errorf("fleet worker %d: send plan: %w (%w)", slot, err, errWorkerDied)
		}
		cerr := f.awaitChunk(d, slot, a, lines, conn)
		if cerr != nil {
			d.lost(a)
			return cerr
		}
		d.finish(a)
		d.health.observeChunk(slot, time.Since(start), len(a.indices))
	}
}

// awaitChunk consumes the worker's stream until every index of the
// assignment has arrived. Two deadlines run: the stall deadline resets
// on any line (a silent stream means a dead worker), the progress
// deadline resets only on run records (a heartbeating stream with no
// results means a wedged worker). Records are validated against the
// assignment; commit deduplicates against speculative copies.
func (f *Fleet) awaitChunk(d *dispatcher, slot int, a *assignment, lines <-chan streamLine, conn *Conn) error {
	open := make(map[int]bool, len(a.indices))
	for _, g := range a.indices {
		open[g] = true
	}

	var stallC, progressC <-chan time.Time
	var stall, progress *time.Timer
	if f.opts.StallDeadline > 0 {
		stall = time.NewTimer(f.opts.StallDeadline)
		defer stall.Stop()
		stallC = stall.C
	}
	if f.opts.ProgressDeadline > 0 {
		progress = time.NewTimer(f.opts.ProgressDeadline)
		defer progress.Stop()
		progressC = progress.C
	}
	reset := func(t *time.Timer, dl time.Duration) {
		if t == nil {
			return
		}
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(dl)
	}

	var lastBeat time.Time
	for len(open) > 0 {
		select {
		case m := <-lines:
			reset(stall, f.opts.StallDeadline)
			if m.err != nil {
				// EOF, torn record, or a garbled stream without a done
				// record: the worker died (or went insane) mid-chunk.
				return fmt.Errorf("fleet worker %d: stream ended early: %w (%w)", slot, m.err, errWorkerDied)
			}
			switch m.line.Kind {
			case journal.KindRun:
				rec := m.line.Rec
				if !open[rec.Index] {
					d.fail(rec.Index, fmt.Errorf("fleet worker %d: record for job %d not in this chunk", slot, rec.Index))
					return errFatalReported
				}
				if want := d.jobs[rec.Index].Key(); rec.Key != want {
					d.fail(rec.Index, fmt.Errorf("fleet worker %d: record %d keyed %s, plan expects %s", slot, rec.Index, rec.Key, want))
					return errFatalReported
				}
				res, err := core.UnmarshalRunRecord(rec.Result, rec.Tel)
				if err != nil {
					d.fail(rec.Index, fmt.Errorf("fleet worker %d: record %d: %w", slot, rec.Index, err))
					return errFatalReported
				}
				d.commit(rec.Index, res, rec.Result, rec.Tel)
				delete(open, rec.Index)
				reset(progress, f.opts.ProgressDeadline)
			case journal.KindHeartbeat:
				now := time.Now()
				if !lastBeat.IsZero() {
					d.health.observeBeat(slot, now.Sub(lastBeat))
				}
				lastBeat = now
			case journal.KindError:
				// A worker-side run failure is deterministic — a fresh
				// worker would fail the same run — so it fails the
				// campaign, exactly as in the in-process pool.
				d.fail(m.line.Rec.Index, fmt.Errorf("fleet worker %d: %s", slot, m.line.Rec.Message))
				return errFatalReported
			case journal.KindDone:
				return fmt.Errorf("fleet worker %d: done record mid-chunk (%d runs missing) (%w)", slot, len(open), errWorkerDied)
			default:
				d.fail(len(d.jobs), fmt.Errorf("fleet worker %d: unexpected %q record", slot, m.line.Kind))
				return errFatalReported
			}
		case <-stallC:
			conn.Kill()
			return fmt.Errorf("fleet worker %d: no record or heartbeat for %v (%w)", slot, f.opts.StallDeadline, errWorkerDied)
		case <-progressC:
			conn.Kill()
			return fmt.Errorf("fleet worker %d: heartbeats but no run record for %v — wedged (%w)", slot, f.opts.ProgressDeadline, errWorkerDied)
		case <-d.doneCh:
			// Campaign over (all committed elsewhere, a fatal error, or
			// cancellation): abandon the worker; any indices still open
			// here are already committed or moot.
			conn.Kill()
			return nil
		}
	}
	return nil
}

// localLoop is the graceful-degradation drain: it executes chunks whose
// re-dispatch budget is exhausted, and — once every slot has left the
// fleet — everything still unassigned, in-process on a cloned runner.
func (f *Fleet) localLoop(d *dispatcher) {
	var rnr *core.Runner
	for {
		a := d.grabLocal()
		if a == nil {
			return
		}
		if rnr == nil {
			rnr = d.c.Runner().Clone()
		}
		for _, g := range a.indices {
			if d.isCommitted(g) || d.finished() {
				continue
			}
			job := d.jobs[g]
			spec := job.Spec
			res, err := rnr.Run(&spec)
			if err != nil {
				// Same spelling as the in-process pool and the workers.
				if job.Probe {
					d.fail(g, fmt.Errorf("skip probe %v [%s]: %v", spec, spec.Fingerprint(), err))
				} else {
					d.fail(g, fmt.Errorf("run %v [%s]: %v", spec, spec.Fingerprint(), err))
				}
				return
			}
			if job.Probe {
				res.Skipped = true
			}
			d.commitLocal(g, res)
		}
		d.finish(a)
	}
}

// chunk is one unit of dispatch: a set of global job indices and its
// re-dispatch history. live counts copies in flight (primary plus one
// speculative re-issue); the family is accounted once, whichever copy
// delivers first.
type chunk struct {
	id         int
	indices    []int
	attempt    int
	live       int
	speculated bool
}

// assignment is one copy of a chunk handed to one executor.
type assignment struct {
	ch          *chunk
	indices     []int
	slot        int
	speculative bool
}

// dispatcher is the fleet's shared state: the job list, the commit
// bitmap, and the chunk queues. All fields below mu are guarded by it;
// cond wakes grabbers when work or completion state changes.
type dispatcher struct {
	f      *Fleet
	c      *core.Campaign
	jobs   []core.PlanJob
	faults int
	jw     *journal.Writer

	mu           sync.Mutex
	cond         *sync.Cond
	results      []core.RunResult
	committed    []bool
	nCommitted   int
	progressDone int
	cursor       int      // next fresh job index not yet carved
	ready        []*chunk // lost chunks past their backoff, first index ascending
	inflight     map[int]*chunk
	local        []*chunk // chunks for the in-process drain
	backoffs     int      // chunks waiting out a re-dispatch backoff
	activeSlots  int
	chunkSeq     int
	failure      error
	failureIdx   int
	canceled     bool
	doneCh       chan struct{}
	doneOnce     sync.Once
	stats        core.DispatchStats
	baseChunk    int
	health       *healthTracker
}

func newDispatcher(f *Fleet, c *core.Campaign, p *core.Prepared, workers int) *dispatcher {
	base := f.opts.ChunkSize
	if base <= 0 {
		// Aim for a few grabs per worker so stealing has something to
		// steal, without dissolving into per-run dispatch overhead.
		base = (len(p.Jobs) + workers*4 - 1) / (workers * 4)
		if base > defaultMaxChunk {
			base = defaultMaxChunk
		}
	}
	if base < 1 {
		base = 1
	}
	d := &dispatcher{
		f:           f,
		c:           c,
		jobs:        p.Jobs,
		faults:      p.Faults,
		jw:          f.opts.Journal,
		results:     make([]core.RunResult, len(p.Jobs)),
		committed:   make([]bool, len(p.Jobs)),
		inflight:    make(map[int]*chunk),
		activeSlots: workers,
		doneCh:      make(chan struct{}),
		baseChunk:   base,
		health:      newHealthTracker(workers, f.opts.Heartbeat),
	}
	d.cond = sync.NewCond(&d.mu)
	d.stats.Workers = workers
	d.stats.Transport = f.opts.Transport
	return d
}

func (d *dispatcher) finishedLocked() bool {
	return d.failure != nil || d.canceled || d.nCommitted == len(d.jobs)
}

func (d *dispatcher) finished() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.finishedLocked()
}

// signalDone closes the done channel and wakes every waiter. Caller
// holds mu.
func (d *dispatcher) signalDone() {
	d.doneOnce.Do(func() { close(d.doneCh) })
	d.cond.Broadcast()
}

func (d *dispatcher) cancel() {
	d.mu.Lock()
	d.canceled = true
	d.signalDone()
	d.mu.Unlock()
}

// fail records a fatal campaign error; the lowest job index wins, the
// same rule the in-process pool applies.
func (d *dispatcher) fail(index int, err error) {
	d.mu.Lock()
	if d.failure == nil || index < d.failureIdx {
		d.failure, d.failureIdx = err, index
	}
	d.signalDone()
	d.mu.Unlock()
}

// journalEvent appends one provenance line (no-op without a journal).
// Safe under d.mu: the journal writer has its own lock and never calls
// back.
func (d *dispatcher) journalEvent(worker int, event string, indices []int) {
	if d.jw != nil {
		d.jw.WriteAssign(worker, event, indices)
	}
}

// uncommittedLocked filters indices down to those not yet committed.
func (d *dispatcher) uncommittedLocked(indices []int) []int {
	out := make([]int, 0, len(indices))
	for _, g := range indices {
		if !d.committed[g] {
			out = append(out, g)
		}
	}
	return out
}

func (d *dispatcher) isCommitted(g int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.committed[g]
}

// grab hands the slot its next assignment: re-dispatched work first,
// then a fresh health-sized chunk, then — at the tail — a speculative
// copy of the largest still-streaming chunk. It blocks while all work
// is in flight elsewhere and returns nil when the campaign is over.
func (d *dispatcher) grab(slot int) *assignment {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.finishedLocked() {
			return nil
		}
		for len(d.ready) > 0 {
			ch := d.ready[0]
			d.ready = d.ready[1:]
			un := d.uncommittedLocked(ch.indices)
			if len(un) == 0 {
				continue
			}
			ch.indices = un
			ch.live, ch.speculated = 1, false
			d.inflight[ch.id] = ch
			d.journalEvent(slot, "assign", un)
			return &assignment{ch: ch, indices: un, slot: slot}
		}
		if d.cursor < len(d.jobs) {
			size := d.health.chunkFor(slot, d.baseChunk)
			end := d.cursor + size
			if end > len(d.jobs) {
				end = len(d.jobs)
			}
			idx := make([]int, 0, end-d.cursor)
			for g := d.cursor; g < end; g++ {
				idx = append(idx, g)
			}
			d.cursor = end
			d.chunkSeq++
			ch := &chunk{id: d.chunkSeq, indices: idx, live: 1}
			d.inflight[ch.id] = ch
			d.stats.Chunks++
			d.journalEvent(slot, "assign", idx)
			d.cond.Broadcast() // a new inflight chunk is a new speculation target
			return &assignment{ch: ch, indices: idx, slot: slot}
		}
		if a := d.speculateLocked(slot); a != nil {
			return a
		}
		d.cond.Wait()
	}
}

// speculateLocked re-issues the biggest uncommitted in-flight chunk to
// an idle slot — one copy per chunk; first complete result wins and the
// loser's duplicates are discarded by commit. Caller holds mu.
func (d *dispatcher) speculateLocked(slot int) *assignment {
	var best *chunk
	var bestUn []int
	for _, ch := range d.inflight {
		if ch.speculated {
			continue
		}
		un := d.uncommittedLocked(ch.indices)
		if len(un) == 0 {
			continue
		}
		if best == nil || len(un) > len(bestUn) || (len(un) == len(bestUn) && ch.id < best.id) {
			best, bestUn = ch, un
		}
	}
	if best == nil {
		return nil
	}
	best.speculated = true
	best.live++
	d.stats.Speculated++
	d.journalEvent(slot, "speculate", bestUn)
	return &assignment{ch: best, indices: bestUn, slot: slot, speculative: true}
}

// commit merges one remote result at its global index, exactly once;
// duplicate results from speculative copies return without a trace.
// Progress is reported under the lock, so invocations stay serialized
// and strictly incrementing, the in-process pool's contract.
func (d *dispatcher) commit(global int, res *core.RunResult, resultRaw, telRaw []byte) bool {
	d.mu.Lock()
	if d.committed[global] {
		d.mu.Unlock()
		return false
	}
	d.committed[global] = true
	d.results[global] = *res
	d.nCommitted++
	if d.jw != nil {
		d.jw.WriteRun(global, d.jobs[global].Key(), 1, resultRaw, telRaw)
	}
	d.reportLocked(global)
	if d.nCommitted == len(d.jobs) {
		d.signalDone()
	} else {
		d.cond.Broadcast()
	}
	d.mu.Unlock()
	return true
}

// commitLocal merges one locally-executed result, marshalling the
// record for the journal only when one is attached.
func (d *dispatcher) commitLocal(global int, res *core.RunResult) bool {
	var resultRaw, telRaw []byte
	if d.jw != nil {
		r, t, err := core.MarshalRunRecord(res)
		if err == nil {
			resultRaw, telRaw = r, t
		}
	}
	d.mu.Lock()
	if d.committed[global] {
		d.mu.Unlock()
		return false
	}
	d.committed[global] = true
	d.results[global] = *res
	d.nCommitted++
	d.stats.LocalRuns++
	d.stats.Degraded = true
	if d.jw != nil {
		d.jw.WriteRun(global, d.jobs[global].Key(), 1, resultRaw, telRaw)
	}
	d.reportLocked(global)
	if d.nCommitted == len(d.jobs) {
		d.signalDone()
	} else {
		d.cond.Broadcast()
	}
	d.mu.Unlock()
	return true
}

// reportLocked drives the campaign Progress callback. Caller holds mu.
func (d *dispatcher) reportLocked(global int) {
	if !d.c.HasProgress() || d.jobs[global].Probe {
		return
	}
	d.progressDone++
	d.c.ReportProgress(d.progressDone, d.faults)
}

// finish retires one delivered (or abandoned-at-completion) copy.
func (d *dispatcher) finish(a *assignment) {
	d.mu.Lock()
	a.ch.live--
	if a.ch.live <= 0 {
		delete(d.inflight, a.ch.id)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// lost handles a copy that died with work outstanding: while a sibling
// copy survives, it owns the remainder; otherwise the uncommitted
// indices re-enter the queue after an exponential backoff, and past the
// retry budget they fall to the in-process drain.
func (d *dispatcher) lost(a *assignment) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch := a.ch
	ch.live--
	un := d.uncommittedLocked(ch.indices)
	d.journalEvent(a.slot, "lost", un)
	if ch.live > 0 || len(un) == 0 {
		// A surviving copy covers the remainder, or nothing remains.
		if ch.live <= 0 {
			delete(d.inflight, ch.id)
		}
		d.cond.Broadcast()
		return
	}
	delete(d.inflight, ch.id)
	ch.indices = un
	ch.attempt++
	if ch.attempt > d.f.opts.ChunkRetries {
		d.local = append(d.local, ch)
		d.journalEvent(-1, "local", un)
		d.cond.Broadcast()
		return
	}
	d.stats.Redispatched++
	d.journalEvent(-1, "redispatch", un)
	backoff := d.f.opts.RedispatchBackoff
	for i := 1; i < ch.attempt && i < backoffCap; i++ {
		backoff *= 2
	}
	d.backoffs++
	time.AfterFunc(backoff, func() {
		d.mu.Lock()
		d.backoffs--
		d.ready = append(d.ready, ch)
		sort.Slice(d.ready, func(i, j int) bool { return d.ready[i].indices[0] < d.ready[j].indices[0] })
		d.cond.Broadcast()
		d.mu.Unlock()
	})
}

// noteDeath counts one dead worker session.
func (d *dispatcher) noteDeath(slot int) {
	d.mu.Lock()
	d.stats.WorkerDeaths++
	d.mu.Unlock()
}

// slotExhausted removes a slot whose respawn budget ran out. When the
// last slot leaves, the local drain inherits everything still pending.
func (d *dispatcher) slotExhausted(slot int) {
	d.mu.Lock()
	d.activeSlots--
	d.stats.WorkersLost++
	d.journalEvent(slot, "exhausted", nil)
	d.cond.Broadcast()
	d.mu.Unlock()
}

// grabLocal hands the drain goroutine its next chunk: budget-exhausted
// chunks always, and — once the fleet is gone — re-dispatched and fresh
// work too. Returns nil when the campaign is over.
func (d *dispatcher) grabLocal() *assignment {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.finishedLocked() {
			return nil
		}
		for len(d.local) > 0 {
			ch := d.local[0]
			d.local = d.local[1:]
			un := d.uncommittedLocked(ch.indices)
			if len(un) == 0 {
				continue
			}
			ch.indices = un
			ch.live = 1
			return &assignment{ch: ch, indices: un, slot: -1}
		}
		if d.activeSlots == 0 {
			if len(d.ready) > 0 {
				ch := d.ready[0]
				d.ready = d.ready[1:]
				un := d.uncommittedLocked(ch.indices)
				if len(un) == 0 {
					continue
				}
				ch.indices = un
				ch.live = 1
				d.journalEvent(-1, "local", un)
				return &assignment{ch: ch, indices: un, slot: -1}
			}
			if d.cursor < len(d.jobs) {
				idx := make([]int, 0, len(d.jobs)-d.cursor)
				for g := d.cursor; g < len(d.jobs); g++ {
					idx = append(idx, g)
				}
				d.cursor = len(d.jobs)
				d.chunkSeq++
				d.journalEvent(-1, "local", idx)
				return &assignment{ch: &chunk{id: d.chunkSeq, indices: idx, live: 1}, indices: idx, slot: -1}
			}
			// Chunks still riding out a backoff or in flight on a
			// not-yet-reaped session; their loss handlers will feed us.
		}
		d.cond.Wait()
	}
}
