package shard

// The coordinator half: partition the prepared job list, dispatch one
// worker per shard, merge streamed records at their global indices, and
// survive worker death. Detection is two-layered — heartbeat records
// bound the silence a healthy worker can produce, and a stall deadline
// kills a worker whose stream has gone quiet; a severed or torn stream
// means the worker died on its own. Either way the records already
// streamed are final (the stream is its own journal replay), so only
// the shard's remaining jobs are re-dispatched, up to MaxRespawns fresh
// workers per shard.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/journal"
)

// Defaults for Options zero values.
const (
	DefaultHeartbeat     = 500 * time.Millisecond
	DefaultStallDeadline = 30 * time.Second
	DefaultMaxRespawns   = 2
)

// Options tune the coordinator.
type Options struct {
	// WorkerParallelism is each worker's run-pool width (0 = 1: with K
	// single-threaded workers, sharding is the process-isolated analogue
	// of Parallelism=K).
	WorkerParallelism int
	// Heartbeat is the liveness beacon period workers are asked for
	// (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// StallDeadline kills a worker whose stream produced nothing — no
	// record, no heartbeat — for this long (0 = DefaultStallDeadline;
	// < 0 disables stall detection).
	StallDeadline time.Duration
	// MaxRespawns bounds how many replacement workers one shard may
	// consume before the campaign fails (0 = DefaultMaxRespawns; < 0
	// means no respawns).
	MaxRespawns int
	// Spawn produces workers (nil = InProcess()).
	Spawn Spawner
	// ChaosKill, in the form "shard:afterRecords", makes that shard's
	// first worker SIGKILL itself after writing that many records — the
	// failure drill dts -chaos wires from DTS_SHARD_CHAOS_KILL. Only
	// meaningful with a real-process Spawner.
	ChaosKill string
	// ChaosSlow, in the form "shard:delayMS", makes that shard's first
	// worker sleep before every run — the deliberate straggler the
	// static-vs-stealing benchmarks compare against.
	ChaosSlow string
}

// Executor runs prepared campaigns across shard workers. It implements
// core.ShardExecutor; importing this package registers an in-process
// default, and dts -shards installs one that execs real workers.
type Executor struct {
	opts Options
}

// New builds an executor with defaults filled in.
func New(opts Options) *Executor {
	if opts.WorkerParallelism <= 0 {
		opts.WorkerParallelism = 1
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.StallDeadline == 0 {
		opts.StallDeadline = DefaultStallDeadline
	}
	if opts.MaxRespawns == 0 {
		opts.MaxRespawns = DefaultMaxRespawns
	}
	if opts.Spawn == nil {
		opts.Spawn = InProcess()
	}
	return &Executor{opts: opts}
}

func init() {
	// Importing the package is enough to make Campaign.Shards work; the
	// in-process default keeps the registration safe in any binary (a
	// worker is a goroutine speaking the full wire protocol). dts
	// overrides it with a self-exec executor for real crash isolation.
	core.RegisterShardExecutor(New(Options{}))
}

// errWorkerDied marks a detectable worker death (severed stream, torn
// record, stall): the shard's remainder is re-dispatched. Any other
// dispatch error is fatal to the campaign.
var errWorkerDied = errors.New("shard worker died")

// ExecuteShards implements core.ShardExecutor: fan out, merge, and
// return results in global job order.
func (e *Executor) ExecuteShards(ctx context.Context, c *core.Campaign, p *core.Prepared) ([]core.RunResult, error) {
	jobs := p.Jobs
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ranges := Partition(len(jobs), c.Shards())
	header := HeaderFor(c.Runner())
	results := make([]core.RunResult, len(jobs))

	chaosShard, chaosAfter, err := parseChaosKill(e.opts.ChaosKill)
	if err != nil {
		return nil, err
	}
	chaosSlowShard, chaosSlowMS, err := parseChaosKill(e.opts.ChaosSlow)
	if err != nil {
		return nil, err
	}

	// Progress keeps the in-process pool's contract: serialized, done
	// strictly +1, final call (total, total) — shards interleave but the
	// counter never goes backwards or skips.
	var (
		progressMu sync.Mutex
		done       int
	)
	report := func(probe bool) {
		if !c.HasProgress() || probe {
			return
		}
		progressMu.Lock()
		done++
		c.ReportProgress(done, p.Faults)
		progressMu.Unlock()
	}

	fails := make([]error, len(ranges))
	var wg sync.WaitGroup
	for s := range ranges {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			chaos := 0
			if s == chaosShard {
				chaos = chaosAfter
			}
			slow := 0
			if s == chaosSlowShard {
				slow = chaosSlowMS
			}
			fails[s] = e.runShard(ctx, s, jobs, ranges[s], header, results, report, chaos, slow)
		}(s)
	}
	wg.Wait()
	// Shards are contiguous, so the lowest-shard error is the one the
	// sequential sweep would have hit first — same rule as the pool.
	for _, err := range fails {
		if err != nil {
			return nil, err
		}
	}
	if ctx.Err() != nil {
		return nil, core.ErrInterrupted
	}
	return results, nil
}

// runShard drives one shard to completion through as many workers as
// the respawn budget allows.
func (e *Executor) runShard(ctx context.Context, shardIdx int, jobs []core.PlanJob, rng Range, header journal.Header, results []core.RunResult, report func(probe bool), chaosAfter, chaosSlowMS int) error {
	pending := make([]int, 0, rng.Len())
	for g := rng.Start; g < rng.End; g++ {
		pending = append(pending, g)
	}
	respawns := e.opts.MaxRespawns
	if respawns < 0 {
		respawns = 0
	}
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil // ExecuteShards reports the interruption once
		}
		left, err := e.dispatch(ctx, shardIdx, jobs, pending, header, results, report, chaosAfter, chaosSlowMS)
		chaosAfter, chaosSlowMS = 0, 0 // the drills arm a shard's first worker only
		pending = left
		if ctx.Err() != nil {
			return nil // ExecuteShards reports the interruption once
		}
		if len(pending) == 0 && (err == nil || errors.Is(err, errWorkerDied)) {
			// Clean completion — or death after the last record, which
			// loses nothing: every result is already merged.
			return nil
		}
		if err == nil {
			return fmt.Errorf("shard %d: worker finished with %d runs unaccounted for", shardIdx, len(pending))
		}
		if !errors.Is(err, errWorkerDied) {
			return err
		}
		if attempt >= respawns {
			return fmt.Errorf("shard %d: %d workers died, %d of %d runs undone: %w",
				shardIdx, attempt+1, len(pending), rng.Len(), err)
		}
	}
}

// dispatch runs one worker over the pending job indices and merges its
// stream. It returns the indices still pending; err wraps errWorkerDied
// when a fresh worker could finish them.
func (e *Executor) dispatch(ctx context.Context, shardIdx int, jobs []core.PlanJob, pending []int, header journal.Header, results []core.RunResult, report func(probe bool), chaosAfter, chaosSlowMS int) ([]int, error) {
	remaining := func(open map[int]bool) []int {
		out := make([]int, 0, len(open))
		for _, g := range pending { // preserve global order
			if open[g] {
				out = append(out, g)
			}
		}
		return out
	}

	conn, err := e.opts.Spawn()
	if err != nil {
		return pending, fmt.Errorf("shard %d: spawn: %w", shardIdx, err)
	}
	defer conn.Kill()

	// The assignment: header, then the plan slice with global indices.
	// Re-dispatched remainders are not contiguous, hence the index list.
	keys := make([]string, len(pending))
	for i, g := range pending {
		keys[i] = jobs[g].Key()
	}
	w := &wire{w: conn.In}
	if err := w.writeLine(header); err != nil {
		return pending, fmt.Errorf("shard %d: send header: %w (%w)", shardIdx, err, errWorkerDied)
	}
	if err := w.writeLine(journal.Plan{
		Kind: journal.KindPlan, Jobs: keys, Fingerprint: "",
		Shard: shardIdx, Index: append([]int(nil), pending...),
		Parallelism: e.opts.WorkerParallelism,
		HeartbeatNS: int64(e.opts.Heartbeat), ChaosKillAfter: chaosAfter,
		ChaosSlowMS: chaosSlowMS,
	}); err != nil {
		return pending, fmt.Errorf("shard %d: send plan: %w (%w)", shardIdx, err, errWorkerDied)
	}
	conn.In.Close() // the assignment is complete; workers read exactly two lines

	open := make(map[int]bool, len(pending))
	for _, g := range pending {
		open[g] = true
	}

	// Reader goroutine: the stream is a blocking pipe, so stall and
	// cancellation handling need Next off the main select loop.
	type lineResult struct {
		line *journal.Line
		err  error
	}
	lines := make(chan lineResult)
	quit := make(chan struct{})
	defer close(quit)
	st := journal.NewStream(conn.Out)
	go func() {
		for {
			l, err := st.Next()
			select {
			case lines <- lineResult{l, err}:
			case <-quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	var stallC <-chan time.Time
	var stall *time.Timer
	if e.opts.StallDeadline > 0 {
		stall = time.NewTimer(e.opts.StallDeadline)
		defer stall.Stop()
		stallC = stall.C
	}
	for {
		select {
		case m := <-lines:
			if stall != nil {
				if !stall.Stop() {
					<-stall.C
				}
				stall.Reset(e.opts.StallDeadline)
			}
			if m.err != nil {
				// EOF, torn record, or a garbled stream without a done
				// record: the worker died (or went insane) mid-shard.
				return remaining(open), fmt.Errorf("shard %d: stream ended early: %w (%w)", shardIdx, m.err, errWorkerDied)
			}
			switch m.line.Kind {
			case journal.KindRun:
				rec := m.line.Rec
				if !open[rec.Index] {
					return remaining(open), fmt.Errorf("shard %d: record for job %d not in this dispatch", shardIdx, rec.Index)
				}
				if want := jobs[rec.Index].Key(); rec.Key != want {
					return remaining(open), fmt.Errorf("shard %d: record %d keyed %s, plan expects %s", shardIdx, rec.Index, rec.Key, want)
				}
				res, err := core.UnmarshalRunRecord(rec.Result, rec.Tel)
				if err != nil {
					return remaining(open), fmt.Errorf("shard %d: record %d: %w", shardIdx, rec.Index, err)
				}
				results[rec.Index] = *res
				delete(open, rec.Index)
				report(jobs[rec.Index].Probe)
			case journal.KindHeartbeat:
				// Liveness only; the timer reset above is the point.
			case journal.KindError:
				return remaining(open), fmt.Errorf("shard %d: %s", shardIdx, m.line.Rec.Message)
			case journal.KindDone:
				if len(open) != 0 {
					return remaining(open), fmt.Errorf("shard %d: worker done with %d runs missing", shardIdx, len(open))
				}
				conn.Wait() // reap; its exit status is moot after a clean done
				return nil, nil
			default:
				return remaining(open), fmt.Errorf("shard %d: unexpected %q record", shardIdx, m.line.Kind)
			}
		case <-stallC:
			conn.Kill()
			return remaining(open), fmt.Errorf("shard %d: no record or heartbeat for %v: %w", shardIdx, e.opts.StallDeadline, errWorkerDied)
		case <-ctx.Done():
			conn.Kill()
			return remaining(open), nil // runShard observes ctx and stops
		}
	}
}

// parseChaosKill parses "shard:afterRecords" (empty = disabled, shard
// index -1).
func parseChaosKill(s string) (shard, after int, err error) {
	if s == "" {
		return -1, 0, nil
	}
	idx, rest, ok := strings.Cut(s, ":")
	if ok {
		shard, err = strconv.Atoi(idx)
		if err == nil {
			after, err = strconv.Atoi(rest)
		}
	}
	if !ok || err != nil || shard < 0 || after < 1 {
		return -1, 0, fmt.Errorf("bad chaos kill spec %q (want \"shard:afterRecords\")", s)
	}
	return shard, after, nil
}
