package shard

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/journal"
)

// fleetCampaign runs a spec campaign through a Fleet built from opts.
func fleetCampaign(t *testing.T, n int, f *Fleet, extra ...core.Option) (*core.SetResult, error) {
	t.Helper()
	opts := append([]core.Option{
		core.WithSpecs(campaignSpecs(n)),
		core.WithShards(2), // overridden by FleetOptions.Workers when set
		core.WithShardExecutor(f),
	}, extra...)
	return core.NewCampaign(newRunner(true), opts...).Run(context.Background())
}

// TestFleetMatchesUnsharded is the tentpole guarantee: the same 200-spec
// campaign the static-shard test pins, dispatched by the work-stealing
// fleet at several shapes, merges archive, trace and metrics
// byte-identical to the -parallel 1 run. CI runs this under -race.
func TestFleetMatchesUnsharded(t *testing.T) {
	specs := campaignSpecs(200)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, wantMetrics := artifacts(t, base)

	for _, workers := range []int{1, 2, 4} {
		f := NewFleet(FleetOptions{Workers: workers, WorkerParallelism: 2})
		set, err := fleetCampaign(t, 200, f)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		archive, trace, metrics := artifacts(t, set)
		if !bytes.Equal(archive, wantArchive) {
			t.Errorf("workers %d: archive differs from unsharded run", workers)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("workers %d: telemetry trace differs from unsharded run", workers)
		}
		if metrics != wantMetrics {
			t.Errorf("workers %d: metrics text differs from unsharded run", workers)
		}
		st := set.Dispatch
		if st == nil || st.Workers != workers || st.Transport != "inprocess" {
			t.Fatalf("workers %d: dispatch stats %+v", workers, st)
		}
		if st.Degraded || st.LocalRuns != 0 || st.WorkersLost != 0 {
			t.Errorf("workers %d: clean fleet run reported degraded: %+v", workers, st)
		}
		if st.Chunks < workers {
			t.Errorf("workers %d: only %d chunks dispatched", workers, st.Chunks)
		}
	}
}

// TestFleetStragglerSpeculation pins the tail-latency defence: with one
// deliberately slow worker, idle fast workers speculatively re-execute
// its chunk, the first complete copy wins, and the duplicate results are
// discarded without disturbing the merged artifacts.
func TestFleetStragglerSpeculation(t *testing.T) {
	specs := campaignSpecs(40)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, _, _ := artifacts(t, base)

	f := NewFleet(FleetOptions{
		Workers:   2,
		ChunkSize: 20,
		ChaosSlow: "0:30", // worker 0 sleeps 30ms before every run
	})
	set, err := fleetCampaign(t, 40, f)
	if err != nil {
		t.Fatal(err)
	}
	archive, _, _ := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) {
		t.Error("archive differs from unsharded run under speculation")
	}
	if st := set.Dispatch; st.Speculated < 1 {
		t.Errorf("no speculative re-issue against a 30ms/run straggler: %+v", st)
	}
}

// TestFleetWorkerDeathRedispatch severs the first worker's stream after
// three records: its chunk's uncommitted remainder must be
// re-dispatched and the merged artifacts stay byte-identical.
func TestFleetWorkerDeathRedispatch(t *testing.T) {
	specs := campaignSpecs(60)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, _ := artifacts(t, base)

	inner := InProcess()
	var spawned atomic.Int32
	spawn := func() (*Conn, error) {
		conn, err := inner()
		if err != nil {
			return nil, err
		}
		if spawned.Add(1) == 1 {
			conn.Out = &severReader{r: conn.Out, kill: conn.Kill, after: 3}
		}
		return conn, nil
	}
	f := NewFleet(FleetOptions{
		Workers: 2, Spawn: spawn,
		RedispatchBackoff: 5 * time.Millisecond,
	})
	set, err := fleetCampaign(t, 60, f)
	if err != nil {
		t.Fatal(err)
	}
	archive, trace, _ := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) || !bytes.Equal(trace, wantTrace) {
		t.Error("artifacts differ from unsharded run after worker death")
	}
	st := set.Dispatch
	if st.WorkerDeaths < 1 {
		t.Errorf("severed worker not counted as a death: %+v", st)
	}
	if st.Degraded {
		t.Errorf("death within the respawn budget must not degrade: %+v", st)
	}
}

// TestFleetWedgedWorkerProgressDeadline arms the chaos hang on worker 0:
// after two records it wedges with heartbeats still flowing. The stall
// deadline never fires (the stream is alive); the progress deadline
// must kill it, and the respawned worker finishes the chunk.
func TestFleetWedgedWorkerProgressDeadline(t *testing.T) {
	specs := campaignSpecs(40)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, _, _ := artifacts(t, base)

	// One slot: no sibling can speculate the wedged chunk away, so the
	// progress deadline is the only way the campaign can finish.
	f := NewFleet(FleetOptions{
		Workers:           1,
		Heartbeat:         10 * time.Millisecond,
		StallDeadline:     2 * time.Second,
		ProgressDeadline:  150 * time.Millisecond,
		RedispatchBackoff: 5 * time.Millisecond,
		ChaosHang:         "0:2",
	})
	set, err := fleetCampaign(t, 40, f)
	if err != nil {
		t.Fatal(err)
	}
	archive, _, _ := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) {
		t.Error("archive differs from unsharded run after a wedged worker")
	}
	if st := set.Dispatch; st.WorkerDeaths < 1 {
		t.Errorf("wedged worker was never killed: %+v", st)
	}
}

// TestFleetDegradedCompletion exhausts every respawn budget — every
// spawned worker drops dead on assignment — and the campaign must still
// complete, in-process, reporting itself degraded instead of failing.
func TestFleetDegradedCompletion(t *testing.T) {
	specs := campaignSpecs(20)
	base, err := core.NewCampaign(newRunner(true),
		core.WithParallelism(1), core.WithSpecs(specs)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantArchive, wantTrace, _ := artifacts(t, base)

	dead := fakeSpawner(func(in io.Reader, out io.Writer, _ <-chan struct{}) {
		io.Copy(io.Discard, in) // accept the assignment, then drop dead
	})
	f := NewFleet(FleetOptions{
		Workers: 2, Spawn: dead,
		MaxRespawns:       1,
		ChunkRetries:      1,
		RedispatchBackoff: time.Millisecond,
		StallDeadline:     time.Second,
	})
	set, err := fleetCampaign(t, 20, f)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	archive, trace, _ := artifacts(t, set)
	if !bytes.Equal(archive, wantArchive) || !bytes.Equal(trace, wantTrace) {
		t.Error("degraded completion artifacts differ from unsharded run")
	}
	st := set.Dispatch
	if !st.Degraded {
		t.Fatalf("in-process fallback not reported degraded: %+v", st)
	}
	if st.LocalRuns != len(base.Runs) {
		t.Errorf("%d of %d runs executed locally", st.LocalRuns, len(base.Runs))
	}
	if st.WorkersLost != 2 {
		t.Errorf("%d slots reported lost, want 2", st.WorkersLost)
	}
}

// TestFleetJournalProvenance attaches a journal: every committed run
// must land exactly once, the dispatch trail must record assignments
// covering the whole job list, and a degraded run must say so.
func TestFleetJournalProvenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	r := newRunner(false)
	jw, err := journal.Create(path, HeaderFor(r))
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(FleetOptions{Workers: 2, Journal: jw})
	set, err := core.NewCampaign(r,
		core.WithSpecs(campaignSpecs(30)),
		core.WithShards(2),
		core.WithShardExecutor(f),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := journal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("clean fleet journal replayed as torn")
	}
	if rep.Plan == nil || len(rep.Plan.Jobs) != len(set.Runs) {
		t.Fatalf("journal plan missing or short: %+v", rep.Plan)
	}
	if len(rep.Runs) != len(set.Runs) {
		t.Fatalf("journal holds %d runs, campaign ran %d", len(rep.Runs), len(set.Runs))
	}
	covered := make(map[int]bool)
	var sawAssign bool
	for _, ev := range rep.Dispatch {
		switch ev.Event {
		case "assign", "speculate", "local", "redispatch":
			sawAssign = sawAssign || ev.Event == "assign"
			for _, g := range ev.Indices {
				covered[g] = true
			}
		case "degraded":
			t.Errorf("clean run journaled a degraded event")
		}
	}
	if !sawAssign {
		t.Fatal("no assign events in the dispatch trail")
	}
	for g := range set.Runs {
		if !covered[g] {
			t.Fatalf("job %d never appears in the dispatch trail", g)
		}
	}
}

// TestFleetCancellation: cancelling mid-campaign surfaces
// ErrInterrupted with no set, matching the in-process pool and the
// static coordinator.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(120)),
		core.WithShards(2),
		core.WithShardExecutor(NewFleet(FleetOptions{Workers: 2})),
		core.WithProgress(func(done, total int) {
			if done == 5 {
				cancel()
			}
		}),
	).Run(ctx)
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("error = %v, want ErrInterrupted", err)
	}
	if set != nil {
		t.Fatal("cancelled fleet campaign must not return a set")
	}
}

// TestFleetWorkerErrorIsFatal: an error record is a deterministic run
// failure — the fleet fails the campaign without burning respawns, like
// the static coordinator.
func TestFleetWorkerErrorIsFatal(t *testing.T) {
	var spawned atomic.Int32
	// Unlike the static protocol, the fleet holds the assignment stream
	// open for more chunks — the fake worker must volunteer its error
	// record rather than wait for stdin EOF.
	spawn := fakeSpawner(func(in io.Reader, out io.Writer, _ <-chan struct{}) {
		go io.Copy(io.Discard, in) // keep the assignment stream drained
		io.WriteString(out, `{"kind":"error","index":3,"message":"run exploded"}`+"\n")
	})
	counted := func() (*Conn, error) {
		spawned.Add(1)
		return spawn()
	}
	_, err := core.NewCampaign(newRunner(false),
		core.WithSpecs(campaignSpecs(8)),
		core.WithShards(2),
		core.WithShardExecutor(NewFleet(FleetOptions{Workers: 2, Spawn: counted})),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "run exploded") {
		t.Fatalf("error = %v, want the worker's error message", err)
	}
	if n := spawned.Load(); n != 2 {
		t.Fatalf("%d workers spawned, want 2 (error records must not respawn)", n)
	}
}

// TestFleetProgressContract: the fleet preserves the Progress contract
// under work stealing — serialized, strictly +1, probes excluded.
func TestFleetProgressContract(t *testing.T) {
	var calls []int
	var total int
	set, err := core.NewCampaign(newRunner(false),
		core.WithPaperFaithfulSkips(),
		core.WithShards(3),
		core.WithShardExecutor(NewFleet(FleetOptions{Workers: 3, WorkerParallelism: 2})),
		core.WithProgress(func(done, n int) {
			calls = append(calls, done)
			total = n
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != total || total == 0 || total == len(set.Runs) {
		t.Fatalf("%d progress calls, total %d, %d runs (probes must not count)",
			len(calls), total, len(set.Runs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress call %d reported done=%d; counter must increase strictly by one", i, done)
		}
	}
}
