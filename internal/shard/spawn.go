package shard

// The process seam. A Conn is the coordinator's view of one worker:
// a pipe to write the assignment into, a pipe streaming results back,
// and kill/reap handles. Spawners produce Conns; everything above this
// file is transport-agnostic, so a future multi-machine executor only
// needs a Spawner that dials an address.

import (
	"io"
	"os"
	"os/exec"
)

// Conn is one live worker connection.
type Conn struct {
	// In carries the assignment (header line + plan line) to the worker.
	In io.WriteCloser
	// Out streams the worker's journal-format records back.
	Out io.Reader
	// Kill forcibly terminates the worker (SIGKILL for processes). Safe
	// to call more than once and after the worker exited.
	Kill func()
	// Wait reaps the worker and returns its exit error, if any.
	Wait func() error
}

// Spawner starts one worker and returns its connection.
type Spawner func() (*Conn, error)

// Exec spawns a local child process worker. The child's stderr passes
// through to the coordinator's, so worker diagnostics stay visible.
func Exec(bin string, args ...string) Spawner {
	return func() (*Conn, error) {
		cmd := exec.Command(bin, args...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &Conn{
			In:   stdin,
			Out:  stdout,
			Kill: func() { cmd.Process.Kill() },
			Wait: cmd.Wait,
		}, nil
	}
}

// SelfExec spawns the current binary as a worker — what dts -shards
// uses, with args = ["-shard-worker"].
func SelfExec(args ...string) Spawner {
	return func() (*Conn, error) {
		bin, err := os.Executable()
		if err != nil {
			return nil, err
		}
		return Exec(bin, args...)()
	}
}

// InProcess runs ServeWorker in a goroutine over in-memory pipes: the
// full wire protocol with no process boundary. It is the registered
// default (safe in any binary) and what tests and benchmarks use; Kill
// severs both pipes, which is how a test simulates a dying worker.
func InProcess() Spawner {
	return func() (*Conn, error) {
		assignR, assignW := io.Pipe()
		resultR, resultW := io.Pipe()
		done := make(chan error, 1)
		go func() {
			err := ServeWorker(assignR, resultW)
			resultW.Close() // reader sees EOF, as after a process exit
			done <- err
		}()
		return &Conn{
			In:  assignW,
			Out: resultR,
			Kill: func() {
				// Sever both ends: the worker goroutine's next read or
				// write fails and it winds down; the coordinator's reader
				// sees the pipes close mid-record, like a SIGKILL.
				assignR.CloseWithError(io.ErrClosedPipe)
				resultW.CloseWithError(io.ErrUnexpectedEOF)
			},
			Wait: func() error { return <-done },
		}, nil
	}
}
