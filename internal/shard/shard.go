// Package shard fans a campaign's fault plan out over worker processes.
//
// The paper's DTS confined a campaign to one machine and one process;
// at the ROADMAP's million-run scale a harness-level fault shares fate
// with every in-flight run. The coordinator here partitions the
// prepared job list into contiguous shards, hands each to a worker
// process (dts -shard-worker) over a pipe, and merges the streamed
// results back at their global job-list positions — so the archive,
// trace, and metrics are byte-identical to an unsharded run, the same
// guarantee the in-process pool gives at any parallelism.
//
// The wire format is the PR 4 journal line format verbatim: the
// assignment is a header line plus a plan line (job keys with their
// global indices), and each completed run streams back as a run record
// carrying the same JSON payloads a journal would. A worker that is
// SIGKILLed or wedges mid-shard is detected by the coordinator
// (heartbeat records + a stall deadline); its streamed prefix is
// already merged — the stream is its own journal replay — so only the
// remaining specs are re-dispatched to a fresh worker.
//
// Spawner is the process seam: Exec runs a local child, SelfExec
// re-executes the current binary with -shard-worker, and InProcess runs
// ServeWorker in a goroutine over pipes (the default registration, and
// what tests and benchmarks use). An address-based Spawner dialing a
// remote worker needs nothing else from this package — the protocol is
// already a byte stream.
package shard

// Range is one contiguous shard of the global job list: indices
// [Start, End).
type Range struct {
	Start, End int
}

// Len returns the number of jobs in the range.
func (r Range) Len() int { return r.End - r.Start }

// Partition splits n jobs into k contiguous ranges whose sizes differ
// by at most one, larger shards first. k is clamped to [1, n]; n == 0
// yields nil.
func Partition(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	base, extra := n/k, n%k
	out := make([]Range, 0, k)
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, Range{Start: start, End: start + size})
		start += size
	}
	return out
}
