package shard

// Runner <-> journal.Header conversion. The shard assignment reuses the
// journal header as its configuration record, so a worker rebuilds its
// runner exactly the way dts -resume does — one codepath, one set of
// fields that must round-trip.

import (
	"time"

	"ntdts/internal/config"
	"ntdts/internal/core"
	"ntdts/internal/journal"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
	"ntdts/internal/workloadgen"
)

// HeaderFor records everything a worker process needs to rebuild r.
func HeaderFor(r *core.Runner) journal.Header {
	h := journal.Header{
		Kind:              journal.KindHeader,
		Version:           journal.Version,
		Workload:          r.Def.Name,
		Supervision:       r.Def.Supervision.String(),
		ServerUpTimeoutNS: int64(r.Opts.ServerUpTimeout),
		RunDeadlineNS:     int64(r.Opts.RunDeadline),
		Telemetry:         r.Opts.Telemetry.Enabled,
		TraceCapacity:     r.Opts.Telemetry.TraceCap,
		FreshBoot:         r.Opts.FreshBoot,
	}
	if r.Def.Supervision == workload.Watchd {
		h.WatchdVersion = int(r.Opts.WatchdVersion)
	}
	h.Cohort = r.Def.Cohort
	h.WorkloadTrace = r.Def.WorkloadTrace
	h.ClusterNodes = r.Opts.Cluster.Nodes
	h.ClusterRouting = r.Opts.Cluster.Routing
	return h
}

// RunnerFromHeader rebuilds the runner a journal header describes —
// shared by shard workers and the dts -resume path.
func RunnerFromHeader(h journal.Header) (*core.Runner, error) {
	sv, err := workload.ParseSupervision(h.Supervision)
	if err != nil {
		return nil, err
	}
	cfg := config.DefaultMain()
	cfg.Workload = h.Workload
	cfg.Middleware = sv
	if h.WatchdVersion != 0 {
		cfg.WatchdVersion = watchd.Version(h.WatchdVersion)
	}
	def, err := cfg.Definition()
	if err != nil {
		return nil, err
	}
	// A generated-workload header carries the schedule's provenance:
	// replay the recorded trace when one is named (the trace is the source
	// of truth — it may be hand-edited), else regenerate from the cohort
	// spec string. Either way every worker and resume rebuilds the exact
	// schedule the coordinator ran.
	switch {
	case h.WorkloadTrace != "":
		def, err = workloadgen.CompileTrace(def, h.WorkloadTrace)
		if err != nil {
			return nil, err
		}
		def.Cohort = h.Cohort
	case h.Cohort != "":
		spec, perr := workloadgen.Parse(h.Cohort)
		if perr != nil {
			return nil, perr
		}
		def, err = workloadgen.Compile(def, spec)
		if err != nil {
			return nil, err
		}
	}
	opts := core.DefaultRunnerOptions()
	opts.ServerUpTimeout = time.Duration(h.ServerUpTimeoutNS)
	opts.RunDeadline = time.Duration(h.RunDeadlineNS)
	opts.WatchdVersion = cfg.WatchdVersion
	// The ring capacity shapes trace content, so the header's value wins
	// over any local default.
	opts.Telemetry = telemetry.Options{Enabled: h.Telemetry, TraceCap: h.TraceCapacity}
	// Engine choice rides the header so shard workers (and resumes) run
	// the same engine the coordinator was asked for; archives are
	// byte-identical either way, only throughput differs.
	opts.FreshBoot = h.FreshBoot
	opts.Cluster = core.ClusterConfig{Nodes: h.ClusterNodes, Routing: h.ClusterRouting}
	return core.NewRunner(def, opts), nil
}
