// Package stats provides the summary statistics the DTS data collector
// reports: outcome distributions, means, and 95% confidence intervals
// (Figure 4 plots response times with 95% CIs).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tTable95 holds two-sided 95% critical values of Student's t for small
// degrees of freedom; larger samples fall back to the normal 1.960.
var tTable95 = []float64{
	0,                                                             // df=0 (unused)
	12.706,                                                        // 1
	4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
}

// TCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df < len(tTable95) {
		return tTable95[df]
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return TCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Summary bundles the statistics reported per outcome class.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary for a sample.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), CI95: CI95(xs)}
	if len(xs) > 0 {
		s.Min, s.Max = xs[0], xs[0]
		for _, x := range xs {
			s.Min = math.Min(s.Min, x)
			s.Max = math.Max(s.Max, x)
		}
	}
	return s
}

// Availability is the success fraction succeeded/total in [0, 1]. An
// empty sample reports 1: no requests were owed, none were missed — the
// convention that keeps a class with no traffic from reading as an
// outage.
func Availability(succeeded, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(succeeded) / float64(total)
}

// ErrorRate is the complement of Availability: the failed fraction in
// [0, 1], 0 for an empty sample.
func ErrorRate(succeeded, total int) float64 {
	return 1 - Availability(succeeded, total)
}

// Percent renders part/total as a percentage (0 when total is 0).
func Percent(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// WeightedPercent combines two (percentage, weight) pairs — the paper's
// Figure 3 weights Apache1 and Apache2 outcome percentages by their
// activated-fault counts.
func WeightedPercent(p1 float64, w1 int, p2 float64, w2 int) float64 {
	if w1+w2 == 0 {
		return 0
	}
	return (p1*float64(w1) + p2*float64(w2)) / float64(w1+w2)
}
