package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("stddev %.5f", got)
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 2: 4.303, 10: 2.228, 30: 2.042, 31: 1.960, 1000: 1.960}
	for df, want := range cases {
		if got := TCritical95(df); !almost(got, want) {
			t.Errorf("t(%d) = %v, want %v", df, got, want)
		}
	}
	if TCritical95(0) != 0 {
		t.Fatal("t(0)")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Fatal("single-sample CI")
	}
	// n=4, sd=1: CI = 3.182 * 1/2.
	xs := []float64{-1, 0, 0, 1} // mean 0
	sd := StdDev(xs)
	want := TCritical95(3) * sd / 2
	if got := CI95(xs); !almost(got, want) {
		t.Fatalf("CI %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Min, 1) || !almost(s.Max, 3) {
		t.Fatalf("summary %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 0) != 0 {
		t.Fatal("divide by zero")
	}
	if !almost(Percent(1, 4), 25) {
		t.Fatal("percent")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 {
		t.Fatal("median mutated input")
	}
}

func TestWeightedPercent(t *testing.T) {
	if WeightedPercent(10, 0, 20, 0) != 0 {
		t.Fatal("zero weights")
	}
	// The paper's Figure 3 combination: Apache1 at 20% over 30 faults,
	// Apache2 at 1.8% over 111 faults -> ~5.7%.
	got := WeightedPercent(20.0, 30, 1.8, 111)
	if math.Abs(got-5.67) > 0.05 {
		t.Fatalf("weighted %v", got)
	}
}

// Property: the mean lies within [min, max] and CI is non-negative.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.CI95 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted percent of equal inputs is that input, and the result
// always lies between the two inputs.
func TestPropertyWeightedPercentBetween(t *testing.T) {
	f := func(p1raw, p2raw uint8, w1raw, w2raw uint8) bool {
		p1, p2 := float64(p1raw%101), float64(p2raw%101)
		w1, w2 := int(w1raw)+1, int(w2raw)+1
		got := WeightedPercent(p1, w1, p2, w2)
		lo, hi := math.Min(p1, p2), math.Max(p1, p2)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvailabilityErrorRate(t *testing.T) {
	// No requests owed means none missed: availability 1, error rate 0.
	if Availability(0, 0) != 1 || ErrorRate(0, 0) != 0 {
		t.Fatalf("empty: %v, %v", Availability(0, 0), ErrorRate(0, 0))
	}
	if !almost(Availability(3, 4), 0.75) || !almost(ErrorRate(3, 4), 0.25) {
		t.Fatalf("3/4: %v, %v", Availability(3, 4), ErrorRate(3, 4))
	}
	if Availability(0, 5) != 0 || ErrorRate(0, 5) != 1 {
		t.Fatalf("all-failed: %v, %v", Availability(0, 5), ErrorRate(0, 5))
	}
	if Availability(5, 5) != 1 || ErrorRate(5, 5) != 0 {
		t.Fatalf("perfect: %v, %v", Availability(5, 5), ErrorRate(5, 5))
	}
	// The two are complements for any sample.
	if err := quick.Check(func(succeeded, total uint8) bool {
		s, n := int(succeeded), int(total)
		if s > n {
			s, n = n, s
		}
		return almost(Availability(s, n)+ErrorRate(s, n), 1)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
