// Package eventlog simulates the Windows NT event log: an append-only,
// timestamped record store with per-source filtering. The DTS data
// collector reads it to detect MSCS-initiated service restarts, exactly as
// the paper's tool does (§3: "Some middleware, such as Microsoft Cluster
// Server, write output to the Windows NT event log").
package eventlog

import (
	"fmt"

	"ntdts/internal/vclock"
)

// Severity classifies a record.
type Severity int

const (
	Info Severity = iota + 1
	Warning
	Error
)

// String renders the severity the way Event Viewer does.
func (s Severity) String() string {
	switch s {
	case Info:
		return "Information"
	case Warning:
		return "Warning"
	case Error:
		return "Error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Record is one event-log entry.
type Record struct {
	At       vclock.Time
	Source   string
	Severity Severity
	EventID  uint32
	Message  string
}

// String renders a record as a log line.
func (r Record) String() string {
	return fmt.Sprintf("%s [%s] %s #%d: %s", r.At, r.Severity, r.Source, r.EventID, r.Message)
}

// Log is the system event log.
type Log struct {
	records []Record
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds a record.
func (l *Log) Append(at vclock.Time, source string, sev Severity, eventID uint32, msg string) {
	l.records = append(l.records, Record{
		At: at, Source: source, Severity: sev, EventID: eventID, Message: msg,
	})
}

// All returns every record in append order.
func (l *Log) All() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// BySource returns the records from one source, preserving order.
func (l *Log) BySource(source string) []Record {
	var out []Record
	for _, r := range l.records {
		if r.Source == source {
			out = append(out, r)
		}
	}
	return out
}

// Count returns the number of records.
func (l *Log) Count() int { return len(l.records) }

// CountEvent returns how many records a source logged with a given event id.
func (l *Log) CountEvent(source string, eventID uint32) int {
	n := 0
	for _, r := range l.records {
		if r.Source == source && r.EventID == eventID {
			n++
		}
	}
	return n
}
