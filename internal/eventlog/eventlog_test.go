package eventlog

import (
	"strings"
	"testing"
	"time"

	"ntdts/internal/vclock"
)

func TestAppendAndQuery(t *testing.T) {
	l := New()
	if l.Count() != 0 {
		t.Fatal("new log not empty")
	}
	l.Append(vclock.Time(time.Second), "ClusSvc", Warning, 1024, "restarted")
	l.Append(vclock.Time(2*time.Second), "Service Control Manager", Error, 7031, "terminated")
	l.Append(vclock.Time(3*time.Second), "ClusSvc", Warning, 1024, "restarted again")

	if l.Count() != 3 {
		t.Fatalf("count %d", l.Count())
	}
	if got := l.CountEvent("ClusSvc", 1024); got != 2 {
		t.Fatalf("CountEvent = %d", got)
	}
	if got := l.CountEvent("ClusSvc", 9999); got != 0 {
		t.Fatalf("CountEvent unknown id = %d", got)
	}
	clus := l.BySource("ClusSvc")
	if len(clus) != 2 || clus[0].Message != "restarted" || clus[1].Message != "restarted again" {
		t.Fatalf("BySource %v", clus)
	}
	all := l.All()
	if len(all) != 3 || all[1].EventID != 7031 {
		t.Fatalf("All %v", all)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	l := New()
	l.Append(0, "src", Info, 1, "msg")
	cp := l.All()
	cp[0].Message = "tampered"
	if l.All()[0].Message != "msg" {
		t.Fatal("All aliased internal storage")
	}
}

func TestSeverityStrings(t *testing.T) {
	if Info.String() != "Information" || Warning.String() != "Warning" || Error.String() != "Error" {
		t.Fatal("severity names")
	}
	if !strings.Contains(Severity(42).String(), "42") {
		t.Fatal("unknown severity")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{
		At: vclock.Time(time.Second), Source: "ClusSvc",
		Severity: Error, EventID: 1069, Message: "resource failed",
	}
	s := r.String()
	for _, want := range []string{"1s", "ClusSvc", "Error", "1069", "resource failed"} {
		if !strings.Contains(s, want) {
			t.Errorf("record string %q missing %q", s, want)
		}
	}
}
