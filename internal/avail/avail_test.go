package avail

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/inject"
)

func validParams() Params {
	return Params{
		FaultRatePerHour: 0.01,
		ManualRepair:     2 * time.Hour,
		PBenign:          0.70,
		PFailure:         0.10,
		Transients: []Transient{
			{Outcome: "restart success", Probability: 0.15, MeanOutage: 30 * time.Second},
			{Outcome: "retry success", Probability: 0.05, MeanOutage: 20 * time.Second},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := validParams()
	bad.PFailure = 0.5 // probabilities no longer sum to 1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted non-distribution")
	}
	neg := validParams()
	neg.FaultRatePerHour = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("accepted negative rate")
	}
}

func TestExpectedOutagePerFault(t *testing.T) {
	p := validParams()
	// 0.10*7200s + 0.15*30s + 0.05*20s = 720 + 4.5 + 1 = 725.5s
	want := 725.5
	got := p.ExpectedOutagePerFault().Seconds()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("outage %.3fs, want %.3fs", got, want)
	}
}

func TestAvailabilityHandComputed(t *testing.T) {
	p := validParams()
	// outage per hour = 0.01 * 725.5s / 3600s = 0.00201527...
	// A = 1 / 1.00201527 = 0.99798878...
	want := 1 / (1 + 0.01*725.5/3600)
	if got := p.Availability(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("availability %v, want %v", got, want)
	}
}

func TestNines(t *testing.T) {
	cases := map[float64]float64{0.9: 1, 0.99: 2, 0.999: 3, 0.99999: 5}
	for a, want := range cases {
		if got := Nines(a); math.Abs(got-want) > 1e-9 {
			t.Errorf("Nines(%v) = %v, want %v", a, got, want)
		}
	}
	if !math.IsInf(Nines(1.0), 1) {
		t.Fatal("Nines(1)")
	}
	if Nines(0) != 0 || Nines(-1) != 0 {
		t.Fatal("Nines(<=0)")
	}
}

func TestDowntimePerYear(t *testing.T) {
	got := DowntimePerYear(0.999)
	want := time.Duration(0.001 * 365 * 24 * float64(time.Hour))
	if got.Round(time.Second) != want.Round(time.Second) {
		t.Fatalf("downtime %v, want ~%v", got, want)
	}
}

// Property: availability decreases when failure probability increases
// (mass moved from benign to failure), and always lies in (0, 1].
func TestPropertyMonotoneInFailure(t *testing.T) {
	f := func(rawFail uint8) bool {
		pf := float64(rawFail%90) / 100 // 0..0.89
		p := Params{
			FaultRatePerHour: 0.05,
			ManualRepair:     time.Hour,
			PBenign:          0.9 - pf,
			PFailure:         pf + 0.1,
		}
		q := p
		q.PBenign += 0.05
		q.PFailure -= 0.05
		ap, aq := p.Availability(), q.Availability()
		return ap > 0 && ap <= 1 && aq >= ap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fakeSet builds a SetResult with a controlled mix for FromSet.
func fakeSet(fail, restart, normal int, baseline, restartSec float64) *core.SetResult {
	set := &core.SetResult{Workload: "IIS", Supervision: "watchd", FaultFreeSec: baseline}
	add := func(o core.Outcome, n int, sec float64, completed bool) {
		for i := 0; i < n; i++ {
			set.Runs = append(set.Runs, core.RunResult{
				Fault:       inject.FaultSpec{Function: "F", Param: i, Invocation: 1, Type: inject.ZeroBits},
				Injected:    true,
				Outcome:     o,
				Completed:   completed,
				ResponseSec: sec,
			})
		}
	}
	add(core.Failure, fail, 0, false)
	add(core.RestartSuccess, restart, restartSec, true)
	add(core.NormalSuccess, normal, baseline, true)
	return set
}

func TestFromSet(t *testing.T) {
	set := fakeSet(10, 20, 70, 15.0, 45.0)
	p, err := FromSet(set, Assumptions{FaultRatePerHour: 0.01, ManualRepair: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.PBenign-0.7) > 1e-9 || math.Abs(p.PFailure-0.1) > 1e-9 {
		t.Fatalf("probabilities %+v", p)
	}
	if len(p.Transients) != 1 {
		t.Fatalf("transients %+v", p.Transients)
	}
	// Interruption = measured 45s minus baseline 15s = 30s.
	if got := p.Transients[0].MeanOutage; got != 30*time.Second {
		t.Fatalf("transient outage %v, want 30s", got)
	}
}

func TestFromSetEmpty(t *testing.T) {
	if _, err := FromSet(&core.SetResult{}, DefaultAssumptions()); err == nil {
		t.Fatal("accepted empty set")
	}
}

func TestEstimateString(t *testing.T) {
	set := fakeSet(5, 10, 85, 15.0, 45.0)
	est, err := EstimateSet(set, DefaultAssumptions())
	if err != nil {
		t.Fatal(err)
	}
	if est.Availability <= 0.9 || est.Availability >= 1 {
		t.Fatalf("availability %v", est.Availability)
	}
	s := est.String()
	if s == "" || est.NinesCount <= 0 {
		t.Fatalf("estimate %q", s)
	}
}

// TestHigherCoverageMoreNines ties the model to the paper's conclusion: a
// configuration with higher failure coverage yields strictly higher
// availability under identical assumptions.
func TestHigherCoverageMoreNines(t *testing.T) {
	standalone := fakeSet(30, 0, 70, 15, 0)
	watchd := fakeSet(2, 28, 70, 15, 45)
	a := DefaultAssumptions()
	e1, err := EstimateSet(standalone, a)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EstimateSet(watchd, a)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Availability <= e1.Availability {
		t.Fatalf("watchd availability %v not above standalone %v", e2.Availability, e1.Availability)
	}
}

// classSet builds a cohort-campaign set: two injected runs, each carrying
// the same per-class outcome, so the per-class aggregation and the model
// inputs are hand-computable.
func classSet() *core.SetResult {
	web := core.ClassOutcome{Class: "web", Clients: 2, Requests: 10, Succeeded: 8,
		Responded: 9, Recoveries: 1, RecoverySecSum: 30, Unrecovered: 1, ResponseSecSum: 20}
	return &core.SetResult{
		Workload: "Apache1", Supervision: "none",
		Runs: []core.RunResult{
			{Injected: true, Classes: []core.ClassOutcome{web}},
			{Injected: true, Classes: []core.ClassOutcome{web}},
		},
	}
}

// TestEstimateClassesHandComputed pins the per-class renewal model
// against a hand calculation.
func TestEstimateClassesHandComputed(t *testing.T) {
	a := Assumptions{FaultRatePerHour: 1, ManualRepair: time.Hour}
	ests := EstimateClasses(classSet(), a)
	if len(ests) != 1 {
		t.Fatalf("%d estimates, want 1", len(ests))
	}
	e := ests[0]
	if e.Class != "web" {
		t.Fatalf("class %q", e.Class)
	}
	// 16 of 20 requests succeeded across the two runs.
	if math.Abs(e.MeasuredAvailability-0.8) > 1e-9 || math.Abs(e.ErrorRate-0.2) > 1e-9 {
		t.Fatalf("measured %v / %v", e.MeasuredAvailability, e.ErrorRate)
	}
	if e.MeanRecovery != 30*time.Second || e.Unrecovered != 2 {
		t.Fatalf("recovery %v, unrecovered %d", e.MeanRecovery, e.Unrecovered)
	}
	// Outage per fault = (60s recovery + 2×3600s repair) / 2 runs = 3630s;
	// at 1 fault/hour, A = 1/(1 + 3630/3600).
	want := 1 / (1 + 3630.0/3600)
	if math.Abs(e.Availability-want) > 1e-9 {
		t.Fatalf("model availability %v, want %v", e.Availability, want)
	}
	if s := e.String(); !strings.Contains(s, "web:") || !strings.Contains(s, "mean recovery 30s") {
		t.Fatalf("rendered estimate %q", s)
	}
}

// TestEstimateClassesCanned pins the canned-client contract: a set with
// no class data yields nil, so existing flows are untouched.
func TestEstimateClassesCanned(t *testing.T) {
	set := fakeSet(10, 20, 70, 15.0, 45.0)
	if ests := EstimateClasses(set, DefaultAssumptions()); ests != nil {
		t.Fatalf("canned set estimates = %+v, want nil", ests)
	}
	if ests := EstimateClasses(&core.SetResult{}, DefaultAssumptions()); ests != nil {
		t.Fatalf("empty set estimates = %+v, want nil", ests)
	}
}

// TestEstimateClassesPerfectClass covers the no-outage corner: a class
// that never failed gets availability 1 (infinite nines, zero downtime).
func TestEstimateClassesPerfectClass(t *testing.T) {
	set := &core.SetResult{Runs: []core.RunResult{{Injected: true, Classes: []core.ClassOutcome{
		{Class: "calm", Clients: 1, Requests: 5, Succeeded: 5, Responded: 5, ResponseSecSum: 5},
	}}}}
	ests := EstimateClasses(set, DefaultAssumptions())
	if len(ests) != 1 {
		t.Fatalf("%d estimates", len(ests))
	}
	e := ests[0]
	if e.Availability != 1 || !math.IsInf(e.NinesCount, 1) || e.AnnualDown != 0 {
		t.Fatalf("perfect class estimate %+v", e)
	}
}
