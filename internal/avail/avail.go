// Package avail implements the paper's §5 future-work proposal: feeding
// DTS's testing-based parameters into an analytical availability model to
// produce availability estimates more precise than "orders of magnitude of
// nines" folklore.
//
// The model is a standard alternating-renewal formulation. Faults arrive
// at rate λ. A fault is benign with the probability DTS measured (normal
// success), degrades service transiently for the measured retry/restart
// durations with the measured probabilities, or defeats recovery entirely
// (failure outcome), requiring manual repair with a mean time supplied by
// the operator. Steady-state availability is uptime over total time:
//
//	A = 1 / (1 + λ·E[outage per fault])
//
// where E[outage per fault] sums each non-benign outcome's probability
// times its mean service interruption.
package avail

import (
	"fmt"
	"math"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/stats"
)

// Params are the inputs to the availability model. The per-outcome
// probabilities and interruption times come from a DTS campaign; the fault
// rate and manual repair time are operator assumptions.
type Params struct {
	// FaultRatePerHour is the assumed arrival rate of activated faults.
	FaultRatePerHour float64
	// ManualRepair is the mean time to repair an unrecovered failure
	// (operator pages in, restarts by hand).
	ManualRepair time.Duration
	// PBenign is the probability a fault leaves service uninterrupted
	// (normal success).
	PBenign float64
	// Transients lists the recoverable outcome classes: probability and
	// mean service interruption for each.
	Transients []Transient
	// PFailure is the probability recovery fails entirely.
	PFailure float64
}

// Transient is one recoverable outcome class.
type Transient struct {
	Outcome     string
	Probability float64
	MeanOutage  time.Duration
}

// Validate checks the probabilities form a distribution.
func (p Params) Validate() error {
	sum := p.PBenign + p.PFailure
	for _, tr := range p.Transients {
		if tr.Probability < 0 {
			return fmt.Errorf("avail: negative probability for %s", tr.Outcome)
		}
		sum += tr.Probability
	}
	if p.PBenign < 0 || p.PFailure < 0 {
		return fmt.Errorf("avail: negative probability")
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("avail: outcome probabilities sum to %.6f, want 1", sum)
	}
	if p.FaultRatePerHour < 0 {
		return fmt.Errorf("avail: negative fault rate")
	}
	if p.ManualRepair < 0 {
		return fmt.Errorf("avail: negative repair time")
	}
	return nil
}

// ExpectedOutagePerFault is E[service interruption | one fault].
func (p Params) ExpectedOutagePerFault() time.Duration {
	out := p.PFailure * float64(p.ManualRepair)
	for _, tr := range p.Transients {
		out += tr.Probability * float64(tr.MeanOutage)
	}
	return time.Duration(out)
}

// Availability is the steady-state availability in [0, 1].
func (p Params) Availability() float64 {
	outagePerHour := p.FaultRatePerHour * float64(p.ExpectedOutagePerFault()) / float64(time.Hour)
	return 1 / (1 + outagePerHour)
}

// Nines converts availability to the "number of nines" scale the paper
// mentions (0.999 -> 3.0). Perfect availability reports +Inf.
func Nines(a float64) float64 {
	if a >= 1 {
		return math.Inf(1)
	}
	if a <= 0 {
		return 0
	}
	return -math.Log10(1 - a)
}

// DowntimePerYear is the expected annual downtime at availability a.
func DowntimePerYear(a float64) time.Duration {
	const year = 365 * 24 * time.Hour
	return time.Duration((1 - a) * float64(year))
}

// Assumptions are the operator-supplied inputs FromSet combines with a
// campaign's measurements.
type Assumptions struct {
	FaultRatePerHour float64
	ManualRepair     time.Duration
}

// DefaultAssumptions models a lightly stressed departmental server: one
// activated fault a week, four hours to manual repair.
func DefaultAssumptions() Assumptions {
	return Assumptions{
		FaultRatePerHour: 1.0 / (7 * 24),
		ManualRepair:     4 * time.Hour,
	}
}

// FromSet derives model parameters from a DTS workload-set result: outcome
// probabilities from the outcome distribution, per-class interruption
// times from the measured response-time overhead relative to the
// fault-free baseline.
func FromSet(set *core.SetResult, a Assumptions) (Params, error) {
	d := set.Distribution()
	if d.Total == 0 {
		return Params{}, fmt.Errorf("avail: set %s/%s has no injected faults", set.Workload, set.Supervision)
	}
	baseline := set.FaultFreeSec
	p := Params{
		FaultRatePerHour: a.FaultRatePerHour,
		ManualRepair:     a.ManualRepair,
		PBenign:          d.Pct[core.NormalSuccess.String()] / 100,
		PFailure:         d.Pct[core.Failure.String()] / 100,
	}
	for _, o := range []core.Outcome{core.RestartSuccess, core.RestartRetrySuccess, core.RetrySuccess} {
		prob := d.Pct[o.String()] / 100
		if prob == 0 {
			continue
		}
		times := set.ResponseTimes(o, false)
		overhead := stats.Mean(times) - baseline
		if overhead < 0 {
			overhead = 0
		}
		p.Transients = append(p.Transients, Transient{
			Outcome:     o.String(),
			Probability: prob,
			MeanOutage:  time.Duration(overhead * float64(time.Second)),
		})
	}
	return p, p.Validate()
}

// Estimate is the rendered availability verdict for one configuration.
type Estimate struct {
	Workload     string
	Supervision  string
	Availability float64
	NinesCount   float64
	AnnualDown   time.Duration
}

// Estimate computes the verdict for a set under the given assumptions.
func EstimateSet(set *core.SetResult, a Assumptions) (Estimate, error) {
	p, err := FromSet(set, a)
	if err != nil {
		return Estimate{}, err
	}
	av := p.Availability()
	return Estimate{
		Workload:     set.Workload,
		Supervision:  set.Supervision,
		Availability: av,
		NinesCount:   Nines(av),
		AnnualDown:   DowntimePerYear(av),
	}, nil
}

// ClassEstimate is the per-traffic-class verdict for a generated-cohort
// campaign: the measured request-level reliability plus the same
// renewal-model availability the set-level estimate uses, fed with the
// class's own recovery measurements.
type ClassEstimate struct {
	Class string
	// MeasuredAvailability and ErrorRate are the request-level success
	// and failure fractions DTS observed for the class under injection.
	MeasuredAvailability float64
	ErrorRate            float64
	// MeanRecovery is the class's mean failure-to-next-success gap;
	// Unrecovered counts failures the class never came back from within
	// their runs (each charged a manual repair in the model).
	MeanRecovery time.Duration
	Unrecovered  int
	// Availability, NinesCount and AnnualDown are the renewal-model
	// outputs under the operator assumptions.
	Availability float64
	NinesCount   float64
	AnnualDown   time.Duration
}

// EstimateClasses computes one estimate per traffic class of a
// generated-cohort campaign (nil for canned-client sets). Each class's
// expected outage per activated fault is its measured recovery time plus
// a manual repair per unrecovered failure, averaged over the class's
// injected runs — the per-class reading of the package's renewal model.
func EstimateClasses(set *core.SetResult, a Assumptions) []ClassEstimate {
	classes := set.ClassStats()
	if len(classes) == 0 {
		return nil
	}
	out := make([]ClassEstimate, 0, len(classes))
	for _, c := range classes {
		e := ClassEstimate{
			Class:                c.Class,
			MeasuredAvailability: c.Availability(),
			ErrorRate:            c.ErrorRate(),
			MeanRecovery:         time.Duration(c.MeanRecoverySec() * float64(time.Second)),
			Unrecovered:          c.Unrecovered,
		}
		outageSec := 0.0
		if c.Runs > 0 {
			outageSec = (c.RecoverySecSum + float64(c.Unrecovered)*a.ManualRepair.Seconds()) / float64(c.Runs)
		}
		outagePerHour := a.FaultRatePerHour * outageSec / 3600
		e.Availability = 1 / (1 + outagePerHour)
		e.NinesCount = Nines(e.Availability)
		e.AnnualDown = DowntimePerYear(e.Availability)
		out = append(out, e)
	}
	return out
}

// String renders the per-class verdict on one line.
func (e ClassEstimate) String() string {
	return fmt.Sprintf("%s: measured availability %.4f (error rate %.4f), mean recovery %s, model availability %.6f (%.2f nines, %s downtime/year)",
		e.Class, e.MeasuredAvailability, e.ErrorRate, e.MeanRecovery.Round(time.Millisecond),
		e.Availability, e.NinesCount, e.AnnualDown.Round(time.Minute))
}

// String renders the estimate the way operators quote it.
func (e Estimate) String() string {
	return fmt.Sprintf("%s/%s: availability %.6f (%.2f nines, %s downtime/year)",
		e.Workload, e.Supervision, e.Availability, e.NinesCount,
		e.AnnualDown.Round(time.Minute))
}
