package common

import (
	"testing"

	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		cmd  string
		want Flags
	}{
		{"apache.exe", Flags{}},
		{"apache.exe -cluster", Flags{Cluster: true}},
		{"apache.exe -monitored", Flags{Monitored: true}},
		{"apache.exe -child -cluster", Flags{Child: true, Cluster: true}},
		{"apache.exe -child -monitored -cluster", Flags{Child: true, Cluster: true, Monitored: true}},
		{"-child", Flags{Child: true}},
		{"", Flags{}},
		{"apache.exe -CLUSTER", Flags{}}, // flags are case-sensitive
	}
	for _, c := range cases {
		if got := ParseFlags(c.cmd); got != c.want {
			t.Errorf("ParseFlags(%q) = %+v, want %+v", c.cmd, got, c.want)
		}
	}
}

func TestFlagsStringRoundtrip(t *testing.T) {
	for _, f := range []Flags{
		{}, {Cluster: true}, {Monitored: true}, {Child: true},
		{Cluster: true, Monitored: true, Child: true},
	} {
		if got := ParseFlags("x.exe " + f.String()); got != f {
			t.Errorf("roundtrip %+v -> %q -> %+v", f, f.String(), got)
		}
	}
}

func TestHandleConnOverFile(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("io.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		h := a.CreateFileA(`C:\t`, win32.GenericRead|win32.GenericWrite, 0, win32.CreateAlways, 0)
		conn := &HandleConn{API: a, Handle: h}
		if !conn.Write([]byte("hello world")) {
			t.Error("Write failed")
			return 1
		}
		a.SetFilePointer(h, 0, win32.FileBegin)
		buf := make([]byte, 5)
		n, ok := conn.Read(buf)
		if !ok || n != 5 || string(buf[:n]) != "hello" {
			t.Errorf("Read: n=%d ok=%v %q", n, ok, buf[:n])
		}
		return 0
	})
	if _, err := k.Spawn("io.exe", "io.exe", 0); err != nil {
		t.Fatal(err)
	}
	for k.Step() {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

func TestHandleConnBadHandle(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("bad.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		conn := &HandleConn{API: a, Handle: win32.Handle(0xBEEF)}
		if conn.Write([]byte("x")) {
			t.Error("Write on bad handle succeeded")
		}
		if _, ok := conn.Read(make([]byte, 1)); ok {
			t.Error("Read on bad handle succeeded")
		}
		return 0
	})
	if _, err := k.Spawn("bad.exe", "bad.exe", 0); err != nil {
		t.Fatal(err)
	}
	for k.Step() {
	}
}
