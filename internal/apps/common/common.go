// Package common holds the small pieces shared by the simulated target
// applications: the pipe-backed httpwire connection adapter and service
// command-line conventions.
package common

import (
	"strings"

	"ntdts/internal/httpwire"
	"ntdts/internal/ntsim/win32"
)

// HTTPPipe is the named pipe the web servers (Apache, IIS) listen on — the
// simulation's port 80.
const HTTPPipe = `\\.\pipe\http80`

// SQLPipe is the named pipe the SQL server listens on.
const SQLPipe = `\\.\pipe\sql\query`

// Flags are the service start options conveyed on the command line.
// The DTS workload configuration appends them when a fault-tolerance
// middleware package is in play, changing which code paths (and therefore
// which KERNEL32 functions) the target activates — the effect behind the
// per-middleware columns of the paper's Table 1.
type Flags struct {
	Cluster   bool // started under MSCS (-cluster)
	Monitored bool // started under watchd (-monitored)
	Child     bool // Apache worker process (-child)
}

// ParseFlags extracts service flags from a command line.
func ParseFlags(cmdLine string) Flags {
	var f Flags
	for _, tok := range strings.Fields(cmdLine) {
		switch tok {
		case "-cluster":
			f.Cluster = true
		case "-monitored":
			f.Monitored = true
		case "-child":
			f.Child = true
		}
	}
	return f
}

// String renders flags back into command-line form (for child spawning).
func (f Flags) String() string {
	var parts []string
	if f.Cluster {
		parts = append(parts, "-cluster")
	}
	if f.Monitored {
		parts = append(parts, "-monitored")
	}
	if f.Child {
		parts = append(parts, "-child")
	}
	return strings.Join(parts, " ")
}

// HandleConn adapts a win32 file/pipe handle to httpwire.Conn. Server
// programs use it so that every transported byte crosses the injected
// KERNEL32 surface.
type HandleConn struct {
	API    *win32.API
	Handle win32.Handle
}

var _ httpwire.Conn = (*HandleConn)(nil)

// Read implements httpwire.Conn.
func (c *HandleConn) Read(buf []byte) (int, bool) {
	var n uint32
	if !c.API.ReadFile(c.Handle, buf, uint32(len(buf)), &n) {
		return 0, false
	}
	return int(n), true
}

// Write implements httpwire.Conn.
func (c *HandleConn) Write(data []byte) bool {
	total := 0
	for total < len(data) {
		var n uint32
		chunk := data[total:]
		if !c.API.WriteFile(c.Handle, chunk, uint32(len(chunk)), &n) {
			return false
		}
		if n == 0 {
			return false
		}
		total += int(n)
	}
	return true
}
