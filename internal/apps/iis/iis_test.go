package iis

import (
	"bytes"
	"testing"
	"time"

	"ntdts/internal/apps/common"
	"ntdts/internal/eventlog"
	"ntdts/internal/httpwire"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
)

type rig struct {
	k   *ntsim.Kernel
	mgr *scm.Manager
}

func newRig(t *testing.T, cmdLine string, interceptor ntsim.SyscallInterceptor) *rig {
	t.Helper()
	k := ntsim.NewKernel()
	mgr := scm.New(k, eventlog.New())
	cfg := DefaultConfig()
	Register(k, cfg)
	k.VFS().WriteFile(cfg.DocRoot+`\index.html`, []byte("<html>iis</html>"))
	if interceptor != nil {
		k.SetInterceptor(interceptor)
	}
	if cmdLine == "" {
		cmdLine = Image
	}
	if err := mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: cmdLine, WaitHint: 4 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.StartService(ServiceName); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	r.k.RunFor(d)
	if pan := r.k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

func (r *rig) fetch(t *testing.T, path string) (httpwire.Response, bool) {
	t.Helper()
	var resp httpwire.Response
	var ok bool
	done := false
	r.k.RegisterImage("fetch.exe", func(p *ntsim.Process) uint32 {
		pc, errno := r.k.ConnectPipeClient(common.HTTPPipe)
		if errno != ntsim.ErrSuccess {
			done = true
			return 1
		}
		defer pc.CloseClient()
		conn := &testConn{p: p, pc: pc}
		if !httpwire.WriteRequest(conn, httpwire.Request{Method: "GET", Path: path}) {
			done = true
			return 1
		}
		resp, ok = httpwire.ReadResponse(conn)
		done = true
		return 0
	})
	if _, err := r.k.Spawn("fetch.exe", "fetch.exe", 0); err != nil {
		t.Fatal(err)
	}
	deadline := r.k.Now().Add(60 * time.Second)
	for !done && r.k.Now().Before(deadline) {
		if !r.k.Step() {
			break
		}
	}
	return resp, ok
}

type testConn struct {
	p  *ntsim.Process
	pc *ntsim.PipeClient
}

func (c *testConn) Read(buf []byte) (int, bool) {
	n, errno := c.pc.ReadTimeout(c.p, buf, 15*time.Second)
	return n, errno == ntsim.ErrSuccess
}

func (c *testConn) Write(data []byte) bool {
	_, errno := c.pc.Write(data)
	return errno == ntsim.ErrSuccess
}

func TestSingleProcessServesBoth(t *testing.T) {
	r := newRig(t, "", nil)
	r.run(t, 5*time.Second)
	if live := r.k.LiveProcesses(); live != 1 {
		t.Fatalf("%d live processes, want 1 (IIS is single-process)", live)
	}
	static, ok := r.fetch(t, "/index.html")
	if !ok || static.Status != 200 || string(static.Body) != "<html>iis</html>" {
		t.Fatalf("static: ok=%v status=%d body=%q", ok, static.Status, static.Body)
	}
	cgi, ok := r.fetch(t, "/cgi-bin/info")
	if !ok || cgi.Status != 200 || !bytes.Equal(cgi.Body, CGIBody()) {
		t.Fatalf("cgi: ok=%v status=%d", ok, cgi.Status)
	}
	if len(CGIBody()) != 1024 {
		t.Fatalf("CGI body %d bytes, want 1024", len(CGIBody()))
	}
}

func TestReportsRunningBeforeServing(t *testing.T) {
	r := newRig(t, "", nil)
	r.run(t, 2*time.Second)
	st, _, _ := r.mgr.QueryServiceStatus(ServiceName)
	if st != scm.Running {
		t.Fatalf("state %v, want RUNNING within 2s (IIS reports early)", st)
	}
}

func TestRequestLogWritten(t *testing.T) {
	r := newRig(t, "", nil)
	r.run(t, 5*time.Second)
	r.fetch(t, "/index.html")
	data, ok := r.k.VFS().ReadFile(logPath)
	if !ok || !bytes.Contains(data, []byte("GET /index.html")) {
		t.Fatalf("request log missing entry: %q", data)
	}
}

// corrupt returns an interceptor corrupting one parameter of one function's
// first invocation in the IIS process.
func corrupt(k *ntsim.Kernel, fn string, param int, typ inject.FaultType) ntsim.SyscallInterceptor {
	return inject.New(k, inject.ByImage(Image), &inject.FaultSpec{
		Function: fn, Param: param, Invocation: 1, Type: typ,
	})
}

func TestSemaphoreWedgeSheds503(t *testing.T) {
	// A zeroed initial count on the connection semaphore wedges IIS into
	// shedding every request with 503 — no crash, so no restart-based
	// middleware ever recovers it (the residual failure class).
	k := ntsim.NewKernel()
	r := &rig{k: k}
	r.mgr = scm.New(k, eventlog.New())
	cfg := DefaultConfig()
	Register(k, cfg)
	k.VFS().WriteFile(cfg.DocRoot+`\index.html`, []byte("x"))
	k.SetInterceptor(corrupt(k, "CreateSemaphoreA", 1, inject.ZeroBits))
	r.mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 4 * time.Second})
	r.mgr.StartService(ServiceName)
	r.run(t, 6*time.Second)
	resp, ok := r.fetch(t, "/index.html")
	if !ok || resp.Status != 503 {
		t.Fatalf("wedged fetch: ok=%v status=%d, want 503", ok, resp.Status)
	}
	if live := r.k.LiveProcesses(); live != 1 {
		t.Fatalf("%d live processes; the wedge must not kill IIS", live)
	}
}

func TestVrootWedgeServes404(t *testing.T) {
	// A nulled output buffer on the DocumentRoot read leaves the virtual
	// root invalid: every static request 404s forever.
	k := ntsim.NewKernel()
	r := &rig{k: k}
	r.mgr = scm.New(k, eventlog.New())
	cfg := DefaultConfig()
	Register(k, cfg)
	k.VFS().WriteFile(cfg.DocRoot+`\index.html`, []byte("x"))
	k.SetInterceptor(corrupt(k, "GetPrivateProfileStringA", 3, inject.ZeroBits))
	r.mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 4 * time.Second})
	r.mgr.StartService(ServiceName)
	r.run(t, 6*time.Second)
	resp, ok := r.fetch(t, "/index.html")
	if !ok || resp.Status != 404 {
		t.Fatalf("vroot-wedged fetch: ok=%v status=%d, want 404", ok, resp.Status)
	}
	// CGI is independent of the vroot and still works.
	cgi, ok := r.fetch(t, "/cgi-bin/info")
	if !ok || cgi.Status != 200 {
		t.Fatalf("cgi under vroot wedge: ok=%v status=%d", ok, cgi.Status)
	}
}

func TestShutdownEventWedgeStopsServing(t *testing.T) {
	// A corrupted initial state on the shutdown event puts IIS in drain
	// mode from birth: the process stays alive but never accepts.
	k := ntsim.NewKernel()
	r := &rig{k: k}
	r.mgr = scm.New(k, eventlog.New())
	cfg := DefaultConfig()
	Register(k, cfg)
	k.VFS().WriteFile(cfg.DocRoot+`\index.html`, []byte("x"))
	k.SetInterceptor(corrupt(k, "CreateEventA", 2, inject.OneBits))
	r.mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 4 * time.Second})
	r.mgr.StartService(ServiceName)
	r.run(t, 6*time.Second)
	if live := r.k.LiveProcesses(); live != 1 {
		t.Fatalf("%d live processes", live)
	}
	// The pipe instance exists, but IIS never accepts: the request times
	// out with no reply — a hang failure invisible to process monitors.
	if _, ok := r.fetch(t, "/index.html"); ok {
		t.Fatal("got a reply; drain-mode IIS should serve nothing")
	}
}
