// Package iis simulates Microsoft Internet Information Server 3.0 in its
// HTTP role (the only functionality the paper tests). Unlike Apache, IIS
// is a single process: all request handling — including CGI — happens
// in-process, so any crash takes the whole service down unless external
// middleware restarts it. IIS also touches a far broader slice of KERNEL32
// during initialization (Table 1: 76 activated functions vs Apache's
// 13+22), which is exactly what gives it a larger fault-activation surface.
package iis

import (
	"fmt"
	"time"

	"ntdts/internal/apps/common"
	"ntdts/internal/httpwire"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/crt"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
)

const (
	// Image is the executable name.
	Image = "inetinfo.exe"
	// ServiceName is the SCM service name.
	ServiceName = "W3SVC"
	// ConfigPath is the metabase stand-in.
	ConfigPath = `C:\WINNT\system32\inetsrv\w3svc.ini`
	// logPath is the IIS request log.
	logPath = `C:\WINNT\system32\LogFiles\inetsv1.log`
)

// Config controls the simulated installation.
type Config struct {
	// DocRoot is the wwwroot directory.
	DocRoot string
	// RequestCPU is extra per-request processing (ISAPI filters, logging);
	// it is what makes IIS slower than Apache on fault-free requests
	// (Figure 4: 18.94 s vs 14.21 s).
	RequestCPU time.Duration
}

// DefaultConfig matches the paper's testbed role.
func DefaultConfig() Config {
	return Config{
		DocRoot:    `C:\InetPub\wwwroot`,
		RequestCPU: 3650 * time.Millisecond,
	}
}

// Register installs the IIS image and its configuration.
func Register(k *ntsim.Kernel, cfg Config) {
	if cfg.DocRoot == "" {
		cfg = DefaultConfig()
	}
	k.VFS().WriteFile(ConfigPath, []byte(fmt.Sprintf(
		"[w3svc]\r\nDocumentRoot=%s\r\nMaxConnections=32\r\n", cfg.DocRoot)))
	k.RegisterImage(Image, func(p *ntsim.Process) uint32 {
		return run(p, cfg)
	})
}

func run(p *ntsim.Process, cfg Config) uint32 {
	api := win32.New(p)
	rt := crt.Startup(api)
	flags := common.ParseFlags(api.GetCommandLineA())
	k := api.Kernel()

	// --- Phase 1: platform inventory (before the RUNNING report). ---
	api.Process().ChargeTime(150 * time.Millisecond)
	var ver win32.OSVersionInfo
	api.GetVersionExA(&ver)
	var si win32.SystemInfo
	api.GetSystemInfo(&si)
	api.GlobalMemoryStatus(nil)
	var host string
	api.GetComputerNameA(&host)
	api.GetSystemDirectoryA(nil)
	api.GetTempPathA(nil)
	api.GetCurrentDirectoryA(nil)
	api.GetSystemTimeAsFileTime(nil)
	api.QueryPerformanceFrequency(nil)
	api.QueryPerformanceCounter(nil)
	api.GetTickCount()
	api.GetSystemTime(nil)
	api.GetCPInfo(1252, nil)
	api.GetCurrentProcessId()
	api.GetCurrentProcess()
	api.GetCurrentThreadId()
	api.GetModuleFileNameA(0, nil)
	api.GetEnvironmentVariableA("SystemRoot", nil)
	api.SetLastError(0)
	api.GetLastError()
	api.SetHandleCount(64)
	api.Process().ChargeTime(350 * time.Millisecond)

	// IIS reports RUNNING early, then completes worker setup — the real
	// service does the same, which is why most of its injected faults
	// strike after the SCM has already left START_PENDING.
	scm.ReportRunning(k, ServiceName)

	// --- Phase 2: subsystem initialization (spread over real time on a
	// 100 MHz part; where in this window a fault kills the process decides
	// which watchd version can still recover it). ---
	api.Process().ChargeTime(300 * time.Millisecond)
	wsock := api.LoadLibraryA("wsock32.dll")
	if wsock == 0 {
		wsock = api.LoadLibraryA("advapi32.dll")
	}
	api.GetProcAddress(wsock, "WSAStartup")
	api.FreeLibrary(wsock)

	privHeap := api.HeapCreate(0, 64*1024, 0)
	blk := api.HeapAlloc(privHeap, 0, 4096)
	api.HeapFree(privHeap, 0, blk)
	va := api.VirtualAlloc(0, 64*1024, 0, 0)
	api.VirtualFree(va, 0, 0)
	la := api.LocalAlloc(0, 512)
	api.LocalFree(la)
	ga := api.GlobalAlloc(0, 512)
	api.GlobalFree(ga)

	api.Process().ChargeTime(300 * time.Millisecond)
	// Worker context TLS slot: requests are refused with 500 if the slot
	// is unusable (a corrupted slot index or value wedges the server
	// without killing it — a failure no restart-based middleware sees).
	tlsOK := api.TlsSetValue(0, 1) && api.TlsGetValue(0) != 0
	shutdownEv := api.CreateEventA(true, false, "Local\\iis_shutdown")
	// Connection-limit semaphore: if the pool cannot be initialized the
	// server sheds every connection with 503 (again invisible to
	// process-death monitors).
	connSem := api.CreateSemaphoreA(32, 32, "")
	semOK := api.WaitForSingleObject(connSem, 0) == ntsim.WaitObject0 &&
		api.ReleaseSemaphore(connSem, 1, nil)
	var statsCS win32.CriticalSection
	api.InitializeCriticalSection(&statsCS)
	api.EnterCriticalSection(&statsCS)
	api.LeaveCriticalSection(&statsCS)
	var hits int32
	api.InterlockedExchange(&hits, 0)

	api.Process().ChargeTime(300 * time.Millisecond)
	api.LstrlenA(host)
	banner, _ := api.LstrcpyA("Microsoft-IIS/3.0")
	api.LstrcmpiA(banner, "microsoft-iis/3.0")
	api.MultiByteToWideChar(1252, banner)
	api.WideCharToMultiByte(1252, banner)

	docRoot := api.GetPrivateProfileStringA("w3svc", "DocumentRoot", cfg.DocRoot, ConfigPath)
	maxConn := api.GetPrivateProfileIntA("w3svc", "MaxConnections", 32, ConfigPath)
	_ = maxConn
	// The virtual root is validated once at startup; a corrupted document
	// root (or a failed existence probe) takes the static site offline
	// permanently — every request 404s, and no restart fixes it.
	indexPath, catOK := api.LstrcatA(docRoot, `\index.html`)
	vrootOK := catOK && api.GetFileAttributesA(indexPath) != 0xFFFFFFFF

	api.Process().ChargeTime(300 * time.Millisecond)
	logH := api.CreateFileA(logPath, win32.GenericWrite, 0, win32.OpenAlways, 0)
	logLine := func(line string) {
		data := []byte(line + "\r\n")
		var n uint32
		api.WriteFile(logH, data, uint32(len(data)), &n)
	}
	logLine("#Software: Microsoft Internet Information Server 3.0")
	api.GetFileType(logH)

	// Crash-recovery logger: skipped when watchd supervises the service
	// (watchd provides its own logging), which is what drops the
	// activated-function census from 76 to 70 in Table 1.
	if !flags.Monitored {
		crashLogger(api, rt)
	}

	// Cluster mode exercises no functions IIS does not already use, so
	// the census stays at 76 under MSCS (Table 1).
	if flags.Cluster {
		api.GetTickCount()
		api.GetComputerNameA(&host)
	}

	api.Process().ChargeTime(400 * time.Millisecond) // remaining warm-up

	// --- Phase 3: serve. ---
	pipe := api.CreateNamedPipeA(common.HTTPPipe, win32.PipeAccessDuplex, win32.PipeTypeByte, 1)
	for {
		if api.WaitForSingleObject(shutdownEv, 0) == ntsim.WaitObject0 {
			// Shutdown requested: drain mode. A corrupted event
			// initial-state wedges the server here forever.
			api.Sleep(1000)
			continue
		}
		if !api.ConnectNamedPipe(pipe) {
			api.Sleep(500)
			continue
		}
		conn := &common.HandleConn{API: api, Handle: pipe}
		req, ok := httpwire.ReadRequest(conn)
		if ok {
			api.InterlockedIncrement(&hits)
			api.Process().ChargeTime(cfg.RequestCPU)
			switch {
			case !semOK:
				httpwire.WriteResponse(conn, httpwire.Response{Status: 503})
			case !tlsOK:
				httpwire.WriteResponse(conn, httpwire.Response{Status: 500})
			default:
				serveRequest(api, conn, indexPath, vrootOK, req)
			}
			logLine("GET " + req.Path + " 200")
		}
		api.FlushFileBuffers(pipe)
		api.DisconnectNamedPipe(pipe)
	}
}

// crashLogger is IIS's internal failure logger; its six functions appear in
// the activation census only when watchd is absent.
func crashLogger(api *win32.API, rt *crt.Runtime) {
	mu := api.CreateMutexA(false, "Local\\iis_crashlog")
	api.WaitForSingleObject(mu, 0)
	api.GetLocalTime(nil)
	msg := api.FormatMessageA(0, 0)
	api.OutputDebugStringA("iis: crash recovery logger armed (" + msg + ")")
	var dup win32.Handle
	api.DuplicateHandle(0, mu, 0, &dup)
	api.CloseHandle(dup)
	api.ReleaseMutex(mu)
	h := api.CreateFileA(`C:\WINNT\system32\LogFiles\iis_crash.log`,
		win32.GenericWrite, 0, win32.OpenAlways, 0)
	api.FlushFileBuffers(h)
	api.CloseHandle(h)
}

// serveRequest handles one request entirely in-process.
func serveRequest(api *win32.API, conn httpwire.Conn, indexPath string, vrootOK bool, req httpwire.Request) {
	switch {
	case req.Method != "GET":
		httpwire.WriteResponse(conn, httpwire.Response{Status: 400})
	case req.Path == "/" || req.Path == "/index.html":
		if !vrootOK {
			httpwire.WriteResponse(conn, httpwire.Response{Status: 404})
			return
		}
		serveStatic(api, conn, indexPath)
	case req.Path == "/cgi-bin/info":
		// In-process CGI: IIS generates the document directly.
		httpwire.WriteResponse(conn, httpwire.Response{Status: 200, Body: CGIBody()})
	default:
		httpwire.WriteResponse(conn, httpwire.Response{Status: 404})
	}
}

func serveStatic(api *win32.API, conn httpwire.Conn, path string) {
	h := api.CreateFileA(path, win32.GenericRead, 0, win32.OpenExisting, 0)
	if h == win32.InvalidHandle {
		httpwire.WriteResponse(conn, httpwire.Response{Status: 404})
		return
	}
	size := api.GetFileSize(h, nil)
	if size == 0xFFFFFFFF {
		api.CloseHandle(h)
		httpwire.WriteResponse(conn, httpwire.Response{Status: 500})
		return
	}
	body := make([]byte, 0, size)
	buf := make([]byte, 8192)
	for uint32(len(body)) < size {
		var n uint32
		if !api.ReadFile(h, buf, uint32(len(buf)), &n) || n == 0 {
			break
		}
		body = append(body, buf[:n]...)
	}
	api.CloseHandle(h)
	httpwire.WriteResponse(conn, httpwire.Response{Status: 200, Body: body})
}

// CGIBody is the deterministic 1 kB CGI document IIS serves (identical
// shape to Apache's so the HttpClient workload validates both the same
// way).
func CGIBody() []byte {
	body := []byte("<html><head><title>CGI Info</title></head><body>")
	line := []byte("<p>IIS CGI environment report: all systems nominal.</p>")
	for len(body) < 1024-len("</body></html>")-len(line) {
		body = append(body, line...)
	}
	body = append(body, []byte("</body></html>")...)
	return body[:1024]
}
