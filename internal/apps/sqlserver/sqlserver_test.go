package sqlserver

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ntdts/internal/apps/common"
	"ntdts/internal/eventlog"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
)

type rig struct {
	k   *ntsim.Kernel
	mgr *scm.Manager
}

func newRig(t *testing.T, interceptor ntsim.SyscallInterceptor) *rig {
	t.Helper()
	k := ntsim.NewKernel()
	mgr := scm.New(k, eventlog.New())
	Register(k, DefaultConfig())
	if interceptor != nil {
		k.SetInterceptor(interceptor)
	}
	if err := mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 25 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.StartService(ServiceName); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	r.k.RunFor(d)
	if pan := r.k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

// query sends one SQL statement and returns the raw reply.
func (r *rig) query(t *testing.T, stmt string) ([]byte, bool) {
	t.Helper()
	var reply []byte
	var ok bool
	done := false
	r.k.RegisterImage("sqlprobe.exe", func(p *ntsim.Process) uint32 {
		pc, errno := r.k.ConnectPipeClient(common.SQLPipe)
		if errno != ntsim.ErrSuccess {
			done = true
			return 1
		}
		defer pc.CloseClient()
		if _, errno := pc.Write([]byte(stmt + "\n")); errno != ntsim.ErrSuccess {
			done = true
			return 1
		}
		buf := make([]byte, 4096)
		for {
			n, errno := pc.ReadTimeout(p, buf, 10*time.Second)
			if errno == ntsim.ErrBrokenPipe && len(reply) > 0 {
				ok = true
				break
			}
			if errno != ntsim.ErrSuccess {
				break
			}
			reply = append(reply, buf[:n]...)
			if bytes.HasPrefix(reply, []byte("OK ")) || bytes.HasPrefix(reply, []byte("ERR ")) {
				ok = true
				// Keep reading until the server disconnects.
			}
		}
		done = true
		return 0
	})
	if _, err := r.k.Spawn("sqlprobe.exe", "sqlprobe.exe", 0); err != nil {
		t.Fatal(err)
	}
	deadline := r.k.Now().Add(60 * time.Second)
	for !done && r.k.Now().Before(deadline) {
		if !r.k.Step() {
			break
		}
	}
	return reply, ok
}

func TestAnswersTheWorkloadQuery(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, 5*time.Second)
	const q = "SELECT customer, total FROM orders WHERE total >= 100"
	reply, ok := r.query(t, q)
	if !ok {
		t.Fatalf("no reply: %q", reply)
	}
	if !bytes.Equal(reply, ExpectedReply(q)) {
		t.Fatalf("reply mismatch:\n%q\nwant\n%q", reply, ExpectedReply(q))
	}
	if !bytes.HasPrefix(reply, []byte("OK ")) {
		t.Fatalf("reply not OK-framed: %q", reply[:16])
	}
}

func TestBadSQLReturnsError(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, 5*time.Second)
	reply, ok := r.query(t, "DROP TABLE orders")
	if !ok || !bytes.HasPrefix(reply, []byte("ERR ")) {
		t.Fatalf("expected ERR reply, got ok=%v %q", ok, reply)
	}
}

func TestReportsRunningAfterRecovery(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, 3*time.Second)
	st, _, _ := r.mgr.QueryServiceStatus(ServiceName)
	if st != scm.Running {
		t.Fatalf("state %v, want RUNNING after database recovery", st)
	}
}

func TestSeedDBDeterministic(t *testing.T) {
	a := SeedDB().Dump()
	b := SeedDB().Dump()
	if a != b {
		t.Fatal("SeedDB is not deterministic")
	}
	if !strings.Contains(a, "CREATE TABLE orders") {
		t.Fatal("seed dump missing schema")
	}
}

func TestZeroedReadFileExTruncatesRecovery(t *testing.T) {
	// The paper's singled-out fault (§4.1): zeroing nNumberOfBytesToRead
	// on ReadFileEx during database load. The read loop sees zero bytes,
	// the script is truncated to nothing, and the server comes up with an
	// empty database: queries fail with ERR — a wrong-reply failure.
	in := func(k *ntsim.Kernel) ntsim.SyscallInterceptor {
		return inject.New(k, inject.ByImage(Image), &inject.FaultSpec{
			Function: "ReadFileEx", Param: 2, Invocation: 1, Type: inject.ZeroBits,
		})
	}
	k := ntsim.NewKernel()
	r := &rig{k: k, mgr: scm.New(k, eventlog.New())}
	Register(k, DefaultConfig())
	k.SetInterceptor(in(k))
	r.mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 25 * time.Second})
	r.mgr.StartService(ServiceName)
	r.run(t, 5*time.Second)

	st, _, _ := r.mgr.QueryServiceStatus(ServiceName)
	if st != scm.Running {
		t.Fatalf("state %v; the zero-read server still starts", st)
	}
	reply, ok := r.query(t, "SELECT customer, total FROM orders WHERE total >= 100")
	if !ok || !bytes.HasPrefix(reply, []byte("ERR ")) {
		t.Fatalf("expected ERR from empty database, got ok=%v %q", ok, reply)
	}
}

func TestMissingDataFileIsFatal(t *testing.T) {
	k := ntsim.NewKernel()
	mgr := scm.New(k, eventlog.New())
	Register(k, DefaultConfig())
	k.VFS().Remove(DataPath)
	mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 2 * time.Second})
	mgr.StartService(ServiceName)
	k.RunFor(10 * time.Second)
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	st, _, _ := mgr.QueryServiceStatus(ServiceName)
	if st == scm.Running {
		t.Fatal("server running without its master database")
	}
}
