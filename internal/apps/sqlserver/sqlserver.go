// Package sqlserver simulates Microsoft SQL Server 7 as a single-process
// NT service. At startup it loads its database from a script file using
// ReadFileEx — the call whose zeroed nNumberOfBytesToRead parameter is the
// one fault the paper singles out as nondeterministic under the original
// watchd (§4.1) — then answers SELECT queries over a named pipe using the
// sqlengine substrate.
package sqlserver

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ntdts/internal/apps/common"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/crt"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
	"ntdts/internal/sqlengine"
)

const (
	// Image is the executable name.
	Image = "sqlservr.exe"
	// ServiceName is the SCM service name.
	ServiceName = "MSSQLServer"
	// DataPath is the database script the server loads at startup.
	DataPath = `C:\MSSQL7\data\master.sql`
)

// Config controls the simulated installation.
type Config struct {
	// QueryCPU is per-query processing time.
	QueryCPU time.Duration
}

// DefaultConfig matches the paper's testbed role.
func DefaultConfig() Config {
	return Config{QueryCPU: 900 * time.Millisecond}
}

// SeedDB builds the deterministic database the workload queries.
func SeedDB() *sqlengine.DB {
	db := sqlengine.NewDB()
	if _, err := db.Exec("CREATE TABLE orders (id INT, customer TEXT, total INT)"); err != nil {
		panic("sqlserver: seed schema: " + err.Error())
	}
	names := []string{"acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "cyberdyne"}
	for i := 1; i <= 48; i++ {
		name := names[(i-1)%len(names)]
		total := (i * 37) % 250
		stmt := fmt.Sprintf("INSERT INTO orders VALUES (%d, '%s', %d)", i, name, total)
		if _, err := db.Exec(stmt); err != nil {
			panic("sqlserver: seed rows: " + err.Error())
		}
	}
	return db
}

// Register installs the SQL Server image and writes the data file.
func Register(k *ntsim.Kernel, cfg Config) {
	if cfg.QueryCPU == 0 {
		cfg = DefaultConfig()
	}
	k.VFS().WriteFile(DataPath, []byte(SeedDB().Dump()))
	k.RegisterImage(Image, func(p *ntsim.Process) uint32 {
		return run(p, cfg)
	})
}

func run(p *ntsim.Process, cfg Config) uint32 {
	api := win32.New(p)
	rt := crt.Startup(api)
	flags := common.ParseFlags(api.GetCommandLineA())
	k := api.Kernel()

	// --- Platform inventory. ---
	api.Process().ChargeTime(120 * time.Millisecond)
	var ver win32.OSVersionInfo
	api.GetVersionExA(&ver)
	var si win32.SystemInfo
	api.GetSystemInfo(&si)
	api.GlobalMemoryStatus(nil)
	var host string
	api.GetComputerNameA(&host)
	api.GetSystemDirectoryA(nil)
	api.GetCurrentDirectoryA(nil)
	api.GetTempPathA(nil)
	api.GetSystemTime(nil)
	api.GetLocalTime(nil)
	api.QueryPerformanceFrequency(nil)
	api.QueryPerformanceCounter(nil)
	api.GetTickCount()
	api.GetOEMCP()
	api.GetCPInfo(1252, nil)
	api.GetCurrentProcessId()
	api.GetCurrentProcess()
	api.GetCurrentThreadId()
	api.SetHandleCount(128)
	api.GetSystemTimeAsFileTime(nil)
	api.IsBadReadPtr(0, 1)
	api.GetModuleFileNameA(0, nil)
	api.GetEnvironmentVariableA("SystemRoot", nil)
	api.SetLastError(0)
	api.GetLastError()
	api.Process().ChargeTime(150 * time.Millisecond)

	// --- Storage engine startup: load the master database. ---
	db, okLoad := loadDatabase(api)
	if !okLoad {
		rt.Eprintf("sqlservr: cannot recover master database")
		api.ExitProcess(1)
	}

	// SQL Server reports RUNNING once recovery completes.
	scm.ReportRunning(k, ServiceName)

	// --- Engine pools and locks. ---
	api.Process().ChargeTime(200 * time.Millisecond)
	bufPool := api.HeapCreate(0, 256*1024, 0)
	page := api.HeapAlloc(bufPool, 0, 8192)
	api.HeapFree(bufPool, 0, page)
	va := api.VirtualAlloc(0, 128*1024, 0, 0)
	api.VirtualFree(va, 0, 0)
	la := api.LocalAlloc(0, 256)
	api.LocalFree(la)
	api.TlsSetValue(0, 1)
	api.TlsGetValue(0)
	readyEv := api.CreateEventA(true, true, "Local\\sql_ready")
	api.SetEvent(readyEv)
	latchSem := api.CreateSemaphoreA(16, 16, "")
	api.WaitForSingleObject(latchSem, 0)
	api.ReleaseSemaphore(latchSem, 1, nil)
	var lockCS win32.CriticalSection
	api.InitializeCriticalSection(&lockCS)
	api.EnterCriticalSection(&lockCS)
	api.LeaveCriticalSection(&lockCS)
	var xacts int32
	api.InterlockedExchange(&xacts, 0)

	ga := api.GlobalAlloc(0, 128)
	api.GlobalFree(ga)
	api.Process().ChargeTime(200 * time.Millisecond)
	api.LstrlenA(host)
	api.LstrcatA("MSSQL", "Server")
	version, _ := api.LstrcpyA("SQL Server 7.00")
	api.LstrcmpiA(version, "sql server 7.00")
	api.MultiByteToWideChar(1252, version)
	api.WideCharToMultiByte(1252, version)

	if flags.Cluster {
		// Cluster resource plumbing: three calls SQL Server makes only
		// under MSCS (Table 1: 71 -> 74).
		api.GetWindowsDirectoryA(nil)
		var dup win32.Handle
		api.DuplicateHandle(0, readyEv, 0, &dup)
		api.CloseHandle(dup)
		api.OutputDebugStringA("sqlservr: cluster resource online")
	}
	if !flags.Monitored {
		// Standalone error reporter; watchd supplies its own, dropping
		// one function from the census (Table 1: 71 -> 70).
		api.FormatMessageA(0, 0)
	}

	api.Process().ChargeTime(300 * time.Millisecond)

	// --- Serve queries. ---
	pipe := api.CreateNamedPipeA(common.SQLPipe, win32.PipeAccessDuplex, win32.PipeTypeByte, 1)
	for {
		if !api.ConnectNamedPipe(pipe) {
			api.Sleep(500)
			continue
		}
		api.InterlockedIncrement(&xacts)
		query, ok := readLine(api, pipe)
		if ok {
			api.Process().ChargeTime(cfg.QueryCPU)
			reply := execQuery(db, query)
			var n uint32
			api.WriteFile(pipe, reply, uint32(len(reply)), &n)
		}
		api.FlushFileBuffers(pipe)
		api.DisconnectNamedPipe(pipe)
	}
}

// loadDatabase reads the startup script through ReadFileEx and replays it.
func loadDatabase(api *win32.API) (*sqlengine.DB, bool) {
	if api.GetFileAttributesA(DataPath) == 0xFFFFFFFF {
		return nil, false
	}
	h := api.CreateFileA(DataPath, win32.GenericRead, 0, win32.OpenExisting, 0)
	if h == win32.InvalidHandle {
		return nil, false
	}
	size := api.GetFileSize(h, nil)
	if size == 0xFFFFFFFF {
		api.CloseHandle(h)
		return nil, false
	}
	api.SetFilePointer(h, 0, win32.FileBegin)
	script := make([]byte, 0, size)
	buf := make([]byte, 4096)
	for uint32(len(script)) < size {
		var n uint32
		if !api.ReadFileEx(h, buf, uint32(len(buf)), &n) || n == 0 {
			break
		}
		script = append(script, buf[:n]...)
	}
	api.CloseHandle(h)

	db := sqlengine.NewDB()
	if err := db.Load(string(script)); err != nil {
		return nil, false
	}
	return db, true
}

// execQuery runs one statement and renders the wire reply:
//
//	OK <payload-bytes>\n<payload>   on success
//	ERR <message>\n                 on failure
func execQuery(db *sqlengine.DB, query string) []byte {
	res, err := db.Exec(strings.TrimSpace(query))
	if err != nil {
		return []byte("ERR " + err.Error() + "\n")
	}
	payload := sqlengine.FormatResult(res)
	return []byte("OK " + strconv.Itoa(len(payload)) + "\n" + payload)
}

// ExpectedReply computes the exact bytes a healthy server returns for a
// query (used by the SqlClient workload's correctness check).
func ExpectedReply(query string) []byte {
	return execQuery(SeedDB(), query)
}

// readLine reads up to a newline from the pipe handle.
func readLine(api *win32.API, pipe win32.Handle) (string, bool) {
	var line []byte
	buf := make([]byte, 256)
	for len(line) < 4096 {
		var n uint32
		if !api.ReadFile(pipe, buf, uint32(len(buf)), &n) || n == 0 {
			return "", false
		}
		line = append(line, buf[:n]...)
		if i := strings.IndexByte(string(line), '\n'); i >= 0 {
			return string(line[:i]), true
		}
	}
	return "", false
}
