// Package apache simulates the Apache 1.3.3 web server for Win32 in the
// two-process configuration the paper uses (§4.1): a management process
// ("Apache1") that spawns exactly one worker child ("Apache2") and respawns
// it when it dies, plus the worker itself, which serves a 115 kB static
// page and a 1 kB CGI page over the HTTP pipe. The master's built-in
// failure detection and restart of the child is the architectural feature
// behind the paper's Apache1/Apache2 asymmetry: middleware monitors only
// the first process, while the master itself already recovers the child.
package apache

import (
	"fmt"
	"time"

	"ntdts/internal/apps/common"
	"ntdts/internal/httpwire"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/crt"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
)

const (
	// Image is the executable name both Apache processes run under.
	Image = "apache.exe"
	// CGIImage is the helper the worker spawns for CGI requests.
	CGIImage = "cgi.exe"
	// ServiceName is the SCM service name.
	ServiceName = "Apache"
	// ConfigPath is the INI file the master reads at startup.
	ConfigPath = `C:\Apache\conf\httpd.ini`
	// readyEventName is the named event the child signals once listening.
	readyEventName = "Local\\apache_child_ready"
)

// Config controls the simulated installation.
type Config struct {
	// DocRoot is where index.html lives.
	DocRoot string
	// InitCPU is the worker's module-initialization CPU time; it delays
	// the master's RUNNING report (the SCM start-pending window).
	InitCPU time.Duration
	// RequestCPU is per-request processing time in the worker.
	RequestCPU time.Duration
}

// DefaultConfig matches the paper's two-process test configuration.
func DefaultConfig() Config {
	return Config{
		DocRoot:    `C:\Apache\htdocs`,
		InitCPU:    800 * time.Millisecond,
		RequestCPU: 1350 * time.Millisecond,
	}
}

// Register installs the Apache images on the kernel and writes the
// configuration file. DTS workload setup calls this once per run.
func Register(k *ntsim.Kernel, cfg Config) {
	if cfg.DocRoot == "" {
		cfg = DefaultConfig()
	}
	k.VFS().WriteFile(ConfigPath, []byte(fmt.Sprintf(
		"[server]\r\nDocumentRoot=%s\r\nMaxChildren=1\r\n", cfg.DocRoot)))
	k.RegisterImage(Image, func(p *ntsim.Process) uint32 {
		return run(p, cfg)
	})
	k.RegisterImage(CGIImage, cgiMain)
}

// run dispatches master vs worker on the -child flag.
func run(p *ntsim.Process, cfg Config) uint32 {
	api := win32.New(p)
	rt := crt.Startup(api)
	flags := common.ParseFlags(api.GetCommandLineA())
	if flags.Child {
		return childMain(api, rt, cfg, flags)
	}
	return masterMain(api, rt, cfg, flags)
}

// masterMain is Apache1: read config, spawn the worker, report RUNNING,
// then monitor and respawn the worker forever.
func masterMain(api *win32.API, rt *crt.Runtime, cfg Config, flags common.Flags) uint32 {
	k := api.Kernel()

	// Like the real Apache service shim, the master reports RUNNING as
	// soon as the C runtime is up — before reading configuration or
	// spawning the worker. Deaths after this point do not hold the SCM
	// database locked; deaths before it (CRT faults) do, for the full
	// wait hint (§4.2's Start-Pending effect).
	scm.ReportRunning(k, ServiceName)

	docRoot := api.GetPrivateProfileStringA("server", "DocumentRoot", cfg.DocRoot, ConfigPath)
	maxChildren := api.GetPrivateProfileIntA("server", "MaxChildren", 1, ConfigPath)
	if maxChildren < 1 {
		maxChildren = 1
	}
	_ = docRoot // the worker re-reads its own configuration

	if flags.Cluster {
		clusterMasterExtras(api)
	}

	readyEv := api.CreateEventA(true, false, readyEventName)

	childCmd := Image + " -child"
	if rest := flags.String(); rest != "" {
		childCmd = Image + " -child " + rest
	}
	var pi win32.ProcessInformation
	if !api.CreateProcessA(Image, childCmd, nil, &pi) {
		// Cannot spawn the worker: nothing will serve requests.
		api.ExitProcess(1)
	}
	api.WaitForSingleObject(readyEv, 30_000)

	for {
		res := api.WaitForSingleObject(pi.HProcess, win32.Infinite)
		if res != ntsim.WaitObject0 {
			// Corrupted wait or bad handle: back off, keep trying.
			api.Sleep(1000)
			continue
		}
		// Worker died: Apache's built-in recovery respawns it.
		api.CloseHandle(pi.HProcess)
		api.ResetEvent(readyEv)
		if !api.CreateProcessA(Image, childCmd, nil, &pi) {
			api.Sleep(1000)
			continue
		}
		api.WaitForSingleObject(readyEv, 30_000)
	}
}

// clusterMasterExtras are the additional KERNEL32 calls the master makes
// when started as an MSCS cluster resource (Table 1's +4 for Apache1).
func clusterMasterExtras(api *win32.API) {
	var name string
	api.GetComputerNameA(&name)
	api.GetTickCount()
	api.GetEnvironmentVariableA("ClusterName", nil)
	api.OutputDebugStringA("apache: cluster resource online")
}

// childMain is Apache2: create the HTTP pipe, signal readiness, serve.
func childMain(api *win32.API, rt *crt.Runtime, cfg Config, flags common.Flags) uint32 {
	api.Process().ChargeTime(cfg.InitCPU) // module initialization

	if flags.Cluster {
		api.GetEnvironmentVariableA("ClusterName", nil)
		api.GetTickCount()
	}

	pipe := api.CreateNamedPipeA(common.HTTPPipe, win32.PipeAccessDuplex, win32.PipeTypeByte, 1)

	readyEv := api.CreateEventA(true, false, readyEventName)
	api.SetEvent(readyEv)

	docRoot := cfg.DocRoot
	for {
		if !api.ConnectNamedPipe(pipe) {
			// Bad pipe handle or broken instance: back off rather
			// than spin (a fault here degenerates into a hang).
			api.Sleep(500)
			continue
		}
		conn := &common.HandleConn{API: api, Handle: pipe}
		req, ok := httpwire.ReadRequest(conn)
		if ok {
			api.Process().ChargeTime(cfg.RequestCPU)
			serveRequest(api, conn, docRoot, req)
		}
		// Disconnecting discards unread bytes, so drain first.
		api.FlushFileBuffers(pipe)
		api.DisconnectNamedPipe(pipe)
	}
}

// serveRequest routes one HTTP request.
func serveRequest(api *win32.API, conn httpwire.Conn, docRoot string, req httpwire.Request) {
	switch {
	case req.Method != "GET":
		httpwire.WriteResponse(conn, httpwire.Response{Status: 400})
	case req.Path == "/" || req.Path == "/index.html":
		serveStatic(api, conn, docRoot+`\index.html`)
	case req.Path == "/cgi-bin/info":
		serveCGI(api, conn)
	default:
		httpwire.WriteResponse(conn, httpwire.Response{Status: 404})
	}
}

// serveStatic streams a file from the document root.
func serveStatic(api *win32.API, conn httpwire.Conn, path string) {
	h := api.CreateFileA(path, win32.GenericRead, 0, win32.OpenExisting, 0)
	if h == win32.InvalidHandle {
		httpwire.WriteResponse(conn, httpwire.Response{Status: 404})
		return
	}
	size := api.GetFileSize(h, nil)
	if size == 0xFFFFFFFF {
		api.CloseHandle(h)
		httpwire.WriteResponse(conn, httpwire.Response{Status: 500})
		return
	}
	body := make([]byte, 0, size)
	buf := make([]byte, 8192)
	for uint32(len(body)) < size {
		var n uint32
		if !api.ReadFile(h, buf, uint32(len(buf)), &n) || n == 0 {
			break
		}
		body = append(body, buf[:n]...)
	}
	api.CloseHandle(h)
	httpwire.WriteResponse(conn, httpwire.Response{Status: 200, Body: body})
}

// serveCGI spawns the CGI helper, which writes its output to a temp file;
// the worker then relays that file as the response body — the temp-file CGI
// plumbing Apache for Win32 actually used.
func serveCGI(api *win32.API, conn httpwire.Conn) {
	var tmpDir string
	api.GetTempPathA(&tmpDir)
	tmpFile := tmpDir + "apache_cgi_out.txt"

	var pi win32.ProcessInformation
	if !api.CreateProcessA(CGIImage, CGIImage+" "+tmpFile, nil, &pi) {
		httpwire.WriteResponse(conn, httpwire.Response{Status: 500})
		return
	}
	api.WaitForSingleObject(pi.HProcess, 10_000)
	api.CloseHandle(pi.HProcess)

	h := api.CreateFileA(tmpFile, win32.GenericRead, 0, win32.OpenExisting, 0)
	if h == win32.InvalidHandle {
		httpwire.WriteResponse(conn, httpwire.Response{Status: 500})
		return
	}
	size := api.GetFileSize(h, nil)
	body := make([]byte, 0, 1024)
	buf := make([]byte, 1024)
	for uint32(len(body)) < size {
		var n uint32
		if !api.ReadFile(h, buf, uint32(len(buf)), &n) || n == 0 {
			break
		}
		body = append(body, buf[:n]...)
	}
	api.CloseHandle(h)
	httpwire.WriteResponse(conn, httpwire.Response{Status: 200, Body: body})
}

// CGIBody is the deterministic 1 kB document the CGI helper produces; the
// HttpClient workload validates replies against it.
func CGIBody() []byte {
	body := []byte("<html><head><title>CGI Info</title></head><body>")
	line := []byte("<p>Apache CGI environment report: all systems nominal.</p>")
	for len(body) < 1024-len("</body></html>")-len(line) {
		body = append(body, line...)
	}
	body = append(body, []byte("</body></html>")...)
	return body[:1024]
}

// cgiMain is the CGI helper process: write the fixed document to the file
// named on the command line.
func cgiMain(p *ntsim.Process) uint32 {
	api := win32.New(p)
	cmd := api.GetCommandLineA()
	// Path is everything after the first space.
	path := ""
	for i := 0; i < len(cmd); i++ {
		if cmd[i] == ' ' {
			path = cmd[i+1:]
			break
		}
	}
	if path == "" {
		return 1
	}
	h := api.CreateFileA(path, win32.GenericWrite, 0, win32.CreateAlways, 0)
	if h == win32.InvalidHandle {
		return 1
	}
	body := CGIBody()
	var n uint32
	api.WriteFile(h, body, uint32(len(body)), &n)
	api.CloseHandle(h)
	return 0
}
