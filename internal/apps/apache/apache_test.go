package apache

import (
	"bytes"
	"testing"
	"time"

	"ntdts/internal/apps/common"
	"ntdts/internal/eventlog"
	"ntdts/internal/httpwire"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
)

// rig boots an Apache installation under the SCM.
type rig struct {
	k   *ntsim.Kernel
	mgr *scm.Manager
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := ntsim.NewKernel()
	mgr := scm.New(k, eventlog.New())
	cfg := DefaultConfig()
	Register(k, cfg)
	k.VFS().WriteFile(cfg.DocRoot+`\index.html`, []byte("<html>static</html>"))
	if err := mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.StartService(ServiceName); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	r.k.RunFor(d)
	if pan := r.k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

// fetch issues one HTTP request from a synthetic client process.
func (r *rig) fetch(t *testing.T, path string) (resp httpwire.Response, ok bool) {
	t.Helper()
	done := false
	r.k.RegisterImage("fetch.exe", func(p *ntsim.Process) uint32 {
		pc, errno := r.k.ConnectPipeClient(common.HTTPPipe)
		if errno != ntsim.ErrSuccess {
			done = true
			return 1
		}
		defer pc.CloseClient()
		conn := &testConn{p: p, pc: pc}
		if !httpwire.WriteRequest(conn, httpwire.Request{Method: "GET", Path: path}) {
			done = true
			return 1
		}
		resp, ok = httpwire.ReadResponse(conn)
		done = true
		return 0
	})
	if _, err := r.k.Spawn("fetch.exe", "fetch.exe", 0); err != nil {
		t.Fatal(err)
	}
	deadline := r.k.Now().Add(30 * time.Second)
	for !done && r.k.Now().Before(deadline) {
		if !r.k.Step() {
			break
		}
	}
	return resp, ok
}

type testConn struct {
	p  *ntsim.Process
	pc *ntsim.PipeClient
}

func (c *testConn) Read(buf []byte) (int, bool) {
	n, errno := c.pc.ReadTimeout(c.p, buf, 10*time.Second)
	return n, errno == ntsim.ErrSuccess
}

func (c *testConn) Write(data []byte) bool {
	_, errno := c.pc.Write(data)
	return errno == ntsim.ErrSuccess
}

// processesOf lists live PIDs running the Apache image.
func (r *rig) processesOf(image string) []ntsim.PID {
	var out []ntsim.PID
	for pid := ntsim.PID(1); ; pid++ {
		p := r.k.Process(pid)
		if p == nil {
			return out
		}
		if p.Image == image && !p.Terminated() {
			out = append(out, pid)
		}
	}
}

func TestMasterSpawnsExactlyOneWorker(t *testing.T) {
	r := newRig(t)
	r.run(t, 5*time.Second)
	procs := r.processesOf(Image)
	if len(procs) != 2 {
		t.Fatalf("%d apache processes, want 2 (master + one worker)", len(procs))
	}
	st, _, _ := r.mgr.QueryServiceStatus(ServiceName)
	if st != scm.Running {
		t.Fatalf("service %v, want RUNNING", st)
	}
}

func TestServesStaticDocument(t *testing.T) {
	r := newRig(t)
	r.run(t, 5*time.Second)
	resp, ok := r.fetch(t, "/index.html")
	if !ok || resp.Status != 200 {
		t.Fatalf("static fetch: ok=%v status=%d", ok, resp.Status)
	}
	if string(resp.Body) != "<html>static</html>" {
		t.Fatalf("static body %q", resp.Body)
	}
}

func TestServesCGIDocument(t *testing.T) {
	r := newRig(t)
	r.run(t, 5*time.Second)
	resp, ok := r.fetch(t, "/cgi-bin/info")
	if !ok || resp.Status != 200 {
		t.Fatalf("CGI fetch: ok=%v status=%d", ok, resp.Status)
	}
	if !bytes.Equal(resp.Body, CGIBody()) {
		t.Fatalf("CGI body mismatch: %d bytes", len(resp.Body))
	}
	if len(CGIBody()) != 1024 {
		t.Fatalf("CGI document is %d bytes, want 1024 (the paper's 1 kB)", len(CGIBody()))
	}
}

func TestUnknownPathIs404(t *testing.T) {
	r := newRig(t)
	r.run(t, 5*time.Second)
	resp, ok := r.fetch(t, "/missing.html")
	if !ok || resp.Status != 404 {
		t.Fatalf("missing fetch: ok=%v status=%d", ok, resp.Status)
	}
}

func TestNonGETRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, 5*time.Second)
	done := false
	var status int
	r.k.RegisterImage("post.exe", func(p *ntsim.Process) uint32 {
		pc, errno := r.k.ConnectPipeClient(common.HTTPPipe)
		if errno != ntsim.ErrSuccess {
			done = true
			return 1
		}
		defer pc.CloseClient()
		conn := &testConn{p: p, pc: pc}
		httpwire.WriteRequest(conn, httpwire.Request{Method: "POST", Path: "/index.html"})
		resp, ok := httpwire.ReadResponse(conn)
		if ok {
			status = resp.Status
		}
		done = true
		return 0
	})
	r.k.Spawn("post.exe", "post.exe", 0)
	deadline := r.k.Now().Add(30 * time.Second)
	for !done && r.k.Now().Before(deadline) {
		r.k.Step()
	}
	if status != 400 {
		t.Fatalf("POST status %d, want 400", status)
	}
}

func TestMasterRespawnsDeadWorker(t *testing.T) {
	// The architectural feature of §4.1: the master detects worker death
	// and respawns it without any middleware.
	r := newRig(t)
	r.run(t, 5*time.Second)
	procs := r.processesOf(Image)
	if len(procs) != 2 {
		t.Fatalf("%d processes", len(procs))
	}
	worker := r.k.Process(procs[1])
	if worker.Parent == 0 {
		t.Fatal("second process is not the worker")
	}
	worker.Terminate(ntsim.ExitAccessViolation)
	r.run(t, 5*time.Second)
	after := r.processesOf(Image)
	if len(after) != 2 {
		t.Fatalf("%d processes after worker death, want 2 (respawned)", len(after))
	}
	// And the respawned worker serves.
	resp, ok := r.fetch(t, "/index.html")
	if !ok || resp.Status != 200 {
		t.Fatalf("fetch after respawn: ok=%v status=%d", ok, resp.Status)
	}
}

func TestMasterDeathOrphansWorkingWorker(t *testing.T) {
	// Master death does not take the worker down: requests keep being
	// served (why many Apache1 faults are benign in the paper's data).
	r := newRig(t)
	r.run(t, 5*time.Second)
	procs := r.processesOf(Image)
	master := r.k.Process(procs[0])
	if master.Parent != 0 {
		t.Fatal("first process is not the master")
	}
	master.Terminate(ntsim.ExitAccessViolation)
	r.run(t, 2*time.Second)
	resp, ok := r.fetch(t, "/index.html")
	if !ok || resp.Status != 200 {
		t.Fatalf("fetch after master death: ok=%v status=%d", ok, resp.Status)
	}
}

func TestServesSequentialConnections(t *testing.T) {
	r := newRig(t)
	r.run(t, 5*time.Second)
	for i := 0; i < 3; i++ {
		resp, ok := r.fetch(t, "/index.html")
		if !ok || resp.Status != 200 {
			t.Fatalf("fetch %d: ok=%v status=%d", i, ok, resp.Status)
		}
	}
}

func TestCorruptedCGISpawnDegradesGracefully(t *testing.T) {
	// A corrupted CreateProcessA in the worker's CGI path must degrade to
	// an HTTP error (or a benign fallback), never a wedged worker: the
	// next request is served normally.
	k := ntsim.NewKernel()
	mgr := scm.New(k, eventlog.New())
	cfg := DefaultConfig()
	Register(k, cfg)
	k.VFS().WriteFile(cfg.DocRoot+`\index.html`, []byte("<html>static</html>"))
	// Target the worker's CreateProcessA (its first invocation is the CGI
	// helper spawn) with a zero fault on the application-name pointer:
	// CreateProcessA falls back to the command line and still works, or
	// fails cleanly — both are acceptable; what is not acceptable is a
	// crash of the worker or a wedge.
	k.SetInterceptor(inject.New(k, inject.ChildProcessOf(Image), &inject.FaultSpec{
		Function: "CreateProcessA", Param: 1, Invocation: 1, Type: inject.ZeroBits,
	}))
	mgr.CreateService(scm.Config{Name: ServiceName, Image: Image, CmdLine: Image, WaitHint: 30 * time.Second})
	mgr.StartService(ServiceName)
	r := &rig{k: k, mgr: mgr}
	r.run(t, 5*time.Second)

	if resp, ok := r.fetch(t, "/cgi-bin/info"); !ok || (resp.Status != 200 && resp.Status != 500) {
		t.Fatalf("CGI under corrupted spawn: ok=%v status=%d", ok, resp.Status)
	}
	// The worker survives and still serves static content.
	resp, ok := r.fetch(t, "/index.html")
	if !ok || resp.Status != 200 {
		t.Fatalf("static after corrupted CGI spawn: ok=%v status=%d", ok, resp.Status)
	}
}
