package ntsim

import (
	"container/list"
	"time"

	"ntdts/internal/vclock"
)

// Waitable is the interface of kernel dispatcher objects that processes can
// wait on (events, mutexes, semaphores, process objects).
type Waitable interface {
	// tryAcquire reports whether the object is signaled for p and, if so,
	// consumes the signal where the object type requires it (auto-reset
	// events, semaphores, mutex ownership).
	tryAcquire(p *Process) bool
	// addWaiter registers a waiter to be satisfied when the object
	// becomes signaled. Returns the registration for removal.
	addWaiter(w *objWaiter) *list.Element
	// removeWaiter removes a previous registration.
	removeWaiter(e *list.Element)
}

// objWaiter links a pending waitOp to one object it waits on.
type objWaiter struct {
	op    *waitOp
	index int // position in WaitForMultipleObjects handle array
}

// waitOp is one blocking wait (single- or multi-object) by one process.
type waitOp struct {
	p        *Process
	done     bool
	timerID  vclock.EventID
	hasTimer bool
	cancels  []func()
}

// complete finishes the wait exactly once, cancelling the timeout and all
// other object registrations, and wakes the process.
func (w *waitOp) complete(result uint32, errno Errno) bool {
	if w.done {
		return false
	}
	w.done = true
	w.detach()
	w.p.k.wake(w.p, result, errno)
	return true
}

// detach removes all registrations without waking the process (kill path).
func (w *waitOp) detach() {
	if w.hasTimer {
		w.p.k.clock.Cancel(w.timerID)
		w.hasTimer = false
	}
	for _, c := range w.cancels {
		c()
	}
	w.cancels = nil
}

// waiterQueue is the FIFO wait list shared by all object types.
type waiterQueue struct{ l list.List }

func (q *waiterQueue) add(w *objWaiter) *list.Element { return q.l.PushBack(w) }
func (q *waiterQueue) remove(e *list.Element)         { q.l.Remove(e) }

// satisfyOne completes the first live waiter, returning it, or nil.
func (q *waiterQueue) satisfyOne(result uint32) *objWaiter {
	for e := q.l.Front(); e != nil; e = q.l.Front() {
		w := e.Value.(*objWaiter)
		q.l.Remove(e)
		if w.op.complete(result+uint32(w.index), ErrSuccess) {
			return w
		}
	}
	return nil
}

// satisfyAll completes every live waiter.
func (q *waiterQueue) satisfyAll(result uint32) {
	for e := q.l.Front(); e != nil; e = q.l.Front() {
		w := e.Value.(*objWaiter)
		q.l.Remove(e)
		w.op.complete(result+uint32(w.index), ErrSuccess)
	}
}

// Event ----------------------------------------------------------------------

// Event is an NT event object (manual- or auto-reset).
type Event struct {
	Name        string
	manualReset bool
	signaled    bool
	waiters     waiterQueue
}

// NewEvent creates an event object.
func NewEvent(name string, manualReset, initial bool) *Event {
	return &Event{Name: name, manualReset: manualReset, signaled: initial}
}

// Set signals the event, releasing one waiter (auto-reset) or all waiters
// (manual-reset).
func (ev *Event) Set() {
	if ev.manualReset {
		ev.signaled = true
		ev.waiters.satisfyAll(WaitObject0)
		return
	}
	// Auto-reset: hand the signal to exactly one waiter if present.
	if ev.waiters.satisfyOne(WaitObject0) != nil {
		ev.signaled = false
		return
	}
	ev.signaled = true
}

// Reset clears the signaled state.
func (ev *Event) Reset() { ev.signaled = false }

// Signaled reports the current signal state.
func (ev *Event) Signaled() bool { return ev.signaled }

func (ev *Event) tryAcquire(*Process) bool {
	if !ev.signaled {
		return false
	}
	if !ev.manualReset {
		ev.signaled = false
	}
	return true
}

func (ev *Event) addWaiter(w *objWaiter) *list.Element { return ev.waiters.add(w) }
func (ev *Event) removeWaiter(e *list.Element)         { ev.waiters.remove(e) }

// Mutex ----------------------------------------------------------------------

// Mutex is an NT mutex object with ownership and recursion.
type Mutex struct {
	Name      string
	owner     *Process
	recursion int
	abandoned bool
	waiters   waiterQueue
}

// NewMutex creates a mutex, optionally initially owned by p.
func NewMutex(name string, owner *Process) *Mutex {
	m := &Mutex{Name: name, owner: owner}
	if owner != nil {
		m.recursion = 1
	}
	return m
}

// Owner returns the owning process, or nil.
func (m *Mutex) Owner() *Process { return m.owner }

// Release releases one level of ownership. Returns false if p is not the
// owner.
func (m *Mutex) Release(p *Process) bool {
	if m.owner != p {
		return false
	}
	m.recursion--
	if m.recursion > 0 {
		return true
	}
	m.owner = nil
	if w := m.waiters.satisfyOne(WaitObject0); w != nil {
		m.owner = w.op.p
		m.recursion = 1
	}
	return true
}

// abandon handles owner death: ownership transfers to the next waiter with
// WAIT_ABANDONED semantics.
func (m *Mutex) abandon(p *Process) {
	if m.owner != p {
		return
	}
	m.owner = nil
	m.recursion = 0
	m.abandoned = true
	if w := m.waiters.satisfyOne(WaitAbandond); w != nil {
		m.owner = w.op.p
		m.recursion = 1
		m.abandoned = false
	}
}

func (m *Mutex) tryAcquire(p *Process) bool {
	if m.owner == nil {
		m.owner = p
		m.recursion = 1
		return true
	}
	if m.owner == p {
		m.recursion++
		return true
	}
	return false
}

func (m *Mutex) addWaiter(w *objWaiter) *list.Element { return m.waiters.add(w) }
func (m *Mutex) removeWaiter(e *list.Element)         { m.waiters.remove(e) }

// Semaphore --------------------------------------------------------------------

// Semaphore is an NT semaphore object.
type Semaphore struct {
	Name    string
	count   int32
	max     int32
	waiters waiterQueue
}

// NewSemaphore creates a semaphore with an initial and maximum count.
func NewSemaphore(name string, initial, max int32) *Semaphore {
	return &Semaphore{Name: name, count: initial, max: max}
}

// Count returns the current count.
func (s *Semaphore) Count() int32 { return s.count }

// ReleaseN adds n to the count, waking up to n waiters. It reports false if
// the release would exceed the maximum.
func (s *Semaphore) ReleaseN(n int32) bool {
	if n <= 0 || s.count+n > s.max {
		return false
	}
	s.count += n
	for s.count > 0 {
		if s.waiters.satisfyOne(WaitObject0) == nil {
			break
		}
		s.count--
	}
	return true
}

func (s *Semaphore) tryAcquire(*Process) bool {
	if s.count <= 0 {
		return false
	}
	s.count--
	return true
}

func (s *Semaphore) addWaiter(w *objWaiter) *list.Element { return s.waiters.add(w) }
func (s *Semaphore) removeWaiter(e *list.Element)         { s.waiters.remove(e) }

// ProcessObject ------------------------------------------------------------------

// ProcessObject is the waitable facet of a process: signaled forever once
// the process exits.
type ProcessObject struct {
	exited  bool
	waiters waiterQueue
}

func newProcessObject() *ProcessObject { return &ProcessObject{} }

// signalExit marks the process exited, waking every waiter.
func (po *ProcessObject) signalExit(*Kernel) {
	po.exited = true
	po.waiters.satisfyAll(WaitObject0)
}

// Exited reports whether the process object is signaled.
func (po *ProcessObject) Exited() bool { return po.exited }

func (po *ProcessObject) tryAcquire(*Process) bool { return po.exited }

func (po *ProcessObject) addWaiter(w *objWaiter) *list.Element { return po.waiters.add(w) }
func (po *ProcessObject) removeWaiter(e *list.Element)         { po.waiters.remove(e) }

// Waiting ---------------------------------------------------------------------

// WaitOne blocks p until obj is signaled or the timeout elapses.
// timeoutMS follows Win32 semantics: 0 polls, Infinite waits forever.
// It returns WaitObject0, WaitTimeout or WaitAbandond.
func WaitOne(p *Process, obj Waitable, timeoutMS uint32) uint32 {
	return WaitAny(p, []Waitable{obj}, timeoutMS)
}

// WaitAny blocks p until any one of objs is signaled or the timeout elapses,
// returning WaitObject0+index, WaitAbandond+index, or WaitTimeout.
func WaitAny(p *Process, objs []Waitable, timeoutMS uint32) uint32 {
	p.checkAlive()
	for i, o := range objs {
		if o.tryAcquire(p) {
			return WaitObject0 + uint32(i)
		}
	}
	if timeoutMS == 0 {
		return WaitTimeout
	}
	op := &waitOp{p: p}
	for i, o := range objs {
		o := o
		w := &objWaiter{op: op, index: i}
		elem := o.addWaiter(w)
		op.cancels = append(op.cancels, func() { o.removeWaiter(elem) })
	}
	if timeoutMS != Infinite {
		d := time.Duration(timeoutMS) * time.Millisecond
		op.timerID = p.k.clock.ScheduleAfter(d, func() {
			op.complete(WaitTimeout, ErrSuccess)
		})
		op.hasTimer = true
	}
	p.waitCancel = op.detach
	result, _ := p.block()
	return result
}
