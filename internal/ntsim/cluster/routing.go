package cluster

import (
	"fmt"
	"time"

	"ntdts/internal/ntsim"
)

// Policy selects how clients pick a node when opening a connection.
type Policy int

const (
	// Failover pins clients to the lowest-indexed healthy node and moves
	// on only when it stops answering — the active/passive shape MSCS
	// expects (the resource group owner serves; standbys are idle).
	Failover Policy = iota
	// RoundRobin rotates the first node tried on every dial.
	RoundRobin
	// LeastLoaded tries nodes in ascending order of in-flight
	// connections (ties broken by node index), a pure function of
	// cluster state at the dial instant.
	LeastLoaded
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "failover"
	}
}

// ParsePolicy parses a -routing flag value. The empty string selects
// Failover, the default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "failover":
		return Failover, nil
	case "round-robin":
		return RoundRobin, nil
	case "least-loaded":
		return LeastLoaded, nil
	}
	return Failover, fmt.Errorf(`unknown routing policy %q (want "round-robin", "least-loaded" or "failover")`, s)
}

// Router dials client connections according to a routing policy. One
// router serves all clients of a run; its state (rotation cursor,
// in-flight counts) advances only inside Dial and connection close, both
// of which happen at deterministic scheduler instants.
type Router struct {
	topo     *Topology
	policy   Policy
	rrNext   int
	inflight []int
	trace    []int
}

// NewRouter returns a router over the topology's nodes.
func NewRouter(topo *Topology, policy Policy) *Router {
	return &Router{
		topo:     topo,
		policy:   policy,
		inflight: make([]int, topo.Nodes()),
	}
}

// Dial opens a connection to path on a node chosen by the policy. Nodes
// that are down, unreachable from the client host, or not listening are
// skipped in policy order; when no node accepts, the most interesting
// errno seen is returned (busy beats not-found beats unreachable), so
// the client's connect-poll loop retries exactly as on a single host.
func (r *Router) Dial(p *ntsim.Process, path string) (*Conn, ntsim.Errno) {
	last := ntsim.ErrFileNotFound
	for _, i := range r.order() {
		if !r.topo.ClientReachable(i) {
			continue
		}
		pc, errno := r.topo.Node(i).ConnectPipeClient(path)
		if errno != ntsim.ErrSuccess {
			if errno == ntsim.ErrPipeBusy || last == ntsim.ErrFileNotFound {
				last = errno
			}
			continue
		}
		r.inflight[i]++
		r.trace = append(r.trace, i)
		return &Conn{
			pc:     pc,
			up:     r.topo.Network().Link(r.topo.ClientHost(), i),
			router: r,
			node:   i,
		}, ntsim.ErrSuccess
	}
	return nil, last
}

// order returns the node indices in the order this dial should try them.
// It depends only on the router's own state (one in-flight counter per
// node, the rotation cursor), never on the topology.
func (r *Router) order() []int {
	n := len(r.inflight)
	out := make([]int, n)
	switch r.policy {
	case RoundRobin:
		start := r.rrNext
		r.rrNext = (r.rrNext + 1) % n
		for j := range out {
			out[j] = (start + j) % n
		}
	case LeastLoaded:
		for j := range out {
			out[j] = j
		}
		// Insertion sort by (inflight, index): n is tiny and the sort
		// must be stable on index for determinism.
		for j := 1; j < n; j++ {
			for m := j; m > 0 && r.inflight[out[m]] < r.inflight[out[m-1]]; m-- {
				out[m], out[m-1] = out[m-1], out[m]
			}
		}
	default: // Failover: fixed preference order.
		for j := range out {
			out[j] = j
		}
	}
	return out
}

// Trace returns the node index chosen by every successful dial so far,
// in dial order. Tests use it to pin that routing is a pure function of
// cluster state.
func (r *Router) Trace() []int {
	out := make([]int, len(r.trace))
	copy(out, r.trace)
	return out
}

// Inflight returns node i's current in-flight connection count.
func (r *Router) Inflight(i int) int { return r.inflight[i] }

// release is called when a routed connection closes.
func (r *Router) release(i int) {
	if r.inflight[i] > 0 {
		r.inflight[i]--
	}
}

// Conn is a routed client connection: reads come straight off the pipe's
// client end (replies have already crossed the network by the time the
// server writes them — see Write), writes to the server traverse the
// client->node link, so they pay its latency and are held by partitions.
type Conn struct {
	pc     *ntsim.PipeClient
	up     *Link
	router *Router
	node   int
	closed bool
}

// Node returns the node this connection was routed to.
func (c *Conn) Node() int { return c.node }

// Read delegates to the underlying pipe client.
func (c *Conn) Read(p *ntsim.Process, buf []byte) (int, ntsim.Errno) {
	return c.pc.Read(p, buf)
}

// ReadTimeout delegates to the underlying pipe client.
func (c *Conn) ReadTimeout(p *ntsim.Process, buf []byte, timeout time.Duration) (int, ntsim.Errno) {
	return c.pc.ReadTimeout(p, buf, timeout)
}

// Write sends data toward the node over the client->node link: the bytes
// arrive at the server one link latency later, or pile up in the link if
// a partition cuts it first. The write itself always succeeds — the
// client cannot tell an in-flight loss from a slow server; its reply
// timeout is the failure detector, exactly as on a real network.
func (c *Conn) Write(data []byte) (int, ntsim.Errno) {
	if c.closed {
		return 0, ntsim.ErrInvalidHandle
	}
	pc := c.pc
	c.up.Send(data, func(b []byte) {
		pc.Write(b)
	})
	return len(data), ntsim.ErrSuccess
}

// CloseClient closes the routed connection and releases its load slot.
func (c *Conn) CloseClient() {
	if c.closed {
		return
	}
	c.closed = true
	c.router.release(c.node)
	c.pc.CloseClient()
}
