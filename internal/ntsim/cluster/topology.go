package cluster

import "ntdts/internal/ntsim"

// Topology is the runner's view of an n-node cluster: the node kernels,
// which nodes are down, and the network between them. Endpoint n of the
// network is the client host.
type Topology struct {
	nodes []*ntsim.Kernel
	down  []bool
	net   *Network
}

// NewTopology wraps the node kernels and their network. The network must
// have len(nodes)+1 endpoints (the extra one is the client host).
func NewTopology(nodes []*ntsim.Kernel, net *Network) *Topology {
	return &Topology{
		nodes: nodes,
		down:  make([]bool, len(nodes)),
		net:   net,
	}
}

// Nodes returns the number of cluster nodes.
func (t *Topology) Nodes() int { return len(t.nodes) }

// Node returns node i's kernel.
func (t *Topology) Node(i int) *ntsim.Kernel { return t.nodes[i] }

// ClientHost returns the network endpoint index of the client host.
func (t *Topology) ClientHost() int { return len(t.nodes) }

// Network returns the cluster's virtual network.
func (t *Topology) Network() *Network { return t.net }

// Down reports whether node i has crashed.
func (t *Topology) Down(i int) bool { return t.down[i] }

// MarkDown records node i as crashed and cuts all its links (a dead host
// answers no traffic). The caller is responsible for terminating the
// node's processes; MarkDown only updates the cluster's view.
func (t *Topology) MarkDown(i int) {
	if t.down[i] {
		return
	}
	t.down[i] = true
	t.net.Isolate(i, true)
}

// Reachable reports whether nodes a and b are both up and their links
// uncut. It is the health predicate the cluster resource monitor probes
// in place of a real heartbeat exchange.
func (t *Topology) Reachable(a, b int) bool {
	if t.down[a] || t.down[b] {
		return false
	}
	return t.net.Reachable(a, b)
}

// ClientReachable reports whether the client host can currently reach
// node i.
func (t *Topology) ClientReachable(i int) bool {
	if t.down[i] {
		return false
	}
	return t.net.Reachable(t.ClientHost(), i)
}
