package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"ntdts/internal/vclock"
)

// drain runs every scheduled clock event.
func drain(t *testing.T, c *vclock.Clock) {
	t.Helper()
	for i := 0; c.Pending() > 0; i++ {
		if i > 1_000_000 {
			t.Fatal("clock never drained")
		}
		c.RunNext()
	}
}

// TestLinkFIFO: a link delivers messages in send order, each exactly one
// latency after its send.
func TestLinkFIFO(t *testing.T) {
	clock := vclock.New()
	nw := NewNetwork(clock, 2, 3*time.Millisecond)
	l := nw.Link(0, 1)
	type delivery struct {
		msg string
		at  vclock.Time
	}
	var got []delivery
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("m%d", i)
		sentAt := clock.Now()
		l.Send([]byte(msg), func(b []byte) {
			got = append(got, delivery{msg: string(b), at: clock.Now()})
		})
		if wantAt, _ := clock.NextAt(); wantAt != sentAt.Add(3*time.Millisecond) && i == 0 {
			t.Fatalf("first delivery scheduled at %v, want send+latency", wantAt)
		}
		clock.Advance(time.Millisecond)
	}
	drain(t, clock)
	if len(got) != 5 {
		t.Fatalf("%d deliveries, want 5", len(got))
	}
	for i, d := range got {
		if want := fmt.Sprintf("m%d", i); d.msg != want {
			t.Fatalf("delivery %d is %q, want %q (no reordering within a link)", i, d.msg, want)
		}
		if i > 0 && d.at < got[i-1].at {
			t.Fatalf("delivery %d at %v precedes delivery %d at %v", i, d.at, i-1, got[i-1].at)
		}
	}
}

// TestLinkClonesPayload: the sender may reuse its buffer after Send.
func TestLinkClonesPayload(t *testing.T) {
	clock := vclock.New()
	nw := NewNetwork(clock, 2, 0)
	buf := []byte("original")
	var got string
	nw.Link(0, 1).Send(buf, func(b []byte) { got = string(b) })
	copy(buf, "CLOBBER!")
	drain(t, clock)
	if got != "original" {
		t.Fatalf("delivered %q; payload must be cloned at send time", got)
	}
}

// TestPartitionHealRestoresFIFO: messages caught by a partition — whether
// in flight at the cut or sent while cut — are held and flushed in their
// original send order when the link heals.
func TestPartitionHealRestoresFIFO(t *testing.T) {
	clock := vclock.New()
	nw := NewNetwork(clock, 2, 2*time.Millisecond)
	l := nw.Link(0, 1)
	var got []string
	send := func(msg string) {
		l.Send([]byte(msg), func(b []byte) { got = append(got, string(b)) })
	}
	send("before") // delivered normally
	drain(t, clock)
	send("inflight") // cut lands before its delivery instant
	nw.SetPartitioned(0, 1, true)
	drain(t, clock) // delivery instant passes while cut: held
	send("during")  // sent while cut: held behind inflight
	drain(t, clock)
	if want := []string{"before"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("deliveries while cut: %q, want %q", got, want)
	}
	nw.SetPartitioned(0, 1, false)
	drain(t, clock)
	want := []string{"before", "inflight", "during"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-heal deliveries %q, want %q (heal must flush FIFO)", got, want)
	}
}

// TestIsolateCutsEveryLink: Isolate partitions a node from all peers in
// both directions, and restores all of them.
func TestIsolateCutsEveryLink(t *testing.T) {
	clock := vclock.New()
	nw := NewNetwork(clock, 4, 0)
	nw.Isolate(1, true)
	for j := 0; j < 4; j++ {
		if j == 1 {
			continue
		}
		if nw.Reachable(1, j) {
			t.Fatalf("node 1 still reaches %d while isolated", j)
		}
	}
	if !nw.Reachable(0, 2) {
		t.Fatal("isolating node 1 cut an unrelated link")
	}
	nw.Isolate(1, false)
	for j := 0; j < 4; j++ {
		if j != 1 && !nw.Reachable(1, j) {
			t.Fatalf("node 1 cannot reach %d after restore", j)
		}
	}
}

// TestOrderLeastLoadedPure: the least-loaded order is a pure function of
// the in-flight counts — identical calls give identical orders, sorted
// by (inflight, index).
func TestOrderLeastLoadedPure(t *testing.T) {
	r := &Router{policy: LeastLoaded, inflight: []int{2, 0, 1, 0}}
	// topo is only consulted by Dial, not order(); nil is fine here.
	first := r.order()
	second := r.order()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same state gave different orders: %v then %v", first, second)
	}
	if want := []int{1, 3, 2, 0}; !reflect.DeepEqual(first, want) {
		t.Fatalf("least-loaded order %v, want %v (ascending inflight, index tie-break)", first, want)
	}
}

// TestOrderRoundRobinRotates: each dial starts one node later; the
// rotation state is the only thing that changes.
func TestOrderRoundRobinRotates(t *testing.T) {
	r := &Router{policy: RoundRobin, inflight: make([]int, 3)}
	want := [][]int{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {0, 1, 2}}
	for i, w := range want {
		if got := r.order(); !reflect.DeepEqual(got, w) {
			t.Fatalf("dial %d order %v, want %v", i, got, w)
		}
	}
}

// TestOrderFailoverFixed: failover order never changes, regardless of
// load.
func TestOrderFailoverFixed(t *testing.T) {
	r := &Router{policy: Failover, inflight: []int{5, 0, 3}}
	for i := 0; i < 3; i++ {
		if got, want := r.order(), []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
			t.Fatalf("dial %d order %v, want %v", i, got, want)
		}
	}
}

// TestParsePolicyRoundTrip: every policy's String parses back to itself,
// the empty string is failover, and junk errors.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Failover, RoundRobin, LeastLoaded} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != Failover {
		t.Fatalf("empty policy = %v, %v; want failover", p, err)
	}
	if _, err := ParsePolicy("nearest"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
