// Package cluster builds an N-node simulated cluster out of ntsim
// kernels: a Machine advances every node under one shared virtual clock,
// a Network models latency and partitions on the links between nodes, a
// Topology tracks node liveness, and a Router implements the client
// routing policies (round-robin, least-loaded, failover-on-error).
//
// Determinism: every network delivery is a vclock event on the shared
// clock, scheduled in send order, so messages on a link are delivered in
// FIFO order at deterministic instants; routing decisions are pure
// functions of cluster state at the dial instant. A cluster run is
// therefore exactly as reproducible as a single-kernel run.
package cluster

import (
	"fmt"
	"time"

	"ntdts/internal/vclock"
)

// DefaultLatency is the one-way delivery delay on every link. It stands
// in for a late-1990s switched LAN hop — large enough to order
// cross-node traffic strictly after local work at the same instant,
// small enough to be invisible next to the paper's 15-second client
// timeouts.
const DefaultLatency = 2 * time.Millisecond

// Network models the links of an (endpoints)-node virtual network.
// Endpoint indices 0..n-1 are cluster nodes; by convention the runner
// adds one extra endpoint for the client host. Links are directed and
// created lazily; all share the network's latency.
type Network struct {
	clock     *vclock.Clock
	endpoints int
	latency   time.Duration
	links     map[linkKey]*Link
}

type linkKey struct{ from, to int }

// NewNetwork returns a network over the given number of endpoints whose
// links all have the given one-way latency (DefaultLatency if <= 0).
func NewNetwork(clock *vclock.Clock, endpoints int, latency time.Duration) *Network {
	if latency <= 0 {
		latency = DefaultLatency
	}
	return &Network{
		clock:     clock,
		endpoints: endpoints,
		latency:   latency,
		links:     make(map[linkKey]*Link),
	}
}

// Endpoints returns the number of network endpoints.
func (nw *Network) Endpoints() int { return nw.endpoints }

// Link returns the directed link from one endpoint to another, creating
// it on first use.
func (nw *Network) Link(from, to int) *Link {
	if from < 0 || from >= nw.endpoints || to < 0 || to >= nw.endpoints {
		panic(fmt.Sprintf("cluster: link %d->%d outside %d-endpoint network", from, to, nw.endpoints))
	}
	key := linkKey{from, to}
	if l, ok := nw.links[key]; ok {
		return l
	}
	l := &Link{nw: nw}
	nw.links[key] = l
	return l
}

// SetPartitioned cuts (or restores) both directed links between a and b.
// Healing a partition flushes messages the cut held back, in their
// original send order, so delivery stays FIFO across the outage.
func (nw *Network) SetPartitioned(a, b int, partitioned bool) {
	for _, l := range []*Link{nw.Link(a, b), nw.Link(b, a)} {
		if partitioned {
			l.partitioned = true
		} else {
			l.heal()
		}
	}
}

// Isolate cuts (or restores) every link between endpoint i and the rest
// of the network — the classic single-node partition.
func (nw *Network) Isolate(i int, partitioned bool) {
	for j := 0; j < nw.endpoints; j++ {
		if j != i {
			nw.SetPartitioned(i, j, partitioned)
		}
	}
}

// Partitioned reports whether the directed link a->b is currently cut.
func (nw *Network) Partitioned(a, b int) bool {
	return nw.Link(a, b).partitioned
}

// Reachable reports whether both directed links between a and b are up.
func (nw *Network) Reachable(a, b int) bool {
	return !nw.Partitioned(a, b) && !nw.Partitioned(b, a)
}

// Link is one directed, latency-modeled, partitionable message channel.
type Link struct {
	nw          *Network
	partitioned bool
	// held buffers messages whose delivery instant arrived while the
	// link was cut; heal() flushes them in order.
	held []heldMessage
}

type heldMessage struct {
	data    []byte
	deliver func([]byte)
}

// Send schedules data for delivery after the link latency. The payload
// is cloned at send time (the sender may reuse its buffer), and deliver
// runs in clock-event context at the delivery instant. Messages in
// flight when a partition cuts the link are held at their delivery
// instant and flushed, in order, when the link heals; messages sent
// while cut are held the same way. A link never reorders.
func (l *Link) Send(data []byte, deliver func([]byte)) {
	msg := heldMessage{data: append([]byte(nil), data...), deliver: deliver}
	l.nw.clock.ScheduleAfter(l.nw.latency, func() {
		if l.partitioned {
			l.held = append(l.held, msg)
			return
		}
		msg.deliver(msg.data)
	})
}

// heal restores the link and flushes held messages in send order.
func (l *Link) heal() {
	l.partitioned = false
	held := l.held
	l.held = nil
	for _, msg := range held {
		msg.deliver(msg.data)
	}
}
