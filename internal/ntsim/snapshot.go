package ntsim

import (
	"fmt"
	"runtime"
	"time"
)

// Resource accounting for leak oracles. A fault-injection campaign or
// conformance sweep creates thousands of kernels; a single leaked handle,
// process, or goroutine per run would bloat quickly. The snapshot API turns
// the ad-hoc checks the leak tests grew into reusable invariants: capture a
// baseline, run a kernel to completion, and assert the books balance.

// ResourceSnapshot captures one kernel's resource books at an instant.
type ResourceSnapshot struct {
	// LiveProcesses counts processes that started but have not terminated.
	LiveProcesses int
	// OpenHandles sums open handle-table entries over every process the
	// kernel ever created (terminated processes must hold zero).
	OpenHandles int
}

// Snapshot captures the kernel's current resource books.
func (k *Kernel) Snapshot() ResourceSnapshot {
	return ResourceSnapshot{
		LiveProcesses: k.liveProcs,
		OpenHandles:   k.OpenHandles(),
	}
}

// OpenHandles sums the open handle count over every process in the kernel's
// process table, live or terminated. Process finalization closes all
// handles, so a fully drained kernel reports zero.
func (k *Kernel) OpenHandles() int {
	n := 0
	for _, p := range k.procs {
		n += len(p.handles)
	}
	return n
}

// CheckDrained verifies the kernel has returned to baseline: no live
// processes and no open handles. Call it after KillAll.
func (k *Kernel) CheckDrained() error {
	s := k.Snapshot()
	if s.LiveProcesses != 0 {
		return fmt.Errorf("ntsim: %d live processes after drain", s.LiveProcesses)
	}
	if s.OpenHandles != 0 {
		return fmt.Errorf("ntsim: %d open handles after drain", s.OpenHandles)
	}
	return nil
}

// GoroutineBaseline records the current goroutine count, for pairing with
// AwaitGoroutineBaseline around a batch of kernel runs.
func GoroutineBaseline() int { return runtime.NumGoroutine() }

// goroutineSlack absorbs runtime-internal goroutines (GC workers, timer
// goroutines) that come and go independently of the simulation.
const goroutineSlack = 5

// AwaitGoroutineBaseline waits for the process's goroutine count to return
// to the captured baseline (plus a small runtime slack), yielding while
// terminated process goroutines finish unwinding. It returns an error if
// the count has not settled within patience.
func AwaitGoroutineBaseline(baseline int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+goroutineSlack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ntsim: goroutines grew from %d to %d and did not settle within %v",
				baseline, runtime.NumGoroutine(), patience)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
