package ntsim

// Named kernel objects (events, mutexes, semaphores) live in a kernel-wide
// namespace so that cooperating processes — e.g. a service and its
// fault-tolerance monitor — can open the same object by name.

// namedObjects lazily allocates the namespace map.
func (k *Kernel) namedObjects() map[string]any {
	if k.named == nil {
		k.named = make(map[string]any)
	}
	return k.named
}

// RegisterNamed publishes obj under name. If the name is taken, the existing
// object is returned with exists=true (CreateEvent/CreateMutex semantics).
func (k *Kernel) RegisterNamed(name string, obj any) (actual any, exists bool) {
	m := k.namedObjects()
	if cur, ok := m[name]; ok {
		return cur, true
	}
	m[name] = obj
	return obj, false
}

// LookupNamed finds a previously registered object.
func (k *Kernel) LookupNamed(name string) (any, bool) {
	obj, ok := k.namedObjects()[name]
	return obj, ok
}
