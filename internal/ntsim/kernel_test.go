package ntsim

import (
	"testing"
	"time"

	"ntdts/internal/vclock"
)

// runAll steps the kernel until fully idle, with a safety cap.
func runAll(t *testing.T, k *Kernel) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if !k.Step() {
			return
		}
	}
	t.Fatal("kernel did not go idle")
}

func mustSpawn(t *testing.T, k *Kernel, image, cmd string) *Process {
	t.Helper()
	p, err := k.Spawn(image, cmd, 0)
	if err != nil {
		t.Fatalf("Spawn(%s): %v", image, err)
	}
	return p
}

func checkNoPanics(t *testing.T, k *Kernel) {
	t.Helper()
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("unexpected simulated-code panics: %v", pan)
	}
}

func TestSpawnRunExit(t *testing.T) {
	k := NewKernel()
	ran := false
	k.RegisterImage("hello.exe", func(p *Process) uint32 {
		ran = true
		return 42
	})
	p := mustSpawn(t, k, "hello.exe", "")
	runAll(t, k)
	if !ran {
		t.Fatal("program did not run")
	}
	if !p.Terminated() || p.ExitCode() != 42 {
		t.Fatalf("terminated=%v exit=%d", p.Terminated(), p.ExitCode())
	}
	checkNoPanics(t, k)
}

func TestSpawnUnknownImage(t *testing.T) {
	k := NewKernel()
	if _, err := k.Spawn("nope.exe", "", 0); err != ErrFileNotFound {
		t.Fatalf("Spawn unknown image: %v, want ErrFileNotFound", err)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var woke vclock.Time
	k.RegisterImage("sleeper.exe", func(p *Process) uint32 {
		p.SleepFor(5 * time.Second)
		woke = k.Now()
		return 0
	})
	mustSpawn(t, k, "sleeper.exe", "")
	runAll(t, k)
	if woke != vclock.Time(5*time.Second) {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	checkNoPanics(t, k)
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	k := NewKernel()
	var order []string
	k.RegisterImage("a.exe", func(p *Process) uint32 {
		order = append(order, "a1")
		p.SleepFor(time.Second)
		order = append(order, "a2")
		return 0
	})
	k.RegisterImage("b.exe", func(p *Process) uint32 {
		order = append(order, "b1")
		p.SleepFor(2 * time.Second)
		order = append(order, "b2")
		return 0
	})
	mustSpawn(t, k, "a.exe", "")
	mustSpawn(t, k, "b.exe", "")
	runAll(t, k)
	want := []string{"a1", "b1", "a2", "b2"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	checkNoPanics(t, k)
}

func TestExitCodeViaExit(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("exiter.exe", func(p *Process) uint32 {
		p.Exit(7)
		return 0 // unreachable
	})
	p := mustSpawn(t, k, "exiter.exe", "")
	runAll(t, k)
	if p.ExitCode() != 7 {
		t.Fatalf("exit code %d, want 7", p.ExitCode())
	}
	checkNoPanics(t, k)
}

func TestAccessViolationKillsProcessOnly(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("crasher.exe", func(p *Process) uint32 {
		p.RaiseAccessViolation()
		return 0
	})
	k.RegisterImage("survivor.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		return 0
	})
	crasher := mustSpawn(t, k, "crasher.exe", "")
	survivor := mustSpawn(t, k, "survivor.exe", "")
	runAll(t, k)
	if crasher.ExitCode() != ExitAccessViolation {
		t.Fatalf("crasher exit 0x%X, want AV", crasher.ExitCode())
	}
	if survivor.ExitCode() != 0 {
		t.Fatalf("survivor exit %d, want 0", survivor.ExitCode())
	}
	checkNoPanics(t, k)
}

// TestProcessesListsSpawnHistory asserts the process-table snapshot the
// crash detector walks: every process ever spawned, live or terminated,
// in PID order.
func TestProcessesListsSpawnHistory(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("a.exe", func(p *Process) uint32 { return 0 })
	k.RegisterImage("b.exe", func(p *Process) uint32 {
		p.SleepFor(time.Hour)
		return 0
	})
	if len(k.Processes()) != 0 {
		t.Fatal("fresh kernel reports processes")
	}
	a := mustSpawn(t, k, "a.exe", "")
	b := mustSpawn(t, k, "b.exe", "")
	k.RunFor(time.Second) // a exits; b stays blocked
	procs := k.Processes()
	if len(procs) != 2 {
		t.Fatalf("%d processes, want 2 (terminated processes must be remembered)", len(procs))
	}
	if procs[0] != a || procs[1] != b {
		t.Fatalf("processes out of PID order: %v, %v", procs[0].ID, procs[1].ID)
	}
	if !procs[0].Terminated() || procs[1].Terminated() {
		t.Fatalf("states: a terminated=%v, b terminated=%v", procs[0].Terminated(), procs[1].Terminated())
	}
}

func TestTerminateBlockedProcess(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("waiter.exe", func(p *Process) uint32 {
		p.SleepFor(time.Hour)
		return 0
	})
	p := mustSpawn(t, k, "waiter.exe", "")
	k.RunFor(time.Second)
	if p.Terminated() {
		t.Fatal("terminated too early")
	}
	p.Terminate(ExitTerminated)
	runAll(t, k)
	if !p.Terminated() || p.ExitCode() != ExitTerminated {
		t.Fatalf("terminated=%v code=0x%X", p.Terminated(), p.ExitCode())
	}
	// The hour-long timer should not hold the simulation hostage: after
	// termination the wake event may remain but firing it is harmless.
	checkNoPanics(t, k)
}

func TestWaitForProcessExit(t *testing.T) {
	k := NewKernel()
	var childExitSeen uint32
	k.RegisterImage("child.exe", func(p *Process) uint32 {
		p.SleepFor(3 * time.Second)
		return 9
	})
	k.RegisterImage("parent.exe", func(p *Process) uint32 {
		child, err := k.Spawn("child.exe", "", p.ID)
		if err != nil {
			t.Errorf("spawn child: %v", err)
			return 1
		}
		h := p.NewHandle(child.Object())
		w, _ := p.ResolveWaitable(h)
		res := WaitOne(p, w, Infinite)
		if res != WaitObject0 {
			t.Errorf("wait result %d", res)
		}
		childExitSeen = child.ExitCode()
		return 0
	})
	mustSpawn(t, k, "parent.exe", "")
	runAll(t, k)
	if childExitSeen != 9 {
		t.Fatalf("parent saw child exit %d, want 9", childExitSeen)
	}
	checkNoPanics(t, k)
}

func TestWaitTimeout(t *testing.T) {
	k := NewKernel()
	ev := NewEvent("never", true, false)
	var res uint32
	var elapsed time.Duration
	k.RegisterImage("w.exe", func(p *Process) uint32 {
		start := k.Now()
		res = WaitOne(p, ev, 2000)
		elapsed = k.Now().Sub(start)
		return 0
	})
	mustSpawn(t, k, "w.exe", "")
	runAll(t, k)
	if res != WaitTimeout {
		t.Fatalf("wait result %#x, want WAIT_TIMEOUT", res)
	}
	if elapsed != 2*time.Second {
		t.Fatalf("timed out after %v, want 2s", elapsed)
	}
	checkNoPanics(t, k)
}

func TestAutoResetEventHandsSignalToOneWaiter(t *testing.T) {
	k := NewKernel()
	ev := NewEvent("e", false, false)
	woken := 0
	k.RegisterImage("w.exe", func(p *Process) uint32 {
		if WaitOne(p, ev, 5000) == WaitObject0 {
			woken++
		}
		return 0
	})
	k.RegisterImage("s.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		ev.Set()
		return 0
	})
	mustSpawn(t, k, "w.exe", "")
	mustSpawn(t, k, "w.exe", "")
	mustSpawn(t, k, "s.exe", "")
	runAll(t, k)
	if woken != 1 {
		t.Fatalf("auto-reset event woke %d waiters, want 1", woken)
	}
	checkNoPanics(t, k)
}

func TestManualResetEventWakesAll(t *testing.T) {
	k := NewKernel()
	ev := NewEvent("e", true, false)
	woken := 0
	k.RegisterImage("w.exe", func(p *Process) uint32 {
		if WaitOne(p, ev, Infinite) == WaitObject0 {
			woken++
		}
		return 0
	})
	k.RegisterImage("s.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		ev.Set()
		return 0
	})
	for i := 0; i < 3; i++ {
		mustSpawn(t, k, "w.exe", "")
	}
	mustSpawn(t, k, "s.exe", "")
	runAll(t, k)
	if woken != 3 {
		t.Fatalf("manual-reset event woke %d waiters, want 3", woken)
	}
	checkNoPanics(t, k)
}

func TestMutexMutualExclusionAndRecursion(t *testing.T) {
	k := NewKernel()
	m := NewMutex("m", nil)
	var inside, maxInside int
	body := func(p *Process) uint32 {
		if WaitOne(p, m, Infinite) != WaitObject0 {
			return 1
		}
		// Recursive acquire must succeed instantly.
		if WaitOne(p, m, 0) != WaitObject0 {
			return 2
		}
		m.Release(p)
		inside++
		if inside > maxInside {
			maxInside = inside
		}
		p.SleepFor(time.Second)
		inside--
		m.Release(p)
		return 0
	}
	k.RegisterImage("locker.exe", body)
	a := mustSpawn(t, k, "locker.exe", "")
	b := mustSpawn(t, k, "locker.exe", "")
	runAll(t, k)
	if a.ExitCode() != 0 || b.ExitCode() != 0 {
		t.Fatalf("exit codes %d %d", a.ExitCode(), b.ExitCode())
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d inside", maxInside)
	}
	checkNoPanics(t, k)
}

func TestMutexAbandonedOnOwnerDeath(t *testing.T) {
	k := NewKernel()
	m := NewMutex("m", nil)
	var res uint32
	k.RegisterImage("dier.exe", func(p *Process) uint32 {
		h := p.NewHandle(m)
		_ = h
		WaitOne(p, m, Infinite)
		p.SleepFor(time.Second)
		p.RaiseAccessViolation()
		return 0
	})
	k.RegisterImage("waiter.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond) // let dier acquire first
		res = WaitOne(p, m, Infinite)
		return 0
	})
	mustSpawn(t, k, "dier.exe", "")
	mustSpawn(t, k, "waiter.exe", "")
	runAll(t, k)
	if res != WaitAbandond {
		t.Fatalf("wait result %#x, want WAIT_ABANDONED", res)
	}
	checkNoPanics(t, k)
}

func TestSemaphoreCounts(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore("s", 2, 2)
	got := 0
	k.RegisterImage("taker.exe", func(p *Process) uint32 {
		if WaitOne(p, s, 0) == WaitObject0 {
			got++
		}
		return 0
	})
	for i := 0; i < 3; i++ {
		mustSpawn(t, k, "taker.exe", "")
	}
	runAll(t, k)
	if got != 2 {
		t.Fatalf("semaphore admitted %d, want 2", got)
	}
	if !s.ReleaseN(2) {
		t.Fatal("ReleaseN(2) failed")
	}
	if s.ReleaseN(1) {
		t.Fatal("ReleaseN beyond max succeeded")
	}
	checkNoPanics(t, k)
}

func TestWaitAnyReturnsIndex(t *testing.T) {
	k := NewKernel()
	e1 := NewEvent("e1", true, false)
	e2 := NewEvent("e2", true, false)
	var res uint32
	k.RegisterImage("w.exe", func(p *Process) uint32 {
		res = WaitAny(p, []Waitable{e1, e2}, Infinite)
		return 0
	})
	k.RegisterImage("s.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		e2.Set()
		return 0
	})
	mustSpawn(t, k, "w.exe", "")
	mustSpawn(t, k, "s.exe", "")
	runAll(t, k)
	if res != WaitObject0+1 {
		t.Fatalf("WaitAny result %d, want index 1", res)
	}
	checkNoPanics(t, k)
}

func TestKillAllTearsDownWorkload(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("forever.exe", func(p *Process) uint32 {
		for {
			p.SleepFor(time.Hour)
		}
	})
	for i := 0; i < 5; i++ {
		mustSpawn(t, k, "forever.exe", "")
	}
	k.RunFor(time.Second)
	if k.LiveProcesses() != 5 {
		t.Fatalf("live %d, want 5", k.LiveProcesses())
	}
	k.KillAll()
	if k.LiveProcesses() != 0 {
		t.Fatalf("live after KillAll %d, want 0", k.LiveProcesses())
	}
	checkNoPanics(t, k)
}

func TestUnexpectedPanicIsContained(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("buggy.exe", func(p *Process) uint32 {
		var m map[string]int
		m["boom"] = 1 // nil map write: genuine panic
		return 0
	})
	p := mustSpawn(t, k, "buggy.exe", "")
	runAll(t, k)
	if p.ExitCode() != ExitAccessViolation {
		t.Fatalf("buggy exit 0x%X, want AV", p.ExitCode())
	}
	if len(k.Panics()) != 1 {
		t.Fatalf("recorded panics: %v", k.Panics())
	}
}

func TestHandleTableCloseAndResolve(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("h.exe", func(p *Process) uint32 {
		ev := NewEvent("e", true, false)
		h := p.NewHandle(ev)
		if got := p.Resolve(h); got != ev {
			t.Error("Resolve returned wrong object")
		}
		if !p.CloseHandle(h) {
			t.Error("CloseHandle failed")
		}
		if p.Resolve(h) != nil {
			t.Error("Resolve after close returned object")
		}
		if p.CloseHandle(h) {
			t.Error("double CloseHandle succeeded")
		}
		if p.CloseHandle(Handle(0xDEAD)) {
			t.Error("CloseHandle of garbage succeeded")
		}
		return 0
	})
	mustSpawn(t, k, "h.exe", "")
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestRunRespectsDeadline(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.RegisterImage("ticker.exe", func(p *Process) uint32 {
		for i := 0; i < 100; i++ {
			p.SleepFor(time.Second)
			ticks++
		}
		return 0
	})
	mustSpawn(t, k, "ticker.exe", "")
	k.Run(vclock.Time(10500 * time.Millisecond))
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now().After(vclock.Time(10500 * time.Millisecond)) {
		t.Fatalf("clock overshot deadline: %v", k.Now())
	}
}

func TestChargeTimeAdvancesClock(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("cpu.exe", func(p *Process) uint32 {
		p.ChargeTime(750 * time.Millisecond)
		return 0
	})
	mustSpawn(t, k, "cpu.exe", "")
	runAll(t, k)
	if k.Now() != vclock.Time(750*time.Millisecond) {
		t.Fatalf("clock %v, want 750ms", k.Now())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (vclock.Time, uint32) {
		k := NewKernel()
		ev := NewEvent("sync", false, false)
		k.RegisterImage("ping.exe", func(p *Process) uint32 {
			for i := 0; i < 10; i++ {
				p.SleepFor(time.Duration(i) * 100 * time.Millisecond)
				ev.Set()
			}
			return 0
		})
		k.RegisterImage("pong.exe", func(p *Process) uint32 {
			n := uint32(0)
			for i := 0; i < 10; i++ {
				if WaitOne(p, ev, 30000) == WaitObject0 {
					n++
				}
			}
			return n
		})
		mustSpawn(t, k, "ping.exe", "")
		p := mustSpawn(t, k, "pong.exe", "")
		for k.Step() {
		}
		return k.Now(), p.ExitCode()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}

// TestPropertyWaitAnyIndex: whichever event is signaled first, WaitAny
// returns exactly that index, for any permutation of signal times.
func TestPropertyWaitAnyIndex(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		k := NewKernel()
		const n = 5
		events := make([]*Event, n)
		objs := make([]Waitable, n)
		for i := range events {
			events[i] = NewEvent("", true, false)
			objs[i] = events[i]
		}
		winner := trial % n
		var got uint32
		k.RegisterImage("w.exe", func(p *Process) uint32 {
			got = WaitAny(p, objs, Infinite)
			return 0
		})
		k.RegisterImage("s.exe", func(p *Process) uint32 {
			// The winner fires first; others fire later.
			p.SleepFor(time.Duration(1+winner) * 10 * time.Millisecond)
			events[winner].Set()
			p.SleepFor(time.Second)
			for i := range events {
				events[i].Set()
			}
			return 0
		})
		mustSpawn(t, k, "w.exe", "")
		mustSpawn(t, k, "s.exe", "")
		runAll(t, k)
		if got != WaitObject0+uint32(winner) {
			t.Fatalf("trial %d: WaitAny = %d, want index %d", trial, got, winner)
		}
		checkNoPanics(t, k)
	}
}

// TestEnvInheritedByChildren: CreateProcess children see the parent's
// simulated environment (the SCM injects per-service variables this way).
func TestEnvInheritedByChildren(t *testing.T) {
	k := NewKernel()
	var got string
	k.RegisterImage("child.exe", func(p *Process) uint32 {
		got = p.Env("FLAVOR")
		return 0
	})
	k.RegisterImage("parent.exe", func(p *Process) uint32 {
		p.SetEnv("FLAVOR", "vanilla")
		child, err := k.Spawn("child.exe", "child.exe", p.ID)
		if err != nil {
			return 1
		}
		WaitOne(p, child.Object(), Infinite)
		return 0
	})
	mustSpawn(t, k, "parent.exe", "")
	runAll(t, k)
	if got != "" {
		// Documented: the simulation does NOT inherit environments;
		// service configuration travels on command lines instead.
		t.Fatalf("environment unexpectedly inherited: %q", got)
	}
}
