package ntsim

import (
	"sort"
	"strings"
)

// Directory support for the VFS: directories are explicit entries so that
// CreateDirectoryA/RemoveDirectoryA behave like Win32, and FindFirstFileA-
// style wildcard enumeration works over both files and directories.

// dirs lazily allocates the directory set.
func (fs *VFS) dirSet() map[string]string {
	if fs.dirsByKey == nil {
		fs.dirsByKey = make(map[string]string)
	}
	return fs.dirsByKey
}

// MkDir creates a directory entry. Parent directories are implicit (the
// simulation does not enforce hierarchy existence, matching the loose VFS
// model used for files).
func (fs *VFS) MkDir(path string) Errno {
	key := normPath(path)
	if key == "" {
		return ErrInvalidName
	}
	if _, exists := fs.dirSet()[key]; exists {
		return ErrAlreadyExists
	}
	if fs.Exists(path) {
		return ErrAlreadyExists
	}
	fs.dirSet()[key] = strings.TrimRight(path, `\/`)
	return ErrSuccess
}

// DirExists reports whether a directory entry exists.
func (fs *VFS) DirExists(path string) bool {
	_, ok := fs.dirSet()[normPath(path)]
	return ok
}

// RmDir removes an empty directory.
func (fs *VFS) RmDir(path string) Errno {
	key := normPath(path)
	if _, ok := fs.dirSet()[key]; !ok {
		return ErrFileNotFound
	}
	prefix := key + `\`
	for fileKey := range fs.files {
		if strings.HasPrefix(fileKey, prefix) {
			return ErrBusy // directory not empty (ERROR_DIR_NOT_EMPTY stand-in)
		}
	}
	for dirKey := range fs.dirSet() {
		if strings.HasPrefix(dirKey, prefix) {
			return ErrBusy
		}
	}
	delete(fs.dirSet(), key)
	return ErrSuccess
}

// Rename moves a file to a new path.
func (fs *VFS) Rename(from, to string) Errno {
	fromKey, toKey := normPath(from), normPath(to)
	f, ok := fs.files[fromKey]
	if !ok {
		return ErrFileNotFound
	}
	if _, exists := fs.files[toKey]; exists {
		return ErrAlreadyExists
	}
	delete(fs.files, fromKey)
	if f.shared {
		// Snapshot-shared nodes are immutable; move a clone instead.
		c := f.clone()
		c.path = to
		fs.files[toKey] = c
		return ErrSuccess
	}
	f.path = to
	fs.files[toKey] = f
	return ErrSuccess
}

// Copy duplicates a file. failIfExists mirrors CopyFile's third argument.
func (fs *VFS) Copy(from, to string, failIfExists bool) Errno {
	data, ok := fs.ReadFile(from)
	if !ok {
		return ErrFileNotFound
	}
	if failIfExists && fs.Exists(to) {
		return ErrAlreadyExists
	}
	fs.WriteFile(to, data)
	return ErrSuccess
}

// matchComponent implements the DOS-style wildcard match used by
// FindFirstFile: '*' matches any run, '?' matches one character.
func matchComponent(pattern, name string) bool {
	p, n := 0, 0
	star, starN := -1, 0
	for n < len(name) {
		switch {
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == name[n]):
			p++
			n++
		case p < len(pattern) && pattern[p] == '*':
			star, starN = p, n
			p++
		case star >= 0:
			starN++
			p, n = star+1, starN
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// Find enumerates directory entries matching a wildcard pattern like
// `C:\logs\*.log`. Matching is case-insensitive on the final component.
// Results are original-case base names in sorted order.
func (fs *VFS) Find(pattern string) []string {
	norm := normPath(pattern)
	slash := strings.LastIndexByte(norm, '\\')
	if slash < 0 {
		return nil
	}
	dirKey, comp := norm[:slash], norm[slash+1:]
	if comp == "" {
		return nil
	}
	seen := make(map[string]string)
	consider := func(key, original string) {
		keySlash := strings.LastIndexByte(key, '\\')
		if keySlash < 0 || key[:keySlash] != dirKey {
			return
		}
		base := key[keySlash+1:]
		if matchComponent(comp, base) {
			origSlash := strings.LastIndexAny(original, `\/`)
			seen[base] = original[origSlash+1:]
		}
	}
	for key, f := range fs.files {
		consider(key, f.path)
	}
	for key, orig := range fs.dirSet() {
		consider(key, orig)
	}
	out := make([]string, 0, len(seen))
	for _, name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
