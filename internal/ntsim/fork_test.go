package ntsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ntdts/internal/telemetry"
)

// buildPrefix populates a kernel with a deterministic pseudo-random boot
// prefix: data files, directories, a tuned cost model, and program images.
// Used to fuzz snapshot-fork equivalence across many prefix shapes.
func buildPrefix(k *Kernel, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nFiles := 1 + rng.Intn(8)
	for i := 0; i < nFiles; i++ {
		data := make([]byte, rng.Intn(4096))
		rng.Read(data)
		k.VFS().WriteFile(fmt.Sprintf(`C:\data\file%d.bin`, i), data)
	}
	for i := 0; i < rng.Intn(3); i++ {
		k.VFS().MkDir(fmt.Sprintf(`C:\dirs\d%d`, i))
	}
	if rng.Intn(2) == 1 {
		costs := k.Costs()
		costs.IOPerKB *= time.Duration(1 + rng.Intn(3))
		k.SetCosts(costs)
	}
	k.RegisterImage("worker.exe", func(p *Process) uint32 {
		// Touch every subsystem a boot prefix feeds: read a file,
		// rewrite it, sleep, and burn CPU across quantum boundaries.
		// The image resolves the kernel through its process — a
		// snapshot-captured image runs on many forked kernels.
		of, errno := p.Kernel().VFS().Open(`C:\data\file0.bin`, GenericRead|GenericWrite, OpenAlways)
		if errno != ErrSuccess {
			return 1
		}
		buf := make([]byte, 64)
		of.Read(buf)
		of.SeekTo(0, FileBegin)
		of.Write([]byte("written by worker"))
		p.SleepFor(30 * time.Millisecond)
		p.ChargeTime(25 * time.Millisecond)
		return 0
	})
}

// runWorkload drives the registered worker image to completion and
// returns an observation tuple covering scheduler, clock, VFS and
// process state.
func runWorkload(t *testing.T, k *Kernel) (string, int64) {
	t.Helper()
	rec := telemetry.NewRecorder(1024)
	k.SetTelemetry(rec)
	p, err := k.Spawn("worker.exe", "worker.exe", 0)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	k.RunFor(10 * time.Second)
	if !p.Terminated() {
		t.Fatal("worker did not finish")
	}
	data, _ := k.VFS().ReadFile(`C:\data\file0.bin`)
	obs := fmt.Sprintf("exit=%d end=%s files=%v head=%q pending=%d",
		p.ExitCode(), p.EndTime(), k.VFS().List(), truncBytes(data, 32), k.Clock().Pending())
	return obs, rec.Counter(telemetry.CtrSchedQuanta)
}

func truncBytes(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

// TestForkMatchesFreshBoot fuzzes boot prefixes and checks that a forked
// kernel is observationally identical to a fresh kernel that re-executed
// the same prefix: same filesystem, same scheduling quanta, same exit
// state.
func TestForkMatchesFreshBoot(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		fresh := NewKernel()
		buildPrefix(fresh, seed)

		donor := NewKernel()
		buildPrefix(donor, seed)
		snap, err := donor.SnapshotPrefix()
		if err != nil {
			t.Fatalf("seed %d: snapshot: %v", seed, err)
		}
		forked := snap.Fork()

		wantObs, wantQuanta := runWorkload(t, fresh)
		gotObs, gotQuanta := runWorkload(t, forked)
		if gotObs != wantObs {
			t.Fatalf("seed %d: fork diverged:\n fresh: %s\n fork:  %s", seed, wantObs, gotObs)
		}
		if gotQuanta != wantQuanta {
			t.Fatalf("seed %d: quanta diverged: fresh %d fork %d", seed, wantQuanta, gotQuanta)
		}
		forked.KillAll()
		if !forked.Release() {
			t.Fatalf("seed %d: torn-down fork not releasable", seed)
		}
	}
}

// TestForkIsolation proves copy-on-write isolation: a fork's writes,
// truncations, renames and deletes never leak into the snapshot or into
// sibling forks.
func TestForkIsolation(t *testing.T) {
	donor := NewKernel()
	donor.VFS().WriteFile(`C:\shared.txt`, []byte("pristine"))
	donor.VFS().WriteFile(`C:\victim.txt`, []byte("victim"))
	donor.RegisterImage("noop.exe", func(p *Process) uint32 { return 0 })
	snap, err := donor.SnapshotPrefix()
	if err != nil {
		t.Fatal(err)
	}

	a, b := snap.Fork(), snap.Fork()

	// Mutate through every mutation path on fork a.
	of, errno := a.VFS().Open(`C:\shared.txt`, GenericRead|GenericWrite, OpenExisting)
	if errno != ErrSuccess {
		t.Fatal(errno)
	}
	of.Write([]byte("CLOBBERED"))
	of.Touch(42)
	if errno := a.VFS().Rename(`C:\victim.txt`, `C:\moved.txt`); errno != ErrSuccess {
		t.Fatal(errno)
	}
	if _, errno := a.VFS().Open(`C:\shared.txt`, GenericWrite, TruncateExisting); errno != ErrSuccess {
		t.Fatal(errno)
	}

	for name, k := range map[string]*Kernel{"sibling fork": b, "donor": donor} {
		if data, _ := k.VFS().ReadFile(`C:\shared.txt`); string(data) != "pristine" {
			t.Fatalf("%s saw mutation: %q", name, data)
		}
		if data, _ := k.VFS().ReadFile(`C:\victim.txt`); string(data) != "victim" {
			t.Fatalf("%s lost victim.txt: %q", name, data)
		}
		if k.VFS().Exists(`C:\moved.txt`) {
			t.Fatalf("%s saw foreign rename", name)
		}
	}
}

// TestForkOpenDescriptionAliasing checks that two open descriptions of
// one path inside a single fork still alias each other after the
// copy-on-write clone — the legacy single-kernel semantics.
func TestForkOpenDescriptionAliasing(t *testing.T) {
	donor := NewKernel()
	donor.VFS().WriteFile(`C:\log.txt`, []byte("0123456789"))
	snap, err := donor.SnapshotPrefix()
	if err != nil {
		t.Fatal(err)
	}
	k := snap.Fork()
	writer, errno := k.VFS().Open(`C:\log.txt`, GenericWrite, OpenExisting)
	if errno != ErrSuccess {
		t.Fatal(errno)
	}
	reader, errno := k.VFS().Open(`C:\log.txt`, GenericRead, OpenExisting)
	if errno != ErrSuccess {
		t.Fatal(errno)
	}
	writer.Write([]byte("AB"))
	buf := make([]byte, 10)
	n, _ := reader.Read(buf)
	if got := string(buf[:n]); got != "AB23456789" {
		t.Fatalf("reader does not alias writer's clone: %q", got)
	}
}

// TestSnapshotRequiresQuiescence enumerates the states that make a kernel
// uncapturable and checks each is rejected with a SnapshotError.
func TestSnapshotRequiresQuiescence(t *testing.T) {
	cases := []struct {
		name string
		prep func(k *Kernel)
	}{
		{"spawned process", func(k *Kernel) {
			k.RegisterImage("x.exe", func(p *Process) uint32 { return 0 })
			if _, err := k.Spawn("x.exe", "x.exe", 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"pending timer", func(k *Kernel) {
			k.Clock().ScheduleAfter(time.Second, func() {})
		}},
		{"named object", func(k *Kernel) {
			k.RegisterNamed("obj", struct{}{})
		}},
	}
	for _, tc := range cases {
		k := NewKernel()
		tc.prep(k)
		_, err := k.SnapshotPrefix()
		var se *SnapshotError
		if err == nil {
			t.Fatalf("%s: snapshot unexpectedly succeeded", tc.name)
		} else if !asSnapshotError(err, &se) {
			t.Fatalf("%s: error %v is not a *SnapshotError", tc.name, err)
		}
	}
}

func asSnapshotError(err error, target **SnapshotError) bool {
	se, ok := err.(*SnapshotError)
	if ok {
		*target = se
	}
	return ok
}

// TestKernelPoolReuseDeterministic checks that a released kernel, once
// reacquired, behaves exactly like a fresh one: same PIDs, handles, clock
// sequence, telemetry counters.
func TestKernelPoolReuseDeterministic(t *testing.T) {
	observe := func(k *Kernel) string {
		buildPrefix(k, 7)
		obs, quanta := runWorkload(t, k)
		return fmt.Sprintf("%s quanta=%d", obs, quanta)
	}

	fresh := observe(NewKernel())

	k := AcquireKernel()
	_ = observe(k) // dirty the kernel
	k.KillAll()
	if !k.Release() {
		t.Fatal("kernel not releasable after KillAll")
	}
	reused := AcquireKernel() // likely the same kernel back
	if got := observe(reused); got != fresh {
		t.Fatalf("pooled kernel diverged from fresh:\n fresh:  %s\n reused: %s", fresh, got)
	}
}

// TestReleaseRefusesLiveKernel: a kernel with live processes must not be
// pooled.
func TestReleaseRefusesLiveKernel(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("spin.exe", func(p *Process) uint32 {
		p.SleepFor(time.Hour)
		return 0
	})
	if _, err := k.Spawn("spin.exe", "spin.exe", 0); err != nil {
		t.Fatal(err)
	}
	k.RunFor(time.Second)
	if k.Release() {
		t.Fatal("Release accepted a kernel with a live process")
	}
	k.KillAll()
	if !k.Release() {
		t.Fatal("Release refused a drained kernel")
	}
}

// TestClockResetDeterminism: a reset clock schedules and fires events in
// exactly the order a fresh one does, including IDs.
func TestClockResetDeterminism(t *testing.T) {
	run := func(k *Kernel) []string {
		var fired []string
		ids := make([]any, 0, 3)
		for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
			i := i
			ids = append(ids, k.Clock().ScheduleAfter(d, func() { fired = append(fired, fmt.Sprintf("e%d", i)) }))
		}
		k.RunFor(time.Second)
		fired = append(fired, fmt.Sprintf("ids=%v", ids))
		return fired
	}
	k := NewKernel()
	first := run(k)
	k.Release()
	k2 := AcquireKernel()
	second := run(k2)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("reset clock diverged: %v vs %v", first, second)
	}
}

// TestForkedWriteDoesNotGrowSnapshot: writing in one fork must copy the
// node's bytes, not alias the shared backing array.
func TestForkedWriteDoesNotGrowSnapshot(t *testing.T) {
	donor := NewKernel()
	donor.VFS().WriteFile(`C:\f`, bytes.Repeat([]byte("x"), 100))
	snap, err := donor.SnapshotPrefix()
	if err != nil {
		t.Fatal(err)
	}
	k := snap.Fork()
	of, errno := k.VFS().Open(`C:\f`, GenericWrite, OpenExisting)
	if errno != ErrSuccess {
		t.Fatal(errno)
	}
	of.Write(bytes.Repeat([]byte("y"), 50))
	if data, _ := donor.VFS().ReadFile(`C:\f`); !bytes.Equal(data, bytes.Repeat([]byte("x"), 100)) {
		t.Fatal("fork write mutated snapshot bytes")
	}
}
