package ntsim

import (
	"bytes"
	"testing"
	"time"
)

const testPipePath = `\\.\pipe\svc`

func TestPipeEcho(t *testing.T) {
	k := NewKernel()
	var got []byte
	k.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, errno := k.CreatePipeServer(testPipePath)
		if errno != ErrSuccess {
			t.Errorf("CreatePipeServer: %v", errno)
			return 1
		}
		if errno := ps.Listen(p); errno != ErrSuccess {
			t.Errorf("Listen: %v", errno)
			return 1
		}
		buf := make([]byte, 64)
		n, errno := ps.Read(p, buf)
		if errno != ErrSuccess {
			t.Errorf("server Read: %v", errno)
			return 1
		}
		if _, errno := ps.Write(bytes.ToUpper(buf[:n])); errno != ErrSuccess {
			t.Errorf("server Write: %v", errno)
			return 1
		}
		// Disconnect discards unread bytes (Win32 semantics): drain first.
		if errno := ps.Flush(p); errno != ErrSuccess {
			t.Errorf("server Flush: %v", errno)
		}
		ps.Disconnect()
		return 0
	})
	k.RegisterImage("client.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond) // let the server listen first
		pc, errno := k.ConnectPipeClient(testPipePath)
		if errno != ErrSuccess {
			t.Errorf("ConnectPipeClient: %v", errno)
			return 1
		}
		if _, errno := pc.Write([]byte("hello")); errno != ErrSuccess {
			t.Errorf("client Write: %v", errno)
			return 1
		}
		buf := make([]byte, 64)
		n, errno := pc.Read(p, buf)
		if errno != ErrSuccess {
			t.Errorf("client Read: %v", errno)
			return 1
		}
		got = append([]byte(nil), buf[:n]...)
		return 0
	})
	mustSpawn(t, k, "server.exe", "")
	mustSpawn(t, k, "client.exe", "")
	runAll(t, k)
	if string(got) != "HELLO" {
		t.Fatalf("echo got %q", got)
	}
	checkNoPanics(t, k)
}

func TestPipeClientBeforeServerListen(t *testing.T) {
	// A client may connect to a created instance before the server calls
	// ConnectNamedPipe; the server's Listen then returns ERROR_PIPE_CONNECTED.
	k := NewKernel()
	var listenErr Errno
	k.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, _ := k.CreatePipeServer(testPipePath)
		p.SleepFor(time.Second) // client connects during this window
		listenErr = ps.Listen(p)
		return 0
	})
	k.RegisterImage("client.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond)
		if _, errno := k.ConnectPipeClient(testPipePath); errno != ErrSuccess {
			t.Errorf("connect: %v", errno)
		}
		return 0
	})
	mustSpawn(t, k, "server.exe", "")
	mustSpawn(t, k, "client.exe", "")
	runAll(t, k)
	if listenErr != ErrPipeConnected {
		t.Fatalf("Listen = %v, want ERROR_PIPE_CONNECTED", listenErr)
	}
	checkNoPanics(t, k)
}

func TestPipeConnectNoInstance(t *testing.T) {
	k := NewKernel()
	var errno Errno
	k.RegisterImage("client.exe", func(p *Process) uint32 {
		_, errno = k.ConnectPipeClient(`\\.\pipe\nothing`)
		return 0
	})
	mustSpawn(t, k, "client.exe", "")
	runAll(t, k)
	if errno != ErrFileNotFound {
		t.Fatalf("connect to missing pipe: %v", errno)
	}
}

func TestPipeBusyWhenAllInstancesConnected(t *testing.T) {
	k := NewKernel()
	var second Errno
	k.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, _ := k.CreatePipeServer(testPipePath)
		ps.Listen(p)
		p.SleepFor(time.Hour) // hold the only instance
		return 0
	})
	k.RegisterImage("clients.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond)
		if _, errno := k.ConnectPipeClient(testPipePath); errno != ErrSuccess {
			t.Errorf("first connect: %v", errno)
		}
		_, second = k.ConnectPipeClient(testPipePath)
		return 0
	})
	srv := mustSpawn(t, k, "server.exe", "")
	mustSpawn(t, k, "clients.exe", "")
	k.RunFor(2 * time.Second)
	if second != ErrPipeBusy {
		t.Fatalf("second connect: %v, want ERROR_PIPE_BUSY", second)
	}
	srv.Terminate(ExitTerminated)
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestPipeServerDeathBreaksClientRead(t *testing.T) {
	k := NewKernel()
	var readErr Errno
	k.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, _ := k.CreatePipeServer(testPipePath)
		p.NewHandle(ps) // handle cleanup on death must break the pipe
		ps.Listen(p)
		p.SleepFor(time.Second)
		p.RaiseAccessViolation() // server crashes mid-conversation
		return 0
	})
	k.RegisterImage("client.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond)
		pc, errno := k.ConnectPipeClient(testPipePath)
		if errno != ErrSuccess {
			t.Errorf("connect: %v", errno)
			return 1
		}
		buf := make([]byte, 16)
		_, readErr = pc.Read(p, buf)
		return 0
	})
	mustSpawn(t, k, "server.exe", "")
	mustSpawn(t, k, "client.exe", "")
	runAll(t, k)
	if readErr != ErrBrokenPipe {
		t.Fatalf("client read after server death: %v, want ERROR_BROKEN_PIPE", readErr)
	}
	checkNoPanics(t, k)
}

func TestPipeClientCloseGivesServerEOFAfterDrain(t *testing.T) {
	k := NewKernel()
	var first, second Errno
	var data []byte
	k.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, _ := k.CreatePipeServer(testPipePath)
		ps.Listen(p)
		p.SleepFor(2 * time.Second) // let client write and close
		buf := make([]byte, 16)
		var n int
		n, first = ps.Read(p, buf)
		data = append([]byte(nil), buf[:n]...)
		_, second = ps.Read(p, buf)
		return 0
	})
	k.RegisterImage("client.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond)
		pc, _ := k.ConnectPipeClient(testPipePath)
		pc.Write([]byte("bye"))
		pc.closeClient()
		return 0
	})
	mustSpawn(t, k, "server.exe", "")
	mustSpawn(t, k, "client.exe", "")
	runAll(t, k)
	if first != ErrSuccess || string(data) != "bye" {
		t.Fatalf("drain read: %v %q", first, data)
	}
	if second != ErrBrokenPipe {
		t.Fatalf("post-drain read: %v, want ERROR_BROKEN_PIPE", second)
	}
	checkNoPanics(t, k)
}

func TestPipeDisconnectAndReaccept(t *testing.T) {
	k := NewKernel()
	served := 0
	k.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, _ := k.CreatePipeServer(testPipePath)
		for i := 0; i < 2; i++ {
			if errno := ps.Listen(p); errno != ErrSuccess && errno != ErrPipeConnected {
				t.Errorf("listen %d: %v", i, errno)
				return 1
			}
			buf := make([]byte, 8)
			if _, errno := ps.Read(p, buf); errno != ErrSuccess {
				t.Errorf("read %d: %v", i, errno)
				return 1
			}
			served++
			ps.Disconnect()
		}
		return 0
	})
	k.RegisterImage("client.exe", func(p *Process) uint32 {
		pc, errno := k.ConnectPipeClient(testPipePath)
		if errno != ErrSuccess {
			t.Errorf("connect: %v", errno)
			return 1
		}
		pc.Write([]byte("x"))
		p.SleepFor(500 * time.Millisecond)
		return 0
	})
	mustSpawn(t, k, "server.exe", "")
	c1 := mustSpawn(t, k, "client.exe", "")
	k.RunFor(time.Second)
	if c1.ExitCode() != 0 {
		t.Fatalf("client1 exit %d", c1.ExitCode())
	}
	mustSpawn(t, k, "client.exe", "")
	runAll(t, k)
	if served != 2 {
		t.Fatalf("served %d clients, want 2", served)
	}
	checkNoPanics(t, k)
}

func TestPipeAvailable(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("probe.exe", func(p *Process) uint32 {
		if _, errno := k.PipeAvailable(`\\.\pipe\none`); errno != ErrFileNotFound {
			t.Errorf("missing pipe: %v", errno)
		}
		ps, _ := k.CreatePipeServer(testPipePath)
		if ok, _ := k.PipeAvailable(testPipePath); !ok {
			t.Error("fresh instance not available")
		}
		_ = ps.acceptClient()
		if ok, _ := k.PipeAvailable(testPipePath); ok {
			t.Error("connected instance reported available")
		}
		return 0
	})
	mustSpawn(t, k, "probe.exe", "")
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestPipeNameValidation(t *testing.T) {
	k := NewKernel()
	if _, errno := k.CreatePipeServer(`C:\notapipe`); errno != ErrInvalidName {
		t.Fatalf("bad name: %v", errno)
	}
	if _, errno := k.CreatePipeServer(`\\.\pipe\`); errno != ErrInvalidName {
		t.Fatalf("empty name: %v", errno)
	}
	if !IsPipePath(`\\.\PIPE\Upper`) {
		t.Fatal("IsPipePath should be case-insensitive")
	}
	if IsPipePath(`C:\file.txt`) {
		t.Fatal("IsPipePath matched a file path")
	}
}
