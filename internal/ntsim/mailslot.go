package ntsim

import (
	"strings"
	"time"
)

// Mailslots: the Win32 one-way datagram IPC. A server creates a mailslot
// and reads whole messages from it; any number of writers open the
// \\.\mailslot\ path and each WriteFile delivers one message. Unlike
// pipes, reads are message-oriented and writers are connectionless.

// Mailslot is the server end of a mailslot.
type Mailslot struct {
	k        *Kernel
	Name     string
	messages [][]byte
	reader   *Process
	closed   bool
	// readTimeoutMS follows the Win32 contract: 0 polls, MAILSLOT_WAIT_FOREVER
	// (0xFFFFFFFF) blocks.
	readTimeoutMS uint32
}

// MailslotClient is a write-only client binding to a mailslot.
type MailslotClient struct {
	slot *Mailslot
}

// MailslotWaitForever mirrors MAILSLOT_WAIT_FOREVER.
const MailslotWaitForever uint32 = 0xFFFFFFFF

// normalizeMailslotName strips \\.\mailslot\ and lowercases.
func normalizeMailslotName(path string) (string, bool) {
	low := strings.ToLower(strings.ReplaceAll(path, "/", `\`))
	const prefix = `\\.\mailslot\`
	if !strings.HasPrefix(low, prefix) {
		return "", false
	}
	name := low[len(prefix):]
	if name == "" {
		return "", false
	}
	return name, true
}

// IsMailslotPath reports whether a path names the mailslot namespace.
func IsMailslotPath(path string) bool {
	_, ok := normalizeMailslotName(path)
	return ok
}

// mailslots lazily allocates the namespace.
func (k *Kernel) mailslots() map[string]*Mailslot {
	if k.slots == nil {
		k.slots = make(map[string]*Mailslot)
	}
	return k.slots
}

// CreateMailslot creates the server end. One server per name.
func (k *Kernel) CreateMailslot(path string, readTimeoutMS uint32) (*Mailslot, Errno) {
	name, ok := normalizeMailslotName(path)
	if !ok {
		return nil, ErrInvalidName
	}
	if _, exists := k.mailslots()[name]; exists {
		return nil, ErrAlreadyExists
	}
	ms := &Mailslot{k: k, Name: name, readTimeoutMS: readTimeoutMS}
	k.mailslots()[name] = ms
	return ms, ErrSuccess
}

// OpenMailslot binds a write-only client.
func (k *Kernel) OpenMailslot(path string) (*MailslotClient, Errno) {
	name, ok := normalizeMailslotName(path)
	if !ok {
		return nil, ErrInvalidName
	}
	ms, exists := k.mailslots()[name]
	if !exists || ms.closed {
		return nil, ErrFileNotFound
	}
	return &MailslotClient{slot: ms}, ErrSuccess
}

// Write delivers one message.
func (c *MailslotClient) Write(data []byte) (int, Errno) {
	ms := c.slot
	if ms == nil || ms.closed {
		return 0, ErrInvalidHandle
	}
	msg := make([]byte, len(data))
	copy(msg, data)
	ms.messages = append(ms.messages, msg)
	if ms.reader != nil {
		r := ms.reader
		ms.reader = nil
		ms.k.wake(r, WaitObject0, ErrSuccess)
	}
	return len(data), ErrSuccess
}

// Read removes the oldest message. With no message pending it blocks per
// the slot's read timeout (ErrSemTimeout on expiry). A message longer than
// buf fails with ErrInsufficientBuffer and stays queued.
func (ms *Mailslot) Read(p *Process, buf []byte) (int, Errno) {
	if ms.closed {
		return 0, ErrInvalidHandle
	}
	for len(ms.messages) == 0 {
		if ms.readTimeoutMS == 0 {
			return 0, ErrSemTimeout
		}
		if ms.reader != nil {
			return 0, ErrBusy
		}
		ms.reader = p
		p.waitCancel = func() { ms.reader = nil }
		if ms.readTimeoutMS != MailslotWaitForever {
			deadline := ms.readTimeoutMS
			k := ms.k
			timer := k.clock.ScheduleAfter(msToDuration(deadline), func() {
				if ms.reader == p {
					ms.reader = nil
					k.wake(p, WaitTimeout, ErrSemTimeout)
				}
			})
			_, errno := p.block()
			k.clock.Cancel(timer)
			if errno != ErrSuccess {
				return 0, errno
			}
		} else {
			if _, errno := p.block(); errno != ErrSuccess {
				return 0, errno
			}
		}
	}
	msg := ms.messages[0]
	if len(msg) > len(buf) {
		return 0, ErrInsufficientBuffer
	}
	ms.messages = ms.messages[1:]
	copy(buf, msg)
	return len(msg), ErrSuccess
}

// Info reports (next message size or MailslotWaitForever when empty,
// message count).
func (ms *Mailslot) Info() (nextSize uint32, count uint32) {
	if len(ms.messages) == 0 {
		return MailslotWaitForever, 0 // MAILSLOT_NO_MESSAGE
	}
	return uint32(len(ms.messages[0])), uint32(len(ms.messages))
}

// SetReadTimeout updates the slot's read timeout.
func (ms *Mailslot) SetReadTimeout(ms2 uint32) { ms.readTimeoutMS = ms2 }

// closeSlot tears the slot down.
func (ms *Mailslot) closeSlot() {
	if ms.closed {
		return
	}
	ms.closed = true
	if ms.reader != nil {
		r := ms.reader
		ms.reader = nil
		ms.k.wake(r, WaitFailed, ErrInvalidHandle)
	}
	delete(ms.k.mailslots(), ms.Name)
}

func msToDuration(ms uint32) time.Duration { return time.Duration(ms) * time.Millisecond }
