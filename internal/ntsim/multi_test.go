package ntsim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// runMachine steps the machine until fully idle, with a safety cap.
func runMachine(t *testing.T, m *Machine) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if !m.Step() {
			return
		}
	}
	t.Fatal("machine did not go idle")
}

// TestMachineGlobalFIFO: processes on different kernels share one
// machine-wide ready ring, so they interleave in strict spawn/requeue
// order — exactly one process runs at any instant machine-wide.
func TestMachineGlobalFIFO(t *testing.T) {
	m := NewMachine()
	k1, k2 := m.AddKernel(), m.AddKernel()
	var order []string
	worker := func(name string) func(*Process) uint32 {
		return func(p *Process) uint32 {
			for i := 0; i < 3; i++ {
				order = append(order, fmt.Sprintf("%s%d", name, i))
				p.Yield()
			}
			return 0
		}
	}
	k1.RegisterImage("a.exe", worker("a"))
	k2.RegisterImage("b.exe", worker("b"))
	mustSpawn(t, k1, "a.exe", "")
	mustSpawn(t, k2, "b.exe", "")
	runMachine(t, m)
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("interleaving %v, want %v", order, want)
	}
	checkNoPanics(t, k1)
	checkNoPanics(t, k2)
}

// TestMachineSharedClock: kernels added to one machine run on a single
// clock — a sleep on one kernel advances time for all of them.
func TestMachineSharedClock(t *testing.T) {
	m := NewMachine()
	k1, k2 := m.AddKernel(), m.AddKernel()
	if k1.Clock() != k2.Clock() || k1.Clock() != m.Clock() {
		t.Fatal("machine kernels must share one clock")
	}
	var k2Saw time.Duration
	k1.RegisterImage("sleeper.exe", func(p *Process) uint32 {
		p.SleepFor(5 * time.Second)
		return 0
	})
	k2.RegisterImage("watcher.exe", func(p *Process) uint32 {
		p.SleepFor(6 * time.Second)
		k2Saw = time.Duration(k2.Now())
		return 0
	})
	mustSpawn(t, k1, "sleeper.exe", "")
	mustSpawn(t, k2, "watcher.exe", "")
	runMachine(t, m)
	if k2Saw < 6*time.Second {
		t.Fatalf("kernel 2 saw %v, want >= 6s on the shared clock", k2Saw)
	}
	if k1.Now() != k2.Now() {
		t.Fatalf("clocks diverged: %v vs %v", k1.Now(), k2.Now())
	}
}

// TestMachineCrossKernelPipeWake: a process on one kernel blocked reading
// a pipe served on another kernel must wake on its own kernel's ring when
// the peer writes — the cross-node client/server path of a cluster run.
func TestMachineCrossKernelPipeWake(t *testing.T) {
	m := NewMachine()
	serverK, clientK := m.AddKernel(), m.AddKernel()
	const path = `\\.\pipe\xnode`
	var got string
	serverK.RegisterImage("server.exe", func(p *Process) uint32 {
		ps, errno := serverK.CreatePipeServer(path)
		if errno != ErrSuccess {
			t.Errorf("CreatePipeServer: %v", errno)
			return 1
		}
		if errno := ps.Listen(p); errno != ErrSuccess {
			t.Errorf("Listen: %v", errno)
			return 1
		}
		// The client is already blocked in Read by now; this write must
		// wake it on the client kernel.
		p.SleepFor(time.Second)
		if _, errno := ps.Write([]byte("ping")); errno != ErrSuccess {
			t.Errorf("server Write: %v", errno)
			return 1
		}
		return 0
	})
	clientK.RegisterImage("client.exe", func(p *Process) uint32 {
		p.SleepFor(100 * time.Millisecond) // let the server listen first
		pc, errno := serverK.ConnectPipeClient(path)
		if errno != ErrSuccess {
			t.Errorf("ConnectPipeClient: %v", errno)
			return 1
		}
		buf := make([]byte, 16)
		n, errno := pc.Read(p, buf) // blocks until the server's write
		if errno != ErrSuccess {
			t.Errorf("client Read: %v", errno)
			return 1
		}
		got = string(buf[:n])
		return 0
	})
	mustSpawn(t, serverK, "server.exe", "")
	mustSpawn(t, clientK, "client.exe", "")
	runMachine(t, m)
	if got != "ping" {
		t.Fatalf("cross-kernel read got %q, want %q", got, "ping")
	}
	checkNoPanics(t, serverK)
	checkNoPanics(t, clientK)
}

// TestForkIntoMachine: every node of a machine can fork from one boot
// prefix; the first fork positions the shared clock at the snapshot
// instant and the forks behave like independently booted kernels.
func TestForkIntoMachine(t *testing.T) {
	donor := NewKernel()
	donor.RegisterImage("svc.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		return 0
	})
	// A snapshot captures the pre-spawn instant: images registered, clock
	// advanced through boot, no processes live.
	donor.Clock().Advance(time.Second)
	snap, err := donor.SnapshotPrefix()
	if err != nil {
		t.Fatal(err)
	}

	m := NewMachine()
	k1 := snap.ForkInto(m)
	k2 := snap.ForkInto(m)
	if m.Now() != donor.Now() {
		t.Fatalf("machine clock at %v, want snapshot instant %v", m.Now(), donor.Now())
	}
	ran := 0
	for _, k := range []*Kernel{k1, k2} {
		if _, err := k.Spawn("svc.exe", "", 0); err != nil {
			t.Fatalf("fork lost the registered image: %v", err)
		}
		ran++
	}
	runMachine(t, m)
	if ran != 2 {
		t.Fatalf("spawned %d, want 2", ran)
	}
	for i, k := range []*Kernel{k1, k2} {
		for _, p := range k.Processes() {
			if !p.Terminated() {
				t.Fatalf("fork %d process %d never finished", i, p.ID)
			}
		}
		checkNoPanics(t, k)
	}
}

// TestMachineKillAll terminates every process on every kernel, including
// parked sleepers, and drains the ready ring.
func TestMachineKillAll(t *testing.T) {
	m := NewMachine()
	k1, k2 := m.AddKernel(), m.AddKernel()
	for _, k := range []*Kernel{k1, k2} {
		k.RegisterImage("sleeper.exe", func(p *Process) uint32 {
			p.SleepFor(24 * time.Hour)
			return 0
		})
		mustSpawn(t, k, "sleeper.exe", "")
	}
	// Let both processes park in their sleeps.
	for i := 0; i < 4 && m.Step(); i++ {
	}
	m.KillAll()
	for i, k := range []*Kernel{k1, k2} {
		for _, p := range k.Processes() {
			if !p.Terminated() {
				t.Fatalf("kernel %d process %d survived KillAll", i, p.ID)
			}
		}
	}
}
