package win32

import "sync"

// The KERNEL32 export catalog drives fault-list generation exactly the way
// the paper's tool walked the real DLL's export table: 681 exported
// functions, of which 130 take no parameters and are therefore not
// candidates for parameter corruption, leaving 551 injectable functions
// (paper §4).
//
// Function names are real KERNEL32 exports of the NT 4.0 era. Parameter
// counts are taken from the Win32 API for the functions this simulation
// implements (a test cross-checks them against the live dispatch path) and
// are best-effort approximations elsewhere; the zero-parameter set is
// completed to the paper's census of 130 (see EXPERIMENTS.md, "catalog
// calibration").

// CatalogEntry describes one exported function.
type CatalogEntry struct {
	Name   string
	Params int
}

// catalogGroup is a parameter count shared by a list of exports.
type catalogGroup struct {
	params int
	names  []string
}

var catalogGroups = []catalogGroup{
	// ---- Functions with no parameters (not injectable) ----
	{0, []string{
		"GetLastError", "GetVersion", "GetCurrentProcess", "GetCurrentProcessId",
		"GetCurrentThread", "GetCurrentThreadId", "GetTickCount", "GetCommandLineA",
		"GetCommandLineW", "GetProcessHeap", "GetACP", "GetOEMCP",
		"GetLogicalDrives", "GetSystemDefaultLangID", "GetSystemDefaultLCID",
		"GetUserDefaultLangID", "GetUserDefaultLCID", "AreFileApisANSI",
		"SetFileApisToANSI", "SetFileApisToOEM", "AllocConsole", "FreeConsole",
		"GetConsoleCP", "GetConsoleOutputCP", "TlsAlloc", "GetEnvironmentStrings",
		"GetEnvironmentStringsA", "GetEnvironmentStringsW", "SwitchToThread",
		"DebugBreak", "IsDebuggerPresent", "GetThreadLocale",
		"CloseProfileUserMapping", "OpenProfileUserMapping", "ExitVDM",
		"GetDefaultCommConfigA", "HeapValidateAll", "GetNextVDMCommand",
		"ReleaseLastVDMCommand", "BaseAttachCompleteThunk", "CmdBatNotification",
		"GetVDMCurrentDirectories", "RegisterWowBaseHandlers", "RegisterWowExec",
		"SetVDMCurrentDirectories", "TrimVirtualBuffer", "VDMConsoleOperation",
		"VDMOperationStarted", "VirtualBufferExceptionHandler", "WowGetModuleHandle",
		"GetCalendarWeekNumber", "BasepDebugDump", "CreateVirtualBuffer",
		"ExtendVirtualBuffer", "FreeVirtualBuffer", "HeapUsage", "HeapSummary",
		"HeapExtend", "GetSystemPowerStatus", "SetSystemPowerState",
		"GetConsoleHardwareState", "SetConsoleHardwareState", "GetConsoleDisplayMode",
		"SetConsoleDisplayMode", "GetConsoleFontSize", "GetCurrentConsoleFont",
		"GetNumberOfConsoleFonts", "SetConsoleFont", "GetConsoleInputWaitHandle",
		"VerifyConsoleIoHandle", "CloseConsoleHandle", "DuplicateConsoleHandle",
		"GetConsoleInputExeNameA", "GetConsoleInputExeNameW", "SetConsoleInputExeNameA",
		"SetConsoleInputExeNameW", "ConsoleMenuControl", "ShowConsoleCursor",
		"InvalidateConsoleDIBits", "SetConsoleCursor", "SetConsoleIcon",
		"SetConsoleMaximumWindowSize", "SetConsoleMenuClose", "SetConsolePalette",
		"SetLastConsoleEventActive", "GetConsoleKeyboardLayoutNameA",
		"GetConsoleKeyboardLayoutNameW", "SetConsoleKeyShortcuts",
		"ExpungeConsoleCommandHistoryA", "ExpungeConsoleCommandHistoryW",
		"GetConsoleAliasExesLengthA", "GetConsoleAliasExesLengthW",
		"GetConsoleCommandHistoryLengthA", "GetConsoleCommandHistoryLengthW",
		"BaseInitAppcompatCache", "BaseFlushAppcompatCache", "BaseDumpAppcompatCache",
		"BaseUpdateAppcompatCache", "BaseCheckAppcompatCache", "NlsGetCacheUpdateCount",
		"NlsResetProcessLocale", "NlsConvertIntegerToString", "GetNlsSectionName",
		"ValidateLocale", "ValidateLCType", "GetUserDefaultUILanguage",
		"GetSystemDefaultUILanguage", "GetProcessVersion",
		"BaseQueryModuleData", "DosPathToSessionPathA", "DosPathToSessionPathW",
		"BaseProcessInitPostImport", "UTRegister", "UTUnRegister",
		"WinExecError", "DisableThreadLibraryCalls0", "HeapResetPeak",
		"GetErrorMode", "QueryWin31IniFilesMappedToRegistry", "GetConsoleCharType",
		"GetVDMConsoleHandle", "RegisterConsoleVDM", "SetConsoleLocalEUDC",
		"RegisterConsoleOS2", "SetConsoleOS2OemFormat", "GetConsoleNlsMode",
		"SetConsoleNlsMode", "W32PoolLimit", "GetBinaryTypeStub", "NumaQueryNode",
	}},
	// ---- One-parameter functions ----
	{1, []string{
		"CloseHandle", "DeleteFileA", "DeleteFileW", "GetFileAttributesA",
		"GetFileAttributesW", "FlushFileBuffers", "ExitProcess", "ExitThread",
		"Sleep", "SetLastError", "GetStartupInfoA", "GetStartupInfoW",
		"GetModuleHandleA", "GetModuleHandleW", "LoadLibraryA", "LoadLibraryW",
		"FreeLibrary", "GetStdHandle", "GetSystemInfo", "GetSystemTime",
		"GetLocalTime", "GetSystemTimeAsFileTime", "QueryPerformanceCounter",
		"QueryPerformanceFrequency", "SetEvent", "ResetEvent", "PulseEvent",
		"ReleaseMutex", "InitializeCriticalSection", "EnterCriticalSection",
		"LeaveCriticalSection", "DeleteCriticalSection", "TryEnterCriticalSection",
		"InterlockedIncrement", "InterlockedDecrement", "DisconnectNamedPipe",
		"TlsFree", "TlsGetValue", "GetFileType", "SetHandleCount",
		"GlobalMemoryStatus", "HeapDestroy", "LocalFree", "GlobalFree",
		"lstrlenA", "lstrlenW", "OutputDebugStringA", "OutputDebugStringW",
		"GetVersionExA", "GetVersionExW", "GetDriveTypeA", "GetDriveTypeW",
		"SetErrorMode", "SetCurrentDirectoryA", "SetCurrentDirectoryW",
		"RemoveDirectoryA", "RemoveDirectoryW",
		"FindClose", "FindCloseChangeNotification", "GlobalLock", "GlobalUnlock",
		"LocalLock", "LocalUnlock", "GlobalSize", "LocalSize", "GlobalFlags",
		"LocalFlags", "GlobalHandle", "LocalHandle", "GlobalFix", "GlobalUnfix",
		"GlobalWire", "GlobalUnWire", "LockResource", "SizeofResource1",
		"FreeResource", "SetThreadLocale", "GetExitCodeThread", "SuspendThread",
		"ResumeThread", "GetThreadPriority", "GetPriorityClass",
		"SetConsoleActiveScreenBuffer", "FlushConsoleInputBuffer",
		"GetNumberOfConsoleInputEvents", "GetConsoleScreenBufferInfo",
		"SetConsoleCP", "SetConsoleOutputCP", "SetConsoleTitleA", "SetConsoleTitleW",
		"CancelIo", "DeleteAtom", "GlobalDeleteAtom",
		"AddAtomA", "AddAtomW", "GlobalAddAtomA", "GlobalAddAtomW",
		"FindAtomA", "FindAtomW", "GlobalFindAtomA", "GlobalFindAtomW",
		"IsValidCodePage", "IsValidLocale1", "ConvertDefaultLocale",
		"GetTimeZoneInformation", "LocalCompact", "GlobalCompact", "SetThreadAffinityMask1",
		"FatalExit", "CloseProfileSection", "FreeEnvironmentStringsA",
		"FreeEnvironmentStringsW", "IsBadCodePtr", "UnhandledExceptionFilter",
		"SetUnhandledExceptionFilter", "RaiseExceptionStub", "GetLogicalDriveStringsA1",
		"DeleteFiber", "ConvertThreadToFiber", "SwitchToFiber", "HeapLock",
		"HeapUnlock", "HeapCompact1", "GetThreadTimes1", "GetProcessAffinityMask1",
		"GetFileSize1", "GetOverlappedResult1",
		"GetMailslotInfo1", "GetCompressedFileSizeA1",
	}},
	// ---- Two-parameter functions ----
	{2, []string{
		"GetFileSize", "GetExitCodeProcess", "TerminateProcess", "WaitForSingleObject",
		"ConnectNamedPipe", "WaitNamedPipeA", "WaitNamedPipeW", "SetEnvironmentVariableA",
		"SetEnvironmentVariableW", "GetCPInfo", "GetComputerNameA", "GetComputerNameW",
		"GetSystemDirectoryA", "GetSystemDirectoryW", "GetWindowsDirectoryA",
		"GetWindowsDirectoryW", "GetTempPathA", "GetTempPathW", "GetCurrentDirectoryA",
		"GetCurrentDirectoryW", "lstrcpyA", "lstrcpyW", "lstrcatA", "lstrcatW",
		"lstrcmpA", "lstrcmpW", "lstrcmpiA", "lstrcmpiW", "TlsSetValue",
		"InterlockedExchange", "GetProcAddress", "LocalAlloc", "GlobalAlloc",
		"IsBadReadPtr", "IsBadWritePtr", "IsBadStringPtrA", "IsBadStringPtrW",
		"FindFirstFileA", "FindFirstFileW", "FindNextFileA", "FindNextFileW",
		"MoveFileA", "MoveFileW", "CreateDirectoryA", "CreateDirectoryW",
		"SetFileAttributesA", "SetFileAttributesW", "GetBinaryTypeA", "GetBinaryTypeW",
		"GetDiskFreeSpaceExA1", "SetVolumeLabelA", "SetVolumeLabelW",
		"GetFileTime1", "SetFileTime1", "SetThreadPriority", "SetPriorityClass",
		"GetThreadContext", "SetThreadContext",
		"GetNamedPipeInfo1", "TransactNamedPipe1", "CallNamedPipeA1",
		"GetProfileIntA", "GetProfileIntW",
		"SetComputerNameA", "SetComputerNameW", "GetConsoleCursorInfo",
		"SetConsoleCursorInfo",
		"SetConsoleMode", "GetConsoleMode", "GetConsoleTitleA", "GetConsoleTitleW",
		"GetNumberOfConsoleMouseButtons", "SetConsoleScreenBufferSize",
		"SetConsoleCursorPosition", "SetConsoleTextAttribute", "SetConsoleCtrlHandler",
		"GenerateConsoleCtrlEvent", "GetLargestConsoleWindowSize",
		"FileTimeToSystemTime",
		"SystemTimeToFileTime", "FileTimeToLocalFileTime", "LocalFileTimeToFileTime",
		"CompareFileTime", "GetSystemTimeAdjustment1", "SetSystemTime",
		"SetLocalTime", "SetTimeZoneInformation", "GetProcessShutdownParameters",
		"SetProcessShutdownParameters", "GetProcessWorkingSetSize",
		"SetProcessWorkingSetSize1", "GetCommandLineInternal", "BuildCommDCBA",
		"BuildCommDCBW", "GetCommMask", "GetCommModemStatus", "GetCommProperties",
		"GetCommState", "SetCommState", "SetCommMask", "GetCommTimeouts",
		"SetCommTimeouts", "PurgeComm", "EscapeCommFunction", "TransmitCommChar",
		"SetupComm", "SetMailslotInfo", "ClearCommError",
		"GetLogicalDriveStringsA", "GetLogicalDriveStringsW",
		"QueryDosDeviceA", "QueryDosDeviceW", "GetCompressedFileSizeA",
		"GetCompressedFileSizeW", "BeginUpdateResourceA",
		"BeginUpdateResourceW", "LoadResource",
		"SizeofResource",
		"UnmapViewOfFile1", "FlushViewOfFile", "VirtualUnlock", "VirtualLock",
		"HeapSize1", "HeapValidate",
		"SetThreadExecutionState1",
	}},
	// ---- Three-parameter functions ----
	{3, []string{
		"DosDateTimeToFileTime", "FileTimeToDosDateTime",
		"GetAtomNameA", "GetAtomNameW", "GlobalGetAtomNameA", "GlobalGetAtomNameW",
		"OpenProcess", "GetModuleFileNameA", "GetModuleFileNameW",
		"GetEnvironmentVariableA", "GetEnvironmentVariableW", "CreateMutexA",
		"CreateMutexW", "OpenEventA", "OpenEventW", "OpenMutexA", "OpenMutexW",
		"OpenSemaphoreA", "OpenSemaphoreW", "ReleaseSemaphore", "HeapCreate",
		"HeapAlloc", "HeapFree", "VirtualFree", "GetDiskFreeSpaceExA",
		"GetDiskFreeSpaceExW", "CopyFileA", "CopyFileW", "MoveFileExA", "MoveFileExW",

		"FindFirstChangeNotificationA",
		"FindFirstChangeNotificationW",

		"SetConsoleWindowInfo",
		"GetConsoleAliasExesA", "GetConsoleAliasExesW",
		"AddConsoleAliasA", "AddConsoleAliasW", "GetConsoleCommandHistoryA",
		"GetConsoleCommandHistoryW", "SetConsoleNumberOfCommandsA",
		"SetConsoleNumberOfCommandsW", "GetThreadSelectorEntry", "IsValidLocale",
		"SetLocaleInfoA", "SetLocaleInfoW",
		"EnumTimeFormatsA", "EnumTimeFormatsW",
		"EnumDateFormatsA", "EnumDateFormatsW", "EnumSystemLocalesA",
		"EnumSystemLocalesW", "EnumSystemCodePagesA", "EnumSystemCodePagesW",
		"EnumResourceTypesA", "EnumResourceTypesW", "FindResourceA", "FindResourceW",
		"WriteProfileStringA", "WriteProfileStringW",
		"WritePrivateProfileSectionA", "WritePrivateProfileSectionW",
		"GetPrivateProfileSectionA", "GetPrivateProfileSectionW",
		"SetProcessAffinityMask", "SetThreadAffinityMask", "GetProcessAffinityMask",
		"VirtualQuery", "HeapSize",
		"FlushInstructionCache", "AllocateUserPhysicalPages",
		"BindIoCompletionCallback",
		"SetVolumeMountPointA",
		"DefineDosDeviceA", "DefineDosDeviceW",
		"OpenFile", "WaitForDebugEvent",
		"ContinueDebugEvent",
	}},
	// ---- Four-parameter functions ----
	{4, []string{
		"GetTempFileNameA", "GetTempFileNameW", "GetFileTime", "SetFileTime",
		"SetFilePointer", "WaitForMultipleObjects", "CreateEventA", "CreateEventW",
		"CreateSemaphoreA", "CreateSemaphoreW", "GetPrivateProfileIntA",
		"GetPrivateProfileIntW", "GetProfileStringA", "GetProfileStringW",
		"CreatePipe",
		"PostQueuedCompletionStatus", "CreateIoCompletionPort", "GetFullPathNameA",
		"GetFullPathNameW", "GetShortPathNameA", "GetShortPathNameW",
		"GetLongPathNameA", "GetLongPathNameW",
		"GetLocaleInfoA", "GetLocaleInfoW", "GetCalendarInfoA",
		"GetCalendarInfoW",
		"FoldStringA", "FoldStringW", "EnumCalendarInfoA", "EnumCalendarInfoW",
		"WritePrivateProfileStringA", "WritePrivateProfileStringW",
		"GetPrivateProfileSectionNamesA", "GetPrivateProfileSectionNamesW",
		"VirtualProtect", "VirtualQueryEx",

		"GetConsoleAliasA", "GetConsoleAliasW", "GetConsoleAliasesA", "GetConsoleAliasesW",
		"GetConsoleAliasesLengthA", "GetConsoleAliasesLengthW",
		"WaitCommEvent",
		"GetDefaultCommConfigW", "SetDefaultCommConfigA", "SetDefaultCommConfigW",
		"CommConfigDialogA", "CommConfigDialogW", "CreateMailslotA", "CreateMailslotW",

		"GetSystemTimeAdjustment", "SetSystemTimeAdjustment", "RaiseException",
		"GetThreadTimes",

		"EndUpdateResourceA", "EndUpdateResourceW",
		"EnumResourceNamesA", "EnumResourceNamesW",
		"LoadModule", "WinExec_Legacy", "GetNumberFormatA_Legacy2",
		"GetCurrencyFormatA_Legacy", "OpenFileMappingA", "OpenFileMappingW",
		"GlobalReAlloc", "LocalReAlloc", "HeapReAlloc", "HeapWalk_Legacy",
		"SetProcessWorkingSetSize", "SignalObjectAndWait", "GetNamedPipeHandleStateA0",
		"GetTapeParameters", "SetTapeParameters", "GetTapePosition_Legacy",
		"EraseTape", "PrepareTape", "VirtualAlloc",
	}},
	// ---- Five-parameter functions ----
	{5, []string{
		"ReadFile", "ReadFileEx", "WriteFile", "WriteFileEx", "CallNamedPipeA_Legacy",
		"CreateThread_Legacy", "LockFile", "UnlockFile", "DeviceIoControl_Legacy2",
		"GetVolumeInformationA_Legacy3", "GetDiskFreeSpaceA", "GetDiskFreeSpaceW",
		"GetTempFileNameA_Legacy", "ReadProcessMemory", "WriteProcessMemory",
		"ReadConsoleA", "ReadConsoleW", "WriteConsoleA", "WriteConsoleW",
		"ReadConsoleInputA", "ReadConsoleInputW", "PeekConsoleInputA", "PeekConsoleInputW",
		"WriteConsoleInputA", "WriteConsoleInputW", "FillConsoleOutputCharacterA",
		"FillConsoleOutputCharacterW", "FillConsoleOutputAttribute",
		"ReadConsoleOutputCharacterA", "ReadConsoleOutputCharacterW",
		"ReadConsoleOutputAttribute", "WriteConsoleOutputCharacterA",
		"WriteConsoleOutputCharacterW", "WriteConsoleOutputAttribute",
		"ReadConsoleOutputA", "ReadConsoleOutputW", "WriteConsoleOutputA",
		"WriteConsoleOutputW", "ScrollConsoleScreenBufferA", "ScrollConsoleScreenBufferW",
		"GetConsoleCommandHistoryLengthA_Real", "GetQueuedCompletionStatus",
		"MapViewOfFile", "MapViewOfFileEx_Legacy", "GetStringTypeA", "GetStringTypeW",
		"GetStringTypeExA", "GetStringTypeExW", "GetTimeFormatA_Legacy",
		"LCMapStringA_Legacy", "SearchPathA_Legacy2", "WaitForMultipleObjectsEx",
		"MsgWaitForMultipleObjects_Stub", "CreateFileMappingA", "CreateFileMappingW",
		"CreateWaitableTimerA", "SetWaitableTimer_Real", "FindFirstFileExA",
		"FindFirstFileExW", "CopyFileExA", "CopyFileExW", "MoveFileWithProgressA_Stub",
		"BackupRead", "BackupWrite", "BackupSeek", "EnumResourceLanguagesA",
		"EnumResourceLanguagesW", "UpdateResourceA_Legacy2", "VerLanguageNameA_Stub",
		"GetPrivateProfileStructA", "GetPrivateProfileStructW",
		"WritePrivateProfileStructA", "WritePrivateProfileStructW",
		"GetNamedPipeInfo", "SetNamedPipeHandleState_Real", "GetSystemPowerStatus_Real",
		"GetTapePosition", "SetTapePosition", "GetMailslotInfo",
		"DeviceIoControlFile_Stub", "QueueUserAPC_Legacy",
	}},
	// ---- Six-parameter functions ----
	{6, []string{
		"MultiByteToWideChar", "GetPrivateProfileStringA", "GetPrivateProfileStringW",
		"PeekNamedPipe", "CreateFiber", "CreateThread", "CreateRemoteThread_Real",
		"LockFileEx", "UnlockFileEx", "SearchPathA", "SearchPathW",
		"GetDateFormatA", "GetDateFormatW", "GetTimeFormatA", "GetTimeFormatW",
		"LCMapStringA", "LCMapStringW", "GetNumberFormatA", "GetNumberFormatW",
		"GetCurrencyFormatA", "GetCurrencyFormatW", "FormatMessageA_Legacy",
		"CompareStringA", "CompareStringW", "GetNamedPipeHandleStateA_Legacy",
		"CallNamedPipeA_Real", "UpdateResourceA", "UpdateResourceW",
		"MapViewOfFileEx", "CreateTapePartition", "WriteTapemark",
		"DeviceIoControl_Real6", "DnsHostnameToComputerNameA_Stub",
		"GetVolumeInformationA_Legacy4", "ReadDirectoryChangesW_Legacy",
		"CreateJobObjectA_Stub", "AssignProcessToJobObject_Stub",
	}},
	// ---- Seven-parameter functions ----
	{7, []string{
		"CreateFileA", "CreateFileW", "FormatMessageA", "FormatMessageW",
		"DuplicateHandle", "CreateNamedPipeA_Legacy", "CallNamedPipeA",
		"CallNamedPipeW", "GetNamedPipeHandleStateA", "GetNamedPipeHandleStateW",
		"CreateMailslotA_Real7", "GetVolumeInformationA_Legacy5",
		"SetVolumeLabelA_Stub7", "ReadDirectoryChangesW_Legacy2",
	}},
	// ---- Eight-parameter functions ----
	{8, []string{
		"CreateNamedPipeA", "CreateNamedPipeW", "WideCharToMultiByte",
		"GetVolumeInformationA", "GetVolumeInformationW", "DeviceIoControl",
		"ReadDirectoryChangesW", "TransactNamedPipe",
	}},
	// ---- Ten-parameter functions ----
	{10, []string{
		"CreateProcessA", "CreateProcessW",
	}},
}

// Catalog returns the full export catalog in deterministic order.
func Catalog() []CatalogEntry {
	catalogOnce.Do(func() {
		for _, g := range catalogGroups {
			for _, name := range g.names {
				catalogFlat = append(catalogFlat, CatalogEntry{Name: name, Params: g.params})
			}
		}
	})
	return catalogFlat
}

// The flattened export table is immutable, so the walk runs once per
// process and every caller — campaign builders run concurrently — shares
// the same slice. Callers must treat it as read-only.
var (
	catalogOnce sync.Once
	catalogFlat []CatalogEntry
)

// CatalogCounts reports (total exports, zero-parameter exports, injectable
// exports).
func CatalogCounts() (total, zeroParam, injectable int) {
	for _, g := range catalogGroups {
		n := len(g.names)
		total += n
		if g.params == 0 {
			zeroParam += n
		} else {
			injectable += n
		}
	}
	return total, zeroParam, injectable
}

// CatalogLookup finds an entry by function name.
func CatalogLookup(name string) (CatalogEntry, bool) {
	for _, g := range catalogGroups {
		for _, n := range g.names {
			if n == name {
				return CatalogEntry{Name: n, Params: g.params}, true
			}
		}
	}
	return CatalogEntry{}, false
}
