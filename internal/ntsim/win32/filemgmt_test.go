package win32

import (
	"testing"

	"ntdts/internal/ntsim"
)

// runProg spawns a single program and drains the kernel.
func runProg(t *testing.T, setup func(k *ntsim.Kernel), body func(a *API) uint32) *ntsim.Kernel {
	t.Helper()
	k := ntsim.NewKernel()
	if setup != nil {
		setup(k)
	}
	k.RegisterImage("prog.exe", func(p *ntsim.Process) uint32 {
		return body(New(p))
	})
	if _, err := k.Spawn("prog.exe", "prog.exe", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && k.Step(); i++ {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	return k
}

func TestFindEnumeration(t *testing.T) {
	runProg(t, func(k *ntsim.Kernel) {
		k.VFS().WriteFile(`C:\www\a.html`, nil)
		k.VFS().WriteFile(`C:\www\b.html`, nil)
		k.VFS().WriteFile(`C:\www\c.gif`, nil)
	}, func(a *API) uint32 {
		var fd FindData
		h := a.FindFirstFileA(`C:\www\*.html`, &fd)
		if h == InvalidHandle {
			t.Error("FindFirstFileA failed")
			return 1
		}
		if fd.FileName != "a.html" {
			t.Errorf("first match %q", fd.FileName)
		}
		if !a.FindNextFileA(h, &fd) || fd.FileName != "b.html" {
			t.Errorf("second match %q", fd.FileName)
		}
		if a.FindNextFileA(h, &fd) {
			t.Error("enumeration did not end")
		}
		if a.Process().LastError() != ntsim.ErrFileNotFound {
			t.Errorf("end error %v", a.Process().LastError())
		}
		if !a.FindClose(h) {
			t.Error("FindClose failed")
		}
		if a.FindClose(h) {
			t.Error("double FindClose succeeded")
		}
		return 0
	})
}

func TestFindNoMatches(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		if h := a.FindFirstFileA(`C:\empty\*`, nil); h != InvalidHandle {
			t.Error("FindFirstFileA matched nothing yet succeeded")
		}
		if a.Process().LastError() != ntsim.ErrFileNotFound {
			t.Errorf("error %v", a.Process().LastError())
		}
		return 0
	})
}

func TestDirectoryLifecycle(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		if !a.CreateDirectoryA(`C:\data`) {
			t.Error("CreateDirectoryA failed")
		}
		if a.CreateDirectoryA(`C:\data`) {
			t.Error("duplicate CreateDirectoryA succeeded")
		}
		h := a.CreateFileA(`C:\data\f.bin`, GenericWrite, 0, CreateAlways, 0)
		a.CloseHandle(h)
		if a.RemoveDirectoryA(`C:\data`) {
			t.Error("RemoveDirectoryA of non-empty dir succeeded")
		}
		a.DeleteFileA(`C:\data\f.bin`)
		if !a.RemoveDirectoryA(`C:\data`) {
			t.Errorf("RemoveDirectoryA failed: %v", a.Process().LastError())
		}
		return 0
	})
}

func TestMoveAndCopy(t *testing.T) {
	runProg(t, func(k *ntsim.Kernel) {
		k.VFS().WriteFile(`C:\orig`, []byte("xyz"))
	}, func(a *API) uint32 {
		if !a.MoveFileA(`C:\orig`, `C:\moved`) {
			t.Error("MoveFileA failed")
		}
		if a.GetFileAttributesA(`C:\orig`) != 0xFFFFFFFF {
			t.Error("source survived the move")
		}
		if !a.CopyFileA(`C:\moved`, `C:\copy`, true) {
			t.Error("CopyFileA failed")
		}
		if a.CopyFileA(`C:\moved`, `C:\copy`, true) {
			t.Error("failIfExists copy succeeded")
		}
		if !a.CopyFileA(`C:\moved`, `C:\copy`, false) {
			t.Error("overwrite copy failed")
		}
		if !a.SetFileAttributesA(`C:\copy`, 0x80) {
			t.Error("SetFileAttributesA failed")
		}
		if a.SetFileAttributesA(`C:\nope`, 0x80) {
			t.Error("SetFileAttributesA on missing file succeeded")
		}
		return 0
	})
}

func TestPathUtilities(t *testing.T) {
	runProg(t, func(k *ntsim.Kernel) {
		k.VFS().WriteFile(`C:\WINNT\system32\shell.dll`, nil)
	}, func(a *API) uint32 {
		var full string
		if n := a.GetFullPathNameA("work\\notes.txt", &full); n == 0 || full != `C:\work\notes.txt` {
			t.Errorf("GetFullPathNameA = %q (%d)", full, n)
		}
		if n := a.GetFullPathNameA(`D:\abs.txt`, &full); n == 0 || full != `D:\abs.txt` {
			t.Errorf("absolute GetFullPathNameA = %q", full)
		}
		var found string
		if n := a.SearchPathA("shell.dll", &found); n == 0 || found != `C:\WINNT\system32\shell.dll` {
			t.Errorf("SearchPathA = %q (%d)", found, n)
		}
		if n := a.SearchPathA("missing.dll", &found); n != 0 {
			t.Error("SearchPathA found a missing file")
		}
		if a.GetDriveTypeA(`C:\`) != 3 {
			t.Error("C: should be DRIVE_FIXED")
		}
		if a.GetDriveTypeA(`Z:\`) != 1 {
			t.Error("Z: should be DRIVE_NO_ROOT_DIR")
		}
		if a.GetLogicalDrives() != 1<<2 {
			t.Error("drive mask")
		}
		if prev := a.SetErrorMode(2); prev != 0 {
			t.Errorf("initial error mode %d", prev)
		}
		if prev := a.SetErrorMode(0); prev != 2 {
			t.Errorf("second error mode %d", prev)
		}
		var free uint32
		if !a.GetDiskFreeSpaceA(`C:\`, &free) || free == 0 {
			t.Errorf("GetDiskFreeSpaceA free=%d", free)
		}
		return 0
	})
}
