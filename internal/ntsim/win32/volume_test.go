package win32

import (
	"strings"
	"testing"
)

func TestGetVolumeInformation(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		var label, fs string
		var serial uint32
		if !a.GetVolumeInformationA(`C:\`, &label, &fs, &serial) {
			t.Error("GetVolumeInformationA failed")
			return 1
		}
		if label != "NTLAB1-C" || fs != "FAT" || serial == 0 {
			t.Errorf("volume %q %q %#x", label, fs, serial)
		}
		if a.GetVolumeInformationA(`Z:\`, nil, nil, nil) {
			t.Error("unknown volume succeeded")
		}
		return 0
	})
}

func TestGetTempFileName(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		var name string
		u := a.GetTempFileNameA(`C:\TEMP`, "dts", 0, &name)
		if u == 0 || name == "" {
			t.Errorf("GetTempFileNameA = %d %q", u, name)
			return 1
		}
		if !strings.HasPrefix(name, `C:\TEMP\dts`) || !strings.HasSuffix(name, ".TMP") {
			t.Errorf("temp name %q", name)
		}
		// uUnique==0 creates the file and the next call picks a new name.
		if !a.Process().Kernel().VFS().Exists(name) {
			t.Errorf("temp file %q not created", name)
		}
		var second string
		a.GetTempFileNameA(`C:\TEMP`, "dts", 0, &second)
		if second == name {
			t.Errorf("second temp name %q not unique", second)
		}
		// Explicit unique numbers do not create files.
		var explicit string
		if got := a.GetTempFileNameA(`C:\TEMP`, "dts", 0x42, &explicit); got != 0x42 {
			t.Errorf("explicit unique returned %d", got)
		}
		if a.Process().Kernel().VFS().Exists(explicit) {
			t.Error("explicit unique created a file")
		}
		// A long prefix is truncated to three characters.
		var long string
		a.GetTempFileNameA(`C:\TEMP`, "longprefix", 7, &long)
		if !strings.HasPrefix(long, `C:\TEMP\lon`) {
			t.Errorf("long-prefix name %q", long)
		}
		return 0
	})
}
