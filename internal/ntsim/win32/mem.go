package win32

import "ntdts/internal/ntsim"

// Heap objects. The simulation models heaps as bump allocators over the fake
// address space: allocations return addresses that resolve back to real Go
// buffers, so corrupted heap pointers fault exactly like wild pointers.

// HeapObject is a simulated process heap.
type HeapObject struct {
	allocs map[uint64][]byte
	space  *processAddr
}

// processAddr is a tiny adapter exposing the process address space to heap
// bookkeeping without leaking ntsim internals into callers.
type processAddr struct{ p *ntsim.Process }

func (pa *processAddr) mapBuf(b []byte) uint64 { return pa.p.Addr().MapBuf(b) }
func (pa *processAddr) release(addr uint64)    { pa.p.Addr().Release(addr) }

// GetProcessHeap returns the default heap handle, creating it on first use.
func (a *API) GetProcessHeap() Handle {
	a.syscall("GetProcessHeap", nil)
	if h, found := a.k.LookupNamed(defaultHeapKey(a.p.ID)); found {
		return h.(Handle)
	}
	heap := &HeapObject{allocs: make(map[uint64][]byte), space: &processAddr{p: a.p}}
	h := a.p.NewHandle(heap)
	a.k.RegisterNamed(defaultHeapKey(a.p.ID), h)
	return h
}

func defaultHeapKey(pid ntsim.PID) string {
	return "heap:default:" + itoa(uint32(pid))
}

// HeapCreate creates a private heap.
func (a *API) HeapCreate(options uint32, initialSize, maxSize uint32) Handle {
	raw := a.p.Raw(uint64(options), uint64(initialSize), uint64(maxSize))
	a.syscall("HeapCreate", raw)
	heap := &HeapObject{allocs: make(map[uint64][]byte), space: &processAddr{p: a.p}}
	a.ok()
	return a.p.NewHandle(heap)
}

// HeapDestroy tears a private heap down.
func (a *API) HeapDestroy(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("HeapDestroy", raw)
	heap, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*HeapObject)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	for addr := range heap.allocs {
		heap.space.release(addr)
	}
	heap.allocs = make(map[uint64][]byte)
	a.p.CloseHandle(ntsim.Handle(uint32(raw[0])))
	return a.ok()
}

// HeapAlloc allocates size bytes from a heap, returning the block address
// (0 on failure).
func (a *API) HeapAlloc(h Handle, flags, size uint32) uint64 {
	raw := a.p.Raw(uint64(h), uint64(flags), uint64(size))
	a.syscall("HeapAlloc", raw)
	heap, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*HeapObject)
	if !okh {
		a.fail(ntsim.ErrInvalidHandle)
		return 0
	}
	size = uint32(raw[2])
	const heapLimit = 1 << 26 // 64 MiB: a corrupted huge size fails allocation
	if uint64(size) > heapLimit {
		a.fail(ntsim.ErrNotEnoughMemory)
		return 0
	}
	buf := make([]byte, size)
	addr := heap.space.mapBuf(buf)
	heap.allocs[addr] = buf
	a.ok()
	return addr
}

// HeapFree releases a block previously returned by HeapAlloc. Freeing a
// corrupted pointer faults, mirroring real heap corruption.
func (a *API) HeapFree(h Handle, flags uint32, addr uint64) bool {
	raw := a.p.Raw(uint64(h), uint64(flags), addr)
	a.syscall("HeapFree", raw)
	heap, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*HeapObject)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	addr = raw[2]
	if addr == 0 {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if _, found := heap.allocs[addr]; !found {
		return a.av() // freeing a wild pointer corrupts the heap
	}
	heap.space.release(addr)
	delete(heap.allocs, addr)
	return a.ok()
}

// HeapBuf returns the Go buffer behind a heap block address (helper for
// simulated programs; not itself an injected call).
func (a *API) HeapBuf(h Handle, addr uint64) ([]byte, bool) {
	heap, okh := a.p.Resolve(h).(*HeapObject)
	if !okh {
		return nil, false
	}
	buf, found := heap.allocs[addr]
	return buf, found
}

// VirtualAlloc reserves/commits a region, modeled as an anonymous buffer.
func (a *API) VirtualAlloc(addrHint uint64, size uint32, allocType, protect uint32) uint64 {
	raw := a.p.Raw(addrHint, uint64(size), uint64(allocType), uint64(protect))
	a.syscall("VirtualAlloc", raw)
	size = uint32(raw[1])
	const vaLimit = 1 << 28
	if size == 0 || uint64(size) > vaLimit {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	buf := make([]byte, size)
	addr := a.p.Addr().MapBuf(buf)
	a.ok()
	return addr
}

// VirtualFree releases a region allocated by VirtualAlloc.
func (a *API) VirtualFree(addr uint64, size, freeType uint32) bool {
	raw := a.p.Raw(addr, uint64(size), uint64(freeType))
	a.syscall("VirtualFree", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	a.p.Addr().Release(raw[0])
	return a.ok()
}

// LocalAlloc allocates movable/fixed local memory (modeled like HeapAlloc on
// an implicit heap).
func (a *API) LocalAlloc(flags, size uint32) uint64 {
	raw := a.p.Raw(uint64(flags), uint64(size))
	a.syscall("LocalAlloc", raw)
	size = uint32(raw[1])
	const limit = 1 << 26
	if uint64(size) > limit {
		a.fail(ntsim.ErrNotEnoughMemory)
		return 0
	}
	buf := make([]byte, size)
	addr := a.p.Addr().MapBuf(buf)
	a.ok()
	return addr
}

// LocalFree releases local memory, returning 0 on success (Win32 contract).
func (a *API) LocalFree(addr uint64) uint64 {
	raw := a.p.Raw(addr)
	a.syscall("LocalFree", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.fail(ntsim.ErrInvalidHandle)
		return raw[0]
	}
	a.p.Addr().Release(raw[0])
	a.ok()
	return 0
}

// GlobalAlloc mirrors LocalAlloc for the legacy global heap.
func (a *API) GlobalAlloc(flags, size uint32) uint64 {
	raw := a.p.Raw(uint64(flags), uint64(size))
	a.syscall("GlobalAlloc", raw)
	size = uint32(raw[1])
	const limit = 1 << 26
	if uint64(size) > limit {
		a.fail(ntsim.ErrNotEnoughMemory)
		return 0
	}
	buf := make([]byte, size)
	addr := a.p.Addr().MapBuf(buf)
	a.ok()
	return addr
}

// GlobalFree releases global memory, returning 0 on success.
func (a *API) GlobalFree(addr uint64) uint64 {
	raw := a.p.Raw(addr)
	a.syscall("GlobalFree", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.fail(ntsim.ErrInvalidHandle)
		return raw[0]
	}
	a.p.Addr().Release(raw[0])
	a.ok()
	return 0
}
