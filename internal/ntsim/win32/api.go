// Package win32 layers a typed KERNEL32-style API over the ntsim kernel.
// Every function in this package marshals its parameters into raw 64-bit
// values, passes them through the kernel's system-call dispatch (where the
// fault injector may corrupt them), and then interprets the possibly
// corrupted values exactly the way the real Win32 API surface does:
//
//   - a corrupted HANDLE fails to resolve          -> ERROR_INVALID_HANDLE
//   - a zeroed pointer becomes NULL                -> error return
//   - a flipped/ones pointer becomes a wild pointer-> access violation (the
//     process dies with STATUS_ACCESS_VIOLATION)
//   - a corrupted size/count/timeout/flag is used as-is, producing silently
//     wrong behaviour (zero-length I/O, ~infinite waits, changed object
//     semantics) or a buffer-overrun access violation
//
// This is the consequence model of DLL-interposition SWIFI tools on NT and
// is the fault surface the DSN 2000 paper injects.
package win32

import (
	"encoding/binary"
	"time"

	"ntdts/internal/ntsim"
)

// Handle re-exports the kernel handle type for API signatures.
type Handle = ntsim.Handle

// InvalidHandle mirrors INVALID_HANDLE_VALUE.
const InvalidHandle = ntsim.InvalidHandle

// Infinite mirrors the INFINITE timeout constant.
const Infinite = ntsim.Infinite

// API is the KERNEL32 surface bound to one simulated process.
type API struct {
	p         *ntsim.Process
	k         *ntsim.Kernel
	errorMode uint32
}

// New binds the API to a process. Program images call this first.
func New(p *ntsim.Process) *API {
	return &API{p: p, k: p.Kernel()}
}

// Process returns the bound process.
func (a *API) Process() *ntsim.Process { return a.p }

// Kernel returns the hosting kernel.
func (a *API) Kernel() *ntsim.Kernel { return a.k }

// fail sets the last error and returns false (the BOOL-API error idiom).
func (a *API) fail(e ntsim.Errno) bool {
	a.p.SetLastError(e)
	return false
}

// ok clears the last error and returns true.
func (a *API) ok() bool {
	a.p.SetLastError(ntsim.ErrSuccess)
	return true
}

// resolution classifies a possibly corrupted pointer parameter.
type resolution int

const (
	ptrResolved resolution = iota + 1
	ptrNull
	ptrWild
)

// buf resolves a raw buffer address.
func (a *API) buf(addr uint64) ([]byte, resolution) {
	data, null, ok := a.p.Addr().Buf(addr)
	switch {
	case !ok:
		return nil, ptrWild
	case null:
		return nil, ptrNull
	default:
		return data, ptrResolved
	}
}

// str resolves a raw string address.
func (a *API) str(addr uint64) (string, resolution) {
	s, null, ok := a.p.Addr().Str(addr)
	switch {
	case !ok:
		return "", ptrWild
	case null:
		return "", ptrNull
	default:
		return s, ptrResolved
	}
}

// av terminates the process with an access violation. Declared to return
// bool so call sites read naturally, but it never returns.
func (a *API) av() bool {
	a.p.RaiseAccessViolation()
	return false
}

// mustBuf resolves a buffer address that real Win32 probes before use:
// wild -> access violation; NULL -> ERROR_NOACCESS error return.
func (a *API) mustBuf(addr uint64) ([]byte, bool) {
	data, res := a.buf(addr)
	switch res {
	case ptrWild:
		a.av()
		return nil, false
	case ptrNull:
		a.fail(ntsim.ErrNoaccess)
		return nil, false
	}
	return data, true
}

// putU32 stores a DWORD through a resolved out-parameter buffer.
func putU32(dst []byte, v uint32) {
	if len(dst) >= 4 {
		binary.LittleEndian.PutUint32(dst[:4], v)
	}
}

// getU32 loads a DWORD from an out-parameter cell.
func getU32(src []byte) uint32 {
	if len(src) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(src[:4])
}

// outCell allocates a 4-byte out-parameter cell mapped into the address
// space, returning its address and a reader for the final value.
func (a *API) outCell() (addr uint64, read func() uint32, release func()) {
	cell := make([]byte, 4)
	addr = a.p.Addr().MapBuf(cell)
	return addr, func() uint32 { return getU32(cell) }, func() { a.p.Addr().Release(addr) }
}

// syscall charges the base cost and runs the interceptor. raw may be
// mutated in place.
func (a *API) syscall(fn string, raw []uint64) {
	a.p.Syscall(fn, raw)
}

// charge charges extra virtual time beyond the syscall base cost.
func (a *API) charge(d time.Duration) { a.p.ChargeTime(d) }

// boolArg interprets a possibly corrupted BOOL parameter (any non-zero value
// is TRUE, exactly like Win32).
func boolArg(raw uint64) bool { return raw != 0 }

// b2r marshals a Go bool into a raw parameter.
func b2r(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// GetLastError returns the calling process's last-error value.
func (a *API) GetLastError() ntsim.Errno {
	a.syscall("GetLastError", nil)
	return a.p.LastError()
}

// SetLastError sets the calling process's last-error value.
func (a *API) SetLastError(e uint32) {
	raw := a.p.Raw(uint64(e))
	a.syscall("SetLastError", raw)
	a.p.SetLastError(ntsim.Errno(uint32(raw[0])))
}
