package win32

import (
	"strings"
	"testing"

	"ntdts/internal/ntsim"
)

func TestConsoleRoundtrip(t *testing.T) {
	k := runProg(t, func(k *ntsim.Kernel) {
		// Pre-seed the stdin console file the process will read.
		k.VFS().WriteFile(`C:\sim\console\prog.exe.in`, []byte("typed input\r\n"))
	}, func(a *API) uint32 {
		if !a.AllocConsole() {
			t.Error("AllocConsole failed")
		}
		out := a.GetStdHandle(StdOutputHandle)
		in := a.GetStdHandle(StdInputHandle)

		var n uint32
		if !a.WriteConsoleA(out, []byte("hello console"), 13, &n) || n != 13 {
			t.Errorf("WriteConsoleA n=%d err=%v", n, a.Process().LastError())
		}
		buf := make([]byte, 5)
		if !a.ReadConsoleA(in, buf, 5, &n) || string(buf[:n]) != "typed" {
			t.Errorf("ReadConsoleA %q err=%v", buf[:n], a.Process().LastError())
		}

		var mode uint32
		if !a.GetConsoleMode(out, &mode) || mode == 0 {
			t.Errorf("GetConsoleMode %d", mode)
		}
		if !a.SetConsoleMode(out, 0x7) {
			t.Error("SetConsoleMode failed")
		}
		a.GetConsoleMode(out, &mode)
		if mode != 0x7 {
			t.Errorf("mode after set %d", mode)
		}

		if !a.SetConsoleTitleA("DTS run") {
			t.Error("SetConsoleTitleA failed")
		}
		var title string
		if a.GetConsoleTitleA(&title) == 0 || title != "DTS run" {
			t.Errorf("title %q", title)
		}

		if a.GetConsoleCP() != 437 || a.GetConsoleOutputCP() != 437 {
			t.Error("default code pages")
		}
		a.SetConsoleOutputCP(1252)
		if a.GetConsoleOutputCP() != 1252 {
			t.Error("SetConsoleOutputCP did not stick")
		}

		if !a.FlushConsoleInputBuffer(in) {
			t.Error("FlushConsoleInputBuffer failed")
		}
		if !a.SetConsoleCtrlHandler(true) {
			t.Error("SetConsoleCtrlHandler failed")
		}
		a.FreeConsole()
		return 0
	})
	data, ok := k.VFS().ReadFile(`C:\sim\console\prog.exe.out`)
	if !ok || !strings.Contains(string(data), "hello console") {
		t.Fatalf("console output file %q", data)
	}
}

func TestConsoleFunctionsRejectNonConsoleHandles(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		h := a.CreateFileA(`C:\file.txt`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		var n uint32
		if a.WriteConsoleA(h, []byte("x"), 1, &n) {
			t.Error("WriteConsoleA on a disk file succeeded")
		}
		if a.GetConsoleMode(h, nil) {
			t.Error("GetConsoleMode on a disk file succeeded")
		}
		if a.FlushConsoleInputBuffer(h) {
			t.Error("FlushConsoleInputBuffer on a disk file succeeded")
		}
		if a.Process().LastError() != ntsim.ErrInvalidHandle {
			t.Errorf("last error %v", a.Process().LastError())
		}
		return 0
	})
}
