package win32

import (
	"testing"
	"time"

	"ntdts/internal/ntsim"
)

// funcInterceptor adapts a closure to the kernel interceptor interface.
type funcInterceptor struct {
	fn func(pid ntsim.PID, image, fn string, raw []uint64)
}

func (f *funcInterceptor) BeforeSyscall(pid ntsim.PID, image, fn string, raw []uint64) {
	f.fn(pid, image, fn, raw)
}

func runAll(t *testing.T, k *ntsim.Kernel) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if !k.Step() {
			return
		}
	}
	t.Fatal("kernel did not go idle")
}

func checkNoPanics(t *testing.T, k *ntsim.Kernel) {
	t.Helper()
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("unexpected panics: %v", pan)
	}
}

func spawnMain(t *testing.T, k *ntsim.Kernel, body func(a *API) uint32) *ntsim.Process {
	t.Helper()
	k.RegisterImage("main.exe", func(p *ntsim.Process) uint32 {
		return body(New(p))
	})
	p, err := k.Spawn("main.exe", "main.exe", 0)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	return p
}

func TestFileRoundtripThroughAPI(t *testing.T) {
	k := ntsim.NewKernel()
	spawnMain(t, k, func(a *API) uint32 {
		h := a.CreateFileA(`C:\data\x.txt`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		if h == InvalidHandle {
			t.Error("CreateFileA failed")
			return 1
		}
		var n uint32
		if !a.WriteFile(h, []byte("payload"), 7, &n) || n != 7 {
			t.Errorf("WriteFile n=%d err=%v", n, a.Process().LastError())
			return 1
		}
		if a.SetFilePointer(h, 0, FileBegin) != 0 {
			t.Error("SetFilePointer")
			return 1
		}
		buf := make([]byte, 16)
		if !a.ReadFile(h, buf, 16, &n) || n != 7 || string(buf[:n]) != "payload" {
			t.Errorf("ReadFile n=%d %q", n, buf[:n])
			return 1
		}
		if a.GetFileSize(h, nil) != 7 {
			t.Error("GetFileSize")
		}
		if a.GetFileType(h) != 1 {
			t.Error("GetFileType disk")
		}
		if !a.CloseHandle(h) {
			t.Error("CloseHandle")
		}
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestCorruptedHandleReturnsInvalidHandle(t *testing.T) {
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, _, fn string, raw []uint64) {
		if fn == "ReadFile" {
			raw[0] = 0 // zero the handle parameter
		}
	}})
	var lastErr ntsim.Errno
	spawnMain(t, k, func(a *API) uint32 {
		h := a.CreateFileA(`C:\f`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		var n uint32
		if a.ReadFile(h, make([]byte, 4), 4, &n) {
			t.Error("ReadFile with corrupted handle succeeded")
		}
		lastErr = a.GetLastError()
		return 0
	})
	runAll(t, k)
	if lastErr != ntsim.ErrInvalidHandle {
		t.Fatalf("last error %v, want ERROR_INVALID_HANDLE", lastErr)
	}
	checkNoPanics(t, k)
}

func TestCorruptedBufferPointerCrashes(t *testing.T) {
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, _, fn string, raw []uint64) {
		if fn == "ReadFile" {
			raw[1] ^= 0xFFFFFFFFFFFFFFFF // flip the buffer pointer
		}
	}})
	p := spawnMain(t, k, func(a *API) uint32 {
		h := a.CreateFileA(`C:\f`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		var n uint32
		a.WriteFile(h, []byte("abc"), 3, &n)
		a.SetFilePointer(h, 0, FileBegin)
		a.ReadFile(h, make([]byte, 4), 4, &n)
		return 0 // unreachable: the ReadFile faults
	})
	runAll(t, k)
	if p.ExitCode() != ntsim.ExitAccessViolation {
		t.Fatalf("exit 0x%X, want access violation", p.ExitCode())
	}
	checkNoPanics(t, k)
}

func TestNulledBufferPointerReturnsNoaccess(t *testing.T) {
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, _, fn string, raw []uint64) {
		if fn == "WriteFile" {
			raw[1] = 0 // NULL the source buffer
		}
	}})
	var lastErr ntsim.Errno
	p := spawnMain(t, k, func(a *API) uint32 {
		h := a.CreateFileA(`C:\f`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		var n uint32
		if a.WriteFile(h, []byte("abc"), 3, &n) {
			t.Error("WriteFile with NULL buffer succeeded")
		}
		lastErr = a.GetLastError()
		return 0
	})
	runAll(t, k)
	if p.ExitCode() != 0 {
		t.Fatalf("process died: 0x%X", p.ExitCode())
	}
	if lastErr != ntsim.ErrNoaccess {
		t.Fatalf("last error %v, want ERROR_NOACCESS", lastErr)
	}
	checkNoPanics(t, k)
}

func TestZeroedCountReadsZeroBytes(t *testing.T) {
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, _, fn string, raw []uint64) {
		if fn == "ReadFileEx" {
			raw[2] = 0 // the paper's SQL/watchd fault: zero nNumberOfBytesToRead
		}
	}})
	spawnMain(t, k, func(a *API) uint32 {
		h := a.CreateFileA(`C:\f`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		var n uint32
		a.WriteFile(h, []byte("abc"), 3, &n)
		a.SetFilePointer(h, 0, FileBegin)
		if !a.ReadFileEx(h, make([]byte, 4), 4, &n) {
			t.Errorf("zero-length ReadFileEx failed: %v", a.Process().LastError())
		}
		if n != 0 {
			t.Errorf("read %d bytes, want 0", n)
		}
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestOnesCountOverrunsBufferAndCrashes(t *testing.T) {
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, _, fn string, raw []uint64) {
		if fn == "ReadFile" {
			raw[2] = 0xFFFFFFFFFFFFFFFF // all-ones byte count
		}
	}})
	p := spawnMain(t, k, func(a *API) uint32 {
		h := a.CreateFileA(`C:\f`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		var n uint32
		a.ReadFile(h, make([]byte, 4), 4, &n)
		return 0
	})
	runAll(t, k)
	if p.ExitCode() != ntsim.ExitAccessViolation {
		t.Fatalf("exit 0x%X, want access violation", p.ExitCode())
	}
	checkNoPanics(t, k)
}

func TestPipeThroughAPI(t *testing.T) {
	k := ntsim.NewKernel()
	const pipe = `\\.\pipe\api`
	var reply string
	k.RegisterImage("srv.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateNamedPipeA(pipe, PipeAccessDuplex, PipeTypeByte, 1)
		if h == InvalidHandle {
			t.Error("CreateNamedPipeA failed")
			return 1
		}
		if !a.ConnectNamedPipe(h) {
			t.Errorf("ConnectNamedPipe: %v", a.Process().LastError())
			return 1
		}
		buf := make([]byte, 32)
		var n uint32
		if !a.ReadFile(h, buf, 32, &n) {
			t.Errorf("server ReadFile: %v", a.Process().LastError())
			return 1
		}
		out := append([]byte("re:"), buf[:n]...)
		a.WriteFile(h, out, uint32(len(out)), &n)
		a.FlushFileBuffers(h) // disconnect discards unread bytes
		a.DisconnectNamedPipe(h)
		a.CloseHandle(h)
		return 0
	})
	k.RegisterImage("cli.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		if !a.WaitNamedPipeA(pipe, 5000) {
			t.Errorf("WaitNamedPipeA: %v", a.Process().LastError())
			return 1
		}
		h := a.CreateFileA(pipe, GenericRead|GenericWrite, 0, OpenExisting, 0)
		if h == InvalidHandle {
			t.Errorf("client CreateFileA: %v", a.Process().LastError())
			return 1
		}
		var n uint32
		a.WriteFile(h, []byte("ping"), 4, &n)
		buf := make([]byte, 32)
		if !a.ReadFile(h, buf, 32, &n) {
			t.Errorf("client ReadFile: %v", a.Process().LastError())
			return 1
		}
		reply = string(buf[:n])
		a.CloseHandle(h)
		return 0
	})
	if _, err := k.Spawn("srv.exe", "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("cli.exe", "", 0); err != nil {
		t.Fatal(err)
	}
	runAll(t, k)
	if reply != "re:ping" {
		t.Fatalf("reply %q", reply)
	}
	checkNoPanics(t, k)
}

func TestCreateProcessAndWait(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("child.exe", func(p *ntsim.Process) uint32 {
		New(p).Sleep(500)
		return 3
	})
	spawnMain(t, k, func(a *API) uint32 {
		var pi ProcessInformation
		if !a.CreateProcessA("child.exe", "child.exe -x", nil, &pi) {
			t.Errorf("CreateProcessA: %v", a.Process().LastError())
			return 1
		}
		if a.WaitForSingleObject(pi.HProcess, Infinite) != ntsim.WaitObject0 {
			t.Error("wait on child failed")
		}
		var code uint32
		if !a.GetExitCodeProcess(pi.HProcess, &code) || code != 3 {
			t.Errorf("child exit code %d", code)
		}
		a.CloseHandle(pi.HProcess)
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestGetExitCodeStillActive(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("child.exe", func(p *ntsim.Process) uint32 {
		New(p).Sleep(10_000)
		return 0
	})
	spawnMain(t, k, func(a *API) uint32 {
		var pi ProcessInformation
		a.CreateProcessA("child.exe", "child.exe", nil, &pi)
		var code uint32
		if !a.GetExitCodeProcess(pi.HProcess, &code) || code != ntsim.ExitStillActive {
			t.Errorf("live child code %d, want STILL_ACTIVE", code)
		}
		a.TerminateProcess(pi.HProcess, 99)
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestEventAPINamedSharing(t *testing.T) {
	k := ntsim.NewKernel()
	var opened bool
	k.RegisterImage("a.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateEventA(true, false, "Global\\sync")
		a.Sleep(1000)
		a.SetEvent(h)
		return 0
	})
	k.RegisterImage("b.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		a.Sleep(100)
		h := a.OpenEventA(0, false, "Global\\sync")
		if h == 0 {
			t.Error("OpenEventA failed")
			return 1
		}
		opened = true
		if a.WaitForSingleObject(h, 5000) != ntsim.WaitObject0 {
			t.Error("named event never signaled")
		}
		return 0
	})
	k.Spawn("a.exe", "", 0)
	k.Spawn("b.exe", "", 0)
	runAll(t, k)
	if !opened {
		t.Fatal("event was not opened")
	}
	checkNoPanics(t, k)
}

func TestHeapAllocFree(t *testing.T) {
	k := ntsim.NewKernel()
	spawnMain(t, k, func(a *API) uint32 {
		h := a.GetProcessHeap()
		addr := a.HeapAlloc(h, 0, 128)
		if addr == 0 {
			t.Error("HeapAlloc failed")
			return 1
		}
		buf, found := a.HeapBuf(h, addr)
		if !found || len(buf) != 128 {
			t.Error("HeapBuf lookup failed")
		}
		if !a.HeapFree(h, 0, addr) {
			t.Error("HeapFree failed")
		}
		if a.HeapAlloc(h, 0, 1<<30) != 0 {
			t.Error("huge HeapAlloc should fail")
		}
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestHeapFreeWildPointerCrashes(t *testing.T) {
	k := ntsim.NewKernel()
	p := spawnMain(t, k, func(a *API) uint32 {
		h := a.GetProcessHeap()
		a.HeapFree(h, 0, 0xDEADBEEF)
		return 0
	})
	runAll(t, k)
	if p.ExitCode() != ntsim.ExitAccessViolation {
		t.Fatalf("exit 0x%X, want AV", p.ExitCode())
	}
	checkNoPanics(t, k)
}

func TestPrivateProfileString(t *testing.T) {
	k := ntsim.NewKernel()
	k.VFS().WriteFile(`C:\apache\conf\httpd.ini`, []byte(
		"[server]\nMaxChildren=1\nDocumentRoot=C:\\htdocs\n[log]\nLevel=warn\n"))
	spawnMain(t, k, func(a *API) uint32 {
		if got := a.GetPrivateProfileStringA("server", "DocumentRoot", "?", `C:\apache\conf\httpd.ini`); got != `C:\htdocs` {
			t.Errorf("DocumentRoot = %q", got)
		}
		if got := a.GetPrivateProfileIntA("server", "MaxChildren", 9, `C:\apache\conf\httpd.ini`); got != 1 {
			t.Errorf("MaxChildren = %d", got)
		}
		if got := a.GetPrivateProfileIntA("server", "Missing", 9, `C:\apache\conf\httpd.ini`); got != 9 {
			t.Errorf("default = %d", got)
		}
		if got := a.GetPrivateProfileStringA("server", "DocumentRoot", "?", `C:\nothere.ini`); got != "?" {
			t.Errorf("missing file = %q", got)
		}
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestSleepInfiniteHangs(t *testing.T) {
	k := ntsim.NewKernel()
	p := spawnMain(t, k, func(a *API) uint32 {
		a.Sleep(Infinite)
		return 0
	})
	k.RunFor(time.Hour)
	if p.Terminated() {
		t.Fatal("Sleep(INFINITE) returned")
	}
	p.Terminate(ntsim.ExitTerminated)
	runAll(t, k)
	checkNoPanics(t, k)
}

func TestTlsRoundtrip(t *testing.T) {
	k := ntsim.NewKernel()
	spawnMain(t, k, func(a *API) uint32 {
		idx := a.TlsAlloc()
		if !a.TlsSetValue(idx, 77) {
			t.Error("TlsSetValue")
		}
		if a.TlsGetValue(idx) != 77 {
			t.Error("TlsGetValue")
		}
		if !a.TlsFree(idx) {
			t.Error("TlsFree")
		}
		if a.TlsSetValue(idx, 1) {
			t.Error("TlsSetValue on freed slot succeeded")
		}
		return 0
	})
	runAll(t, k)
	checkNoPanics(t, k)
}

// TestCatalogArityMatchesDispatch cross-checks the catalog's parameter
// counts against the live raw-parameter arity of every implemented API
// function, using the canonical probe program's dispatch trace (probe.go).
func TestCatalogArityMatchesDispatch(t *testing.T) {
	trace, err := ProbeDispatchTrace()
	if err != nil {
		t.Fatal(err)
	}
	arity := make(map[string]int)
	for _, d := range trace {
		if prev, seen := arity[d.Fn]; seen && prev != d.Arity {
			t.Errorf("%s dispatched with both %d and %d raw params", d.Fn, prev, d.Arity)
		}
		arity[d.Fn] = d.Arity
	}
	if len(arity) < 80 {
		t.Fatalf("probe exercised only %d functions", len(arity))
	}
	for fn, n := range arity {
		entry, found := CatalogLookup(fn)
		if !found {
			t.Errorf("%s dispatched but missing from catalog", fn)
			continue
		}
		if entry.Params != n {
			t.Errorf("%s: catalog says %d params, dispatch uses %d", fn, entry.Params, n)
		}
	}
}
