package win32

import (
	"strings"
	"time"

	"ntdts/internal/ntsim"
)

// ProcessInformation mirrors the PROCESS_INFORMATION out-structure of
// CreateProcess.
type ProcessInformation struct {
	HProcess  Handle
	ProcessID ntsim.PID
}

// StartupInfo mirrors STARTUPINFOA (only the fields the simulation uses).
type StartupInfo struct {
	Desktop string
}

// CreateProcessA spawns a new simulated process from a registered image.
// Either appName or the first token of cmdLine names the image, matching
// Win32 resolution rules.
func (a *API) CreateProcessA(appName, cmdLine string, si *StartupInfo, pi *ProcessInformation) bool {
	ad := a.p.Addr()
	appAddr := uint64(0)
	if appName != "" {
		appAddr = ad.MapStr(appName)
		defer ad.Release(appAddr)
	}
	cmdAddr := ad.MapStr(cmdLine)
	defer ad.Release(cmdAddr)
	siBuf := make([]byte, 68) // sizeof(STARTUPINFOA)
	siAddr := ad.MapBuf(siBuf)
	defer ad.Release(siAddr)
	piBuf := make([]byte, 16) // sizeof(PROCESS_INFORMATION)
	piAddr := ad.MapBuf(piBuf)
	defer ad.Release(piAddr)

	raw := a.p.Raw(appAddr, cmdAddr, 0, 0, 0, 0, 0, 0, siAddr, piAddr)
	a.syscall("CreateProcessA", raw)

	app, appRes := a.str(raw[0])
	if appRes == ptrWild {
		return a.av()
	}
	cmd, cmdRes := a.str(raw[1])
	if cmdRes == ptrWild {
		return a.av()
	}
	if _, okb := a.mustBuf(raw[8]); !okb { // lpStartupInfo is probed
		return false
	}
	piOut, piOK := a.mustBuf(raw[9]) // lpProcessInformation is written
	if !piOK {
		return false
	}

	image := app
	if appRes == ptrNull || image == "" {
		if cmdRes == ptrNull || cmd == "" {
			return a.fail(ntsim.ErrInvalidParameter)
		}
		image = strings.Fields(cmd)[0]
	}
	child, err := a.k.Spawn(image, cmd, a.p.ID)
	if err != nil {
		errno, okE := err.(ntsim.Errno)
		if !okE {
			errno = ntsim.ErrInvalidFunction
		}
		return a.fail(errno)
	}
	a.charge(a.k.Costs().ProcessSpawn)
	h := a.p.NewHandle(child.Object())
	putU32(piOut[0:], uint32(h))
	putU32(piOut[8:], uint32(child.ID))
	if pi != nil {
		pi.HProcess = h
		pi.ProcessID = child.ID
	}
	return a.ok()
}

// OpenProcess opens a handle to a live process by PID. Opening a process
// that has already exited fails with ERROR_INVALID_PARAMETER, exactly like
// NT once the PID has been released — the race that undoes Watchd1 (§4.3).
func (a *API) OpenProcess(access uint32, inherit bool, pid ntsim.PID) Handle {
	raw := a.p.Raw(uint64(access), b2r(inherit), uint64(pid))
	a.syscall("OpenProcess", raw)
	target := a.k.Process(ntsim.PID(uint32(raw[2])))
	if target == nil || target.Terminated() {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	a.ok()
	return a.p.NewHandle(target.Object())
}

// GetCurrentProcessId returns the calling process's PID.
func (a *API) GetCurrentProcessId() ntsim.PID {
	a.syscall("GetCurrentProcessId", nil)
	return a.p.ID
}

// GetExitCodeProcess stores the target's exit code (or STILL_ACTIVE) in
// *code.
func (a *API) GetExitCodeProcess(h Handle, code *uint32) bool {
	cellAddr, cellVal, releaseCell := a.outCell()
	defer releaseCell()
	raw := a.p.Raw(uint64(h), cellAddr)
	a.syscall("GetExitCodeProcess", raw)
	outBuf, okb := a.mustBuf(raw[1])
	if !okb {
		return false
	}
	po, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.ProcessObject)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	val := ntsim.ExitStillActive
	if po.Exited() {
		val = a.exitCodeOf(po)
	}
	putU32(outBuf, val)
	if code != nil {
		*code = cellVal()
	}
	return a.ok()
}

// exitCodeOf finds the exit code behind a process object.
func (a *API) exitCodeOf(po *ntsim.ProcessObject) uint32 {
	for pid := ntsim.PID(1); ; pid++ {
		p := a.k.Process(pid)
		if p == nil {
			return ntsim.ExitFailure
		}
		if p.Object() == po {
			return p.ExitCode()
		}
	}
}

// TerminateProcess forcibly ends the target process.
func (a *API) TerminateProcess(h Handle, exitCode uint32) bool {
	raw := a.p.Raw(uint64(h), uint64(exitCode))
	a.syscall("TerminateProcess", raw)
	po, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.ProcessObject)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	for pid := ntsim.PID(1); ; pid++ {
		p := a.k.Process(pid)
		if p == nil {
			break
		}
		if p.Object() == po {
			p.Terminate(uint32(raw[1]))
			return a.ok()
		}
	}
	return a.fail(ntsim.ErrInvalidHandle)
}

// ExitProcess terminates the calling process. It does not return.
func (a *API) ExitProcess(code uint32) {
	raw := a.p.Raw(uint64(code))
	a.syscall("ExitProcess", raw)
	a.p.Exit(uint32(raw[0]))
}

// WaitForSingleObject blocks until the object is signaled or the timeout
// elapses.
func (a *API) WaitForSingleObject(h Handle, timeoutMS uint32) uint32 {
	raw := a.p.Raw(uint64(h), uint64(timeoutMS))
	a.syscall("WaitForSingleObject", raw)
	w, okh := a.p.ResolveWaitable(ntsim.Handle(uint32(raw[0])))
	if !okh {
		a.fail(ntsim.ErrInvalidHandle)
		return ntsim.WaitFailed
	}
	return ntsim.WaitOne(a.p, w, uint32(raw[1]))
}

// WaitForMultipleObjects waits for any (waitAll=false) of the handles.
// bWaitAll=TRUE is not used by the simulated programs and is rejected.
func (a *API) WaitForMultipleObjects(handles []Handle, waitAll bool, timeoutMS uint32) uint32 {
	raw := a.p.Raw(uint64(len(handles)), 0, b2r(waitAll), uint64(timeoutMS))
	a.syscall("WaitForMultipleObjects", raw)
	if boolArg(raw[2]) {
		a.fail(ntsim.ErrNotSupported)
		return ntsim.WaitFailed
	}
	n := int(uint32(raw[0]))
	if n <= 0 || n > len(handles) {
		a.fail(ntsim.ErrInvalidParameter)
		return ntsim.WaitFailed
	}
	objs := make([]ntsim.Waitable, 0, n)
	for _, h := range handles[:n] {
		w, okh := a.p.ResolveWaitable(h)
		if !okh {
			a.fail(ntsim.ErrInvalidHandle)
			return ntsim.WaitFailed
		}
		objs = append(objs, w)
	}
	return ntsim.WaitAny(a.p, objs, uint32(raw[3]))
}

// Sleep suspends the calling process for the given milliseconds of virtual
// time. Sleep(INFINITE) parks the process forever (hang).
func (a *API) Sleep(ms uint32) {
	raw := a.p.Raw(uint64(ms))
	a.syscall("Sleep", raw)
	ms = uint32(raw[0])
	if ms == Infinite {
		// Park forever: wait on an event nobody will ever signal.
		never := ntsim.NewEvent("", true, false)
		ntsim.WaitOne(a.p, never, Infinite)
		return
	}
	a.p.SleepFor(time.Duration(ms) * time.Millisecond)
}

// GetTickCount returns milliseconds of virtual time since boot.
func (a *API) GetTickCount() uint32 {
	a.syscall("GetTickCount", nil)
	return uint32(time.Duration(a.k.Now()) / time.Millisecond)
}

// GetCommandLineA returns the process command line.
func (a *API) GetCommandLineA() string {
	a.syscall("GetCommandLineA", nil)
	return a.p.CmdLine
}

// GetStartupInfoA fills the caller's STARTUPINFOA.
func (a *API) GetStartupInfoA(si *StartupInfo) {
	buf := make([]byte, 68)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("GetStartupInfoA", raw)
	if _, res := a.buf(raw[0]); res == ptrWild {
		a.av()
	}
	if si != nil {
		*si = StartupInfo{Desktop: "WinSta0\\Default"}
	}
}

// GetEnvironmentVariableA reads a simulated environment variable, returning
// its length (0 with ERROR_ENVVAR_NOT_FOUND when absent, like Win32).
func (a *API) GetEnvironmentVariableA(name string, value *string) uint32 {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	out := make([]byte, 256)
	outAddr := ad.MapBuf(out)
	defer ad.Release(outAddr)
	raw := a.p.Raw(nameAddr, outAddr, uint64(len(out)))
	a.syscall("GetEnvironmentVariableA", raw)
	key, res := a.str(raw[0])
	switch res {
	case ptrWild:
		a.av()
	case ptrNull:
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	dst, res := a.buf(raw[1])
	if res == ptrWild {
		a.av()
	}
	v := a.p.Env(key)
	if v == "" {
		a.fail(ntsim.ErrFileNotFound)
		return 0
	}
	if res == ptrResolved {
		copy(dst, v)
	}
	if value != nil {
		*value = v
	}
	a.ok()
	return uint32(len(v))
}

// SetEnvironmentVariableA sets a simulated environment variable.
func (a *API) SetEnvironmentVariableA(name, value string) bool {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	valAddr := ad.MapStr(value)
	defer ad.Release(nameAddr)
	defer ad.Release(valAddr)
	raw := a.p.Raw(nameAddr, valAddr)
	a.syscall("SetEnvironmentVariableA", raw)
	key, res := a.str(raw[0])
	switch res {
	case ptrWild:
		return a.av()
	case ptrNull:
		return a.fail(ntsim.ErrInvalidParameter)
	}
	val, res := a.str(raw[1])
	if res == ptrWild {
		return a.av()
	}
	a.p.SetEnv(key, val)
	return a.ok()
}
