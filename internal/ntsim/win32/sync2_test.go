package win32

import (
	"testing"
	"time"

	"ntdts/internal/ntsim"
)

func TestPulseEvent(t *testing.T) {
	k := ntsim.NewKernel()
	woken := 0
	var lateResult uint32
	k.RegisterImage("waiter.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.OpenEventA(0, false, "pulse-ev")
		if a.WaitForSingleObject(h, 10_000) == ntsim.WaitObject0 {
			woken++
		}
		return 0
	})
	k.RegisterImage("pulser.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateEventA(true, false, "pulse-ev")
		a.Sleep(1000)
		if !a.PulseEvent(h) {
			t.Error("PulseEvent failed")
		}
		// After the pulse the event is non-signaled: a later wait times
		// out.
		lateResult = a.WaitForSingleObject(h, 100)
		if a.PulseEvent(Handle(0xBEEF)) {
			t.Error("PulseEvent on garbage handle succeeded")
		}
		return 0
	})
	k.Spawn("pulser.exe", "pulser.exe", 0)
	k.RunFor(100 * time.Millisecond) // let the event be created first
	k.Spawn("waiter.exe", "waiter.exe", 0)
	k.Spawn("waiter.exe", "waiter.exe", 0)
	for k.Step() {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	if woken != 2 {
		t.Fatalf("pulse woke %d manual-reset waiters, want 2", woken)
	}
	if lateResult != ntsim.WaitTimeout {
		t.Fatalf("post-pulse wait %#x, want WAIT_TIMEOUT", lateResult)
	}
}

func TestTryEnterCriticalSection(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		var cs CriticalSection
		a.InitializeCriticalSection(&cs)
		if !a.TryEnterCriticalSection(&cs) {
			t.Error("TryEnter on free lock failed")
		}
		a.LeaveCriticalSection(&cs)
		a.DeleteCriticalSection(&cs)
		return 0
	})
}

func TestSignalObjectAndWait(t *testing.T) {
	k := ntsim.NewKernel()
	var handoff uint32
	k.RegisterImage("a.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		ping := a.CreateEventA(false, false, "ping")
		pong := a.CreateEventA(false, false, "pong")
		// Signal ping and wait for pong atomically.
		handoff = a.SignalObjectAndWait(ping, pong, 10_000)
		return 0
	})
	k.RegisterImage("b.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		p.SleepFor(100 * time.Millisecond)
		ping := a.OpenEventA(0, false, "ping")
		pong := a.OpenEventA(0, false, "pong")
		if a.WaitForSingleObject(ping, 10_000) != ntsim.WaitObject0 {
			t.Error("b never saw ping")
		}
		a.SetEvent(pong)
		return 0
	})
	k.Spawn("a.exe", "a.exe", 0)
	k.Spawn("b.exe", "b.exe", 0)
	for k.Step() {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	if handoff != ntsim.WaitObject0 {
		t.Fatalf("handoff result %#x", handoff)
	}
}

func TestSignalObjectAndWaitErrors(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		ev := a.CreateEventA(false, false, "")
		if a.SignalObjectAndWait(Handle(0xBEEF), ev, 0) != ntsim.WaitFailed {
			t.Error("garbage signal handle accepted")
		}
		if a.SignalObjectAndWait(ev, Handle(0xBEEF), 0) != ntsim.WaitFailed {
			t.Error("garbage wait handle accepted")
		}
		// Releasing an unowned mutex via the signal half fails.
		mu := a.CreateMutexA(false, "")
		if a.SignalObjectAndWait(mu, ev, 0) != ntsim.WaitFailed {
			t.Error("unowned mutex release accepted")
		}
		return 0
	})
}
