package win32

import (
	"ntdts/internal/ntsim"
)

// CreateEventA creates (or opens, when named and existing) an event object.
func (a *API) CreateEventA(manualReset, initialState bool, name string) Handle {
	ad := a.p.Addr()
	nameAddr := uint64(0)
	if name != "" {
		nameAddr = ad.MapStr(name)
		defer ad.Release(nameAddr)
	}
	raw := a.p.Raw(0, b2r(manualReset), b2r(initialState), nameAddr)
	a.syscall("CreateEventA", raw)
	if raw[0] != 0 {
		// lpEventAttributes corrupted to a non-NULL garbage pointer:
		// the kernel probes the SECURITY_ATTRIBUTES structure.
		if _, res := a.buf(raw[0]); res != ptrResolved {
			a.av()
		}
	}
	objName, res := a.str(raw[3])
	if res == ptrWild {
		a.av()
	}
	ev := ntsim.NewEvent(objName, boolArg(raw[1]), boolArg(raw[2]))
	if res == ptrResolved && objName != "" {
		actual, exists := a.k.RegisterNamed("event:"+objName, ev)
		if exists {
			existing, okE := actual.(*ntsim.Event)
			if !okE {
				a.fail(ntsim.ErrInvalidHandle)
				return 0
			}
			a.p.SetLastError(ntsim.ErrAlreadyExists)
			return a.p.NewHandle(existing)
		}
	}
	a.ok()
	return a.p.NewHandle(ev)
}

// OpenEventA opens an existing named event.
func (a *API) OpenEventA(access uint32, inherit bool, name string) Handle {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(uint64(access), b2r(inherit), nameAddr)
	a.syscall("OpenEventA", raw)
	objName, res := a.str(raw[2])
	switch res {
	case ptrWild:
		a.av()
	case ptrNull:
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	obj, found := a.k.LookupNamed("event:" + objName)
	if !found {
		a.fail(ntsim.ErrFileNotFound)
		return 0
	}
	ev, okE := obj.(*ntsim.Event)
	if !okE {
		a.fail(ntsim.ErrInvalidHandle)
		return 0
	}
	a.ok()
	return a.p.NewHandle(ev)
}

// SetEvent signals an event object.
func (a *API) SetEvent(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("SetEvent", raw)
	ev, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Event)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	ev.Set()
	return a.ok()
}

// ResetEvent clears an event object.
func (a *API) ResetEvent(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("ResetEvent", raw)
	ev, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Event)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	ev.Reset()
	return a.ok()
}

// CreateMutexA creates (or opens, when named and existing) a mutex.
func (a *API) CreateMutexA(initialOwner bool, name string) Handle {
	ad := a.p.Addr()
	nameAddr := uint64(0)
	if name != "" {
		nameAddr = ad.MapStr(name)
		defer ad.Release(nameAddr)
	}
	raw := a.p.Raw(0, b2r(initialOwner), nameAddr)
	a.syscall("CreateMutexA", raw)
	if raw[0] != 0 {
		if _, res := a.buf(raw[0]); res != ptrResolved {
			a.av()
		}
	}
	objName, res := a.str(raw[2])
	if res == ptrWild {
		a.av()
	}
	var owner *ntsim.Process
	if boolArg(raw[1]) {
		owner = a.p
	}
	m := ntsim.NewMutex(objName, owner)
	if res == ptrResolved && objName != "" {
		actual, exists := a.k.RegisterNamed("mutex:"+objName, m)
		if exists {
			existing, okM := actual.(*ntsim.Mutex)
			if !okM {
				a.fail(ntsim.ErrInvalidHandle)
				return 0
			}
			a.p.SetLastError(ntsim.ErrAlreadyExists)
			return a.p.NewHandle(existing)
		}
	}
	a.ok()
	return a.p.NewHandle(m)
}

// ReleaseMutex releases mutex ownership.
func (a *API) ReleaseMutex(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("ReleaseMutex", raw)
	m, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Mutex)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if !m.Release(a.p) {
		return a.fail(ntsim.ErrAccessDenied) // ERROR_NOT_OWNER stand-in
	}
	return a.ok()
}

// CreateSemaphoreA creates a semaphore object.
func (a *API) CreateSemaphoreA(initial, max int32, name string) Handle {
	ad := a.p.Addr()
	nameAddr := uint64(0)
	if name != "" {
		nameAddr = ad.MapStr(name)
		defer ad.Release(nameAddr)
	}
	raw := a.p.Raw(0, uint64(uint32(initial)), uint64(uint32(max)), nameAddr)
	a.syscall("CreateSemaphoreA", raw)
	if raw[0] != 0 {
		if _, res := a.buf(raw[0]); res != ptrResolved {
			a.av()
		}
	}
	objName, res := a.str(raw[3])
	if res == ptrWild {
		a.av()
	}
	ini := int32(uint32(raw[1]))
	mx := int32(uint32(raw[2]))
	if mx <= 0 || ini < 0 || ini > mx {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	s := ntsim.NewSemaphore(objName, ini, mx)
	a.ok()
	return a.p.NewHandle(s)
}

// ReleaseSemaphore adds count to a semaphore.
func (a *API) ReleaseSemaphore(h Handle, count int32, prev *int32) bool {
	raw := a.p.Raw(uint64(h), uint64(uint32(count)), 0)
	a.syscall("ReleaseSemaphore", raw)
	s, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Semaphore)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if prev != nil {
		*prev = s.Count()
	}
	if !s.ReleaseN(int32(uint32(raw[1]))) {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	return a.ok()
}

// Critical sections. CRITICAL_SECTION lives in user memory; the simulation
// models it as an identity registered in the process address space so that
// pointer corruption behaves faithfully.

// CriticalSection is an opaque user-mode lock (single-threaded processes in
// this simulation never contend, but initialization order and pointer
// validity still matter for injection).
type CriticalSection struct {
	initialized bool
	buf         []byte
	addr        uint64
}

// InitializeCriticalSection prepares a critical section.
func (a *API) InitializeCriticalSection(cs *CriticalSection) {
	if cs.buf == nil {
		cs.buf = make([]byte, 24)
		cs.addr = a.p.Addr().MapBuf(cs.buf)
	}
	raw := a.p.Raw(cs.addr)
	a.syscall("InitializeCriticalSection", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	cs.initialized = true
}

// EnterCriticalSection acquires the lock.
func (a *API) EnterCriticalSection(cs *CriticalSection) {
	raw := a.p.Raw(cs.addr)
	a.syscall("EnterCriticalSection", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	if !cs.initialized {
		a.av() // entering an uninitialized CS is undefined behaviour
	}
}

// LeaveCriticalSection releases the lock.
func (a *API) LeaveCriticalSection(cs *CriticalSection) {
	raw := a.p.Raw(cs.addr)
	a.syscall("LeaveCriticalSection", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
}

// DeleteCriticalSection tears the lock down.
func (a *API) DeleteCriticalSection(cs *CriticalSection) {
	raw := a.p.Raw(cs.addr)
	a.syscall("DeleteCriticalSection", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	cs.initialized = false
}

// InterlockedIncrement atomically increments a cell (trivially atomic under
// cooperative scheduling, but the pointer still travels the injection path).
func (a *API) InterlockedIncrement(cell *int32) int32 {
	buf := make([]byte, 4)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("InterlockedIncrement", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	*cell++
	return *cell
}

// InterlockedDecrement atomically decrements a cell.
func (a *API) InterlockedDecrement(cell *int32) int32 {
	buf := make([]byte, 4)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("InterlockedDecrement", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	*cell--
	return *cell
}

// InterlockedExchange atomically swaps a cell's value.
func (a *API) InterlockedExchange(cell *int32, value int32) int32 {
	buf := make([]byte, 4)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr, uint64(uint32(value)))
	a.syscall("InterlockedExchange", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	old := *cell
	*cell = int32(uint32(raw[1]))
	return old
}
