package win32

import (
	"testing"

	"ntdts/internal/ntsim"
)

// TestConsequenceMatrix exhaustively corrupts every parameter of every
// implemented API function with every fault type and asserts the
// simulation's consequence contract: the probe process either completes,
// exits with a recorded code, or dies with an access violation — never a
// Go-level panic, and the kernel always drains.
//
// This is the fault model's safety net: any new API function that can be
// driven into a runtime panic by a corrupted parameter fails here. The
// apiharness conformance sweep layers the failure-mode classification and
// golden matrix on top of the same probe program.
func TestConsequenceMatrix(t *testing.T) {
	arity, err := ProbeArity()
	if err != nil {
		t.Fatal(err)
	}
	if len(arity) < 80 {
		t.Fatalf("probe exercised only %d functions", len(arity))
	}

	verdicts := make(map[string]int)
	for fn, params := range arity {
		for p := 0; p < params; p++ {
			for _, corrupt := range []struct {
				name  string
				apply func(uint64) uint64
			}{
				{"zero", func(uint64) uint64 { return 0 }},
				{"ones", func(uint64) uint64 { return 0xFFFFFFFF }},
				{"flip", func(v uint64) uint64 { return uint64(^uint32(v)) }},
			} {
				fired := false
				proc := probeOnce(t, func(gotFn string, raw []uint64) {
					if gotFn == fn && !fired && len(raw) > p {
						raw[p] = corrupt.apply(raw[p])
						fired = true
					}
				})
				switch proc.ExitCode() {
				case 0:
					verdicts["benign"]++
				case ntsim.ExitAccessViolation:
					verdicts["crash"]++
				case ntsim.ExitTerminated:
					verdicts["hang"]++ // probe killed at the deadline
				default:
					verdicts["error-exit"]++
				}
			}
		}
	}
	// The matrix must show all the paper's consequence classes.
	if verdicts["benign"] == 0 || verdicts["crash"] == 0 {
		t.Fatalf("degenerate consequence mix: %v", verdicts)
	}
	t.Logf("consequence mix over %d functions: %v", len(arity), verdicts)
}

// probeOnce runs the canonical probe program under an interceptor and
// returns the probe process after the simulation drains.
func probeOnce(t *testing.T, intercept func(fn string, raw []uint64)) *ntsim.Process {
	t.Helper()
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, image, fn string, raw []uint64) {
		if image == ProbeImage {
			intercept(fn, raw)
		}
	}})
	SetupProbe(k)
	probe, err := RunProbe(k)
	if err != nil {
		t.Fatal(err)
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("simulated code panicked: %v", pan)
	}
	return probe
}
