package win32

import (
	"testing"

	"ntdts/internal/ntsim"
)

// TestConsequenceMatrix exhaustively corrupts every parameter of every
// implemented API function with every fault type and asserts the
// simulation's consequence contract: the probe process either completes,
// exits with a recorded code, or dies with an access violation — never a
// Go-level panic, and the kernel always drains.
//
// This is the fault model's safety net: any new API function that can be
// driven into a runtime panic by a corrupted parameter fails here.
func TestConsequenceMatrix(t *testing.T) {
	// Discover the dispatch arity of every function the probe exercises.
	arity := make(map[string]int)
	probeOnce(t, func(string, []uint64) {}, func(fn string, raw []uint64) {
		arity[fn] = len(raw)
	})
	if len(arity) < 80 {
		t.Fatalf("probe exercised only %d functions", len(arity))
	}

	type verdictKey struct{ outcome string }
	verdicts := make(map[string]int)
	for fn, params := range arity {
		for p := 0; p < params; p++ {
			for _, corrupt := range []struct {
				name  string
				apply func(uint64) uint64
			}{
				{"zero", func(uint64) uint64 { return 0 }},
				{"ones", func(uint64) uint64 { return 0xFFFFFFFF }},
				{"flip", func(v uint64) uint64 { return uint64(^uint32(v)) }},
			} {
				fired := false
				proc := probeOnce(t, nil, func(gotFn string, raw []uint64) {
					if gotFn == fn && !fired && len(raw) > p {
						raw[p] = corrupt.apply(raw[p])
						fired = true
					}
				})
				switch proc.ExitCode() {
				case 0:
					verdicts["benign"]++
				case ntsim.ExitAccessViolation:
					verdicts["crash"]++
				case ntsim.ExitTerminated:
					verdicts["hang"]++ // probe killed at the deadline
				default:
					verdicts["error-exit"]++
				}
				_ = verdictKey{}
			}
		}
	}
	// The matrix must show all the paper's consequence classes.
	if verdicts["benign"] == 0 || verdicts["crash"] == 0 {
		t.Fatalf("degenerate consequence mix: %v", verdicts)
	}
	t.Logf("consequence mix over %d functions: %v", len(arity), verdicts)
}

// probeOnce runs the full-API probe program under an interceptor and
// returns the probe process after the simulation drains.
func probeOnce(t *testing.T, _ func(string, []uint64), intercept func(fn string, raw []uint64)) *ntsim.Process {
	t.Helper()
	k := ntsim.NewKernel()
	k.SetInterceptor(&funcInterceptor{fn: func(_ ntsim.PID, image, fn string, raw []uint64) {
		if image == "probe.exe" {
			intercept(fn, raw)
		}
	}})
	k.VFS().WriteFile(`C:\probe.ini`, []byte("[s]\nk=v\n"))
	k.RegisterImage("child.exe", func(p *ntsim.Process) uint32 { return 0 })
	k.RegisterImage("srv.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateNamedPipeA(`\\.\pipe\probe`, PipeAccessDuplex, PipeTypeByte, 1)
		if h == InvalidHandle {
			return 1
		}
		if !a.ConnectNamedPipe(h) {
			return 1
		}
		buf := make([]byte, 8)
		var n uint32
		a.ReadFile(h, buf, 8, &n)
		a.WriteFile(h, []byte("x"), 1, &n)
		a.FlushFileBuffers(h)
		a.DisconnectNamedPipe(h)
		return 0
	})
	k.RegisterImage("probe.exe", func(p *ntsim.Process) uint32 {
		probeBody(New(p))
		return 0
	})
	srv, err := k.Spawn("srv.exe", "srv.exe", 0)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := k.Spawn("probe.exe", "probe.exe", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded drain: corrupted timeouts can park the probe ~forever in
	// virtual time, so stop at a budget and kill stragglers.
	k.RunFor(120_000_000_000) // 120s virtual
	if !probe.Terminated() {
		probe.Terminate(ntsim.ExitTerminated)
	}
	if !srv.Terminated() {
		srv.Terminate(ntsim.ExitTerminated)
	}
	k.KillAll()
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("simulated code panicked: %v", pan)
	}
	return probe
}

// probeBody exercises every implemented API function once (the same
// traversal the arity cross-check uses).
func probeBody(a *API) {
	var n uint32
	fh := a.CreateFileA(`C:\probe.dat`, GenericRead|GenericWrite, 0, CreateAlways, 0)
	a.WriteFile(fh, []byte("xy"), 2, &n)
	a.SetFilePointer(fh, 0, FileBegin)
	a.ReadFile(fh, make([]byte, 2), 2, &n)
	a.ReadFileEx(fh, make([]byte, 2), 0, &n)
	a.GetFileSize(fh, nil)
	a.GetFileType(fh)
	a.FlushFileBuffers(fh)
	a.CloseHandle(fh)
	a.GetFileAttributesA(`C:\probe.ini`)
	a.DeleteFileA(`C:\probe.dat`)
	a.WaitNamedPipeA(`\\.\pipe\probe`, 5000)
	ph := a.CreateFileA(`\\.\pipe\probe`, GenericRead|GenericWrite, 0, OpenExisting, 0)
	a.WriteFile(ph, []byte("x"), 1, &n)
	a.ReadFile(ph, make([]byte, 8), 8, &n)
	a.PeekNamedPipe(ph, nil)
	a.CloseHandle(ph)
	var pi ProcessInformation
	a.CreateProcessA("child.exe", "child.exe", nil, &pi)
	a.WaitForSingleObject(pi.HProcess, 10_000)
	a.WaitForMultipleObjects([]Handle{pi.HProcess}, false, 100)
	var code uint32
	a.GetExitCodeProcess(pi.HProcess, &code)
	a.TerminateProcess(pi.HProcess, 0)
	op := a.OpenProcess(0, false, a.Process().ID)
	a.CloseHandle(op)
	a.GetCurrentProcess()
	a.GetCurrentProcessId()
	a.GetCurrentThreadId()
	a.Sleep(1)
	a.GetTickCount()
	a.GetCommandLineA()
	a.GetStartupInfoA(nil)
	a.GetEnvironmentVariableA("PATH", nil)
	a.SetEnvironmentVariableA("X", "1")
	eh := a.CreateEventA(false, false, "probe-ev")
	a.OpenEventA(0, false, "probe-ev")
	a.SetEvent(eh)
	a.ResetEvent(eh)
	mh := a.CreateMutexA(false, "")
	a.WaitForSingleObject(mh, 0)
	a.ReleaseMutex(mh)
	sh := a.CreateSemaphoreA(1, 2, "")
	a.ReleaseSemaphore(sh, 1, nil)
	var cs CriticalSection
	a.InitializeCriticalSection(&cs)
	a.EnterCriticalSection(&cs)
	a.LeaveCriticalSection(&cs)
	a.DeleteCriticalSection(&cs)
	var cell int32
	a.InterlockedIncrement(&cell)
	a.InterlockedDecrement(&cell)
	a.InterlockedExchange(&cell, 5)
	hp := a.GetProcessHeap()
	blk := a.HeapAlloc(hp, 0, 16)
	a.HeapFree(hp, 0, blk)
	ph2 := a.HeapCreate(0, 0, 0)
	a.HeapDestroy(ph2)
	va := a.VirtualAlloc(0, 4096, 0, 0)
	a.VirtualFree(va, 0, 0)
	la := a.LocalAlloc(0, 8)
	a.LocalFree(la)
	ga := a.GlobalAlloc(0, 8)
	a.GlobalFree(ga)
	a.GetLastError()
	a.SetLastError(0)
	a.GetVersion()
	a.GetVersionExA(nil)
	a.GetModuleHandleA("")
	a.GetModuleFileNameA(0, nil)
	lib := a.LoadLibraryA("advapi32.dll")
	a.GetProcAddress(lib, "RegOpenKeyExA")
	a.FreeLibrary(lib)
	a.GetStdHandle(StdOutputHandle)
	a.GetSystemInfo(nil)
	a.GetSystemTime(nil)
	a.GetLocalTime(nil)
	a.GetSystemTimeAsFileTime(nil)
	a.QueryPerformanceCounter(nil)
	a.QueryPerformanceFrequency(nil)
	a.GetACP()
	a.GetOEMCP()
	a.GetCPInfo(1252, nil)
	a.GetComputerNameA(nil)
	a.GetSystemDirectoryA(nil)
	a.GetWindowsDirectoryA(nil)
	a.GetTempPathA(nil)
	a.GetCurrentDirectoryA(nil)
	a.LstrlenA("x")
	a.LstrcpyA("x")
	a.LstrcatA("a", "b")
	a.LstrcmpiA("a", "A")
	a.MultiByteToWideChar(1252, "x")
	a.WideCharToMultiByte(1252, "x")
	a.OutputDebugStringA("dbg")
	a.FormatMessageA(0, 2)
	idx := a.TlsAlloc()
	a.TlsSetValue(idx, 1)
	a.TlsGetValue(idx)
	a.TlsFree(idx)
	a.GetPrivateProfileStringA("s", "k", "", `C:\probe.ini`)
	a.GetPrivateProfileIntA("s", "k", 0, `C:\probe.ini`)
	a.IsBadReadPtr(0, 1)
	a.IsBadWritePtr(0, 1)
	a.SetHandleCount(32)
	a.GlobalMemoryStatus(nil)
	var dup Handle
	a.DuplicateHandle(0, eh, 0, &dup)
	// File management.
	a.CreateDirectoryA(`C:\probe-dir`)
	a.CreateFileA(`C:\probe-dir\a.log`, GenericWrite, 0, CreateAlways, 0)
	var fd FindData
	fh2 := a.FindFirstFileA(`C:\probe-dir\*.log`, &fd)
	a.FindNextFileA(fh2, &fd)
	a.FindClose(fh2)
	a.MoveFileA(`C:\probe-dir\a.log`, `C:\probe-dir\b.log`)
	a.CopyFileA(`C:\probe-dir\b.log`, `C:\probe-dir\c.log`, false)
	a.SetFileAttributesA(`C:\probe-dir\c.log`, 0x80)
	a.GetFullPathNameA(`probe.ini`, nil)
	a.SearchPathA("probe.ini", nil)
	a.GetDriveTypeA(`C:\`)
	a.GetLogicalDrives()
	a.SetErrorMode(1)
	a.GetDiskFreeSpaceA(`C:\`, nil)
	a.DeleteFileA(`C:\probe-dir\b.log`)
	a.DeleteFileA(`C:\probe-dir\c.log`)
	a.RemoveDirectoryA(`C:\probe-dir`)
	// Console.
	a.AllocConsole()
	conOut := a.GetStdHandle(StdOutputHandle)
	a.WriteConsoleA(conOut, []byte("p"), 1, &n)
	a.GetConsoleMode(conOut, nil)
	a.SetConsoleMode(conOut, 3)
	a.SetConsoleTitleA("probe")
	a.GetConsoleTitleA(nil)
	a.GetConsoleCP()
	a.GetConsoleOutputCP()
	a.SetConsoleCP(437)
	a.SetConsoleOutputCP(437)
	a.FlushConsoleInputBuffer(conOut)
	a.SetConsoleCtrlHandler(true)
	a.FreeConsole()
	// Atoms.
	at := a.AddAtomA("probe-atom")
	a.FindAtomA("probe-atom")
	a.GetAtomNameA(at, nil)
	a.DeleteAtom(at)
	gat := a.GlobalAddAtomA("probe-gatom")
	a.GlobalFindAtomA("probe-gatom")
	a.GlobalGetAtomNameA(gat, nil)
	a.GlobalDeleteAtom(gat)
	// File times.
	th := a.CreateFileA(`C:\probe.ts`, GenericRead|GenericWrite, 0, CreateAlways, 0)
	a.WriteFile(th, []byte("t"), 1, &n)
	var ft Filetime
	a.GetFileTime(th, &ft)
	a.SetFileTime(th, ft)
	a.CompareFileTime(ft, ft)
	var st2 SystemTime
	a.FileTimeToSystemTime(ft, &st2)
	a.SystemTimeToFileTime(st2, &ft)
	a.FileTimeToLocalFileTime(ft, &ft)
	a.LocalFileTimeToFileTime(ft, &ft)
	a.CloseHandle(th)
	// Mailslots (poll-mode reads so a corrupted timeout cannot hang).
	msh := a.CreateMailslotA(`\\.\mailslot\probe`, 0, 0)
	msc := a.CreateFileA(`\\.\mailslot\probe`, GenericWrite, 0, OpenExisting, 0)
	a.WriteFile(msc, []byte("m"), 1, &n)
	a.GetMailslotInfo(msh, nil, nil)
	a.SetMailslotInfo(msh, 0)
	a.ReadFile(msh, make([]byte, 8), 8, &n)
	a.CloseHandle(msc)
	a.CloseHandle(msh)
	// Volume and temp names.
	a.GetVolumeInformationA(`C:\`, nil, nil, nil)
	a.GetTempFileNameA(`C:\TEMP`, "prb", 1, nil)
	// Sync extras.
	pe := a.CreateEventA(true, false, "")
	a.PulseEvent(pe)
	var cs2 CriticalSection
	a.InitializeCriticalSection(&cs2)
	a.TryEnterCriticalSection(&cs2)
	a.LeaveCriticalSection(&cs2)
	sw := a.CreateEventA(false, true, "")
	a.SignalObjectAndWait(pe, sw, 0)
}
