package win32

import (
	"sync"
	"time"

	"ntdts/internal/ntsim"
	"ntdts/internal/telemetry"
)

// The canonical probe program: one simulated process that exercises every
// implemented API function with valid baseline arguments. It is the
// invocation builder behind three consumers:
//
//   - the catalog arity cross-check (api_test.go) verifies that the export
//     catalog's parameter counts match the live dispatch path;
//   - the consequence matrix (consequences_test.go) corrupts each probe
//     parameter and asserts the fault model's safety contract;
//   - the apiharness conformance sweep drives the whole catalog with the
//     paper's three corruptions and pins the failure-mode matrix.
//
// Because the kernel is a deterministic single-CPU simulation, the probe's
// dispatch trace — the ordered sequence of (function, raw arity) pairs that
// cross the system-call boundary — is a pure constant of the build, which is
// what makes golden-matrix conformance testing possible.

// Image names of the probe workload's processes.
const (
	// ProbeImage is the probe program itself — the fault-injection target.
	ProbeImage = "probe.exe"
	// ProbeServerImage is the pipe server the probe talks to.
	ProbeServerImage = "srv.exe"
	// ProbeChildImage is the child the probe spawns via CreateProcessA.
	ProbeChildImage = "child.exe"
)

// ProbeDeadline bounds one probe run in virtual time: corrupted timeout or
// handle parameters can park the probe nearly forever (the paper's "hang"
// class), so runs are cut off here and stragglers killed.
const ProbeDeadline = 120 * time.Second

// SetupProbe prepares a fresh kernel to host the probe workload: fixture
// files and all three program images. Install any interceptor before
// calling RunProbe so the probe's first system call is already observed.
func SetupProbe(k *ntsim.Kernel) {
	k.VFS().WriteFile(`C:\probe.ini`, []byte("[s]\nk=v\n"))
	k.RegisterImage(ProbeChildImage, func(p *ntsim.Process) uint32 { return 0 })
	k.RegisterImage(ProbeServerImage, func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateNamedPipeA(`\\.\pipe\probe`, PipeAccessDuplex, PipeTypeByte, 1)
		if h == InvalidHandle {
			return 1
		}
		if !a.ConnectNamedPipe(h) {
			return 1
		}
		buf := make([]byte, 8)
		var n uint32
		a.ReadFile(h, buf, 8, &n)
		a.WriteFile(h, []byte("x"), 1, &n)
		a.FlushFileBuffers(h)
		a.DisconnectNamedPipe(h)
		return 0
	})
	k.RegisterImage(ProbeImage, func(p *ntsim.Process) uint32 {
		probeBody(New(p))
		return 0
	})
}

// RunProbe spawns the probe workload on a prepared kernel, drains it up to
// ProbeDeadline of virtual time, kills stragglers, and returns the probe
// process for inspection. A probe that did not terminate by the deadline is
// the simulation's "hang" consequence and exits with ExitTerminated.
func RunProbe(k *ntsim.Kernel) (*ntsim.Process, error) {
	span := telemetry.StartSpan(k.Telemetry(), k.Now(), 0, telemetry.SpanProbe)
	srv, err := k.Spawn(ProbeServerImage, ProbeServerImage, 0)
	if err != nil {
		return nil, err
	}
	probe, err := k.Spawn(ProbeImage, ProbeImage, 0)
	if err != nil {
		return nil, err
	}
	k.RunFor(ProbeDeadline)
	if !probe.Terminated() {
		probe.Terminate(ntsim.ExitTerminated)
	}
	if !srv.Terminated() {
		srv.Terminate(ntsim.ExitTerminated)
	}
	k.KillAll()
	span.End(k.Now())
	return probe, nil
}

// DispatchRecord is one probe system call: the function name and the raw
// parameter count that crossed the dispatch boundary.
type DispatchRecord struct {
	Fn    string
	Arity int
}

// traceRecorder captures the probe process's dispatch sequence.
type traceRecorder struct {
	trace []DispatchRecord
}

func (r *traceRecorder) BeforeSyscall(_ ntsim.PID, image, fn string, raw []uint64) {
	if image == ProbeImage {
		r.trace = append(r.trace, DispatchRecord{Fn: fn, Arity: len(raw)})
	}
}

var (
	probeTraceOnce sync.Once
	probeTrace     []DispatchRecord
	probeTraceErr  error
)

// ProbeDispatchTrace runs the probe once, fault-free, and returns its
// ordered dispatch trace. The run is memoized: the trace is a deterministic
// constant, so every caller shares one baseline. Callers must treat the
// returned slice as read-only.
func ProbeDispatchTrace() ([]DispatchRecord, error) {
	probeTraceOnce.Do(func() {
		k := ntsim.NewKernel()
		rec := &traceRecorder{}
		k.SetInterceptor(rec)
		SetupProbe(k)
		probe, err := RunProbe(k)
		if err != nil {
			probeTraceErr = err
			return
		}
		if code := probe.ExitCode(); code != 0 {
			probeTraceErr = errProbeExit(code)
			return
		}
		probeTrace = rec.trace
	})
	return probeTrace, probeTraceErr
}

// errProbeExit reports a fault-free probe run that did not exit cleanly.
type errProbeExit uint32

func (e errProbeExit) Error() string {
	return "win32: fault-free probe run exited abnormally"
}

// ProbeArity returns the raw dispatch arity of every function the probe
// exercises, derived from the memoized dispatch trace.
func ProbeArity() (map[string]int, error) {
	trace, err := ProbeDispatchTrace()
	if err != nil {
		return nil, err
	}
	arity := make(map[string]int, len(trace))
	for _, d := range trace {
		arity[d.Fn] = d.Arity
	}
	return arity, nil
}

// probeBody exercises every implemented API function once with valid
// arguments. Keep the traversal deterministic and append-only: the
// conformance golden matrix pins the dispatch order of everything here.
func probeBody(a *API) {
	var n uint32
	fh := a.CreateFileA(`C:\probe.dat`, GenericRead|GenericWrite, 0, CreateAlways, 0)
	a.WriteFile(fh, []byte("xy"), 2, &n)
	a.SetFilePointer(fh, 0, FileBegin)
	a.ReadFile(fh, make([]byte, 2), 2, &n)
	a.ReadFileEx(fh, make([]byte, 2), 0, &n)
	a.GetFileSize(fh, nil)
	a.GetFileType(fh)
	a.FlushFileBuffers(fh)
	a.CloseHandle(fh)
	a.GetFileAttributesA(`C:\probe.ini`)
	a.DeleteFileA(`C:\probe.dat`)
	a.WaitNamedPipeA(`\\.\pipe\probe`, 5000)
	ph := a.CreateFileA(`\\.\pipe\probe`, GenericRead|GenericWrite, 0, OpenExisting, 0)
	a.WriteFile(ph, []byte("x"), 1, &n)
	a.ReadFile(ph, make([]byte, 8), 8, &n)
	a.PeekNamedPipe(ph, nil)
	a.CloseHandle(ph)
	var pi ProcessInformation
	a.CreateProcessA(ProbeChildImage, ProbeChildImage, nil, &pi)
	a.WaitForSingleObject(pi.HProcess, 10_000)
	a.WaitForMultipleObjects([]Handle{pi.HProcess}, false, 100)
	var code uint32
	a.GetExitCodeProcess(pi.HProcess, &code)
	a.TerminateProcess(pi.HProcess, 0)
	op := a.OpenProcess(0, false, a.Process().ID)
	a.CloseHandle(op)
	a.GetCurrentProcess()
	a.GetCurrentProcessId()
	a.GetCurrentThreadId()
	a.Sleep(1)
	a.GetTickCount()
	a.GetCommandLineA()
	a.GetStartupInfoA(nil)
	a.GetEnvironmentVariableA("PATH", nil)
	a.SetEnvironmentVariableA("X", "1")
	eh := a.CreateEventA(false, false, "probe-ev")
	a.OpenEventA(0, false, "probe-ev")
	a.SetEvent(eh)
	a.ResetEvent(eh)
	mh := a.CreateMutexA(false, "")
	a.WaitForSingleObject(mh, 0)
	a.ReleaseMutex(mh)
	sh := a.CreateSemaphoreA(1, 2, "")
	a.ReleaseSemaphore(sh, 1, nil)
	var cs CriticalSection
	a.InitializeCriticalSection(&cs)
	a.EnterCriticalSection(&cs)
	a.LeaveCriticalSection(&cs)
	a.DeleteCriticalSection(&cs)
	var cell int32
	a.InterlockedIncrement(&cell)
	a.InterlockedDecrement(&cell)
	a.InterlockedExchange(&cell, 5)
	hp := a.GetProcessHeap()
	blk := a.HeapAlloc(hp, 0, 16)
	a.HeapFree(hp, 0, blk)
	ph2 := a.HeapCreate(0, 0, 0)
	a.HeapDestroy(ph2)
	va := a.VirtualAlloc(0, 4096, 0, 0)
	a.VirtualFree(va, 0, 0)
	la := a.LocalAlloc(0, 8)
	a.LocalFree(la)
	ga := a.GlobalAlloc(0, 8)
	a.GlobalFree(ga)
	a.GetLastError()
	a.SetLastError(0)
	a.GetVersion()
	a.GetVersionExA(nil)
	a.GetModuleHandleA("")
	a.GetModuleFileNameA(0, nil)
	lib := a.LoadLibraryA("advapi32.dll")
	a.GetProcAddress(lib, "RegOpenKeyExA")
	a.FreeLibrary(lib)
	a.GetStdHandle(StdOutputHandle)
	a.GetSystemInfo(nil)
	a.GetSystemTime(nil)
	a.GetLocalTime(nil)
	a.GetSystemTimeAsFileTime(nil)
	a.QueryPerformanceCounter(nil)
	a.QueryPerformanceFrequency(nil)
	a.GetACP()
	a.GetOEMCP()
	a.GetCPInfo(1252, nil)
	a.GetComputerNameA(nil)
	a.GetSystemDirectoryA(nil)
	a.GetWindowsDirectoryA(nil)
	a.GetTempPathA(nil)
	a.GetCurrentDirectoryA(nil)
	a.LstrlenA("x")
	a.LstrcpyA("x")
	a.LstrcatA("a", "b")
	a.LstrcmpiA("a", "A")
	a.MultiByteToWideChar(1252, "x")
	a.WideCharToMultiByte(1252, "x")
	a.OutputDebugStringA("dbg")
	a.FormatMessageA(0, 2)
	idx := a.TlsAlloc()
	a.TlsSetValue(idx, 1)
	a.TlsGetValue(idx)
	a.TlsFree(idx)
	a.GetPrivateProfileStringA("s", "k", "", `C:\probe.ini`)
	a.GetPrivateProfileIntA("s", "k", 0, `C:\probe.ini`)
	a.IsBadReadPtr(0, 1)
	a.IsBadWritePtr(0, 1)
	a.SetHandleCount(32)
	a.GlobalMemoryStatus(nil)
	var dup Handle
	a.DuplicateHandle(0, eh, 0, &dup)
	// File management.
	a.CreateDirectoryA(`C:\probe-dir`)
	a.CreateFileA(`C:\probe-dir\a.log`, GenericWrite, 0, CreateAlways, 0)
	var fd FindData
	fh2 := a.FindFirstFileA(`C:\probe-dir\*.log`, &fd)
	a.FindNextFileA(fh2, &fd)
	a.FindClose(fh2)
	a.MoveFileA(`C:\probe-dir\a.log`, `C:\probe-dir\b.log`)
	a.CopyFileA(`C:\probe-dir\b.log`, `C:\probe-dir\c.log`, false)
	a.SetFileAttributesA(`C:\probe-dir\c.log`, 0x80)
	a.GetFullPathNameA(`probe.ini`, nil)
	a.SearchPathA("probe.ini", nil)
	a.GetDriveTypeA(`C:\`)
	a.GetLogicalDrives()
	a.SetErrorMode(1)
	a.GetDiskFreeSpaceA(`C:\`, nil)
	a.DeleteFileA(`C:\probe-dir\b.log`)
	a.DeleteFileA(`C:\probe-dir\c.log`)
	a.RemoveDirectoryA(`C:\probe-dir`)
	// Console.
	a.AllocConsole()
	conOut := a.GetStdHandle(StdOutputHandle)
	a.WriteConsoleA(conOut, []byte("p"), 1, &n)
	a.GetConsoleMode(conOut, nil)
	a.SetConsoleMode(conOut, 3)
	a.SetConsoleTitleA("probe")
	a.GetConsoleTitleA(nil)
	a.GetConsoleCP()
	a.GetConsoleOutputCP()
	a.SetConsoleCP(437)
	a.SetConsoleOutputCP(437)
	a.FlushConsoleInputBuffer(conOut)
	a.SetConsoleCtrlHandler(true)
	a.FreeConsole()
	// Atoms.
	at := a.AddAtomA("probe-atom")
	a.FindAtomA("probe-atom")
	a.GetAtomNameA(at, nil)
	a.DeleteAtom(at)
	gat := a.GlobalAddAtomA("probe-gatom")
	a.GlobalFindAtomA("probe-gatom")
	a.GlobalGetAtomNameA(gat, nil)
	a.GlobalDeleteAtom(gat)
	// File times.
	th := a.CreateFileA(`C:\probe.ts`, GenericRead|GenericWrite, 0, CreateAlways, 0)
	a.WriteFile(th, []byte("t"), 1, &n)
	var ft Filetime
	a.GetFileTime(th, &ft)
	a.SetFileTime(th, ft)
	a.CompareFileTime(ft, ft)
	var st2 SystemTime
	a.FileTimeToSystemTime(ft, &st2)
	a.SystemTimeToFileTime(st2, &ft)
	a.FileTimeToLocalFileTime(ft, &ft)
	a.LocalFileTimeToFileTime(ft, &ft)
	a.CloseHandle(th)
	// Mailslots (poll-mode reads so a corrupted timeout cannot hang).
	msh := a.CreateMailslotA(`\\.\mailslot\probe`, 0, 0)
	msc := a.CreateFileA(`\\.\mailslot\probe`, GenericWrite, 0, OpenExisting, 0)
	a.WriteFile(msc, []byte("m"), 1, &n)
	a.GetMailslotInfo(msh, nil, nil)
	a.SetMailslotInfo(msh, 0)
	a.ReadFile(msh, make([]byte, 8), 8, &n)
	a.CloseHandle(msc)
	a.CloseHandle(msh)
	// Volume and temp names.
	a.GetVolumeInformationA(`C:\`, nil, nil, nil)
	a.GetTempFileNameA(`C:\TEMP`, "prb", 1, nil)
	// Sync extras.
	pe := a.CreateEventA(true, false, "")
	a.PulseEvent(pe)
	var cs2 CriticalSection
	a.InitializeCriticalSection(&cs2)
	a.TryEnterCriticalSection(&cs2)
	a.LeaveCriticalSection(&cs2)
	sw := a.CreateEventA(false, true, "")
	a.SignalObjectAndWait(pe, sw, 0)
}
