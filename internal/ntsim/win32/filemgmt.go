package win32

import (
	"strings"

	"ntdts/internal/ntsim"
)

// File-management surface: directory creation/removal, wildcard
// enumeration (FindFirstFileA family), move/copy, and path utilities.
// These complete the KERNEL32 slice the export catalog advertises for
// custom workloads; the paper's four standard workloads do not call them,
// keeping the Table 1 census intact.

// findState is the kernel object behind a FindFirstFileA handle.
type findState struct {
	matches []string
	next    int
}

// FindData is the subset of WIN32_FIND_DATAA the simulation reports.
type FindData struct {
	FileName string
}

// FindFirstFileA begins a wildcard enumeration, storing the first match.
func (a *API) FindFirstFileA(pattern string, data *FindData) Handle {
	ad := a.p.Addr()
	patAddr := ad.MapStr(pattern)
	out := make([]byte, 320) // sizeof(WIN32_FIND_DATAA)
	outAddr := ad.MapBuf(out)
	defer ad.Release(patAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(patAddr, outAddr)
	a.syscall("FindFirstFileA", raw)

	pat, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return InvalidHandle
	}
	if _, ok := a.mustBuf(raw[1]); !ok {
		return InvalidHandle
	}
	matches := a.k.VFS().Find(pat)
	if len(matches) == 0 {
		a.fail(ntsim.ErrFileNotFound)
		return InvalidHandle
	}
	st := &findState{matches: matches, next: 1}
	if data != nil {
		data.FileName = matches[0]
	}
	a.ok()
	return a.p.NewHandle(st)
}

// FindNextFileA advances an enumeration; FALSE with ERROR_NO_MORE_FILES
// (modeled as ERROR_FILE_NOT_FOUND) at the end.
func (a *API) FindNextFileA(h Handle, data *FindData) bool {
	out := make([]byte, 320)
	outAddr := a.p.Addr().MapBuf(out)
	defer a.p.Addr().Release(outAddr)
	raw := a.p.Raw(uint64(h), outAddr)
	a.syscall("FindNextFileA", raw)
	st, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*findState)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if _, ok := a.mustBuf(raw[1]); !ok {
		return false
	}
	if st.next >= len(st.matches) {
		return a.fail(ntsim.ErrFileNotFound)
	}
	if data != nil {
		data.FileName = st.matches[st.next]
	}
	st.next++
	return a.ok()
}

// FindClose ends an enumeration.
func (a *API) FindClose(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("FindClose", raw)
	if _, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*findState); !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	a.p.CloseHandle(ntsim.Handle(uint32(raw[0])))
	return a.ok()
}

// CreateDirectoryA creates a directory.
func (a *API) CreateDirectoryA(path string) bool {
	ad := a.p.Addr()
	pathAddr := ad.MapStr(path)
	defer ad.Release(pathAddr)
	raw := a.p.Raw(pathAddr, 0)
	a.syscall("CreateDirectoryA", raw)
	dir, res := a.probeStr(raw[0])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if errno := a.k.VFS().MkDir(dir); errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	return a.ok()
}

// RemoveDirectoryA removes an empty directory.
func (a *API) RemoveDirectoryA(path string) bool {
	ad := a.p.Addr()
	pathAddr := ad.MapStr(path)
	defer ad.Release(pathAddr)
	raw := a.p.Raw(pathAddr)
	a.syscall("RemoveDirectoryA", raw)
	dir, res := a.probeStr(raw[0])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if errno := a.k.VFS().RmDir(dir); errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	return a.ok()
}

// MoveFileA renames a file.
func (a *API) MoveFileA(from, to string) bool {
	ad := a.p.Addr()
	fromAddr := ad.MapStr(from)
	toAddr := ad.MapStr(to)
	defer ad.Release(fromAddr)
	defer ad.Release(toAddr)
	raw := a.p.Raw(fromAddr, toAddr)
	a.syscall("MoveFileA", raw)
	src, res := a.probeStr(raw[0])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	dst, res := a.probeStr(raw[1])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if errno := a.k.VFS().Rename(src, dst); errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	return a.ok()
}

// CopyFileA duplicates a file.
func (a *API) CopyFileA(from, to string, failIfExists bool) bool {
	ad := a.p.Addr()
	fromAddr := ad.MapStr(from)
	toAddr := ad.MapStr(to)
	defer ad.Release(fromAddr)
	defer ad.Release(toAddr)
	raw := a.p.Raw(fromAddr, toAddr, b2r(failIfExists))
	a.syscall("CopyFileA", raw)
	src, res := a.probeStr(raw[0])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	dst, res := a.probeStr(raw[1])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if errno := a.k.VFS().Copy(src, dst, boolArg(raw[2])); errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	a.charge(a.k.Costs().IOCost(len(dst)))
	return a.ok()
}

// SetFileAttributesA records attributes for a path (stored, not
// interpreted).
func (a *API) SetFileAttributesA(path string, attrs uint32) bool {
	ad := a.p.Addr()
	pathAddr := ad.MapStr(path)
	defer ad.Release(pathAddr)
	raw := a.p.Raw(pathAddr, uint64(attrs))
	a.syscall("SetFileAttributesA", raw)
	target, res := a.probeStr(raw[0])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if !a.k.VFS().Exists(target) {
		return a.fail(ntsim.ErrFileNotFound)
	}
	return a.ok()
}

// GetFullPathNameA resolves a relative path against the simulated working
// directory (C:\), returning the length of the resolved path.
func (a *API) GetFullPathNameA(path string, resolved *string) uint32 {
	ad := a.p.Addr()
	pathAddr := ad.MapStr(path)
	out := make([]byte, 260)
	outAddr := ad.MapBuf(out)
	defer ad.Release(pathAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(pathAddr, uint64(len(out)), outAddr, 0)
	a.syscall("GetFullPathNameA", raw)
	rel, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	dst, ok := a.mustBuf(raw[2])
	if !ok {
		return 0
	}
	full := rel
	if !strings.Contains(rel, ":") && !strings.HasPrefix(rel, `\\`) {
		full = `C:\` + strings.TrimLeft(rel, `\/`)
	}
	n := copy(dst, full)
	if resolved != nil {
		*resolved = full
	}
	a.ok()
	return uint32(n)
}

// SearchPathA looks for a file name along the simulated search path
// (C:\WINNT\system32, then C:\WINNT, then C:\), returning the full path
// length.
func (a *API) SearchPathA(name string, found *string) uint32 {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	out := make([]byte, 260)
	outAddr := ad.MapBuf(out)
	defer ad.Release(nameAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(0, nameAddr, 0, uint64(len(out)), outAddr, 0)
	a.syscall("SearchPathA", raw)
	file, res := a.probeStr(raw[1])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	if _, ok := a.mustBuf(raw[4]); !ok {
		return 0
	}
	for _, dir := range []string{`C:\WINNT\system32\`, `C:\WINNT\`, `C:\`} {
		candidate := dir + file
		if a.k.VFS().Exists(candidate) {
			if found != nil {
				*found = candidate
			}
			a.ok()
			return uint32(len(candidate))
		}
	}
	a.fail(ntsim.ErrFileNotFound)
	return 0
}

// GetDriveTypeA reports DRIVE_FIXED for C: and DRIVE_NO_ROOT_DIR otherwise.
func (a *API) GetDriveTypeA(root string) uint32 {
	ad := a.p.Addr()
	rootAddr := ad.MapStr(root)
	defer ad.Release(rootAddr)
	raw := a.p.Raw(rootAddr)
	a.syscall("GetDriveTypeA", raw)
	r, res := a.probeStr(raw[0])
	if res == ptrNull {
		return 3 // NULL means the current drive: DRIVE_FIXED
	}
	if strings.HasPrefix(strings.ToUpper(r), "C:") {
		return 3 // DRIVE_FIXED
	}
	return 1 // DRIVE_NO_ROOT_DIR
}

// GetLogicalDrives reports the drive bitmask (bit 2 = C:).
func (a *API) GetLogicalDrives() uint32 {
	a.syscall("GetLogicalDrives", nil)
	return 1 << 2
}

// SetErrorMode sets the process error mode, returning the previous one.
func (a *API) SetErrorMode(mode uint32) uint32 {
	raw := a.p.Raw(uint64(mode))
	a.syscall("SetErrorMode", raw)
	prev := a.errorMode
	a.errorMode = uint32(raw[0])
	return prev
}

// GetDiskFreeSpaceA reports the testbed's 2 GB FAT volume geometry.
func (a *API) GetDiskFreeSpaceA(root string, freeClusters *uint32) bool {
	ad := a.p.Addr()
	rootAddr := ad.MapStr(root)
	defer ad.Release(rootAddr)
	c1, _, r1 := a.outCell()
	c2, _, r2 := a.outCell()
	c3, v3, r3 := a.outCell()
	c4, _, r4 := a.outCell()
	defer r1()
	defer r2()
	defer r3()
	defer r4()
	raw := a.p.Raw(rootAddr, c1, c2, c3, c4)
	a.syscall("GetDiskFreeSpaceA", raw)
	if _, res := a.probeStr(raw[0]); res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	for _, addr := range raw[1:] {
		buf, ok := a.mustBuf(addr)
		if !ok {
			return false
		}
		putU32(buf, 0)
	}
	if buf, res := a.buf(raw[3]); res == ptrResolved {
		putU32(buf, 65536) // free clusters
	}
	if freeClusters != nil {
		*freeClusters = v3()
	}
	return a.ok()
}
