package win32

import (
	"time"

	"ntdts/internal/ntsim"
)

// Named-pipe constants (subset).
const (
	PipeAccessDuplex     uint32 = 0x3
	PipeTypeByte         uint32 = 0x0
	PipeUnlimitedInstanc uint32 = 255
	NMPWaitUseDefault    uint32 = 0
	NMPWaitForever       uint32 = 0xFFFFFFFF
)

// CreateNamedPipeA creates a server-side instance of a named pipe.
func (a *API) CreateNamedPipeA(name string, openMode, pipeMode, maxInstances uint32) Handle {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr, uint64(openMode), uint64(pipeMode),
		uint64(maxInstances), 0, 0, 0, 0)
	a.syscall("CreateNamedPipeA", raw)

	path, res := a.str(raw[0])
	switch res {
	case ptrWild:
		a.av()
	case ptrNull:
		a.fail(ntsim.ErrInvalidParameter)
		return InvalidHandle
	}
	ps, errno := a.k.CreatePipeServer(path)
	if errno != ntsim.ErrSuccess {
		a.fail(errno)
		return InvalidHandle
	}
	a.ok()
	return a.p.NewHandle(ps)
}

// ConnectNamedPipe blocks until a client connects to the instance.
func (a *API) ConnectNamedPipe(h Handle) bool {
	raw := a.p.Raw(uint64(h), 0)
	a.syscall("ConnectNamedPipe", raw)
	ps, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.PipeServer)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	errno := ps.Listen(a.p)
	if errno == ntsim.ErrPipeConnected {
		// A client connected between CreateNamedPipe and this call:
		// report it via last-error, but the connection is usable.
		a.p.SetLastError(errno)
		return true
	}
	if errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	return a.ok()
}

// DisconnectNamedPipe drops the connected client from the instance.
func (a *API) DisconnectNamedPipe(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("DisconnectNamedPipe", raw)
	ps, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.PipeServer)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if errno := ps.Disconnect(); errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	return a.ok()
}

// WaitNamedPipeA waits until an instance of the pipe is available for
// connection, polling on the virtual clock. timeoutMS follows the Win32
// contract (NMPWAIT_WAIT_FOREVER blocks indefinitely).
func (a *API) WaitNamedPipeA(name string, timeoutMS uint32) bool {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr, uint64(timeoutMS))
	a.syscall("WaitNamedPipeA", raw)

	path, res := a.str(raw[0])
	switch res {
	case ptrWild:
		return a.av()
	case ptrNull:
		return a.fail(ntsim.ErrInvalidParameter)
	}
	timeoutMS = uint32(raw[1])
	const pollInterval = 100 * time.Millisecond
	deadline := a.k.Now().Add(time.Duration(timeoutMS) * time.Millisecond)
	for {
		avail, errno := a.k.PipeAvailable(path)
		if errno != ntsim.ErrSuccess {
			return a.fail(errno)
		}
		if avail {
			return a.ok()
		}
		if timeoutMS != NMPWaitForever && !a.k.Now().Before(deadline) {
			return a.fail(ntsim.ErrSemTimeout)
		}
		a.p.SleepFor(pollInterval)
	}
}

// PeekNamedPipe reports the number of bytes available without consuming
// them (simplified: availability probe on the server side is not modeled;
// client ends report buffered byte counts).
func (a *API) PeekNamedPipe(h Handle, avail *uint32) bool {
	if avail != nil {
		*avail = 0
	}
	cellAddr, cellVal, releaseCell := a.outCell()
	defer releaseCell()
	raw := a.p.Raw(uint64(h), 0, 0, 0, cellAddr, 0)
	a.syscall("PeekNamedPipe", raw)
	outBuf, res := a.buf(raw[4])
	if res == ptrWild {
		return a.av()
	}
	switch a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(type) {
	case *ntsim.PipeServer, *ntsim.PipeClient:
	default:
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if res == ptrResolved {
		putU32(outBuf, 0)
	}
	if avail != nil {
		*avail = cellVal()
	}
	return a.ok()
}
