package win32

import (
	"testing"

	"ntdts/internal/ntsim"
)

func TestLocalAtomLifecycle(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		atom := a.AddAtomA("MyWindowClass")
		if atom < 0xC000 {
			t.Fatalf("atom %#x below the string-atom range", atom)
		}
		// Interning is idempotent and case-insensitive.
		if again := a.AddAtomA("mywindowclass"); again != atom {
			t.Errorf("re-add returned %#x, want %#x", again, atom)
		}
		if found := a.FindAtomA("MYWINDOWCLASS"); found != atom {
			t.Errorf("find returned %#x", found)
		}
		var name string
		if n := a.GetAtomNameA(atom, &name); n == 0 || name != "MyWindowClass" {
			t.Errorf("GetAtomNameA = %q (%d)", name, n)
		}
		// Two references: two deletes to drop it.
		if a.DeleteAtom(atom) != 0 {
			t.Error("first delete failed")
		}
		if a.FindAtomA("MyWindowClass") != atom {
			t.Error("atom vanished after one delete of two refs")
		}
		if a.DeleteAtom(atom) != 0 {
			t.Error("second delete failed")
		}
		if a.FindAtomA("MyWindowClass") != 0 {
			t.Error("atom survived both deletes")
		}
		if a.DeleteAtom(atom) == 0 {
			t.Error("delete of a dead atom succeeded")
		}
		if a.Process().LastError() != ntsim.ErrInvalidHandle {
			t.Errorf("error %v", a.Process().LastError())
		}
		return 0
	})
}

func TestGlobalAtomsSharedAcrossProcesses(t *testing.T) {
	k := ntsim.NewKernel()
	var atomFromA uint16
	k.RegisterImage("a.exe", func(p *ntsim.Process) uint32 {
		atomFromA = New(p).GlobalAddAtomA("shared-format")
		return 0
	})
	var foundInB uint16
	var nameInB string
	k.RegisterImage("b.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		p.SleepFor(1000000) // run after a.exe
		foundInB = a.GlobalFindAtomA("SHARED-FORMAT")
		a.GlobalGetAtomNameA(foundInB, &nameInB)
		return 0
	})
	k.Spawn("a.exe", "a.exe", 0)
	k.Spawn("b.exe", "b.exe", 0)
	for k.Step() {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	if atomFromA == 0 || foundInB != atomFromA || nameInB != "shared-format" {
		t.Fatalf("global atom not shared: a=%#x b=%#x name=%q", atomFromA, foundInB, nameInB)
	}
}

func TestLocalAtomsIsolatedBetweenProcesses(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("a.exe", func(p *ntsim.Process) uint32 {
		New(p).AddAtomA("local-only")
		return 0
	})
	var foundInB uint16
	k.RegisterImage("b.exe", func(p *ntsim.Process) uint32 {
		p.SleepFor(1000000)
		foundInB = New(p).FindAtomA("local-only")
		return 0
	})
	k.Spawn("a.exe", "a.exe", 0)
	k.Spawn("b.exe", "b.exe", 0)
	for k.Step() {
	}
	if foundInB != 0 {
		t.Fatalf("local atom leaked across processes: %#x", foundInB)
	}
}

func TestAtomUnknownName(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		if a.FindAtomA("never-added") != 0 {
			t.Error("found a never-added atom")
		}
		var name string
		if a.GetAtomNameA(0xC123, &name) != 0 {
			t.Error("named an unknown atom")
		}
		return 0
	})
}
