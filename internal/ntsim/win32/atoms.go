package win32

import (
	"strings"

	"ntdts/internal/ntsim"
)

// Atom tables: interned strings identified by 16-bit atoms, in a local
// (per-process) and a global (machine-wide) flavor — the classic Win32
// registration mechanism for window classes and clipboard formats.

// atomTable is one atom namespace.
type atomTable struct {
	byName map[string]uint16 // lower-cased name -> atom
	byAtom map[uint16]string // atom -> original-case name
	refs   map[uint16]int
	next   uint16
}

func newAtomTable() *atomTable {
	return &atomTable{
		byName: make(map[string]uint16),
		byAtom: make(map[uint16]string),
		refs:   make(map[uint16]int),
		next:   0xC000, // the real string-atom range starts here
	}
}

func (t *atomTable) add(name string) uint16 {
	key := strings.ToLower(name)
	if atom, ok := t.byName[key]; ok {
		t.refs[atom]++
		return atom
	}
	if t.next == 0xFFFF {
		return 0 // table full
	}
	atom := t.next
	t.next++
	t.byName[key] = atom
	t.byAtom[atom] = name
	t.refs[atom] = 1
	return atom
}

func (t *atomTable) find(name string) uint16 {
	return t.byName[strings.ToLower(name)]
}

func (t *atomTable) name(atom uint16) (string, bool) {
	n, ok := t.byAtom[atom]
	return n, ok
}

func (t *atomTable) del(atom uint16) bool {
	name, ok := t.byAtom[atom]
	if !ok {
		return false
	}
	t.refs[atom]--
	if t.refs[atom] <= 0 {
		delete(t.byAtom, atom)
		delete(t.byName, strings.ToLower(name))
		delete(t.refs, atom)
	}
	return true
}

// localAtoms returns the calling process's atom table.
func (a *API) localAtoms() *atomTable {
	key := "atoms:local:" + itoa(uint32(a.p.ID))
	if v, found := a.k.LookupNamed(key); found {
		return v.(*atomTable)
	}
	t := newAtomTable()
	a.k.RegisterNamed(key, t)
	return t
}

// globalAtoms returns the machine-wide atom table.
func (a *API) globalAtoms() *atomTable {
	const key = "atoms:global"
	if v, found := a.k.LookupNamed(key); found {
		return v.(*atomTable)
	}
	t := newAtomTable()
	a.k.RegisterNamed(key, t)
	return t
}

// atomAdd is the shared AddAtom implementation.
func (a *API) atomAdd(fn string, t *atomTable, name string) uint16 {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr)
	a.syscall(fn, raw)
	v, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	atom := t.add(v)
	if atom == 0 {
		a.fail(ntsim.ErrNotEnoughMemory)
		return 0
	}
	a.ok()
	return atom
}

// atomFind is the shared FindAtom implementation.
func (a *API) atomFind(fn string, t *atomTable, name string) uint16 {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr)
	a.syscall(fn, raw)
	v, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	atom := t.find(v)
	if atom == 0 {
		a.fail(ntsim.ErrFileNotFound)
		return 0
	}
	a.ok()
	return atom
}

// atomDel is the shared DeleteAtom implementation.
func (a *API) atomDel(fn string, t *atomTable, atom uint16) uint16 {
	raw := a.p.Raw(uint64(atom))
	a.syscall(fn, raw)
	if !t.del(uint16(raw[0])) {
		a.fail(ntsim.ErrInvalidHandle)
		return atom // DeleteAtom returns the atom on failure
	}
	a.ok()
	return 0
}

// atomName is the shared GetAtomName implementation.
func (a *API) atomName(fn string, t *atomTable, atom uint16, name *string) uint32 {
	out := make([]byte, 256)
	outAddr := a.p.Addr().MapBuf(out)
	defer a.p.Addr().Release(outAddr)
	raw := a.p.Raw(uint64(atom), outAddr, uint64(len(out)))
	a.syscall(fn, raw)
	dst, ok := a.mustBuf(raw[1])
	if !ok {
		return 0
	}
	v, found := t.name(uint16(raw[0]))
	if !found {
		a.fail(ntsim.ErrInvalidHandle)
		return 0
	}
	n := copy(dst, v)
	if uint64(n) > raw[2] {
		n = int(raw[2])
	}
	if name != nil {
		*name = v[:n]
	}
	a.ok()
	return uint32(n)
}

// AddAtomA interns a string in the process-local atom table.
func (a *API) AddAtomA(name string) uint16 { return a.atomAdd("AddAtomA", a.localAtoms(), name) }

// FindAtomA looks a string up in the local table.
func (a *API) FindAtomA(name string) uint16 { return a.atomFind("FindAtomA", a.localAtoms(), name) }

// DeleteAtom decrements a local atom's reference count.
func (a *API) DeleteAtom(atom uint16) uint16 { return a.atomDel("DeleteAtom", a.localAtoms(), atom) }

// GetAtomNameA retrieves a local atom's string.
func (a *API) GetAtomNameA(atom uint16, name *string) uint32 {
	return a.atomName("GetAtomNameA", a.localAtoms(), atom, name)
}

// GlobalAddAtomA interns a string in the machine-wide atom table.
func (a *API) GlobalAddAtomA(name string) uint16 {
	return a.atomAdd("GlobalAddAtomA", a.globalAtoms(), name)
}

// GlobalFindAtomA looks a string up in the global table.
func (a *API) GlobalFindAtomA(name string) uint16 {
	return a.atomFind("GlobalFindAtomA", a.globalAtoms(), name)
}

// GlobalDeleteAtom decrements a global atom's reference count.
func (a *API) GlobalDeleteAtom(atom uint16) uint16 {
	return a.atomDel("GlobalDeleteAtom", a.globalAtoms(), atom)
}

// GlobalGetAtomNameA retrieves a global atom's string.
func (a *API) GlobalGetAtomNameA(atom uint16, name *string) uint32 {
	return a.atomName("GlobalGetAtomNameA", a.globalAtoms(), atom, name)
}
