package win32

import "ntdts/internal/ntsim"

// Volume and temp-file utilities.

// GetVolumeInformationA reports the simulated volume: label "NTLAB1-C",
// FAT filesystem (the paper's NT 4.0 testbed era), serial 0xD75C2000.
func (a *API) GetVolumeInformationA(root string, label, fsName *string, serial *uint32) bool {
	ad := a.p.Addr()
	rootAddr := ad.MapStr(root)
	labelBuf := make([]byte, 64)
	labelAddr := ad.MapBuf(labelBuf)
	fsBuf := make([]byte, 16)
	fsAddr := ad.MapBuf(fsBuf)
	serialAddr, serialVal, releaseSerial := a.outCell()
	defer ad.Release(rootAddr)
	defer ad.Release(labelAddr)
	defer ad.Release(fsAddr)
	defer releaseSerial()

	raw := a.p.Raw(rootAddr, labelAddr, uint64(len(labelBuf)), serialAddr,
		0, 0, fsAddr, uint64(len(fsBuf)))
	a.syscall("GetVolumeInformationA", raw)

	r, res := a.probeStr(raw[0])
	if res == ptrNull {
		r = `C:\` // NULL means the current volume
	}
	if len(r) > 0 && (r[0]|0x20) != 'c' {
		return a.fail(ntsim.ErrPathNotFound)
	}
	dst, ok := a.mustBuf(raw[1])
	if !ok {
		return false
	}
	copy(dst, "NTLAB1-C")
	fsDst, ok := a.mustBuf(raw[6])
	if !ok {
		return false
	}
	copy(fsDst, "FAT")
	serialBuf, res := a.buf(raw[3])
	if res == ptrWild {
		return a.av()
	}
	if res == ptrResolved {
		putU32(serialBuf, 0xD75C2000)
	}
	if label != nil {
		*label = "NTLAB1-C"
	}
	if fsName != nil {
		*fsName = "FAT"
	}
	if serial != nil {
		*serial = serialVal()
	}
	return a.ok()
}

// GetTempFileNameA builds a unique temp file name (and creates the empty
// file, as the real call does when uUnique is zero).
func (a *API) GetTempFileNameA(dir, prefix string, unique uint32, name *string) uint32 {
	ad := a.p.Addr()
	dirAddr := ad.MapStr(dir)
	prefixAddr := ad.MapStr(prefix)
	out := make([]byte, 260)
	outAddr := ad.MapBuf(out)
	defer ad.Release(dirAddr)
	defer ad.Release(prefixAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(dirAddr, prefixAddr, uint64(unique), outAddr)
	a.syscall("GetTempFileNameA", raw)

	d, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	pfx, res := a.probeStr(raw[1])
	if res == ptrNull {
		pfx = "tmp"
	}
	if _, ok := a.mustBuf(raw[3]); !ok {
		return 0
	}
	if len(pfx) > 3 {
		pfx = pfx[:3]
	}
	u := uint32(raw[2])
	if u == 0 {
		// Find an unused number and create the file.
		for u = 1; u < 0xFFFF; u++ {
			if !a.k.VFS().Exists(tempName(d, pfx, u)) {
				break
			}
		}
		a.k.VFS().WriteFile(tempName(d, pfx, u), nil)
	}
	path := tempName(d, pfx, u&0xFFFF)
	if name != nil {
		*name = path
	}
	a.ok()
	return u & 0xFFFF
}

// tempName renders the classic <dir>\<pfx><hex>.TMP shape.
func tempName(dir, pfx string, u uint32) string {
	if len(dir) > 0 && dir[len(dir)-1] != '\\' {
		dir += `\`
	}
	const hex = "0123456789ABCDEF"
	var num [4]byte
	for i := 3; i >= 0; i-- {
		num[i] = hex[u&0xF]
		u >>= 4
	}
	return dir + pfx + string(num[:]) + ".TMP"
}
