package win32

import (
	"testing"
	"time"

	"ntdts/internal/ntsim"
)

const slotPath = `\\.\mailslot\alerts`

func TestMailslotDatagramFlow(t *testing.T) {
	k := ntsim.NewKernel()
	var got []string
	k.RegisterImage("server.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateMailslotA(slotPath, 0, MailslotWaitForever)
		if h == InvalidHandle {
			t.Error("CreateMailslotA failed")
			return 1
		}
		// Duplicate creation must fail.
		if a.CreateMailslotA(slotPath, 0, 0) != InvalidHandle {
			t.Error("duplicate mailslot created")
		}
		buf := make([]byte, 64)
		for i := 0; i < 2; i++ {
			var n uint32
			if !a.ReadFile(h, buf, 64, &n) {
				t.Errorf("mailslot read %d: %v", i, a.Process().LastError())
				return 1
			}
			got = append(got, string(buf[:n]))
		}
		var next, count uint32
		if !a.GetMailslotInfo(h, &next, &count) || count != 0 {
			t.Errorf("info after drain: next=%d count=%d", next, count)
		}
		a.CloseHandle(h)
		return 0
	})
	k.RegisterImage("sender.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		p.SleepFor(100 * time.Millisecond)
		h := a.CreateFileA(slotPath, GenericWrite, 0, OpenExisting, 0)
		if h == InvalidHandle {
			t.Errorf("open mailslot: %v", a.Process().LastError())
			return 1
		}
		var n uint32
		a.WriteFile(h, []byte("alpha"), 5, &n)
		a.WriteFile(h, []byte("beta"), 4, &n)
		a.CloseHandle(h)
		return 0
	})
	k.Spawn("server.exe", "server.exe", 0)
	k.Spawn("sender.exe", "sender.exe", 0)
	for i := 0; i < 1_000_000 && k.Step(); i++ {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("messages %v", got)
	}
}

func TestMailslotMessageBoundariesPreserved(t *testing.T) {
	// Two writes are two messages, never coalesced (unlike a pipe).
	k := ntsim.NewKernel()
	k.RegisterImage("prog.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateMailslotA(slotPath, 0, 0)
		mc := a.CreateFileA(slotPath, GenericWrite, 0, OpenExisting, 0)
		var n uint32
		a.WriteFile(mc, []byte("12345"), 5, &n)
		a.WriteFile(mc, []byte("67"), 2, &n)
		var next, count uint32
		a.GetMailslotInfo(h, &next, &count)
		if next != 5 || count != 2 {
			t.Errorf("info: next=%d count=%d, want 5/2", next, count)
		}
		big := make([]byte, 64)
		a.ReadFile(h, big, 64, &n)
		if n != 5 {
			t.Errorf("first message %d bytes", n)
		}
		// An undersized buffer fails without consuming the message.
		small := make([]byte, 1)
		if a.ReadFile(h, small, 1, &n) {
			t.Error("undersized read succeeded")
		}
		if a.Process().LastError() != ntsim.ErrInsufficientBuffer {
			t.Errorf("error %v", a.Process().LastError())
		}
		a.ReadFile(h, big, 64, &n)
		if n != 2 {
			t.Errorf("second message %d bytes", n)
		}
		return 0
	})
	k.Spawn("prog.exe", "prog.exe", 0)
	for k.Step() {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
}

func TestMailslotReadTimeout(t *testing.T) {
	k := ntsim.NewKernel()
	var elapsed time.Duration
	var errno ntsim.Errno
	k.RegisterImage("prog.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		h := a.CreateMailslotA(slotPath, 0, 2000)
		start := k.Now()
		var n uint32
		ok := a.ReadFile(h, make([]byte, 8), 8, &n)
		elapsed = k.Now().Sub(start)
		if ok {
			t.Error("read on empty slot succeeded")
		}
		errno = a.Process().LastError()
		// SetMailslotInfo switches to polling mode.
		if !a.SetMailslotInfo(h, 0) {
			t.Error("SetMailslotInfo failed")
		}
		if a.ReadFile(h, make([]byte, 8), 8, &n) {
			t.Error("poll read succeeded")
		}
		return 0
	})
	k.Spawn("prog.exe", "prog.exe", 0)
	for k.Step() {
	}
	if errno != ntsim.ErrSemTimeout {
		t.Fatalf("timeout errno %v", errno)
	}
	if elapsed < 2*time.Second || elapsed > 2*time.Second+100*time.Millisecond {
		t.Fatalf("timed out after %v, want ~2s", elapsed)
	}
}

func TestMailslotOpenMissing(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("prog.exe", func(p *ntsim.Process) uint32 {
		a := New(p)
		if a.CreateFileA(`\\.\mailslot\nothing`, GenericWrite, 0, OpenExisting, 0) != InvalidHandle {
			t.Error("opened a missing mailslot")
		}
		if a.Process().LastError() != ntsim.ErrFileNotFound {
			t.Errorf("error %v", a.Process().LastError())
		}
		return 0
	})
	k.Spawn("prog.exe", "prog.exe", 0)
	for k.Step() {
	}
}
