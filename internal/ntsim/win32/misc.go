package win32

import (
	"strings"
	"time"

	"ntdts/internal/ntsim"
)

// This file implements the broad "C runtime support" surface of KERNEL32:
// module queries, locale, strings, TLS, console handles, time. Target
// programs call these during startup and steady-state operation, which is
// what gives each workload its distinctive activated-function profile
// (Table 1 of the paper).

// probeStr resolves a string parameter with the standard consequence model:
// wild -> AV, NULL -> (handled by caller), resolved -> value.
func (a *API) probeStr(addr uint64) (string, resolution) {
	s, res := a.str(addr)
	if res == ptrWild {
		a.av()
	}
	return s, res
}

// GetVersion returns the packed NT 4.0 version number.
func (a *API) GetVersion() uint32 {
	a.syscall("GetVersion", nil)
	return 0x0004_0004 // NT 4.0
}

// OSVersionInfo mirrors OSVERSIONINFOA.
type OSVersionInfo struct {
	MajorVersion uint32
	MinorVersion uint32
	BuildNumber  uint32
	PlatformID   uint32
	CSDVersion   string
}

// GetVersionExA fills an OSVERSIONINFOA with the simulated platform.
func (a *API) GetVersionExA(info *OSVersionInfo) bool {
	buf := make([]byte, 148)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("GetVersionExA", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return false
	}
	if info != nil {
		*info = OSVersionInfo{
			MajorVersion: 4, MinorVersion: 0, BuildNumber: 1381,
			PlatformID: 2, CSDVersion: "Service Pack 4",
		}
	}
	return a.ok()
}

// GetModuleHandleA returns a pseudo-handle for a loaded module (NULL name
// means the main executable).
func (a *API) GetModuleHandleA(name string) uint32 {
	ad := a.p.Addr()
	nameAddr := uint64(0)
	if name != "" {
		nameAddr = ad.MapStr(name)
		defer ad.Release(nameAddr)
	}
	raw := a.p.Raw(nameAddr)
	a.syscall("GetModuleHandleA", raw)
	if _, res := a.probeStr(raw[0]); res == ptrNull {
		return 0x0040_0000 // main module base
	}
	return 0x1000_0000 // some DLL base
}

// GetModuleFileNameA stores the module path, returning its length.
func (a *API) GetModuleFileNameA(module uint32, name *string) uint32 {
	out := make([]byte, 260)
	outAddr := a.p.Addr().MapBuf(out)
	defer a.p.Addr().Release(outAddr)
	raw := a.p.Raw(uint64(module), outAddr, uint64(len(out)))
	a.syscall("GetModuleFileNameA", raw)
	dst, ok := a.mustBuf(raw[1])
	if !ok {
		return 0
	}
	path := `C:\Program Files\` + a.p.Image
	n := copy(dst, path)
	if uint64(n) > raw[2] {
		n = int(raw[2])
	}
	if name != nil {
		*name = path[:n]
	}
	a.ok()
	return uint32(n)
}

// LoadLibraryA loads a DLL (registered modules resolve; everything else
// fails with ERROR_FILE_NOT_FOUND, after which GetProcAddress is moot).
func (a *API) LoadLibraryA(name string) uint32 {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr)
	a.syscall("LoadLibraryA", raw)
	lib, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	switch strings.ToLower(strings.TrimSuffix(lib, ".dll")) {
	case "kernel32", "advapi32", "user32", "wsock32", "msvcrt":
		a.ok()
		return 0x1000_0000
	}
	a.fail(ntsim.ErrFileNotFound)
	return 0
}

// FreeLibrary unloads a DLL reference.
func (a *API) FreeLibrary(module uint32) bool {
	raw := a.p.Raw(uint64(module))
	a.syscall("FreeLibrary", raw)
	if uint32(raw[0]) == 0 {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	return a.ok()
}

// GetProcAddress resolves an export by name; the simulation reports success
// for any name on a valid module handle (call sites use the typed API).
func (a *API) GetProcAddress(module uint32, proc string) uint32 {
	ad := a.p.Addr()
	procAddr := ad.MapStr(proc)
	defer ad.Release(procAddr)
	raw := a.p.Raw(uint64(module), procAddr)
	a.syscall("GetProcAddress", raw)
	if _, res := a.probeStr(raw[1]); res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	if uint32(raw[0]) == 0 {
		a.fail(ntsim.ErrInvalidHandle)
		return 0
	}
	a.ok()
	return 0x1000_1000
}

// Std handle identifiers.
const (
	StdInputHandle  uint32 = 0xFFFFFFF6 // -10
	StdOutputHandle uint32 = 0xFFFFFFF5 // -11
	StdErrorHandle  uint32 = 0xFFFFFFF4 // -12
)

// GetStdHandle returns a pseudo-handle for a standard device. The simulated
// console is modeled as a VFS file per process.
func (a *API) GetStdHandle(which uint32) Handle {
	raw := a.p.Raw(uint64(which))
	a.syscall("GetStdHandle", raw)
	var path string
	switch uint32(raw[0]) {
	case StdOutputHandle:
		path = consolePath(a.p, "out")
	case StdErrorHandle:
		path = consolePath(a.p, "err")
	case StdInputHandle:
		path = consolePath(a.p, "in")
	default:
		a.fail(ntsim.ErrInvalidHandle)
		return InvalidHandle
	}
	of, errno := a.k.VFS().Open(path, GenericRead|GenericWrite, OpenAlways)
	if errno != ntsim.ErrSuccess {
		a.fail(errno)
		return InvalidHandle
	}
	// Output streams append; the input stream reads from the start.
	if uint32(raw[0]) != StdInputHandle {
		of.SeekTo(0, FileEnd)
	}
	a.ok()
	return a.p.NewHandle(of)
}

func consolePath(p *ntsim.Process, stream string) string {
	return `C:\sim\console\` + p.Image + `.` + stream
}

// SystemInfo mirrors SYSTEM_INFO (subset).
type SystemInfo struct {
	NumberOfProcessors uint32
	PageSize           uint32
	ProcessorType      uint32
}

// GetSystemInfo fills a SYSTEM_INFO describing the 100 MHz Pentium testbed.
func (a *API) GetSystemInfo(info *SystemInfo) {
	buf := make([]byte, 36)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("GetSystemInfo", raw)
	if _, res := a.buf(raw[0]); res == ptrWild {
		a.av()
	}
	if info != nil {
		*info = SystemInfo{NumberOfProcessors: 1, PageSize: 4096, ProcessorType: 586}
	}
}

// SystemTime mirrors SYSTEMTIME.
type SystemTime struct {
	Year, Month, Day, Hour, Minute, Second, Milliseconds uint16
}

func (a *API) systemTimeCall(fn string, st *SystemTime) {
	buf := make([]byte, 16)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall(fn, raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return
	}
	// Simulation epoch: 2000-05-01 00:00 (the paper's lab era), plus
	// virtual time.
	base := time.Date(2000, 5, 1, 0, 0, 0, 0, time.UTC)
	now := base.Add(time.Duration(a.k.Now()))
	if st != nil {
		*st = SystemTime{
			Year: uint16(now.Year()), Month: uint16(now.Month()),
			Day: uint16(now.Day()), Hour: uint16(now.Hour()),
			Minute: uint16(now.Minute()), Second: uint16(now.Second()),
			Milliseconds: uint16(now.Nanosecond() / 1e6),
		}
	}
	a.ok()
}

// GetSystemTime fills a SYSTEMTIME in UTC.
func (a *API) GetSystemTime(st *SystemTime) { a.systemTimeCall("GetSystemTime", st) }

// GetLocalTime fills a SYSTEMTIME in local time (the simulated box runs UTC).
func (a *API) GetLocalTime(st *SystemTime) { a.systemTimeCall("GetLocalTime", st) }

// GetSystemTimeAsFileTime stores the time as a FILETIME tick count.
func (a *API) GetSystemTimeAsFileTime(ft *uint64) {
	buf := make([]byte, 8)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("GetSystemTimeAsFileTime", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return
	}
	if ft != nil {
		*ft = uint64(time.Duration(a.k.Now()) / 100) // 100ns ticks
	}
	a.ok()
}

// QueryPerformanceCounter stores the high-resolution tick count.
func (a *API) QueryPerformanceCounter(count *int64) bool {
	buf := make([]byte, 8)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("QueryPerformanceCounter", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return false
	}
	if count != nil {
		*count = int64(time.Duration(a.k.Now()) / time.Microsecond)
	}
	return a.ok()
}

// QueryPerformanceFrequency stores the counter frequency (1 MHz).
func (a *API) QueryPerformanceFrequency(freq *int64) bool {
	buf := make([]byte, 8)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("QueryPerformanceFrequency", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return false
	}
	if freq != nil {
		*freq = 1_000_000
	}
	return a.ok()
}

// GetACP returns the ANSI code page (1252).
func (a *API) GetACP() uint32 {
	a.syscall("GetACP", nil)
	return 1252
}

// GetOEMCP returns the OEM code page (437).
func (a *API) GetOEMCP() uint32 {
	a.syscall("GetOEMCP", nil)
	return 437
}

// GetCPInfo fills code-page info (max char size).
func (a *API) GetCPInfo(codePage uint32, maxCharSize *uint32) bool {
	buf := make([]byte, 20)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(uint64(codePage), addr)
	a.syscall("GetCPInfo", raw)
	if _, ok := a.mustBuf(raw[1]); !ok {
		return false
	}
	if maxCharSize != nil {
		*maxCharSize = 1
	}
	return a.ok()
}

// GetComputerNameA stores the machine name.
func (a *API) GetComputerNameA(name *string) bool {
	out := make([]byte, 32)
	outAddr := a.p.Addr().MapBuf(out)
	cellAddr, _, releaseCell := a.outCell()
	defer a.p.Addr().Release(outAddr)
	defer releaseCell()
	raw := a.p.Raw(outAddr, cellAddr)
	a.syscall("GetComputerNameA", raw)
	dst, ok := a.mustBuf(raw[0])
	if !ok {
		return false
	}
	const host = "NTLAB1"
	copy(dst, host)
	if name != nil {
		*name = host
	}
	return a.ok()
}

// GetSystemDirectoryA stores the system directory path, returning its length.
func (a *API) GetSystemDirectoryA(dir *string) uint32 {
	return a.dirQuery("GetSystemDirectoryA", `C:\WINNT\system32`, dir)
}

// GetWindowsDirectoryA stores the Windows directory path.
func (a *API) GetWindowsDirectoryA(dir *string) uint32 {
	return a.dirQuery("GetWindowsDirectoryA", `C:\WINNT`, dir)
}

// GetTempPathA stores the temp directory path.
func (a *API) GetTempPathA(dir *string) uint32 {
	return a.dirQuery("GetTempPathA", `C:\TEMP\`, dir)
}

// GetCurrentDirectoryA stores the process working directory.
func (a *API) GetCurrentDirectoryA(dir *string) uint32 {
	return a.dirQuery("GetCurrentDirectoryA", `C:\`, dir)
}

func (a *API) dirQuery(fn, path string, dir *string) uint32 {
	out := make([]byte, 260)
	outAddr := a.p.Addr().MapBuf(out)
	defer a.p.Addr().Release(outAddr)
	raw := a.p.Raw(uint64(len(out)), outAddr)
	a.syscall(fn, raw)
	dst, ok := a.mustBuf(raw[1])
	if !ok {
		return 0
	}
	n := copy(dst, path)
	if dir != nil {
		*dir = path
	}
	a.ok()
	return uint32(n)
}

// lstr family ---------------------------------------------------------------

// LstrlenA returns the length of a string parameter.
func (a *API) LstrlenA(s string) int32 {
	ad := a.p.Addr()
	addr := ad.MapStr(s)
	defer ad.Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("lstrlenA", raw)
	v, res := a.probeStr(raw[0])
	if res == ptrNull {
		return 0 // lstrlenA(NULL) returns 0 by contract
	}
	return int32(len(v))
}

// LstrcpyA copies src, returning it (dst is modeled by the return value).
func (a *API) LstrcpyA(src string) (string, bool) {
	ad := a.p.Addr()
	dstBuf := make([]byte, len(src)+1)
	dstAddr := ad.MapBuf(dstBuf)
	srcAddr := ad.MapStr(src)
	defer ad.Release(dstAddr)
	defer ad.Release(srcAddr)
	raw := a.p.Raw(dstAddr, srcAddr)
	a.syscall("lstrcpyA", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return "", false
	}
	v, res := a.probeStr(raw[1])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return "", false
	}
	return v, true
}

// LstrcatA concatenates two strings.
func (a *API) LstrcatA(dst, src string) (string, bool) {
	ad := a.p.Addr()
	dstAddr := ad.MapStr(dst)
	srcAddr := ad.MapStr(src)
	defer ad.Release(dstAddr)
	defer ad.Release(srcAddr)
	raw := a.p.Raw(dstAddr, srcAddr)
	a.syscall("lstrcatA", raw)
	d, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return "", false
	}
	s, res := a.probeStr(raw[1])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return "", false
	}
	return d + s, true
}

// LstrcmpiA compares two strings case-insensitively.
func (a *API) LstrcmpiA(s1, s2 string) int32 {
	ad := a.p.Addr()
	a1 := ad.MapStr(s1)
	a2 := ad.MapStr(s2)
	defer ad.Release(a1)
	defer ad.Release(a2)
	raw := a.p.Raw(a1, a2)
	a.syscall("lstrcmpiA", raw)
	v1, _ := a.probeStr(raw[0])
	v2, _ := a.probeStr(raw[1])
	return int32(strings.Compare(strings.ToLower(v1), strings.ToLower(v2)))
}

// MultiByteToWideChar converts ANSI to UTF-16, returning the wide length.
func (a *API) MultiByteToWideChar(codePage uint32, s string) int32 {
	ad := a.p.Addr()
	srcAddr := ad.MapStr(s)
	defer ad.Release(srcAddr)
	out := make([]byte, 2*len(s)+2)
	outAddr := ad.MapBuf(out)
	defer ad.Release(outAddr)
	raw := a.p.Raw(uint64(codePage), 0, srcAddr, uint64(len(s)), outAddr, uint64(len(s)+1))
	a.syscall("MultiByteToWideChar", raw)
	v, res := a.probeStr(raw[2])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	if _, ok := a.mustBuf(raw[4]); !ok {
		return 0
	}
	a.ok()
	return int32(len(v))
}

// WideCharToMultiByte converts UTF-16 to ANSI, returning the narrow length.
func (a *API) WideCharToMultiByte(codePage uint32, s string) int32 {
	ad := a.p.Addr()
	srcAddr := ad.MapStr(s)
	defer ad.Release(srcAddr)
	out := make([]byte, len(s)+1)
	outAddr := ad.MapBuf(out)
	defer ad.Release(outAddr)
	raw := a.p.Raw(uint64(codePage), 0, srcAddr, uint64(len(s)), outAddr, uint64(len(s)+1), 0, 0)
	a.syscall("WideCharToMultiByte", raw)
	v, res := a.probeStr(raw[2])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	if _, ok := a.mustBuf(raw[4]); !ok {
		return 0
	}
	a.ok()
	return int32(len(v))
}

// OutputDebugStringA sends a message to the (simulated) debugger: appended
// to a per-machine debug file.
func (a *API) OutputDebugStringA(msg string) {
	ad := a.p.Addr()
	addr := ad.MapStr(msg)
	defer ad.Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("OutputDebugStringA", raw)
	v, res := a.probeStr(raw[0])
	if res == ptrNull {
		return
	}
	cur, _ := a.k.VFS().ReadFile(`C:\sim\debug.log`)
	a.k.VFS().WriteFile(`C:\sim\debug.log`, append(cur, []byte(v+"\n")...))
}

// FormatMessageA renders an error code to text.
func (a *API) FormatMessageA(flags uint32, code uint32) string {
	out := make([]byte, 256)
	outAddr := a.p.Addr().MapBuf(out)
	defer a.p.Addr().Release(outAddr)
	raw := a.p.Raw(uint64(flags), 0, uint64(code), 0, outAddr, uint64(len(out)), 0)
	a.syscall("FormatMessageA", raw)
	if _, ok := a.mustBuf(raw[4]); !ok {
		return ""
	}
	a.ok()
	return ntsim.Errno(uint32(raw[2])).Error()
}

// TLS -----------------------------------------------------------------------

// tlsState holds per-process TLS slots, stored via the named registry.
type tlsState struct {
	slots map[uint32]uint64
	next  uint32
}

func (a *API) tls() *tlsState {
	key := "tls:" + a.p.Image + ":" + itoa(uint32(a.p.ID))
	if v, found := a.k.LookupNamed(key); found {
		return v.(*tlsState)
	}
	st := &tlsState{slots: make(map[uint32]uint64)}
	a.k.RegisterNamed(key, st)
	return st
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TlsAlloc allocates a TLS slot index.
func (a *API) TlsAlloc() uint32 {
	a.syscall("TlsAlloc", nil)
	st := a.tls()
	idx := st.next
	st.next++
	st.slots[idx] = 0
	return idx
}

// TlsFree releases a TLS slot.
func (a *API) TlsFree(idx uint32) bool {
	raw := a.p.Raw(uint64(idx))
	a.syscall("TlsFree", raw)
	st := a.tls()
	if _, found := st.slots[uint32(raw[0])]; !found {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	delete(st.slots, uint32(raw[0]))
	return a.ok()
}

// TlsSetValue stores a value in a TLS slot.
func (a *API) TlsSetValue(idx uint32, value uint64) bool {
	raw := a.p.Raw(uint64(idx), value)
	a.syscall("TlsSetValue", raw)
	st := a.tls()
	if _, found := st.slots[uint32(raw[0])]; !found {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	st.slots[uint32(raw[0])] = raw[1]
	return a.ok()
}

// TlsGetValue loads a value from a TLS slot (0 for unknown slots, with
// last-error distinguishing, like Win32).
func (a *API) TlsGetValue(idx uint32) uint64 {
	raw := a.p.Raw(uint64(idx))
	a.syscall("TlsGetValue", raw)
	st := a.tls()
	v, found := st.slots[uint32(raw[0])]
	if !found {
		a.fail(ntsim.ErrInvalidParameter)
		return 0
	}
	a.ok()
	return v
}

// Profile files ---------------------------------------------------------------

// GetPrivateProfileStringA reads a key from an INI file in the VFS.
func (a *API) GetPrivateProfileStringA(section, key, def, file string) string {
	ad := a.p.Addr()
	secAddr := ad.MapStr(section)
	keyAddr := ad.MapStr(key)
	defAddr := ad.MapStr(def)
	fileAddr := ad.MapStr(file)
	out := make([]byte, 256)
	outAddr := ad.MapBuf(out)
	defer ad.Release(secAddr)
	defer ad.Release(keyAddr)
	defer ad.Release(defAddr)
	defer ad.Release(fileAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(secAddr, keyAddr, defAddr, outAddr, uint64(len(out)), fileAddr)
	a.syscall("GetPrivateProfileStringA", raw)
	sec, res := a.probeStr(raw[0])
	if res == ptrNull {
		sec = ""
	}
	k, res := a.probeStr(raw[1])
	if res == ptrNull {
		k = ""
	}
	d, _ := a.probeStr(raw[2])
	if _, ok := a.mustBuf(raw[3]); !ok {
		return ""
	}
	path, res := a.probeStr(raw[5])
	if res == ptrNull {
		return d
	}
	data, found := a.k.VFS().ReadFile(path)
	if !found {
		return d
	}
	val, found := iniLookup(string(data), sec, k)
	if !found {
		return d
	}
	return val
}

// GetPrivateProfileIntA reads an integer key from an INI file.
func (a *API) GetPrivateProfileIntA(section, key string, def int32, file string) int32 {
	ad := a.p.Addr()
	secAddr := ad.MapStr(section)
	keyAddr := ad.MapStr(key)
	fileAddr := ad.MapStr(file)
	defer ad.Release(secAddr)
	defer ad.Release(keyAddr)
	defer ad.Release(fileAddr)
	raw := a.p.Raw(secAddr, keyAddr, uint64(uint32(def)), fileAddr)
	a.syscall("GetPrivateProfileIntA", raw)
	sec, _ := a.probeStr(raw[0])
	k, _ := a.probeStr(raw[1])
	d := int32(uint32(raw[2]))
	path, res := a.probeStr(raw[3])
	if res == ptrNull {
		return d
	}
	data, found := a.k.VFS().ReadFile(path)
	if !found {
		return d
	}
	val, found := iniLookup(string(data), sec, k)
	if !found {
		return d
	}
	n := int32(0)
	neg := false
	for i, c := range val {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int32(c-'0')
	}
	if neg {
		n = -n
	}
	return n
}

// iniLookup finds [section] key=value in INI text.
func iniLookup(text, section, key string) (string, bool) {
	inSection := section == ""
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			inSection = strings.EqualFold(line[1:len(line)-1], section)
			continue
		}
		if !inSection {
			continue
		}
		if eq := strings.IndexByte(line, '='); eq > 0 {
			if strings.EqualFold(strings.TrimSpace(line[:eq]), key) {
				return strings.TrimSpace(line[eq+1:]), true
			}
		}
	}
	return "", false
}

// Validation helpers -----------------------------------------------------------

// IsBadReadPtr reports whether a pointer range is unreadable (TRUE = bad).
func (a *API) IsBadReadPtr(addr uint64, size uint32) bool {
	raw := a.p.Raw(addr, uint64(size))
	a.syscall("IsBadReadPtr", raw)
	_, _, ok := a.p.Addr().Buf(raw[0])
	return !ok || raw[0] == 0
}

// IsBadWritePtr reports whether a pointer range is unwritable (TRUE = bad).
func (a *API) IsBadWritePtr(addr uint64, size uint32) bool {
	raw := a.p.Raw(addr, uint64(size))
	a.syscall("IsBadWritePtr", raw)
	_, _, ok := a.p.Addr().Buf(raw[0])
	return !ok || raw[0] == 0
}

// GetFileType classifies a handle (disk file vs pipe vs character device).
func (a *API) GetFileType(h Handle) uint32 {
	raw := a.p.Raw(uint64(h))
	a.syscall("GetFileType", raw)
	switch a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(type) {
	case *ntsim.OpenFile:
		a.ok()
		return 1 // FILE_TYPE_DISK
	case *ntsim.PipeServer, *ntsim.PipeClient:
		a.ok()
		return 3 // FILE_TYPE_PIPE
	}
	a.fail(ntsim.ErrInvalidHandle)
	return 0 // FILE_TYPE_UNKNOWN
}

// SetHandleCount is a legacy no-op that returns its argument.
func (a *API) SetHandleCount(n uint32) uint32 {
	raw := a.p.Raw(uint64(n))
	a.syscall("SetHandleCount", raw)
	return uint32(raw[0])
}

// GlobalMemoryStatus reports the 48 MB testbed memory configuration.
func (a *API) GlobalMemoryStatus(totalPhysKB *uint32) {
	buf := make([]byte, 32)
	addr := a.p.Addr().MapBuf(buf)
	defer a.p.Addr().Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("GlobalMemoryStatus", raw)
	if _, res := a.buf(raw[0]); res == ptrWild {
		a.av()
	}
	if totalPhysKB != nil {
		*totalPhysKB = 48 * 1024
	}
}

// DuplicateHandle clones a handle within the same (or another) process.
func (a *API) DuplicateHandle(srcProc Handle, src Handle, dstProc Handle, dst *Handle) bool {
	cellAddr, _, releaseCell := a.outCell()
	defer releaseCell()
	raw := a.p.Raw(uint64(srcProc), uint64(src), uint64(dstProc), cellAddr, 0, 0, 0)
	a.syscall("DuplicateHandle", raw)
	if _, ok := a.mustBuf(raw[3]); !ok {
		return false
	}
	obj := a.p.Resolve(ntsim.Handle(uint32(raw[1])))
	if obj == nil {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	h := a.p.NewHandle(obj)
	if dst != nil {
		*dst = h
	}
	return a.ok()
}

// GetCurrentProcess returns the pseudo-handle for the calling process.
func (a *API) GetCurrentProcess() Handle {
	a.syscall("GetCurrentProcess", nil)
	return Handle(0xFFFFFFFF)
}

// GetCurrentThreadId returns a stable per-process pseudo thread id.
func (a *API) GetCurrentThreadId() uint32 {
	a.syscall("GetCurrentThreadId", nil)
	return uint32(a.p.ID)*4 + 1
}
