package win32

import "ntdts/internal/ntsim"

// Additional synchronization entry points used by monitoring middleware:
// PulseEvent, TryEnterCriticalSection and SignalObjectAndWait.

// PulseEvent signals an event and immediately resets it: waiters present at
// the pulse are released (all for manual-reset, one for auto-reset), and
// the event ends up non-signaled — the racy legacy primitive.
func (a *API) PulseEvent(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("PulseEvent", raw)
	ev, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Event)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	ev.Set()
	ev.Reset()
	return a.ok()
}

// TryEnterCriticalSection acquires the lock without blocking, reporting
// success. (Processes are single-threaded in the simulation, so the lock
// is always free — but the pointer still travels the injection path, and a
// corrupted one faults.)
func (a *API) TryEnterCriticalSection(cs *CriticalSection) bool {
	raw := a.p.Raw(cs.addr)
	a.syscall("TryEnterCriticalSection", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	if !cs.initialized {
		a.av()
	}
	return true
}

// SignalObjectAndWait signals one object and waits on another as a single
// call: the handoff primitive monitoring loops use to avoid lost wakeups.
func (a *API) SignalObjectAndWait(signal, wait Handle, timeoutMS uint32) uint32 {
	raw := a.p.Raw(uint64(signal), uint64(wait), uint64(timeoutMS), 0)
	a.syscall("SignalObjectAndWait", raw)
	switch obj := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(type) {
	case *ntsim.Event:
		obj.Set()
	case *ntsim.Mutex:
		if !obj.Release(a.p) {
			a.fail(ntsim.ErrAccessDenied)
			return ntsim.WaitFailed
		}
	case *ntsim.Semaphore:
		if !obj.ReleaseN(1) {
			a.fail(ntsim.ErrInvalidParameter)
			return ntsim.WaitFailed
		}
	default:
		a.fail(ntsim.ErrInvalidHandle)
		return ntsim.WaitFailed
	}
	w, okh := a.p.ResolveWaitable(ntsim.Handle(uint32(raw[1])))
	if !okh {
		a.fail(ntsim.ErrInvalidHandle)
		return ntsim.WaitFailed
	}
	return ntsim.WaitOne(a.p, w, uint32(raw[2]))
}
