package win32

import "testing"

// The catalog census is load-bearing: the paper's §4 numbers (681 KERNEL32
// exports, 130 with no parameters, 551 injectable) size every campaign's
// fault list and the conformance golden matrix. These tests pin the census
// so a catalog edit cannot silently drift from the paper.

func TestCatalogCensusMatchesPaper(t *testing.T) {
	total, zero, injectable := CatalogCounts()
	if total != 681 {
		t.Errorf("catalog total %d, want 681", total)
	}
	if zero != 130 {
		t.Errorf("zero-parameter %d, want 130", zero)
	}
	if injectable != 551 {
		t.Errorf("injectable %d, want 551", injectable)
	}
	if zero+injectable != total {
		t.Errorf("census does not partition: %d zero + %d injectable != %d total",
			zero, injectable, total)
	}
}

// TestCatalogFlattenMatchesCounts recounts the census from the flattened
// Catalog() slice, so the counts and the walk every campaign and the
// conformance sweep perform can never disagree.
func TestCatalogFlattenMatchesCounts(t *testing.T) {
	wantTotal, wantZero, wantInjectable := CatalogCounts()
	total, zero, injectable := 0, 0, 0
	for _, e := range Catalog() {
		total++
		if e.Params == 0 {
			zero++
		} else {
			injectable++
		}
	}
	if total != wantTotal || zero != wantZero || injectable != wantInjectable {
		t.Fatalf("Catalog() census (%d, %d, %d) != CatalogCounts() (%d, %d, %d)",
			total, zero, injectable, wantTotal, wantZero, wantInjectable)
	}
}

func TestCatalogNoDuplicates(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Catalog() {
		if e.Name == "" {
			t.Error("catalog entry with empty name")
		}
		if seen[e.Name] {
			t.Errorf("duplicate catalog entry %q", e.Name)
		}
		seen[e.Name] = true
	}
}

// TestCatalogEntriesWellFormed bounds every entry's parameter count by the
// widest KERNEL32 signature of the NT 4.0 era (CreateProcess, 10 params).
func TestCatalogEntriesWellFormed(t *testing.T) {
	for _, e := range Catalog() {
		if e.Params < 0 || e.Params > 10 {
			t.Errorf("%s: parameter count %d out of range [0, 10]", e.Name, e.Params)
		}
	}
}

// TestCatalogLookupCoherent asserts CatalogLookup agrees with the flattened
// walk for every entry and rejects unknown names.
func TestCatalogLookupCoherent(t *testing.T) {
	for _, e := range Catalog() {
		got, ok := CatalogLookup(e.Name)
		if !ok {
			t.Errorf("CatalogLookup(%q) missed a cataloged entry", e.Name)
			continue
		}
		if got != e {
			t.Errorf("CatalogLookup(%q) = %+v, Catalog() holds %+v", e.Name, got, e)
		}
	}
	if _, ok := CatalogLookup("NotAKernel32Export"); ok {
		t.Error("CatalogLookup accepted an unknown name")
	}
}
