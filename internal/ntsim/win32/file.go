package win32

import (
	"ntdts/internal/ntsim"
)

// Creation dispositions and access masks, re-exported for callers.
const (
	CreateNew        = ntsim.CreateNew
	CreateAlways     = ntsim.CreateAlways
	OpenExisting     = ntsim.OpenExisting
	OpenAlways       = ntsim.OpenAlways
	TruncateExisting = ntsim.TruncateExisting

	GenericRead  = ntsim.GenericRead
	GenericWrite = ntsim.GenericWrite

	FileBegin   = ntsim.FileBegin
	FileCurrent = ntsim.FileCurrent
	FileEnd     = ntsim.FileEnd
)

// CreateFileA opens or creates a file, or connects a client end to a named
// pipe when the path is in the \\.\pipe\ namespace.
func (a *API) CreateFileA(name string, access, shareMode uint32, disposition, flags uint32) Handle {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr, uint64(access), uint64(shareMode), 0,
		uint64(disposition), uint64(flags), 0)
	a.syscall("CreateFileA", raw)

	path, res := a.str(raw[0])
	switch res {
	case ptrWild:
		a.av()
	case ptrNull:
		a.fail(ntsim.ErrInvalidParameter)
		return InvalidHandle
	}
	access = uint32(raw[1])
	disposition = uint32(raw[4])

	if ntsim.IsPipePath(path) {
		pc, errno := a.k.ConnectPipeClient(path)
		if errno != ntsim.ErrSuccess {
			a.fail(errno)
			return InvalidHandle
		}
		a.charge(a.k.Costs().PipeConnect)
		a.ok()
		return a.p.NewHandle(pc)
	}
	if ntsim.IsMailslotPath(path) {
		mc, errno := a.k.OpenMailslot(path)
		if errno != ntsim.ErrSuccess {
			a.fail(errno)
			return InvalidHandle
		}
		a.ok()
		return a.p.NewHandle(mc)
	}

	of, errno := a.k.VFS().Open(path, access, disposition)
	if errno != ntsim.ErrSuccess && errno != ntsim.ErrAlreadyExists {
		a.fail(errno)
		return InvalidHandle
	}
	a.charge(a.k.Costs().FileOpen)
	a.p.SetLastError(errno) // CreateFile reports ERROR_ALREADY_EXISTS via last-error
	return a.p.NewHandle(of)
}

// ReadFile reads up to toRead bytes into buf, storing the transfer count in
// *read. It returns FALSE on failure per Win32 convention.
func (a *API) ReadFile(h Handle, buf []byte, toRead uint32, read *uint32) bool {
	return a.readCommon("ReadFile", h, buf, toRead, read)
}

// ReadFileEx is the extended read entry point. The simulation executes it
// synchronously (the completion-routine machinery is not modeled; see
// DESIGN.md). Its parameter layout matches the real export, making the
// paper's nNumberOfBytesToRead injection land on raw[2].
func (a *API) ReadFileEx(h Handle, buf []byte, toRead uint32, read *uint32) bool {
	return a.readCommon("ReadFileEx", h, buf, toRead, read)
}

func (a *API) readCommon(fn string, h Handle, buf []byte, toRead uint32, read *uint32) bool {
	if read != nil {
		*read = 0
	}
	ad := a.p.Addr()
	bufAddr := ad.MapBuf(buf)
	cellAddr, cellVal, releaseCell := a.outCell()
	defer ad.Release(bufAddr)
	defer releaseCell()

	raw := a.p.Raw(uint64(h), bufAddr, uint64(toRead), cellAddr, 0)
	a.syscall(fn, raw)

	dst, ok := a.mustBuf(raw[1])
	if !ok {
		return false
	}
	outBuf, res := a.buf(raw[3])
	if res == ptrWild {
		return a.av()
	}
	n := uint32(raw[2])
	if n == 0 {
		// Zero-length read: success, zero bytes (the paper's
		// ReadFileEx/SQL fault lands here).
		if res == ptrResolved {
			putU32(outBuf, 0)
		}
		if read != nil {
			*read = cellVal()
		}
		return a.ok()
	}
	if uint64(n) > uint64(len(dst)) {
		// Kernel write probe past the end of the buffer.
		return a.av()
	}

	var got int
	var errno ntsim.Errno
	switch obj := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(type) {
	case *ntsim.OpenFile:
		got, errno = obj.Read(dst[:n])
	case *ntsim.PipeServer:
		got, errno = obj.Read(a.p, dst[:n])
	case *ntsim.PipeClient:
		got, errno = obj.Read(a.p, dst[:n])
	case *ntsim.Mailslot:
		got, errno = obj.Read(a.p, dst[:n])
	default:
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	a.charge(a.k.Costs().IOCost(got))
	if res == ptrResolved {
		putU32(outBuf, uint32(got))
	} else if res == ptrNull {
		return a.fail(ntsim.ErrNoaccess)
	}
	if read != nil {
		*read = cellVal()
	}
	return a.ok()
}

// WriteFile writes toWrite bytes of buf, storing the transfer count in
// *written.
func (a *API) WriteFile(h Handle, buf []byte, toWrite uint32, written *uint32) bool {
	if written != nil {
		*written = 0
	}
	ad := a.p.Addr()
	bufAddr := ad.MapBuf(buf)
	cellAddr, cellVal, releaseCell := a.outCell()
	defer ad.Release(bufAddr)
	defer releaseCell()

	raw := a.p.Raw(uint64(h), bufAddr, uint64(toWrite), cellAddr, 0)
	a.syscall("WriteFile", raw)

	src, ok := a.mustBuf(raw[1])
	if !ok {
		return false
	}
	outBuf, res := a.buf(raw[3])
	if res == ptrWild {
		return a.av()
	}
	n := uint32(raw[2])
	if uint64(n) > uint64(len(src)) {
		// Kernel read probe past the end of the source buffer.
		return a.av()
	}

	var put int
	var errno ntsim.Errno
	switch obj := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(type) {
	case *ntsim.OpenFile:
		put, errno = obj.Write(src[:n])
		if errno == ntsim.ErrSuccess {
			obj.Touch(a.k.Now())
		}
	case *ntsim.PipeServer:
		put, errno = obj.Write(src[:n])
	case *ntsim.PipeClient:
		put, errno = obj.Write(src[:n])
	case *ntsim.MailslotClient:
		put, errno = obj.Write(src[:n])
	default:
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	a.charge(a.k.Costs().IOCost(put))
	if res == ptrResolved {
		putU32(outBuf, uint32(put))
	} else if res == ptrNull {
		return a.fail(ntsim.ErrNoaccess)
	}
	if written != nil {
		*written = cellVal()
	}
	return a.ok()
}

// SetFilePointer moves a file offset; returns the low 32 bits of the new
// position, or 0xFFFFFFFF on failure.
func (a *API) SetFilePointer(h Handle, distance int32, method uint32) uint32 {
	raw := a.p.Raw(uint64(h), uint64(uint32(distance)), 0, uint64(method))
	a.syscall("SetFilePointer", raw)
	of, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.OpenFile)
	if !okh {
		a.fail(ntsim.ErrInvalidHandle)
		return 0xFFFFFFFF
	}
	pos, errno := of.SeekTo(int64(int32(uint32(raw[1]))), uint32(raw[3]))
	if errno != ntsim.ErrSuccess {
		a.fail(errno)
		return 0xFFFFFFFF
	}
	a.ok()
	return uint32(pos)
}

// GetFileSize returns a file's size in bytes, or 0xFFFFFFFF on failure.
func (a *API) GetFileSize(h Handle, sizeHigh *uint32) uint32 {
	if sizeHigh != nil {
		*sizeHigh = 0
	}
	raw := a.p.Raw(uint64(h), 0)
	a.syscall("GetFileSize", raw)
	of, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.OpenFile)
	if !okh {
		a.fail(ntsim.ErrInvalidHandle)
		return 0xFFFFFFFF
	}
	a.ok()
	return uint32(of.Size())
}

// FlushFileBuffers flushes a file handle (no-op) or blocks until a pipe
// peer has consumed all written bytes — the call a well-behaved pipe server
// makes before DisconnectNamedPipe, since disconnecting discards unread
// data.
func (a *API) FlushFileBuffers(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("FlushFileBuffers", raw)
	switch obj := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(type) {
	case *ntsim.OpenFile, *ntsim.PipeClient:
		return a.ok()
	case *ntsim.PipeServer:
		if errno := obj.Flush(a.p); errno != ntsim.ErrSuccess {
			return a.fail(errno)
		}
		return a.ok()
	}
	return a.fail(ntsim.ErrInvalidHandle)
}

// DeleteFileA removes a file by name.
func (a *API) DeleteFileA(name string) bool {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr)
	a.syscall("DeleteFileA", raw)
	path, res := a.str(raw[0])
	switch res {
	case ptrWild:
		return a.av()
	case ptrNull:
		return a.fail(ntsim.ErrInvalidParameter)
	}
	if !a.k.VFS().Remove(path) {
		return a.fail(ntsim.ErrFileNotFound)
	}
	return a.ok()
}

// GetFileAttributesA returns the attributes of a file (simplified to
// FILE_ATTRIBUTE_NORMAL), or 0xFFFFFFFF if the file does not exist.
func (a *API) GetFileAttributesA(name string) uint32 {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr)
	a.syscall("GetFileAttributesA", raw)
	path, res := a.str(raw[0])
	switch res {
	case ptrWild:
		a.av()
	case ptrNull:
		a.fail(ntsim.ErrInvalidParameter)
		return 0xFFFFFFFF
	}
	if !a.k.VFS().Exists(path) {
		a.fail(ntsim.ErrFileNotFound)
		return 0xFFFFFFFF
	}
	a.ok()
	return 0x80 // FILE_ATTRIBUTE_NORMAL
}

// CloseHandle releases a handle of any kernel object type.
func (a *API) CloseHandle(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("CloseHandle", raw)
	if !a.p.CloseHandle(ntsim.Handle(uint32(raw[0]))) {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	return a.ok()
}
