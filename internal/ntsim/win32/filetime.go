package win32

import (
	"time"

	"ntdts/internal/ntsim"
	"ntdts/internal/vclock"
)

// FILETIME support: 64-bit counts of 100 ns ticks since 1601-01-01, the
// NT-native time representation. The simulation's epoch (2000-05-01, the
// paper's lab era) maps onto the FILETIME axis so timestamps read
// plausibly in traces.

// Filetime is a FILETIME value.
type Filetime uint64

// ticksPerSecond is the FILETIME resolution (100 ns ticks).
const ticksPerSecond = 10_000_000

// filetimeAt converts a wall instant to FILETIME without overflowing
// time.Duration (time.Time.Sub saturates at ~292 years, far short of the
// 1601 epoch).
func filetimeAt(when time.Time) Filetime {
	base := time.Date(1601, 1, 1, 0, 0, 0, 0, time.UTC)
	secs := when.Unix() - base.Unix()
	return Filetime(secs)*ticksPerSecond + Filetime(when.Nanosecond()/100)
}

// simEpochFiletime is 2000-05-01 00:00 UTC on the FILETIME axis.
var simEpochFiletime = filetimeAt(time.Date(2000, 5, 1, 0, 0, 0, 0, time.UTC))

// filetimeOf converts a virtual instant to FILETIME.
func filetimeOf(t vclock.Time) Filetime {
	return simEpochFiletime + Filetime(time.Duration(t)/100)
}

// vtimeOf converts a FILETIME back to a virtual instant (clamped at the
// simulation epoch).
func vtimeOf(ft Filetime) vclock.Time {
	if ft < simEpochFiletime {
		return 0
	}
	return vclock.Time(time.Duration(ft-simEpochFiletime) * 100)
}

// GetFileTime stores the file's (creation, access, write) times; the
// simulation tracks only the write time and reports it for all three.
func (a *API) GetFileTime(h Handle, write *Filetime) bool {
	ad := a.p.Addr()
	cells := make([]byte, 24)
	addr := ad.MapBuf(cells)
	defer ad.Release(addr)
	raw := a.p.Raw(uint64(h), addr, addr, addr)
	a.syscall("GetFileTime", raw)
	of, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.OpenFile)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if _, ok := a.mustBuf(raw[1]); !ok {
		return false
	}
	if write != nil {
		*write = filetimeOf(of.Mtime())
	}
	return a.ok()
}

// SetFileTime sets the file's write time.
func (a *API) SetFileTime(h Handle, write Filetime) bool {
	ad := a.p.Addr()
	cell := make([]byte, 8)
	addr := ad.MapBuf(cell)
	defer ad.Release(addr)
	raw := a.p.Raw(uint64(h), 0, 0, addr)
	a.syscall("SetFileTime", raw)
	of, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.OpenFile)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	if _, res := a.buf(raw[3]); res == ptrWild {
		return a.av()
	}
	of.Touch(vtimeOf(write))
	return a.ok()
}

// CompareFileTime returns -1, 0 or +1.
func (a *API) CompareFileTime(f1, f2 Filetime) int32 {
	ad := a.p.Addr()
	b1 := make([]byte, 8)
	b2 := make([]byte, 8)
	a1 := ad.MapBuf(b1)
	a2 := ad.MapBuf(b2)
	defer ad.Release(a1)
	defer ad.Release(a2)
	raw := a.p.Raw(a1, a2)
	a.syscall("CompareFileTime", raw)
	if _, res := a.buf(raw[0]); res != ptrResolved {
		a.av()
	}
	if _, res := a.buf(raw[1]); res != ptrResolved {
		a.av()
	}
	switch {
	case f1 < f2:
		return -1
	case f1 > f2:
		return 1
	default:
		return 0
	}
}

// FileTimeToSystemTime expands a FILETIME into calendar fields.
func (a *API) FileTimeToSystemTime(ft Filetime, st *SystemTime) bool {
	ad := a.p.Addr()
	in := make([]byte, 8)
	out := make([]byte, 16)
	inAddr := ad.MapBuf(in)
	outAddr := ad.MapBuf(out)
	defer ad.Release(inAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(inAddr, outAddr)
	a.syscall("FileTimeToSystemTime", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return false
	}
	if _, ok := a.mustBuf(raw[1]); !ok {
		return false
	}
	// A 1601-epoch span does not fit in time.Duration (it saturates at
	// ~292 years), so reconstruct the instant through Unix seconds.
	base := time.Date(1601, 1, 1, 0, 0, 0, 0, time.UTC)
	when := time.Unix(base.Unix()+int64(ft/ticksPerSecond),
		int64(ft%ticksPerSecond)*100).UTC()
	if st != nil {
		*st = SystemTime{
			Year: uint16(when.Year()), Month: uint16(when.Month()),
			Day: uint16(when.Day()), Hour: uint16(when.Hour()),
			Minute: uint16(when.Minute()), Second: uint16(when.Second()),
			Milliseconds: uint16(when.Nanosecond() / 1e6),
		}
	}
	return a.ok()
}

// SystemTimeToFileTime packs calendar fields into a FILETIME.
func (a *API) SystemTimeToFileTime(st SystemTime, ft *Filetime) bool {
	ad := a.p.Addr()
	in := make([]byte, 16)
	out := make([]byte, 8)
	inAddr := ad.MapBuf(in)
	outAddr := ad.MapBuf(out)
	defer ad.Release(inAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(inAddr, outAddr)
	a.syscall("SystemTimeToFileTime", raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return false
	}
	if _, ok := a.mustBuf(raw[1]); !ok {
		return false
	}
	if st.Month < 1 || st.Month > 12 || st.Day < 1 || st.Day > 31 {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	when := time.Date(int(st.Year), time.Month(st.Month), int(st.Day),
		int(st.Hour), int(st.Minute), int(st.Second), int(st.Milliseconds)*1e6, time.UTC)
	if ft != nil {
		*ft = filetimeAt(when)
	}
	return a.ok()
}

// FileTimeToLocalFileTime converts UTC to local time (the simulated box
// runs UTC, so this is the identity — with the usual pointer probing).
func (a *API) FileTimeToLocalFileTime(ft Filetime, local *Filetime) bool {
	return a.filetimeIdentity("FileTimeToLocalFileTime", ft, local)
}

// LocalFileTimeToFileTime converts local time to UTC (identity here).
func (a *API) LocalFileTimeToFileTime(ft Filetime, utc *Filetime) bool {
	return a.filetimeIdentity("LocalFileTimeToFileTime", ft, utc)
}

func (a *API) filetimeIdentity(fn string, ft Filetime, out *Filetime) bool {
	ad := a.p.Addr()
	in := make([]byte, 8)
	ob := make([]byte, 8)
	inAddr := ad.MapBuf(in)
	outAddr := ad.MapBuf(ob)
	defer ad.Release(inAddr)
	defer ad.Release(outAddr)
	raw := a.p.Raw(inAddr, outAddr)
	a.syscall(fn, raw)
	if _, ok := a.mustBuf(raw[0]); !ok {
		return false
	}
	if _, ok := a.mustBuf(raw[1]); !ok {
		return false
	}
	if out != nil {
		*out = ft
	}
	return a.ok()
}
