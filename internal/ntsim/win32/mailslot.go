package win32

import "ntdts/internal/ntsim"

// Mailslot API: CreateMailslotA creates the read end; clients open the
// \\.\mailslot\ path with CreateFileA and send datagrams with WriteFile.

// MailslotWaitForever mirrors MAILSLOT_WAIT_FOREVER.
const MailslotWaitForever = ntsim.MailslotWaitForever

// CreateMailslotA creates a mailslot server handle.
func (a *API) CreateMailslotA(name string, maxMessageSize, readTimeoutMS uint32) Handle {
	ad := a.p.Addr()
	nameAddr := ad.MapStr(name)
	defer ad.Release(nameAddr)
	raw := a.p.Raw(nameAddr, uint64(maxMessageSize), uint64(readTimeoutMS), 0)
	a.syscall("CreateMailslotA", raw)
	path, res := a.probeStr(raw[0])
	if res == ptrNull {
		a.fail(ntsim.ErrInvalidParameter)
		return InvalidHandle
	}
	ms, errno := a.k.CreateMailslot(path, uint32(raw[2]))
	if errno != ntsim.ErrSuccess {
		a.fail(errno)
		return InvalidHandle
	}
	a.ok()
	return a.p.NewHandle(ms)
}

// GetMailslotInfo reports the next message size and message count.
func (a *API) GetMailslotInfo(h Handle, nextSize, count *uint32) bool {
	c1, v1, r1 := a.outCell()
	c2, v2, r2 := a.outCell()
	defer r1()
	defer r2()
	raw := a.p.Raw(uint64(h), 0, c1, c2, 0)
	a.syscall("GetMailslotInfo", raw)
	ms, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Mailslot)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	next, n := ms.Info()
	if buf, res := a.buf(raw[2]); res == ptrResolved {
		putU32(buf, next)
	} else if res == ptrWild {
		return a.av()
	}
	if buf, res := a.buf(raw[3]); res == ptrResolved {
		putU32(buf, n)
	} else if res == ptrWild {
		return a.av()
	}
	if nextSize != nil {
		*nextSize = v1()
	}
	if count != nil {
		*count = v2()
	}
	return a.ok()
}

// SetMailslotInfo updates the slot's read timeout.
func (a *API) SetMailslotInfo(h Handle, readTimeoutMS uint32) bool {
	raw := a.p.Raw(uint64(h), uint64(readTimeoutMS))
	a.syscall("SetMailslotInfo", raw)
	ms, okh := a.p.Resolve(ntsim.Handle(uint32(raw[0]))).(*ntsim.Mailslot)
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	ms.SetReadTimeout(uint32(raw[1]))
	return a.ok()
}
