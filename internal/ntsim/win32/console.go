package win32

import "ntdts/internal/ntsim"

// Console API subset. The simulated console is the per-process trio of VFS
// files GetStdHandle opens; console-wide state (mode, title, code pages)
// lives in a per-process record. Real NT console apps mix WriteFile and
// WriteConsoleA on the same handles, and so do the simulated programs.

// consoleState is the per-process console record.
type consoleState struct {
	mode     uint32
	title    string
	inputCP  uint32
	outputCP uint32
	ctrlSet  bool
}

func (a *API) console() *consoleState {
	key := "console:" + itoa(uint32(a.p.ID))
	if v, found := a.k.LookupNamed(key); found {
		return v.(*consoleState)
	}
	st := &consoleState{mode: 0x3 | 0x4, title: a.p.Image, inputCP: 437, outputCP: 437}
	a.k.RegisterNamed(key, st)
	return st
}

// consoleFile reports whether a handle refers to one of the process's
// console files.
func (a *API) consoleFile(h Handle) (*ntsim.OpenFile, bool) {
	of, ok := a.p.Resolve(h).(*ntsim.OpenFile)
	if !ok {
		return nil, false
	}
	// The console files live under C:\sim\console\.
	const prefix = `C:\sim\console\`
	if len(of.Path()) < len(prefix) || of.Path()[:len(prefix)] != prefix {
		return nil, false
	}
	return of, true
}

// AllocConsole attaches a console (idempotent in the simulation).
func (a *API) AllocConsole() bool {
	a.syscall("AllocConsole", nil)
	a.console()
	return a.ok()
}

// FreeConsole detaches the console.
func (a *API) FreeConsole() bool {
	a.syscall("FreeConsole", nil)
	return a.ok()
}

// GetConsoleCP returns the input code page.
func (a *API) GetConsoleCP() uint32 {
	a.syscall("GetConsoleCP", nil)
	return a.console().inputCP
}

// GetConsoleOutputCP returns the output code page.
func (a *API) GetConsoleOutputCP() uint32 {
	a.syscall("GetConsoleOutputCP", nil)
	return a.console().outputCP
}

// SetConsoleCP sets the input code page.
func (a *API) SetConsoleCP(cp uint32) bool {
	raw := a.p.Raw(uint64(cp))
	a.syscall("SetConsoleCP", raw)
	a.console().inputCP = uint32(raw[0])
	return a.ok()
}

// SetConsoleOutputCP sets the output code page.
func (a *API) SetConsoleOutputCP(cp uint32) bool {
	raw := a.p.Raw(uint64(cp))
	a.syscall("SetConsoleOutputCP", raw)
	a.console().outputCP = uint32(raw[0])
	return a.ok()
}

// GetConsoleMode stores the console mode flags.
func (a *API) GetConsoleMode(h Handle, mode *uint32) bool {
	cellAddr, cellVal, release := a.outCell()
	defer release()
	raw := a.p.Raw(uint64(h), cellAddr)
	a.syscall("GetConsoleMode", raw)
	if _, ok := a.consoleFile(ntsim.Handle(uint32(raw[0]))); !ok {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	out, ok := a.mustBuf(raw[1])
	if !ok {
		return false
	}
	putU32(out, a.console().mode)
	if mode != nil {
		*mode = cellVal()
	}
	return a.ok()
}

// SetConsoleMode sets the console mode flags.
func (a *API) SetConsoleMode(h Handle, mode uint32) bool {
	raw := a.p.Raw(uint64(h), uint64(mode))
	a.syscall("SetConsoleMode", raw)
	if _, ok := a.consoleFile(ntsim.Handle(uint32(raw[0]))); !ok {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	a.console().mode = uint32(raw[1])
	return a.ok()
}

// GetConsoleTitleA stores the window title, returning its length.
func (a *API) GetConsoleTitleA(title *string) uint32 {
	out := make([]byte, 256)
	outAddr := a.p.Addr().MapBuf(out)
	defer a.p.Addr().Release(outAddr)
	raw := a.p.Raw(outAddr, uint64(len(out)))
	a.syscall("GetConsoleTitleA", raw)
	dst, ok := a.mustBuf(raw[0])
	if !ok {
		return 0
	}
	cur := a.console().title
	n := copy(dst, cur)
	if title != nil {
		*title = cur
	}
	a.ok()
	return uint32(n)
}

// SetConsoleTitleA sets the window title.
func (a *API) SetConsoleTitleA(title string) bool {
	ad := a.p.Addr()
	addr := ad.MapStr(title)
	defer ad.Release(addr)
	raw := a.p.Raw(addr)
	a.syscall("SetConsoleTitleA", raw)
	v, res := a.probeStr(raw[0])
	if res == ptrNull {
		return a.fail(ntsim.ErrInvalidParameter)
	}
	a.console().title = v
	return a.ok()
}

// WriteConsoleA writes characters to a console output handle.
func (a *API) WriteConsoleA(h Handle, buf []byte, toWrite uint32, written *uint32) bool {
	if written != nil {
		*written = 0
	}
	ad := a.p.Addr()
	bufAddr := ad.MapBuf(buf)
	cellAddr, cellVal, release := a.outCell()
	defer ad.Release(bufAddr)
	defer release()
	raw := a.p.Raw(uint64(h), bufAddr, uint64(toWrite), cellAddr, 0)
	a.syscall("WriteConsoleA", raw)
	of, okh := a.consoleFile(ntsim.Handle(uint32(raw[0])))
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	src, ok := a.mustBuf(raw[1])
	if !ok {
		return false
	}
	n := uint32(raw[2])
	if uint64(n) > uint64(len(src)) {
		return a.av()
	}
	put, errno := of.Write(src[:n])
	if errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	out, res := a.buf(raw[3])
	if res == ptrWild {
		return a.av()
	}
	if res == ptrResolved {
		putU32(out, uint32(put))
	}
	if written != nil {
		*written = cellVal()
	}
	return a.ok()
}

// ReadConsoleA reads characters from a console input handle.
func (a *API) ReadConsoleA(h Handle, buf []byte, toRead uint32, read *uint32) bool {
	if read != nil {
		*read = 0
	}
	ad := a.p.Addr()
	bufAddr := ad.MapBuf(buf)
	cellAddr, cellVal, release := a.outCell()
	defer ad.Release(bufAddr)
	defer release()
	raw := a.p.Raw(uint64(h), bufAddr, uint64(toRead), cellAddr, 0)
	a.syscall("ReadConsoleA", raw)
	of, okh := a.consoleFile(ntsim.Handle(uint32(raw[0])))
	if !okh {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	dst, ok := a.mustBuf(raw[1])
	if !ok {
		return false
	}
	n := uint32(raw[2])
	if uint64(n) > uint64(len(dst)) {
		return a.av()
	}
	got, errno := of.Read(dst[:n])
	if errno != ntsim.ErrSuccess {
		return a.fail(errno)
	}
	out, res := a.buf(raw[3])
	if res == ptrWild {
		return a.av()
	}
	if res == ptrResolved {
		putU32(out, uint32(got))
	}
	if read != nil {
		*read = cellVal()
	}
	return a.ok()
}

// FlushConsoleInputBuffer discards pending console input.
func (a *API) FlushConsoleInputBuffer(h Handle) bool {
	raw := a.p.Raw(uint64(h))
	a.syscall("FlushConsoleInputBuffer", raw)
	if _, ok := a.consoleFile(ntsim.Handle(uint32(raw[0]))); !ok {
		return a.fail(ntsim.ErrInvalidHandle)
	}
	return a.ok()
}

// SetConsoleCtrlHandler registers (or clears) the control handler.
func (a *API) SetConsoleCtrlHandler(add bool) bool {
	raw := a.p.Raw(0, b2r(add))
	a.syscall("SetConsoleCtrlHandler", raw)
	a.console().ctrlSet = boolArg(raw[1])
	return a.ok()
}
