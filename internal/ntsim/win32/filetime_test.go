package win32

import (
	"testing"
	"time"

	"ntdts/internal/vclock"
)

func TestFileTimeTracksWrites(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		h := a.CreateFileA(`C:\stamp`, GenericRead|GenericWrite, 0, CreateAlways, 0)
		a.Sleep(2000)
		var n uint32
		a.WriteFile(h, []byte("x"), 1, &n)
		var ft Filetime
		if !a.GetFileTime(h, &ft) {
			t.Error("GetFileTime failed")
			return 1
		}
		// The write landed at ~2s of virtual time.
		want := filetimeOf(vclock.Time(2 * time.Second))
		diff := int64(ft) - int64(want)
		if diff < 0 {
			diff = -diff
		}
		if time.Duration(diff)*100 > time.Second {
			t.Errorf("mtime %d vs expected ~%d", ft, want)
		}
		// SetFileTime overrides.
		target := filetimeOf(vclock.Time(10 * time.Second))
		if !a.SetFileTime(h, target) {
			t.Error("SetFileTime failed")
		}
		a.GetFileTime(h, &ft)
		if ft != target {
			t.Errorf("after SetFileTime: %d, want %d", ft, target)
		}
		return 0
	})
}

func TestCompareFileTime(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		lo := filetimeOf(vclock.Time(time.Second))
		hi := filetimeOf(vclock.Time(2 * time.Second))
		if a.CompareFileTime(lo, hi) != -1 || a.CompareFileTime(hi, lo) != 1 || a.CompareFileTime(lo, lo) != 0 {
			t.Error("CompareFileTime ordering")
		}
		return 0
	})
}

func TestFileTimeSystemTimeRoundtrip(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		orig := filetimeOf(vclock.Time(90 * time.Minute))
		var st SystemTime
		if !a.FileTimeToSystemTime(orig, &st) {
			t.Error("FileTimeToSystemTime failed")
			return 1
		}
		// The simulation epoch is 2000-05-01 00:00; 90 minutes in is 01:30.
		if st.Year != 2000 || st.Month != 5 || st.Day != 1 || st.Hour != 1 || st.Minute != 30 {
			t.Errorf("SYSTEMTIME %+v", st)
		}
		var back Filetime
		if !a.SystemTimeToFileTime(st, &back) {
			t.Error("SystemTimeToFileTime failed")
			return 1
		}
		// Roundtrip is exact to the millisecond.
		diff := int64(orig) - int64(back)
		if diff < 0 {
			diff = -diff
		}
		if time.Duration(diff)*100 > time.Millisecond {
			t.Errorf("roundtrip drift %d ticks", diff)
		}
		if a.SystemTimeToFileTime(SystemTime{Year: 2000, Month: 13, Day: 1}, &back) {
			t.Error("accepted month 13")
		}
		return 0
	})
}

func TestLocalFileTimeIdentity(t *testing.T) {
	runProg(t, nil, func(a *API) uint32 {
		ft := filetimeOf(vclock.Time(time.Hour))
		var local, utc Filetime
		if !a.FileTimeToLocalFileTime(ft, &local) || local != ft {
			t.Error("FileTimeToLocalFileTime")
		}
		if !a.LocalFileTimeToFileTime(local, &utc) || utc != ft {
			t.Error("LocalFileTimeToFileTime")
		}
		return 0
	})
}
