package ntsim

import (
	"testing"
	"time"

	"ntdts/internal/vclock"
)

func TestMailslotKernelAPI(t *testing.T) {
	k := NewKernel()
	if !IsMailslotPath(`\\.\mailslot\x`) || IsMailslotPath(`C:\f`) || IsMailslotPath(`\\.\mailslot\`) {
		t.Fatal("IsMailslotPath")
	}
	if _, errno := k.CreateMailslot(`C:\notaslot`, 0); errno != ErrInvalidName {
		t.Fatalf("bad name: %v", errno)
	}
	ms, errno := k.CreateMailslot(`\\.\mailslot\box`, MailslotWaitForever)
	if errno != ErrSuccess {
		t.Fatal(errno)
	}
	if _, errno := k.CreateMailslot(`\\.\mailslot\BOX`, 0); errno != ErrAlreadyExists {
		t.Fatalf("duplicate (case-insensitive): %v", errno)
	}
	if _, errno := k.OpenMailslot(`\\.\mailslot\other`); errno != ErrFileNotFound {
		t.Fatalf("open missing: %v", errno)
	}

	var got []string
	k.RegisterImage("reader.exe", func(p *Process) uint32 {
		buf := make([]byte, 32)
		for i := 0; i < 2; i++ {
			n, errno := ms.Read(p, buf)
			if errno != ErrSuccess {
				t.Errorf("read %d: %v", i, errno)
				return 1
			}
			got = append(got, string(buf[:n]))
		}
		return 0
	})
	k.RegisterImage("writer.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		mc, errno := k.OpenMailslot(`\\.\mailslot\box`)
		if errno != ErrSuccess {
			t.Errorf("open: %v", errno)
			return 1
		}
		mc.Write([]byte("one"))
		mc.Write([]byte("two"))
		return 0
	})
	mustSpawn(t, k, "reader.exe", "")
	mustSpawn(t, k, "writer.exe", "")
	runAll(t, k)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("messages %v", got)
	}
	next, count := ms.Info()
	if next != MailslotWaitForever || count != 0 {
		t.Fatalf("drained info %d/%d", next, count)
	}
	checkNoPanics(t, k)
}

func TestMailslotCloseWakesReader(t *testing.T) {
	k := NewKernel()
	ms, _ := k.CreateMailslot(`\\.\mailslot\dying`, MailslotWaitForever)
	var errno Errno
	k.RegisterImage("reader.exe", func(p *Process) uint32 {
		_, errno = ms.Read(p, make([]byte, 8))
		return 0
	})
	k.RegisterImage("closer.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		h := p.NewHandle(ms)
		p.CloseHandle(h) // handle cleanup tears the slot down
		return 0
	})
	mustSpawn(t, k, "reader.exe", "")
	mustSpawn(t, k, "closer.exe", "")
	runAll(t, k)
	if errno != ErrInvalidHandle {
		t.Fatalf("reader woke with %v, want ERROR_INVALID_HANDLE", errno)
	}
	checkNoPanics(t, k)
}

func TestKernelAccessors(t *testing.T) {
	k := NewKernel()
	if k.VFS() == nil || k.Clock() == nil {
		t.Fatal("nil accessors")
	}
	if !k.Idle() {
		t.Fatal("fresh kernel not idle")
	}
	if _, ok := k.LookupImage("nothing.exe"); ok {
		t.Fatal("found unregistered image")
	}
	k.RegisterImage("x.exe", func(p *Process) uint32 { return 0 })
	if _, ok := k.LookupImage("x.exe"); !ok {
		t.Fatal("registered image not found")
	}
	costs := k.Costs()
	costs.SyscallBase = 123
	k.SetCosts(costs)
	if k.Costs().SyscallBase != 123 {
		t.Fatal("SetCosts did not stick")
	}
	if k.Costs().IOCost(-1) != 0 || k.Costs().CPUCost(0) != 0 {
		t.Fatal("negative/zero cost")
	}
	if k.Process(PID(99)) != nil {
		t.Fatal("found nonexistent process")
	}
}

func TestKernelTraceSink(t *testing.T) {
	k := NewKernel()
	var lines []string
	k.SetTrace(func(at vclock.Time, pid PID, msg string) {
		lines = append(lines, msg)
	})
	k.RegisterImage("t.exe", func(p *Process) uint32 { return 5 })
	mustSpawn(t, k, "t.exe", "t.exe")
	runAll(t, k)
	if len(lines) < 2 { // spawn + exit
		t.Fatalf("trace lines %v", lines)
	}
}
