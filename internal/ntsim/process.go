package ntsim

import (
	"fmt"
	"sort"
	"time"

	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
)

type procState int

const (
	procReady procState = iota + 1
	procRunning
	procBlocked
	procTerminated
)

// resumeAction tells a parked process how to continue.
type resumeAction struct {
	kill     bool
	killCode uint32
}

// killSignal is the sentinel panic used to unwind a simulated process that
// was terminated (by TerminateProcess, ExitProcess, or an access violation).
type killSignal struct{ code uint32 }

// Process is a simulated NT process. Program code runs in a dedicated
// goroutine, but the kernel guarantees that at most one process goroutine is
// executing at any moment, so process code may touch kernel state freely.
type Process struct {
	k       *Kernel
	ID      PID
	Image   string
	CmdLine string
	Parent  PID

	state   procState
	queued  bool
	resume  chan resumeAction
	env     map[string]string
	lastErr Errno

	pendingKill     bool
	pendingKillCode uint32

	// waitResult/waitErrno communicate the outcome of a blocking wait
	// from the waker to the woken process.
	waitResult uint32
	waitErrno  Errno
	waitCancel func() // removes this process from wait lists on timeout/kill

	handles    map[Handle]*handleEntry
	nextHandle Handle
	addr       *addrSpace

	obj       *ProcessObject
	exitCode  uint32
	startTime vclock.Time
	endTime   vclock.Time

	// wakeFn is the cached timer callback for Yield/SleepFor, allocated
	// once per process instead of once per sleep (a client's retry
	// protocol alone schedules thousands). It captures only p and reads
	// p.k dynamically, so it survives process pooling across kernels.
	wakeFn func()

	// rawBuf is the reusable system-call parameter buffer handed out by
	// Raw, so hot-path API wrappers marshal into one per-process slice
	// instead of allocating a fresh one per call.
	rawBuf []uint64
}

// Raw copies vals into the process's reusable system-call parameter
// buffer and returns it. Exactly one system call is in flight per process
// at a time (every call funnels through Syscall before the next begins),
// so the buffer is free again by the time the caller's API function
// returns. The variadic argument slice never escapes, so callers pay no
// heap allocation once the buffer has grown to the widest call.
func (p *Process) Raw(vals ...uint64) []uint64 {
	p.rawBuf = append(p.rawBuf[:0], vals...)
	return p.rawBuf
}

// run is the goroutine trampoline hosting the program image.
func (p *Process) run(entry EntryFunc) {
	act := <-p.resume // wait for first schedule
	if act.kill {
		p.finalize(act.killCode)
		return
	}
	code := ExitFailure
	func() {
		defer func() {
			if r := recover(); r != nil {
				if ks, ok := r.(killSignal); ok {
					code = ks.code
					return
				}
				// A genuine bug in simulated program code:
				// record it and fold it into a crash so the
				// harness keeps running; tests assert that
				// Kernel.Panics() stays empty.
				p.k.panics = append(p.k.panics,
					fmt.Sprintf("pid %d (%s): %v", p.ID, p.Image, r))
				code = ExitAccessViolation
			}
		}()
		code = entry(p)
	}()
	p.finalize(code)
}

// finalize marks the process terminated, releases its handles, signals its
// process object, and returns the CPU to the kernel. Runs on the process
// goroutine as its final act.
func (p *Process) finalize(code uint32) {
	p.state = procTerminated
	p.exitCode = code
	p.endTime = p.k.clock.Now()
	p.k.liveProcs--
	p.k.trace(p.ID, "exit code=0x%X", code)
	p.k.tel.Emit(p.endTime, uint32(p.ID), telemetry.KindExit, p.Image, uint64(code), 0)
	p.k.tel.Add(telemetry.CtrExit, 1)
	// Close all handles (releases owned mutexes, pipe ends, etc.) in
	// creation order — handle values are monotone and never reused — so
	// the teardown sequence (and its telemetry trace) is deterministic;
	// bare map iteration here would leak randomized order into the trace.
	hs := make([]Handle, 0, len(p.handles))
	for h := range p.handles {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		p.closeHandleInternal(h)
	}
	p.obj.signalExit(p.k)
	p.k.procYield <- struct{}{}
}

// Kernel returns the hosting kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// State helpers ------------------------------------------------------------

// Terminated reports whether the process has exited.
func (p *Process) Terminated() bool { return p.state == procTerminated }

// ExitCode returns the exit code, or ExitStillActive while running.
func (p *Process) ExitCode() uint32 { return p.exitCode }

// StartTime returns the virtual time the process was spawned.
func (p *Process) StartTime() vclock.Time { return p.startTime }

// EndTime returns the virtual time the process exited (zero while running).
func (p *Process) EndTime() vclock.Time { return p.endTime }

// Object returns the waitable process object (signaled on exit).
func (p *Process) Object() *ProcessObject { return p.obj }

// LastError returns the per-process last-error value (GetLastError).
func (p *Process) LastError() Errno { return p.lastErr }

// SetLastError sets the per-process last-error value.
func (p *Process) SetLastError(e Errno) { p.lastErr = e }

// Env returns the value of a simulated environment variable.
func (p *Process) Env(key string) string { return p.env[key] }

// SetEnv sets a simulated environment variable.
func (p *Process) SetEnv(key, value string) { p.env[key] = value }

// Scheduling ---------------------------------------------------------------

// schedQuantum is the preemption quantum: a process consuming a long CPU
// burst relinquishes the CPU every quantum so due timers fire and woken
// processes interleave, like NT's preemptive timesharing.
const schedQuantum = 10 * time.Millisecond

// ChargeTime advances the virtual clock by d, modeling CPU or I/O time
// consumed by the running process. Bursts longer than the scheduling
// quantum are sliced, with the CPU relinquished between slices.
func (p *Process) ChargeTime(d time.Duration) {
	p.checkAlive()
	for d > schedQuantum {
		p.k.clock.Advance(schedQuantum)
		d -= schedQuantum
		p.relinquish()
	}
	p.k.clock.Advance(d)
}

// relinquish requeues the running process at the back of the ready queue
// and hands the CPU to the kernel (end-of-quantum preemption). When the
// process is alone with no due timer work and the harness has granted a
// scheduling ceiling, the handoff is elided: the slow path's next Step
// would only resume this same process, so the park/resume channel
// round-trip collapses to the quanta counter it would have produced.
func (p *Process) relinquish() {
	p.checkAlive()
	k := p.k
	if k.canElide() {
		k.tel.Add(telemetry.CtrSchedQuanta, 1)
		return
	}
	k.makeReady(p)
	k.procYield <- struct{}{}
	act := <-p.resume
	if act.kill {
		panic(killSignal{act.killCode})
	}
	p.state = procRunning
}

// checkAlive panics with the kill sentinel if the process has been marked
// for termination. Called at every scheduling point.
func (p *Process) checkAlive() {
	if p.pendingKill {
		panic(killSignal{p.pendingKillCode})
	}
}

// block parks the process until the kernel resumes it, returning the wait
// result installed by the waker.
func (p *Process) block() (uint32, Errno) {
	p.checkAlive()
	p.state = procBlocked
	p.k.procYield <- struct{}{}
	act := <-p.resume
	if act.kill {
		if p.waitCancel != nil {
			p.waitCancel()
			p.waitCancel = nil
		}
		panic(killSignal{act.killCode})
	}
	p.state = procRunning
	p.waitCancel = nil
	return p.waitResult, p.waitErrno
}

// Yield relinquishes the CPU, letting other ready processes run at the same
// virtual instant (Sleep(0) semantics).
func (p *Process) Yield() {
	p.checkAlive()
	p.sleepUntil(p.k.clock.Now())
}

// SleepFor blocks the process for the given virtual duration.
func (p *Process) SleepFor(d time.Duration) {
	p.checkAlive()
	if d <= 0 {
		p.Yield()
		return
	}
	p.sleepUntil(p.k.clock.Now().Add(d))
}

// sleepUntil parks the process until wake. When the sleeper is alone and
// its wake strictly precedes every queued event and the scheduling
// ceiling, the park is elided: the slow path would fire the wake event
// and resume this same process with nothing running in between, so the
// fast path advances the clock straight to the wake instant and keeps
// going, charging the one scheduling quantum the resume would have cost.
func (p *Process) sleepUntil(wake vclock.Time) {
	k := p.k
	if k.canElideSleep(wake) {
		k.clock.Advance(wake.Sub(k.clock.Now()))
		k.tel.Add(telemetry.CtrSchedQuanta, 1)
		return
	}
	if p.wakeFn == nil {
		p.wakeFn = func() { p.k.wake(p, WaitObject0, ErrSuccess) }
	}
	k.clock.ScheduleAt(wake, p.wakeFn)
	p.block()
}

// Exit terminates the calling process with the given exit code. It does not
// return.
func (p *Process) Exit(code uint32) {
	panic(killSignal{code})
}

// RaiseAccessViolation terminates the calling process as if it dereferenced
// an invalid pointer. It does not return.
func (p *Process) RaiseAccessViolation() {
	p.k.trace(p.ID, "access violation")
	panic(killSignal{ExitAccessViolation})
}

// Terminate kills the process from outside (TerminateProcess semantics).
// Safe to call on any non-running process; the kernel unwinds it at its next
// scheduling point. Calling it on the running process is equivalent to Exit.
func (p *Process) Terminate(code uint32) {
	if p.state == procTerminated {
		return
	}
	if p.k.current == p {
		p.Exit(code)
	}
	p.pendingKill = true
	p.pendingKillCode = code
	// Wake it so the kill unwinds promptly regardless of what it was
	// waiting for.
	if p.state == procBlocked {
		p.k.wake(p, WaitFailed, ErrProcessAborted)
	} else {
		p.k.makeReady(p)
	}
}

// Syscall dispatch ----------------------------------------------------------

// Syscall charges the base system-call cost and runs the fault-injection
// interceptor over the raw parameter slice, which it may mutate in place.
// Every win32 API function funnels through here exactly once.
func (p *Process) Syscall(fn string, raw []uint64) {
	p.checkAlive()
	p.k.clock.Advance(p.k.costs.SyscallBase)
	p.k.dispatchSyscall(p, fn, raw)
}

// Addr returns the process's fake address space used for pointer-parameter
// modeling.
func (p *Process) Addr() *addrSpace { return p.addr }
