package ntsim

import (
	"runtime"
	"testing"
	"time"
)

// TestNoGoroutineLeakAcrossRuns asserts the simulation's process-goroutine
// hygiene: after KillAll drains a kernel, every process goroutine has
// unwound. A fault-injection campaign creates thousands of kernels, so a
// single leaked goroutine per run would bloat quickly.
func TestNoGoroutineLeakAcrossRuns(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		k := NewKernel()
		k.RegisterImage("worker.exe", func(p *Process) uint32 {
			switch i % 4 {
			case 0:
				return 0 // clean exit
			case 1:
				p.SleepFor(time.Hour) // killed while blocked
				return 0
			case 2:
				p.RaiseAccessViolation() // crash
				return 0
			default:
				ev := NewEvent("", true, false)
				WaitOne(p, ev, Infinite) // killed while waiting forever
				return 0
			}
		})
		for j := 0; j < 5; j++ {
			if _, err := k.Spawn("worker.exe", "worker.exe", 0); err != nil {
				t.Fatal(err)
			}
		}
		k.RunFor(time.Second)
		k.KillAll()
		if live := k.LiveProcesses(); live != 0 {
			t.Fatalf("iteration %d: %d live processes after KillAll", i, live)
		}
	}
	// Let any stragglers finish unwinding.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d across 200 kernels", baseline, runtime.NumGoroutine())
}

// TestHandleHygieneAfterExit asserts handle-table cleanup on process exit.
func TestHandleHygieneAfterExit(t *testing.T) {
	k := NewKernel()
	var proc *Process
	k.RegisterImage("h.exe", func(p *Process) uint32 {
		proc = p
		for i := 0; i < 10; i++ {
			p.NewHandle(NewEvent("", true, false))
		}
		if p.HandleCount() != 10 {
			t.Errorf("handle count %d, want 10", p.HandleCount())
		}
		return 0
	})
	mustSpawn(t, k, "h.exe", "")
	runAll(t, k)
	if proc.HandleCount() != 0 {
		t.Fatalf("%d handles leaked after exit", proc.HandleCount())
	}
}
