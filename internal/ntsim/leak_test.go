package ntsim

import (
	"testing"
	"time"
)

// TestNoGoroutineLeakAcrossRuns asserts the simulation's process-goroutine
// hygiene: after KillAll drains a kernel, every process goroutine has
// unwound. A fault-injection campaign creates thousands of kernels, so a
// single leaked goroutine per run would bloat quickly.
func TestNoGoroutineLeakAcrossRuns(t *testing.T) {
	baseline := GoroutineBaseline()
	for i := 0; i < 200; i++ {
		k := NewKernel()
		k.RegisterImage("worker.exe", func(p *Process) uint32 {
			switch i % 4 {
			case 0:
				return 0 // clean exit
			case 1:
				p.SleepFor(time.Hour) // killed while blocked
				return 0
			case 2:
				p.RaiseAccessViolation() // crash
				return 0
			default:
				ev := NewEvent("", true, false)
				WaitOne(p, ev, Infinite) // killed while waiting forever
				return 0
			}
		})
		for j := 0; j < 5; j++ {
			if _, err := k.Spawn("worker.exe", "worker.exe", 0); err != nil {
				t.Fatal(err)
			}
		}
		k.RunFor(time.Second)
		k.KillAll()
		if err := k.CheckDrained(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if err := AwaitGoroutineBaseline(baseline, time.Second); err != nil {
		t.Fatalf("across 200 kernels: %v", err)
	}
}

// TestHandleHygieneAfterExit asserts handle-table cleanup on process exit,
// both per process and through the kernel-wide snapshot.
func TestHandleHygieneAfterExit(t *testing.T) {
	k := NewKernel()
	var proc *Process
	k.RegisterImage("h.exe", func(p *Process) uint32 {
		proc = p
		for i := 0; i < 10; i++ {
			p.NewHandle(NewEvent("", true, false))
		}
		if p.HandleCount() != 10 {
			t.Errorf("handle count %d, want 10", p.HandleCount())
		}
		if got := k.OpenHandles(); got != 10 {
			t.Errorf("kernel-wide open handles %d, want 10", got)
		}
		return 0
	})
	mustSpawn(t, k, "h.exe", "")
	runAll(t, k)
	if proc.HandleCount() != 0 {
		t.Fatalf("%d handles leaked after exit", proc.HandleCount())
	}
	if err := k.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotTracksLiveState pins the snapshot's books against a kernel
// with known live processes and handles, and CheckDrained's error paths.
func TestSnapshotTracksLiveState(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("s.exe", func(p *Process) uint32 {
		p.NewHandle(NewEvent("", true, false))
		p.NewHandle(NewEvent("", true, false))
		p.SleepFor(time.Hour)
		return 0
	})
	mustSpawn(t, k, "s.exe", "")
	mustSpawn(t, k, "s.exe", "")
	k.RunFor(time.Millisecond)
	s := k.Snapshot()
	if s.LiveProcesses != 2 || s.OpenHandles != 4 {
		t.Fatalf("snapshot %+v, want 2 live processes with 4 open handles", s)
	}
	if err := k.CheckDrained(); err == nil {
		t.Fatal("CheckDrained passed with live processes")
	}
	k.KillAll()
	if err := k.CheckDrained(); err != nil {
		t.Fatal(err)
	}
	if s := k.Snapshot(); s != (ResourceSnapshot{}) {
		t.Fatalf("post-drain snapshot %+v, want zeroes", s)
	}
}
