package ntsim

// addrSpace models a process address space just deeply enough for pointer-
// parameter fault injection. Buffers and strings passed to system calls are
// registered at fake virtual addresses; the raw address travels through the
// interception layer where it may be corrupted. On the way back in, the
// kernel resolves the (possibly corrupted) address:
//
//   - the registered address        -> the original Go buffer
//   - 0 (NULL, from a zero fault)   -> nil, which APIs either reject with
//     ERROR_INVALID_PARAMETER/ERROR_NOACCESS or treat as an access violation
//   - anything else (ones / flip)   -> unmapped memory: access violation
//
// This reproduces exactly the consequence classes a real interposition
// injector produces on NT: error return, AV crash, or (for size/flag
// parameters) silently wrong behaviour.
type addrSpace struct {
	next    uint64
	regions map[uint64]*region
}

type region struct {
	base uint64
	data []byte
	str  string
	kind regionKind
}

type regionKind int

const (
	regionBuf regionKind = iota + 1
	regionStr
)

const addrBase = 0x0040_0000 // traditional Win32 image base

func newAddrSpace() *addrSpace {
	return &addrSpace{next: addrBase, regions: make(map[uint64]*region)}
}

// reset empties the address space for reuse by a pooled process, retaining
// the region map's storage.
func (a *addrSpace) reset() {
	a.next = addrBase
	clear(a.regions)
}

// MapBuf registers a byte buffer and returns its fake address. A nil buffer
// maps to NULL.
func (a *addrSpace) MapBuf(data []byte) uint64 {
	if data == nil {
		return 0
	}
	a.next += 0x1000 // page-align so corrupted addresses miss reliably
	r := &region{base: a.next, data: data, kind: regionBuf}
	a.regions[r.base] = r
	a.next += uint64(len(data))
	return r.base
}

// MapStr registers a NUL-terminated string parameter.
func (a *addrSpace) MapStr(s string) uint64 {
	a.next += 0x1000
	r := &region{base: a.next, str: s, kind: regionStr}
	a.regions[r.base] = r
	a.next += uint64(len(s)) + 1
	return r.base
}

// Buf resolves an address back to its registered buffer.
// ok=false distinguishes an unmapped address (access violation) from NULL.
func (a *addrSpace) Buf(addr uint64) (data []byte, null, ok bool) {
	if addr == 0 {
		return nil, true, true
	}
	r, found := a.regions[addr]
	if !found || r.kind != regionBuf {
		return nil, false, false
	}
	return r.data, false, true
}

// Str resolves an address back to its registered string.
func (a *addrSpace) Str(addr uint64) (s string, null, ok bool) {
	if addr == 0 {
		return "", true, true
	}
	r, found := a.regions[addr]
	if !found || r.kind != regionStr {
		return "", false, false
	}
	return r.str, false, true
}

// Release unregisters a transient parameter mapping. Addresses are never
// reused, so stale raws cannot alias later allocations.
func (a *addrSpace) Release(addr uint64) {
	delete(a.regions, addr)
}
