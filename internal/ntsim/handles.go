package ntsim

import "ntdts/internal/telemetry"

// Handle is a per-process reference to a kernel object, mirroring Win32
// HANDLE. Handle values are process-local and never reused within a process
// lifetime, so a corrupted handle value reliably fails to resolve.
type Handle uint32

// InvalidHandle mirrors INVALID_HANDLE_VALUE.
const InvalidHandle Handle = 0xFFFFFFFF

// handleEntry binds a handle slot to a kernel object.
type handleEntry struct {
	obj any
}

// objKind names a kernel object class for telemetry. The names are
// constants so the trace emission path never formats or allocates.
func objKind(obj any) string {
	switch obj.(type) {
	case *Event:
		return "event"
	case *Mutex:
		return "mutex"
	case *Semaphore:
		return "semaphore"
	case *ProcessObject:
		return "process"
	case *OpenFile:
		return "file"
	case *PipeServer:
		return "pipe-server"
	case *PipeClient:
		return "pipe-client"
	case *Mailslot:
		return "mailslot"
	case *MailslotClient:
		return "mailslot-client"
	default:
		return "object"
	}
}

// NewHandle installs obj in the process handle table and returns its handle.
func (p *Process) NewHandle(obj any) Handle {
	if obj == nil {
		panic("ntsim: NewHandle(nil)")
	}
	p.nextHandle += 4 // real NT handles are multiples of 4
	h := p.nextHandle
	p.handles[h] = &handleEntry{obj: obj}
	p.k.tel.Emit(p.k.clock.Now(), uint32(p.ID), telemetry.KindHandleNew, objKind(obj), uint64(h), 0)
	p.k.tel.Add(telemetry.CtrHandleNew, 1)
	return h
}

// Resolve returns the object bound to h, or nil if h is invalid or closed.
func (p *Process) Resolve(h Handle) any {
	e, ok := p.handles[h]
	if !ok {
		return nil
	}
	return e.obj
}

// ResolveWaitable returns the waitable object bound to h, if any.
func (p *Process) ResolveWaitable(h Handle) (Waitable, bool) {
	w, ok := p.Resolve(h).(Waitable)
	return w, ok
}

// CloseHandle removes h from the handle table, releasing object resources
// where the object kind requires it. It reports false for invalid handles.
func (p *Process) CloseHandle(h Handle) bool {
	if _, ok := p.handles[h]; !ok {
		return false
	}
	p.closeHandleInternal(h)
	return true
}

// closeHandleInternal performs kind-specific cleanup.
func (p *Process) closeHandleInternal(h Handle) {
	e := p.handles[h]
	delete(p.handles, h)
	p.k.tel.Emit(p.k.clock.Now(), uint32(p.ID), telemetry.KindHandleClose, objKind(e.obj), uint64(h), 0)
	p.k.tel.Add(telemetry.CtrHandleClose, 1)
	switch obj := e.obj.(type) {
	case *Mutex:
		obj.abandon(p)
	case *OpenFile:
		obj.close()
	case *PipeServer:
		obj.closeServer()
	case *PipeClient:
		obj.closeClient()
	case *Mailslot:
		obj.closeSlot()
	}
}

// HandleCount reports the number of open handles (for leak tests).
func (p *Process) HandleCount() int { return len(p.handles) }
