package ntsim

import "time"

// CostModel centralizes every virtual-time charge in the simulation. The
// defaults are tuned so that the fault-free end-to-end client+server times
// land near the paper's measurements on its 100 MHz Pentium testbed
// (Apache ~14.2 s, IIS ~18.9 s for the two-request workload); see DESIGN.md
// §4(5). Figure 4's ablation bench sweeps these values.
type CostModel struct {
	// SyscallBase is charged on entry to every KERNEL32 call.
	SyscallBase time.Duration
	// IOPerKB is charged per KiB transferred by file and pipe I/O.
	IOPerKB time.Duration
	// FileOpen is the extra cost of opening a file by name.
	FileOpen time.Duration
	// ProcessSpawn is the kernel-side cost of CreateProcess.
	ProcessSpawn time.Duration
	// PipeConnect is the handshake cost of a pipe client connect.
	PipeConnect time.Duration
	// CPUPerKB models user-mode work per KiB processed (checksumming,
	// parsing, page assembly).
	CPUPerKB time.Duration
}

// DefaultCosts returns the calibrated 100 MHz Pentium profile.
func DefaultCosts() CostModel {
	return CostModel{
		SyscallBase:  50 * time.Microsecond,
		IOPerKB:      4 * time.Millisecond,
		FileOpen:     10 * time.Millisecond,
		ProcessSpawn: 300 * time.Millisecond,
		PipeConnect:  20 * time.Millisecond,
		CPUPerKB:     2 * time.Millisecond,
	}
}

// IOCost returns the I/O charge for n bytes.
func (c CostModel) IOCost(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * c.IOPerKB / 1024
}

// CPUCost returns the compute charge for n bytes of processing.
func (c CostModel) CPUCost(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * c.CPUPerKB / 1024
}
