package ntsim

import (
	"sync"

	"ntdts/internal/telemetry"
)

// Kernel and process pooling. A campaign run builds and discards a whole
// simulated machine — kernel, process table entries, handle tables, address
// spaces, timer events — thousands of times over. Pooling recycles those
// structures between runs: AcquireKernel hands out a machine that is
// indistinguishable from NewKernel's, and Release performs the full reset
// before returning it to the pool. Determinism is preserved because every
// counter that feeds ordering (PIDs, handle values, clock sequence numbers)
// restarts from its boot value on reset; only the backing storage survives.

var kernelPool = sync.Pool{New: func() any { return NewKernel() }}

var procPool sync.Pool

// AcquireKernel returns a pooled kernel, or a fresh one when the pool is
// empty. The result is observationally identical to NewKernel().
func AcquireKernel() *Kernel {
	return kernelPool.Get().(*Kernel)
}

// Release resets the kernel to its boot state and returns it — and every
// terminated process it hosted — to the pools. It reports false, doing
// nothing, if any process is still live or running: a torn-down machine is
// the only thing that can be recycled safely, so callers must KillAll
// first. After a successful Release the caller must not touch the kernel,
// its processes, or any handles into them again.
func (k *Kernel) Release() bool {
	if k.liveProcs != 0 || k.current != nil {
		return false
	}
	for _, p := range k.procs {
		p.releaseToPool()
	}
	clear(k.procs)
	clear(k.images)
	k.nextPID = 0
	k.ready = k.ready[:0]
	k.readyHead = 0
	k.attn = false
	k.ceilSet = false
	k.clock.Reset()
	k.vfs.reset()
	clear(k.pipes)
	if k.named != nil {
		clear(k.named)
	}
	if k.slots != nil {
		clear(k.slots)
	}
	k.interceptor = nil
	k.costs = DefaultCosts()
	k.tel = telemetry.Nop{}
	k.panics = nil
	k.traceFn = nil
	kernelPool.Put(k)
	return true
}

// newProcess returns a pooled process table entry reset to spawn state, or
// a freshly allocated one. The caller (Spawn) fills in identity fields.
func (k *Kernel) newProcess() *Process {
	if v := procPool.Get(); v != nil {
		p := v.(*Process)
		p.resetForSpawn()
		return p
	}
	return &Process{
		resume:  make(chan resumeAction),
		handles: make(map[Handle]*handleEntry),
		addr:    newAddrSpace(),
		env:     make(map[string]string),
	}
}

// resetForSpawn clears every per-run field of a recycled process entry.
// The resume channel, cached wake closure, and raw parameter buffer are
// deliberately kept: the channel is drained by construction (finalize's
// yield send is the goroutine's final act), wakeFn reads p.k dynamically,
// and rawBuf is overwritten before every use.
func (p *Process) resetForSpawn() {
	p.queued = false
	p.lastErr = ErrSuccess
	p.pendingKill = false
	p.pendingKillCode = 0
	p.waitResult = 0
	p.waitErrno = ErrSuccess
	p.waitCancel = nil
	clear(p.handles) // finalize leaves it empty; clear defensively
	p.nextHandle = 0
	p.addr.reset()
	p.endTime = 0
	clear(p.env)
}

// releaseToPool returns a terminated process entry to the pool, dropping
// references that would otherwise pin the old kernel's memory.
func (p *Process) releaseToPool() {
	if p.state != procTerminated {
		return // defensive: Release checks liveProcs first
	}
	p.k = nil
	p.obj = nil
	p.waitCancel = nil
	procPool.Put(p)
}
