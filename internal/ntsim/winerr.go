package ntsim

import "fmt"

// Errno is a Win32 error code as returned by GetLastError.
type Errno uint32

// Win32 error codes used by the simulated kernel. Values match the real
// Windows SDK so that traces read naturally.
const (
	ErrSuccess            Errno = 0
	ErrInvalidFunction    Errno = 1   // ERROR_INVALID_FUNCTION
	ErrFileNotFound       Errno = 2   // ERROR_FILE_NOT_FOUND
	ErrPathNotFound       Errno = 3   // ERROR_PATH_NOT_FOUND
	ErrAccessDenied       Errno = 5   // ERROR_ACCESS_DENIED
	ErrInvalidHandle      Errno = 6   // ERROR_INVALID_HANDLE
	ErrNotEnoughMemory    Errno = 8   // ERROR_NOT_ENOUGH_MEMORY
	ErrInvalidData        Errno = 13  // ERROR_INVALID_DATA
	ErrWriteFault         Errno = 29  // ERROR_WRITE_FAULT
	ErrReadFault          Errno = 30  // ERROR_READ_FAULT
	ErrSharingViolation   Errno = 32  // ERROR_SHARING_VIOLATION
	ErrHandleEOF          Errno = 38  // ERROR_HANDLE_EOF
	ErrNotSupported       Errno = 50  // ERROR_NOT_SUPPORTED
	ErrInvalidParameter   Errno = 87  // ERROR_INVALID_PARAMETER
	ErrBrokenPipe         Errno = 109 // ERROR_BROKEN_PIPE
	ErrInsufficientBuffer Errno = 122 // ERROR_INSUFFICIENT_BUFFER
	ErrInvalidName        Errno = 123 // ERROR_INVALID_NAME
	ErrBusy               Errno = 170 // ERROR_BUSY
	ErrAlreadyExists      Errno = 183 // ERROR_ALREADY_EXISTS
	ErrNoData             Errno = 232 // ERROR_NO_DATA (pipe closing)
	ErrPipeNotConnected   Errno = 233 // ERROR_PIPE_NOT_CONNECTED
	ErrPipeBusy           Errno = 231 // ERROR_PIPE_BUSY
	ErrPipeConnected      Errno = 535 // ERROR_PIPE_CONNECTED
	ErrPipeListening      Errno = 536 // ERROR_PIPE_LISTENING
	ErrNoaccess           Errno = 998 // ERROR_NOACCESS (invalid access to memory)
	ErrWaitTimeout        Errno = 258 // WAIT_TIMEOUT as error
	ErrSemTimeout         Errno = 121 // ERROR_SEM_TIMEOUT

	// Service Control Manager error codes.
	ErrServiceRequestTimeout     Errno = 1053 // ERROR_SERVICE_REQUEST_TIMEOUT
	ErrServiceAlreadyRunning     Errno = 1056 // ERROR_SERVICE_ALREADY_RUNNING
	ErrServiceDatabaseLocked     Errno = 1055 // ERROR_SERVICE_DATABASE_LOCKED
	ErrServiceCannotAcceptCtrl   Errno = 1061 // ERROR_SERVICE_CANNOT_ACCEPT_CTRL
	ErrServiceNotActive          Errno = 1062 // ERROR_SERVICE_NOT_ACTIVE
	ErrServiceDoesNotExist       Errno = 1060 // ERROR_SERVICE_DOES_NOT_EXIST
	ErrServiceExists             Errno = 1073 // ERROR_SERVICE_EXISTS
	ErrServiceMarkedForDelete    Errno = 1072 // ERROR_SERVICE_MARKED_FOR_DELETE
	ErrServiceStartPending       Errno = 1054 // (reuse for pending denial paths)
	ErrServiceNeverStarted       Errno = 1077 // ERROR_SERVICE_NEVER_STARTED
	ErrServiceNotInExe           Errno = 1083 // ERROR_SERVICE_NOT_IN_EXE
	ErrProcessAborted            Errno = 1067 // ERROR_PROCESS_ABORTED
	ErrServiceDependencyFail     Errno = 1068 // ERROR_SERVICE_DEPENDENCY_FAIL
	ErrServiceLogonFailed        Errno = 1069 // ERROR_SERVICE_LOGON_FAILED
	ErrServiceControlledNotStart Errno = 1058 // ERROR_SERVICE_DISABLED
)

var errnoNames = map[Errno]string{
	ErrSuccess:               "ERROR_SUCCESS",
	ErrInvalidFunction:       "ERROR_INVALID_FUNCTION",
	ErrFileNotFound:          "ERROR_FILE_NOT_FOUND",
	ErrPathNotFound:          "ERROR_PATH_NOT_FOUND",
	ErrAccessDenied:          "ERROR_ACCESS_DENIED",
	ErrInvalidHandle:         "ERROR_INVALID_HANDLE",
	ErrNotEnoughMemory:       "ERROR_NOT_ENOUGH_MEMORY",
	ErrInvalidData:           "ERROR_INVALID_DATA",
	ErrWriteFault:            "ERROR_WRITE_FAULT",
	ErrReadFault:             "ERROR_READ_FAULT",
	ErrSharingViolation:      "ERROR_SHARING_VIOLATION",
	ErrHandleEOF:             "ERROR_HANDLE_EOF",
	ErrNotSupported:          "ERROR_NOT_SUPPORTED",
	ErrInvalidParameter:      "ERROR_INVALID_PARAMETER",
	ErrBrokenPipe:            "ERROR_BROKEN_PIPE",
	ErrInsufficientBuffer:    "ERROR_INSUFFICIENT_BUFFER",
	ErrInvalidName:           "ERROR_INVALID_NAME",
	ErrBusy:                  "ERROR_BUSY",
	ErrAlreadyExists:         "ERROR_ALREADY_EXISTS",
	ErrNoData:                "ERROR_NO_DATA",
	ErrPipeNotConnected:      "ERROR_PIPE_NOT_CONNECTED",
	ErrPipeBusy:              "ERROR_PIPE_BUSY",
	ErrPipeConnected:         "ERROR_PIPE_CONNECTED",
	ErrPipeListening:         "ERROR_PIPE_LISTENING",
	ErrNoaccess:              "ERROR_NOACCESS",
	ErrWaitTimeout:           "WAIT_TIMEOUT",
	ErrSemTimeout:            "ERROR_SEM_TIMEOUT",
	ErrServiceRequestTimeout: "ERROR_SERVICE_REQUEST_TIMEOUT",
	ErrServiceAlreadyRunning: "ERROR_SERVICE_ALREADY_RUNNING",
	ErrServiceDatabaseLocked: "ERROR_SERVICE_DATABASE_LOCKED",
	ErrServiceNotActive:      "ERROR_SERVICE_NOT_ACTIVE",
	ErrServiceDoesNotExist:   "ERROR_SERVICE_DOES_NOT_EXIST",
	ErrServiceExists:         "ERROR_SERVICE_EXISTS",
	ErrProcessAborted:        "ERROR_PROCESS_ABORTED",
}

// Error implements the error interface so Errno values can travel as errors.
func (e Errno) Error() string {
	if name, ok := errnoNames[e]; ok {
		return name
	}
	return fmt.Sprintf("win32 error %d", uint32(e))
}

// Process exit codes (NTSTATUS values for abnormal termination).
const (
	ExitSuccess         uint32 = 0
	ExitFailure         uint32 = 1
	ExitAccessViolation uint32 = 0xC0000005 // STATUS_ACCESS_VIOLATION
	ExitTerminated      uint32 = 0xC000013A // STATUS_CONTROL_C_EXIT (used for kills)
	ExitStackOverflow   uint32 = 0xC00000FD
	ExitStillActive     uint32 = 259 // STILL_ACTIVE
)

// Wait return values, matching the Win32 WaitForSingleObject contract.
const (
	WaitObject0  uint32 = 0x00000000
	WaitAbandond uint32 = 0x00000080
	WaitTimeout  uint32 = 0x00000102
	WaitFailed   uint32 = 0xFFFFFFFF
)

// Infinite is the INFINITE timeout value.
const Infinite uint32 = 0xFFFFFFFF
