// Package crt simulates the Microsoft C runtime startup and teardown
// sequence that every Win32 program executes before and after main().
// Real NT programs touch a characteristic set of KERNEL32 exports during
// CRT initialization (heap setup, module/locale queries, std handles,
// command-line parsing); fault injection during this window is what
// produces the paper's "dies immediately after being started by the SCM"
// failure mode, so the sequence is modeled faithfully rather than skipped.
package crt

import (
	"time"

	"ntdts/internal/ntsim/win32"
)

// Runtime holds the state a simulated C runtime keeps per process.
type Runtime struct {
	api      *win32.API
	heap     win32.Handle
	stdout   win32.Handle
	stderr   win32.Handle
	tlsIndex uint32
	csHeap   win32.CriticalSection
	started  bool
}

// Startup runs the CRT initialization sequence and returns the runtime.
// A fault injected into any call of this prelude can kill or degrade the
// process before main() ever runs.
func Startup(api *win32.API) *Runtime {
	rt := &Runtime{api: api}

	// Module identity and command line.
	api.GetVersion()
	api.GetCommandLineA()
	var si win32.StartupInfo
	api.GetStartupInfoA(&si)
	api.GetModuleHandleA("")

	// Heap initialization.
	rt.heap = api.GetProcessHeap()
	api.InitializeCriticalSection(&rt.csHeap)

	// Locale.
	api.GetACP()

	// Per-thread storage for errno & friends. (Std handles are acquired
	// lazily on first console I/O, like the real CRT's delayed ioinit.)
	rt.tlsIndex = api.TlsAlloc()

	// CRT charges a little CPU for all of this on a 100 MHz part.
	api.Process().ChargeTime(80 * time.Millisecond)
	rt.started = true
	return rt
}

// API returns the underlying KERNEL32 binding.
func (rt *Runtime) API() *win32.API { return rt.api }

// Heap returns the CRT heap handle.
func (rt *Runtime) Heap() win32.Handle { return rt.heap }

// ioinit lazily acquires the std handles on first console I/O.
func (rt *Runtime) ioinit() {
	if rt.stdout == 0 {
		rt.stdout = rt.api.GetStdHandle(win32.StdOutputHandle)
		rt.stderr = rt.api.GetStdHandle(win32.StdErrorHandle)
	}
}

// Printf writes a line to the simulated stdout (the process console file).
func (rt *Runtime) Printf(line string) {
	rt.ioinit()
	data := []byte(line + "\r\n")
	var n uint32
	rt.api.WriteFile(rt.stdout, data, uint32(len(data)), &n)
}

// Eprintf writes a line to the simulated stderr.
func (rt *Runtime) Eprintf(line string) {
	rt.ioinit()
	data := []byte(line + "\r\n")
	var n uint32
	rt.api.WriteFile(rt.stderr, data, uint32(len(data)), &n)
}

// Malloc allocates n bytes from the CRT heap, returning the block address.
func (rt *Runtime) Malloc(n uint32) uint64 {
	rt.api.EnterCriticalSection(&rt.csHeap)
	addr := rt.api.HeapAlloc(rt.heap, 0, n)
	rt.api.LeaveCriticalSection(&rt.csHeap)
	return addr
}

// Free releases a CRT heap block.
func (rt *Runtime) Free(addr uint64) {
	rt.api.EnterCriticalSection(&rt.csHeap)
	rt.api.HeapFree(rt.heap, 0, addr)
	rt.api.LeaveCriticalSection(&rt.csHeap)
}

// Shutdown runs the CRT teardown sequence.
func (rt *Runtime) Shutdown() {
	if !rt.started {
		return
	}
	rt.api.TlsFree(rt.tlsIndex)
	rt.api.DeleteCriticalSection(&rt.csHeap)
	if rt.stdout != 0 {
		rt.api.CloseHandle(rt.stdout)
		rt.api.CloseHandle(rt.stderr)
	}
	rt.started = false
}
