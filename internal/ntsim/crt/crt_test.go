package crt

import (
	"strings"
	"testing"

	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

// record captures the distinct functions a process calls.
type record struct {
	fns   map[string]bool
	order []string
}

func (r *record) BeforeSyscall(_ ntsim.PID, _, fn string, _ []uint64) {
	if !r.fns[fn] {
		r.fns[fn] = true
		r.order = append(r.order, fn)
	}
}

func runCRT(t *testing.T, body func(rt *Runtime, api *win32.API)) *record {
	t.Helper()
	k := ntsim.NewKernel()
	rec := &record{fns: make(map[string]bool)}
	k.SetInterceptor(rec)
	k.RegisterImage("crt.exe", func(p *ntsim.Process) uint32 {
		api := win32.New(p)
		rt := Startup(api)
		if body != nil {
			body(rt, api)
		}
		rt.Shutdown()
		return 0
	})
	if _, err := k.Spawn("crt.exe", "crt.exe", 0); err != nil {
		t.Fatal(err)
	}
	for k.Step() {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	return rec
}

// TestStartupProfile pins the CRT prelude to exactly the 8 distinct
// functions the activation-census calibration depends on (Table 1:
// Apache1's 13 = CRT 8 + 5 application calls).
func TestStartupProfile(t *testing.T) {
	rec := runCRT(t, nil)
	want := []string{
		"GetVersion", "GetCommandLineA", "GetStartupInfoA", "GetModuleHandleA",
		"GetProcessHeap", "InitializeCriticalSection", "GetACP", "TlsAlloc",
	}
	for _, fn := range want {
		if !rec.fns[fn] {
			t.Errorf("CRT startup missing %s", fn)
		}
	}
	// Startup itself must not call anything beyond the pinned prelude
	// (Shutdown adds teardown calls).
	prelude := rec.order
	for i, fn := range prelude {
		if fn == "TlsFree" { // first teardown call
			prelude = prelude[:i]
			break
		}
	}
	if len(prelude) != len(want) {
		t.Errorf("CRT prelude activates %d functions, want %d: %v", len(prelude), len(want), prelude)
	}
}

func TestLazyConsoleInit(t *testing.T) {
	// GetStdHandle must not appear until the first console write.
	rec := runCRT(t, nil)
	if rec.fns["GetStdHandle"] {
		t.Fatal("GetStdHandle called without console I/O")
	}
	rec = runCRT(t, func(rt *Runtime, _ *win32.API) {
		rt.Printf("hello")
	})
	if !rec.fns["GetStdHandle"] || !rec.fns["WriteFile"] {
		t.Fatal("console I/O did not initialize std handles")
	}
}

func TestPrintfWritesToConsoleFile(t *testing.T) {
	k := ntsim.NewKernel()
	k.RegisterImage("say.exe", func(p *ntsim.Process) uint32 {
		rt := Startup(win32.New(p))
		rt.Printf("out line")
		rt.Eprintf("err line")
		rt.Shutdown()
		return 0
	})
	if _, err := k.Spawn("say.exe", "say.exe", 0); err != nil {
		t.Fatal(err)
	}
	for k.Step() {
	}
	out, ok := k.VFS().ReadFile(`C:\sim\console\say.exe.out`)
	if !ok || !strings.Contains(string(out), "out line") {
		t.Fatalf("stdout file %q", out)
	}
	errF, ok := k.VFS().ReadFile(`C:\sim\console\say.exe.err`)
	if !ok || !strings.Contains(string(errF), "err line") {
		t.Fatalf("stderr file %q", errF)
	}
}

func TestMallocFree(t *testing.T) {
	runCRT(t, func(rt *Runtime, api *win32.API) {
		addr := rt.Malloc(64)
		if addr == 0 {
			t.Error("Malloc returned NULL")
			return
		}
		if buf, ok := api.HeapBuf(rt.Heap(), addr); !ok || len(buf) != 64 {
			t.Error("heap block not found")
		}
		rt.Free(addr)
		if _, ok := api.HeapBuf(rt.Heap(), addr); ok {
			t.Error("block still allocated after Free")
		}
	})
}

func TestDoubleShutdownHarmless(t *testing.T) {
	runCRT(t, func(rt *Runtime, _ *win32.API) {
		rt.Shutdown()
		rt.Shutdown() // second teardown must be a no-op
	})
}
