package ntsim

import (
	"time"

	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
)

// Machine advances several kernels — the nodes of a simulated cluster —
// under one shared virtual clock. Exactly one process executes at any
// instant across the whole machine: every node's wakes land on a single
// global ready ring, and Step resumes them in strict FIFO order, so an
// N-node run is as deterministic as a single-kernel run. Per-node state
// (process tables, VFS, pipe namespaces, named objects, telemetry) stays
// fully isolated; only time is shared.
//
// Machine kernels never use the scheduler-elision fast path: its
// "running process is alone" reasoning is per-kernel and unsound when a
// peer node could be woken by the same instant's events.
type Machine struct {
	clock   *vclock.Clock
	kernels []*Kernel

	// ready is the machine-wide ring, same discipline as Kernel.ready.
	ready     []*Process
	readyHead int
}

// NewMachine returns an empty machine with a fresh shared clock.
func NewMachine() *Machine {
	return &Machine{clock: vclock.New()}
}

// Clock exposes the machine's shared virtual clock.
func (m *Machine) Clock() *vclock.Clock { return m.clock }

// Now returns the current shared virtual time.
func (m *Machine) Now() vclock.Time { return m.clock.Now() }

// Kernels returns the machine's nodes in attachment order.
func (m *Machine) Kernels() []*Kernel { return m.kernels }

// AddKernel attaches a fresh kernel as the machine's next node. The
// kernel shares the machine clock and must be driven through the machine
// scheduler (its own Step delegates here). Machine kernels are never
// returned to the fork pool: pooled release resets the clock, which a
// shared clock cannot survive.
func (m *Machine) AddKernel() *Kernel {
	k := newKernelWithClock(m.clock)
	k.mach = m
	m.kernels = append(m.kernels, k)
	return k
}

// readyCount reports how many processes are queued machine-wide.
func (m *Machine) readyCount() int { return len(m.ready) - m.readyHead }

// popReady removes and returns the head of the global ready ring.
func (m *Machine) popReady() *Process {
	p := m.ready[m.readyHead]
	m.ready[m.readyHead] = nil
	m.readyHead++
	if m.readyHead == len(m.ready) {
		m.ready = m.ready[:0]
		m.readyHead = 0
	}
	return p
}

// Step executes one machine-wide scheduling quantum, mirroring
// Kernel.Step: fire every due timer on the shared clock, then resume the
// next ready process (whichever node it lives on) until it yields, or —
// if none is ready — advance the clock to the next timer event. It
// reports false when the whole machine is idle.
func (m *Machine) Step() bool {
	for _, k := range m.kernels {
		k.attn = false
	}
	for {
		next, ok := m.clock.NextAt()
		if !ok || next.After(m.clock.Now()) {
			break
		}
		m.clock.RunNext()
	}
	for m.readyCount() > 0 {
		p := m.popReady()
		p.queued = false
		if p.state != procReady {
			continue // stale queue entry (e.g., terminated meanwhile)
		}
		k := p.k
		p.state = procRunning
		k.current = p
		k.tel.Add(telemetry.CtrSchedQuanta, 1)
		p.resume <- resumeAction{kill: p.pendingKill, killCode: p.pendingKillCode}
		<-k.procYield
		k.current = nil
		return true
	}
	return m.clock.RunNext()
}

// Run steps the machine until it is fully idle or the shared clock passes
// deadline. It returns the number of scheduling quanta executed.
func (m *Machine) Run(deadline vclock.Time) int {
	n := 0
	for {
		if m.clock.Now().After(deadline) {
			return n
		}
		if m.readyCount() == 0 {
			next, ok := m.clock.NextAt()
			if !ok || next.After(deadline) {
				return n
			}
		}
		if !m.Step() {
			return n
		}
		n++
	}
}

// RunFor is Run with a relative deadline.
func (m *Machine) RunFor(d time.Duration) int {
	return m.Run(m.clock.Now().Add(d))
}

// Idle reports whether no process is ready on any node and no timer
// events are pending on the shared clock.
func (m *Machine) Idle() bool {
	if m.readyCount() > 0 {
		return false
	}
	_, ok := m.clock.NextAt()
	return !ok
}

// KillAll terminates every live process on every node, in node order and
// PID order within a node, then steps until the terminations unwind. The
// fixed order keeps teardown — and therefore the telemetry trace —
// deterministic.
func (m *Machine) KillAll() {
	for _, k := range m.kernels {
		for _, p := range k.Processes() {
			if p.state != procTerminated {
				p.Terminate(ExitTerminated)
			}
		}
	}
	for m.readyCount() > 0 {
		m.Step()
	}
}
