package ntsim

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVFSWriteReadRoundtrip(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\www\index.html`, []byte("<html>"))
	got, ok := fs.ReadFile(`c:\WWW\INDEX.HTML`)
	if !ok || string(got) != "<html>" {
		t.Fatalf("case-insensitive read: %q %v", got, ok)
	}
	if !fs.Exists(`C:/www/index.html`) {
		t.Fatal("forward slashes should normalize")
	}
}

func TestVFSOpenDispositions(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\a.txt`, []byte("data"))

	if _, errno := fs.Open(`C:\a.txt`, GenericRead, CreateNew); errno != ErrAlreadyExists {
		t.Fatalf("CreateNew on existing: %v", errno)
	}
	if _, errno := fs.Open(`C:\missing`, GenericRead, OpenExisting); errno != ErrFileNotFound {
		t.Fatalf("OpenExisting on missing: %v", errno)
	}
	if _, errno := fs.Open(`C:\missing2`, GenericRead, TruncateExisting); errno != ErrFileNotFound {
		t.Fatalf("TruncateExisting on missing: %v", errno)
	}
	of, errno := fs.Open(`C:\a.txt`, GenericRead|GenericWrite, CreateAlways)
	if errno != ErrSuccess || of.Size() != 0 {
		t.Fatalf("CreateAlways should truncate: %v size=%d", errno, of.Size())
	}
	if _, errno := fs.Open(`C:\b.txt`, GenericWrite, OpenAlways); errno != ErrSuccess {
		t.Fatalf("OpenAlways create: %v", errno)
	}
	if !fs.Exists(`C:\b.txt`) {
		t.Fatal("OpenAlways did not create the file")
	}
	if _, errno := fs.Open(`C:\c.txt`, GenericRead, 99); errno != ErrInvalidParameter {
		t.Fatalf("bad disposition: %v", errno)
	}
	if _, errno := fs.Open("", GenericRead, OpenExisting); errno != ErrInvalidName {
		t.Fatalf("empty path: %v", errno)
	}
}

func TestOpenFileReadWriteSeek(t *testing.T) {
	fs := NewVFS()
	of, errno := fs.Open(`C:\f`, GenericRead|GenericWrite, CreateAlways)
	if errno != ErrSuccess {
		t.Fatal(errno)
	}
	if n, errno := of.Write([]byte("hello world")); n != 11 || errno != ErrSuccess {
		t.Fatalf("write: %d %v", n, errno)
	}
	if pos, errno := of.SeekTo(0, FileBegin); pos != 0 || errno != ErrSuccess {
		t.Fatalf("seek begin: %d %v", pos, errno)
	}
	buf := make([]byte, 5)
	if n, errno := of.Read(buf); n != 5 || errno != ErrSuccess || string(buf) != "hello" {
		t.Fatalf("read: %d %v %q", n, errno, buf)
	}
	if pos, _ := of.SeekTo(1, FileCurrent); pos != 6 {
		t.Fatalf("seek current: %d", pos)
	}
	if n, _ := of.Read(buf); string(buf[:n]) != "world" {
		t.Fatalf("read after seek: %q", buf[:n])
	}
	// EOF: zero bytes, success.
	if n, errno := of.Read(buf); n != 0 || errno != ErrSuccess {
		t.Fatalf("EOF read: %d %v", n, errno)
	}
	if pos, _ := of.SeekTo(-2, FileEnd); pos != 9 {
		t.Fatalf("seek end: %d", pos)
	}
	if _, errno := of.SeekTo(-100, FileBegin); errno != ErrInvalidParameter {
		t.Fatalf("negative seek: %v", errno)
	}
	if _, errno := of.SeekTo(0, 42); errno != ErrInvalidParameter {
		t.Fatalf("bad method: %v", errno)
	}
}

func TestOpenFileAccessEnforcement(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\ro`, []byte("x"))
	of, _ := fs.Open(`C:\ro`, GenericRead, OpenExisting)
	if _, errno := of.Write([]byte("y")); errno != ErrAccessDenied {
		t.Fatalf("write on read-only handle: %v", errno)
	}
	wf, _ := fs.Open(`C:\ro`, GenericWrite, OpenExisting)
	if _, errno := wf.Read(make([]byte, 1)); errno != ErrAccessDenied {
		t.Fatalf("read on write-only handle: %v", errno)
	}
}

func TestOpenFileClosedHandle(t *testing.T) {
	fs := NewVFS()
	of, _ := fs.Open(`C:\f`, GenericRead|GenericWrite, CreateAlways)
	of.close()
	if _, errno := of.Read(make([]byte, 1)); errno != ErrInvalidHandle {
		t.Fatalf("read on closed: %v", errno)
	}
	if _, errno := of.Write([]byte("x")); errno != ErrInvalidHandle {
		t.Fatalf("write on closed: %v", errno)
	}
	if _, errno := of.SeekTo(0, FileBegin); errno != ErrInvalidHandle {
		t.Fatalf("seek on closed: %v", errno)
	}
}

func TestVFSRemoveAndList(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\b`, nil)
	fs.WriteFile(`C:\a`, nil)
	list := fs.List()
	if len(list) != 2 || list[0] != `C:\a` || list[1] != `C:\b` {
		t.Fatalf("List: %v", list)
	}
	if !fs.Remove(`c:\A`) {
		t.Fatal("Remove failed")
	}
	if fs.Remove(`c:\A`) {
		t.Fatal("double Remove succeeded")
	}
}

func TestVFSIsolationFromCallerBuffers(t *testing.T) {
	fs := NewVFS()
	data := []byte("abc")
	fs.WriteFile(`C:\f`, data)
	data[0] = 'X'
	got, _ := fs.ReadFile(`C:\f`)
	if string(got) != "abc" {
		t.Fatal("WriteFile aliased caller buffer")
	}
	got[0] = 'Y'
	again, _ := fs.ReadFile(`C:\f`)
	if string(again) != "abc" {
		t.Fatal("ReadFile aliased internal buffer")
	}
}

// Property: write-then-read through an OpenFile reproduces the bytes for any
// payload and any split of the writes.
func TestPropertyFileWriteReadIdentity(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fs := NewVFS()
		of, errno := fs.Open(`C:\p`, GenericRead|GenericWrite, CreateAlways)
		if errno != ErrSuccess {
			return false
		}
		var want []byte
		for _, c := range chunks {
			of.Write(c)
			want = append(want, c...)
		}
		of.SeekTo(0, FileBegin)
		got := make([]byte, len(want))
		total := 0
		for total < len(want) {
			n, errno := of.Read(got[total:])
			if errno != ErrSuccess || n == 0 {
				return false
			}
			total += n
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrSpaceMapping(t *testing.T) {
	a := newAddrSpace()
	buf := []byte{1, 2, 3}
	addr := a.MapBuf(buf)
	if addr == 0 {
		t.Fatal("MapBuf returned NULL for non-nil buffer")
	}
	got, null, ok := a.Buf(addr)
	if !ok || null || &got[0] != &buf[0] {
		t.Fatal("Buf did not resolve to the original buffer")
	}
	// NULL resolves as null.
	if _, null, ok := a.Buf(0); !ok || !null {
		t.Fatal("NULL should resolve as null")
	}
	// Corrupted addresses (flip) miss.
	if _, _, ok := a.Buf(addr ^ 0xFFFFFFFFFFFFFFFF); ok {
		t.Fatal("flipped address resolved")
	}
	if _, _, ok := a.Buf(0xFFFFFFFFFFFFFFFF); ok {
		t.Fatal("all-ones address resolved")
	}
	// Strings.
	saddr := a.MapStr("name")
	s, null, ok := a.Str(saddr)
	if !ok || null || s != "name" {
		t.Fatalf("Str: %q %v %v", s, null, ok)
	}
	if _, _, ok := a.Str(addr); ok {
		t.Fatal("buffer address resolved as string")
	}
	a.Release(addr)
	if _, _, ok := a.Buf(addr); ok {
		t.Fatal("released address still resolves")
	}
	if a.MapBuf(nil) != 0 {
		t.Fatal("nil buffer should map to NULL")
	}
}

// Property: addresses handed out by the address space are unique and
// non-NULL.
func TestPropertyAddrUniqueness(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := newAddrSpace()
		seen := make(map[uint64]bool)
		for _, n := range sizes {
			addr := a.MapBuf(make([]byte, int(n)+1))
			if addr == 0 || seen[addr] {
				return false
			}
			seen[addr] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
