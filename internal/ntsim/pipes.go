package ntsim

import (
	"strings"
	"time"

	"ntdts/internal/vclock"
)

// Named pipes are the simulated machine's client/server transport. Using
// pipes (rather than a sockets model) keeps every byte of client/server I/O
// inside the KERNEL32 API surface — CreateNamedPipeA, ConnectNamedPipe,
// ReadFile, WriteFile, DisconnectNamedPipe — which is exactly the surface
// the paper injects.

// pipeDir is one direction of a connected pipe: a byte queue with at most
// one blocked reader and at most one writer blocked in a drain wait
// (FlushFileBuffers semantics: DisconnectNamedPipe discards unread bytes,
// exactly like Win32, so well-behaved servers flush before disconnecting).
type pipeDir struct {
	buf        []byte // buffered bytes are buf[off:]; off avoids realloc on refill
	off        int
	writerOpen bool
	readerGone bool
	reader     *Process
	drainer    *Process
}

func (d *pipeDir) wakeReader(k *Kernel) {
	if d.reader == nil {
		return
	}
	r := d.reader
	d.reader = nil
	k.wake(r, WaitObject0, ErrSuccess)
}

func (d *pipeDir) wakeDrainer(k *Kernel) {
	if d.drainer == nil {
		return
	}
	w := d.drainer
	d.drainer = nil
	k.wake(w, WaitObject0, ErrSuccess)
}

// waitDrained blocks the writer until the reader has consumed every
// buffered byte, or the reader end disappears.
func (d *pipeDir) waitDrained(p *Process) Errno {
	for d.pending() > 0 {
		if d.readerGone {
			return ErrBrokenPipe
		}
		if d.drainer != nil {
			return ErrBusy
		}
		d.drainer = p
		p.waitCancel = func() { d.drainer = nil }
		if _, errno := p.block(); errno != ErrSuccess {
			return errno
		}
	}
	return ErrSuccess
}

// read blocks p until data is available or the writer side closes.
func (d *pipeDir) read(p *Process, buf []byte) (int, Errno) {
	return d.readDeadline(p, buf, 0)
}

// readDeadline is read with an optional timeout (0 = block indefinitely).
// On expiry it returns ErrSemTimeout with zero bytes.
func (d *pipeDir) readDeadline(p *Process, buf []byte, timeout time.Duration) (int, Errno) {
	k := p.k
	for d.pending() == 0 {
		if !d.writerOpen {
			return 0, ErrBrokenPipe
		}
		if d.reader != nil {
			// One outstanding read per direction in this model.
			return 0, ErrBusy
		}
		d.reader = p
		p.waitCancel = func() { d.reader = nil }
		var timerID vclock.EventID
		if timeout > 0 {
			timerID = k.clock.ScheduleAfter(timeout, func() {
				if d.reader == p {
					d.reader = nil
					k.wake(p, WaitTimeout, ErrSemTimeout)
				}
			})
		}
		_, errno := p.block()
		if timeout > 0 {
			k.clock.Cancel(timerID)
		}
		if errno != ErrSuccess {
			return 0, errno
		}
	}
	n := copy(buf, d.buf[d.off:])
	d.off += n
	if d.off == len(d.buf) {
		// Fully drained: rewind so the backing array is reused instead
		// of reallocated on the next request-response round trip.
		d.buf, d.off = d.buf[:0], 0
		d.wakeDrainer(k)
	}
	return n, ErrSuccess
}

// pending returns the number of buffered unread bytes.
func (d *pipeDir) pending() int { return len(d.buf) - d.off }

// reclaimBuf strips a dead direction's backing array for reuse. The old
// direction keeps a nil queue: any straggling reader observes EOF/broken
// pipe through its flags, never recycled bytes.
func reclaimBuf(d *pipeDir) []byte {
	if d == nil {
		return nil
	}
	b := d.buf
	d.buf, d.off = nil, 0
	return b[:0]
}

func (d *pipeDir) write(k *Kernel, data []byte) (int, Errno) {
	if !d.writerOpen {
		return 0, ErrNoData
	}
	d.buf = append(d.buf, data...)
	d.wakeReader(k)
	return len(data), ErrSuccess
}

// closeWriter half-closes the direction; a blocked reader observes EOF.
func (d *pipeDir) closeWriter(k *Kernel) {
	d.writerOpen = false
	d.wakeReader(k)
}

// PipeServer is one server-side instance of a named pipe.
type PipeServer struct {
	k         *Kernel
	Name      string
	connected bool
	closed    bool
	listener  *Process // server blocked in ConnectNamedPipe
	toServer  *pipeDir // client -> server bytes
	toClient  *pipeDir // server -> client bytes
	peer      *PipeClient
}

// PipeClient is the client end of a connected named pipe.
type PipeClient struct {
	k      *Kernel
	srv    *PipeServer
	closed bool
}

// normalizePipeName strips the \\.\pipe\ prefix and lowercases.
func normalizePipeName(path string) (string, bool) {
	low := strings.ToLower(strings.ReplaceAll(path, "/", `\`))
	const prefix = `\\.\pipe\`
	if !strings.HasPrefix(low, prefix) {
		return "", false
	}
	name := low[len(prefix):]
	if name == "" {
		return "", false
	}
	return name, true
}

// IsPipePath reports whether a path names the pipe namespace.
func IsPipePath(path string) bool {
	_, ok := normalizePipeName(path)
	return ok
}

// CreatePipeServer creates a new listening instance of the named pipe.
func (k *Kernel) CreatePipeServer(path string) (*PipeServer, Errno) {
	name, ok := normalizePipeName(path)
	if !ok {
		return nil, ErrInvalidName
	}
	ps := &PipeServer{k: k, Name: name}
	k.pipes[name] = append(k.pipes[name], ps)
	return ps, ErrSuccess
}

// ConnectPipeClient connects a client to an available instance of the named
// pipe, returning ErrPipeBusy when all instances are connected and
// ErrFileNotFound when no instance exists.
func (k *Kernel) ConnectPipeClient(path string) (*PipeClient, Errno) {
	name, ok := normalizePipeName(path)
	if !ok {
		return nil, ErrInvalidName
	}
	instances := k.pipes[name]
	if len(instances) == 0 {
		return nil, ErrFileNotFound
	}
	for _, ps := range instances {
		if ps.closed || ps.connected {
			continue
		}
		return ps.acceptClient(), ErrSuccess
	}
	return nil, ErrPipeBusy
}

// PipeAvailable reports whether a connectable instance of the named pipe
// exists right now (WaitNamedPipe polling support).
func (k *Kernel) PipeAvailable(path string) (bool, Errno) {
	name, ok := normalizePipeName(path)
	if !ok {
		return false, ErrInvalidName
	}
	instances := k.pipes[name]
	if len(instances) == 0 {
		return false, ErrFileNotFound
	}
	for _, ps := range instances {
		if !ps.closed && !ps.connected {
			return true, ErrSuccess
		}
	}
	return false, ErrSuccess
}

// acceptClient wires a fresh client end onto this instance. The dead
// previous connection's byte queues donate their backing arrays, so a
// serve-disconnect-reconnect loop stops reallocating its transfer
// buffers.
func (ps *PipeServer) acceptClient() *PipeClient {
	ps.connected = true
	ps.toServer = &pipeDir{writerOpen: true, buf: reclaimBuf(ps.toServer)}
	ps.toClient = &pipeDir{writerOpen: true, buf: reclaimBuf(ps.toClient)}
	pc := &PipeClient{k: ps.k, srv: ps}
	ps.peer = pc
	if ps.listener != nil {
		l := ps.listener
		ps.listener = nil
		ps.k.wake(l, WaitObject0, ErrSuccess)
	}
	return pc
}

// Listen blocks the server process until a client connects
// (ConnectNamedPipe). If a client is already connected it returns
// ErrPipeConnected immediately, mirroring Win32.
func (ps *PipeServer) Listen(p *Process) Errno {
	if ps.closed {
		return ErrInvalidHandle
	}
	if ps.connected {
		return ErrPipeConnected
	}
	if ps.listener != nil {
		return ErrBusy
	}
	ps.listener = p
	p.waitCancel = func() { ps.listener = nil }
	if _, errno := p.block(); errno != ErrSuccess {
		return errno
	}
	return ErrSuccess
}

// Read reads from the client->server direction.
func (ps *PipeServer) Read(p *Process, buf []byte) (int, Errno) {
	if ps.closed {
		return 0, ErrInvalidHandle
	}
	if !ps.connected {
		return 0, ErrPipeListening
	}
	return ps.toServer.read(p, buf)
}

// Write writes to the server->client direction.
func (ps *PipeServer) Write(data []byte) (int, Errno) {
	if ps.closed {
		return 0, ErrInvalidHandle
	}
	if !ps.connected {
		return 0, ErrPipeListening
	}
	return ps.toClient.write(ps.k, data)
}

// Disconnect drops the current client and returns the instance to the
// connectable state.
func (ps *PipeServer) Disconnect() Errno {
	if ps.closed {
		return ErrInvalidHandle
	}
	if !ps.connected {
		return ErrPipeNotConnected
	}
	ps.breakConnection()
	return ErrSuccess
}

func (ps *PipeServer) breakConnection() {
	ps.connected = false
	if ps.toClient != nil {
		// Win32 semantics: unread bytes are discarded on disconnect.
		ps.toClient.buf, ps.toClient.off = ps.toClient.buf[:0], 0
		ps.toClient.readerGone = true
		ps.toClient.closeWriter(ps.k)
		ps.toClient.wakeDrainer(ps.k)
	}
	if ps.toServer != nil {
		ps.toServer.readerGone = true
		ps.toServer.closeWriter(ps.k)
		ps.toServer.wakeDrainer(ps.k)
	}
	if ps.peer != nil {
		ps.peer.srvGone()
		ps.peer = nil
	}
	ps.toServer, ps.toClient = nil, nil
}

// Flush blocks until the client has consumed all bytes the server wrote
// (FlushFileBuffers on a pipe handle).
func (ps *PipeServer) Flush(p *Process) Errno {
	if ps.closed {
		return ErrInvalidHandle
	}
	if !ps.connected {
		return ErrPipeNotConnected
	}
	return ps.toClient.waitDrained(p)
}

// closeServer tears the instance down and removes it from the namespace.
func (ps *PipeServer) closeServer() {
	if ps.closed {
		return
	}
	if ps.connected {
		ps.breakConnection()
	}
	if ps.listener != nil {
		l := ps.listener
		ps.listener = nil
		ps.k.wake(l, WaitFailed, ErrInvalidHandle)
	}
	ps.closed = true
	live := ps.k.pipes[ps.Name][:0]
	for _, inst := range ps.k.pipes[ps.Name] {
		if inst != ps {
			live = append(live, inst)
		}
	}
	if len(live) == 0 {
		delete(ps.k.pipes, ps.Name)
	} else {
		ps.k.pipes[ps.Name] = live
	}
}

// Read reads server->client bytes.
func (pc *PipeClient) Read(p *Process, buf []byte) (int, Errno) {
	if pc.closed {
		return 0, ErrInvalidHandle
	}
	if pc.srv == nil {
		return 0, ErrBrokenPipe
	}
	return pc.srv.toClient.read(p, buf)
}

// ReadTimeout reads server->client bytes with a deadline, returning
// ErrSemTimeout on expiry. Synthetic DTS client programs use this to model
// their socket receive timeout.
func (pc *PipeClient) ReadTimeout(p *Process, buf []byte, timeout time.Duration) (int, Errno) {
	if pc.closed {
		return 0, ErrInvalidHandle
	}
	if pc.srv == nil {
		return 0, ErrBrokenPipe
	}
	return pc.srv.toClient.readDeadline(p, buf, timeout)
}

// Write writes client->server bytes.
func (pc *PipeClient) Write(data []byte) (int, Errno) {
	if pc.closed {
		return 0, ErrInvalidHandle
	}
	if pc.srv == nil {
		return 0, ErrNoData
	}
	return pc.srv.toServer.write(pc.k, data)
}

// srvGone marks the server side as disconnected from under the client.
func (pc *PipeClient) srvGone() { pc.srv = nil }

// CloseClient closes the client end (for synthetic client programs that
// hold the object directly rather than through a handle table).
func (pc *PipeClient) CloseClient() { pc.closeClient() }

// closeClient closes the client end; the server observes EOF after
// draining buffered bytes.
func (pc *PipeClient) closeClient() {
	if pc.closed {
		return
	}
	pc.closed = true
	if pc.srv != nil {
		srv := pc.srv
		pc.srv = nil
		srv.peer = nil
		if srv.toServer != nil {
			srv.toServer.closeWriter(pc.k)
		}
		if srv.toClient != nil {
			srv.toClient.writerOpen = false
			srv.toClient.readerGone = true
			srv.toClient.wakeDrainer(pc.k)
		}
	}
}
