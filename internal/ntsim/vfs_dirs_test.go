package ntsim

import (
	"testing"
	"testing/quick"
)

func TestMkDirRmDir(t *testing.T) {
	fs := NewVFS()
	if errno := fs.MkDir(`C:\logs`); errno != ErrSuccess {
		t.Fatal(errno)
	}
	if !fs.DirExists(`c:\LOGS`) {
		t.Fatal("case-insensitive dir lookup failed")
	}
	if errno := fs.MkDir(`C:\logs`); errno != ErrAlreadyExists {
		t.Fatalf("duplicate MkDir: %v", errno)
	}
	if errno := fs.MkDir(""); errno != ErrInvalidName {
		t.Fatalf("empty MkDir: %v", errno)
	}
	if errno := fs.RmDir(`C:\logs`); errno != ErrSuccess {
		t.Fatal(errno)
	}
	if errno := fs.RmDir(`C:\logs`); errno != ErrFileNotFound {
		t.Fatalf("double RmDir: %v", errno)
	}
}

func TestMkDirOverFileRejected(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\x`, nil)
	if errno := fs.MkDir(`C:\x`); errno != ErrAlreadyExists {
		t.Fatalf("MkDir over file: %v", errno)
	}
}

func TestRmDirNonEmpty(t *testing.T) {
	fs := NewVFS()
	fs.MkDir(`C:\d`)
	fs.WriteFile(`C:\d\f.txt`, nil)
	if errno := fs.RmDir(`C:\d`); errno != ErrBusy {
		t.Fatalf("RmDir of non-empty: %v", errno)
	}
	fs.Remove(`C:\d\f.txt`)
	if errno := fs.RmDir(`C:\d`); errno != ErrSuccess {
		t.Fatalf("RmDir after emptying: %v", errno)
	}
	// Nested directories also block removal.
	fs.MkDir(`C:\e`)
	fs.MkDir(`C:\e\sub`)
	if errno := fs.RmDir(`C:\e`); errno != ErrBusy {
		t.Fatalf("RmDir with subdirectory: %v", errno)
	}
}

func TestRename(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\a.txt`, []byte("data"))
	if errno := fs.Rename(`C:\a.txt`, `C:\b.txt`); errno != ErrSuccess {
		t.Fatal(errno)
	}
	if fs.Exists(`C:\a.txt`) || !fs.Exists(`C:\b.txt`) {
		t.Fatal("rename did not move the file")
	}
	got, _ := fs.ReadFile(`C:\b.txt`)
	if string(got) != "data" {
		t.Fatal("rename lost contents")
	}
	if errno := fs.Rename(`C:\missing`, `C:\c`); errno != ErrFileNotFound {
		t.Fatalf("rename missing: %v", errno)
	}
	fs.WriteFile(`C:\c.txt`, nil)
	if errno := fs.Rename(`C:\b.txt`, `C:\c.txt`); errno != ErrAlreadyExists {
		t.Fatalf("rename onto existing: %v", errno)
	}
}

func TestCopy(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\src`, []byte("payload"))
	if errno := fs.Copy(`C:\src`, `C:\dst`, true); errno != ErrSuccess {
		t.Fatal(errno)
	}
	got, _ := fs.ReadFile(`C:\dst`)
	if string(got) != "payload" {
		t.Fatal("copy lost contents")
	}
	if errno := fs.Copy(`C:\src`, `C:\dst`, true); errno != ErrAlreadyExists {
		t.Fatalf("failIfExists copy: %v", errno)
	}
	if errno := fs.Copy(`C:\src`, `C:\dst`, false); errno != ErrSuccess {
		t.Fatalf("overwrite copy: %v", errno)
	}
	if errno := fs.Copy(`C:\missing`, `C:\x`, false); errno != ErrFileNotFound {
		t.Fatalf("copy missing: %v", errno)
	}
}

func TestFindWildcards(t *testing.T) {
	fs := NewVFS()
	fs.WriteFile(`C:\logs\app.log`, nil)
	fs.WriteFile(`C:\logs\error.log`, nil)
	fs.WriteFile(`C:\logs\readme.txt`, nil)
	fs.WriteFile(`C:\logs\sub\deep.log`, nil)
	fs.MkDir(`C:\logs\archive`)

	cases := []struct {
		pattern string
		want    []string
	}{
		{`C:\logs\*.log`, []string{"app.log", "error.log"}},
		{`C:\logs\*`, []string{"app.log", "archive", "error.log", "readme.txt"}},
		{`C:\logs\a*.log`, []string{"app.log"}},
		{`C:\logs\?????.log`, []string{"error.log"}},
		{`C:\logs\*.exe`, nil},
		{`C:\other\*`, nil},
		{`C:\LOGS\*.LOG`, []string{"app.log", "error.log"}}, // case-insensitive
	}
	for _, c := range cases {
		got := fs.Find(c.pattern)
		if len(got) != len(c.want) {
			t.Errorf("Find(%q) = %v, want %v", c.pattern, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Find(%q) = %v, want %v", c.pattern, got, c.want)
				break
			}
		}
	}
}

func TestMatchComponent(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything", true},
		{"*.log", "a.log", true},
		{"*.log", "a.txt", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "axxbyy", false},
		{"", "", true},
		{"", "x", false},
		{"**", "x", true},
	}
	for _, c := range cases {
		if got := matchComponent(c.pattern, c.name); got != c.want {
			t.Errorf("matchComponent(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

// Property: every name returned by Find matches its own pattern component,
// and '*' returns everything in the directory.
func TestPropertyFindSubsetOfStar(t *testing.T) {
	f := func(names []uint8, patSeed uint8) bool {
		fs := NewVFS()
		for _, n := range names {
			name := string(rune('a'+n%4)) + ".dat"
			fs.WriteFile(`C:\d\`+name, nil)
		}
		all := fs.Find(`C:\d\*`)
		pat := string(rune('a'+patSeed%4)) + "*"
		subset := fs.Find(`C:\d\` + pat)
		if len(subset) > len(all) {
			return false
		}
		inAll := make(map[string]bool, len(all))
		for _, n := range all {
			inAll[n] = true
		}
		for _, n := range subset {
			if !inAll[n] || !matchComponent(pat, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
