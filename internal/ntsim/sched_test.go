package ntsim

import (
	"testing"
	"time"

	"ntdts/internal/vclock"
)

// TestPreemptionSlicesLongCPUBursts is the regression test for the
// scheduler starvation bug: a process charging a long CPU burst must not
// delay another process's timer wake-up beyond the scheduling quantum.
// (Watchd1's one-second poll was once delayed 5.5 seconds by the client's
// startup burst, silently breaking its handle-acquisition timing.)
func TestPreemptionSlicesLongCPUBursts(t *testing.T) {
	k := NewKernel()
	var wokeAt vclock.Time
	k.RegisterImage("burner.exe", func(p *Process) uint32 {
		p.ChargeTime(6 * time.Second)
		return 0
	})
	k.RegisterImage("sleeper.exe", func(p *Process) uint32 {
		p.SleepFor(time.Second)
		wokeAt = k.Now()
		return 0
	})
	mustSpawn(t, k, "burner.exe", "")
	mustSpawn(t, k, "sleeper.exe", "")
	runAll(t, k)
	if wokeAt < vclock.Time(time.Second) {
		t.Fatalf("sleeper woke early at %v", wokeAt)
	}
	if wokeAt > vclock.Time(time.Second+2*schedQuantum) {
		t.Fatalf("sleeper woke at %v; CPU burst starved the timer (quantum %v)", wokeAt, schedQuantum)
	}
}

// TestDueTimersFireBeforeReadyProcesses pins the Step ordering contract:
// events whose deadline has passed fire before any ready process resumes.
func TestDueTimersFireBeforeReadyProcesses(t *testing.T) {
	k := NewKernel()
	var order []string
	// A process that burns past a timer deadline in one slice-free charge
	// (below the quantum so no preemption happens), then yields.
	k.RegisterImage("a.exe", func(p *Process) uint32 {
		k.Clock().ScheduleAfter(5*time.Millisecond, func() { order = append(order, "timer") })
		p.ChargeTime(9 * time.Millisecond) // passes the 5ms deadline, single slice
		p.Yield()
		order = append(order, "proc")
		return 0
	})
	mustSpawn(t, k, "a.exe", "")
	runAll(t, k)
	if len(order) != 2 || order[0] != "timer" || order[1] != "proc" {
		t.Fatalf("order %v, want [timer proc]", order)
	}
}

// TestRoundRobinBetweenCPUBoundProcesses: two CPU-bound processes sharing
// the virtual CPU finish in bounded skew, not strictly sequentially.
func TestRoundRobinBetweenCPUBoundProcesses(t *testing.T) {
	k := NewKernel()
	var doneA, doneB vclock.Time
	k.RegisterImage("a.exe", func(p *Process) uint32 {
		p.ChargeTime(500 * time.Millisecond)
		doneA = k.Now()
		return 0
	})
	k.RegisterImage("b.exe", func(p *Process) uint32 {
		p.ChargeTime(500 * time.Millisecond)
		doneB = k.Now()
		return 0
	})
	mustSpawn(t, k, "a.exe", "")
	mustSpawn(t, k, "b.exe", "")
	runAll(t, k)
	total := vclock.Time(time.Second)
	if doneA < total-vclock.Time(2*schedQuantum) || doneB < total-vclock.Time(2*schedQuantum) {
		t.Fatalf("done at %v / %v; CPU-bound processes did not interleave (total %v)", doneA, doneB, total)
	}
	skew := doneA.Sub(doneB)
	if skew < 0 {
		skew = -skew
	}
	if skew > 2*schedQuantum {
		t.Fatalf("finish skew %v exceeds two quanta", skew)
	}
}

// TestKillDuringCPUBurst: terminating a process mid-burst unwinds it at
// the next quantum boundary.
func TestKillDuringCPUBurst(t *testing.T) {
	k := NewKernel()
	k.RegisterImage("burner.exe", func(p *Process) uint32 {
		p.ChargeTime(time.Hour)
		return 0
	})
	p := mustSpawn(t, k, "burner.exe", "")
	k.RunFor(100 * time.Millisecond)
	p.Terminate(ExitTerminated)
	k.RunFor(100 * time.Millisecond)
	if !p.Terminated() || p.ExitCode() != ExitTerminated {
		t.Fatalf("terminated=%v code=0x%X", p.Terminated(), p.ExitCode())
	}
	checkNoPanics(t, k)
}
