// Package ntsim implements a deterministic simulation of the Windows NT
// process and object model: a cooperative single-CPU scheduler over virtual
// time, an object manager with per-process handle tables, a virtual
// filesystem, and named pipes. The win32 subpackage layers a typed
// KERNEL32-style API over this kernel; the inject package intercepts that
// API's dispatch path to corrupt call parameters.
//
// Exactly one simulated process executes at any instant. Every system call
// is a scheduling point with a virtual-time cost, which makes fault-injection
// campaigns exactly reproducible: the same fault specification always yields
// the same outcome.
package ntsim

import (
	"fmt"
	"time"

	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
)

// PID identifies a simulated process.
type PID uint32

// EntryFunc is the entry point of a simulated program image. It receives the
// hosting process and returns the process exit code.
type EntryFunc func(p *Process) uint32

// SyscallInterceptor observes and may mutate system-call parameters before
// dispatch. The fault injector implements this interface.
type SyscallInterceptor interface {
	// BeforeSyscall is called with the raw parameter values of a system
	// call made by process pid. The implementation may mutate raw in
	// place. It is invoked after parameter marshaling and before any
	// validation, exactly where a DLL-interposition injector sits.
	BeforeSyscall(pid PID, procName string, fn string, raw []uint64)
}

// Kernel is the simulated NT kernel: scheduler, process table, object
// manager, filesystem and pipe namespace. Create one per experiment run.
type Kernel struct {
	clock  *vclock.Clock
	procs  map[PID]*Process
	images map[string]EntryFunc

	// mach is non-nil when this kernel is one node of a Machine. The
	// kernel then shares the machine's clock and parks its ready
	// processes on the machine's global ring; Step delegates to the
	// machine scheduler and the elision fast path stays disabled (its
	// solo-process reasoning is per-kernel and unsound across nodes).
	mach *Machine

	nextPID PID
	// ready is a ring: entries [readyHead:len) are queued. Popping moves
	// the head index instead of re-slicing, so the backing array is
	// reused for the whole run rather than re-grown every quantum (the
	// single hottest allocation site in a campaign profile).
	ready     []*Process
	readyHead int
	current   *Process

	// procYield is signaled by the running process when it blocks,
	// terminates, or otherwise relinquishes the CPU.
	procYield chan struct{}

	// attn is raised by kernel-side state changes that a harness Step
	// loop polls for (SCM status transitions). While set, the scheduler
	// fast path stops eliding handoffs so the harness observes the
	// change at exactly the quantum boundary it would have without
	// elision. Cleared at every Step entry.
	attn bool

	// ceil bounds how far the scheduler fast path may run without
	// returning control to the harness. Elision is disabled entirely
	// until a ceiling is set (SetSchedCeiling or Kernel.Run), so bare
	// Step loops keep the exact legacy handoff-per-quantum behaviour.
	ceil    vclock.Time
	ceilSet bool

	vfs   *VFS
	pipes map[string][]*PipeServer // pipe name -> listening instances
	named map[string]any           // named kernel objects
	slots map[string]*Mailslot     // mailslot namespace

	interceptor SyscallInterceptor
	costs       CostModel

	// tel receives kernel telemetry (syscall dispatch, scheduler quanta,
	// handle and process lifecycle). Defaults to the zero-allocation
	// telemetry.Nop; one Recorder per kernel keeps runs contention-free.
	tel telemetry.Collector

	// panics collects unexpected (non-kernel) panics raised by simulated
	// program code; tests assert this stays empty.
	panics []string

	// liveProcs counts processes that have started but not yet finished.
	liveProcs int

	traceFn func(at vclock.Time, pid PID, msg string)
}

// NewKernel returns a kernel with an empty process table, a fresh virtual
// clock, and the default cost model.
func NewKernel() *Kernel {
	return newKernelWithClock(vclock.New())
}

// newKernelWithClock returns a kernel driven by the given clock. Machine
// nodes share one clock; standalone kernels own theirs.
func newKernelWithClock(c *vclock.Clock) *Kernel {
	return &Kernel{
		clock:     c,
		procs:     make(map[PID]*Process),
		images:    make(map[string]EntryFunc),
		procYield: make(chan struct{}),
		vfs:       NewVFS(),
		pipes:     make(map[string][]*PipeServer),
		costs:     DefaultCosts(),
		tel:       telemetry.Nop{},
	}
}

// Clock exposes the kernel's virtual clock.
func (k *Kernel) Clock() *vclock.Clock { return k.clock }

// Now returns the current virtual time.
func (k *Kernel) Now() vclock.Time { return k.clock.Now() }

// VFS exposes the kernel's virtual filesystem (for test setup and the DTS
// data collector, which reads the watchd log file).
func (k *Kernel) VFS() *VFS { return k.vfs }

// SetInterceptor installs the system-call interceptor (the fault injector).
func (k *Kernel) SetInterceptor(i SyscallInterceptor) { k.interceptor = i }

// SetTrace installs a trace sink receiving one line per noteworthy kernel
// event. A nil sink disables tracing.
func (k *Kernel) SetTrace(fn func(at vclock.Time, pid PID, msg string)) { k.traceFn = fn }

// SetTelemetry installs the telemetry collector. Install it before any
// process is spawned (and before inject.New, which emits the arming
// event through it) so the whole run is observed. A nil collector
// restores the zero-allocation disabled path.
func (k *Kernel) SetTelemetry(c telemetry.Collector) {
	if c == nil {
		c = telemetry.Nop{}
	}
	k.tel = c
}

// Telemetry returns the active collector (telemetry.Nop when disabled).
func (k *Kernel) Telemetry() telemetry.Collector { return k.tel }

// SetCosts replaces the virtual-time cost model.
func (k *Kernel) SetCosts(c CostModel) { k.costs = c }

// Costs returns the active cost model.
func (k *Kernel) Costs() CostModel { return k.costs }

func (k *Kernel) trace(pid PID, format string, args ...any) {
	if k.traceFn != nil {
		k.traceFn(k.clock.Now(), pid, fmt.Sprintf(format, args...))
	}
}

// RegisterImage installs a program image under the given name, making it
// launchable via Spawn (and, through the win32 layer, CreateProcessA).
func (k *Kernel) RegisterImage(name string, entry EntryFunc) {
	if entry == nil {
		panic("ntsim: RegisterImage with nil entry")
	}
	k.images[name] = entry
}

// LookupImage reports whether an image is registered.
func (k *Kernel) LookupImage(name string) (EntryFunc, bool) {
	e, ok := k.images[name]
	return e, ok
}

// Panics returns descriptions of unexpected panics raised by simulated
// program code. A healthy simulation returns an empty slice.
func (k *Kernel) Panics() []string {
	out := make([]string, len(k.panics))
	copy(out, k.panics)
	return out
}

// Process returns the process with the given PID, or nil if it never existed.
func (k *Kernel) Process(pid PID) *Process { return k.procs[pid] }

// Processes returns every process the kernel has ever created — live or
// terminated — in PID order. The process table never forgets a process,
// so this is the complete spawn history of the run.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for pid := PID(1); pid <= k.nextPID; pid++ {
		if p := k.procs[pid]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Spawn creates a process running the named image and schedules it. The
// parent may be 0 for top-level processes. Spawn may be called from outside
// the simulation (harness) or from within a running process (CreateProcess).
func (k *Kernel) Spawn(image, cmdLine string, parent PID) (*Process, error) {
	entry, ok := k.images[image]
	if !ok {
		return nil, ErrFileNotFound
	}
	k.nextPID++
	p := k.newProcess()
	p.k = k
	p.ID = k.nextPID
	p.Image = image
	p.CmdLine = cmdLine
	p.Parent = parent
	p.state = procReady
	p.startTime = k.clock.Now()
	p.obj = newProcessObject()
	p.exitCode = ExitStillActive
	k.procs[p.ID] = p
	k.liveProcs++
	k.trace(p.ID, "spawn image=%s cmd=%q parent=%d", image, cmdLine, parent)
	k.tel.Emit(k.clock.Now(), uint32(p.ID), telemetry.KindSpawn, image, uint64(parent), 0)
	k.tel.Add(telemetry.CtrSpawn, 1)
	go p.run(entry)
	k.makeReady(p)
	return p, nil
}

// makeReady appends p to the ready queue if it is not already queued. A
// machine-attached kernel queues on the machine's global ring instead, so
// one scheduler interleaves every node's processes in wake order.
func (k *Kernel) makeReady(p *Process) {
	if p.state == procTerminated {
		return
	}
	if p.state != procReady {
		p.state = procReady
	}
	if p.queued {
		return
	}
	p.queued = true
	if k.mach != nil {
		k.mach.ready = append(k.mach.ready, p)
		return
	}
	k.ready = append(k.ready, p)
}

// readyCount reports how many processes are queued for the CPU.
func (k *Kernel) readyCount() int { return len(k.ready) - k.readyHead }

// popReady removes and returns the head of the ready ring.
func (k *Kernel) popReady() *Process {
	p := k.ready[k.readyHead]
	k.ready[k.readyHead] = nil
	k.readyHead++
	if k.readyHead == len(k.ready) {
		k.ready = k.ready[:0]
		k.readyHead = 0
	}
	return p
}

// RequestAttention asks the scheduler to return control to the harness at
// the next quantum boundary. Kernel-adjacent services (the SCM) call it
// when they change state a harness Step loop polls for, so the scheduler
// fast path never coalesces quanta across an observation the slow path
// would have made. The flag clears at the next Step entry.
func (k *Kernel) RequestAttention() { k.attn = true }

// SetSchedCeiling authorizes the scheduler fast path up to (but not
// including) ceil: while the running process is alone, with no due or
// intervening timer work and no attention request, its end-of-quantum
// handoffs and solo sleeps are elided — the clock advances without the
// park/resume channel round-trip — exactly until the first boundary at
// which a harness loop stepping with `for cond && k.Now().Before(ceil)`
// would regain control. Telemetry quanta counters are maintained as if
// every elided handoff had happened, so traces and archives stay
// byte-identical. Harness loops that poll other conditions must pair the
// ceiling with RequestAttention on those conditions' state changes.
func (k *Kernel) SetSchedCeiling(ceil vclock.Time) {
	k.ceil = ceil
	k.ceilSet = true
}

// ClearSchedCeiling disables the scheduler fast path (the default).
func (k *Kernel) ClearSchedCeiling() { k.ceilSet = false }

// canElide reports whether the running process may skip the end-of-quantum
// handoff: a ceiling is set and not yet reached, no other process is
// ready, no timer is due at or before the current instant, and nothing
// has requested harness attention. Under those conditions the slow path's
// next Step would fire no timers and resume this same process — a pure
// channel round-trip the fast path replaces with one counter increment.
func (k *Kernel) canElide() bool {
	if !k.ceilSet || k.attn || k.mach != nil || k.readyCount() != 0 {
		return false
	}
	now := k.clock.Now()
	if !now.Before(k.ceil) {
		return false
	}
	if next, ok := k.clock.NextAt(); ok && !next.After(now) {
		return false
	}
	return true
}

// canElideSleep reports whether a solo sleeping process may advance the
// clock directly to wake instead of scheduling a wake event and parking:
// additionally to the canElide conditions, the wake must precede the
// ceiling (or the slow path would abandon the sleeper at the boundary)
// and strictly precede every queued event (an event at or before the wake
// instant would fire first and could change what the sleeper observes).
func (k *Kernel) canElideSleep(wake vclock.Time) bool {
	if !k.ceilSet || k.attn || k.mach != nil || k.readyCount() != 0 {
		return false
	}
	if !wake.Before(k.ceil) {
		return false
	}
	if next, ok := k.clock.NextAt(); ok && !next.After(wake) {
		return false
	}
	return true
}

// wake transitions a blocked process to ready with the given wait result.
// It queues on the process's own kernel: pipe wakes may originate from a
// peer kernel in a cluster machine (the writer's end lives on another
// node), and the sleeper must run on its home scheduler.
func (k *Kernel) wake(p *Process, result uint32, errno Errno) {
	if p.state != procBlocked {
		return
	}
	p.waitResult = result
	p.waitErrno = errno
	p.k.makeReady(p)
}

// Step executes one scheduling quantum: first it fires every timer event
// that is already due (so a process that burned a long CPU slice cannot
// starve waiters whose deadlines passed meanwhile), then it resumes the
// next ready process until it yields, or — if none is ready — advances the
// virtual clock to the next timer event. It reports false when the
// simulation is fully idle (no ready processes and no pending events).
func (k *Kernel) Step() bool {
	if k.mach != nil {
		return k.mach.Step()
	}
	k.attn = false
	for {
		next, ok := k.clock.NextAt()
		if !ok || next.After(k.clock.Now()) {
			break
		}
		k.clock.RunNext()
	}
	for k.readyCount() > 0 {
		p := k.popReady()
		p.queued = false
		if p.state != procReady {
			continue // stale queue entry (e.g., terminated meanwhile)
		}
		p.state = procRunning
		k.current = p
		k.tel.Add(telemetry.CtrSchedQuanta, 1)
		p.resume <- resumeAction{kill: p.pendingKill, killCode: p.pendingKillCode}
		<-k.procYield
		k.current = nil
		return true
	}
	return k.clock.RunNext()
}

// Run steps the simulation until it is fully idle or the virtual clock
// passes deadline. It returns the number of scheduling quanta executed.
func (k *Kernel) Run(deadline vclock.Time) int {
	// Run's continue-condition is now <= deadline, so the fast-path
	// ceiling is one tick past it; the previous ceiling (if any) is
	// restored so nested harness loops keep their own bound.
	prevCeil, prevSet := k.ceil, k.ceilSet
	k.SetSchedCeiling(deadline + 1)
	defer func() {
		k.ceil, k.ceilSet = prevCeil, prevSet
	}()
	n := 0
	for {
		if k.clock.Now().After(deadline) {
			return n
		}
		// If nothing is ready and the next timer is beyond the
		// deadline, stop without firing it.
		if k.readyCount() == 0 {
			next, ok := k.clock.NextAt()
			if !ok || next.After(deadline) {
				return n
			}
		}
		if !k.Step() {
			return n
		}
		n++
	}
}

// RunFor is Run with a relative deadline.
func (k *Kernel) RunFor(d time.Duration) int {
	return k.Run(k.clock.Now().Add(d))
}

// Idle reports whether no process is ready and no timer events are pending.
func (k *Kernel) Idle() bool {
	if k.readyCount() > 0 {
		return false
	}
	_, ok := k.clock.NextAt()
	return !ok
}

// LiveProcesses reports the number of processes that have started and not
// yet terminated.
func (k *Kernel) LiveProcesses() int { return k.liveProcs }

// KillAll terminates every live process (used between fault-injection runs
// to tear the workload down, mirroring DTS "workload termination").
// Termination runs in PID order — not process-map order — so the teardown
// sequence, and therefore the telemetry trace, is deterministic.
func (k *Kernel) KillAll() {
	for _, p := range k.Processes() {
		if p.state != procTerminated {
			p.Terminate(ExitTerminated)
		}
	}
	// Let terminations unwind.
	if k.mach != nil {
		for k.mach.readyCount() > 0 {
			k.mach.Step()
		}
		return
	}
	for k.readyCount() > 0 {
		k.Step()
	}
}

// dispatchSyscall runs the interceptor over the raw parameters of a call.
// The win32 layer calls this once per API function invocation. The
// telemetry event is emitted before the interceptor runs, so the trace
// records every dispatch that the injector could corrupt.
func (k *Kernel) dispatchSyscall(p *Process, fn string, raw []uint64) {
	k.tel.Emit(k.clock.Now(), uint32(p.ID), telemetry.KindSyscall, fn, uint64(len(raw)), 0)
	k.tel.Add(telemetry.CtrSyscalls, 1)
	if k.interceptor != nil {
		k.interceptor.BeforeSyscall(p.ID, p.Image, fn, raw)
	}
}
