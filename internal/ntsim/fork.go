package ntsim

import "ntdts/internal/vclock"

// Prefix snapshots. A fault-injection campaign re-executes the same
// deterministic boot prefix — image registration, filesystem population,
// cost-model tuning — for every one of its thousands of runs. A
// PrefixSnapshot captures that prefix once, at a quiescent instant, and
// Fork materializes any number of kernels resuming from it without
// replaying the setup work or re-allocating the filesystem contents.
//
// The capture is honest about what a Go-based simulation can snapshot:
// simulated processes are real goroutines parked on channels, and goroutine
// stacks cannot be copied. A kernel is therefore only snapshottable while
// it is quiescent — no process ever spawned, no timer events pending, no
// pipe/mailslot/named-object state. SnapshotPrefix reports a descriptive
// error otherwise, and callers (core.Runner) fall back to a fresh boot.
// Every state a snapshot does capture is deep-frozen: VFS nodes are marked
// copy-on-write (see vfs.go), so concurrent forks share the bytes until
// one of them writes.

// PrefixSnapshot is an immutable capture of a quiescent kernel's boot
// state. It is safe for concurrent Fork calls from multiple goroutines.
type PrefixSnapshot struct {
	images map[string]EntryFunc
	files  map[string]*vfile
	dirs   map[string]string
	costs  CostModel
	now    vclock.Time
	seq    uint64
	nextID vclock.EventID
}

// SnapshotError explains why a kernel could not be snapshotted; callers
// use it to fall back to fresh-boot runs.
type SnapshotError struct{ Reason string }

func (e *SnapshotError) Error() string { return "ntsim: snapshot: " + e.Reason }

// SnapshotPrefix captures the kernel's state as an immutable prefix
// snapshot. It fails with a *SnapshotError unless the kernel is quiescent:
// live goroutine process state, queued timer events, and open IPC
// namespaces cannot be captured. On success the kernel's VFS nodes become
// copy-on-write shared; the donor kernel remains usable (its own writes
// clone just like a fork's).
func (k *Kernel) SnapshotPrefix() (*PrefixSnapshot, error) {
	switch {
	case k.nextPID != 0:
		return nil, &SnapshotError{"processes already spawned (goroutine stacks cannot be captured)"}
	case k.current != nil || k.readyCount() != 0:
		return nil, &SnapshotError{"scheduler not idle"}
	case k.clock.Pending() != 0:
		return nil, &SnapshotError{"timer events pending"}
	case len(k.pipes) != 0:
		return nil, &SnapshotError{"open pipe namespace"}
	case len(k.slots) != 0:
		return nil, &SnapshotError{"open mailslot namespace"}
	case len(k.named) != 0:
		return nil, &SnapshotError{"named kernel objects registered"}
	case len(k.panics) != 0:
		return nil, &SnapshotError{"simulated code panicked"}
	}
	images := make(map[string]EntryFunc, len(k.images))
	for name, entry := range k.images {
		images[name] = entry
	}
	files, dirs := k.vfs.snapshotMaps()
	seq, nextID := k.clock.Counters()
	return &PrefixSnapshot{
		images: images,
		files:  files,
		dirs:   dirs,
		costs:  k.costs,
		now:    k.clock.Now(),
		seq:    seq,
		nextID: nextID,
	}, nil
}

// Fork materializes a kernel resuming from the snapshot, drawing from the
// kernel pool. The result is indistinguishable from a fresh kernel on
// which the snapshotted setup just ran: same images, same filesystem
// contents (shared copy-on-write), same cost model, and a clock positioned
// at the snapshot's time and sequence counters so subsequent event
// scheduling orders identically. Safe to call from multiple goroutines.
func (s *PrefixSnapshot) Fork() *Kernel {
	k := AcquireKernel()
	k.clock.RestoreCounters(s.now, s.seq, s.nextID)
	for name, entry := range s.images {
		k.images[name] = entry
	}
	k.vfs.restoreFrom(s.files, s.dirs)
	k.costs = s.costs
	return k
}

// ForkInto materializes a machine node resuming from the snapshot. The
// first fork positions the machine's shared clock at the snapshot's time
// and counters (so a cluster boots exactly where a single kernel would);
// subsequent forks join the already-positioned clock. Machine kernels
// bypass the pool — pooled release resets the clock, which nodes sharing
// one cannot survive — so they are simply dropped at run teardown.
func (s *PrefixSnapshot) ForkInto(m *Machine) *Kernel {
	if len(m.kernels) == 0 {
		m.clock.RestoreCounters(s.now, s.seq, s.nextID)
	}
	k := m.AddKernel()
	for name, entry := range s.images {
		k.images[name] = entry
	}
	k.vfs.restoreFrom(s.files, s.dirs)
	k.costs = s.costs
	return k
}
