package ntsim

import (
	"sort"
	"strings"

	"ntdts/internal/vclock"
)

// VFS is the simulated machine's filesystem: a flat namespace of
// case-insensitive Windows-style paths ("C:\inetpub\wwwroot\index.html").
// Directories are implicit. The VFS is shared by all processes on the
// simulated machine.
type VFS struct {
	files     map[string]*vfile // key: normalized path
	dirsByKey map[string]string // key: normalized dir path -> original case
}

type vfile struct {
	path  string // original-case path
	data  []byte
	mtime vclock.Time // virtual modification time

	// shared marks a node captured by a PrefixSnapshot: it may be
	// referenced by any number of forked kernels concurrently, so it is
	// immutable from the moment the snapshot is taken. Mutators clone a
	// shared node into the local namespace first (copy-on-write).
	shared bool
	// origin points at the shared node this one was cloned from, so open
	// file descriptions still holding the shared node can re-point to the
	// clone and keep the legacy aliasing semantics (all descriptions of
	// one path observe each other's writes).
	origin *vfile
}

// clone returns a private, mutable copy of a snapshot-shared node. The data
// is copied — not aliased — because the clone will be mutated in place while
// sibling forks keep reading the shared bytes.
func (f *vfile) clone() *vfile {
	c := &vfile{path: f.path, mtime: f.mtime, origin: f}
	if len(f.data) > 0 {
		c.data = append([]byte(nil), f.data...)
	}
	return c
}

// NewVFS returns an empty filesystem.
func NewVFS() *VFS {
	return &VFS{files: make(map[string]*vfile)}
}

func normPath(p string) string {
	return strings.ToLower(strings.ReplaceAll(p, "/", `\`))
}

// WriteFile creates or replaces a file (harness-side setup).
func (fs *VFS) WriteFile(path string, data []byte) {
	d := make([]byte, len(data))
	copy(d, data)
	fs.files[normPath(path)] = &vfile{path: path, data: d}
}

// ReadFile returns a copy of a file's contents.
func (fs *VFS) ReadFile(path string) ([]byte, bool) {
	f, ok := fs.files[normPath(path)]
	if !ok {
		return nil, false
	}
	d := make([]byte, len(f.data))
	copy(d, f.data)
	return d, true
}

// Exists reports whether a file exists.
func (fs *VFS) Exists(path string) bool {
	_, ok := fs.files[normPath(path)]
	return ok
}

// Remove deletes a file, reporting whether it existed.
func (fs *VFS) Remove(path string) bool {
	key := normPath(path)
	_, ok := fs.files[key]
	delete(fs.files, key)
	return ok
}

// List returns all file paths in sorted order (for tests and reports).
func (fs *VFS) List() []string {
	out := make([]string, 0, len(fs.files))
	for _, f := range fs.files {
		out = append(out, f.path)
	}
	sort.Strings(out)
	return out
}

// File access disposition, mirroring CreateFile dwCreationDisposition.
const (
	CreateNew        uint32 = 1
	CreateAlways     uint32 = 2
	OpenExisting     uint32 = 3
	OpenAlways       uint32 = 4
	TruncateExisting uint32 = 5
)

// Generic access rights (subset).
const (
	GenericRead  uint32 = 0x80000000
	GenericWrite uint32 = 0x40000000
)

// OpenFile is an open file description: a file plus a seek offset.
type OpenFile struct {
	fs     *VFS
	file   *vfile
	key    string // normalized path, for copy-on-write re-pointing
	offset int
	access uint32
	closed bool
}

// node returns the current file node for this description. If the node is
// snapshot-shared but another description of the same path has already
// detached a copy-on-write clone into the namespace, this description
// re-points to the clone — preserving the legacy invariant that every open
// description of one path observes the same bytes.
func (of *OpenFile) node() *vfile {
	f := of.file
	if f.shared {
		if cur := of.fs.files[of.key]; cur != nil && cur.origin == f {
			of.file = cur
			return cur
		}
	}
	return f
}

// mutable returns a privately-owned node for this description, detaching a
// copy-on-write clone from a snapshot-shared node on first mutation.
func (of *OpenFile) mutable() *vfile {
	f := of.node()
	if !f.shared {
		return f
	}
	c := f.clone()
	// Install the clone only while the namespace still maps the path to
	// the shared node; if the path was replaced or removed meanwhile, the
	// description mutates an orphan node, exactly as an unshared
	// description of a replaced path would.
	if of.fs.files[of.key] == f {
		of.fs.files[of.key] = c
	}
	of.file = c
	return c
}

// Open opens a path per the CreateFile disposition rules.
func (fs *VFS) Open(path string, access, disposition uint32) (*OpenFile, Errno) {
	key := normPath(path)
	if key == "" {
		return nil, ErrInvalidName
	}
	f, exists := fs.files[key]
	switch disposition {
	case CreateNew:
		if exists {
			return nil, ErrAlreadyExists
		}
		f = &vfile{path: path}
		fs.files[key] = f
	case CreateAlways:
		f = &vfile{path: path}
		fs.files[key] = f
	case OpenExisting:
		if !exists {
			return nil, ErrFileNotFound
		}
	case OpenAlways:
		if !exists {
			f = &vfile{path: path}
			fs.files[key] = f
		}
	case TruncateExisting:
		if !exists {
			return nil, ErrFileNotFound
		}
		if f.shared {
			c := &vfile{path: f.path, mtime: f.mtime, origin: f}
			fs.files[key] = c
			f = c
		} else {
			f.data = nil
		}
	default:
		return nil, ErrInvalidParameter
	}
	return &OpenFile{fs: fs, file: f, key: key, access: access}, ErrSuccess
}

// Read copies up to len(buf) bytes from the current offset, advancing it.
func (of *OpenFile) Read(buf []byte) (int, Errno) {
	if of.closed {
		return 0, ErrInvalidHandle
	}
	if of.access&GenericRead == 0 {
		return 0, ErrAccessDenied
	}
	f := of.node()
	if of.offset >= len(f.data) {
		return 0, ErrSuccess // EOF: zero bytes, success (Win32 semantics)
	}
	n := copy(buf, f.data[of.offset:])
	of.offset += n
	return n, ErrSuccess
}

// Write copies buf at the current offset, extending the file as needed.
func (of *OpenFile) Write(buf []byte) (int, Errno) {
	if of.closed {
		return 0, ErrInvalidHandle
	}
	if of.access&GenericWrite == 0 {
		return 0, ErrAccessDenied
	}
	f := of.mutable()
	end := of.offset + len(buf)
	if end > len(f.data) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[of.offset:end], buf)
	of.offset = end
	return len(buf), ErrSuccess
}

// Seek methods, mirroring SetFilePointer dwMoveMethod.
const (
	FileBegin   uint32 = 0
	FileCurrent uint32 = 1
	FileEnd     uint32 = 2
)

// SeekTo moves the file offset and returns the new position.
func (of *OpenFile) SeekTo(distance int64, method uint32) (int64, Errno) {
	if of.closed {
		return 0, ErrInvalidHandle
	}
	var base int64
	switch method {
	case FileBegin:
		base = 0
	case FileCurrent:
		base = int64(of.offset)
	case FileEnd:
		base = int64(len(of.node().data))
	default:
		return 0, ErrInvalidParameter
	}
	pos := base + distance
	if pos < 0 {
		return 0, ErrInvalidParameter
	}
	of.offset = int(pos)
	return pos, ErrSuccess
}

// Size returns the file length in bytes.
func (of *OpenFile) Size() int { return len(of.node().data) }

// Mtime returns the file's virtual modification time.
func (of *OpenFile) Mtime() vclock.Time { return of.node().mtime }

// Touch sets the file's virtual modification time (the win32 layer calls
// it on writes and from SetFileTime).
func (of *OpenFile) Touch(t vclock.Time) { of.mutable().mtime = t }

// Mtime returns a file's modification time by path.
func (fs *VFS) Mtime(path string) (vclock.Time, bool) {
	f, ok := fs.files[normPath(path)]
	if !ok {
		return 0, false
	}
	return f.mtime, true
}

// Path returns the path this description was opened against.
func (of *OpenFile) Path() string { return of.node().path }

func (of *OpenFile) close() { of.closed = true }

// Snapshot / pooling support ------------------------------------------------

// snapshotMaps marks every node snapshot-shared (freezing it) and returns
// copies of the namespace maps for a PrefixSnapshot to own. The returned
// maps and the nodes they reference are read-only from this point on and
// safe for concurrent forks.
func (fs *VFS) snapshotMaps() (map[string]*vfile, map[string]string) {
	files := make(map[string]*vfile, len(fs.files))
	for k, f := range fs.files {
		f.shared = true
		files[k] = f
	}
	var dirs map[string]string
	if len(fs.dirsByKey) > 0 {
		dirs = make(map[string]string, len(fs.dirsByKey))
		for k, v := range fs.dirsByKey {
			dirs[k] = v
		}
	}
	return files, dirs
}

// restoreFrom loads snapshot maps into this (possibly pooled) filesystem,
// reusing existing map storage.
func (fs *VFS) restoreFrom(files map[string]*vfile, dirs map[string]string) {
	clear(fs.files)
	for k, f := range files {
		fs.files[k] = f
	}
	if fs.dirsByKey != nil {
		clear(fs.dirsByKey)
	}
	if len(dirs) > 0 {
		set := fs.dirSet()
		for k, v := range dirs {
			set[k] = v
		}
	}
}

// reset empties the filesystem, retaining map storage for reuse.
func (fs *VFS) reset() {
	clear(fs.files)
	if fs.dirsByKey != nil {
		clear(fs.dirsByKey)
	}
}
