package analysis

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
)

func spec(fn string, param, inv int, ft inject.FaultType) inject.FaultSpec {
	return inject.FaultSpec{Function: fn, Param: param, Invocation: inv, Type: ft}
}

// setFixture builds a small single-set result with a controllable
// outcome per fault.
func setFixture(outcomes map[string]core.Outcome) *core.SetResult {
	set := &core.SetResult{
		Workload:     "IIS",
		Supervision:  "watchd",
		FaultFreeSec: 10,
	}
	set.WatchdVersion = 3
	faults := []inject.FaultSpec{
		spec("ReadFile", 1, 1, inject.ZeroBits),
		spec("ReadFile", 1, 1, inject.OneBits),
		spec("WriteFile", 2, 1, inject.ZeroBits),
		spec("CreateFileA", 1, 1, inject.FlipBits),
	}
	for _, f := range faults {
		o, ok := outcomes[f.Key()]
		if !ok {
			o = core.NormalSuccess
		}
		r := core.RunResult{
			Fault:       f,
			Activated:   true,
			Injected:    true,
			Completed:   o != core.Failure,
			Outcome:     o,
			ResponseSec: 10,
		}
		if o == core.RestartSuccess {
			r.Restarts, r.ResponseSec = 1, 14
		}
		set.Runs = append(set.Runs, r)
	}
	return set
}

func writeArchive(t *testing.T, a *experiments.Archive) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "archive.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenArchive(t *testing.T) {
	set := setFixture(nil)
	path := writeArchive(t, &experiments.Archive{Kind: "set", Set: set})
	q, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != KindArchive {
		t.Fatalf("kind = %q, want archive", q.Kind)
	}
	got, err := q.Set()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(set.Runs) || got.Workload != "IIS" {
		t.Fatalf("round-tripped set mismatch: %d runs, workload %q", len(got.Runs), got.Workload)
	}
	if sets := q.Sets(); len(sets) != 1 {
		t.Fatalf("Sets() = %d sets, want 1", len(sets))
	}
}

func TestOpenArchiveCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{path, filepath.Join(t.TempDir(), "missing.json")} {
		_, err := OpenArchive(p)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("OpenArchive(%s) err = %v, want ErrCorrupt match", p, err)
		}
	}
}

func TestSetOnWrongKind(t *testing.T) {
	path := writeArchive(t, &experiments.Archive{Kind: "figure2", Experiment: &core.Experiment{Sets: []*core.SetResult{setFixture(nil)}}})
	q, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Set(); err == nil {
		t.Fatal("Set() on a figure2 archive should error")
	}
	if sets := q.Sets(); len(sets) != 1 {
		t.Fatalf("Sets() on figure2 = %d, want 1", len(sets))
	}
}

func TestOpenJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	w, err := journal.Create(path, journal.Header{Workload: "IIS", Supervision: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePlan([]string{"a", "b", "c"}, "fp"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRun(0, "a", 1, json.RawMessage(`{}`), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAssign(0, "assign", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAssign(0, "degraded", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j := q.Journal
	if j.Header.Workload != "IIS" || !j.HasPlan || j.PlanJobs != 3 || j.Records != 1 {
		t.Fatalf("summary = %+v", j)
	}
	if j.Remaining() != 2 {
		t.Fatalf("Remaining() = %d, want 2", j.Remaining())
	}
	if j.Dispatch["assign"] != 1 || !j.Degraded {
		t.Fatalf("dispatch = %v degraded = %v", j.Dispatch, j.Degraded)
	}
}

func TestOpenJournalCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.journal")
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt match", err)
	}
}

func TestOpenTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	lines := `{"run":0,"at":10,"pid":1,"kind":"syscall","name":"ReadFile","a":0,"b":0}
{"run":0,"at":20,"pid":1,"kind":"syscall","name":"ReadFile","a":0,"b":0}
{"run":1,"at":30,"pid":1,"kind":"syscall","name":"WriteFile","a":0,"b":0}
{"run":1,"at":45,"pid":0,"kind":"fault-armed","name":"ReadFile","a":0,"b":0}
{"run":1,"at":50,"pid":0,"kind":"fault-activated","name":"ReadFile","a":0,"b":0}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := q.Trace
	if tr.Events != 5 || tr.Runs != 2 {
		t.Fatalf("events=%d runs=%d, want 5/2", tr.Events, tr.Runs)
	}
	if tr.Armed != 1 || tr.Activated != 1 || tr.Injected != 0 {
		t.Fatalf("lifecycle = %d/%d/%d, want 1/1/0", tr.Armed, tr.Activated, tr.Injected)
	}
	if got := tr.BusiestSyscalls(1); len(got) != 1 || got[0] != "ReadFile" {
		t.Fatalf("BusiestSyscalls(1) = %v, want [ReadFile]", got)
	}
	if got := tr.KindsByCount(); got[0] != "syscall" {
		t.Fatalf("KindsByCount()[0] = %q, want syscall", got[0])
	}
	if _, err := OpenTrace(filepath.Join(t.TempDir(), "missing.jsonl")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing trace err = %v, want ErrCorrupt match", err)
	}
}

func TestDiffAndMatrix(t *testing.T) {
	key := func(fn string, ft inject.FaultType) string { return spec(fn, 1, 1, ft).Key() }
	a := setFixture(map[string]core.Outcome{
		key("ReadFile", inject.ZeroBits): core.Failure,
		key("ReadFile", inject.OneBits):  core.Failure,
	})
	a.Supervision, a.WatchdVersion = "none", 0
	b := setFixture(map[string]core.Outcome{
		key("ReadFile", inject.ZeroBits):    core.RestartSuccess,
		key("CreateFileA", inject.FlipBits): core.Failure,
	})
	d := Diff(a, b)
	if d.FromLabel != "IIS/none" || d.ToLabel != "IIS/watchd-v3" {
		t.Fatalf("labels = %q -> %q", d.FromLabel, d.ToLabel)
	}
	if d.Common != 4 || len(d.Transitions) != 3 || d.Unchanged != 1 {
		t.Fatalf("common=%d transitions=%d unchanged=%d", d.Common, len(d.Transitions), d.Unchanged)
	}
	if d.Summary.Improved != 2 || d.Summary.Regressed != 1 {
		t.Fatalf("summary = %+v", d.Summary)
	}
	cells := d.Matrix()
	if len(cells) != 3 {
		t.Fatalf("matrix cells = %d, want 3", len(cells))
	}
	// Sorted by function: CreateFileA regressed, then the two ReadFile cells.
	if cells[0].Function != "CreateFileA" || cells[0].Regressed != 1 {
		t.Fatalf("cell[0] = %+v", cells[0])
	}

	flips := d.Flips()
	if len(flips) != 3 {
		t.Fatalf("flips = %d, want 3", len(flips))
	}
	for _, f := range flips {
		if f.Kind != "outcome-flip" {
			t.Fatalf("flip kind = %q", f.Kind)
		}
	}
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("")
	if err != nil || w != DefaultWeights() {
		t.Fatalf("empty spec: %+v, %v", w, err)
	}
	w, err = ParseWeights("avail=2,recovery=0.5")
	if err != nil || w.Availability != 2 || w.Recovery != 0.5 || w.Quarantine != DefaultWeights().Quarantine {
		t.Fatalf("partial spec: %+v, %v", w, err)
	}
	for _, bad := range []string{"x=1", "avail", "avail=-1", "avail=zz"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q) should error", bad)
		}
	}
}

func TestFitness(t *testing.T) {
	set := setFixture(map[string]core.Outcome{
		spec("ReadFile", 1, 1, inject.ZeroBits).Key(): core.Failure,
		spec("ReadFile", 1, 1, inject.OneBits).Key():  core.RestartSuccess,
	})
	sc := Fitness(set, DefaultWeights())
	if sc.Injected != 4 {
		t.Fatalf("injected = %d, want 4", sc.Injected)
	}
	if sc.Availability != 0.75 {
		t.Fatalf("availability = %v, want 0.75", sc.Availability)
	}
	// The restarted run responded in 14s against a 10s baseline.
	if sc.MeanRecoverySec != 4 || sc.RecoveryRel != 0.4 {
		t.Fatalf("recovery = %v (%vx), want 4 (0.4x)", sc.MeanRecoverySec, sc.RecoveryRel)
	}
	want := 1*0.75 - 0.25*0.4 - 1*0
	if sc.Total != want {
		t.Fatalf("total = %v, want %v", sc.Total, want)
	}
}

func TestRecoveryOutliers(t *testing.T) {
	set := setFixture(nil)
	for i := range set.Runs {
		set.Runs[i].ResponseSec = 10 + float64(i%2) // 10,11,10,11 -> MAD 0.5
	}
	set.Runs[3].ResponseSec = 120
	out := RecoveryOutliers(set, 5)
	if len(out) != 1 || out[0].Kind != "recovery-outlier" {
		t.Fatalf("outliers = %+v, want exactly the 120s run", out)
	}
	if out[0].Fault.Function != "CreateFileA" {
		t.Fatalf("flagged %s, want CreateFileA", out[0].Fault.Function)
	}
	// A flat distribution (MAD 0) flags nothing.
	for i := range set.Runs {
		set.Runs[i].ResponseSec = 10
	}
	if out := RecoveryOutliers(set, 5); out != nil {
		t.Fatalf("flat distribution flagged %+v", out)
	}
}
