package analysis

// Weighted multi-objective fitness scoring for campaigns, following the
// fitness-evaluation idea in BLIS's counterfactual analysis: one scalar
// that trades availability against recovery cost and quarantine noise,
// with the weights a first-class input.

import (
	"fmt"
	"strconv"
	"strings"

	"ntdts/internal/core"
)

// Weights are the fitness objective weights. Availability rewards;
// recovery time and quarantine rate penalize.
type Weights struct {
	Availability float64
	Recovery     float64
	Quarantine   float64
}

// DefaultWeights balance the objectives for ad-hoc comparisons:
// availability dominates, recovery cost (relative to the fault-free
// response) and quarantine rate pull down.
func DefaultWeights() Weights {
	return Weights{Availability: 1, Recovery: 0.25, Quarantine: 1}
}

// ParseWeights reads a weights spec string: comma-separated
// "avail=1,recovery=0.25,quarantine=1" (any subset; omitted keys keep
// their defaults; "" is all defaults).
func ParseWeights(s string) (Weights, error) {
	w := DefaultWeights()
	if strings.TrimSpace(s) == "" {
		return w, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("weights: %q is not key=value", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || x < 0 {
			return w, fmt.Errorf("weights: bad value %q for %q", v, k)
		}
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "avail", "availability":
			w.Availability = x
		case "recovery":
			w.Recovery = x
		case "quarantine":
			w.Quarantine = x
		default:
			return w, fmt.Errorf("weights: unknown key %q (want avail|recovery|quarantine)", k)
		}
	}
	return w, nil
}

// Score is one set's fitness breakdown.
type Score struct {
	// Injected counts the scored runs.
	Injected int
	// Availability is the fraction of injected runs that ended in any
	// success class.
	Availability float64
	// MeanRecoverySec is the mean extra response time, over the
	// fault-free baseline, of injected runs the middleware restarted
	// and that still completed — what a recovery costs when it works.
	MeanRecoverySec float64
	// RecoveryRel is MeanRecoverySec relative to the fault-free
	// response time (the penalty term, so weights are unit-free).
	RecoveryRel float64
	// QuarantineRate is quarantined runs over the full plan.
	QuarantineRate float64
	// Total is the weighted scalar:
	// availability·wA − recoveryRel·wR − quarantineRate·wQ.
	Total float64
}

// Fitness scores one set under the given weights.
func Fitness(set *core.SetResult, w Weights) Score {
	var sc Score
	succeeded := 0
	var recSum float64
	recN := 0
	for _, r := range set.Runs {
		if !r.Injected {
			continue
		}
		sc.Injected++
		if r.Outcome != core.Failure && r.Outcome != core.HarnessHang {
			succeeded++
		}
		if r.Restarts > 0 && r.Completed {
			extra := r.ResponseSec - set.FaultFreeSec
			if extra < 0 {
				extra = 0
			}
			recSum += extra
			recN++
		}
	}
	if sc.Injected > 0 {
		sc.Availability = float64(succeeded) / float64(sc.Injected)
	}
	if recN > 0 {
		sc.MeanRecoverySec = recSum / float64(recN)
	}
	if set.FaultFreeSec > 0 {
		sc.RecoveryRel = sc.MeanRecoverySec / set.FaultFreeSec
	}
	if n := len(set.Runs); n > 0 {
		sc.QuarantineRate = float64(len(set.Quarantined)) / float64(n)
	}
	sc.Total = w.Availability*sc.Availability - w.Recovery*sc.RecoveryRel - w.Quarantine*sc.QuarantineRate
	return sc
}
