// Package analysis is the unified read-side API over the three on-disk
// artifact kinds the toolchain produces: results archives (indented
// JSON, internal/experiments), campaign journals (JSONL,
// internal/journal), and telemetry traces (JSONL, internal/telemetry).
// dtsreport used to parse each with its own private code path; the
// typed loaders here replace all three, and the diff / fitness /
// anomaly layers turn loaded artifacts into cross-substrate analytics.
//
// Every loader classifies unreadable or unparsable input with
// ErrCorrupt so callers can distinguish "bad input file" from "bad
// invocation" without knowing which artifact kind they opened.
package analysis

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/journal"
	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
)

// ErrCorrupt marks an artifact that could not be read or parsed. Match
// with errors.Is.
var ErrCorrupt = errors.New("corrupt artifact")

// corruptError keeps the caller-facing message free of boilerplate
// while still matching ErrCorrupt.
type corruptError struct {
	msg string
	err error
}

func (e *corruptError) Error() string { return e.msg }
func (e *corruptError) Unwrap() error { return e.err }
func (e *corruptError) Is(target error) bool {
	return target == ErrCorrupt
}

func corruptf(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	return &corruptError{msg: err.Error(), err: errors.Unwrap(err)}
}

// Kind names one artifact kind.
type Kind string

const (
	KindArchive Kind = "archive"
	KindJournal Kind = "journal"
	KindTrace   Kind = "trace"
)

// Query is one loaded artifact: exactly one of Archive, Journal or
// Trace is non-nil, matching Kind.
type Query struct {
	Path string
	Kind Kind

	Archive *experiments.Archive
	Journal *JournalSummary
	Trace   *TraceSummary
}

// OpenArchive loads a results archive.
func OpenArchive(path string) (*Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, corruptf("unreadable archive: %w", err)
	}
	defer f.Close()
	a, err := experiments.LoadArchive(f)
	if err != nil {
		return nil, corruptf("corrupt archive %s: %w", path, err)
	}
	return &Query{Path: path, Kind: KindArchive, Archive: a}, nil
}

// Set returns the archive's single-set payload, with a kind-mismatch
// error naming what the archive actually holds.
func (q *Query) Set() (*core.SetResult, error) {
	if q.Archive == nil {
		return nil, fmt.Errorf("%s is a %s, not a results archive", q.Path, q.Kind)
	}
	if q.Archive.Set == nil {
		return nil, fmt.Errorf("archive holds %q, not a single set", q.Archive.Kind)
	}
	return q.Archive.Set, nil
}

// Sets returns every workload set the archive holds (a "set" archive
// has one, a "figure2" archive one per workload/substrate pair; other
// kinds none).
func (q *Query) Sets() []*core.SetResult {
	if q.Archive == nil {
		return nil
	}
	if q.Archive.Set != nil {
		return []*core.SetResult{q.Archive.Set}
	}
	if q.Archive.Experiment != nil {
		return q.Archive.Experiment.Sets
	}
	return nil
}

// JournalSummary is the parsed state of a campaign journal, reduced to
// what triage and reporting consume.
type JournalSummary struct {
	Header      journal.Header
	HasPlan     bool
	PlanJobs    int
	Records     int
	Quarantined int
	// Torn reports a final line cut mid-write (discarded on resume).
	Torn bool
	// Dispatch counts the fleet dispatcher's provenance events by kind
	// (empty for non-fleet campaigns); Degraded marks a campaign that
	// only finished by falling back to in-process execution.
	Dispatch map[string]int
	Degraded bool
}

// Remaining returns how many planned jobs have no journaled record.
func (j *JournalSummary) Remaining() int {
	return j.PlanJobs - j.Records
}

// OpenJournal loads and summarizes a campaign journal.
func OpenJournal(path string) (*Query, error) {
	rep, err := journal.Replay(path)
	if err != nil {
		return nil, corruptf("corrupt journal: %w", err)
	}
	j := &JournalSummary{
		Header:      rep.Header,
		Records:     rep.Records,
		Quarantined: len(rep.Quarantined),
		Torn:        rep.Torn,
	}
	if rep.Plan != nil {
		j.HasPlan, j.PlanJobs = true, len(rep.Plan.Jobs)
	}
	if len(rep.Dispatch) > 0 {
		j.Dispatch = make(map[string]int)
		for _, ev := range rep.Dispatch {
			j.Dispatch[ev.Event]++
			if ev.Event == "degraded" {
				j.Degraded = true
			}
		}
	}
	return &Query{Path: path, Kind: KindJournal, Journal: j}, nil
}

// TraceSummary condenses a JSONL telemetry trace: coverage, event mix,
// and how far the fault lifecycle got.
type TraceSummary struct {
	Events    int
	Runs      int
	Span      vclock.Time
	Kinds     map[string]int
	Syscalls  map[string]int
	Armed     int
	Activated int
	Injected  int
}

// KindsByCount orders event kinds by descending count (name ascending
// on ties), deterministically.
func (t *TraceSummary) KindsByCount() []string { return SortedByCount(t.Kinds) }

// BusiestSyscalls returns the top-n API functions by dispatch count.
func (t *TraceSummary) BusiestSyscalls(n int) []string {
	top := SortedByCount(t.Syscalls)
	if len(top) > n {
		top = top[:n]
	}
	return top
}

// OpenTrace loads and summarizes a telemetry trace exported by
// dts -trace-out.
func OpenTrace(path string) (*Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, corruptf("unreadable trace: %w", err)
	}
	defer f.Close()
	lines, err := telemetry.ReadJSONL(f)
	if err != nil {
		return nil, corruptf("corrupt trace %s: %w", path, err)
	}
	t := &TraceSummary{
		Events:   len(lines),
		Kinds:    make(map[string]int),
		Syscalls: make(map[string]int),
	}
	runs := make(map[int]bool)
	for _, l := range lines {
		runs[l.Run] = true
		t.Kinds[l.Event.Kind.String()]++
		if l.Event.Kind == telemetry.KindSyscall {
			t.Syscalls[l.Event.Name]++
		}
		if l.Event.At > t.Span {
			t.Span = l.Event.At
		}
	}
	t.Runs = len(runs)
	t.Armed = t.Kinds[telemetry.KindFaultArmed.String()]
	t.Activated = t.Kinds[telemetry.KindFaultActivated.String()]
	t.Injected = t.Kinds[telemetry.KindFaultInjected.String()]
	return &Query{Path: path, Kind: KindTrace, Trace: t}, nil
}

// SortedByCount orders map keys by descending count, name ascending on
// ties — the deterministic ordering every count rendering uses.
func SortedByCount(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
