package analysis

// Anomaly flagging: the cells worth a human's attention after a diff or
// a campaign — outcome classes that flip across substrates, and
// recovery times far outside the set's distribution.

import (
	"fmt"
	"sort"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/stats"
)

// Anomaly is one flagged cell.
type Anomaly struct {
	Kind   string // "outcome-flip" or "recovery-outlier"
	Fault  inject.FaultSpec
	Detail string
}

// Flips returns the delta's transitions that cross the success/failure
// boundary — the outcome-class flips a substrate swap caused, in
// transition order.
func (d *Delta) Flips() []Anomaly {
	var out []Anomaly
	for _, t := range d.Transitions {
		fromFail := t.From == core.Failure || t.From == core.HarnessHang
		toFail := t.To == core.Failure || t.To == core.HarnessHang
		if fromFail == toFail {
			continue
		}
		out = append(out, Anomaly{
			Kind:   "outcome-flip",
			Fault:  t.Fault,
			Detail: fmt.Sprintf("%s -> %s (%s -> %s)", d.FromLabel, d.ToLabel, t.From, t.To),
		})
	}
	return out
}

// RecoveryOutliers flags completed injected runs whose response time
// deviates from the set's median by more than k median absolute
// deviations (k·MAD, the robust outlier rule). A zero MAD (every
// response identical) flags nothing — there is no distribution to be
// outside of. Results are ordered by descending deviation, fault key
// ascending on ties.
func RecoveryOutliers(set *core.SetResult, k float64) []Anomaly {
	if k <= 0 {
		k = 5
	}
	var xs []float64
	var idx []int
	for i, r := range set.Runs {
		if !r.Injected || !r.Completed {
			continue
		}
		xs = append(xs, r.ResponseSec)
		idx = append(idx, i)
	}
	if len(xs) < 3 {
		return nil
	}
	med := stats.Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		d := x - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	mad := stats.Median(devs)
	if mad == 0 {
		return nil
	}
	type hit struct {
		i   int
		dev float64
	}
	var hits []hit
	for i, d := range devs {
		if d > k*mad {
			hits = append(hits, hit{idx[i], d})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].dev != hits[b].dev {
			return hits[a].dev > hits[b].dev
		}
		return set.Runs[hits[a].i].Fault.Key() < set.Runs[hits[b].i].Fault.Key()
	})
	out := make([]Anomaly, len(hits))
	for i, h := range hits {
		r := set.Runs[h.i]
		out[i] = Anomaly{
			Kind:  "recovery-outlier",
			Fault: r.Fault,
			Detail: fmt.Sprintf("response %.2fs, median %.2fs, deviation %.2fs > %.1f·MAD (%.2fs)",
				r.ResponseSec, med, h.dev, k, mad),
		}
	}
	return out
}
