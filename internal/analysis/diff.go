package analysis

// Failure-matrix diffing across substrates (cf. the paper's §4.3
// methodology of studying which faults changed outcome between watchd
// generations, and the cross-version failure-matrix comparison in the
// CentOS fault-injection failure-analysis literature).

import (
	"fmt"
	"sort"

	"ntdts/internal/core"
	"ntdts/internal/inject"
)

// Delta is the failure-matrix delta between two workload sets: the
// outcome transitions over their common injected faults, plus the
// aggregate and per-cell (function × corruption) tallies.
type Delta struct {
	FromLabel, ToLabel string
	// Common counts the injected faults present in both sets — the
	// paper's "counting only common faults" comparison basis.
	Common    int
	Unchanged int
	// Transitions lists every fault whose outcome differs, sorted.
	Transitions []core.Transition
	Summary     core.TransitionSummary
}

// Label renders a set's substrate identity ("IIS/watchd-v3" style).
func Label(s *core.SetResult) string {
	if s.WatchdVersion != 0 {
		return fmt.Sprintf("%s/%s-v%d", s.Workload, s.Supervision, s.WatchdVersion)
	}
	return fmt.Sprintf("%s/%s", s.Workload, s.Supervision)
}

// Diff compares two sets fault by fault over their common injected
// faults.
func Diff(a, b *core.SetResult) *Delta {
	aRuns, _ := core.CommonInjected(a, b)
	ts := core.DiffSets(a, b)
	return &Delta{
		FromLabel:   Label(a),
		ToLabel:     Label(b),
		Common:      len(aRuns),
		Unchanged:   len(aRuns) - len(ts),
		Transitions: ts,
		Summary:     core.SummarizeTransitions(ts),
	}
}

// MatrixCell aggregates a delta's transitions for one function ×
// corruption cell of the failure matrix.
type MatrixCell struct {
	Function  string
	Type      inject.FaultType
	Improved  int
	Regressed int
	Shifted   int
}

// Matrix groups the transitions per function × corruption, sorted by
// function then type — the cell-level view of what the substrate swap
// bought and broke.
func (d *Delta) Matrix() []MatrixCell {
	type key struct {
		fn string
		ft inject.FaultType
	}
	cells := make(map[key]*MatrixCell)
	var order []key
	for _, t := range d.Transitions {
		k := key{t.Fault.Function, t.Fault.Type}
		c, ok := cells[k]
		if !ok {
			c = &MatrixCell{Function: k.fn, Type: k.ft}
			cells[k] = c
			order = append(order, k)
		}
		switch {
		case t.From == core.Failure && t.To != core.Failure:
			c.Improved++
		case t.From != core.Failure && t.To == core.Failure:
			c.Regressed++
		default:
			c.Shifted++
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].fn != order[j].fn {
			return order[i].fn < order[j].fn
		}
		return order[i].ft < order[j].ft
	})
	out := make([]MatrixCell, len(order))
	for i, k := range order {
		out[i] = *cells[k]
	}
	return out
}
