package workloadgen_test

// End-to-end determinism for generated workloads: the same cohort spec
// must produce the same schedule (pinned as a golden trace), and a
// 200-fault campaign over that cohort must produce byte-identical
// archives at every execution topology — sequential, worker pools,
// multi-process shards — and when the recorded trace is replayed in
// place of the generator. This is the workload-generation extension of
// the repo-root engine-equivalence oracle.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/shard"
	"ntdts/internal/workload"
	"ntdts/internal/workloadgen"
)

var update = flag.Bool("update", false, "rewrite golden files from live behaviour")

// goldenSpec is the pinned 8-client cohort: an open-loop Poisson browser
// class over both HTTP request kinds and a closed-loop bursty Gamma
// batch class. The rates are tuned to the simulated server's capacity so
// the fault-free run is NormalSuccess — campaign outcomes then measure
// the injected faults, not self-inflicted overload.
const goldenSpec = "seed=42" +
	";class=browser,clients=5,requests=6,arrival=poisson,rate=0.05,mix=static-115k:3/cgi-1k:1" +
	";class=batch,clients=3,requests=4,arrival=gamma,rate=0.2,shape=0.5,mix=cgi-1k:1,mode=closed"

// goldenSchedule parses and generates the pinned cohort.
func goldenSchedule(t *testing.T) (workloadgen.CohortSpec, []workload.ClientSchedule) {
	t.Helper()
	spec, err := workloadgen.Parse(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	return spec, scheds
}

// TestScheduleGolden pins the generated schedule's exact bytes: any
// change to the PRNG, the samplers, the substream derivation or the
// trace format shows up as a golden diff (refresh deliberately with
// -update).
func TestScheduleGolden(t *testing.T) {
	spec, scheds := goldenSchedule(t)
	var b bytes.Buffer
	if err := workloadgen.WriteTrace(&b, spec.String(), scheds); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "schedule.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, b.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("generated schedule diverges from %s: %d vs %d bytes (refresh with -update if the change is intended)",
			golden, b.Len(), len(want))
	}
}

// TestSQLCohortMixesBothRequestKinds: the SQL catalog's second request
// kind (select-small) is reachable only through generated cohorts — the
// canned SqlClient stays pinned to the paper's single select. A mixed
// cohort must schedule both kinds, compile against NewSQL, and complete
// its fault-free calibration run with every request answered correctly.
func TestSQLCohortMixesBothRequestKinds(t *testing.T) {
	const sqlSpec = "seed=7" +
		";class=sql,clients=3,requests=4,arrival=poisson,rate=0.05,mix=select-orders:1/select-small:1"
	spec, err := workloadgen.Parse(sqlSpec)
	if err != nil {
		t.Fatal(err)
	}
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, cs := range scheds {
		for _, st := range cs.Steps {
			counts[st.Request]++
		}
	}
	if counts["select-orders"] == 0 || counts["select-small"] == 0 {
		t.Fatalf("1:1 mix over 12 requests left a kind unscheduled: %v", counts)
	}

	def, err := workloadgen.Compile(workload.NewSQL(workload.Standalone), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewRunner(def, core.RunnerOptions{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Outcome != core.NormalSuccess {
		t.Fatalf("fault-free SQL cohort run: completed=%v outcome=%v, want normal success", res.Completed, res.Outcome)
	}
	if len(res.Classes) != 1 {
		t.Fatalf("%d class aggregates, want 1 (sql)", len(res.Classes))
	}
	co := res.Classes[0]
	if co.Class != "sql" || co.Clients != 3 || co.Requests != 12 || co.Succeeded != 12 {
		t.Fatalf("sql class stats %+v, want 3 clients x 4 requests all succeeded", co)
	}

	// The mix validates against the catalog: a kind the SQL workload
	// does not serve must be rejected at compile time.
	bogus, err := workloadgen.Parse("seed=7;class=sql,clients=1,requests=2,arrival=poisson,rate=0.05,mix=drop-table:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workloadgen.Compile(workload.NewSQL(workload.Standalone), bogus); err == nil {
		t.Fatal("unknown request kind must fail cohort compilation")
	}
}

// campaignSpecs builds a deterministic 200-fault list spanning the
// KERNEL32 catalog, cycling parameters and corruption types — the same
// shape a faultgen-generated user fault list has.
func campaignSpecs(n int) []inject.FaultSpec {
	types := inject.AllFaultTypes()
	var specs []inject.FaultSpec
	for i, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		specs = append(specs, inject.FaultSpec{
			Function:   e.Name,
			Param:      i % e.Params,
			Invocation: 1,
			Type:       types[i%len(types)],
		})
		if len(specs) == n {
			break
		}
	}
	return specs
}

// runCampaign executes the 200-spec campaign over def at one topology
// and returns the marshalled archive.
func runCampaign(t *testing.T, def workload.Definition, parallel, shards int) []byte {
	t.Helper()
	opts := []core.Option{
		core.WithParallelism(parallel),
		core.WithSpecs(campaignSpecs(200)),
	}
	if shards > 1 {
		opts = append(opts,
			core.WithShards(shards),
			core.WithShardExecutor(shard.New(shard.Options{WorkerParallelism: 1})))
	}
	set, err := core.NewCampaign(
		core.NewRunner(def, core.RunnerOptions{}), opts...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCohortCampaignDeterminism is the acceptance oracle: the generated
// 8-client cohort campaign produces byte-identical archives at -parallel
// 1, 4 and 16, across a 4-way multi-process shard fan-out (whose workers
// rebuild the cohort from the journal header's spec string), and when
// the recorded schedule trace is replayed in place of the generator.
func TestCohortCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign determinism sweep is slow")
	}
	spec, scheds := goldenSchedule(t)
	base := workload.NewApache1(workload.Standalone)
	cohortDef, err := workloadgen.Compile(base, spec)
	if err != nil {
		t.Fatal(err)
	}

	baseline := runCampaign(t, cohortDef, 1, 1)
	var classy core.SetResult
	if err := json.Unmarshal(baseline, &classy); err != nil {
		t.Fatal(err)
	}
	if len(classy.ClassStats()) != 2 {
		t.Fatalf("archive carries %d class aggregates, want 2 (browser, batch)", len(classy.ClassStats()))
	}

	for _, tc := range []struct {
		name             string
		parallel, shards int
	}{
		{"parallel-4", 4, 1},
		{"parallel-16", 16, 1},
		{"shards-4", 1, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runCampaign(t, cohortDef, tc.parallel, tc.shards)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("%s archive diverges from sequential baseline: %d vs %d bytes",
					tc.name, len(got), len(baseline))
			}
		})
	}

	t.Run("trace-replay", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "schedule.wtrace")
		if err := workloadgen.WriteTraceFile(path, spec.String(), scheds); err != nil {
			t.Fatal(err)
		}
		replayDef, err := workloadgen.CompileTrace(base, path)
		if err != nil {
			t.Fatal(err)
		}
		got := runCampaign(t, replayDef, 4, 1)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("trace-replay archive diverges from generated-cohort baseline: %d vs %d bytes",
				len(got), len(baseline))
		}
	})

	t.Run("trace-replay-sharded", func(t *testing.T) {
		// Shard workers receive the trace *path* through the journal
		// header and re-read it themselves.
		path := filepath.Join(t.TempDir(), "schedule.wtrace")
		if err := workloadgen.WriteTraceFile(path, spec.String(), scheds); err != nil {
			t.Fatal(err)
		}
		replayDef, err := workloadgen.CompileTrace(base, path)
		if err != nil {
			t.Fatal(err)
		}
		got := runCampaign(t, replayDef, 1, 4)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("sharded trace-replay archive diverges: %d vs %d bytes", len(got), len(baseline))
		}
	})
}
