package workloadgen

// Seeded inter-arrival samplers. Everything here is hand-rolled on a
// splitmix64 uniform stream rather than math/rand: the generated schedule
// is a regression artifact (pinned goldens, byte-identical campaign
// archives), so the byte stream must be a pure function of the seed —
// independent of Go version, GOMAXPROCS, -parallel and -shards — and the
// only way to guarantee that is to own every bit of the pipeline.

import (
	"fmt"
	"math"
	"time"
)

// rng is a splitmix64 generator: tiny state, full 64-bit output, and a
// well-studied output function (Steele, Lea & Flood 2014).
type rng struct{ state uint64 }

// next returns the next 64 uniform bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1) with 53 random bits.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// open returns a uniform sample in (0, 1] — safe to take the log of.
func (r *rng) open() float64 {
	return 1 - r.float64()
}

// normal returns a standard normal sample via Box–Muller. One pair is
// computed and the second half discarded; schedule generation is far off
// any hot path and statelessness keeps the stream position predictable.
func (r *rng) normal() float64 {
	u1 := r.open()
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// intn returns a uniform sample in [0, n). The modulo bias at n ≪ 2^64
// is immaterial for request-mix weights.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// fnv64a hashes a string (FNV-1a), used to give each (class, client)
// pair its own decorrelated substream.
func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// newClientRNG derives the per-client generator. Mixing the class *name*
// (not its index) means adding or reordering classes never perturbs
// another class's schedule.
func newClientRNG(seed int64, class string, client int) *rng {
	r := &rng{state: uint64(seed)}
	r.state ^= fnv64a(class)
	r.next()
	r.state ^= uint64(client) * 0xd6e8feb86659fd93
	r.next()
	return r
}

// ArrivalProcess selects the inter-arrival distribution.
type ArrivalProcess int

const (
	// Poisson arrivals: exponential inter-arrival times (memoryless, the
	// classic open-system model).
	Poisson ArrivalProcess = iota + 1
	// Gamma inter-arrivals: shape < 1 is burstier than Poisson, shape > 1
	// smoother (shape 1 degenerates to Poisson).
	Gamma
	// Weibull inter-arrivals: heavy-ish tails at shape < 1, the classic
	// fit for empirical session data.
	Weibull
)

// String names the process the way cohort specs spell it.
func (a ArrivalProcess) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Gamma:
		return "gamma"
	case Weibull:
		return "weibull"
	default:
		return "unknown"
	}
}

// parseArrivalProcess inverts String.
func parseArrivalProcess(s string) (ArrivalProcess, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "gamma":
		return Gamma, nil
	case "weibull":
		return Weibull, nil
	default:
		return 0, fmt.Errorf("unknown arrival process %q (want poisson, gamma or weibull)", s)
	}
}

// Arrival parameterizes an inter-arrival sampler. Rate is the mean
// arrival rate in requests per second for every process — the mean
// inter-arrival time is 1/Rate regardless of shape — so swapping the
// process changes burstiness, not offered load.
type Arrival struct {
	Process ArrivalProcess
	// Rate is the mean arrival rate (requests/second), > 0.
	Rate float64
	// Shape is the Gamma/Weibull shape parameter, > 0 (unused and
	// rejected for Poisson).
	Shape float64
}

// validate checks the parameter domain.
func (a Arrival) validate() error {
	if a.Rate <= 0 || math.IsNaN(a.Rate) || math.IsInf(a.Rate, 0) {
		return fmt.Errorf("arrival rate must be > 0 (got %v)", a.Rate)
	}
	switch a.Process {
	case Poisson:
		if a.Shape != 0 {
			return fmt.Errorf("poisson arrivals take no shape (got %v)", a.Shape)
		}
	case Gamma, Weibull:
		if a.Shape <= 0 || math.IsNaN(a.Shape) || math.IsInf(a.Shape, 0) {
			return fmt.Errorf("%s arrivals need shape > 0 (got %v)", a.Process, a.Shape)
		}
	default:
		return fmt.Errorf("unknown arrival process %d", a.Process)
	}
	return nil
}

// sample draws one inter-arrival time in seconds (strictly positive).
func (a Arrival) sample(r *rng) float64 {
	mean := 1 / a.Rate
	switch a.Process {
	case Poisson:
		return mean * sampleExp(r)
	case Gamma:
		// Gamma(shape k, scale θ) has mean kθ; θ = mean/k keeps the
		// configured rate.
		return (mean / a.Shape) * sampleGamma(r, a.Shape)
	case Weibull:
		// Weibull(shape k, scale λ) has mean λ·Γ(1+1/k); divide it out so
		// the configured rate survives the shape choice.
		scale := mean / math.Gamma(1+1/a.Shape)
		return scale * sampleWeibull(r, a.Shape)
	}
	panic("workloadgen: unreachable arrival process")
}

// interArrival draws one inter-arrival as a virtual duration, quantized
// up to whole microseconds so times are compact in traces and strictly
// positive by construction.
func (a Arrival) interArrival(r *rng) time.Duration {
	sec := a.sample(r)
	us := math.Ceil(sec * 1e6)
	if us < 1 {
		us = 1
	}
	return time.Duration(us) * time.Microsecond
}

// sampleExp draws Exp(1) by inversion.
func sampleExp(r *rng) float64 {
	return -math.Log(r.open())
}

// sampleGamma draws Gamma(shape k, scale 1) via Marsaglia–Tsang's
// squeeze method (k ≥ 1), boosted for k < 1 with the standard
// Gamma(k+1)·U^{1/k} identity.
func sampleGamma(r *rng, k float64) float64 {
	if k < 1 {
		return sampleGamma(r, k+1) * math.Pow(r.open(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleWeibull draws Weibull(shape k, scale 1) by inversion.
func sampleWeibull(r *rng, k float64) float64 {
	return math.Pow(sampleExp(r), 1/k)
}
