package workloadgen

import (
	"strings"
	"testing"

	"ntdts/internal/workload"
)

// browserClass and batchClass are the shared test cohort: an open-loop
// Poisson class over two request kinds and a closed-loop bursty Gamma
// class.
func browserClass() ClassSpec {
	return ClassSpec{
		Name: "browser", Clients: 5, Requests: 6,
		Arrival: Arrival{Process: Poisson, Rate: 2},
		Mix:     []MixEntry{{Request: "static-115k", Weight: 3}, {Request: "cgi-1k", Weight: 1}},
	}
}

func batchClass() ClassSpec {
	return ClassSpec{
		Name: "batch", Clients: 3, Requests: 4,
		Arrival: Arrival{Process: Gamma, Rate: 1, Shape: 0.5},
		Mix:     []MixEntry{{Request: "cgi-1k", Weight: 1}},
		Closed:  true,
	}
}

func mixedCohortSpec(seed int64) CohortSpec {
	return CohortSpec{Seed: seed, Classes: []ClassSpec{browserClass(), batchClass()}}
}

// renderTrace generates the spec's schedule and serializes it.
func renderTrace(t *testing.T, spec CohortSpec) string {
	t.Helper()
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTrace(&b, spec.String(), scheds); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func schedulesEqual(a, b workload.ClientSchedule) bool {
	if a.Class != b.Class || a.Client != b.Client || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			return false
		}
	}
	return true
}

// TestSpecStringRoundTrip pins the canonical spec grammar: String and
// Parse must invert each other exactly, including seed, shape and mode
// clauses.
func TestSpecStringRoundTrip(t *testing.T) {
	specs := []CohortSpec{
		mixedCohortSpec(42),
		{Seed: -7, Classes: []ClassSpec{{
			Name: "w", Clients: 1, Requests: 1,
			Arrival: Arrival{Process: Weibull, Rate: 0.25, Shape: 3.5},
			Mix:     []MixEntry{{Request: "select-orders", Weight: 2}},
		}}},
	}
	for _, spec := range specs {
		s := spec.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got.String() != s {
			t.Fatalf("round trip: %q -> %q", s, got.String())
		}
		// The round-tripped spec must generate the identical schedule.
		if renderTrace(t, spec) != renderTrace(t, got) {
			t.Fatalf("round-tripped spec %q generates a different schedule", s)
		}
	}
}

// TestParseExamples covers the documented grammar forms and defaults.
func TestParseExamples(t *testing.T) {
	spec, err := Parse("seed=42;class=browser,clients=4,requests=6,arrival=poisson,rate=2,mix=static-115k:3/cgi-1k:1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || len(spec.Classes) != 1 {
		t.Fatalf("parsed %+v", spec)
	}
	c := spec.Classes[0]
	if c.Name != "browser" || c.Clients != 4 || c.Requests != 6 || c.Closed {
		t.Fatalf("parsed class %+v", c)
	}
	if c.Arrival.Process != Poisson || c.Arrival.Rate != 2 {
		t.Fatalf("parsed arrival %+v", c.Arrival)
	}
	if len(c.Mix) != 2 || c.Mix[0] != (MixEntry{"static-115k", 3}) || c.Mix[1] != (MixEntry{"cgi-1k", 1}) {
		t.Fatalf("parsed mix %+v", c.Mix)
	}

	// Seed defaults to 1 when the clause is absent.
	spec, err = Parse("class=b,clients=1,requests=1,arrival=gamma,rate=1,shape=0.5,mix=r:1,mode=closed")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 || !spec.Classes[0].Closed || spec.Classes[0].Arrival.Shape != 0.5 {
		t.Fatalf("parsed %+v", spec)
	}
}

// TestParseRejects covers the corrupt-spec space.
func TestParseRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"seed=42", // no classes
		"seed=x;class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1", // bad seed
		"class=a,clients=0,requests=1,arrival=poisson,rate=1,mix=r:1",
		"class=a,clients=1,requests=0,arrival=poisson,rate=1,mix=r:1",
		"class=a,clients=1,requests=1,arrival=poisson,rate=0,mix=r:1",
		"class=a,clients=1,requests=1,arrival=uniform,rate=1,mix=r:1",
		"class=a,clients=1,requests=1,arrival=gamma,rate=1,mix=r:1", // missing shape
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,shape=2,mix=r:1",
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:0",
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r", // no weight
		"class=a,clients=1,requests=1,arrival=poisson,rate=1",       // no mix
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1,mode=turbo",
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1,bogus=1",
		"class=a b,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1",                                                           // bad name
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1;class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1", // dup class
		"class=a,clients=1,requests=1,arrival=poisson,rate=1,mix=r:1/r:2",                                                         // dup mix entry
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", s)
		}
	}
}

// TestScheduleShape checks the generated schedule's structure: class
// order, client numbering, session lengths, closed-loop vs open-loop
// fields, and that every request name comes from the class's mix.
func TestScheduleShape(t *testing.T) {
	spec := mixedCohortSpec(11)
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 8 {
		t.Fatalf("got %d client schedules, want 8", len(scheds))
	}
	for i, cs := range scheds {
		var class ClassSpec
		if i < 5 {
			class = browserClass()
			if cs.Class != "browser" || cs.Client != i {
				t.Fatalf("schedule %d: %s/%d", i, cs.Class, cs.Client)
			}
		} else {
			class = batchClass()
			if cs.Class != "batch" || cs.Client != i-5 {
				t.Fatalf("schedule %d: %s/%d", i, cs.Class, cs.Client)
			}
		}
		if len(cs.Steps) != class.Requests {
			t.Fatalf("%s/%d: %d steps, want %d", cs.Class, cs.Client, len(cs.Steps), class.Requests)
		}
		inMix := map[string]bool{}
		for _, m := range class.Mix {
			inMix[m.Request] = true
		}
		for _, st := range cs.Steps {
			if !inMix[st.Request] {
				t.Fatalf("%s/%d: request %q not in class mix", cs.Class, cs.Client, st.Request)
			}
			if class.Closed && (st.Think <= 0 || st.At != 0) {
				t.Fatalf("%s/%d: closed-loop step %+v", cs.Class, cs.Client, st)
			}
			if !class.Closed && (st.At <= 0 || st.Think != 0) {
				t.Fatalf("%s/%d: open-loop step %+v", cs.Class, cs.Client, st)
			}
		}
	}
	if got, want := spec.TotalRequests(), 5*6+3*4; got != want {
		t.Fatalf("TotalRequests = %d, want %d", got, want)
	}
}

// TestCompileRejectsUnknownRequest pins the compile-time catalog check:
// a mix naming a request the workload does not serve fails at Compile,
// not at run time.
func TestCompileRejectsUnknownRequest(t *testing.T) {
	spec := CohortSpec{Seed: 1, Classes: []ClassSpec{{
		Name: "c", Clients: 1, Requests: 1,
		Arrival: Arrival{Process: Poisson, Rate: 1},
		Mix:     []MixEntry{{Request: "select-orders", Weight: 1}}, // SQL request, HTTP workload
	}}}
	if _, err := Compile(workload.NewApache1(workload.Standalone), spec); err == nil {
		t.Fatal("Compile accepted a mix request absent from the workload catalog")
	}
}

// TestCompileStampsCohort checks the journal-header provenance: Compile
// records the canonical spec string on the definition.
func TestCompileStampsCohort(t *testing.T) {
	spec := mixedCohortSpec(3)
	def, err := Compile(workload.NewApache1(workload.Standalone), spec)
	if err != nil {
		t.Fatal(err)
	}
	if def.Cohort != spec.String() {
		t.Fatalf("def.Cohort = %q, want %q", def.Cohort, spec.String())
	}
	if def.WorkloadTrace != "" {
		t.Fatalf("def.WorkloadTrace = %q, want empty", def.WorkloadTrace)
	}
}
