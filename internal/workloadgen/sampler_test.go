package workloadgen

import (
	"math"
	"testing"
	"time"
)

// samplerPoints is the property-test grid: every arrival process at
// three parameter points, with the distribution's true mean and variance
// of the inter-arrival time (seconds) computed from the parameters.
func samplerPoints() []struct {
	name     string
	arrival  Arrival
	variance float64
} {
	weibullVar := func(rate, shape float64) float64 {
		mean := 1 / rate
		scale := mean / math.Gamma(1+1/shape)
		return scale*scale*math.Gamma(1+2/shape) - mean*mean
	}
	return []struct {
		name     string
		arrival  Arrival
		variance float64
	}{
		// Exponential: var = mean^2.
		{"poisson-rate0.5", Arrival{Process: Poisson, Rate: 0.5}, 4},
		{"poisson-rate2", Arrival{Process: Poisson, Rate: 2}, 0.25},
		{"poisson-rate10", Arrival{Process: Poisson, Rate: 10}, 0.01},
		// Gamma(k, θ=mean/k): var = kθ^2 = mean^2/k.
		{"gamma-bursty", Arrival{Process: Gamma, Rate: 1, Shape: 0.5}, 2},
		{"gamma-exp", Arrival{Process: Gamma, Rate: 2, Shape: 1}, 0.25},
		{"gamma-smooth", Arrival{Process: Gamma, Rate: 0.5, Shape: 4}, 1},
		// Weibull(k, λ=mean/Γ(1+1/k)): var = λ^2·Γ(1+2/k) − mean^2.
		{"weibull-heavy", Arrival{Process: Weibull, Rate: 1, Shape: 0.7}, weibullVar(1, 0.7)},
		{"weibull-exp", Arrival{Process: Weibull, Rate: 2, Shape: 1}, weibullVar(2, 1)},
		{"weibull-smooth", Arrival{Process: Weibull, Rate: 0.5, Shape: 3}, weibullVar(0.5, 3)},
	}
}

// TestSamplerMoments draws a large sample at every grid point and checks
// the empirical mean and variance against the distribution's true
// moments: the samplers must deliver the configured rate (mean = 1/Rate
// for every process) and the shape-controlled burstiness.
func TestSamplerMoments(t *testing.T) {
	const n = 200_000
	for _, tc := range samplerPoints() {
		t.Run(tc.name, func(t *testing.T) {
			r := newClientRNG(1, tc.name, 0)
			sum, sumSq := 0.0, 0.0
			for i := 0; i < n; i++ {
				x := tc.arrival.sample(r)
				if x <= 0 {
					t.Fatalf("sample %d: %v <= 0", i, x)
				}
				sum += x
				sumSq += x * x
			}
			mean := sum / n
			wantMean := 1 / tc.arrival.Rate
			if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.02 {
				t.Errorf("mean %.5f, want %.5f (rel err %.3f)", mean, wantMean, rel)
			}
			variance := sumSq/n - mean*mean
			if rel := math.Abs(variance-tc.variance) / tc.variance; rel > 0.06 {
				t.Errorf("variance %.5f, want %.5f (rel err %.3f)", variance, tc.variance, rel)
			}
		})
	}
}

// TestInterArrivalStrictlyPositive pins the quantization guarantee: no
// inter-arrival duration is ever zero or negative, even at rates whose
// samples routinely land under the microsecond grid.
func TestInterArrivalStrictlyPositive(t *testing.T) {
	points := samplerPoints()
	// An absurdly fast class: most raw samples are < 1µs and must clamp
	// up, never down.
	points = append(points, struct {
		name     string
		arrival  Arrival
		variance float64
	}{"poisson-rate1e7", Arrival{Process: Poisson, Rate: 1e7}, 0})
	for _, tc := range points {
		r := newClientRNG(99, tc.name, 3)
		for i := 0; i < 10_000; i++ {
			if d := tc.arrival.interArrival(r); d <= 0 {
				t.Fatalf("%s: interArrival %d = %v, want > 0", tc.name, i, d)
			}
		}
	}
}

// TestScheduleMonotoneCumulative pins the open-loop invariant: each
// client's arrival offsets are strictly increasing (strictly — ties are
// impossible because inter-arrivals are strictly positive).
func TestScheduleMonotoneCumulative(t *testing.T) {
	for _, tc := range samplerPoints() {
		spec := CohortSpec{Seed: 5, Classes: []ClassSpec{{
			Name: "c", Clients: 3, Requests: 500,
			Arrival: tc.arrival,
			Mix:     []MixEntry{{Request: "req", Weight: 1}},
		}}}
		scheds, err := spec.Schedule()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, cs := range scheds {
			prev := time.Duration(0)
			for i, st := range cs.Steps {
				if st.At <= prev {
					t.Fatalf("%s client %d: At[%d]=%v <= At[%d]=%v", tc.name, cs.Client, i, st.At, i-1, prev)
				}
				prev = st.At
			}
		}
	}
}

// TestSameSeedByteIdentical renders the same spec twice and demands
// byte-identical traces; TestDifferentSeedDiverges demands that changing
// only the seed changes the schedule.
func TestSameSeedByteIdentical(t *testing.T) {
	spec := mixedCohortSpec(42)
	a := renderTrace(t, spec)
	b := renderTrace(t, spec)
	if a != b {
		t.Fatal("same seed produced different trace bytes")
	}
}

func TestDifferentSeedDiverges(t *testing.T) {
	a := renderTrace(t, mixedCohortSpec(1))
	b := renderTrace(t, mixedCohortSpec(2))
	if a == b {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestClassStreamsIndependent pins the substream design: adding a class
// to the cohort must not perturb an existing class's schedule.
func TestClassStreamsIndependent(t *testing.T) {
	browserOnly := CohortSpec{Seed: 7, Classes: []ClassSpec{browserClass()}}
	withBatch := CohortSpec{Seed: 7, Classes: []ClassSpec{browserClass(), batchClass()}}
	a, err := browserOnly.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := withBatch.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range a {
		if !schedulesEqual(cs, b[i]) {
			t.Fatalf("browser client %d schedule changed when the batch class was added", cs.Client)
		}
	}
}

// TestArrivalValidate covers the parameter domain.
func TestArrivalValidate(t *testing.T) {
	bad := []Arrival{
		{Process: Poisson, Rate: 0},
		{Process: Poisson, Rate: -1},
		{Process: Poisson, Rate: 2, Shape: 1}, // poisson takes no shape
		{Process: Gamma, Rate: 1},             // shape required
		{Process: Weibull, Rate: 1, Shape: -2},
		{Process: 0, Rate: 1},
		{Process: Poisson, Rate: math.NaN()},
		{Process: Gamma, Rate: 1, Shape: math.Inf(1)},
	}
	for _, a := range bad {
		if err := a.validate(); err == nil {
			t.Errorf("validate(%+v) accepted an invalid arrival", a)
		}
	}
	good := []Arrival{
		{Process: Poisson, Rate: 2},
		{Process: Gamma, Rate: 1, Shape: 0.5},
		{Process: Weibull, Rate: 0.25, Shape: 3},
	}
	for _, a := range good {
		if err := a.validate(); err != nil {
			t.Errorf("validate(%+v): %v", a, err)
		}
	}
}
