// Package workloadgen generates statistical workloads: cohorts of virtual
// clients, grouped into traffic classes, whose request schedules are drawn
// from seeded Poisson, Gamma or Weibull arrival processes over virtual
// time — the step from the paper's one canned two-request client toward
// production-shaped traffic.
//
// Generation is fully deterministic: the schedule is a pure function of
// the cohort spec (seed included), independent of -parallel, -shards, Go
// version and host. Each (class, client) pair owns a decorrelated
// substream derived from the seed and the class *name*, so editing one
// class never perturbs another's schedule. A generated schedule compiles
// down to the existing workload.Definition machinery (workload.Cohort),
// and serializes to a JSONL trace (trace.go) that is itself a first-class
// campaign input — record once, replay anywhere, byte-identical archives.
package workloadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ntdts/internal/workload"
)

// MixEntry is one request kind's weight in a class's request mix.
type MixEntry struct {
	Request string
	Weight  int
}

// ClassSpec describes one traffic class: how many virtual clients, how
// long each client's session is, how arrivals are spaced, and what the
// clients ask for.
type ClassSpec struct {
	// Name labels the class in schedules, traces and per-class metrics.
	Name string
	// Clients is the number of virtual clients (each its own simulated
	// process).
	Clients int
	// Requests is the session length: scheduled requests per client.
	Requests int
	// Arrival spaces consecutive requests within one client's session.
	Arrival Arrival
	// Mix is the weighted request-kind mix, resolved against the target
	// workload's catalog at compile time.
	Mix []MixEntry
	// Closed switches the class to closed-loop load: sampled inter-arrival
	// times become think times after the previous request completes,
	// instead of absolute open-loop arrival offsets.
	Closed bool
}

// CohortSpec is a complete seeded cohort: the unit that generates one
// schedule.
type CohortSpec struct {
	Seed    int64
	Classes []ClassSpec
}

// classNameOK restricts class names to spec-string- and image-name-safe
// characters.
func classNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// requestNameOK keeps request-kind names parseable inside mix clauses.
func requestNameOK(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, ";,=:/ \t\n")
}

// Validate checks the spec's internal consistency (request-kind existence
// is checked later, against a concrete workload, by Compile).
func (s CohortSpec) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("workloadgen: cohort has no classes")
	}
	seen := make(map[string]bool, len(s.Classes))
	for _, c := range s.Classes {
		if !classNameOK(c.Name) {
			return fmt.Errorf("workloadgen: bad class name %q (want [A-Za-z0-9_-]+)", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("workloadgen: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Clients < 1 {
			return fmt.Errorf("workloadgen: class %s: clients must be >= 1 (got %d)", c.Name, c.Clients)
		}
		if c.Requests < 1 {
			return fmt.Errorf("workloadgen: class %s: requests must be >= 1 (got %d)", c.Name, c.Requests)
		}
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("workloadgen: class %s: %w", c.Name, err)
		}
		if len(c.Mix) == 0 {
			return fmt.Errorf("workloadgen: class %s: empty request mix", c.Name)
		}
		mixSeen := make(map[string]bool, len(c.Mix))
		for _, m := range c.Mix {
			if !requestNameOK(m.Request) {
				return fmt.Errorf("workloadgen: class %s: bad request name %q", c.Name, m.Request)
			}
			if mixSeen[m.Request] {
				return fmt.Errorf("workloadgen: class %s: request %q listed twice in mix", c.Name, m.Request)
			}
			mixSeen[m.Request] = true
			if m.Weight < 1 {
				return fmt.Errorf("workloadgen: class %s: mix weight for %q must be >= 1 (got %d)", c.Name, m.Request, m.Weight)
			}
		}
	}
	return nil
}

// TotalRequests is the scheduled request count across the whole cohort.
func (s CohortSpec) TotalRequests() int {
	n := 0
	for _, c := range s.Classes {
		n += c.Clients * c.Requests
	}
	return n
}

// Schedule generates the cohort's client schedules: classes in spec
// order, clients 0..N-1 within each class, each client's steps strictly
// positive and cumulatively monotone. Same spec (seed included) → an
// identical schedule, always.
func (s CohortSpec) Schedule() ([]workload.ClientSchedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []workload.ClientSchedule
	for _, c := range s.Classes {
		totalWeight := 0
		for _, m := range c.Mix {
			totalWeight += m.Weight
		}
		for i := 0; i < c.Clients; i++ {
			r := newClientRNG(s.Seed, c.Name, i)
			cs := workload.ClientSchedule{
				Class:  c.Name,
				Client: i,
				Steps:  make([]workload.Step, 0, c.Requests),
			}
			var cum time.Duration
			for j := 0; j < c.Requests; j++ {
				dt := c.Arrival.interArrival(r)
				pick := r.intn(totalWeight)
				name := ""
				for _, m := range c.Mix {
					if pick < m.Weight {
						name = m.Request
						break
					}
					pick -= m.Weight
				}
				st := workload.Step{Request: name}
				if c.Closed {
					st.Think = dt
				} else {
					cum += dt
					st.At = cum
				}
				cs.Steps = append(cs.Steps, st)
			}
			out = append(out, cs)
		}
	}
	return out, nil
}

// Compile generates the spec's schedule and swaps it into base's client,
// recording the canonical spec string on the definition so journal
// headers (and through them shard workers and resumes) can rebuild the
// identical cohort.
func Compile(base workload.Definition, spec CohortSpec) (workload.Definition, error) {
	sched, err := spec.Schedule()
	if err != nil {
		return workload.Definition{}, err
	}
	def, err := workload.Cohort(base, sched)
	if err != nil {
		return workload.Definition{}, err
	}
	def.Cohort = spec.String()
	return def, nil
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the canonical spec string:
//
//	seed=42;class=browser,clients=4,requests=6,arrival=poisson,rate=2,mix=static-115k:3/cgi-1k:1
//
// Classes are ';'-separated; gamma/weibull classes carry ",shape=",
// closed-loop classes carry ",mode=closed". Parse inverts it exactly.
func (s CohortSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	for _, c := range s.Classes {
		fmt.Fprintf(&b, ";class=%s,clients=%d,requests=%d,arrival=%s,rate=%s",
			c.Name, c.Clients, c.Requests, c.Arrival.Process, formatFloat(c.Arrival.Rate))
		if c.Arrival.Process != Poisson {
			fmt.Fprintf(&b, ",shape=%s", formatFloat(c.Arrival.Shape))
		}
		b.WriteString(",mix=")
		for i, m := range c.Mix {
			if i > 0 {
				b.WriteByte('/')
			}
			fmt.Fprintf(&b, "%s:%d", m.Request, m.Weight)
		}
		if c.Closed {
			b.WriteString(",mode=closed")
		}
	}
	return b.String()
}

// Parse reads a cohort spec string (see String for the grammar). A
// leading "seed=N" clause is optional and defaults to 1.
func Parse(s string) (CohortSpec, error) {
	spec := CohortSpec{Seed: 1}
	sections := strings.Split(s, ";")
	start := 0
	if len(sections) > 0 && strings.HasPrefix(sections[0], "seed=") {
		n, err := strconv.ParseInt(strings.TrimPrefix(sections[0], "seed="), 10, 64)
		if err != nil {
			return CohortSpec{}, fmt.Errorf("workloadgen: bad seed %q", sections[0])
		}
		spec.Seed = n
		start = 1
	}
	for _, sec := range sections[start:] {
		sec = strings.TrimSpace(sec)
		if sec == "" {
			continue
		}
		c, err := parseClass(sec)
		if err != nil {
			return CohortSpec{}, err
		}
		spec.Classes = append(spec.Classes, c)
	}
	if err := spec.Validate(); err != nil {
		return CohortSpec{}, err
	}
	return spec, nil
}

// parseClass reads one "class=...,k=v,..." section.
func parseClass(sec string) (ClassSpec, error) {
	var c ClassSpec
	c.Arrival.Process = Poisson
	for _, kv := range strings.Split(sec, ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return ClassSpec{}, fmt.Errorf("workloadgen: class clause %q: expected key=value", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "class":
			c.Name = val
		case "clients":
			n, err := strconv.Atoi(val)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("workloadgen: bad clients %q", val)
			}
			c.Clients = n
		case "requests":
			n, err := strconv.Atoi(val)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("workloadgen: bad requests %q", val)
			}
			c.Requests = n
		case "arrival":
			p, err := parseArrivalProcess(val)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("workloadgen: %w", err)
			}
			c.Arrival.Process = p
		case "rate":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("workloadgen: bad rate %q", val)
			}
			c.Arrival.Rate = v
		case "shape":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("workloadgen: bad shape %q", val)
			}
			c.Arrival.Shape = v
		case "mix":
			for _, part := range strings.Split(val, "/") {
				col := strings.LastIndexByte(part, ':')
				if col < 0 {
					return ClassSpec{}, fmt.Errorf("workloadgen: mix entry %q: want request:weight", part)
				}
				w, err := strconv.Atoi(part[col+1:])
				if err != nil {
					return ClassSpec{}, fmt.Errorf("workloadgen: mix weight %q", part[col+1:])
				}
				c.Mix = append(c.Mix, MixEntry{Request: part[:col], Weight: w})
			}
		case "mode":
			switch val {
			case "open":
				c.Closed = false
			case "closed":
				c.Closed = true
			default:
				return ClassSpec{}, fmt.Errorf("workloadgen: bad mode %q (want open or closed)", val)
			}
		default:
			return ClassSpec{}, fmt.Errorf("workloadgen: unknown class key %q", key)
		}
	}
	return c, nil
}

// Classes lists a schedule's distinct class names in first-seen order —
// a convenience for reports and tests.
func Classes(scheds []workload.ClientSchedule) []string {
	seen := make(map[string]bool)
	var out []string
	for _, cs := range scheds {
		if !seen[cs.Class] {
			seen[cs.Class] = true
			out = append(out, cs.Class)
		}
	}
	sort.Strings(out)
	return out
}
