package workloadgen

// Workload traces: a generated schedule serialized to JSONL so it can be
// recorded once and replayed as a first-class campaign input (dts
// -workload-trace). The format deliberately mirrors internal/journal's
// crash-shape rules: every record is one newline-terminated JSON line, a
// torn *final* line (missing newline, or unparsable last line) is the
// signature of a killed writer and reports ErrTorn, while an invalid
// line anywhere before the tail is corruption and a hard error. Unlike
// the journal, a torn trace is rejected rather than truncated — a
// partial schedule would silently change the campaign's offered load.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"ntdts/internal/workload"
)

// TraceVersion is the trace format version; readers reject others.
const TraceVersion = 1

// ErrTorn reports a trace whose final line is incomplete or unparsable —
// a killed recorder, not corruption. Test with errors.Is.
var ErrTorn = errors.New("workloadgen: trace torn at final line")

// traceHeader is line 1 of every trace.
type traceHeader struct {
	Kind    string `json:"kind"` // "wtrace"
	Version int    `json:"version"`
	// Cohort is the canonical spec string the schedule was generated
	// from, "" when unknown (e.g. a hand-written trace).
	Cohort string `json:"cohort,omitempty"`
}

// traceStep is one scheduled request; lines are grouped by client, in
// schedule order.
type traceStep struct {
	Kind    string `json:"kind"` // "step"
	Class   string `json:"class"`
	Client  int    `json:"client"`
	Req     string `json:"req"`
	AtNS    int64  `json:"atNS,omitempty"`
	ThinkNS int64  `json:"thinkNS,omitempty"`
}

// WriteTrace serializes a schedule. cohort is the generating spec string
// ("" if none). Output is canonical: rendering the same schedule always
// produces identical bytes.
func WriteTrace(w io.Writer, cohort string, scheds []workload.ClientSchedule) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Kind: "wtrace", Version: TraceVersion, Cohort: cohort}); err != nil {
		return fmt.Errorf("workloadgen: trace write: %w", err)
	}
	for _, cs := range scheds {
		for _, st := range cs.Steps {
			line := traceStep{
				Kind: "step", Class: cs.Class, Client: cs.Client, Req: st.Request,
				AtNS: int64(st.At), ThinkNS: int64(st.Think),
			}
			if err := enc.Encode(line); err != nil {
				return fmt.Errorf("workloadgen: trace write: %w", err)
			}
		}
	}
	return bw.Flush()
}

// WriteTraceFile records a schedule to path (truncating).
func WriteTraceFile(path, cohort string, scheds []workload.ClientSchedule) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workloadgen: trace create: %w", err)
	}
	if err := WriteTrace(f, cohort, scheds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses a trace, returning the recorded cohort spec string
// and the schedule. A torn final line reports ErrTorn; an invalid line
// anywhere earlier, a duplicate header, a client whose lines are split
// by another client's, or a negative/missing field is corruption and a
// plain error.
func ReadTrace(r io.Reader) (string, []workload.ClientSchedule, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", nil, fmt.Errorf("workloadgen: trace read: %w", err)
	}
	if len(data) == 0 {
		return "", nil, fmt.Errorf("workloadgen: trace is empty")
	}
	torn := false
	if data[len(data)-1] != '\n' {
		// Missing final newline: the last Write was cut short. Drop the
		// partial line and remember the tear.
		torn = true
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			data = data[:i+1]
		} else {
			data = nil
		}
	}
	lines := bytes.Split(data, []byte("\n"))
	lines = lines[:len(lines)-1] // trailing empty split after final newline
	var (
		header  *traceHeader
		scheds  []workload.ClientSchedule
		cur     *workload.ClientSchedule
		seen    = map[[2]string]bool{} // class + client already closed out
		lineErr = func(no int, format string, args ...any) error {
			return fmt.Errorf("workloadgen: trace line %d: %s", no, fmt.Sprintf(format, args...))
		}
	)
	clientKey := func(class string, client int) [2]string {
		return [2]string{class, fmt.Sprint(client)}
	}
	for i, raw := range lines {
		no := i + 1
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			if i == len(lines)-1 {
				// Unparsable final line: same tear signature as a missing
				// newline (journal semantics).
				torn = true
				break
			}
			return "", nil, lineErr(no, "corrupt: %v", err)
		}
		switch probe.Kind {
		case "wtrace":
			if no != 1 {
				return "", nil, lineErr(no, "header after line 1")
			}
			var h traceHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return "", nil, lineErr(no, "corrupt header: %v", err)
			}
			if h.Version != TraceVersion {
				return "", nil, lineErr(no, "version %d, want %d", h.Version, TraceVersion)
			}
			header = &h
		case "step":
			if header == nil {
				return "", nil, lineErr(no, "step before header")
			}
			var st traceStep
			if err := json.Unmarshal(raw, &st); err != nil {
				return "", nil, lineErr(no, "corrupt step: %v", err)
			}
			if st.Class == "" || st.Req == "" {
				return "", nil, lineErr(no, "step missing class or req")
			}
			if st.Client < 0 || st.AtNS < 0 || st.ThinkNS < 0 {
				return "", nil, lineErr(no, "negative client or time")
			}
			if cur == nil || cur.Class != st.Class || cur.Client != st.Client {
				key := clientKey(st.Class, st.Client)
				if seen[key] {
					return "", nil, lineErr(no, "client %s/%d reappears after other clients — trace reordered or spliced", st.Class, st.Client)
				}
				seen[key] = true
				scheds = append(scheds, workload.ClientSchedule{Class: st.Class, Client: st.Client})
				cur = &scheds[len(scheds)-1]
			}
			cur.Steps = append(cur.Steps, workload.Step{
				Request: st.Req,
				At:      time.Duration(st.AtNS),
				Think:   time.Duration(st.ThinkNS),
			})
		default:
			return "", nil, lineErr(no, "unknown record kind %q", probe.Kind)
		}
	}
	if torn {
		return "", nil, ErrTorn
	}
	if header == nil {
		return "", nil, fmt.Errorf("workloadgen: trace missing header")
	}
	if len(scheds) == 0 {
		return "", nil, fmt.Errorf("workloadgen: trace has no steps")
	}
	return header.Cohort, scheds, nil
}

// ReadTraceFile parses a trace file.
func ReadTraceFile(path string) (string, []workload.ClientSchedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, fmt.Errorf("workloadgen: trace open: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// CompileTrace replays a recorded trace into base's client, stamping the
// trace path on the definition so journal headers (and through them
// shard workers and resumes) replay the same file. The recorded cohort
// spec string is informational only — the trace, not the spec, is the
// source of truth, so hand-edited traces replay exactly as written.
func CompileTrace(base workload.Definition, path string) (workload.Definition, error) {
	_, scheds, err := ReadTraceFile(path)
	if err != nil {
		return workload.Definition{}, err
	}
	def, err := workload.Cohort(base, scheds)
	if err != nil {
		return workload.Definition{}, err
	}
	def.WorkloadTrace = path
	return def, nil
}
