package workloadgen

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/workload"
)

// traceBytes renders the shared test cohort's trace.
func traceBytes(t *testing.T, seed int64) string {
	t.Helper()
	return renderTrace(t, mixedCohortSpec(seed))
}

// TestTraceRoundTrip pins the serialization identity: write → read
// recovers the exact schedule and cohort string, and re-rendering the
// parsed schedule reproduces the bytes.
func TestTraceRoundTrip(t *testing.T) {
	spec := mixedCohortSpec(42)
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTrace(&b, spec.String(), scheds); err != nil {
		t.Fatal(err)
	}
	cohort, got, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if cohort != spec.String() {
		t.Fatalf("cohort %q, want %q", cohort, spec.String())
	}
	if len(got) != len(scheds) {
		t.Fatalf("%d schedules, want %d", len(got), len(scheds))
	}
	for i := range got {
		if !schedulesEqual(got[i], scheds[i]) {
			t.Fatalf("schedule %d differs after round trip", i)
		}
	}
	var b2 strings.Builder
	if err := WriteTrace(&b2, cohort, got); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatal("re-rendered trace bytes differ")
	}
}

// TestTraceFileRoundTrip covers the file-shaped API used by dts.
func TestTraceFileRoundTrip(t *testing.T) {
	spec := mixedCohortSpec(9)
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sched.wtrace")
	if err := WriteTraceFile(path, spec.String(), scheds); err != nil {
		t.Fatal(err)
	}
	cohort, got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cohort != spec.String() || len(got) != len(scheds) {
		t.Fatalf("round trip: cohort %q, %d schedules", cohort, len(got))
	}
}

// TestTraceTornTail pins the journal-mirroring tear semantics: a
// missing final newline or an unparsable final line reports ErrTorn.
func TestTraceTornTail(t *testing.T) {
	full := traceBytes(t, 1)
	cases := map[string]string{
		"truncated mid-line":            full[:len(full)-3],
		"missing final newline":         strings.TrimRight(full, "\n"),
		"garbage final line no newline": full + `{"kind":"st`,
		"garbage final line newline":    full + "not json at all\n",
	}
	for name, data := range cases {
		_, _, err := ReadTrace(strings.NewReader(data))
		if !errors.Is(err, ErrTorn) {
			t.Errorf("%s: err = %v, want ErrTorn", name, err)
		}
	}
}

// TestTraceMidFileCorruption pins the other half: damage anywhere before
// the tail is corruption — a plain error, never ErrTorn.
func TestTraceMidFileCorruption(t *testing.T) {
	full := traceBytes(t, 1)
	lines := strings.SplitAfter(full, "\n")
	lines = lines[:len(lines)-1] // drop the empty split after the final newline
	damage := func(mutate func([]string) []string) string {
		cp := append([]string(nil), lines...)
		return strings.Join(mutate(cp), "")
	}
	cases := map[string]string{
		"garbage middle line": damage(func(ls []string) []string {
			ls[len(ls)/2] = "### not json ###\n"
			return ls
		}),
		"missing header": damage(func(ls []string) []string { return ls[1:] }),
		"duplicate header": damage(func(ls []string) []string {
			return append(ls, ls[0])
		}),
		"client split by another": damage(func(ls []string) []string {
			// Move the second line (client 0's first step) to the end:
			// client 0 now reappears after other clients ran.
			moved := ls[1]
			out := append(ls[:1:1], ls[2:]...)
			return append(out, moved)
		}),
		"unknown kind": damage(func(ls []string) []string {
			ls[1] = `{"kind":"mystery"}` + "\n"
			return ls
		}),
		"negative time": damage(func(ls []string) []string {
			ls[1] = `{"kind":"step","class":"browser","client":0,"req":"cgi-1k","atNS":-5}` + "\n"
			return ls
		}),
	}
	for name, data := range cases {
		_, _, err := ReadTrace(strings.NewReader(data))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if errors.Is(err, ErrTorn) {
			t.Errorf("%s: classified as torn, want corrupt: %v", name, err)
		}
	}
}

// TestTraceEmptyAndHeaderOnly covers the degenerate inputs.
func TestTraceEmptyAndHeaderOnly(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	headerOnly := `{"kind":"wtrace","version":1}` + "\n"
	if _, _, err := ReadTrace(strings.NewReader(headerOnly)); err == nil {
		t.Error("header-only trace accepted")
	}
	wrongVersion := `{"kind":"wtrace","version":99}` + "\n"
	if _, _, err := ReadTrace(strings.NewReader(wrongVersion)); err == nil {
		t.Error("wrong-version trace accepted")
	}
}

// TestCompileTraceStampsPath checks replay provenance: CompileTrace
// records the trace path (not the cohort string) on the definition.
func TestCompileTraceStampsPath(t *testing.T) {
	spec := mixedCohortSpec(8)
	scheds, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "replay.wtrace")
	if err := WriteTraceFile(path, spec.String(), scheds); err != nil {
		t.Fatal(err)
	}
	def, err := CompileTrace(workload.NewApache1(workload.Standalone), path)
	if err != nil {
		t.Fatal(err)
	}
	if def.WorkloadTrace != path {
		t.Fatalf("def.WorkloadTrace = %q, want %q", def.WorkloadTrace, path)
	}
	if def.Cohort != "" {
		t.Fatalf("def.Cohort = %q, want empty (the trace is the source of truth)", def.Cohort)
	}
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the reader; whenever a
// trace parses, rendering and re-parsing it must reproduce the identical
// cohort string and schedule (parse → render → parse identity), and no
// input may ever panic the parser.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(traceOrEmpty(mixedCohortSpec(1)))
	f.Add(traceOrEmpty(CohortSpec{Seed: 3, Classes: []ClassSpec{{
		Name: "solo", Clients: 1, Requests: 2,
		Arrival: Arrival{Process: Weibull, Rate: 0.5, Shape: 2},
		Mix:     []MixEntry{{Request: "r", Weight: 1}},
		Closed:  true,
	}}}))
	f.Add("")
	f.Add(`{"kind":"wtrace","version":1}` + "\n")
	f.Add(`{"kind":"wtrace","version":1}` + "\n" + `{"kind":"step","class":"a","client":0,"req":"x","atNS":1}` + "\n")
	f.Add("random garbage\nwith lines\n")
	f.Fuzz(func(t *testing.T, data string) {
		cohort, scheds, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteTrace(&b, cohort, scheds); err != nil {
			t.Fatalf("render of parsed trace failed: %v", err)
		}
		cohort2, scheds2, err := ReadTrace(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-parse of rendered trace failed: %v", err)
		}
		if cohort2 != cohort || len(scheds2) != len(scheds) {
			t.Fatalf("round trip drift: cohort %q->%q, %d->%d schedules",
				cohort, cohort2, len(scheds), len(scheds2))
		}
		for i := range scheds {
			if !schedulesEqual(scheds[i], scheds2[i]) {
				t.Fatalf("schedule %d drifted through render/parse", i)
			}
		}
	})
}

// traceOrEmpty renders a spec's trace for fuzz seeding ("" on error —
// the fuzzer will simply skip it).
func traceOrEmpty(spec CohortSpec) string {
	scheds, err := spec.Schedule()
	if err != nil {
		return ""
	}
	var b strings.Builder
	if err := WriteTrace(&b, spec.String(), scheds); err != nil {
		return ""
	}
	return b.String()
}
