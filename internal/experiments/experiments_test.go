package experiments

import (
	"testing"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/stats"
)

// The full campaigns are shared across tests via the process-wide
// memoization (they are deterministic).

func figure2(t *testing.T) *core.Experiment {
	t.Helper()
	exp, err := Cached(Config{}).Figure2()
	if err != nil {
		t.Fatalf("figure 2 campaign: %v", err)
	}
	return exp
}

func figure5(t *testing.T) *Figure5Result {
	t.Helper()
	res, err := Cached(Config{}).Figure5()
	if err != nil {
		t.Fatalf("figure 5 campaign: %v", err)
	}
	return res
}

func failPct(t *testing.T, exp *core.Experiment, wl, sup string) float64 {
	t.Helper()
	set, ok := exp.Find(wl, sup)
	if !ok {
		t.Fatalf("missing set %s/%s", wl, sup)
	}
	return set.FailurePct()
}

// TestTable1MatchesPaper asserts the activated-function census reproduces
// the paper's Table 1 exactly.
func TestTable1MatchesPaper(t *testing.T) {
	res, err := RunTable1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for wl, row := range PaperTable1() {
		for sup, want := range row {
			if got := res.Counts[wl][sup]; got != want {
				t.Errorf("Table1 %s/%s = %d, want %d (paper)", wl, sup, got, want)
			}
		}
	}
}

// TestFigure2MiddlewareReducesFailures asserts the paper's headline: both
// MSCS and watchd markedly decrease failure outcomes for every server
// program (with Apache2 as the architectural exception).
func TestFigure2MiddlewareReducesFailures(t *testing.T) {
	exp := figure2(t)
	for _, wl := range []string{"Apache1", "IIS", "SQL"} {
		none := failPct(t, exp, wl, "none")
		mscs := failPct(t, exp, wl, "MSCS")
		wd := failPct(t, exp, wl, "watchd")
		if none < 20 {
			t.Errorf("%s standalone failure %.1f%%: too low to be interesting", wl, none)
		}
		if mscs >= none {
			t.Errorf("%s: MSCS failure %.1f%% not below standalone %.1f%%", wl, mscs, none)
		}
		if wd >= none {
			t.Errorf("%s: watchd failure %.1f%% not below standalone %.1f%%", wl, wd, none)
		}
	}
}

// TestFigure2WatchdBeatsMSCS asserts "watchd does a much better job" (§4.1):
// lower failure percentage overall and for Apache1 and SQL individually.
func TestFigure2WatchdBeatsMSCS(t *testing.T) {
	exp := figure2(t)
	var mscsTotal, wdTotal float64
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		mscsTotal += failPct(t, exp, wl, "MSCS")
		wdTotal += failPct(t, exp, wl, "watchd")
	}
	if wdTotal >= mscsTotal {
		t.Errorf("watchd aggregate failure %.1f not below MSCS %.1f", wdTotal, mscsTotal)
	}
	for _, wl := range []string{"Apache1", "SQL"} {
		if w, m := failPct(t, exp, wl, "watchd"), failPct(t, exp, wl, "MSCS"); w >= m {
			t.Errorf("%s: watchd %.1f%% not below MSCS %.1f%%", wl, w, m)
		}
	}
}

// TestFigure2WatchdEliminatesApache1Failures asserts the paper's specific
// observation: "for Apache1, all failure outcomes were eliminated using
// watchd".
func TestFigure2WatchdEliminatesApache1Failures(t *testing.T) {
	exp := figure2(t)
	if got := failPct(t, exp, "Apache1", "watchd"); got != 0 {
		t.Errorf("Apache1/watchd failure %.1f%%, want 0", got)
	}
}

// TestFigure2Apache2UnaffectedByMiddleware asserts §4.1's architectural
// observation: MSCS and watchd monitor only the first process, so they
// change nothing for the Apache worker.
func TestFigure2Apache2UnaffectedByMiddleware(t *testing.T) {
	exp := figure2(t)
	base, _ := exp.Find("Apache2", "none")
	baseFails := base.Distribution().Counts[core.Failure.String()]
	for _, sup := range []string{"MSCS", "watchd"} {
		set, _ := exp.Find("Apache2", sup)
		d := set.Distribution()
		// The absolute failure count must match; percentages differ
		// slightly because middleware activates extra (benign) faults,
		// exactly as the paper notes for its own counts.
		if got := d.Counts[core.Failure.String()]; got != baseFails {
			t.Errorf("Apache2/%s failure count %d, want %d (same faults as standalone)", sup, got, baseFails)
		}
		if d.Pct[core.RestartSuccess.String()] != 0 || d.Pct[core.RestartRetrySuccess.String()] != 0 {
			t.Errorf("Apache2/%s shows middleware restarts; the worker is unmonitored", sup)
		}
	}
}

// TestFigure2WatchdCoverage asserts the paper's conclusion: the improved
// watchd exhibits failure coverage greater than 90% for every server
// program.
func TestFigure2WatchdCoverage(t *testing.T) {
	exp := figure2(t)
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		if got := failPct(t, exp, wl, "watchd"); got > 10 {
			t.Errorf("%s/watchd coverage %.1f%% < 90%%", wl, 100-got)
		}
	}
}

// TestFigure3IISFailsMoreThanApache asserts §4.2: the Apache web server
// (weighted) exhibits a lower failure percentage than IIS in every
// configuration, and roughly half IIS's rate stand-alone.
func TestFigure3IISFailsMoreThanApache(t *testing.T) {
	rows, err := Figure3(figure2(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		a := row.ApachePct[core.Failure.String()]
		i := row.IISPct[core.Failure.String()]
		if a >= i {
			t.Errorf("%s: Apache failure %.1f%% not below IIS %.1f%%", row.Supervision, a, i)
		}
		if row.Supervision == "none" {
			ratio := i / a
			if ratio < 1.4 || ratio > 3.0 {
				t.Errorf("standalone IIS/Apache failure ratio %.2f outside [1.4,3.0] (paper ~2)", ratio)
			}
		}
	}
}

// TestTable2CommonFaults asserts the Table 2 construction: common-fault
// sets are non-empty, Apache2 dominates the combined Apache activation,
// and Apache beats IIS on the common basis too.
func TestTable2CommonFaults(t *testing.T) {
	rows, err := Table2(figure2(t))
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Table2Row, len(rows))
	for _, r := range rows {
		byKey[r.Program+"/"+r.Supervision] = r
	}
	for _, sup := range []string{"none", "MSCS", "watchd"} {
		a1 := byKey["Apache1/"+sup]
		a2 := byKey["Apache2/"+sup]
		both := byKey["Apache1+Apache2/"+sup]
		iis := byKey["IIS/"+sup]
		if a1.Activated == 0 || a2.Activated == 0 || iis.Activated == 0 {
			t.Fatalf("%s: empty common-fault sets (%d/%d/%d)", sup, a1.Activated, a2.Activated, iis.Activated)
		}
		if a2.Activated <= a1.Activated {
			t.Errorf("%s: Apache2 common faults (%d) should exceed Apache1's (%d) — the worker provides most web functionality",
				sup, a2.Activated, a1.Activated)
		}
		if both.Activated != a1.Activated+a2.Activated {
			t.Errorf("%s: combined row %d != %d+%d", sup, both.Activated, a1.Activated, a2.Activated)
		}
		if both.FailurePct >= iis.FailurePct && sup != "watchd" {
			t.Errorf("%s: Apache combined failure %.1f%% not below IIS %.1f%% on common faults",
				sup, both.FailurePct, iis.FailurePct)
		}
	}
}

// TestFigure4Shape asserts the paper's Figure 4 observations: fault-free
// normal-success times match the calibrated values (Apache ~14.2 s, IIS
// ~18.9 s); middleware adds no appreciable fault-free overhead; and
// restart outcomes take much longer for Apache than for IIS (the SCM
// Start-Pending lock).
func TestFigure4Shape(t *testing.T) {
	cells, err := Figure4(figure2(t))
	if err != nil {
		t.Fatal(err)
	}
	get := func(program, sup, outcome string) (stats.Summary, bool) {
		for _, c := range cells {
			if c.Program == program && c.Supervision == sup && c.Outcome == outcome {
				return c.Stats, c.Stats.N > 0
			}
		}
		return stats.Summary{}, false
	}

	apacheNormal, ok := get("Apache", "none", core.NormalSuccess.String())
	if !ok {
		t.Fatal("no Apache normal-success sample")
	}
	if apacheNormal.Mean < 13 || apacheNormal.Mean > 16 {
		t.Errorf("Apache normal-success mean %.2fs, want ~14.2s", apacheNormal.Mean)
	}
	iisNormal, ok := get("IIS", "none", core.NormalSuccess.String())
	if !ok {
		t.Fatal("no IIS normal-success sample")
	}
	if iisNormal.Mean < 17 || iisNormal.Mean > 21 {
		t.Errorf("IIS normal-success mean %.2fs, want ~18.9s", iisNormal.Mean)
	}
	if iisNormal.Mean <= apacheNormal.Mean {
		t.Error("IIS should be slower than Apache on fault-free requests")
	}

	// No appreciable middleware overhead on normal success (±10%).
	for _, program := range []string{"Apache", "IIS"} {
		base, _ := get(program, "none", core.NormalSuccess.String())
		for _, sup := range []string{"MSCS", "watchd"} {
			s, ok := get(program, sup, core.NormalSuccess.String())
			if !ok {
				continue
			}
			if diff := s.Mean - base.Mean; diff > base.Mean*0.10 || diff < -base.Mean*0.10 {
				t.Errorf("%s/%s normal-success mean %.2fs deviates >10%% from standalone %.2fs",
					program, sup, s.Mean, base.Mean)
			}
		}
	}

	// Apache restarts slower than IIS restarts under watchd (the SCM
	// Start-Pending lock holds Apache restarts for the full wait hint).
	apacheRst, okA := get("Apache", "watchd", core.RestartRetrySuccess.String())
	iisRst, okI := get("IIS", "watchd", core.RestartSuccess.String())
	if okA && okI && apacheRst.Mean <= iisRst.Mean {
		t.Errorf("Apache restart mean %.2fs should exceed IIS restart mean %.2fs (SCM pending lock)",
			apacheRst.Mean, iisRst.Mean)
	}
}

// TestFigure5WatchdEvolution asserts §4.3's iterative-improvement story:
//   - Watchd1 is slightly worse than MSCS for every program;
//   - Watchd2 improves IIS dramatically while leaving Apache1 and SQL
//     essentially unchanged ("mixed success");
//   - Watchd3 dramatically improves Apache1 and SQL and is much better
//     than MSCS everywhere.
func TestFigure5WatchdEvolution(t *testing.T) {
	f5 := figure5(t)
	exp := figure2(t)
	pct := func(v watchd.Version, wl string) float64 {
		set, ok := f5.Find(v, wl)
		if !ok {
			t.Fatalf("missing figure5 set %v/%s", v, wl)
		}
		return set.FailurePct()
	}

	for _, wl := range Figure5Workloads() {
		w1 := pct(watchd.V1, wl)
		mscs := failPct(t, exp, wl, "MSCS")
		if w1 < mscs {
			t.Errorf("%s: Watchd1 failure %.1f%% should not be below MSCS %.1f%%", wl, w1, mscs)
		}
	}
	// Watchd3 beats MSCS decisively for Apache1 and SQL; for IIS the
	// paper's own Table 2 shows watchd slightly WORSE than MSCS (12.2%
	// vs 9.6%), so we only require rough parity there.
	for _, wl := range []string{"Apache1", "SQL"} {
		if w3, m := pct(watchd.V3, wl), failPct(t, exp, wl, "MSCS"); w3 >= m {
			t.Errorf("%s: Watchd3 failure %.1f%% should be below MSCS %.1f%%", wl, w3, m)
		}
	}
	if w3, m := pct(watchd.V3, "IIS"), failPct(t, exp, "IIS", "MSCS"); w3 > m+2 {
		t.Errorf("IIS: Watchd3 failure %.1f%% too far above MSCS %.1f%%", w3, m)
	}

	// Watchd2: dramatic IIS improvement, Apache1/SQL essentially
	// unchanged. Improvements are measured above the Watchd3 floor (the
	// residual wedge failures no restart-based monitor can recover).
	iisFloor := pct(watchd.V3, "IIS")
	if w1, w2 := pct(watchd.V1, "IIS")-iisFloor, pct(watchd.V2, "IIS")-iisFloor; w2 > w1/2 {
		t.Errorf("IIS: Watchd2 recoverable failure %.1f%% not a dramatic improvement over Watchd1 %.1f%%", w2, w1)
	}
	for _, wl := range []string{"Apache1", "SQL"} {
		w1, w2 := pct(watchd.V1, wl), pct(watchd.V2, wl)
		if w2 < w1-5 {
			t.Errorf("%s: Watchd2 failure %.1f%% improved over Watchd1 %.1f%%; the paper saw no improvement", wl, w2, w1)
		}
	}

	// Watchd3: Apache1 failures eliminated; SQL dramatically improved.
	if got := pct(watchd.V3, "Apache1"); got != 0 {
		t.Errorf("Apache1: Watchd3 failure %.1f%%, want 0", got)
	}
	if w2, w3 := pct(watchd.V2, "SQL"), pct(watchd.V3, "SQL"); w3 > w2/3 {
		t.Errorf("SQL: Watchd3 failure %.1f%% not a dramatic improvement over Watchd2 %.1f%%", w3, w2)
	}
}

// TestDeterministicCampaign asserts the tool's reproducibility claim: the
// same fault list yields byte-identical outcome distributions.
func TestDeterministicCampaign(t *testing.T) {
	run := func() core.Distribution {
		exp, err := RunFigure2(Config{})
		if err != nil {
			t.Fatal(err)
		}
		set, _ := exp.Find("Apache1", "none")
		return set.Distribution()
	}
	// The shared fig2 experiment was produced by an identical call.
	first := figure2(t)
	set, _ := first.Find("Apache1", "none")
	d1 := set.Distribution()
	d2 := run()
	for k, v := range d1.Counts {
		if d2.Counts[k] != v {
			t.Errorf("outcome %q: %d vs %d across identical campaigns", k, v, d2.Counts[k])
		}
	}
}

// TestAvailabilityEstimates ties the §5 extension to the campaign: the
// middleware configurations must earn strictly more nines than stand-alone
// for every workload where they reduce failures.
func TestAvailabilityEstimates(t *testing.T) {
	ests, err := Availability(figure2(t), avail.DefaultAssumptions())
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]avail.Estimate, len(ests))
	for _, e := range ests {
		if e.Availability <= 0 || e.Availability > 1 {
			t.Fatalf("%s/%s availability %v out of range", e.Workload, e.Supervision, e.Availability)
		}
		byKey[e.Workload+"/"+e.Supervision] = e
	}
	for _, wl := range []string{"Apache1", "IIS", "SQL"} {
		none := byKey[wl+"/none"]
		for _, sup := range []string{"MSCS", "watchd"} {
			got := byKey[wl+"/"+sup]
			if got.Availability <= none.Availability {
				t.Errorf("%s/%s availability %.6f not above standalone %.6f",
					wl, sup, got.Availability, none.Availability)
			}
		}
	}
	// And the paper's watchd coverage conclusion shows up as nines.
	if w := byKey["SQL/watchd"]; w.NinesCount <= byKey["SQL/none"].NinesCount {
		t.Errorf("SQL watchd nines %.2f not above standalone %.2f",
			w.NinesCount, byKey["SQL/none"].NinesCount)
	}
}
