package experiments

import (
	"context"
	"math"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/workload"
)

// TestSecondInvocationSimilarResults reproduces the paper's §4 aside: "only
// the first invocation of each function was injected ... preliminary
// experiments showed that [injecting further invocations] produced similar
// results." We run the Apache2 campaign injecting the second invocation and
// compare its outcome distribution to the first-invocation campaign.
func TestSecondInvocationSimilarResults(t *testing.T) {
	run := func(invocation int) core.Distribution {
		c := core.NewCampaign(core.NewRunner(workload.NewApache2(workload.Standalone), core.RunnerOptions{}),
			core.WithInvocation(invocation))
		set, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("invocation-%d campaign: %v", invocation, err)
		}
		return set.Distribution()
	}
	first := run(1)
	second := run(2)

	if second.Total == 0 {
		t.Fatal("no faults fired on invocation 2")
	}
	// Not every function is called twice, so fewer faults fire.
	if second.Total > first.Total {
		t.Fatalf("invocation-2 fired %d faults, more than invocation-1's %d", second.Total, first.Total)
	}

	// "Similar results": the headline failure percentage stays in the
	// same regime (within 10 percentage points).
	f1 := first.Pct[core.Failure.String()]
	f2 := second.Pct[core.Failure.String()]
	if math.Abs(f1-f2) > 10 {
		t.Fatalf("failure rates diverge: inv1 %.1f%% vs inv2 %.1f%%", f1, f2)
	}
	// And the dominant outcome class is the same.
	top := func(d core.Distribution) string {
		best, bestN := "", -1
		for k, n := range d.Counts {
			if n > bestN {
				best, bestN = k, n
			}
		}
		return best
	}
	if top(first) != top(second) {
		t.Fatalf("dominant outcome changed: %q vs %q", top(first), top(second))
	}
	t.Logf("invocation 1: %d faults, %.1f%% failures; invocation 2: %d faults, %.1f%% failures",
		first.Total, f1, second.Total, f2)
}
