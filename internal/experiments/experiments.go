// Package experiments composes DTS campaigns into the paper's evaluation
// artifacts: one entry point per table and figure of §4, each returning a
// structured result that internal/report renders and bench_test.go
// regenerates. DESIGN.md's per-experiment index maps each entry point back
// to the paper.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/stats"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// Config tunes an experiment execution.
type Config struct {
	// Opts are the per-run options (defaults apply when zero).
	Opts core.RunnerOptions
	// Parallelism bounds concurrent fault-injection runs within each
	// campaign (0 = GOMAXPROCS, 1 = sequential). The experiment entry
	// points additionally fan their independent workload sets out
	// concurrently; results keep their canonical order and value
	// regardless, because every run is deterministic and isolated.
	Parallelism int
	// Progress, when non-nil, receives one line per completed set.
	// Invocations are serialized; sets running concurrently never
	// interleave within a line.
	Progress func(line string)
	// Supervise, when non-nil, gives every campaign its own supervisor
	// with this policy (watchdog, quarantine, retries). Journaling is a
	// single-campaign facility and is not wired through experiments.
	Supervise *core.SupervisorOptions
	// Shards fans each campaign's run list out over that many worker
	// processes (<= 1 stays in-process). Table 1 is calibration-only and
	// always runs in-process. Mutually exclusive with Supervise: worker
	// processes already isolate harness faults.
	Shards int
	// ShardExec overrides the registered shard executor (tests use
	// in-process executors).
	ShardExec core.ShardExecutor
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// serialized returns a copy of the config whose Progress sink is safe to
// call from concurrent workload sets.
func (c Config) serialized() Config {
	if c.Progress == nil {
		return c
	}
	var mu sync.Mutex
	inner := c.Progress
	c.Progress = func(line string) {
		mu.Lock()
		defer mu.Unlock()
		inner(line)
	}
	return c
}

// fanOut runs fn(0..n-1) concurrently — one goroutine per independent
// workload set, errgroup-style — and waits for all of them. On failure
// the lowest-indexed error is returned (the one a sequential sweep would
// have hit first) and goroutines that have not started real work yet
// observe the cancellation and return early.
func fanOut(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Supervisions is the paper's configuration order: stand-alone, MSCS,
// watchd.
func Supervisions() []workload.Supervision {
	return []workload.Supervision{workload.Standalone, workload.MSCS, workload.Watchd}
}

// --- Table 1 -----------------------------------------------------------------

// Table1Result holds the activated-function census per workload and
// configuration.
type Table1Result struct {
	// Counts[workload][supervision] = number of activated functions.
	Counts map[string]map[string]int `json:"counts"`

	// Telemetry holds the twelve calibration-run collectors in canonical
	// pair order when the census ran with telemetry enabled. Excluded from
	// the JSON archive.
	Telemetry *telemetry.Set `json:"-"`
}

// PaperTable1 is the census the paper reports, for side-by-side rendering.
func PaperTable1() map[string]map[string]int {
	return map[string]map[string]int{
		"Apache1": {"none": 13, "MSCS": 17, "watchd": 13},
		"Apache2": {"none": 22, "MSCS": 24, "watchd": 22},
		"IIS":     {"none": 76, "MSCS": 76, "watchd": 70},
		"SQL":     {"none": 71, "MSCS": 74, "watchd": 70},
	}
}

// RunTable1 measures the activated-function census with fault-free
// calibration runs (no injection required). The twelve scans are
// independent and run concurrently.
func RunTable1(cfg Config) (*Table1Result, error) {
	cfg = cfg.serialized()
	defs := standardPairs()
	counts := make([]int, len(defs))
	recs := make([]*telemetry.Recorder, len(defs))
	err := fanOut(len(defs), func(i int) error {
		def := defs[i]
		_, res, err := core.NewRunner(def, cfg.Opts).ActivationScan()
		if err != nil {
			return fmt.Errorf("%s/%s: %w", def.Name, def.Supervision, err)
		}
		counts[i] = res.ActivatedFns
		recs[i] = res.Telemetry
		cfg.progress("table1 %s/%s: %d activated functions", def.Name, def.Supervision, res.ActivatedFns)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Table1Result{Counts: make(map[string]map[string]int)}
	if cfg.Opts.Telemetry.Enabled {
		out.Telemetry = telemetry.NewSet(recs...)
	}
	for i, def := range defs {
		if out.Counts[def.Name] == nil {
			out.Counts[def.Name] = make(map[string]int)
		}
		out.Counts[def.Name][def.Supervision.String()] = counts[i]
	}
	return out, nil
}

// standardPairs flattens the paper's workload×supervision grid in its
// canonical order (supervision-major, matching the sequential sweeps).
func standardPairs() []workload.Definition {
	var defs []workload.Definition
	for _, s := range Supervisions() {
		defs = append(defs, workload.StandardSet(s)...)
	}
	return defs
}

// --- Figure 2 ----------------------------------------------------------------

// RunFigure2 runs the full campaign: every workload under every
// supervision mode (watchd at version 3, as the paper's Figure 2 uses the
// improved watchd). The twelve workload sets are independent campaigns
// and run concurrently; Sets keeps the canonical supervision-major order.
func RunFigure2(cfg Config) (*core.Experiment, error) {
	cfg = cfg.serialized()
	if cfg.Opts.WatchdVersion == 0 {
		cfg.Opts.WatchdVersion = watchd.V3
	}
	defs := standardPairs()
	sets := make([]*core.SetResult, len(defs))
	err := fanOut(len(defs), func(i int) error {
		set, err := runSet(defs[i], cfg)
		if err != nil {
			return err
		}
		sets[i] = set
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &core.Experiment{Sets: sets}, nil
}

func runSet(def workload.Definition, cfg Config) (*core.SetResult, error) {
	if cfg.Shards > 1 && cfg.Supervise != nil {
		return nil, fmt.Errorf("%s/%s: sharding and supervision are mutually exclusive", def.Name, def.Supervision)
	}
	opts := []core.Option{
		core.WithParallelism(cfg.Parallelism),
		core.WithShards(cfg.Shards),
		core.WithShardExecutor(cfg.ShardExec),
	}
	if cfg.Supervise != nil {
		// One supervisor per set: quarantine lists and budgets are
		// per-campaign, like the results they annotate.
		opts = append(opts, core.WithSupervision(core.NewSupervisor(*cfg.Supervise)))
	}
	c := core.NewCampaign(core.NewRunner(def, cfg.Opts), opts...)
	set, err := c.Run(context.Background())
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", def.Name, def.Supervision, err)
	}
	d := set.Distribution()
	cfg.progress("%s/%s: %d injected, %.1f%% failures",
		set.Workload, set.Supervision, d.Total, set.FailurePct())
	return set, nil
}

// MergedTelemetry concatenates the per-set telemetry of an experiment in
// canonical set order: set 0's calibration run first, then its fault-list
// runs, then set 1, and so on. Nil per-run placeholders are preserved so
// run numbering in the merged export matches each set's fault list. The
// sets execute concurrently, but because every run owns its collector and
// sets keep their canonical positions, the merge — like the outcome data —
// is byte-identical at any parallelism. Returns nil when no set carried
// telemetry (i.e. the campaign ran with telemetry disabled).
func MergedTelemetry(sets []*core.SetResult) *telemetry.Set {
	tels := make([]*telemetry.Set, len(sets))
	for i, s := range sets {
		if s != nil {
			tels[i] = s.Telemetry
		}
	}
	return telemetry.Merge(tels...)
}

// --- Figure 3 ----------------------------------------------------------------

// Figure3Row is the weighted Apache-vs-IIS comparison for one supervision.
type Figure3Row struct {
	Supervision string             `json:"supervision"`
	ApachePct   map[string]float64 `json:"apachePct"` // weighted Apache1+Apache2
	IISPct      map[string]float64 `json:"iisPct"`
	ApacheN     int                `json:"apacheN"`
	IISN        int                `json:"iisN"`
}

// Figure3 derives the Apache-vs-IIS comparison from Figure 2 data: the
// Apache1 and Apache2 outcome percentages are weighted by their activated
// fault counts (paper §4.2).
func Figure3(exp *core.Experiment) ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, s := range Supervisions() {
		a1, ok1 := exp.Find("Apache1", s.String())
		a2, ok2 := exp.Find("Apache2", s.String())
		iis, ok3 := exp.Find("IIS", s.String())
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("figure3: missing sets for %s", s)
		}
		d1, d2, di := a1.Distribution(), a2.Distribution(), iis.Distribution()
		row := Figure3Row{
			Supervision: s.String(),
			ApachePct:   make(map[string]float64, 5),
			IISPct:      di.Pct,
			ApacheN:     d1.Total + d2.Total,
			IISN:        di.Total,
		}
		for _, o := range core.AllOutcomes() {
			k := o.String()
			row.ApachePct[k] = stats.WeightedPercent(d1.Pct[k], d1.Total, d2.Pct[k], d2.Total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Table 2 -----------------------------------------------------------------

// Table2Row is one server-program row of the common-fault comparison.
type Table2Row struct {
	Program     string  `json:"program"`
	Supervision string  `json:"supervision"`
	Activated   int     `json:"activated"`
	FailurePct  float64 `json:"failurePct"`
	RestartPct  float64 `json:"restartPct"` // restart or restart+retry successes
	RetryPct    float64 `json:"retryPct"`   // retry-only successes
}

// Table2 compares Apache to IIS counting only faults injected in both
// workload sets (paper §4.2). Rows appear in the paper's order: Apache1,
// Apache2, Apache1+Apache2, IIS — for each supervision mode.
func Table2(exp *core.Experiment) ([]Table2Row, error) {
	var rows []Table2Row
	for _, s := range Supervisions() {
		a1, ok1 := exp.Find("Apache1", s.String())
		a2, ok2 := exp.Find("Apache2", s.String())
		iis, ok3 := exp.Find("IIS", s.String())
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("table2: missing sets for %s", s)
		}
		a1c, iisVsA1 := core.CommonInjected(a1, iis)
		a2c, iisVsA2 := core.CommonInjected(a2, iis)
		combined := append(append([]core.RunResult(nil), a1c...), a2c...)
		iisCommon := dedupeRuns(append(append([]core.RunResult(nil), iisVsA1...), iisVsA2...))

		rows = append(rows,
			table2Row("Apache1", s.String(), a1c),
			table2Row("Apache2", s.String(), a2c),
			table2Row("Apache1+Apache2", s.String(), combined),
			table2Row("IIS", s.String(), iisCommon),
		)
	}
	return rows, nil
}

// dedupeRuns removes duplicate fault specs (a fault common to both Apache
// processes appears once in the IIS column).
func dedupeRuns(runs []core.RunResult) []core.RunResult {
	seen := make(map[string]bool, len(runs))
	var out []core.RunResult
	for _, r := range runs {
		k := r.Fault.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func table2Row(program, supervision string, runs []core.RunResult) Table2Row {
	row := Table2Row{Program: program, Supervision: supervision, Activated: len(runs)}
	var fail, restart, retry int
	for _, r := range runs {
		switch r.Outcome {
		case core.Failure:
			fail++
		case core.RestartSuccess, core.RestartRetrySuccess:
			restart++
		case core.RetrySuccess:
			retry++
		}
	}
	row.FailurePct = stats.Percent(fail, len(runs))
	row.RestartPct = stats.Percent(restart, len(runs))
	row.RetryPct = stats.Percent(retry, len(runs))
	return row
}

// --- Figure 4 ----------------------------------------------------------------

// Figure4Cell is the response-time summary for one (program, supervision,
// outcome) cell, with the paper's 95% confidence interval.
type Figure4Cell struct {
	Program     string        `json:"program"`
	Supervision string        `json:"supervision"`
	Outcome     string        `json:"outcome"`
	Stats       stats.Summary `json:"stats"`
}

// Figure4 derives the response-time-by-outcome comparison of Apache
// (combined) vs IIS from Figure 2 data. Failure outcomes are split: only
// wrong-reply failures have a finite response time; no-reply failures are
// omitted, as in the paper.
func Figure4(exp *core.Experiment) ([]Figure4Cell, error) {
	var cells []Figure4Cell
	outcomes := core.AllOutcomes()
	for _, s := range Supervisions() {
		a1, ok1 := exp.Find("Apache1", s.String())
		a2, ok2 := exp.Find("Apache2", s.String())
		iis, ok3 := exp.Find("IIS", s.String())
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("figure4: missing sets for %s", s)
		}
		for _, o := range outcomes {
			apacheTimes := append(a1.ResponseTimes(o, true), a2.ResponseTimes(o, true)...)
			cells = append(cells, Figure4Cell{
				Program: "Apache", Supervision: s.String(), Outcome: o.String(),
				Stats: stats.Summarize(apacheTimes),
			})
			cells = append(cells, Figure4Cell{
				Program: "IIS", Supervision: s.String(), Outcome: o.String(),
				Stats: stats.Summarize(iis.ResponseTimes(o, true)),
			})
		}
	}
	return cells, nil
}

// --- Figure 5 ----------------------------------------------------------------

// Figure5Result holds the watchd-evolution campaign: Apache1, IIS and SQL
// under Watchd1, Watchd2 and Watchd3 (Apache2 is omitted, as in the paper,
// because watchd has no effect on it).
type Figure5Result struct {
	// Sets[version] lists the per-workload results for that version.
	Sets map[int][]*core.SetResult `json:"sets"`

	// Telemetry is the merged per-run collectors in canonical cell order
	// (version-major, then workload) when the campaign ran with telemetry
	// enabled. Excluded from the JSON archive.
	Telemetry *telemetry.Set `json:"-"`
}

// Figure5Workloads lists the workloads the paper's Figure 5 covers.
func Figure5Workloads() []string { return []string{"Apache1", "IIS", "SQL"} }

// RunFigure5 sweeps the three watchd versions. The version×workload sets
// are independent campaigns and run concurrently; each version's set list
// keeps the canonical workload order.
func RunFigure5(cfg Config) (*Figure5Result, error) {
	cfg = cfg.serialized()
	type cell struct {
		version watchd.Version
		def     workload.Definition
	}
	var cells []cell
	for _, v := range []watchd.Version{watchd.V1, watchd.V2, watchd.V3} {
		for _, def := range workload.StandardSet(workload.Watchd) {
			if def.Name == "Apache2" {
				continue
			}
			cells = append(cells, cell{version: v, def: def})
		}
	}
	sets := make([]*core.SetResult, len(cells))
	err := fanOut(len(cells), func(i int) error {
		opts := cfg.Opts
		opts.WatchdVersion = cells[i].version
		set, err := runSet(cells[i].def, Config{Opts: opts, Parallelism: cfg.Parallelism, Progress: cfg.Progress,
			Shards: cfg.Shards, ShardExec: cfg.ShardExec})
		if err != nil {
			return fmt.Errorf("%v: %w", cells[i].version, err)
		}
		sets[i] = set
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Figure5Result{Sets: make(map[int][]*core.SetResult)}
	for i, c := range cells {
		out.Sets[int(c.version)] = append(out.Sets[int(c.version)], sets[i])
	}
	out.Telemetry = MergedTelemetry(sets)
	return out, nil
}

// Find returns the Figure 5 set for a version/workload pair.
func (f *Figure5Result) Find(v watchd.Version, wl string) (*core.SetResult, bool) {
	for _, s := range f.Sets[int(v)] {
		if s.Workload == wl {
			return s, true
		}
	}
	return nil, false
}

// --- Availability (paper §5 future work) -------------------------------------

// Availability derives testing-based availability estimates from Figure 2
// campaign data — the paper's proposed bridge from fault-injection results
// to "number of nines" estimates.
func Availability(exp *core.Experiment, a avail.Assumptions) ([]avail.Estimate, error) {
	var out []avail.Estimate
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		for _, s := range Supervisions() {
			set, ok := exp.Find(wl, s.String())
			if !ok {
				return nil, fmt.Errorf("availability: missing set %s/%s", wl, s)
			}
			est, err := avail.EstimateSet(set, a)
			if err != nil {
				return nil, fmt.Errorf("availability %s/%s: %w", wl, s, err)
			}
			out = append(out, est)
		}
	}
	return out, nil
}
