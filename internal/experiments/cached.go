package experiments

import (
	"sync"

	"ntdts/internal/core"
)

// Shared memoizes the heavyweight paper campaigns once per process.
// Campaigns are deterministic — the same configuration always yields the
// same data — so tests and benchmarks that each need the full Figure 2 or
// Figure 5 experiment can share one execution instead of re-running the
// ~10k-simulation sweep per caller.
type Shared struct {
	cfg Config

	fig2Once sync.Once
	fig2     *core.Experiment
	fig2Err  error

	fig5Once sync.Once
	fig5     *Figure5Result
	fig5Err  error
}

var (
	sharedOnce sync.Once
	shared     *Shared
)

// Cached returns the process-wide memoized campaign runner. The first
// caller's cfg is captured for all subsequent campaigns; because results
// are deterministic and independent of Parallelism, later callers with a
// different cfg observe identical data.
func Cached(cfg Config) *Shared {
	sharedOnce.Do(func() { shared = &Shared{cfg: cfg} })
	return shared
}

// Figure2 runs (or returns the memoized) full Figure 2 experiment.
func (s *Shared) Figure2() (*core.Experiment, error) {
	s.fig2Once.Do(func() { s.fig2, s.fig2Err = RunFigure2(s.cfg) })
	return s.fig2, s.fig2Err
}

// Figure5 runs (or returns the memoized) watchd-evolution sweep.
func (s *Shared) Figure5() (*Figure5Result, error) {
	s.fig5Once.Do(func() { s.fig5, s.fig5Err = RunFigure5(s.cfg) })
	return s.fig5, s.fig5Err
}
