package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"ntdts/internal/core"
)

// Archive is the on-disk envelope for experiment results, written by
// cmd/dts and rendered by cmd/dtsreport.
type Archive struct {
	Kind       string           `json:"kind"` // "set", "figure2", "figure5", "table1"
	Set        *core.SetResult  `json:"set,omitempty"`
	Experiment *core.Experiment `json:"experiment,omitempty"`
	Figure5    *Figure5Result   `json:"figure5,omitempty"`
	Table1     *Table1Result    `json:"table1,omitempty"`
}

// Save writes the archive as indented JSON.
func (a *Archive) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// LoadArchive reads an archive and checks its shape.
func LoadArchive(r io.Reader) (*Archive, error) {
	var a Archive
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("decode archive: %w", err)
	}
	// An archive is exactly one JSON value; anything after it means a
	// truncated write that something else appended to, or the wrong file.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("archive has trailing data after the results object")
	}
	switch a.Kind {
	case "set":
		if a.Set == nil {
			return nil, fmt.Errorf("archive kind %q missing payload", a.Kind)
		}
	case "figure2":
		if a.Experiment == nil {
			return nil, fmt.Errorf("archive kind %q missing payload", a.Kind)
		}
	case "figure5":
		if a.Figure5 == nil {
			return nil, fmt.Errorf("archive kind %q missing payload", a.Kind)
		}
	case "table1":
		if a.Table1 == nil {
			return nil, fmt.Errorf("archive kind %q missing payload", a.Kind)
		}
	default:
		return nil, fmt.Errorf("unknown archive kind %q", a.Kind)
	}
	return &a, nil
}
