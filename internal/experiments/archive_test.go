package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/inject"
)

func sampleSet() *core.SetResult {
	return &core.SetResult{
		Workload: "IIS", Supervision: "watchd", WatchdVersion: 3,
		ActivatedFns: 70, FaultFreeSec: 18.94,
		Runs: []core.RunResult{
			{
				Fault:    inject.FaultSpec{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
				Injected: true, Activated: true,
				Outcome:  core.RestartRetrySuccess,
				Restarts: 1, Completed: true, ResponseSec: 33.9,
				ServerCrash: true, GotResponse: true,
			},
		},
		SkippedFns: 480, SkippedFaults: 1500,
	}
}

func TestArchiveRoundtripSet(t *testing.T) {
	var buf bytes.Buffer
	in := &Archive{Kind: "set", Set: sampleSet()}
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "set" || out.Set == nil {
		t.Fatalf("archive %+v", out)
	}
	got := out.Set
	if got.Workload != "IIS" || got.WatchdVersion != 3 || got.ActivatedFns != 70 {
		t.Fatalf("set header %+v", got)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("%d runs", len(got.Runs))
	}
	r := got.Runs[0]
	if r.Fault.Function != "ReadFile" || r.Fault.Type != inject.FlipBits ||
		r.Outcome != core.RestartRetrySuccess || !r.ServerCrash {
		t.Fatalf("run %+v", r)
	}
}

func TestArchiveRoundtripFigure5(t *testing.T) {
	var buf bytes.Buffer
	in := &Archive{Kind: "figure5", Figure5: &Figure5Result{
		Sets: map[int][]*core.SetResult{1: {sampleSet()}},
	}}
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	set, ok := out.Figure5.Find(1, "IIS")
	if !ok || set.FaultFreeSec != 18.94 {
		t.Fatalf("figure5 payload %+v", out.Figure5)
	}
	if _, ok := out.Figure5.Find(2, "IIS"); ok {
		t.Fatal("found a version that was never stored")
	}
}

func TestLoadArchiveRejectsBadEnvelopes(t *testing.T) {
	for _, text := range []string{
		`{"kind":"set"}`,
		`{"kind":"figure2"}`,
		`{"kind":"figure5"}`,
		`{"kind":"table1"}`,
		`{"kind":"sideways","set":{}}`,
		`{broken`,
	} {
		if _, err := LoadArchive(strings.NewReader(text)); err == nil {
			t.Errorf("LoadArchive(%q) accepted", text)
		}
	}
}
