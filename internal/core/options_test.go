package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ntdts/internal/inject"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// TestNewCampaignEquivalentToLiteral pins the migration contract: a
// campaign built with options is field-for-field the struct literal it
// replaces, so adopting the API changes no behavior.
func TestNewCampaignEquivalentToLiteral(t *testing.T) {
	runner := NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{})
	sup := NewSupervisor(SupervisorOptions{MaxAttempts: 2})
	specs := []inject.FaultSpec{{Function: "ReadFile", Param: 0, Invocation: 1, Type: inject.ZeroBits}}
	progress := func(done, total int) {}

	got := NewCampaign(runner,
		WithParallelism(4),
		WithSupervision(sup),
		WithProgress(progress),
		WithSpecs(specs),
		WithFaultTypes(inject.ZeroBits),
		WithInvocation(2),
		WithPaperFaithfulSkips(),
		WithShards(3),
	)
	want := &Campaign{
		runner:             runner,
		types:              []inject.FaultType{inject.ZeroBits},
		invocation:         2,
		paperFaithfulSkips: true,
		parallelism:        4,
		supervise:          sup,
		specs:              specs,
		shards:             3,
	}
	// Functions don't compare; check presence, then blank them.
	if !got.HasProgress() {
		t.Fatal("WithProgress did not set the callback")
	}
	got.progress = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("options build:\n got %+v\nwant %+v", got, want)
	}
}

// TestWithTelemetryClonesRunner: enabling telemetry on one campaign must
// not flip it on for other campaigns sharing the runner.
func TestWithTelemetryClonesRunner(t *testing.T) {
	shared := NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{})
	c := NewCampaign(shared, WithTelemetry(telemetry.Options{Enabled: true, TraceCap: 7}))
	if c.Runner() == shared {
		t.Fatal("WithTelemetry must clone the runner")
	}
	if !c.Runner().Opts.Telemetry.Enabled || c.Runner().Opts.Telemetry.TraceCap != 7 {
		t.Fatalf("campaign runner telemetry = %+v", c.Runner().Opts.Telemetry)
	}
	if shared.Opts.Telemetry.Enabled {
		t.Fatal("shared runner's options were mutated")
	}
}

// TestRunContextCancelUnsupervised: cancelling the context stops the
// in-process pool between runs and surfaces ErrInterrupted with no set —
// the dts SIGINT path for plain campaigns.
func TestRunContextCancelUnsupervised(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set, err := NewCampaign(
		NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
		WithParallelism(2),
		WithProgress(func(done, total int) {
			if done == 3 {
				cancel()
			}
		}),
	).Run(ctx)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error = %v, want ErrInterrupted", err)
	}
	if set != nil {
		t.Fatal("cancelled unsupervised campaign must not return a set")
	}
}

// TestRunContextCancelSupervised: under a supervisor the same
// cancellation degrades gracefully — a partial set comes back alongside
// ErrInterrupted, exactly like a RequestStop, so a resume journal stays
// coherent.
func TestRunContextCancelSupervised(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup := NewSupervisor(SupervisorOptions{MaxAttempts: 1})
	set, err := NewCampaign(
		NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
		WithParallelism(2),
		WithSupervision(sup),
		WithProgress(func(done, total int) {
			if done == 3 {
				cancel()
			}
		}),
	).Run(ctx)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error = %v, want ErrInterrupted", err)
	}
	if set == nil || !set.Partial {
		t.Fatalf("supervised cancellation must return the partial set, got %+v", set)
	}
	completed := 0
	for _, r := range set.Runs {
		if r.Injected || r.Skipped {
			completed++
		}
	}
	if completed == 0 || completed == len(set.Runs) {
		t.Fatalf("partial set has %d/%d completed runs; want a true prefix", completed, len(set.Runs))
	}
}

// TestExecuteAliasesRun keeps the deprecated entry point honest: Execute
// and Run(Background) produce identical sets.
func TestExecuteAliasesRun(t *testing.T) {
	specs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "CloseHandle", Param: 0, Invocation: 1, Type: inject.OneBits},
	}
	build := func() *Campaign {
		return NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
			WithSpecs(specs))
	}
	viaExecute, err := build().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := build().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaExecute, viaRun) {
		t.Fatal("Execute and Run(Background) diverge")
	}
}
