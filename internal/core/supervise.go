package core

// Campaign supervisor: the resilience layer between the worker pool and
// the per-run lifecycle. The paper's DTS ran thousands of runs
// unattended; at the ROADMAP's million-run scale a single hung or
// panicking run, or a process killed at run 40k, must not cost the
// campaign. The supervisor wraps every run with a wall-clock watchdog
// (virtual time already bounds simulated hangs — this catches live bugs
// in the harness/sim itself), panic capture that quarantines the
// offending FaultSpec with its stack, bounded retry-with-backoff for
// indeterminate attempts, and an append-only results journal that makes
// an interrupted campaign resumable with byte-identical output.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/telemetry"
)

// Reserved chaos function names, recognized only when
// SupervisorOptions.Chaos is set: fault specs naming them exercise the
// supervisor's failure paths deterministically (the chaos self-test and
// the CI kill/resume smoke job use them). They are not catalog
// functions, so a chaos spec that survives its chaos hook runs as an
// ordinary never-activated fault.
const (
	// ChaosPanicFunction panics on every attempt — exercises quarantine.
	ChaosPanicFunction = "DTSChaosPanic"
	// ChaosHangFunction blocks forever — exercises the wall watchdog.
	ChaosHangFunction = "DTSChaosHang"
	// ChaosFlakyFunction panics on the first attempt of each campaign and
	// completes normally from the second — exercises the retry path while
	// staying deterministic across campaigns.
	ChaosFlakyFunction = "DTSChaosFlaky"
)

// DefaultMaxAttempts is the total attempt budget per run (1 initial + 2
// retries) when SupervisorOptions.MaxAttempts is zero.
const DefaultMaxAttempts = 3

// defaultBackoff is the first retry delay; it doubles per retry.
const defaultBackoff = 5 * time.Millisecond

// ErrInterrupted is the stop cause recorded when the campaign is asked
// to stop from outside (SIGINT/SIGTERM in cmd/dts). The campaign
// returns it with whatever partial results the workers finished.
var ErrInterrupted = errors.New("campaign interrupted")

// QuarantineBudgetError is the stop cause when quarantines exceed
// SupervisorOptions.MaxQuarantined: the campaign degrades gracefully to
// a partial-results report instead of burning the remaining sweep.
type QuarantineBudgetError struct {
	Quarantined int
	Budget      int
}

func (e *QuarantineBudgetError) Error() string {
	return fmt.Sprintf("quarantine budget reached: %d runs quarantined (budget %d)", e.Quarantined, e.Budget)
}

// SupervisorOptions tune the resilience policy.
type SupervisorOptions struct {
	// WallDeadline bounds each attempt in wall-clock time (0 = no
	// watchdog). An attempt that exceeds it is abandoned — its goroutine
	// leaks by design, since Go cannot kill it — and retried.
	WallDeadline time.Duration
	// MaxAttempts is the total attempt budget per run (0 =
	// DefaultMaxAttempts). The run is quarantined when it is exhausted.
	MaxAttempts int
	// Backoff is the delay before the first retry, doubling per retry
	// (0 = defaultBackoff).
	Backoff time.Duration
	// MaxQuarantined is the campaign's failure budget: reaching this many
	// quarantined runs stops the campaign with QuarantineBudgetError
	// (so 1 stops on the first quarantine). Zero or negative: unlimited.
	MaxQuarantined int
	// Chaos enables the reserved DTSChaos* function hooks.
	Chaos bool
}

// QuarantineEntry records one run the supervisor gave up on. Stack is
// excluded from JSON: goroutine IDs and addresses are nondeterministic,
// and the results archive must stay byte-identical across runs — the
// stack lives in the journal and the human-readable quarantine report.
type QuarantineEntry struct {
	Index    int              `json:"index"`
	Fault    inject.FaultSpec `json:"fault"`
	Key      string           `json:"key"`
	Reason   string           `json:"reason"` // "panic" | "hang" | "error"
	Message  string           `json:"message"`
	Attempts int              `json:"attempts"`
	Stack    string           `json:"-"`
}

// Quarantine reasons and their telemetry codes.
const (
	ReasonPanic = "panic"
	ReasonHang  = "hang"
	ReasonError = "error"
)

func reasonCode(reason string) uint64 {
	switch reason {
	case ReasonPanic:
		return 1
	case ReasonHang:
		return 2
	default:
		return 3
	}
}

// Supervisor carries the resilience state of one campaign: the policy,
// the optional journal, the replayed records of a resume, the
// quarantine list, and the stop latch. Safe for concurrent use by the
// worker pool.
type Supervisor struct {
	opts SupervisorOptions

	jw *journal.Writer

	resumePlan *journal.Plan
	resumeRuns map[int]journal.RunRecord
	resumeQuar map[int]journal.QuarantineRecord

	quarMu sync.Mutex
	quar   []QuarantineEntry

	stop    atomic.Bool
	stopMu  sync.Mutex
	stopErr error
}

// NewSupervisor builds a supervisor with defaults filled in.
func NewSupervisor(opts SupervisorOptions) *Supervisor {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.Backoff <= 0 {
		opts.Backoff = defaultBackoff
	}
	return &Supervisor{
		opts:       opts,
		resumeRuns: make(map[int]journal.RunRecord),
		resumeQuar: make(map[int]journal.QuarantineRecord),
	}
}

// Options returns the active policy.
func (s *Supervisor) Options() SupervisorOptions { return s.opts }

// AttachJournal directs the supervisor to record every completed or
// quarantined run to w.
func (s *Supervisor) AttachJournal(w *journal.Writer) { s.jw = w }

// Journal returns the attached journal writer (nil when not journaling).
func (s *Supervisor) Journal() *journal.Writer { return s.jw }

// LoadResume installs the replayed state of an interrupted campaign:
// completed runs replay from it instead of re-executing. The rebuilt
// plan is validated against rep.Plan in syncPlan.
func (s *Supervisor) LoadResume(rep *journal.Replayed) {
	s.resumePlan = rep.Plan
	for i, r := range rep.Runs {
		s.resumeRuns[i] = r
	}
	for i, q := range rep.Quarantined {
		s.resumeQuar[i] = q
	}
}

// RequestStop latches the first stop cause; workers stop claiming jobs
// and the campaign returns the cause with partial results.
func (s *Supervisor) RequestStop(cause error) {
	s.stopMu.Lock()
	if s.stopErr == nil {
		s.stopErr = cause
	}
	s.stopMu.Unlock()
	s.stop.Store(true)
}

func (s *Supervisor) stopped() bool { return s.stop.Load() }

func (s *Supervisor) stopCause() error {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	return s.stopErr
}

// Quarantined returns the quarantine list sorted by job index.
func (s *Supervisor) Quarantined() []QuarantineEntry {
	s.quarMu.Lock()
	out := make([]QuarantineEntry, len(s.quar))
	copy(out, s.quar)
	s.quarMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// jobKeys renders the plan's job identity sequence: FaultSpec.Key per
// job, probe jobs marked. This is what the journal's plan line records
// and what a resume must reproduce exactly.
func jobKeys(jobs []PlanJob) []string {
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.Key()
	}
	return keys
}

// planFingerprint hashes the job identity sequence (fnv64a).
func planFingerprint(keys []string) string {
	h := fnv.New64a()
	for _, k := range keys {
		io.WriteString(h, k)
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// syncPlan reconciles the rebuilt job list with the journal: on a fresh
// journaled campaign it writes the plan line; on a resume it validates
// that the rebuilt plan reproduces the journaled fingerprint — the
// precondition for trusting any journaled record's index.
func (s *Supervisor) syncPlan(jobs []PlanJob) error {
	keys := jobKeys(jobs)
	fp := planFingerprint(keys)
	if s.resumePlan != nil {
		if s.resumePlan.Fingerprint != fp {
			return fmt.Errorf("resume plan mismatch: journal fingerprint %s, rebuilt %s (different fault list, workload, or catalog?)",
				s.resumePlan.Fingerprint, fp)
		}
		return nil
	}
	if s.jw != nil {
		return s.jw.WritePlan(keys, fp)
	}
	return nil
}

// attemptFailure describes one abandoned attempt.
type attemptFailure struct {
	reason  string
	message string
	stack   string
}

// attemptOutcome is what an attempt goroutine delivers.
type attemptOutcome struct {
	res  *RunResult
	err  error
	fail *attemptFailure
}

// execute runs (or replays) one job under supervision, returning the
// result to store at its job-list index. A nil result with a nil error
// never happens; a nil error with a quarantined placeholder result is
// the graceful-degradation path. Cancellation of ctx only shortcuts the
// retry backoff sleeps — stop semantics live in the worker pool.
func (s *Supervisor) execute(ctx context.Context, r *Runner, index int, job PlanJob) (*RunResult, error) {
	spec := job.Spec
	key := spec.Key()

	if rec, ok := s.resumeRuns[index]; ok {
		return s.replayRun(index, key, rec)
	}
	if qrec, ok := s.resumeQuar[index]; ok {
		return s.replayQuarantine(r, index, spec, key, qrec)
	}

	var last attemptFailure
	for attempt := 1; attempt <= s.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			backoff := time.NewTimer(s.opts.Backoff << (attempt - 2))
			select {
			case <-backoff.C:
			case <-ctx.Done():
				backoff.Stop()
			}
		}
		out := s.attempt(r, spec, attempt)
		if out.fail == nil && out.err != nil {
			// A run error is indeterminate from the supervisor's view
			// (I/O trouble, simulated-code panic): retry it, and
			// quarantine if it persists.
			out.fail = &attemptFailure{reason: ReasonError, message: out.err.Error()}
		}
		if out.fail == nil {
			res := out.res
			if job.Probe {
				res.Skipped = true
			}
			res.Retries = attempt - 1
			if res.Retries > 0 && res.Telemetry != nil {
				// Retry provenance rides in the run's own trace, stamped
				// at the trace's last timestamp so per-PID time stays
				// monotone.
				at := res.Telemetry.LastTime()
				res.Telemetry.Emit(at, 0, telemetry.KindRunRetry, spec.String(),
					uint64(res.Retries), reasonCode(last.reason))
				res.Telemetry.Add(telemetry.CtrSupRetry, int64(res.Retries))
			}
			if err := s.journalRun(index, key, attempt, res); err != nil {
				return nil, err
			}
			return res, nil
		}
		last = *out.fail
	}
	return s.quarantine(r, index, spec, key, last, s.opts.MaxAttempts)
}

// attempt executes one attempt in its own goroutine so panics are
// recoverable and the wall watchdog can abandon it. An abandoned
// goroutine leaks — Go offers no way to kill it — which is exactly the
// bounded cost the watchdog trades for campaign survival.
func (s *Supervisor) attempt(r *Runner, spec inject.FaultSpec, attempt int) attemptOutcome {
	done := make(chan attemptOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- attemptOutcome{fail: &attemptFailure{
					reason:  ReasonPanic,
					message: fmt.Sprint(p),
					stack:   string(debug.Stack()),
				}}
			}
		}()
		if s.opts.Chaos {
			switch spec.Function {
			case ChaosPanicFunction:
				panic(fmt.Sprintf("chaos: deliberate panic (%v, attempt %d)", spec, attempt))
			case ChaosHangFunction:
				select {} // block until the watchdog abandons us
			case ChaosFlakyFunction:
				if attempt == 1 {
					panic(fmt.Sprintf("chaos: deliberate first-attempt panic (%v)", spec))
				}
			}
		}
		res, err := r.Run(&spec)
		done <- attemptOutcome{res: res, err: err}
	}()
	if s.opts.WallDeadline <= 0 {
		return <-done
	}
	timer := time.NewTimer(s.opts.WallDeadline)
	defer timer.Stop()
	select {
	case out := <-done:
		return out
	case <-timer.C:
		return attemptOutcome{fail: &attemptFailure{
			reason:  ReasonHang,
			message: fmt.Sprintf("wall-clock deadline %v exceeded", s.opts.WallDeadline),
		}}
	}
}

// quarantine records a run the retry budget could not save, journals
// it, enforces the failure budget, and returns the deterministic
// placeholder result that occupies the run's index.
func (s *Supervisor) quarantine(r *Runner, index int, spec inject.FaultSpec, key string, last attemptFailure, attempts int) (*RunResult, error) {
	entry := QuarantineEntry{
		Index: index, Fault: spec, Key: key,
		Reason: last.reason, Message: last.message, Stack: last.stack,
		Attempts: attempts,
	}
	if s.jw != nil {
		faultRaw, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("quarantine marshal: %w", err)
		}
		if err := s.jw.WriteQuarantine(index, key, faultRaw, last.reason, last.message, last.stack, attempts); err != nil {
			return nil, err
		}
	}
	s.noteQuarantine(entry)
	return s.quarantineResult(r, spec, last.reason, attempts), nil
}

// noteQuarantine appends to the quarantine list and trips the failure
// budget when exceeded.
func (s *Supervisor) noteQuarantine(entry QuarantineEntry) {
	s.quarMu.Lock()
	s.quar = append(s.quar, entry)
	n := len(s.quar)
	s.quarMu.Unlock()
	if s.opts.MaxQuarantined > 0 && n >= s.opts.MaxQuarantined {
		s.RequestStop(&QuarantineBudgetError{Quarantined: n, Budget: s.opts.MaxQuarantined})
	}
}

// quarantineResult builds the placeholder RunResult occupying a
// quarantined run's index: never activated, never injected, outcome
// HarnessHang when the watchdog fired. Its telemetry (when the campaign
// collects any) is a single quarantine event at virtual time zero, so
// merged exports keep one collector per index.
func (s *Supervisor) quarantineResult(r *Runner, spec inject.FaultSpec, reason string, attempts int) *RunResult {
	res := &RunResult{
		Fault:       spec,
		Quarantined: true,
		Retries:     attempts - 1,
	}
	if reason == ReasonHang {
		res.Outcome = HarnessHang
	}
	if r.Opts.Telemetry.Enabled {
		rec := r.Opts.Telemetry.NewRecorder()
		rec.Emit(0, 0, telemetry.KindRunQuarantine, spec.String(),
			uint64(attempts), reasonCode(reason))
		rec.Add(telemetry.CtrSupQuarantine, 1)
		res.Telemetry = rec
	}
	return res
}

// MarshalRunRecord serializes a run result into the journal's payload
// pair: the JSON result and, when the run collected telemetry, its
// snapshot. This is the wire encoding shard workers stream back, so the
// byte-identical resume guarantee extends to sharded merges.
func MarshalRunRecord(res *RunResult) (result, tel json.RawMessage, err error) {
	result, err = json.Marshal(res)
	if err != nil {
		return nil, nil, fmt.Errorf("run record result marshal: %w", err)
	}
	if res.Telemetry != nil {
		tel, err = json.Marshal(res.Telemetry.Snapshot())
		if err != nil {
			return nil, nil, fmt.Errorf("run record telemetry marshal: %w", err)
		}
	}
	return result, tel, nil
}

// UnmarshalRunRecord inverts MarshalRunRecord, restoring the telemetry
// collector when a snapshot is present.
func UnmarshalRunRecord(result, tel json.RawMessage) (*RunResult, error) {
	var res RunResult
	if err := json.Unmarshal(result, &res); err != nil {
		return nil, fmt.Errorf("run record result: %w", err)
	}
	if len(tel) != 0 {
		var snap telemetry.Snapshot
		if err := json.Unmarshal(tel, &snap); err != nil {
			return nil, fmt.Errorf("run record telemetry: %w", err)
		}
		res.Telemetry = snap.Restore()
	}
	return &res, nil
}

// journalRun writes one completed run to the journal (no-op when not
// journaling). The telemetry snapshot rides along so a resumed
// campaign's trace and metrics exports stay byte-identical.
func (s *Supervisor) journalRun(index int, key string, attempts int, res *RunResult) error {
	if s.jw == nil {
		return nil
	}
	resultRaw, telRaw, err := MarshalRunRecord(res)
	if err != nil {
		return err
	}
	return s.jw.WriteRun(index, key, attempts, resultRaw, telRaw)
}

// replayRun rebuilds a completed run from its journal record instead of
// re-executing it.
func (s *Supervisor) replayRun(index int, key string, rec journal.RunRecord) (*RunResult, error) {
	if rec.Key != key {
		return nil, fmt.Errorf("journal record %d keyed %s, plan expects %s", index, rec.Key, key)
	}
	res, err := UnmarshalRunRecord(rec.Result, rec.Tel)
	if err != nil {
		return nil, fmt.Errorf("journal record %d: %w", index, err)
	}
	return res, nil
}

// replayQuarantine rebuilds a quarantined run from its journal record:
// the quarantine list entry reappears (budget included) and the same
// placeholder result — built by the same constructor as a fresh
// quarantine — occupies the index.
func (s *Supervisor) replayQuarantine(r *Runner, index int, spec inject.FaultSpec, key string, rec journal.QuarantineRecord) (*RunResult, error) {
	if rec.Key != key {
		return nil, fmt.Errorf("journal quarantine %d keyed %s, plan expects %s", index, rec.Key, key)
	}
	var fault inject.FaultSpec
	if len(rec.Fault) != 0 {
		if err := json.Unmarshal(rec.Fault, &fault); err != nil {
			return nil, fmt.Errorf("journal quarantine %d fault: %w", index, err)
		}
	} else {
		fault = spec
	}
	s.noteQuarantine(QuarantineEntry{
		Index: index, Fault: fault, Key: key,
		Reason: rec.Reason, Message: rec.Message, Stack: rec.Stack,
		Attempts: rec.Attempts,
	})
	return s.quarantineResult(r, fault, rec.Reason, rec.Attempts), nil
}
