package core

import (
	"testing"
	"time"

	"ntdts/internal/vclock"
	"ntdts/internal/workload"
)

// taggedRec builds one cohort-tagged request record ending at end.
func taggedRec(class string, client int, success bool, end time.Duration) workload.RequestRecord {
	return workload.RequestRecord{
		Name:        "req",
		Attempts:    1,
		Success:     success,
		GotResponse: success,
		Start:       vclock.Time(end) - vclock.Time(time.Second),
		End:         vclock.Time(end),
		Class:       class,
		Client:      client,
	}
}

// TestClassOutcomesUntagged pins the canned-client contract: a report
// whose records carry no class yields nil, so existing archives stay
// byte-identical.
func TestClassOutcomesUntagged(t *testing.T) {
	rep := &workload.Report{Requests: []workload.RequestRecord{
		{Name: "req", Success: true},
		{Name: "req", Success: false},
	}}
	if got := classOutcomes(rep); got != nil {
		t.Fatalf("classOutcomes = %+v, want nil for untagged records", got)
	}
	if got := classOutcomes(&workload.Report{}); got != nil {
		t.Fatalf("classOutcomes(empty) = %+v, want nil", got)
	}
}

// TestClassOutcomesGrouping checks the per-class fold: grouping, sorted
// class order, distinct-client counting and the summed counters.
func TestClassOutcomesGrouping(t *testing.T) {
	rep := &workload.Report{Requests: []workload.RequestRecord{
		taggedRec("web", 0, true, 2*time.Second),
		taggedRec("web", 1, true, 3*time.Second),
		taggedRec("web", 0, false, 4*time.Second),
		taggedRec("batch", 0, true, 5*time.Second),
	}}
	rep.Requests[2].Retried = true
	rep.Requests[2].GotResponse = true // wrong reply, not silence

	got := classOutcomes(rep)
	if len(got) != 2 {
		t.Fatalf("%d classes, want 2", len(got))
	}
	if got[0].Class != "batch" || got[1].Class != "web" {
		t.Fatalf("class order %q, %q — want sorted batch, web", got[0].Class, got[1].Class)
	}
	web := got[1]
	if web.Clients != 2 || web.Requests != 3 || web.Succeeded != 2 || web.Responded != 3 || web.Retried != 1 {
		t.Fatalf("web outcome %+v", web)
	}
	// Each record spans exactly one second.
	if web.ResponseSecSum != 3 {
		t.Fatalf("web.ResponseSecSum = %v, want 3", web.ResponseSecSum)
	}
	// The web failure at t=4s never sees a later success: unrecovered.
	if web.Recoveries != 0 || web.Unrecovered != 1 {
		t.Fatalf("web recovery %+v", web)
	}
}

// TestClassOutcomesRecovery pins the recovery rule: the gap from a failed
// request's end to the class's first success ending at-or-after it — a
// success ending at the same instant counts, with a zero-length gap.
func TestClassOutcomesRecovery(t *testing.T) {
	rep := &workload.Report{Requests: []workload.RequestRecord{
		taggedRec("c", 0, true, 5*time.Second),   // before the failure: not a recovery
		taggedRec("c", 0, false, 10*time.Second), // recovers at t=25 (gap 15s)
		taggedRec("c", 1, false, 25*time.Second), // recovers at t=25 (gap 0s)
		taggedRec("c", 1, true, 25*time.Second),
		taggedRec("c", 0, false, 30*time.Second), // no later success: unrecovered
	}}
	got := classOutcomes(rep)
	if len(got) != 1 {
		t.Fatalf("%d classes, want 1", len(got))
	}
	c := got[0]
	if c.Recoveries != 2 || c.Unrecovered != 1 {
		t.Fatalf("recoveries=%d unrecovered=%d, want 2, 1", c.Recoveries, c.Unrecovered)
	}
	if c.RecoverySecSum != 15 {
		t.Fatalf("RecoverySecSum = %v, want 15 (15s + 0s)", c.RecoverySecSum)
	}
}

// TestClassOutcomesAllFailed covers the worst case: every request of a
// class fails, so availability is zero and nothing ever recovers.
func TestClassOutcomesAllFailed(t *testing.T) {
	rep := &workload.Report{Requests: []workload.RequestRecord{
		taggedRec("doomed", 0, false, 2*time.Second),
		taggedRec("doomed", 0, false, 4*time.Second),
		taggedRec("doomed", 1, false, 6*time.Second),
	}}
	got := classOutcomes(rep)
	c := got[0]
	if c.Succeeded != 0 || c.Recoveries != 0 || c.Unrecovered != 3 {
		t.Fatalf("all-failed outcome %+v", c)
	}
	cs := ClassStats{Class: c.Class, Runs: 1, Requests: c.Requests, Succeeded: c.Succeeded,
		Unrecovered: c.Unrecovered}
	if cs.Availability() != 0 || cs.ErrorRate() != 1 {
		t.Fatalf("availability %v, error rate %v — want 0, 1", cs.Availability(), cs.ErrorRate())
	}
}

// TestClassStatsAggregation checks the campaign fold: injected runs only,
// summed across runs, sorted by class, nil when no run carries classes.
func TestClassStatsAggregation(t *testing.T) {
	web := ClassOutcome{Class: "web", Clients: 2, Requests: 10, Succeeded: 8,
		Responded: 9, Retried: 1, Recoveries: 1, RecoverySecSum: 3, Unrecovered: 1,
		ResponseSecSum: 20}
	batch := ClassOutcome{Class: "batch", Clients: 1, Requests: 4, Succeeded: 4,
		ResponseSecSum: 8}
	set := &SetResult{Runs: []RunResult{
		{Injected: true, Classes: []ClassOutcome{web, batch}},
		{Injected: true, Classes: []ClassOutcome{web}},
		{Injected: false, Classes: []ClassOutcome{web}}, // activated-only: excluded
	}}

	got := set.ClassStats()
	if len(got) != 2 {
		t.Fatalf("%d classes, want 2", len(got))
	}
	if got[0].Class != "batch" || got[1].Class != "web" {
		t.Fatalf("order %q, %q", got[0].Class, got[1].Class)
	}
	b, w := got[0], got[1]
	if b.Runs != 1 || b.Requests != 4 || b.Succeeded != 4 {
		t.Fatalf("batch stats %+v", b)
	}
	if w.Runs != 2 || w.Requests != 20 || w.Succeeded != 16 || w.Retried != 2 ||
		w.Recoveries != 2 || w.Unrecovered != 2 || w.RecoverySecSum != 6 {
		t.Fatalf("web stats %+v", w)
	}
	if w.Availability() != 0.8 || w.MeanResponseSec() != 2 || w.MeanRecoverySec() != 3 {
		t.Fatalf("web derived: avail %v, mean-resp %v, mean-recov %v",
			w.Availability(), w.MeanResponseSec(), w.MeanRecoverySec())
	}
	// Perfect class: availability 1, and with no recoveries the mean is 0.
	if b.Availability() != 1 || b.MeanRecoverySec() != 0 {
		t.Fatalf("batch derived: avail %v, mean-recov %v", b.Availability(), b.MeanRecoverySec())
	}

	if canned := (&SetResult{Runs: []RunResult{{Injected: true}}}).ClassStats(); canned != nil {
		t.Fatalf("canned-campaign ClassStats = %+v, want nil", canned)
	}
}

// TestClassStatsEmptyClassConventions pins the zero-value conventions an
// empty or degenerate class must follow: no requests means availability 1
// (nothing owed, nothing missed) and zero means throughout.
func TestClassStatsEmptyClassConventions(t *testing.T) {
	var c ClassStats
	if c.Availability() != 1 {
		t.Fatalf("empty class availability %v, want 1", c.Availability())
	}
	if c.ErrorRate() != 0 || c.MeanResponseSec() != 0 || c.MeanRecoverySec() != 0 {
		t.Fatalf("empty class rates: %v %v %v", c.ErrorRate(), c.MeanResponseSec(), c.MeanRecoverySec())
	}
}
