package core

import (
	"fmt"
	"strings"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/inject"
	"ntdts/internal/middleware/mscs"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/cluster"
	"ntdts/internal/scm"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// Cluster scenario faults. Like the DTSChaos* supervisor hooks, these are
// reserved pseudo-function names riding the ordinary FaultSpec shape so
// they journal, shard, resume and report exactly like KERNEL32 faults.
// The field convention: Node addresses the target node, Invocation is the
// trigger delay in seconds after the client starts (1-based like a real
// invocation count), Param is the heal delay in seconds for partitions
// (0 = the partition never heals), and Type is carried but ignored (use
// "flip" canonically, as the chaos specs do).
const (
	// ClusterNodeCrashFunction powers off a node: all its processes die
	// and its links go dark.
	ClusterNodeCrashFunction = "DTSClusterNodeCrash"
	// ClusterServiceCrashFunction kills the service process on a node,
	// leaving the node (and its middleware) up to react.
	ClusterServiceCrashFunction = "DTSClusterServiceCrash"
	// ClusterPartitionFunction cuts every link between a node and the
	// rest of the network, healing after Param seconds.
	ClusterPartitionFunction = "DTSClusterPartition"
)

// scenarioFault is a decoded cluster scenario spec.
type scenarioFault struct {
	kind  scenarioKind
	node  int
	delay time.Duration
	heal  time.Duration
}

type scenarioKind int

const (
	scenNodeCrash scenarioKind = iota + 1
	scenServiceCrash
	scenPartition
)

// scenarioFor decodes a scenario pseudo-fault, or returns nil for
// ordinary specs (including nil).
func scenarioFor(spec *inject.FaultSpec) *scenarioFault {
	if spec == nil {
		return nil
	}
	var kind scenarioKind
	switch spec.Function {
	case ClusterNodeCrashFunction:
		kind = scenNodeCrash
	case ClusterServiceCrashFunction:
		kind = scenServiceCrash
	case ClusterPartitionFunction:
		kind = scenPartition
	default:
		return nil
	}
	return &scenarioFault{
		kind:  kind,
		node:  spec.Node,
		delay: time.Duration(spec.Invocation) * time.Second,
		heal:  time.Duration(spec.Param) * time.Second,
	}
}

// runCluster is the multi-node counterpart of run: N node kernels forked
// from the same boot prefix (or booted fresh), one shared clock, per-node
// SCM/eventlog/injector, a virtual network, and the client workload on
// its own client-host kernel dialing through the routing policy. The
// lifecycle and telemetry phases mirror run exactly so cluster archives
// and traces are comparable with single-host ones.
//
// Cluster runs never use the scheduler-elision fast path or the kernel
// pool (both are per-kernel mechanisms that a shared clock breaks), so a
// cluster run costs more wall-clock than a single-host run; the
// BenchmarkClusterCampaign gate bounds the multiple.
func (r *Runner) runCluster(spec *inject.FaultSpec) (*RunResult, map[string]bool, error) {
	def := r.Def
	n := r.Opts.Cluster.Nodes
	if _, err := cluster.ParsePolicy(r.Opts.Cluster.Routing); err != nil {
		return nil, nil, err
	}
	policy, _ := cluster.ParsePolicy(r.Opts.Cluster.Routing)

	scen := scenarioFor(spec)
	var kspec *inject.FaultSpec
	if spec != nil {
		if spec.Node < 0 || spec.Node >= n {
			return nil, nil, fmt.Errorf("fault %s: node %d does not exist on a %d-node topology", spec.Function, spec.Node, n)
		}
		if scen == nil {
			kspec = spec
		}
	}

	// Boot the nodes: every node forks the same boot prefix (first fork
	// positions the shared clock), or boots fresh replaying Setup when
	// the workload cannot be snapshotted.
	m := ntsim.NewMachine()
	var snap *ntsim.PrefixSnapshot
	if !r.Opts.FreshBoot {
		snap, _ = r.prefixSnapshot()
	}
	nodes := make([]*ntsim.Kernel, n)
	for i := range nodes {
		if snap != nil {
			nodes[i] = snap.ForkInto(m)
		} else {
			nodes[i] = m.AddKernel()
			def.Setup(nodes[i])
		}
	}
	// The client host is one more machine node: it runs only the client
	// programs (SpawnClient registers their images), so it needs no
	// workload setup.
	clientK := m.AddKernel()

	rec := r.Opts.Telemetry.NewRecorder()
	var tel telemetry.Collector = telemetry.Nop{}
	if rec != nil {
		for _, k := range m.Kernels() {
			k.SetTelemetry(rec)
		}
		tel = rec
	}
	if r.Opts.Trace != nil {
		for _, k := range m.Kernels() {
			k.SetTrace(r.Opts.Trace)
		}
	}
	runSpan := telemetry.StartSpan(tel, m.Now(), 0, telemetry.SpanRun)

	// Per-node NT: eventlog, SCM, service registration, injector. The
	// fault spec arms only on its addressed node; every other node (and
	// node 0 for scenario/calibration runs) runs the census-only
	// injector.
	logs := make([]*eventlog.Log, n)
	mgrs := make([]*scm.Manager, n)
	injectors := make([]*inject.Injector, n)
	for i := range nodes {
		logs[i] = eventlog.New()
		mgrs[i] = scm.New(nodes[i], logs[i])
		if err := mgrs[i].CreateService(def.Service); err != nil {
			return nil, nil, fmt.Errorf("node %d: create service: %w", i, err)
		}
		ispec := kspec
		if kspec != nil && kspec.Node != i {
			ispec = nil
		}
		injectors[i] = inject.New(nodes[i], def.Target, ispec)
		nodes[i].SetInterceptor(injectors[i])
	}

	// The virtual network: one endpoint per node plus the client host.
	net := cluster.NewNetwork(m.Clock(), n+1, cluster.DefaultLatency)
	topo := cluster.NewTopology(nodes, net)
	router := cluster.NewRouter(topo, policy)

	// Start the service, directly or through the middleware. Standalone
	// and watchd are active-active (each node runs its own instance);
	// MSCS runs its cluster resource monitor, active on the owner only.
	switch def.Supervision {
	case workload.Standalone:
		for i := range nodes {
			if err := mgrs[i].StartService(def.Service.Name); err != nil {
				return nil, nil, fmt.Errorf("node %d: start service: %w", i, err)
			}
		}
	case workload.MSCS:
		cns := make([]mscs.ClusterNode, n)
		for i := range nodes {
			cns[i] = mscs.ClusterNode{Kernel: nodes[i], Mgr: mgrs[i], Log: logs[i]}
		}
		if _, err := mscs.StartCluster(cns, def.Service.Name, r.Opts.MSCSParams, topo.Reachable, topo.Down); err != nil {
			return nil, nil, fmt.Errorf("start mscs cluster: %w", err)
		}
	case workload.Watchd:
		for i := range nodes {
			if _, err := watchd.Start(nodes[i], mgrs[i], def.Service.Name, r.Opts.WatchdVersion); err != nil {
				return nil, nil, fmt.Errorf("node %d: start watchd: %w", i, err)
			}
		}
	default:
		return nil, nil, fmt.Errorf("unknown supervision %v", def.Supervision)
	}

	tel.Emit(m.Now(), 0, telemetry.KindPhase, "service-start", 0, 0)

	// Wait until any live node reports RUNNING (with MSCS that is the
	// group owner; active-active modes race their nodes up together).
	clusterUp := func() bool {
		for i := range nodes {
			if topo.Down(i) {
				continue
			}
			if st, _, _ := mgrs[i].QueryServiceStatus(def.Service.Name); st == scm.Running {
				return true
			}
		}
		return false
	}
	up := false
	upDeadline := m.Now().Add(r.Opts.ServerUpTimeout)
	for m.Now().Before(upDeadline) {
		if clusterUp() {
			up = true
			break
		}
		if !m.Step() {
			break
		}
	}
	if up {
		tel.Emit(m.Now(), 0, telemetry.KindPhase, "server-up", 0, 0)
	} else {
		tel.Emit(m.Now(), 0, telemetry.KindPhase, "server-up-timeout", 0, 0)
	}

	// Clients live on the client host and reach the service through the
	// routing policy over the virtual network.
	workload.RegisterDialer(clientK, func(p *ntsim.Process, path string) (workload.Conn, ntsim.Errno) {
		c, errno := router.Dial(p, path)
		if c == nil {
			return nil, errno
		}
		return c, errno
	})
	_, report, err := def.SpawnClient(clientK)
	if err != nil {
		return nil, nil, fmt.Errorf("spawn client: %w", err)
	}
	tel.Emit(m.Now(), 0, telemetry.KindPhase, "client-spawn", 0, 0)

	// Arm the scenario trigger.
	crashed := make([]bool, n)
	scenFired := false
	if scen != nil {
		target := scen.node
		m.Clock().ScheduleAt(m.Now().Add(scen.delay), func() {
			scenFired = true
			tel.Emit(m.Now(), 0, telemetry.KindPhase, "cluster-scenario:"+spec.Function, uint64(target), 0)
			switch scen.kind {
			case scenNodeCrash:
				crashed[target] = true
				topo.MarkDown(target)
				mgrs[target].Shutdown()
				for _, pr := range nodes[target].Processes() {
					if !pr.Terminated() {
						pr.Terminate(ntsim.ExitTerminated)
					}
				}
			case scenServiceCrash:
				if pr, ok := mgrs[target].ServiceProcess(def.Service.Name); ok && !pr.Terminated() {
					pr.Terminate(ntsim.ExitAccessViolation)
				}
			case scenPartition:
				net.Isolate(target, true)
				if scen.heal > 0 {
					m.Clock().ScheduleAfter(scen.heal, func() {
						if !topo.Down(target) {
							net.Isolate(target, false)
						}
					})
				}
			}
		})
	}

	deadline := m.Now().Add(r.Opts.RunDeadline)
	for !report.Done && m.Now().Before(deadline) {
		if !m.Step() {
			break
		}
	}
	if report.Done {
		tel.Emit(m.Now(), 0, telemetry.KindPhase, "client-done", 0, 0)
		tel.Add(telemetry.CtrRunCompleted, 1)
	} else {
		tel.Emit(m.Now(), 0, telemetry.KindPhase, "run-deadline", 0, 0)
		tel.Add(telemetry.CtrRunDeadline, 1)
	}

	// Gather: the union of per-node evidence, plus the per-node slices.
	activated := make(map[string]bool)
	for i := range nodes {
		for fn := range injectors[i].ActivatedFunctions() {
			activated[fn] = true
		}
	}
	res := &RunResult{
		Completed:    report.Done,
		GotResponse:  report.AnyResponse(),
		ActivatedFns: len(activated),
		Nodes:        make([]NodeStat, n),
	}
	restarts, failovers := 0, 0
	for i := range nodes {
		rs := countRestarts(nodes[i], logs[i], def.Supervision)
		restarts += rs
		res.Nodes[i] = NodeStat{
			Node:      i,
			Restarts:  rs,
			Failovers: logs[i].CountEvent(mscs.Source, mscs.EventGroupFailover),
			Events:    logs[i].Count(),
			Crashed:   crashed[i],
		}
		failovers += res.Nodes[i].Failovers
	}
	res.Restarts = restarts
	if spec != nil {
		res.Fault = *spec
		if kspec != nil {
			res.Activated = injectors[kspec.Node].Activated(kspec.Function)
			res.Injected = injectors[kspec.Node].Injected()
		} else {
			res.Activated = scenFired
			res.Injected = scenFired
		}
	}
	if report.Done {
		res.ResponseSec = report.End.Sub(report.Start).Seconds()
		tel.Observe(telemetry.HistRunResponse, report.End.Sub(report.Start))
	}
	// A cross-node failover is MSCS's restart-equivalent recovery, so it
	// counts toward the §3 classification even though res.Restarts keeps
	// reporting in-place service restarts only.
	res.Outcome = Classify(report.AllSucceeded(), report.AnyRetried(), res.Restarts+failovers)
	res.Classes = classOutcomes(report)
	for i := range nodes {
		if anyTargetCrash(nodes[i], def) {
			res.ServerCrash = true
			break
		}
	}
	tel.Add(telemetry.CtrRunRestarts, int64(res.Restarts))
	if report.AnyRetried() {
		tel.Add(telemetry.CtrRunRetried, 1)
	}
	if tel.Enabled() {
		tel.Emit(m.Now(), 0, telemetry.KindPhase, "outcome:"+res.Outcome.String(), 0, 0)
	}

	// Workload termination, machine-wide. Cluster kernels are unpooled,
	// so there is no Release: the torn-down machine is garbage.
	for i := range nodes {
		mgrs[i].Shutdown()
	}
	m.KillAll()
	runSpan.End(m.Now())
	res.Telemetry = rec
	var pan []string
	for _, k := range m.Kernels() {
		pan = append(pan, k.Panics()...)
	}
	if len(pan) != 0 {
		return nil, nil, fmt.Errorf("simulated code panicked: %s", strings.Join(pan, "; "))
	}
	return res, activated, nil
}
