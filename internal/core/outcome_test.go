package core

import (
	"testing"

	"ntdts/internal/workload"
)

// TestClassifyFromRecords drives the §3 classifier end-to-end from
// synthetic client records — the same route the data collector takes
// (Report observables in, Outcome out) — pinning one case per outcome plus
// the ambiguous ones the paper's methodology has to resolve.
func TestClassifyFromRecords(t *testing.T) {
	ok := workload.RequestRecord{Name: "GET /", Attempts: 1, Success: true, GotResponse: true}
	retried := workload.RequestRecord{Name: "GET /", Attempts: 2, Retried: true, Success: true, GotResponse: true}
	timedOut := workload.RequestRecord{Name: "GET /", Attempts: 3, Retried: true}

	cases := []struct {
		name     string
		report   workload.Report
		restarts int
		want     Outcome
	}{
		{"all correct, quiet middleware",
			workload.Report{Done: true, Requests: []workload.RequestRecord{ok, ok}}, 0, NormalSuccess},
		{"restart hidden from the client",
			workload.Report{Done: true, Requests: []workload.RequestRecord{ok, ok}}, 1, RestartSuccess},
		{"restart plus client retransmission",
			workload.Report{Done: true, Requests: []workload.RequestRecord{ok, retried}}, 1, RestartRetrySuccess},
		{"retransmission alone recovers",
			workload.Report{Done: true, Requests: []workload.RequestRecord{retried, ok}}, 0, RetrySuccess},
		{"request exhausts its attempts",
			workload.Report{Done: true, Requests: []workload.RequestRecord{ok, timedOut}}, 0, Failure},
		// The ambiguous case: watchd restarted the server, but the client
		// still timed out before getting a correct reply. The restart
		// evidence must NOT promote the run — client failure dominates.
		{"restart then client timeout stays a failure",
			workload.Report{Done: true, Requests: []workload.RequestRecord{retried, timedOut}}, 2, Failure},
		// The client itself never finished (hung or killed mid-run): no
		// request list can prove success.
		{"client never completed",
			workload.Report{Started: true, Done: false, Requests: []workload.RequestRecord{ok}}, 1, Failure},
		{"empty request log is a failure, not a vacuous success",
			workload.Report{Done: true}, 0, Failure},
	}
	for _, c := range cases {
		got := Classify(c.report.AllSucceeded(), c.report.AnyRetried(), c.restarts)
		if got != c.want {
			t.Errorf("%s: classified %v, want %v", c.name, got, c.want)
		}
	}
}
