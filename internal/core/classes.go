package core

// Per-traffic-class data collection. When a run's workload is a generated
// cohort (internal/workloadgen), every request record carries its class
// and client tags; this file folds those records into one ClassOutcome
// per class so the reliability metrics the paper reports for the whole
// client — availability, error rate, recovery time — can be broken out
// per class ("did the fault hurt the browsers or the batch jobs?").

import (
	"sort"

	"ntdts/internal/stats"
	"ntdts/internal/workload"
)

// ClassOutcome is the collector's per-class summary for one run. Sums
// (not means) are stored so campaign-level aggregation is exact: means
// taken per run and then averaged would weight a 1-request class equally
// with a 100-request one.
type ClassOutcome struct {
	// Class is the traffic-class name from the cohort spec.
	Class string `json:"class"`
	// Clients is how many distinct virtual clients of the class issued
	// requests this run.
	Clients int `json:"clients"`
	// Requests counts the class's resolved requests.
	Requests int `json:"requests"`
	// Succeeded counts requests that eventually got a correct reply.
	Succeeded int `json:"succeeded"`
	// Responded counts requests that saw at least one complete (possibly
	// wrong) reply — the wrong-reply vs no-reply split, per class.
	Responded int `json:"responded"`
	// Retried counts requests needing more than one attempt.
	Retried int `json:"retried"`
	// ResponseSecSum is the summed per-request latency (seconds).
	ResponseSecSum float64 `json:"responseSecSum"`
	// Recoveries counts failed requests after which the class saw a
	// correct reply again; RecoverySecSum sums the time from each such
	// failure to the class's next success (seconds).
	Recoveries     int     `json:"recoveries,omitempty"`
	RecoverySecSum float64 `json:"recoverySecSum,omitempty"`
	// Unrecovered counts failed requests the class never recovered from
	// within the run — no later success exists.
	Unrecovered int `json:"unrecovered,omitempty"`
}

// classOutcomes folds a client report's tagged records into per-class
// summaries, sorted by class name. Untagged records (canned clients)
// yield nil, keeping canned-campaign archives byte-identical.
func classOutcomes(report *workload.Report) []ClassOutcome {
	byClass := make(map[string][]workload.RequestRecord)
	for _, rec := range report.Requests {
		if rec.Class == "" {
			continue
		}
		byClass[rec.Class] = append(byClass[rec.Class], rec)
	}
	if len(byClass) == 0 {
		return nil
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ClassOutcome, 0, len(names))
	for _, name := range names {
		recs := byClass[name]
		co := ClassOutcome{Class: name, Requests: len(recs)}
		clients := make(map[int]bool)
		for _, rec := range recs {
			clients[rec.Client] = true
			if rec.Success {
				co.Succeeded++
			}
			if rec.GotResponse {
				co.Responded++
			}
			if rec.Retried {
				co.Retried++
			}
			co.ResponseSecSum += rec.End.Sub(rec.Start).Seconds()
		}
		co.Clients = len(clients)
		for _, rec := range recs {
			if rec.Success {
				continue
			}
			if rt, ok := recoveryAfter(recs, rec); ok {
				co.Recoveries++
				co.RecoverySecSum += rt
			} else {
				co.Unrecovered++
			}
		}
		out = append(out, co)
	}
	return out
}

// ClassStats is a class's campaign-level aggregate: every injected run's
// ClassOutcome for the class summed together, mirroring Distribution's
// injected-runs-only scope.
type ClassStats struct {
	Class          string
	Runs           int // injected runs in which the class issued requests
	Requests       int
	Succeeded      int
	Responded      int
	Retried        int
	Recoveries     int
	Unrecovered    int
	ResponseSecSum float64
	RecoverySecSum float64
}

// Availability is the class's success fraction across the campaign.
func (c ClassStats) Availability() float64 { return stats.Availability(c.Succeeded, c.Requests) }

// ErrorRate is the class's failed fraction.
func (c ClassStats) ErrorRate() float64 { return stats.ErrorRate(c.Succeeded, c.Requests) }

// MeanResponseSec is the class's mean per-request latency (0 with no
// requests).
func (c ClassStats) MeanResponseSec() float64 {
	if c.Requests == 0 {
		return 0
	}
	return c.ResponseSecSum / float64(c.Requests)
}

// MeanRecoverySec is the mean failure-to-next-success gap over the
// recoveries that happened (0 when none did; Unrecovered counts the
// failures that never came back).
func (c ClassStats) MeanRecoverySec() float64 {
	if c.Recoveries == 0 {
		return 0
	}
	return c.RecoverySecSum / float64(c.Recoveries)
}

// ClassStats folds every injected run's per-class outcomes into one
// aggregate per class, sorted by class name. Nil for canned-client
// campaigns (no run carries class data).
func (s *SetResult) ClassStats() []ClassStats {
	byClass := make(map[string]*ClassStats)
	for _, r := range s.Runs {
		if !r.Injected {
			continue
		}
		for _, co := range r.Classes {
			cs := byClass[co.Class]
			if cs == nil {
				cs = &ClassStats{Class: co.Class}
				byClass[co.Class] = cs
			}
			cs.Runs++
			cs.Requests += co.Requests
			cs.Succeeded += co.Succeeded
			cs.Responded += co.Responded
			cs.Retried += co.Retried
			cs.Recoveries += co.Recoveries
			cs.Unrecovered += co.Unrecovered
			cs.ResponseSecSum += co.ResponseSecSum
			cs.RecoverySecSum += co.RecoverySecSum
		}
	}
	if len(byClass) == 0 {
		return nil
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ClassStats, 0, len(names))
	for _, name := range names {
		out = append(out, *byClass[name])
	}
	return out
}

// recoveryAfter finds the class's first correct reply completing at or
// after the failed request's end, returning the gap in seconds. Records
// arrive in completion order (the cohort report appends as requests
// resolve), so the first matching success is the earliest one.
func recoveryAfter(recs []workload.RequestRecord, failed workload.RequestRecord) (float64, bool) {
	for _, rec := range recs {
		if rec.Success && !rec.End.Before(failed.End) {
			return rec.End.Sub(failed.End).Seconds(), true
		}
	}
	return 0, false
}
