package core

// The shard executor seam. Sharded execution lives in internal/shard,
// which imports core for the campaign plumbing — so core cannot import
// it back. Instead shard registers its executor here at init time, and
// Campaign.Run looks it up when Shards > 1. Campaign.ShardExec
// overrides the registration (tests substitute in-process executors).

import (
	"context"
	"sync"
)

// ShardExecutor executes a prepared campaign's job list across worker
// processes and returns the results in job order — the same contract as
// the in-process pool, so Assemble merges either interchangeably.
type ShardExecutor interface {
	ExecuteShards(ctx context.Context, c *Campaign, p *Prepared) ([]RunResult, error)
}

var (
	shardExecMu sync.RWMutex
	shardExec   ShardExecutor
)

// RegisterShardExecutor installs the process-wide default ShardExecutor
// used when Campaign.ShardExec is nil. internal/shard calls this from
// its init, so importing it is enough to enable -shards.
func RegisterShardExecutor(e ShardExecutor) {
	shardExecMu.Lock()
	shardExec = e
	shardExecMu.Unlock()
}

func registeredShardExecutor() ShardExecutor {
	shardExecMu.RLock()
	defer shardExecMu.RUnlock()
	return shardExec
}
