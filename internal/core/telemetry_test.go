package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ntdts/internal/determinism"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// telemetrySpecs builds a deterministic 200-fault list spanning the
// KERNEL32 catalog: one spec per injectable entry, cycling parameters and
// corruption types. Faults on functions the workload never calls still
// execute as full runs — exactly what a user-supplied fault list does.
func telemetrySpecs(n int) []inject.FaultSpec {
	types := inject.AllFaultTypes()
	var specs []inject.FaultSpec
	for i, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		specs = append(specs, inject.FaultSpec{
			Function:   e.Name,
			Param:      i % e.Params,
			Invocation: 1,
			Type:       types[i%len(types)],
		})
		if len(specs) == n {
			break
		}
	}
	return specs
}

// TestCampaignTelemetryDeterministic is the telemetry analogue of the
// engine's core guarantee: a 200-spec campaign executed at worker counts
// 1, 4 and 16 exports byte-identical merged traces and metrics. Each run
// owns its recorder and the merge is by fault-list index, so the worker
// schedule can't leak into the artifacts. CI runs this under -race, which
// also proves collectors are never shared across workers.
func TestCampaignTelemetryDeterministic(t *testing.T) {
	specs := telemetrySpecs(200)
	if len(specs) != 200 {
		t.Fatalf("built %d specs, want 200", len(specs))
	}
	sweep := func(par int) (trace []byte, metrics string) {
		opts := RunnerOptions{Telemetry: telemetry.Options{Enabled: true}}
		runner := NewRunner(workload.NewApache1(workload.Standalone), opts)
		runs, err := RunSpecs(context.Background(), runner, specs, par, nil)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		set := CollectTelemetry(nil, runs)
		if len(set.Runs) != len(specs) {
			t.Fatalf("parallelism %d: %d recorders, want %d", par, len(set.Runs), len(specs))
		}
		for i, rec := range set.Runs {
			if rec == nil {
				t.Fatalf("parallelism %d: run %d has no recorder", par, i)
			}
		}
		var buf bytes.Buffer
		if err := set.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), set.MetricsText()
	}

	seqTrace, seqMetrics := sweep(1)
	if len(seqTrace) == 0 {
		t.Fatal("sequential sweep produced an empty trace")
	}
	for _, par := range []int{4, 16} {
		parTrace, parMetrics := sweep(par)
		if !bytes.Equal(seqTrace, parTrace) {
			determinism.AssertSameTranscript(t, "merged campaign trace",
				string(parTrace), string(seqTrace), func(i int, _, _ string) string {
					return fmt.Sprintf("200-spec Apache1/none fault list at -parallel %d, trace line %d", par, i+1)
				})
		}
		determinism.AssertSameTranscript(t, "merged campaign metrics", parMetrics, seqMetrics,
			func(i int, _, _ string) string {
				return fmt.Sprintf("200-spec Apache1/none fault list at -parallel %d", par)
			})
	}
}

// TestCampaignTelemetryDisabledIsFree: with telemetry off (the default),
// runs carry no recorder and the set result is exactly what it was before
// the telemetry layer existed.
func TestCampaignTelemetryDisabledIsFree(t *testing.T) {
	set, err := apache1Campaign(1, nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if set.Telemetry != nil {
		t.Fatal("disabled campaign produced a telemetry set")
	}
	for i, r := range set.Runs {
		if r.Telemetry != nil {
			t.Fatalf("run %d carries a recorder with telemetry disabled", i)
		}
	}
}

// TestCampaignTelemetryEnabled: an enabled campaign attaches one recorder
// per run plus the calibration run at index 0, and the run span brackets
// every run's trace.
func TestCampaignTelemetryEnabled(t *testing.T) {
	c := apache1Campaign(4, nil)
	c.Runner().Opts.Telemetry = telemetry.Options{Enabled: true}
	set, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if set.Telemetry == nil {
		t.Fatal("enabled campaign produced no telemetry set")
	}
	if want := len(set.Runs) + 1; len(set.Telemetry.Runs) != want {
		t.Fatalf("%d recorders, want %d (calibration + runs)", len(set.Telemetry.Runs), want)
	}
	for i, rec := range set.Telemetry.Runs {
		if rec == nil {
			t.Fatalf("telemetry run %d is nil", i)
		}
		events := rec.Events()
		if len(events) == 0 {
			t.Fatalf("telemetry run %d is empty", i)
		}
		if events[0].Kind != telemetry.KindSpanBegin || events[0].Name != telemetry.SpanRun {
			t.Fatalf("run %d does not open with the run span: %+v", i, events[0])
		}
		if rec.Counter(telemetry.CtrSyscalls) == 0 {
			t.Fatalf("run %d recorded no syscall dispatches", i)
		}
	}
	// Calibration (index 0) is fault-free; every later recorder belongs to
	// a fault run and must carry the arming event.
	for i, rec := range set.Telemetry.Runs {
		armed := rec.Counter(telemetry.CtrFaultArmed)
		if i == 0 && armed != 0 {
			t.Fatal("calibration run armed a fault")
		}
		if i > 0 && armed != 1 {
			t.Fatalf("fault run %d armed %d faults, want 1", i, armed)
		}
	}
}
