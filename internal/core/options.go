package core

// Functional-options construction for Campaign. The struct accreted
// configuration field by field across the parallel engine, telemetry,
// supervisor, and shard work; NewCampaign is now the supported way to
// build one — options compose, validate at one point, and leave room to
// unexport fields later without breaking callers.

import (
	"ntdts/internal/inject"
	"ntdts/internal/telemetry"
)

// Option configures a Campaign under construction.
type Option func(*Campaign)

// NewCampaign builds a campaign for one workload runner. With no
// options it is the full-catalog sequential sweep the paper ran.
func NewCampaign(r *Runner, opts ...Option) *Campaign {
	c := &Campaign{runner: r}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// WithParallelism sets the worker-pool width (0 = all CPUs, 1 =
// sequential; results are byte-identical either way).
func WithParallelism(n int) Option {
	return func(c *Campaign) { c.parallelism = n }
}

// WithSupervision routes every run through the campaign supervisor
// (watchdog, quarantine, retries, journal, resume). A nil supervisor is
// a no-op, so callers can pass an optionally-built one straight through.
func WithSupervision(s *Supervisor) Option {
	return func(c *Campaign) { c.supervise = s }
}

// WithTelemetry enables per-run collection with the given options. The
// runner is cloned before the change so a shared Runner's options are
// never mutated behind another campaign's back.
func WithTelemetry(o telemetry.Options) Option {
	return func(c *Campaign) {
		c.runner = c.runner.Clone()
		c.runner.Opts.Telemetry = o
	}
}

// WithProgress registers the serialized (done, total) progress callback.
func WithProgress(f func(done, total int)) Option {
	return func(c *Campaign) { c.progress = f }
}

// WithShards fans the campaign out over n worker processes (n <= 1
// stays in-process). The executor comes from WithShardExecutor or the
// process registration performed by importing ntdts/internal/shard.
func WithShards(n int) Option {
	return func(c *Campaign) { c.shards = n }
}

// WithShardExecutor overrides the registered ShardExecutor.
func WithShardExecutor(e ShardExecutor) Option {
	return func(c *Campaign) { c.shardExec = e }
}

// WithSpecs replaces the generated catalog sweep with an explicit fault
// list (the dts fault-list-file path).
func WithSpecs(specs []inject.FaultSpec) Option {
	return func(c *Campaign) { c.specs = specs }
}

// WithReplay installs a replay source: before execution the source
// resolves every job whose recorded trace proves the outcome cannot
// change under this campaign's substrate, and only the rest re-execute
// (see internal/replay for the divergence oracle). Mutually exclusive
// with WithShards and WithSupervision.
func WithReplay(src ReplaySource) Option {
	return func(c *Campaign) { c.replay = src }
}

// WithFaultTypes overrides the corruption set (default: the paper's
// three — zero, one, and flipped bits).
func WithFaultTypes(types ...inject.FaultType) Option {
	return func(c *Campaign) { c.types = types }
}

// WithInvocation selects which invocation of each function to inject
// (default 1, the paper's choice).
func WithInvocation(n int) Option {
	return func(c *Campaign) { c.invocation = n }
}

// WithPaperFaithfulSkips probes each unactivated function once before
// skipping it, exactly as the paper's tool did.
func WithPaperFaithfulSkips() Option {
	return func(c *Campaign) { c.paperFaithfulSkips = true }
}

// WithFreshBoot forces the legacy run engine: every run boots a fresh
// kernel (no prefix-snapshot forks, no pooling, no scheduler elision).
// Archives are byte-identical either way; this exists as the benchmark
// and regression baseline for the snapshot-fork path.
func WithFreshBoot() Option {
	return func(c *Campaign) { c.runner.Opts.FreshBoot = true }
}

// WithCluster executes every run of the campaign on an n-node simulated
// cluster with the given client routing policy ("round-robin",
// "least-loaded" or "failover"; "" = failover). n == 1 keeps the
// single-kernel engine but enables the DTSCluster* scenario faults. The
// topology rides the journal header, so -parallel, -shards and -resume
// all rebuild identical clusters.
func WithCluster(n int, routing string) Option {
	return func(c *Campaign) {
		c.runner.Opts.Cluster = ClusterConfig{Nodes: n, Routing: routing}
	}
}
