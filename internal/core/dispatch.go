package core

// The fleet-dispatch reporting seam. The work-stealing executor lives
// in internal/shard (which imports core), so core sees it only through
// the ShardExecutor interface; DispatchReporter is the optional
// extension Campaign.Run queries after a sharded run to surface how the
// fleet behaved — chunks redispatched, workers lost, whether the
// campaign finished degraded. The stats ride SetResult outside the JSON
// archive, so archives stay byte-identical at any fleet shape.

// DispatchStats summarizes one fleet execution.
type DispatchStats struct {
	// Workers is the fleet size (dispatch slots).
	Workers int
	// Chunks counts fresh chunks carved from the job list.
	Chunks int
	// Redispatched counts chunk re-dispatch events (worker death, torn
	// stream, stall or progress deadline).
	Redispatched int
	// Speculated counts speculative re-issues of straggler tail chunks.
	Speculated int
	// WorkerDeaths counts worker sessions that died or were killed.
	WorkerDeaths int
	// WorkersLost counts slots whose respawn budget was exhausted and
	// that left the fleet for good.
	WorkersLost int
	// LocalRuns counts runs the coordinator finished in-process after
	// remote budgets ran out — the graceful-degradation path.
	LocalRuns int
	// Degraded reports that the campaign completed but needed the
	// in-process fallback (LocalRuns > 0).
	Degraded bool
	// Transport names the worker transport ("inprocess", "exec", "tcp").
	Transport string
}

// DispatchReporter is implemented by shard executors that can describe
// their last execution. Campaign.Run attaches the stats to the
// SetResult when the executor offers them.
type DispatchReporter interface {
	DispatchStats() *DispatchStats
}

// JobKeys returns the job identity sequence of a plan — each job's spec
// key, probe jobs suffixed "/probe" — in job-list order.
func JobKeys(jobs []PlanJob) []string { return jobKeys(jobs) }

// PlanFingerprint returns the fnv64a fingerprint of the job list, the
// same value the campaign supervisor journals. Exported so the fleet
// coordinator can write journals dts -resume accepts.
func PlanFingerprint(jobs []PlanJob) string { return planFingerprint(jobKeys(jobs)) }
