package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ntdts/internal/eventlog"
	"ntdts/internal/inject"
	"ntdts/internal/middleware/mscs"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
	"ntdts/internal/workload"
)

// RunResult is the data collector's record for one fault-injection run.
type RunResult struct {
	Fault        inject.FaultSpec `json:"fault"`
	Activated    bool             `json:"activated"` // target called the function
	Injected     bool             `json:"injected"`  // the corruption actually fired
	Skipped      bool             `json:"skipped"`   // skipped by the activation rule
	Outcome      Outcome          `json:"outcome"`
	Restarts     int              `json:"restarts"`     // middleware-initiated restarts
	GotResponse  bool             `json:"gotResponse"`  // failure split for Figure 4
	Completed    bool             `json:"completed"`    // client program finished
	ResponseSec  float64          `json:"responseSec"`  // client program lifetime
	ServerCrash  bool             `json:"serverCrash"`  // a target process died abnormally
	ActivatedFns int              `json:"activatedFns"` // distinct functions the target called

	// Classes is the per-traffic-class breakdown when the workload ran a
	// generated cohort (nil for canned single-client workloads, which
	// keeps those archives byte-identical to earlier versions).
	Classes []ClassOutcome `json:"classes,omitempty"`

	// Nodes is the per-node breakdown when the run executed on a
	// multi-node cluster (nil on single-host runs, which keeps those
	// archives byte-identical to earlier versions).
	Nodes []NodeStat `json:"nodes,omitempty"`

	// Retries counts abandoned supervisor attempts that preceded this
	// recorded one; Quarantined marks a placeholder record for a run the
	// supervisor gave up on after its retry budget. Both are zero/false on
	// an unsupervised campaign.
	Retries     int  `json:"retries,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`

	// Telemetry is the run's collector when RunnerOptions.Telemetry is
	// enabled (nil otherwise). It is per-run — parallel campaign workers
	// never share one — and is merged in run-index order by the campaign,
	// so exports stay byte-identical at any worker count. Excluded from
	// the JSON archive; export traces with dts -trace-out instead.
	Telemetry *telemetry.Recorder `json:"-"`

	// Replayed marks a result produced by a replay campaign; Elided
	// additionally marks one the divergence oracle adopted from the
	// source campaign instead of re-executing. Provenance only —
	// excluded from the JSON archive so replayed archives stay
	// byte-identical to from-scratch campaigns.
	Replayed bool `json:"-"`
	Elided   bool `json:"-"`
}

// RunnerOptions tune the per-run lifecycle.
type RunnerOptions struct {
	// ServerUpTimeout is how long DTS waits for the service to report
	// RUNNING before starting the client anyway.
	ServerUpTimeout time.Duration
	// RunDeadline bounds the whole run in virtual time.
	RunDeadline time.Duration
	// WatchdVersion selects the watchd iteration for Watchd workloads.
	WatchdVersion watchd.Version
	// MSCSParams tunes the resource monitor for MSCS workloads.
	MSCSParams mscs.Params
	// Trace, when non-nil, receives one line per kernel event (process
	// spawn/exit, access violations) — the single-fault debugging view
	// behind the paper's §4.3 feedback workflow.
	Trace func(at vclock.Time, pid ntsim.PID, msg string)
	// Telemetry enables the structured per-run telemetry layer: every
	// run builds its own collector (so parallel workers never contend)
	// capturing the kernel trace ring, counters and virtual-time
	// histograms, attached to RunResult.Telemetry.
	Telemetry telemetry.Options
	// FreshBoot disables every run-engine fast path: no prefix-snapshot
	// forks, no kernel/process pooling, no scheduler quantum elision —
	// the engine exactly as it was before those optimizations. It is the
	// regression baseline: archives must be byte-identical with it on or
	// off (the CI bench gate cmp's them) and the benchmarks report the
	// snapshot path's speedup against it.
	FreshBoot bool
	// Cluster runs every run on a simulated multi-node cluster (see
	// ClusterConfig). The zero value keeps the classic single-host
	// engine.
	Cluster ClusterConfig
}

// ClusterConfig configures the simulated cluster topology runs execute
// on. Nodes == 0 is the classic single-host engine. Nodes == 1 enables
// the cluster scenario faults (DTSCluster*) but still executes on the
// single-kernel path — a 1-node cluster is the same machine, which is
// what makes the cluster layer a provable superset. Nodes >= 2 boots N
// node kernels under one shared clock with a virtual network and routed
// clients.
type ClusterConfig struct {
	// Nodes is the cluster size.
	Nodes int
	// Routing names the client routing policy: "round-robin",
	// "least-loaded" or "failover" ("" = failover).
	Routing string
}

// Enabled reports whether cluster semantics (node-addressed faults,
// scenario faults) are active.
func (c ClusterConfig) Enabled() bool { return c.Nodes > 0 }

// NodeStat is one node's slice of a cluster run's evidence.
type NodeStat struct {
	Node      int  `json:"node"`
	Restarts  int  `json:"restarts"`            // middleware restarts on this node
	Failovers int  `json:"failovers,omitempty"` // group-failover records in this node's eventlog
	Events    int  `json:"events"`              // total eventlog records
	Crashed   bool `json:"crashed,omitempty"`   // node was taken down by the scenario
}

// DefaultRunnerOptions returns the experiment defaults.
func DefaultRunnerOptions() RunnerOptions {
	return RunnerOptions{
		ServerUpTimeout: 10 * time.Second,
		RunDeadline:     150 * time.Second,
		WatchdVersion:   watchd.V3,
		MSCSParams:      mscs.DefaultParams(),
	}
}

// Runner executes fault-injection runs for one workload definition.
type Runner struct {
	Def  workload.Definition
	Opts RunnerOptions

	// prefix caches the workload's boot-prefix snapshot, shared by every
	// Clone so a whole campaign pays the boot cost once. It is built
	// lazily at the first run (Def may be adjusted between NewRunner and
	// the first run, but must not change afterwards).
	prefix *prefixCache
}

// prefixCache lazily builds and memoizes a boot-prefix snapshot (or the
// reason one cannot be taken).
type prefixCache struct {
	once sync.Once
	snap *ntsim.PrefixSnapshot
	err  error
}

// NewRunner builds a Runner with defaults filled in.
func NewRunner(def workload.Definition, opts RunnerOptions) *Runner {
	defaults := DefaultRunnerOptions()
	if opts.ServerUpTimeout == 0 {
		opts.ServerUpTimeout = defaults.ServerUpTimeout
	}
	if opts.RunDeadline == 0 {
		opts.RunDeadline = defaults.RunDeadline
	}
	// A generated cohort's offered load can exceed the single-client
	// deadline; the definition carries the floor it needs (a pure
	// function of the schedule, so every topology computes the same
	// value and the journal header records it for shard workers).
	if def.MinRunDeadline > opts.RunDeadline {
		opts.RunDeadline = def.MinRunDeadline
	}
	if opts.WatchdVersion == 0 {
		opts.WatchdVersion = defaults.WatchdVersion
	}
	if opts.MSCSParams.MaxAttempts == 0 {
		opts.MSCSParams = defaults.MSCSParams
	}
	return &Runner{Def: def, Opts: opts, prefix: &prefixCache{}}
}

// Clone returns an independent Runner for a campaign worker. A Runner
// holds no per-run state — every run builds its own kernel — so a shallow
// copy suffices (the boot-prefix snapshot cache is deliberately shared);
// Clone exists to make per-worker ownership explicit. The Trace sink, if
// any, is shared, so parallel campaigns should not trace.
func (r *Runner) Clone() *Runner {
	c := *r
	return &c
}

// SnapshotTier names how much of a run's prefix a snapshot captures.
type SnapshotTier int

const (
	// TierNone means the run boots a fresh kernel and replays its whole
	// prefix (the workload's Setup leaves the kernel non-quiescent, or
	// fresh-boot mode is forced).
	TierNone SnapshotTier = iota
	// TierBoot means the run resumes from the quiescent boot prefix —
	// registered images, populated filesystem, tuned cost model —
	// captured once per campaign.
	TierBoot
)

// String names the tier for stats output.
func (t SnapshotTier) String() string {
	if t == TierBoot {
		return "boot"
	}
	return "none"
}

// SnapshotAt reports the deepest prefix tier the runner can resume from
// for a fault at the given activation site. Mid-run sites all resolve to
// the boot prefix: simulated processes are live goroutines whose stacks
// cannot be captured, so TierBoot is the deepest capturable tier, reached
// without executing a single wasted quantum. Workloads whose Setup leaves
// the kernel non-quiescent (spawned processes, scheduled timers, open IPC)
// resolve to TierNone and fall back to a fresh boot.
func (r *Runner) SnapshotAt(inject.Site) SnapshotTier {
	if r.Opts.FreshBoot {
		return TierNone
	}
	if _, err := r.prefixSnapshot(); err != nil {
		return TierNone
	}
	return TierBoot
}

// prefixSnapshot builds (once) and returns the shared boot-prefix
// snapshot: a donor kernel runs the workload's Setup and is captured at
// the quiescent pre-spawn instant. Safe for concurrent callers.
func (r *Runner) prefixSnapshot() (*ntsim.PrefixSnapshot, error) {
	c := r.prefix
	if c == nil {
		// Zero-literal Runner (no NewRunner): no cache to share, so
		// snapshot fresh per call — still correct, just unmemoized.
		donor := ntsim.NewKernel()
		r.Def.Setup(donor)
		return donor.SnapshotPrefix()
	}
	c.once.Do(func() {
		donor := ntsim.NewKernel()
		r.Def.Setup(donor)
		c.snap, c.err = donor.SnapshotPrefix()
	})
	return c.snap, c.err
}

// Run executes one fault-injection run. A nil spec is the fault-free
// calibration run.
func (r *Runner) Run(spec *inject.FaultSpec) (*RunResult, error) {
	res, _, err := r.run(spec)
	return res, err
}

// ActivationScan runs the fault-free calibration pass and returns the set
// of functions the target activates (the paper's Table 1 measurement and
// the input to the skip rule).
func (r *Runner) ActivationScan() (map[string]bool, *RunResult, error) {
	res, activated, err := r.run(nil)
	return activated, res, err
}

// run is the per-run lifecycle of the paper's Figure 1: prepare the
// workload programs, start the server (injecting the fault), wait for the
// server to be up, start the client, wait for workload termination, and
// gather results.
func (r *Runner) run(spec *inject.FaultSpec) (*RunResult, map[string]bool, error) {
	if r.Opts.Cluster.Nodes > 1 {
		return r.runCluster(spec)
	}
	def := r.Def

	// A 1-node "cluster" (or a plain single host) runs the classic
	// engine; only the scenario pseudo-faults need interpreting here.
	scen := scenarioFor(spec)
	if scen != nil && !r.Opts.Cluster.Enabled() {
		return nil, nil, fmt.Errorf("fault %s: cluster scenario faults require a cluster topology (WithCluster / -cluster)", spec.Function)
	}
	if spec != nil && spec.Node != 0 {
		return nil, nil, fmt.Errorf("fault %s: node %d does not exist on a %d-node topology", spec.Function, spec.Node, max(1, r.Opts.Cluster.Nodes))
	}
	// Scenario faults bypass the syscall injector: the injector runs the
	// census only, and the scheduled scenario action is the fault.
	ispec := spec
	if scen != nil {
		ispec = nil
	}

	// Prepare the machine: resume from the shared boot-prefix snapshot
	// when the workload allows it (the common case — Setup only registers
	// images and writes files), else boot fresh and replay Setup in the
	// legacy order. Both paths produce byte-identical archives; the fork
	// path just skips re-executing the prefix and draws the kernel from
	// the pool.
	var k *ntsim.Kernel
	forked := false
	if !r.Opts.FreshBoot {
		if snap, err := r.prefixSnapshot(); err == nil {
			k = snap.Fork()
			forked = true
		}
	}
	if k == nil {
		k = ntsim.NewKernel()
	}
	if r.Opts.Trace != nil {
		k.SetTrace(r.Opts.Trace)
	}
	// The telemetry collector (if enabled) must be installed before the
	// injector so the arming event is observed; it is per-run, so
	// parallel campaign workers never contend.
	rec := r.Opts.Telemetry.NewRecorder()
	var tel telemetry.Collector = telemetry.Nop{}
	if rec != nil {
		k.SetTelemetry(rec)
		tel = rec
	}
	runSpan := telemetry.StartSpan(tel, k.Now(), 0, telemetry.SpanRun)
	log := eventlog.New()
	mgr := scm.New(k, log)
	if !forked {
		def.Setup(k)
	}
	if err := mgr.CreateService(def.Service); err != nil {
		return nil, nil, fmt.Errorf("create service: %w", err)
	}
	injector := inject.New(k, def.Target, ispec)
	k.SetInterceptor(injector)

	// Start the server program, directly or through the middleware that
	// owns it.
	switch def.Supervision {
	case workload.Standalone:
		if err := mgr.StartService(def.Service.Name); err != nil {
			return nil, nil, fmt.Errorf("start service: %w", err)
		}
	case workload.MSCS:
		if _, err := mscs.Start(k, mgr, log, def.Service.Name, r.Opts.MSCSParams); err != nil {
			return nil, nil, fmt.Errorf("start mscs: %w", err)
		}
	case workload.Watchd:
		if _, err := watchd.Start(k, mgr, def.Service.Name, r.Opts.WatchdVersion); err != nil {
			return nil, nil, fmt.Errorf("start watchd: %w", err)
		}
	default:
		return nil, nil, fmt.Errorf("unknown supervision %v", def.Supervision)
	}

	tel.Emit(k.Now(), 0, telemetry.KindPhase, "service-start", 0, 0)

	// Wait for the server to come up (bounded; a faulted server may never
	// make it, and the client must still run to observe that). The
	// scheduling ceiling lets the kernel elide solo handoffs up to the
	// loop's own exit bound; SetServiceStatus requests attention, so the
	// poll below observes status transitions at exactly the quantum
	// boundaries it would have without elision.
	elide := !r.Opts.FreshBoot
	up := false
	upDeadline := k.Now().Add(r.Opts.ServerUpTimeout)
	if elide {
		k.SetSchedCeiling(upDeadline)
	}
	for k.Now().Before(upDeadline) {
		if st, _, _ := mgr.QueryServiceStatus(def.Service.Name); st == scm.Running {
			up = true
			break
		}
		if !k.Step() {
			break
		}
	}
	if up {
		tel.Emit(k.Now(), 0, telemetry.KindPhase, "server-up", 0, 0)
	} else {
		tel.Emit(k.Now(), 0, telemetry.KindPhase, "server-up-timeout", 0, 0)
	}

	// Run the client workload to completion or the run deadline.
	preClientPID := ntsim.PID(len(k.Processes()))
	_, report, err := def.SpawnClient(k)
	if err != nil {
		return nil, nil, fmt.Errorf("spawn client: %w", err)
	}
	postClientPID := ntsim.PID(len(k.Processes()))
	tel.Emit(k.Now(), 0, telemetry.KindPhase, "client-spawn", 0, 0)
	scenFired := false
	if scen != nil {
		k.Clock().ScheduleAt(k.Now().Add(scen.delay), func() {
			scenFired = true
			tel.Emit(k.Now(), 0, telemetry.KindPhase, "cluster-scenario:"+spec.Function, 0, 0)
			switch scen.kind {
			case scenServiceCrash:
				if pr, ok := mgr.ServiceProcess(def.Service.Name); ok && !pr.Terminated() {
					pr.Terminate(ntsim.ExitAccessViolation)
				}
			case scenNodeCrash:
				// The single node powers off: every server-side process
				// dies and the SCM stops. The clients are the paper's
				// remote observers, so they survive to record the outage.
				mgr.Shutdown()
				for _, pr := range k.Processes() {
					if pr.ID > preClientPID && pr.ID <= postClientPID {
						continue
					}
					if !pr.Terminated() {
						pr.Terminate(ntsim.ExitTerminated)
					}
				}
			case scenPartition:
				// One host, co-located clients: there is no link to cut.
			}
		})
	}
	deadline := k.Now().Add(r.Opts.RunDeadline)
	if elide {
		// Done is the client's final act before exiting — a scheduling
		// point — so the Done poll needs no attention hook; the ceiling
		// alone bounds the fast path.
		k.SetSchedCeiling(deadline)
	}
	for !report.Done && k.Now().Before(deadline) {
		if !k.Step() {
			break
		}
	}
	if elide {
		k.ClearSchedCeiling()
	}
	if report.Done {
		tel.Emit(k.Now(), 0, telemetry.KindPhase, "client-done", 0, 0)
		tel.Add(telemetry.CtrRunCompleted, 1)
	} else {
		tel.Emit(k.Now(), 0, telemetry.KindPhase, "run-deadline", 0, 0)
		tel.Add(telemetry.CtrRunDeadline, 1)
	}

	// Gather results.
	res := &RunResult{
		Completed:    report.Done,
		GotResponse:  report.AnyResponse(),
		Restarts:     countRestarts(k, log, def.Supervision),
		ActivatedFns: injector.ActivatedCount(),
		Injected:     injector.Injected(),
	}
	if spec != nil {
		res.Fault = *spec
		res.Activated = injector.Activated(spec.Function)
	}
	if scen != nil {
		// A scenario fault "activates" when its trigger fires.
		res.Activated = scenFired
		res.Injected = scenFired
	}
	if report.Done {
		res.ResponseSec = report.End.Sub(report.Start).Seconds()
		tel.Observe(telemetry.HistRunResponse, report.End.Sub(report.Start))
	}
	res.Outcome = Classify(report.AllSucceeded(), report.AnyRetried(), res.Restarts)
	res.Classes = classOutcomes(report)
	res.ServerCrash = anyTargetCrash(k, def)
	tel.Add(telemetry.CtrRunRestarts, int64(res.Restarts))
	if report.AnyRetried() {
		tel.Add(telemetry.CtrRunRetried, 1)
	}
	if tel.Enabled() {
		// Outcome classification as a trace event; the label concat only
		// runs when a recorder is listening.
		tel.Emit(k.Now(), 0, telemetry.KindPhase, "outcome:"+res.Outcome.String(), 0, 0)
	}

	// Workload termination.
	mgr.Shutdown()
	k.KillAll()
	runSpan.End(k.Now())
	res.Telemetry = rec
	if pan := k.Panics(); len(pan) != 0 {
		return nil, nil, fmt.Errorf("simulated code panicked: %s", strings.Join(pan, "; "))
	}
	activated := injector.ActivatedFunctions()
	if elide {
		// Clean run: recycle the torn-down machine (kernel and process
		// table entries) for the next run. Error paths above skip this —
		// only a fully drained kernel may be pooled.
		k.Release()
	}
	return res, activated, nil
}

// countRestarts reads the middleware's restart evidence, exactly the way
// §3 describes the collector working: MSCS writes to the NT event log,
// watchd to its own log file. Stand-alone services leave no restart
// evidence by construction.
func countRestarts(k *ntsim.Kernel, log *eventlog.Log, s workload.Supervision) int {
	switch s {
	case workload.MSCS:
		return log.CountEvent(mscs.Source, mscs.EventResourceRestart)
	case workload.Watchd:
		data, ok := k.VFS().ReadFile(watchd.LogPath)
		if !ok {
			return 0
		}
		n := 0
		for _, line := range strings.Split(string(data), "\r\n") {
			if strings.Contains(line, ": restarted ") {
				n++
			}
		}
		return n
	default:
		return 0
	}
}

// anyTargetCrash reports whether any process matched by the target
// selector exited abnormally during the run.
func anyTargetCrash(k *ntsim.Kernel, def workload.Definition) bool {
	for _, p := range k.Processes() {
		if !def.Target(k, p.ID, p.Image) {
			continue
		}
		if p.Terminated() && p.ExitCode() != 0 && p.ExitCode() != ntsim.ExitTerminated {
			return true
		}
	}
	return false
}
