package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"ntdts/internal/inject"
	"ntdts/internal/stats"
	"ntdts/internal/telemetry"
)

// SetResult is the outcome of one workload set: every fault of the fault
// list injected into one workload (paper Figure 1's middle loop).
type SetResult struct {
	Workload      string      `json:"workload"`
	Supervision   string      `json:"supervision"`
	WatchdVersion int         `json:"watchdVersion,omitempty"`
	ActivatedFns  int         `json:"activatedFns"` // Table 1 census
	FaultFreeSec  float64     `json:"faultFreeSec"` // calibration response time
	Runs          []RunResult `json:"runs"`         // injected faults only
	SkippedFns    int         `json:"skippedFns"`   // unactivated functions
	SkippedFaults int         `json:"skippedFaults"`

	// Quarantined lists the runs the campaign supervisor gave up on
	// (empty on unsupervised campaigns); Partial marks a set cut short by
	// an interrupt or the quarantine budget — its Runs slice still spans
	// the full plan, with zero-valued entries for runs never executed.
	Quarantined []QuarantineEntry `json:"quarantined,omitempty"`
	Partial     bool              `json:"partial,omitempty"`

	// Telemetry holds the per-run collectors in deterministic order —
	// the calibration run first, then every run at its fault-list
	// position — when the campaign executed with telemetry enabled.
	// Merged exports (JSONL/CSV traces, metrics) are byte-identical
	// across Parallelism settings. Excluded from the JSON archive.
	Telemetry *telemetry.Set `json:"-"`

	// Dispatch describes how the fleet executor behaved when the
	// campaign ran sharded (nil otherwise). Excluded from the JSON
	// archive so archives stay byte-identical at any fleet shape.
	Dispatch *DispatchStats `json:"-"`
}

// Injected returns the number of faults that actually fired.
func (s *SetResult) Injected() int {
	n := 0
	for _, r := range s.Runs {
		if r.Injected {
			n++
		}
	}
	return n
}

// Distribution is the five-outcome breakdown over injected faults —
// the bars of Figures 2, 3 and 5.
type Distribution struct {
	Total  int                `json:"total"`
	Counts map[string]int     `json:"counts"`
	Pct    map[string]float64 `json:"pct"`
}

// Distribution computes the outcome distribution of a set.
func (s *SetResult) Distribution() Distribution {
	d := Distribution{
		Counts: make(map[string]int, 5),
		Pct:    make(map[string]float64, 5),
	}
	for _, r := range s.Runs {
		if !r.Injected {
			continue
		}
		d.Counts[r.Outcome.String()]++
		d.Total++
	}
	for _, o := range AllOutcomes() {
		d.Pct[o.String()] = stats.Percent(d.Counts[o.String()], d.Total)
	}
	return d
}

// FailurePct is the headline failure percentage (unity minus coverage).
func (s *SetResult) FailurePct() float64 {
	return s.Distribution().Pct[Failure.String()]
}

// OutcomePct returns the percentage of one outcome.
func (s *SetResult) OutcomePct(o Outcome) float64 {
	return s.Distribution().Pct[o.String()]
}

// ResponseTimes returns the response-time sample for one outcome class,
// with failures optionally split by whether any reply arrived (Figure 4
// omits no-reply failures — their response time is unbounded).
func (s *SetResult) ResponseTimes(o Outcome, wrongReplyOnly bool) []float64 {
	var xs []float64
	for _, r := range s.Runs {
		if !r.Injected || r.Outcome != o || !r.Completed {
			continue
		}
		if o == Failure && wrongReplyOnly && !r.GotResponse {
			continue
		}
		xs = append(xs, r.ResponseSec)
	}
	return xs
}

// Campaign executes the full fault list against one workload.
//
// Construct campaigns with NewCampaign and functional options; the
// struct literal form below still works but is deprecated and will lose
// exported fields once the options API has been through one release.
type Campaign struct {
	Runner *Runner
	// Types is the corruption set (defaults to the paper's three).
	Types []inject.FaultType
	// Invocation selects which invocation of each function to inject
	// (default 1, the paper's choice; the paper notes that injecting
	// further invocations "produced similar results").
	Invocation int
	// PaperFaithfulSkips runs one probe per unactivated function before
	// skipping its remaining faults, exactly as the paper's tool did,
	// instead of applying the skip from the calibration run. The outcome
	// data is identical; only campaign cost differs (the ablation bench
	// measures it).
	PaperFaithfulSkips bool
	// Parallelism is the number of workers executing runs concurrently
	// (0 defaults to runtime.GOMAXPROCS(0); 1 is strictly sequential).
	// Every run builds its own isolated kernel and results land at their
	// fault-list position, so any worker count yields a SetResult
	// byte-identical to the sequential sweep.
	Parallelism int
	// Progress, when non-nil, receives (done, total) after every run.
	// Invocations are serialized and done increases strictly by one,
	// regardless of Parallelism.
	Progress func(done, total int)
	// Supervise, when non-nil, routes every run through the campaign
	// supervisor: wall-clock watchdog, panic quarantine, bounded retries,
	// the results journal, and replay-on-resume.
	Supervise *Supervisor
	// Specs, when non-empty, replaces the generated catalog sweep with an
	// explicit fault list (the dts fault-list-file path). No skip probes
	// or skip accounting apply; the calibration pass still runs so the
	// set records its activation census and fault-free response time.
	Specs []inject.FaultSpec
	// Shards, when > 1, fans the job list out over that many worker
	// processes through a ShardExecutor (see WithShards); results merge
	// byte-identical to an unsharded run.
	Shards int
	// ShardExec overrides the process-registered ShardExecutor (set by
	// importing ntdts/internal/shard). Tests substitute in-process
	// executors here.
	ShardExec ShardExecutor
}

// Prepared is a campaign after calibration and planning, ready to
// execute: the frozen job list plus everything Assemble needs to build
// the SetResult. The coordinator/worker split lives on this boundary —
// a ShardExecutor partitions Jobs and Assemble merges the results.
type Prepared struct {
	c *Campaign
	// Calib is the fault-free calibration result.
	Calib *RunResult
	// Jobs is the campaign's ordered job list; results land at the
	// matching index.
	Jobs []PlanJob
	// Faults counts non-probe jobs (the Progress total).
	Faults int
	// SkippedFns and SkippedFaults carry the catalog-walk skip census
	// (zero for explicit spec lists).
	SkippedFns    int
	SkippedFaults int
}

// Prepare runs the fault-free calibration pass and lays out the job
// list: one run per (activated function × parameter × fault type) for a
// catalog campaign, or the explicit Specs list verbatim. The skip rule
// is the paper's, applied eagerly from the calibration run.
func (c *Campaign) Prepare() (*Prepared, error) {
	types := c.Types
	if len(types) == 0 {
		types = inject.AllFaultTypes()
	}
	invocation := c.Invocation
	if invocation == 0 {
		invocation = 1
	}
	activated, calib, err := c.Runner.ActivationScan()
	if err != nil {
		return nil, fmt.Errorf("activation scan: %w", err)
	}
	p := &Prepared{c: c, Calib: calib}
	if len(c.Specs) > 0 {
		jobs := make([]PlanJob, len(c.Specs))
		for i, s := range c.Specs {
			jobs[i] = PlanJob{Spec: s}
		}
		p.Jobs, p.Faults = jobs, len(jobs)
		return p, nil
	}
	if calib.Outcome != NormalSuccess {
		return nil, fmt.Errorf("calibration run did not succeed: %v", calib.Outcome)
	}
	// The fault list is a pure function of the activation set (plus the
	// corruption types and skip mode), so the catalog walk is memoized
	// per process and the job list executes on the worker pool.
	plan := planFor(activated, types, invocation, c.PaperFaithfulSkips)
	p.Jobs, p.Faults = plan.jobs, plan.faults
	p.SkippedFns, p.SkippedFaults = plan.skippedFns, plan.skippedFaults
	return p, nil
}

// SiteGroup is one activation site's slice of the fault plan: the indices
// of every job arming at the same (function, invocation), with the prefix
// tier the runner resumes those runs from.
type SiteGroup struct {
	Site inject.Site
	// Tier is the deepest snapshot the runner can fork for this site.
	Tier SnapshotTier
	// Jobs indexes into Prepared.Jobs, in plan order.
	Jobs []int
}

// SiteGroups partitions the job list by activation site, in plan order of
// each site's first job. Runs in one group share their entire execution
// prefix up to fault activation; the snapshot-fork engine resumes all of
// them from the same captured prefix (Tier reports how deep that capture
// reaches — TierBoot today, since live goroutine stacks bound how much of
// a run is capturable).
func (p *Prepared) SiteGroups() []SiteGroup {
	index := make(map[inject.Site]int)
	var groups []SiteGroup
	for i, j := range p.Jobs {
		site := j.Spec.Site()
		gi, ok := index[site]
		if !ok {
			gi = len(groups)
			index[site] = gi
			groups = append(groups, SiteGroup{Site: site, Tier: p.c.Runner.SnapshotAt(site)})
		}
		groups[gi].Jobs = append(groups[gi].Jobs, i)
	}
	return groups
}

// Assemble builds the SetResult from the executed (possibly partial)
// run list. A supervisor stop (interrupt, quarantine budget) is
// graceful degradation: the partial set returns alongside the cause so
// the caller can report what finished; any other error voids the set.
func (p *Prepared) Assemble(runs []RunResult, runErr error) (*SetResult, error) {
	c := p.c
	set := &SetResult{
		Workload:      c.Runner.Def.Name,
		Supervision:   c.Runner.Def.Supervision.String(),
		ActivatedFns:  p.Calib.ActivatedFns,
		FaultFreeSec:  p.Calib.ResponseSec,
		SkippedFns:    p.SkippedFns,
		SkippedFaults: p.SkippedFaults,
	}
	if c.Runner.Def.Supervision.String() == "watchd" {
		set.WatchdVersion = int(c.Runner.Opts.WatchdVersion)
	}
	if runErr != nil {
		var budget *QuarantineBudgetError
		if c.Supervise != nil && (errors.Is(runErr, ErrInterrupted) || errors.As(runErr, &budget)) {
			set.Runs = runs
			set.Partial = true
			set.Quarantined = c.Supervise.Quarantined()
			if c.Runner.Opts.Telemetry.Enabled {
				set.Telemetry = CollectTelemetry(p.Calib, runs)
			}
			return set, runErr
		}
		return nil, runErr
	}
	set.Runs = runs
	if c.Supervise != nil {
		set.Quarantined = c.Supervise.Quarantined()
	}
	if c.Runner.Opts.Telemetry.Enabled {
		set.Telemetry = CollectTelemetry(p.Calib, runs)
	}
	return set, nil
}

// Run executes the campaign: Prepare, then the job list on the
// in-process worker pool — or, with Shards > 1, fanned out across
// worker processes by the ShardExecutor — then Assemble. Cancel ctx to
// stop between runs; a supervised campaign converts the cancellation
// into its partial-results ErrInterrupted contract.
func (c *Campaign) Run(ctx context.Context) (*SetResult, error) {
	p, err := c.Prepare()
	if err != nil {
		return nil, err
	}
	if c.Shards > 1 {
		exec := c.ShardExec
		if exec == nil {
			exec = registeredShardExecutor()
		}
		if exec == nil {
			return nil, errors.New("campaign: Shards > 1 but no ShardExecutor available (import ntdts/internal/shard)")
		}
		if c.Supervise != nil {
			return nil, errors.New("campaign: sharding and supervision are mutually exclusive (each worker process already isolates harness faults; journal a shard-worker run instead)")
		}
		runs, runErr := exec.ExecuteShards(ctx, c, p)
		set, err := p.Assemble(runs, runErr)
		if set != nil {
			if dr, ok := exec.(DispatchReporter); ok {
				set.Dispatch = dr.DispatchStats()
			}
		}
		return set, err
	}
	if c.Supervise != nil {
		if err := c.Supervise.syncPlan(p.Jobs); err != nil {
			return nil, err
		}
	}
	runs, runErr := executeJobs(ctx, c.Runner, p.Jobs, c.Parallelism, p.Faults, c.Progress, c.Supervise)
	return p.Assemble(runs, runErr)
}

// Execute runs the campaign without cancellation.
//
// Deprecated: use Run, which threads a context through the worker pool
// and the supervisor. Execute survives for one release as an alias of
// Run(context.Background()).
func (c *Campaign) Execute() (*SetResult, error) {
	return c.Run(context.Background())
}

// CollectTelemetry assembles the deterministic telemetry set for a
// campaign: the calibration run (when present) at index 0, then each
// run's collector at its fault-list position. Runs without a collector
// occupy their index with a nil entry so numbering is stable.
func CollectTelemetry(calib *RunResult, runs []RunResult) *telemetry.Set {
	set := telemetry.NewSet()
	if calib != nil {
		set.Append(calib.Telemetry)
	}
	for i := range runs {
		set.Append(runs[i].Telemetry)
	}
	return set
}

// Experiment is a series of workload sets (paper Figure 1's outer loop).
type Experiment struct {
	Sets []*SetResult `json:"sets"`
}

// Find returns the set for a workload/supervision pair.
func (e *Experiment) Find(workload, supervision string) (*SetResult, bool) {
	for _, s := range e.Sets {
		if s.Workload == workload && s.Supervision == supervision {
			return s, true
		}
	}
	return nil, false
}

// Workloads lists the distinct workload names in first-seen order.
func (e *Experiment) Workloads() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range e.Sets {
		if !seen[s.Workload] {
			seen[s.Workload] = true
			out = append(out, s.Workload)
		}
	}
	return out
}

// CommonInjected returns, for two sets, the run pairs whose fault specs
// were injected in both — Table 2's "counting only common faults" basis.
func CommonInjected(a, b *SetResult) (aRuns, bRuns []RunResult) {
	key := func(f inject.FaultSpec) string { return f.Key() }
	bByKey := make(map[string]RunResult, len(b.Runs))
	for _, r := range b.Runs {
		if r.Injected {
			bByKey[key(r.Fault)] = r
		}
	}
	var keys []string
	aByKey := make(map[string]RunResult, len(a.Runs))
	for _, r := range a.Runs {
		if !r.Injected {
			continue
		}
		k := key(r.Fault)
		if _, ok := bByKey[k]; ok {
			aByKey[k] = r
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		aRuns = append(aRuns, aByKey[k])
		bRuns = append(bRuns, bByKey[k])
	}
	return aRuns, bRuns
}
